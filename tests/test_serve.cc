/**
 * @file
 * disc-serve subsystem tests: share-table policy against its oracle,
 * request-scheduler admission/shedding/draining, concurrent session
 * eviction+restore with bit-identical results, and an in-process
 * client/server round trip including restart-resume.
 */

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "serve/proto.hh"
#include "serve/request_scheduler.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "serve/share_table.hh"
#include "sim/digest.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

using namespace disc;
using namespace disc::serve;

namespace
{

/** An endless, never-idle workload with a per-session constant. */
std::string
loopSource(unsigned k)
{
    return strprintf(".org 0x20\n"
                     "main:\n"
                     "    ldi  r0, %u\n"
                     "    ldi  r1, 1\n"
                     "loop:\n"
                     "    add  r1, r1, r0\n"
                     "    mul  r2, r1, r0\n"
                     "    sub  r3, r2, r1\n"
                     "    jmp  loop\n",
                     3 + k);
}

SessionSpec
loopSpec(const std::string &id, TenantId tenant, unsigned k)
{
    SessionSpec spec;
    spec.id = id;
    spec.tenant = tenant;
    spec.source = loopSource(k);
    return spec;
}

/** The digest an offline machine reaches after @p cycles. */
std::uint64_t
offlineDigest(unsigned k, Cycle cycles)
{
    Program prog = assemble(loopSource(k));
    Machine m;
    m.load(prog);
    ExecTrace trace(kSessionTraceEntries);
    m.setExecTrace(&trace);
    m.startStream(0, prog.symbol("main"));
    m.run(cycles, false);
    return runDigest(m, trace);
}

/** A fresh, empty state directory for one test. */
std::string
freshDir(const std::string &name)
{
    std::string dir =
        (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(dir);
    return dir;
}

// --- ShareTable -------------------------------------------------------

TEST(ShareTable, EvenSplitCoversAllSlots)
{
    ShareTable t;
    t.setEven(4);
    std::array<unsigned, 4> count{};
    for (unsigned i = 0; i < kScheduleSlots; ++i) {
        ASSERT_LT(t.slot(i), 4u);
        ++count[t.slot(i)];
    }
    for (unsigned c : count)
        EXPECT_EQ(c, 4u);
}

TEST(ShareTable, StaticSharesHonouredUnderSaturation)
{
    ShareTable t;
    t.setShares({8, 4, 2, 2});
    std::uint32_t all = 0xf; // every tenant backlogged
    std::array<unsigned, 4> picked{};
    for (unsigned i = 0; i < kScheduleSlots; ++i) {
        TenantId who = t.pick(all);
        ASSERT_LT(who, 4u);
        ++picked[who];
    }
    // Under saturation every tenant gets exactly its static share.
    EXPECT_EQ(picked[0], 8u);
    EXPECT_EQ(picked[1], 4u);
    EXPECT_EQ(picked[2], 2u);
    EXPECT_EQ(picked[3], 2u);
}

TEST(ShareTable, IdleTenantSlotsReallocated)
{
    ShareTable t;
    t.setShares({8, 4, 2, 2});
    std::uint32_t mask = 0xf & ~1u; // tenant 0 has no backlog
    std::array<unsigned, 4> picked{};
    for (unsigned i = 0; i < kScheduleSlots; ++i) {
        TenantId who = t.pick(mask);
        ASSERT_LT(who, 4u);
        ++picked[who];
    }
    // Tenant 0's 8 slots were donated: nobody idles while others
    // wait, and every backlogged tenant still gets >= its own share.
    EXPECT_EQ(picked[0], 0u);
    EXPECT_EQ(picked[1] + picked[2] + picked[3], kScheduleSlots);
    EXPECT_GE(picked[1], 4u);
    EXPECT_GE(picked[2], 2u);
    EXPECT_GE(picked[3], 2u);
}

TEST(ShareTable, UnownedSlotsAlwaysDonated)
{
    ShareTable t;
    t.setShares({2, 2}); // 12 of 16 slots unowned
    std::array<unsigned, 2> picked{};
    for (unsigned i = 0; i < kScheduleSlots; ++i) {
        TenantId who = t.pick(0x3);
        ASSERT_LT(who, 2u);
        ++picked[who];
    }
    EXPECT_EQ(picked[0] + picked[1], kScheduleSlots);
    EXPECT_GE(picked[0], 2u);
    EXPECT_GE(picked[1], 2u);
}

TEST(ShareTable, PickMatchesReferenceOracle)
{
    ShareTable t;
    t.setShares({5, 3, 1, 4}); // 3 slots unowned
    std::uint32_t lcg = 12345;
    for (unsigned i = 0; i < 1000; ++i) {
        lcg = lcg * 1664525 + 1013904223;
        std::uint32_t mask = (lcg >> 8) & 0xf;
        unsigned cursor = t.cursor();
        TenantId expect = t.referencePick(cursor, mask);
        EXPECT_EQ(t.pick(mask), expect) << "cursor " << cursor
                                        << " mask " << mask;
    }
}

TEST(ShareTable, EmptyBacklogPicksNobody)
{
    ShareTable t;
    t.setEven(3);
    EXPECT_EQ(t.pick(0), kNoTenant);
}

// --- RequestScheduler -------------------------------------------------

ServeJob
countJob(TenantId tenant, const std::string &session,
         std::atomic<unsigned> &counter)
{
    ServeJob job;
    job.tenant = tenant;
    job.session = session;
    job.run = [&counter] { counter.fetch_add(1); };
    return job;
}

TEST(RequestScheduler, SharesHonouredAcrossAFrame)
{
    ShareTable t;
    t.setShares({8, 4, 2, 2});
    RequestScheduler sched(t, 64, kScheduleSlots);
    std::array<std::atomic<unsigned>, 4> ran{};
    // Every tenant saturated with distinct-session work.
    for (unsigned j = 0; j < 16; ++j)
        for (TenantId tn = 0; tn < 4; ++tn)
            ASSERT_EQ(sched.submit(countJob(
                          tn, strprintf("t%u-%u", tn, j), ran[tn])),
                      RequestScheduler::Submit::Accepted);
    // One full frame = 16 slots: the static shares exactly.
    EXPECT_EQ(sched.runBatchOnce(), kScheduleSlots);
    EXPECT_EQ(ran[0].load(), 8u);
    EXPECT_EQ(ran[1].load(), 4u);
    EXPECT_EQ(ran[2].load(), 2u);
    EXPECT_EQ(ran[3].load(), 2u);
    sched.drainAndStop();
}

TEST(RequestScheduler, IdleTenantBandwidthFlowsToBacklogged)
{
    ShareTable t;
    t.setShares({8, 4, 2, 2});
    RequestScheduler sched(t, 64, kScheduleSlots);
    std::atomic<unsigned> ran{0};
    // Only tenant 3 (share 2/16) has work.
    for (unsigned j = 0; j < 16; ++j)
        ASSERT_EQ(sched.submit(
                      countJob(3, strprintf("s%u", j), ran)),
                  RequestScheduler::Submit::Accepted);
    // It receives the whole frame, not just its static share.
    EXPECT_EQ(sched.runBatchOnce(), kScheduleSlots);
    EXPECT_EQ(ran.load(), 16u);
}

TEST(RequestScheduler, OneInFlightPerSession)
{
    ShareTable t;
    t.setEven(1);
    RequestScheduler sched(t, 64, kScheduleSlots);
    std::atomic<unsigned> ran{0};
    // Four requests for the SAME session: a machine is serial, so a
    // batch may take only one.
    for (unsigned j = 0; j < 4; ++j)
        sched.submit(countJob(0, "same", ran));
    EXPECT_EQ(sched.runBatchOnce(), 1u);
    EXPECT_EQ(ran.load(), 1u);
    EXPECT_EQ(sched.queuedTotal(), 3u);
    sched.drainAndStop();
    EXPECT_EQ(ran.load(), 4u);
}

TEST(RequestScheduler, BoundedQueueRefusesWhenFull)
{
    ShareTable t;
    t.setEven(1);
    RequestScheduler sched(t, 2, 4);
    std::atomic<unsigned> ran{0};
    EXPECT_EQ(sched.submit(countJob(0, "a", ran)),
              RequestScheduler::Submit::Accepted);
    EXPECT_EQ(sched.submit(countJob(0, "b", ran)),
              RequestScheduler::Submit::Accepted);
    EXPECT_EQ(sched.submit(countJob(0, "c", ran)),
              RequestScheduler::Submit::QueueFull);
    EXPECT_EQ(sched.metrics().rejectedQueueFull.load(), 1u);
    sched.drainAndStop();
    EXPECT_EQ(ran.load(), 2u);
}

TEST(RequestScheduler, ExpiredRequestsShedBeforeExecution)
{
    ShareTable t;
    t.setEven(1);
    RequestScheduler sched(t, 64, 4);
    std::atomic<unsigned> ran{0};
    std::atomic<unsigned> shed{0};
    for (unsigned j = 0; j < 3; ++j) {
        ServeJob job = countJob(0, strprintf("s%u", j), ran);
        job.deadlineMs = 1;
        job.dropped = [&shed](Drop d) {
            EXPECT_EQ(d, Drop::Deadline);
            shed.fetch_add(1);
        };
        ASSERT_EQ(sched.submit(std::move(job)),
                  RequestScheduler::Submit::Accepted);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sched.runBatchOnce();
    EXPECT_EQ(ran.load(), 0u);
    EXPECT_EQ(shed.load(), 3u);
    EXPECT_EQ(sched.metrics().shedDeadline.load(), 3u);
}

TEST(RequestScheduler, DrainExecutesEverythingThenRefuses)
{
    ShareTable t;
    t.setEven(2);
    RequestScheduler sched(t, 64, 4);
    sched.start();
    std::atomic<unsigned> ran{0};
    for (unsigned j = 0; j < 20; ++j)
        sched.submit(countJob(static_cast<TenantId>(j % 2),
                              strprintf("s%u", j), ran));
    sched.drainAndStop();
    EXPECT_EQ(ran.load(), 20u);
    EXPECT_EQ(sched.submit(countJob(0, "late", ran)),
              RequestScheduler::Submit::Draining);
    EXPECT_EQ(ran.load(), 20u);
    EXPECT_EQ(sched.metrics().completed.load(), 20u);
}

// --- SessionRegistry --------------------------------------------------

TEST(SessionRegistry, EvictedSessionMatchesNeverEvictedControl)
{
    SessionRegistry reg(freshDir("disc_serve_test_evict"), 1);
    reg.open(loopSpec("a", 0, 0));
    reg.open(loopSpec("b", 0, 1));
    // Interleave the two sessions; with max_resident=1 every switch
    // parks one and restores the other.
    for (unsigned round = 0; round < 4; ++round) {
        for (const char *id : {"a", "b"}) {
            SessionLease lease = reg.acquire(id);
            lease->machine().run(250, false);
        }
    }
    EXPECT_GT(reg.evictedTotal(), 0u);
    EXPECT_GT(reg.restoredTotal(), 0u);
    {
        SessionLease lease = reg.acquire("a");
        EXPECT_EQ(sessionDigest(*lease), offlineDigest(0, 1000));
    }
    {
        SessionLease lease = reg.acquire("b");
        EXPECT_EQ(sessionDigest(*lease), offlineDigest(1, 1000));
    }
}

TEST(SessionRegistry, ConcurrentEvictRestoreStaysBitIdentical)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kRounds = 6;
    constexpr Cycle kChunk = 200;
    SessionRegistry reg(freshDir("disc_serve_test_threads"), 2);
    for (unsigned i = 0; i < kThreads; ++i)
        reg.open(loopSpec(strprintf("w%u", i),
                          static_cast<TenantId>(i % 4), i));
    // N threads churn disjoint sessions through a 2-session residency
    // bound: parks and restores run concurrently on the session
    // mutexes.
    std::vector<std::thread> workers;
    for (unsigned i = 0; i < kThreads; ++i) {
        workers.emplace_back([&reg, i] {
            for (unsigned r = 0; r < kRounds; ++r) {
                SessionLease lease =
                    reg.acquire(strprintf("w%u", i));
                lease->machine().run(kChunk, false);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_GT(reg.evictedTotal(), 0u);
    for (unsigned i = 0; i < kThreads; ++i) {
        SessionLease lease = reg.acquire(strprintf("w%u", i));
        EXPECT_EQ(sessionDigest(*lease),
                  offlineDigest(i, kRounds * kChunk))
            << "session w" << i;
        EXPECT_EQ(lease->machine().stats().cycles, kRounds * kChunk);
    }
}

TEST(SessionRegistry, RestoreDirResumesAcrossRegistries)
{
    std::string dir = freshDir("disc_serve_test_restoredir");
    {
        SessionRegistry reg(dir, 4);
        reg.open(loopSpec("x", 0, 7));
        {
            SessionLease lease = reg.acquire("x");
            lease->machine().run(500, false);
        }
        reg.parkAll();
    }
    SessionRegistry reg2(dir, 4);
    EXPECT_EQ(reg2.restoreDir(), 1u);
    ASSERT_TRUE(reg2.has("x"));
    SessionLease lease = reg2.acquire("x");
    lease->machine().run(500, false);
    EXPECT_EQ(sessionDigest(*lease), offlineDigest(7, 1000));
}

TEST(SessionRegistry, CloseRemovesSessionAndParkFile)
{
    std::string dir = freshDir("disc_serve_test_close");
    SessionRegistry reg(dir, 1);
    reg.open(loopSpec("gone", 0, 2));
    ASSERT_TRUE(reg.evict("gone"));
    ASSERT_TRUE(
        std::filesystem::exists(dir + "/gone.dsess"));
    reg.close("gone");
    EXPECT_FALSE(reg.has("gone"));
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/gone.dsess"));
}

TEST(SessionRegistry, OpenProceedsDuringSlowPark)
{
    // Regression guard for the locking contract: park I/O runs under
    // the per-session mutex only, never the registry map lock, so a
    // slow disk parking one session must not stall unrelated opens
    // and acquires.
    SessionRegistry reg(freshDir("disc_serve_test_slowpark"), 2);
    reg.open(loopSpec("slow", 0, 0));
    {
        SessionLease lease = reg.acquire("slow");
        lease->machine().run(300, false);
    }
    reg.setParkDelayForTest(600);
    std::thread evictor([&reg] { EXPECT_TRUE(reg.evict("slow")); });
    // Let the evictor get into park() (which stalls 600 ms first).
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto t0 = std::chrono::steady_clock::now();
    reg.open(loopSpec("other", 1, 1));
    {
        SessionLease lease = reg.acquire("other");
        lease->machine().run(100, false);
    }
    auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    evictor.join();
    reg.setParkDelayForTest(0);
    // The open+acquire finished while the park was still sleeping.
    EXPECT_LT(elapsed.count(), 400)
        << "registry lock held across park I/O";
    // Nobody was corrupted by the overlap.
    {
        SessionLease lease = reg.acquire("slow");
        EXPECT_EQ(sessionDigest(*lease), offlineDigest(0, 300));
    }
    {
        SessionLease lease = reg.acquire("other");
        EXPECT_EQ(sessionDigest(*lease), offlineDigest(1, 100));
    }
}

TEST(SessionRegistry, RejectsHostileSessionIds)
{
    SessionRegistry reg(freshDir("disc_serve_test_ids"), 1);
    EXPECT_THROW(reg.open(loopSpec("../escape", 0, 0)), FatalError);
    EXPECT_THROW(reg.open(loopSpec("", 0, 0)), FatalError);
    EXPECT_THROW(reg.open(loopSpec(".hidden", 0, 0)), FatalError);
    EXPECT_THROW(reg.open(loopSpec("a b", 0, 0)), FatalError);
}

// --- end-to-end over a real socket ------------------------------------

int
connectLoopback(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

Response
transact(int fd, Request req)
{
    static std::atomic<std::uint64_t> seq{1};
    req.seq = seq.fetch_add(1);
    writeFrame(fd, encodeRequest(req));
    std::vector<std::uint8_t> payload;
    EXPECT_TRUE(readFrame(fd, payload));
    Response resp = decodeResponse(payload);
    EXPECT_EQ(resp.seq, req.seq);
    return resp;
}

TEST(ServeServer, ServesRunsAndSurvivesRestartBitIdentically)
{
    std::string dir = freshDir("disc_serve_test_server");
    ServerConfig cfg;
    cfg.stateDir = dir;
    cfg.maxResident = 2;
    cfg.tenants = 2;
    std::uint16_t port;
    {
        ServeServer server(cfg);
        server.start();
        port = server.port();
        int fd = connectLoopback(port);
        for (unsigned s = 0; s < 4; ++s) {
            Request req;
            req.type = MsgType::OpenReq;
            req.tenant = static_cast<TenantId>(s % 2);
            req.session = strprintf("e%u", s);
            req.source = loopSource(s);
            EXPECT_EQ(transact(fd, req).type, MsgType::OpenResp);
        }
        for (unsigned round = 0; round < 3; ++round) {
            for (unsigned s = 0; s < 4; ++s) {
                Request req;
                req.type = MsgType::RunReq;
                req.tenant = static_cast<TenantId>(s % 2);
                req.session = strprintf("e%u", s);
                req.maxCycles = 300;
                req.stopWhenIdle = false;
                Response resp = transact(fd, req);
                ASSERT_EQ(resp.type, MsgType::RunResp);
                EXPECT_EQ(resp.ran, 300u);
            }
        }
        // Unknown sessions and foreign tenants are errors, not
        // crashes.
        Request bad;
        bad.type = MsgType::RunReq;
        bad.session = "nope";
        bad.maxCycles = 1;
        EXPECT_EQ(transact(fd, bad).type, MsgType::ErrorResp);
        bad.tenant = 9;
        EXPECT_EQ(transact(fd, bad).type, MsgType::ErrorResp);
        ::close(fd);
        server.requestStop();
    }
    // A second server on the same state dir resumes every session
    // and continues them bit-identically.
    {
        ServeServer server(cfg);
        server.start();
        int fd = connectLoopback(server.port());
        for (unsigned s = 0; s < 4; ++s) {
            Request run;
            run.type = MsgType::RunReq;
            run.tenant = static_cast<TenantId>(s % 2);
            run.session = strprintf("e%u", s);
            run.maxCycles = 100;
            run.stopWhenIdle = false;
            ASSERT_EQ(transact(fd, run).type, MsgType::RunResp);
            Request query;
            query.type = MsgType::QueryReq;
            query.tenant = static_cast<TenantId>(s % 2);
            query.session = strprintf("e%u", s);
            Response resp = transact(fd, query);
            ASSERT_EQ(resp.type, MsgType::QueryResp);
            EXPECT_EQ(resp.totalCycles, 1000u);
            EXPECT_EQ(resp.digest, offlineDigest(s, 1000))
                << "session e" << s;
        }
        Request stats;
        stats.type = MsgType::StatsReq;
        Response resp = transact(fd, stats);
        ASSERT_EQ(resp.type, MsgType::StatsResp);
        bool found = false;
        for (const auto &[name, value] : resp.counters)
            if (name == "sessions") {
                EXPECT_EQ(value, 4u);
                found = true;
            }
        EXPECT_TRUE(found);
        ::close(fd);
        server.requestStop();
    }
}

TEST(Proto, MalformedFramesAreRejectedNotUB)
{
    std::vector<std::uint8_t> junk = {1, 2, 3};
    EXPECT_THROW(decodeRequest(junk), FatalError);
    EXPECT_THROW(decodeResponse(junk), FatalError);
    Request req;
    req.type = MsgType::RunReq;
    req.session = "s";
    std::vector<std::uint8_t> good = encodeRequest(req);
    good.push_back(0xff); // trailing byte
    EXPECT_THROW(decodeRequest(good), FatalError);
    good.resize(good.size() - 2); // truncated
    EXPECT_THROW(decodeRequest(good), FatalError);
}

TEST(Proto, RequestResponseRoundTrip)
{
    Request req;
    req.type = MsgType::OpenReq;
    req.seq = 77;
    req.tenant = 3;
    req.deadlineMs = 250;
    req.session = "round-trip";
    req.source = loopSource(5);
    req.entry = "main";
    req.streams.push_back({2, "worker"});
    req.extmems.push_back({0x8000, 0x100, 4});
    Request back = decodeRequest(encodeRequest(req));
    EXPECT_EQ(back.seq, 77u);
    EXPECT_EQ(back.tenant, 3u);
    EXPECT_EQ(back.deadlineMs, 250u);
    EXPECT_EQ(back.session, "round-trip");
    EXPECT_EQ(back.source, req.source);
    ASSERT_EQ(back.streams.size(), 1u);
    EXPECT_EQ(back.streams[0].stream, 2u);
    EXPECT_EQ(back.streams[0].label, "worker");
    ASSERT_EQ(back.extmems.size(), 1u);
    EXPECT_EQ(back.extmems[0].base, 0x8000u);
    EXPECT_EQ(back.extmems[0].latency, 4u);

    Response resp;
    resp.type = MsgType::BusyResp;
    resp.seq = 78;
    resp.busy = BusyReason::Deadline;
    resp.error = "shed";
    Response rback = decodeResponse(encodeResponse(resp));
    EXPECT_EQ(rback.type, MsgType::BusyResp);
    EXPECT_EQ(rback.busy, BusyReason::Deadline);
    EXPECT_EQ(rback.error, "shed");
}

} // namespace
