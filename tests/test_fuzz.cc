/**
 * @file
 * Robustness fuzzing: malformed input must produce FatalError
 * diagnostics (never crashes, panics or hangs) across the assembler,
 * the DCC front end and the instruction decoder; random legal
 * programs must never wedge the machine.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"
#include "dcc/dcc.hh"
#include "isa/assembler.hh"
#include "sim/interp.hh"
#include "sim/machine.hh"

namespace disc
{
namespace
{

/** Random printable text with asm-flavoured characters. */
std::string
randomText(Rng &rng, std::size_t length, const char *alphabet)
{
    std::string out;
    std::size_t n = std::strlen(alphabet);
    for (std::size_t i = 0; i < length; ++i)
        out += alphabet[rng.below(n)];
    return out;
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzSeed, AssemblerNeverCrashes)
{
    Rng rng(GetParam());
    const char *alphabet =
        "abcdefghijklmnopqrstuvwxyz0123456789 ,.;:+-[]()\\\n\t#@_";
    for (int round = 0; round < 50; ++round) {
        std::string src =
            randomText(rng, 20 + rng.below(200), alphabet);
        try {
            Program p = assemble(src);
            // If it assembled, the image must be loadable.
            Machine m;
            m.load(p);
        } catch (const FatalError &) {
            // Diagnosed: fine.
        }
    }
}

TEST_P(FuzzSeed, AssemblerMangledValidPrograms)
{
    // Take a valid program and inject random mutations; every outcome
    // must be a clean diagnosis or a consistent assembly.
    const std::string base = R"(
        .macro bump reg
            addi \reg, \reg, 1
        .endm
        .org 0x20
        main:
            ldi r0, 5
        loop:
            bump r0
            cmpi r0, 20
            bne loop
            stmd r0, [0x40]
            halt
    )";
    Rng rng(GetParam() * 977 + 3);
    for (int round = 0; round < 50; ++round) {
        std::string src = base;
        unsigned edits = 1 + rng.below(4);
        for (unsigned e = 0; e < edits; ++e) {
            std::size_t pos = rng.below(src.size());
            src[pos] = static_cast<char>(33 + rng.below(90));
        }
        try {
            assemble(src);
        } catch (const FatalError &) {
        }
    }
}

TEST_P(FuzzSeed, DccNeverCrashes)
{
    Rng rng(GetParam() * 31 + 7);
    const char *alphabet =
        "abcdefghijklmnop 0123456789(){};=+-*<>&|^,fnvarwhilereturn\n";
    for (int round = 0; round < 50; ++round) {
        std::string src =
            randomText(rng, 20 + rng.below(300), alphabet);
        try {
            dcc::compile(src);
        } catch (const FatalError &) {
        }
    }
}

TEST_P(FuzzSeed, DecoderTotality)
{
    // Every 24-bit word either decodes to a legal instruction whose
    // re-encoding is stable, or is flagged illegal.
    Rng rng(GetParam() * 131 + 17);
    for (int i = 0; i < 20000; ++i) {
        InstWord w = static_cast<InstWord>(rng.next64() & 0xffffff);
        if (!isLegal(w))
            continue;
        Instruction inst = decode(w);
        Instruction again = decode(encode(inst));
        EXPECT_EQ(inst, again) << std::hex << w;
        // Rendering must always succeed.
        EXPECT_FALSE(inst.toString().empty());
    }
}

TEST_P(FuzzSeed, MachineSurvivesArbitraryLegalCode)
{
    // Fill program memory with random *legal* words and let all four
    // streams run: whatever happens (stack traps, illegal-use RETIs,
    // wild jumps), the machine must keep stepping and never panic.
    Rng rng(GetParam() * 733 + 29);
    Program p;
    for (int i = 0; i < 512; ++i) {
        InstWord w;
        do {
            w = static_cast<InstWord>(rng.next64() & 0xffffff);
        } while (!isLegal(w) ||
                 decode(w).op == Opcode::LD ||
                 decode(w).op == Opcode::ST);
        // LD/ST excluded: no devices attached, they would only add
        // bus faults (covered elsewhere).
        p.code.push_back(w);
    }
    Machine m;
    m.load(p);
    for (StreamId s = 0; s < 4; ++s)
        m.startStream(s, static_cast<PAddr>(rng.below(512)));
    m.run(20000, false);
    EXPECT_EQ(m.stats().cycles, 20000u);

    // The sequential golden model gets the same robustness bar: the
    // same arbitrary code must never panic or hang it either. Its
    // step loop must come back — by halting or by exhausting the
    // budget — with the PC still a sane program address.
    for (int run = 0; run < 4; ++run) {
        Interp ref;
        ref.load(p);
        ref.setPc(static_cast<PAddr>(rng.below(512)));
        std::uint64_t steps = ref.run(20000);
        EXPECT_LE(steps, 20000u);
        EXPECT_TRUE(ref.halted() || steps == 20000u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace disc
