/**
 * @file
 * Unit tests for the common substrate: logging, RNG/Poisson sampling,
 * statistics accumulators and the table renderer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/threadpool.hh"

namespace disc
{
namespace
{

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("a=%d b=%s", 3, "x"), "a=3 b=x");
    EXPECT_EQ(strprintf("%04x", 0xabu), "00ab");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 1), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error %s", "x"), FatalError);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = r.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
}

class PoissonMeanTest : public ::testing::TestWithParam<double>
{};

TEST_P(PoissonMeanTest, MatchesMeanAndVariance)
{
    const double mean = GetParam();
    Rng r(123);
    RunningStat s;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        s.add(static_cast<double>(r.poisson(mean)));
    // Poisson: mean == variance. Allow 5 standard errors.
    double se = std::sqrt(mean / n);
    EXPECT_NEAR(s.mean(), mean, 5 * se + 1e-9);
    EXPECT_NEAR(s.variance(), mean, 0.05 * mean + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.3, 1.0, 4.0, 12.0, 29.0, 31.0,
                                           80.0, 250.0));

TEST(Rng, PoissonZeroMean)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, ExponentialMean)
{
    Rng r(77);
    RunningStat s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.exponential(5.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.2);
    EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, GeometricMean)
{
    Rng r(78);
    RunningStat s;
    const double p = 0.25;
    for (int i = 0; i < 100000; ++i)
        s.add(static_cast<double>(r.geometric(p)));
    EXPECT_NEAR(s.mean(), (1 - p) / p, 0.1);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    Rng r(3);
    RunningStat whole, a, b;
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniform() * 10;
        whole.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    RunningStat copy = a;
    a.merge(b);
    EXPECT_EQ(a.count(), copy.count());
    EXPECT_DOUBLE_EQ(a.mean(), copy.mean());
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsAndPercentiles)
{
    Histogram h(10);
    for (std::uint64_t v : {0u, 1u, 1u, 2u, 2u, 2u, 9u, 15u})
        h.add(v);
    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.binCount(2), 3u);
    EXPECT_EQ(h.binCount(10), 1u); // overflow bucket
    EXPECT_EQ(h.maxValue(), 15u);
    EXPECT_EQ(h.percentile(0.5), 2u);
    EXPECT_EQ(h.percentile(1.0), 10u); // overflow reported as numBins
}

TEST(Histogram, MeanIncludesOverflow)
{
    Histogram h(4);
    h.add(2);
    h.add(10);
    EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(Histogram, RenderNonEmpty)
{
    Histogram h(8);
    h.add(1);
    h.add(1);
    h.add(3);
    std::string out = h.render();
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Table, RendersAlignedRows)
{
    Table t("Caption");
    t.setHeader({"load", "PD", "delta"});
    t.addRow({"load 1", Table::cell(0.5, 3), Table::cell(12.3, 1)});
    t.addRow({"load 22", Table::cell(0.75, 3), Table::cell(-3.0, 1)});
    std::string out = t.render();
    EXPECT_NE(out.find("Caption"), std::string::npos);
    EXPECT_NE(out.find("load 22"), std::string::npos);
    EXPECT_NE(out.find("0.750"), std::string::npos);
    EXPECT_NE(out.find("-3.0"), std::string::npos);
    // Every body line has the same width.
    std::size_t pos = out.find('\n');
    std::size_t first = out.find('+');
    std::string rule = out.substr(first, out.find('\n', first) - first);
    EXPECT_GT(rule.size(), 10u);
    (void)pos;
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t("x");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), PanicError);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<unsigned>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    unsigned sum = 0; // safe: no workers, body runs on this thread
    pool.parallelFor(10, [&](std::size_t i) {
        sum += static_cast<unsigned>(i);
    });
    EXPECT_EQ(sum, 45u);
}

TEST(ThreadPool, ZeroIterationsIsANoop)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<unsigned> count{0};
    pool.parallelFor(8, [&](std::size_t) {
        // Inner calls from pool threads must not deadlock; they run
        // serially on the calling thread.
        pool.parallelFor(8, [&](std::size_t) { count.fetch_add(1); });
    });
    EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<unsigned> count{0};
        pool.parallelFor(round + 1,
                         [&](std::size_t) { count.fetch_add(1); });
        EXPECT_EQ(count.load(), static_cast<unsigned>(round + 1));
    }
}

} // namespace
} // namespace disc
