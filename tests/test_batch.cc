/**
 * @file
 * Batched lockstep execution equivalence. Scalar stepping is the
 * oracle: every trace line, statistic, checkpoint byte and run digest
 * a Machine produces under MachineBatch::run()/step() must be
 * bit-identical to the same machine driven by Machine::run()/step(),
 * at every batch width. Width 1 pins the degenerate case, width 3
 * leaves one lane short of the quantum rotation and (with three
 * active streams against a four-deep pipe) exercises multi-slot
 * in-flight retirement, and width 16 is the serve/experiment shape.
 * Equivalence checks assert the hot lane actually engaged so the
 * comparison is non-vacuous; opt-out tests assert the opposite.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "serve/session.hh"
#include "sim/batch.hh"
#include "sim/digest.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "verify/differential.hh"
#include "verify/generator.hh"
#include "verify/invariants.hh"

#ifndef DISC_SOURCE_DIR
#define DISC_SOURCE_DIR "."
#endif

namespace disc
{
namespace
{

constexpr unsigned kWidths[] = {1, 3, 16};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing sample " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Save, override, and on destruction restore one env variable. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = ::getenv(name))
            saved_ = old;
        else
            unset_ = true;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (unset_)
            ::unsetenv(name_);
        else
            ::setenv(name_, saved_.c_str(), 1);
    }

  private:
    const char *name_;
    std::string saved_;
    bool unset_ = false;
};

// ---- Classification ----

TEST(BatchClass, ExternalAndControlOpsNeverRunHot)
{
    // External accesses move wait states; stream/interrupt control
    // moves activity. Either would thaw the frozen chunk tallies.
    EXPECT_FALSE(batchHotUop(Uop::LD));
    EXPECT_FALSE(batchHotUop(Uop::ST));
    EXPECT_FALSE(batchHotUop(Uop::SWI));
    EXPECT_FALSE(batchHotUop(Uop::CLRI));
    EXPECT_FALSE(batchHotUop(Uop::HALT));
    EXPECT_FALSE(batchHotUop(Uop::FORK));
    EXPECT_FALSE(batchHotUop(Uop::FORKR));
    // Slot-table and running-level changes touch neither.
    EXPECT_TRUE(batchHotUop(Uop::SCHED));
    EXPECT_TRUE(batchHotUop(Uop::RETI));
    EXPECT_TRUE(batchHotUop(Uop::ADD));
}

TEST(BatchClass, EveryPeelReasonHasAName)
{
    for (unsigned p = 0; p < kNumBatchPeels; ++p)
        EXPECT_STRNE(batchPeelName(static_cast<BatchPeel>(p)), "?");
}

// ---- Equivalence against scalar stepping ----

/**
 * The equivalence tests exist to exercise the batched hot lane, so
 * the fixture neutralises every process-wide opt-out it depends on:
 * the lane needs the uop tables, attempts superblocks inside chunks,
 * and reads DISC_NO_BATCH at machine construction.
 */
class BatchEquivalence : public ::testing::Test
{
    ScopedEnv uops_{"DISC_NO_UOP", "0"};
    ScopedEnv sblocks_{"DISC_NO_SUPERBLOCK", "0"};
    ScopedEnv batch_{"DISC_NO_BATCH", "0"};
};

/** Everything one run produces that the other must reproduce. */
struct RunRecord
{
    std::string trace;
    std::vector<std::uint8_t> checkpoint;
    MachineStats stats;
};

/**
 * Stats fields that must match between the batched and scalar paths,
 * as text. The fast-forward and superblock counter families are
 * intentionally absent: they are stepping-mode diagnostics (the hot
 * lane steps spans the scalar path would fast-forward and retries
 * superblocks on its own cadence), excluded from checkpoints and
 * digests for exactly this reason.
 */
std::string
statsFingerprint(const MachineStats &st)
{
    std::string fp = strprintf(
        "c=%llu b=%llu r=%llu j=%llu q=%llu w=%llu d=%llu bub=%llu "
        "rd=%llu wr=%llu rej=%llu vec=%llu ill=%llu",
        (unsigned long long)st.cycles, (unsigned long long)st.busyCycles,
        (unsigned long long)st.totalRetired,
        (unsigned long long)st.redirects,
        (unsigned long long)st.squashedJump,
        (unsigned long long)st.squashedWait,
        (unsigned long long)st.squashedDeact,
        (unsigned long long)st.bubbles,
        (unsigned long long)st.externalReads,
        (unsigned long long)st.externalWrites,
        (unsigned long long)st.busBusyRejections,
        (unsigned long long)st.vectorsTaken,
        (unsigned long long)st.illegalInstructions);
    for (StreamId s = 0; s < kNumStreams; ++s) {
        fp += strprintf(" s%u=%llu/%llu/%llu/%llu", unsigned(s),
                        (unsigned long long)st.retired[s],
                        (unsigned long long)st.readyCycles[s],
                        (unsigned long long)st.waitAbiCycles[s],
                        (unsigned long long)st.inactiveCycles[s]);
    }
    return fp;
}

void
expectEquivalent(const RunRecord &batched, const RunRecord &scalar,
                 const std::string &what)
{
    EXPECT_EQ(batched.trace, scalar.trace) << what;
    EXPECT_EQ(batched.checkpoint, scalar.checkpoint) << what;
    EXPECT_EQ(statsFingerprint(batched.stats),
              statsFingerprint(scalar.stats))
        << what;
}

/**
 * Run @p width copies of a program through one MachineBatch and one
 * scalar reference machine; every lane must reproduce the reference
 * bit for bit. @p setup runs per machine (attach devices, start
 * streams) and must not leave observers attached.
 */
template <typename Setup>
void
checkSample(const Program &p, unsigned width, Cycle budget, Setup setup,
            bool expect_idle = true, BatchStats *batch_stats = nullptr)
{
    RunRecord scalar;
    {
        Machine m;
        m.load(p);
        setup(m);
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(budget, expect_idle);
        if (expect_idle) {
            EXPECT_TRUE(m.idle());
        }
        scalar = RunRecord{trace.render(), m.saveState(), m.stats()};
    }

    std::vector<std::unique_ptr<Machine>> ms;
    std::vector<std::unique_ptr<ExecTrace>> traces;
    MachineBatch mb(width);
    for (unsigned i = 0; i < width; ++i) {
        ms.push_back(std::make_unique<Machine>());
        ms.back()->load(p);
        setup(*ms.back());
        traces.push_back(std::make_unique<ExecTrace>(1u << 20));
        ms.back()->setExecTrace(traces.back().get());
        mb.add(ms.back().get());
    }
    mb.run(budget, expect_idle);
    for (unsigned i = 0; i < width; ++i) {
        if (expect_idle) {
            EXPECT_TRUE(ms[i]->idle()) << "lane " << i;
        }
        RunRecord lane{traces[i]->render(), ms[i]->saveState(),
                       ms[i]->stats()};
        expectEquivalent(lane, scalar,
                         strprintf("width %u lane %u", width, i));
    }
    if (batch_stats)
        *batch_stats = mb.stats();
}

TEST_F(BatchEquivalence, GcdSampleAllWidths)
{
    Program p = assemble(
        readFile(std::string(DISC_SOURCE_DIR) + "/examples/asm/gcd.s"));
    for (unsigned width : kWidths) {
        BatchStats bs;
        checkSample(
            p, width, 10000,
            [&](Machine &m) { m.startStream(0, p.symbol("main")); },
            /*expect_idle=*/true, &bs);
        EXPECT_GT(bs.hotCycles, 0u) << "width " << width;
    }
}

TEST_F(BatchEquivalence, RtosMailboxSample)
{
    // No "main" symbol: start at address 0 like disc-run's fallback.
    Program p = assemble(readFile(std::string(DISC_SOURCE_DIR) +
                                  "/examples/asm/rtos_mailbox.s"));
    checkSample(
        p, 3, 200000, [&](Machine &m) { m.startStream(0, 0); },
        /*expect_idle=*/false);
}

/** The pure compute shape the batch exists for: all lanes stay hot. */
TEST_F(BatchEquivalence, ComputeLoopStaysHot)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
        loop:
            add r3, r1, r2
            add r4, r3, r2
            sub r5, r4, r1
            jmp loop
    )");
    for (unsigned width : kWidths) {
        BatchStats bs;
        checkSample(
            p, width, 50000,
            [&](Machine &m) {
                for (StreamId s = 0; s < kNumStreams; ++s)
                    m.startStream(s, p.symbol("entry"));
            },
            /*expect_idle=*/false, &bs);
        // Nothing in this loop leaves the regime: the budget (Done
        // peel), not an exclusion, must end every chunk.
        EXPECT_GT(bs.hotCycles, 0u) << "width " << width;
        EXPECT_EQ(bs.peels[unsigned(BatchPeel::Event)], 0u);
        EXPECT_EQ(bs.peels[unsigned(BatchPeel::Observed)], 0u);
        EXPECT_EQ(bs.peels[unsigned(BatchPeel::Disabled)], 0u);
    }
}

/**
 * step() semantics, three active streams against a four-deep pipe:
 * issue period 3 < depth 4, so a stream's next slot issues while its
 * previous one is still in flight — the multi-slot retirement path
 * the four-stream round-robin shape never reaches.
 */
TEST_F(BatchEquivalence, SteppedMultiFlightStreams)
{
    Program p = assemble(R"(
        .org 0x20
        e0:
            ldi r1, 1
        l0: add r2, r2, r1
            sub r3, r2, r1
            jmp l0
        e1:
            ldi r1, 3
        l1: add r2, r2, r1
            add r3, r3, r2
            jmp l1
        e2:
            ldi r1, 5
        l2: sub r2, r2, r1
            add r3, r2, r2
            jmp l2
    )");
    auto setup = [&](Machine &m) {
        m.startStream(0, p.symbol("e0"));
        m.startStream(1, p.symbol("e1"));
        m.startStream(2, p.symbol("e2"));
    };
    constexpr Cycle kChunk = 9973; // odd: quantum-misaligned on purpose
    constexpr int kChunks = 5;

    RunRecord scalar;
    {
        Machine m;
        m.load(p);
        setup(m);
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        for (Cycle i = 0; i < kChunk * kChunks; ++i)
            m.step();
        scalar = RunRecord{trace.render(), m.saveState(), m.stats()};
    }
    for (unsigned width : kWidths) {
        std::vector<std::unique_ptr<Machine>> ms;
        std::vector<std::unique_ptr<ExecTrace>> traces;
        MachineBatch mb(width);
        for (unsigned i = 0; i < width; ++i) {
            ms.push_back(std::make_unique<Machine>());
            ms.back()->load(p);
            setup(*ms.back());
            traces.push_back(std::make_unique<ExecTrace>(1u << 20));
            ms.back()->setExecTrace(traces.back().get());
            mb.add(ms.back().get());
        }
        for (int c = 0; c < kChunks; ++c)
            mb.step(kChunk);
        EXPECT_GT(mb.stats().hotCycles, 0u) << "width " << width;
        for (unsigned i = 0; i < width; ++i) {
            RunRecord lane{traces[i]->render(), ms[i]->saveState(),
                           ms[i]->stats()};
            expectEquivalent(lane, scalar,
                             strprintf("width %u lane %u", width, i));
        }
    }
}

/** External accesses leave the regime and re-enter it, per lane. */
TEST_F(BatchEquivalence, SlowDeviceLoadLoop)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10     ; device at 0x1000
            ldi  r1, 20       ; iterations
            ldi  r2, 0        ; accumulator
        loop:
            ld   r3, [g0]
            add  r2, r2, r3
            st   r2, [g0]
            subi r1, r1, 1
            cmpi r1, 0
            bne  loop
            stmd r2, [0x40]
            halt
    )");
    constexpr unsigned kWidth = 3;
    auto record = [&](bool use_batch) {
        std::vector<std::unique_ptr<Machine>> ms;
        std::vector<std::unique_ptr<ExternalMemoryDevice>> devs;
        std::vector<std::unique_ptr<ExecTrace>> traces;
        MachineBatch mb(kWidth);
        for (unsigned i = 0; i < kWidth; ++i) {
            ms.push_back(std::make_unique<Machine>());
            ms.back()->load(p);
            devs.push_back(
                std::make_unique<ExternalMemoryDevice>(64, 60));
            devs.back()->poke(0, 5);
            ms.back()->attachDevice(0x1000, 64, devs.back().get());
            ms.back()->startStream(0, p.symbol("main"));
            traces.push_back(std::make_unique<ExecTrace>(1u << 20));
            ms.back()->setExecTrace(traces.back().get());
        }
        std::vector<RunRecord> out;
        if (use_batch) {
            for (auto &m : ms)
                mb.add(m.get());
            mb.run(200000);
            // The LD/ST pair must have peeled lanes out of the hot
            // chunk (non-hot issue) and the 60-cycle completions must
            // have ended chunks at the event horizon.
            EXPECT_GT(mb.stats().peels[unsigned(BatchPeel::NonHot)], 0u);
            EXPECT_GT(mb.stats().hotCycles, 0u);
        } else {
            for (auto &m : ms)
                m->run(200000);
        }
        for (unsigned i = 0; i < kWidth; ++i) {
            EXPECT_TRUE(ms[i]->idle()) << "lane " << i;
            out.push_back(RunRecord{traces[i]->render(),
                                    ms[i]->saveState(), ms[i]->stats()});
        }
        return out;
    };
    std::vector<RunRecord> batched = record(true);
    std::vector<RunRecord> scalar = record(false);
    for (unsigned i = 0; i < kWidth; ++i)
        expectEquivalent(batched[i], scalar[i],
                         strprintf("lane %u", i));
}

/** Timer interrupts: vector delivery must be identical in batch. */
TEST_F(BatchEquivalence, TimerDrivenInterrupts)
{
    Program p = assemble(R"(
        .org 3              ; stream 0, level 3: timer tick
            jmp tick
        .org 0x20
        main:
            ldi  r1, 0
            stmd r1, [0x40]
            ldi  r2, 6       ; ticks to count
            ldi  r3, 0x09
            mov  imr, r3     ; unmask levels 0 and 3
        wait_loop:
            ldmd r1, [0x40]
            cmp  r1, r2
            bne  wait_loop
            halt
        tick:
            ldmd r1, [0x40]
            addi r1, r1, 1
            stmd r1, [0x40]
            clri 3
            reti
    )");
    constexpr unsigned kWidth = 3;
    auto record = [&](bool use_batch) {
        std::vector<std::unique_ptr<Machine>> ms;
        std::vector<std::unique_ptr<TimerDevice>> timers;
        std::vector<std::unique_ptr<ExecTrace>> traces;
        MachineBatch mb(kWidth);
        for (unsigned i = 0; i < kWidth; ++i) {
            ms.push_back(std::make_unique<Machine>());
            ms.back()->load(p);
            timers.push_back(std::make_unique<TimerDevice>(700, 0, 3));
            ms.back()->attachDevice(0x2000, 4, timers.back().get());
            ms.back()->startStream(0, p.symbol("main"));
            traces.push_back(std::make_unique<ExecTrace>(1u << 20));
            ms.back()->setExecTrace(traces.back().get());
        }
        std::vector<RunRecord> out;
        if (use_batch) {
            for (auto &m : ms)
                mb.add(m.get());
            mb.run(100000, /*stop_when_idle=*/true);
        } else {
            for (auto &m : ms)
                m->run(100000, /*stop_when_idle=*/true);
        }
        for (unsigned i = 0; i < kWidth; ++i) {
            EXPECT_TRUE(ms[i]->idle()) << "lane " << i;
            EXPECT_EQ(ms[i]->internalMemory().read(0x40), 6)
                << "lane " << i;
            out.push_back(RunRecord{traces[i]->render(),
                                    ms[i]->saveState(), ms[i]->stats()});
        }
        return out;
    };
    std::vector<RunRecord> batched = record(true);
    std::vector<RunRecord> scalar = record(false);
    for (unsigned i = 0; i < kWidth; ++i)
        expectEquivalent(batched[i], scalar[i],
                         strprintf("lane %u", i));
}

/** Generated multi-stream workloads, several seeds, batched. */
TEST_F(BatchEquivalence, GeneratedWorkloads)
{
    for (std::uint64_t seed : {13u, 29u, 53u}) {
        GenOptions opts;
        MultiStreamProgram msp = generateMultiStream(seed, opts);

        RunRecord scalar;
        {
            MachineRig rig(msp);
            ExecTrace trace(1u << 20);
            rig.machine().setExecTrace(&trace);
            rig.start();
            rig.machine().run(rig.cycleBudget());
            EXPECT_TRUE(rig.machine().idle()) << "seed " << seed;
            scalar = RunRecord{trace.render(), rig.machine().saveState(),
                               rig.machine().stats()};
        }

        constexpr unsigned kWidth = 3;
        std::vector<std::unique_ptr<MachineRig>> rigs;
        std::vector<std::unique_ptr<ExecTrace>> traces;
        MachineBatch mb(kWidth);
        Cycle budget = 0;
        for (unsigned i = 0; i < kWidth; ++i) {
            rigs.push_back(std::make_unique<MachineRig>(msp));
            traces.push_back(std::make_unique<ExecTrace>(1u << 20));
            rigs.back()->machine().setExecTrace(traces.back().get());
            rigs.back()->start();
            budget = rigs.back()->cycleBudget();
            mb.add(&rigs.back()->machine());
        }
        mb.run(budget);
        for (unsigned i = 0; i < kWidth; ++i) {
            EXPECT_TRUE(rigs[i]->machine().idle())
                << "seed " << seed << " lane " << i;
            RunRecord lane{traces[i]->render(),
                           rigs[i]->machine().saveState(),
                           rigs[i]->machine().stats()};
            expectEquivalent(lane, scalar,
                             strprintf("seed %llu lane %u",
                                       (unsigned long long)seed, i));
        }
    }
}

/**
 * The verification safety net holds under the batch API. Observers
 * need every cycle, so these lanes peel to the scalar path — the
 * assertion is that batching an observed machine degrades to exactly
 * scalar behaviour, not that the hot lane engages.
 */
TEST_F(BatchEquivalence, ObservedLanesPeelButStayCorrect)
{
    for (std::uint64_t seed : {7u, 19u}) {
        GenOptions opts;
        MultiStreamProgram msp = generateMultiStream(seed, opts);
        constexpr unsigned kWidth = 3;
        std::vector<std::unique_ptr<MachineRig>> rigs;
        std::vector<std::unique_ptr<InvariantChecker>> checkers;
        MachineBatch mb(kWidth);
        Cycle budget = 0;
        for (unsigned i = 0; i < kWidth; ++i) {
            rigs.push_back(std::make_unique<MachineRig>(msp));
            checkers.push_back(
                std::make_unique<InvariantChecker>(rigs.back()->machine()));
            rigs.back()->machine().setObserver(checkers.back().get());
            rigs.back()->start();
            budget = rigs.back()->cycleBudget();
            mb.add(&rigs.back()->machine());
        }
        mb.run(budget);
        EXPECT_GT(mb.stats().peels[unsigned(BatchPeel::Observed)], 0u);
        EXPECT_EQ(mb.stats().hotCycles, 0u);
        for (unsigned i = 0; i < kWidth; ++i) {
            EXPECT_TRUE(rigs[i]->machine().idle())
                << "seed " << seed << " lane " << i;
            for (const std::string &d : compareWithReference(*rigs[i]))
                ADD_FAILURE() << "seed " << seed << " lane " << i
                              << ": " << d;
            EXPECT_TRUE(checkers[i]->ok()) << checkers[i]->report();
            rigs[i]->machine().setObserver(nullptr);
        }
    }
}

// ---- Checkpoints and the serve park/restore path ----

/** Same discipline as BatchEquivalence (see above). */
class BatchCheckpoint : public ::testing::Test
{
    ScopedEnv uops_{"DISC_NO_UOP", "0"};
    ScopedEnv sblocks_{"DISC_NO_SUPERBLOCK", "0"};
    ScopedEnv batch_{"DISC_NO_BATCH", "0"};
};

/** A multi-stream loop the hot lane is guaranteed to engage on. */
Program
hotLoop(unsigned k)
{
    return assemble(strprintf(".org 0x20\n"
                              "main:\n"
                              "    ldi r1, %u\n"
                              "    ldi r2, 2\n"
                              "loop:\n"
                              "    add r3, r1, r2\n"
                              "    add r4, r3, r2\n"
                              "    sub r5, r4, r1\n"
                              "    jmp loop\n",
                              k));
}

TEST_F(BatchCheckpoint, RestoredRunMatchesBatchAndScalar)
{
    // Checkpoint at N cycles, continue M more: all four end states
    // (straight-through and restored, batched and scalar) agree.
    Program p = hotLoop(5);
    auto start = [&](Machine &m) {
        for (StreamId s = 0; s < kNumStreams; ++s)
            m.startStream(s, p.symbol("main"));
    };
    auto drive = [&](Machine &m, bool use_batch, Cycle n) {
        if (use_batch) {
            MachineBatch mb(1);
            mb.add(&m);
            mb.run(n, false);
            EXPECT_GT(mb.stats().hotCycles, 0u);
        } else {
            m.run(n, false);
        }
    };
    auto finish = [&](bool use_batch, bool via_checkpoint) {
        Machine m;
        m.load(p);
        start(m);
        if (via_checkpoint) {
            drive(m, use_batch, 4000);
            std::vector<std::uint8_t> snap = m.saveState();
            Machine r;
            r.load(p);
            r.restoreState(snap);
            drive(r, use_batch, 4000);
            return r.saveState();
        }
        drive(m, use_batch, 8000);
        return m.saveState();
    };
    std::vector<std::uint8_t> want = finish(false, false);
    EXPECT_EQ(finish(false, true), want);
    EXPECT_EQ(finish(true, false), want);
    EXPECT_EQ(finish(true, true), want);
}

TEST_F(BatchCheckpoint, ServeParkRestoreStaysBitIdentical)
{
    // disc-serve eviction under batched dispatch: three sessions, two
    // resident slots, leases advanced pairwise through a MachineBatch
    // so every round parks one session and restores another. The
    // offline control never parks and never batches; each session's
    // digest must reproduce it exactly.
    namespace fs = std::filesystem;
    std::string dir =
        (fs::temp_directory_path() / "disc_batch_park_restore").string();
    fs::remove_all(dir);
    serve::SessionRegistry reg(dir, 2);
    auto spec = [](const std::string &id, unsigned k) {
        serve::SessionSpec s;
        s.id = id;
        s.tenant = 0;
        s.source = strprintf(".org 0x20\n"
                             "main:\n"
                             "    ldi r1, %u\n"
                             "loop:\n"
                             "    add r2, r2, r1\n"
                             "    sub r3, r2, r1\n"
                             "    jmp loop\n",
                             k);
        return s;
    };
    reg.open(spec("a", 2));
    reg.open(spec("b", 6));
    reg.open(spec("c", 9));
    MachineBatch mb(2);
    const char *pairs[][2] = {{"a", "b"}, {"b", "c"}, {"c", "a"}};
    for (int round = 0; round < 2; ++round) {
        for (auto &pr : pairs) {
            serve::SessionLease la = reg.acquire(pr[0]);
            serve::SessionLease lb = reg.acquire(pr[1]);
            mb.clear();
            mb.add(&la->machine());
            mb.add(&lb->machine());
            mb.run(250, false);
        }
    }
    EXPECT_GT(reg.evictedTotal(), 0u);
    EXPECT_GT(reg.restoredTotal(), 0u);
    EXPECT_GT(mb.stats().hotCycles, 0u);
    auto offline = [&](unsigned k) {
        serve::SessionSpec s = spec("x", k);
        Program prog = assemble(s.source);
        Machine m;
        m.load(prog);
        ExecTrace trace(serve::kSessionTraceEntries);
        m.setExecTrace(&trace);
        m.startStream(0, prog.symbol("main"));
        m.run(1000, false); // 2 rounds x 2 appearances x 250 cycles
        return runDigest(m, trace);
    };
    {
        serve::SessionLease lease = reg.acquire("a");
        EXPECT_EQ(serve::sessionDigest(*lease), offline(2));
    }
    {
        serve::SessionLease lease = reg.acquire("b");
        EXPECT_EQ(serve::sessionDigest(*lease), offline(6));
    }
    {
        serve::SessionLease lease = reg.acquire("c");
        EXPECT_EQ(serve::sessionDigest(*lease), offline(9));
    }
}

// ---- Opt-outs ----

TEST(BatchExec, EnvironmentOverrideDisables)
{
    // Restores whatever the suite was launched with on scope exit.
    ScopedEnv restore("DISC_NO_BATCH", "1");
    Machine off;
    EXPECT_FALSE(off.batchExecEnabled());
    ::setenv("DISC_NO_BATCH", "0", 1);
    Machine zero;
    EXPECT_TRUE(zero.batchExecEnabled());
    ::unsetenv("DISC_NO_BATCH");
    Machine on;
    EXPECT_TRUE(on.batchExecEnabled());
    MachineConfig cfg;
    cfg.batchExec = false;
    Machine cfg_off(cfg);
    EXPECT_FALSE(cfg_off.batchExecEnabled());
}

TEST(BatchExec, DisabledBatchRunsSequentiallyAndIdentically)
{
    // With the opt-out set, MachineBatch must stay a plain sequential
    // runner: same results, hot lane never engaged.
    ScopedEnv no_batch("DISC_NO_BATCH", "1");
    Program p = hotLoop(1);
    auto run = [&](bool use_batch) {
        Machine m;
        m.load(p);
        m.startStream(0, p.symbol("main"));
        if (use_batch) {
            MachineBatch mb(1);
            mb.add(&m);
            mb.run(10000, false);
            EXPECT_EQ(mb.stats().hotCycles, 0u);
            EXPECT_GT(mb.stats().peels[unsigned(BatchPeel::Disabled)],
                      0u);
        } else {
            m.run(10000, false);
        }
        return m.saveState();
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(BatchExec, UopDispatchOffImpliesScalarLanes)
{
    // The hot lane issues through the uop tables; without them the
    // lane must fall back to scalar stepping, still bit-identical.
    ScopedEnv uops("DISC_NO_UOP", "0");
    ScopedEnv batch("DISC_NO_BATCH", "0");
    Program p = hotLoop(4);
    auto run = [&](bool uop_dispatch) {
        Machine m;
        m.setUopDispatch(uop_dispatch);
        m.load(p);
        m.startStream(0, p.symbol("main"));
        MachineBatch mb(1);
        mb.add(&m);
        mb.run(10000, false);
        if (!uop_dispatch) {
            EXPECT_EQ(mb.stats().hotCycles, 0u);
            EXPECT_GT(mb.stats().peels[unsigned(BatchPeel::Disabled)],
                      0u);
        } else {
            EXPECT_GT(mb.stats().hotCycles, 0u);
        }
        return m.saveState();
    };
    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace disc
