/**
 * @file
 * Fault-injecting protocol tests for the epoll event loop: a raw
 * socket client feeds the server pathological byte streams — frames
 * delivered one byte at a time, length prefixes split across writes,
 * stalls mid-frame, half-closed sockets, floods sent without reading
 * replies — and every test asserts the loop neither blocks nor
 * corrupts a neighbouring session, and sheds load at the protocol
 * level (Busy/Error responses) instead of wedging.
 */

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "serve/proto.hh"
#include "serve/server.hh"
#include "sim/digest.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

using namespace disc;
using namespace disc::serve;

namespace
{

/** An endless, never-idle workload with a per-session constant. */
std::string
loopSource(unsigned k)
{
    return strprintf(".org 0x20\n"
                     "main:\n"
                     "    ldi  r0, %u\n"
                     "    ldi  r1, 1\n"
                     "loop:\n"
                     "    add  r1, r1, r0\n"
                     "    mul  r2, r1, r0\n"
                     "    sub  r3, r2, r1\n"
                     "    jmp  loop\n",
                     3 + k);
}

/** The digest an offline machine reaches after @p cycles. */
std::uint64_t
offlineDigest(unsigned k, Cycle cycles)
{
    Program prog = assemble(loopSource(k));
    Machine m;
    m.load(prog);
    ExecTrace trace(kSessionTraceEntries);
    m.setExecTrace(&trace);
    m.startStream(0, prog.symbol("main"));
    m.run(cycles, false);
    return runDigest(m, trace);
}

/** A fresh, empty state directory for one test. */
std::string
freshDir(const std::string &name)
{
    std::string dir =
        (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(dir);
    return dir;
}

int
connectLoopback(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

/** Frame bytes as they go on the wire: 32-bit LE length + payload. */
std::vector<std::uint8_t>
wireFrame(const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out(4 + payload.size());
    std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    std::memcpy(out.data(), &len, 4);
    std::memcpy(out.data() + 4, payload.data(), payload.size());
    return out;
}

/** send() all of [data, data+size), failing the test on error. */
void
sendAll(int fd, const std::uint8_t *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
        ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
        off += static_cast<std::size_t>(n);
    }
}

/**
 * Send a frame in @p chunk -byte slices with a pause between slices —
 * the slow-reader / fragmented-TCP failure injection.
 */
void
sendSliced(int fd, const std::vector<std::uint8_t> &payload,
           std::size_t chunk, unsigned pause_us)
{
    std::vector<std::uint8_t> wire = wireFrame(payload);
    for (std::size_t off = 0; off < wire.size(); off += chunk) {
        std::size_t n = std::min(chunk, wire.size() - off);
        sendAll(fd, wire.data() + off, n);
        if (pause_us)
            std::this_thread::sleep_for(
                std::chrono::microseconds(pause_us));
    }
}

Response
transact(int fd, Request req)
{
    static std::atomic<std::uint64_t> seq{1};
    req.seq = seq.fetch_add(1);
    writeFrame(fd, encodeRequest(req));
    std::vector<std::uint8_t> payload;
    EXPECT_TRUE(readFrame(fd, payload));
    Response resp = decodeResponse(payload);
    EXPECT_EQ(resp.seq, req.seq);
    return resp;
}

Request
openReq(const std::string &id, TenantId tenant, unsigned k)
{
    Request req;
    req.type = MsgType::OpenReq;
    req.tenant = tenant;
    req.session = id;
    req.source = loopSource(k);
    return req;
}

Request
runReq(const std::string &id, TenantId tenant, Cycle cycles)
{
    Request req;
    req.type = MsgType::RunReq;
    req.tenant = tenant;
    req.session = id;
    req.maxCycles = cycles;
    req.stopWhenIdle = false;
    return req;
}

/** One live sharded server per test. */
struct Harness
{
    explicit Harness(const std::string &dir_name, unsigned workers = 2)
    {
        cfg.stateDir = freshDir(dir_name);
        cfg.maxResident = 4;
        cfg.tenants = 2;
        cfg.workers = workers;
        server = std::make_unique<ServeServer>(cfg);
        server->start();
    }

    ~Harness() { server->requestStop(); }

    ServerConfig cfg;
    std::unique_ptr<ServeServer> server;
};

// --- slow and fragmented senders --------------------------------------

TEST(ServeEpoll, ByteAtATimeFrameIsServed)
{
    Harness h("disc_epoll_test_bytewise");
    int fd = connectLoopback(h.server->port());

    // The whole Open frame — length prefix included — arrives one
    // byte per write.
    Request open = openReq("b0", 0, 0);
    open.seq = 1;
    sendSliced(fd, encodeRequest(open), 1, 0);
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(readFrame(fd, payload));
    EXPECT_EQ(decodeResponse(payload).type, MsgType::OpenResp);

    Request run = runReq("b0", 0, 500);
    run.seq = 2;
    sendSliced(fd, encodeRequest(run), 1, 0);
    ASSERT_TRUE(readFrame(fd, payload));
    Response resp = decodeResponse(payload);
    EXPECT_EQ(resp.type, MsgType::RunResp);
    EXPECT_EQ(resp.ran, 500u);

    Request query;
    query.type = MsgType::QueryReq;
    query.session = "b0";
    Response q = transact(fd, query);
    ASSERT_EQ(q.type, MsgType::QueryResp);
    EXPECT_EQ(q.digest, offlineDigest(0, 500));
    ::close(fd);
}

TEST(ServeEpoll, LengthPrefixSplitAcrossWrites)
{
    Harness h("disc_epoll_test_split");
    int fd = connectLoopback(h.server->port());

    Request open = openReq("s0", 0, 1);
    open.seq = 1;
    std::vector<std::uint8_t> wire = wireFrame(encodeRequest(open));
    // 2 bytes of the length prefix, pause, the remaining 2, pause,
    // then the payload in two halves.
    sendAll(fd, wire.data(), 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sendAll(fd, wire.data() + 2, 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::size_t half = 4 + (wire.size() - 4) / 2;
    sendAll(fd, wire.data() + 4, half - 4);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sendAll(fd, wire.data() + half, wire.size() - half);

    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(readFrame(fd, payload));
    EXPECT_EQ(decodeResponse(payload).type, MsgType::OpenResp);
    ::close(fd);
}

TEST(ServeEpoll, MidFrameStallDoesNotBlockNeighbours)
{
    Harness h("disc_epoll_test_stall");
    int stalled = connectLoopback(h.server->port());
    int neighbour = connectLoopback(h.server->port());

    ASSERT_EQ(transact(neighbour, openReq("n0", 0, 2)).type,
              MsgType::OpenResp);

    // The stalled connection sends half an Open frame and goes quiet.
    Request open = openReq("z0", 1, 3);
    open.seq = 99;
    std::vector<std::uint8_t> wire = wireFrame(encodeRequest(open));
    std::size_t half = wire.size() / 2;
    sendAll(stalled, wire.data(), half);

    // The neighbour must keep getting service at interactive latency
    // while the other connection is wedged mid-frame.
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < 20; ++i) {
        Response resp = transact(neighbour, runReq("n0", 0, 50));
        ASSERT_EQ(resp.type, MsgType::RunResp);
    }
    auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    EXPECT_LT(elapsed.count(), 5000)
        << "neighbour starved behind a stalled connection";

    // Completing the stalled frame still works: no state was lost.
    sendAll(stalled, wire.data() + half, wire.size() - half);
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(readFrame(stalled, payload));
    Response resp = decodeResponse(payload);
    EXPECT_EQ(resp.type, MsgType::OpenResp);
    EXPECT_EQ(resp.seq, 99u);

    // And the neighbour's session was never corrupted.
    Request query;
    query.type = MsgType::QueryReq;
    query.session = "n0";
    Response q = transact(neighbour, query);
    ASSERT_EQ(q.type, MsgType::QueryResp);
    EXPECT_EQ(q.digest, offlineDigest(2, 20 * 50));
    ::close(stalled);
    ::close(neighbour);
}

// --- protocol-level shedding ------------------------------------------

TEST(ServeEpoll, HostileLengthPrefixGetsErrorThenClose)
{
    Harness h("disc_epoll_test_hostile");
    int victim = connectLoopback(h.server->port());
    int neighbour = connectLoopback(h.server->port());
    ASSERT_EQ(transact(neighbour, openReq("n1", 0, 4)).type,
              MsgType::OpenResp);

    // A 4 GiB length prefix: unrecoverable for a length-prefixed
    // stream. The server must answer with a final ErrorResp and close
    // — shedding per protocol, not wedging or crashing.
    std::uint8_t evil[4] = {0xff, 0xff, 0xff, 0xff};
    sendAll(victim, evil, sizeof(evil));
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(readFrame(victim, payload));
    Response resp = decodeResponse(payload);
    EXPECT_EQ(resp.type, MsgType::ErrorResp);
    EXPECT_FALSE(resp.error.empty());
    EXPECT_FALSE(readFrame(victim, payload)); // then EOF
    ::close(victim);

    // The error is counted, and the neighbour never noticed.
    Request stats;
    stats.type = MsgType::StatsReq;
    Response s = transact(neighbour, stats);
    ASSERT_EQ(s.type, MsgType::StatsResp);
    std::uint64_t stream_errors = 0;
    for (const auto &[name, value] : s.counters)
        if (name == "stream_errors")
            stream_errors = value;
    EXPECT_EQ(stream_errors, 1u);
    EXPECT_EQ(transact(neighbour, runReq("n1", 0, 100)).type,
              MsgType::RunResp);
    ::close(neighbour);
}

TEST(ServeEpoll, GarbagePayloadIsAnErrorNotACrash)
{
    Harness h("disc_epoll_test_garbage");
    int fd = connectLoopback(h.server->port());

    // A well-framed payload of junk: decode fails, the server replies
    // ErrorResp and keeps the connection (framing is still intact).
    std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef, 0x00};
    std::vector<std::uint8_t> wire = wireFrame(junk);
    sendAll(fd, wire.data(), wire.size());
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(readFrame(fd, payload));
    EXPECT_EQ(decodeResponse(payload).type, MsgType::ErrorResp);

    // The same connection still serves valid requests afterwards.
    EXPECT_EQ(transact(fd, openReq("g0", 0, 5)).type,
              MsgType::OpenResp);
    ::close(fd);
}

// --- half-close and abrupt death --------------------------------------

TEST(ServeEpoll, HalfCloseDeliversPendingRepliesThenEof)
{
    Harness h("disc_epoll_test_halfclose");
    int fd = connectLoopback(h.server->port());
    ASSERT_EQ(transact(fd, openReq("h0", 0, 6)).type,
              MsgType::OpenResp);

    // Pipeline three runs, then half-close the write side before
    // reading anything. The server owes three replies and must flush
    // all of them before closing its end.
    for (unsigned i = 0; i < 3; ++i) {
        Request run = runReq("h0", 0, 100);
        run.seq = 1000 + i;
        writeFrame(fd, encodeRequest(run));
    }
    ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

    std::vector<std::uint8_t> payload;
    for (unsigned i = 0; i < 3; ++i) {
        ASSERT_TRUE(readFrame(fd, payload)) << "reply " << i;
        Response resp = decodeResponse(payload);
        EXPECT_EQ(resp.type, MsgType::RunResp);
        EXPECT_EQ(resp.seq, 1000u + i);
    }
    EXPECT_FALSE(readFrame(fd, payload)); // all debts paid: EOF
    ::close(fd);
}

TEST(ServeEpoll, AbruptCloseMidFrameLeavesServerHealthy)
{
    Harness h("disc_epoll_test_abrupt");
    int neighbour = connectLoopback(h.server->port());
    ASSERT_EQ(transact(neighbour, openReq("n2", 0, 7)).type,
              MsgType::OpenResp);

    // A client dies mid-frame, RST and all: half a frame, SO_LINGER
    // zero, close. The loop must just clean up.
    for (unsigned i = 0; i < 8; ++i) {
        int fd = connectLoopback(h.server->port());
        Request open = openReq("dead", 1, 0);
        std::vector<std::uint8_t> wire =
            wireFrame(encodeRequest(open));
        sendAll(fd, wire.data(), wire.size() / 2);
        struct linger lin = {1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
        ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Neighbour unharmed; fresh connections still accepted.
    EXPECT_EQ(transact(neighbour, runReq("n2", 0, 100)).type,
              MsgType::RunResp);
    int fresh = connectLoopback(h.server->port());
    EXPECT_EQ(transact(fresh, openReq("alive", 0, 8)).type,
              MsgType::OpenResp);
    ::close(fresh);
    ::close(neighbour);
}

// --- flood without reading --------------------------------------------

TEST(ServeEpoll, FloodWithoutReadingShedsPerProtocolNotByWedging)
{
    Harness h("disc_epoll_test_flood");
    int flooder = connectLoopback(h.server->port());
    int neighbour = connectLoopback(h.server->port());
    ASSERT_EQ(transact(flooder, openReq("f0", 0, 9)).type,
              MsgType::OpenResp);
    ASSERT_EQ(transact(neighbour, openReq("n3", 1, 10)).type,
              MsgType::OpenResp);

    // Pipeline far more one-session runs than the per-tenant queue
    // holds, reading nothing back. One-in-flight-per-session plus the
    // bounded queue means the overflow must come back as BusyResp —
    // explicit backpressure — while everything accepted completes.
    constexpr unsigned kFlood = 400;
    std::thread sender([&] {
        for (unsigned i = 0; i < kFlood; ++i) {
            Request run = runReq("f0", 0, 10);
            run.seq = 5000 + i;
            writeFrame(flooder, encodeRequest(run));
        }
    });

    // The neighbour stays responsive under the flood.
    for (unsigned i = 0; i < 10; ++i)
        ASSERT_EQ(transact(neighbour, runReq("n3", 1, 50)).type,
                  MsgType::RunResp);
    sender.join();

    // Every request is answered: RunResp or BusyResp, nothing lost,
    // nothing wedged.
    unsigned ran = 0, shed = 0;
    std::vector<std::uint8_t> payload;
    for (unsigned i = 0; i < kFlood; ++i) {
        ASSERT_TRUE(readFrame(flooder, payload)) << "reply " << i;
        Response resp = decodeResponse(payload);
        if (resp.type == MsgType::RunResp)
            ++ran;
        else if (resp.type == MsgType::BusyResp) {
            EXPECT_EQ(resp.busy, BusyReason::QueueFull);
            ++shed;
        } else
            FAIL() << "unexpected reply type "
                   << static_cast<int>(resp.type);
    }
    EXPECT_EQ(ran + shed, kFlood);
    EXPECT_GT(ran, 0u);

    // The flooded session's state is exactly the accepted runs — and
    // the neighbour's digest proves its session was never touched.
    Request query;
    query.type = MsgType::QueryReq;
    query.session = "f0";
    Response q = transact(flooder, query);
    ASSERT_EQ(q.type, MsgType::QueryResp);
    EXPECT_EQ(q.totalCycles, static_cast<Cycle>(ran) * 10);
    EXPECT_EQ(q.digest, offlineDigest(9, ran * 10));

    query.session = "n3";
    Response qn = transact(neighbour, query);
    ASSERT_EQ(qn.type, MsgType::QueryResp);
    EXPECT_EQ(qn.digest, offlineDigest(10, 10 * 50));
    ::close(flooder);
    ::close(neighbour);
}

// --- cross-shard service ----------------------------------------------

TEST(ServeEpoll, AnyConnectionReachesAnyShard)
{
    Harness h("disc_epoll_test_xshard", 3);
    int fd = connectLoopback(h.server->port());

    // Sessions hash across three shards; one connection must be able
    // to drive all of them and a MigrateReq moves one explicitly.
    for (unsigned s = 0; s < 6; ++s)
        ASSERT_EQ(
            transact(fd, openReq(strprintf("x%u", s), 0, s)).type,
            MsgType::OpenResp);
    for (unsigned s = 0; s < 6; ++s)
        ASSERT_EQ(
            transact(fd, runReq(strprintf("x%u", s), 0, 200)).type,
            MsgType::RunResp);

    unsigned before = h.server->shardOf("x0");
    Request mig;
    mig.type = MsgType::MigrateReq;
    mig.session = "x0";
    mig.targetShard = kAnyShard;
    Response moved = transact(fd, mig);
    ASSERT_EQ(moved.type, MsgType::MigrateResp);
    EXPECT_NE(moved.shard, before);
    EXPECT_EQ(moved.shard, h.server->shardOf("x0"));
    EXPECT_EQ(moved.digest, offlineDigest(0, 200));

    // The migrated session keeps serving through the same connection.
    Response resp = transact(fd, runReq("x0", 0, 300));
    ASSERT_EQ(resp.type, MsgType::RunResp);
    Request query;
    query.type = MsgType::QueryReq;
    query.session = "x0";
    Response q = transact(fd, query);
    ASSERT_EQ(q.type, MsgType::QueryResp);
    EXPECT_EQ(q.digest, offlineDigest(0, 500));
    ::close(fd);
}

} // namespace
