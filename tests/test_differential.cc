/**
 * @file
 * Differential tests: randomly generated single-stream programs must
 * produce identical architectural results on the pipelined Machine
 * and on the sequential golden-model Interp, regardless of hazards,
 * flushes and interleaving artifacts.
 *
 * The generator produces terminating programs only: straight-line
 * ALU/memory/window instructions, short forward branches, balanced
 * call/return pairs, ending in HALT. Window motion is tracked so the
 * stack region is never violated.
 */

#include <gtest/gtest.h>

#include "arch/devices.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "isa/assembler.hh"
#include "isa/predecode.hh"
#include "sim/interp.hh"
#include "sim/machine.hh"

namespace disc
{
namespace
{

/** Emits a random terminating program as a vector of instructions. */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(std::uint64_t seed)
        : rng_(seed)
    {}

    Program
    generate(unsigned length)
    {
        code_.clear();
        headroom_ = kStackRegionWords - kNumWindowRegs - 4;
        depth_ = 0;
        for (unsigned i = 0; i < length; ++i)
            emitRandom();
        // Unwind any window motion we accumulated, then stop.
        while (depth_ > 0) {
            code_.push_back(encode(makeOp(Opcode::WDEC)));
            --depth_;
        }
        code_.push_back(encode(makeOp(Opcode::HALT)));

        Program p;
        p.code = code_;
        return p;
    }

  private:
    Rng rng_;
    std::vector<InstWord> code_;
    int headroom_ = 0;
    int depth_ = 0;

    unsigned
    anyReg()
    {
        // Window locals and globals; specials only via dedicated ops.
        unsigned r = static_cast<unsigned>(rng_.below(12));
        return r;
    }

    int
    smallImm()
    {
        return static_cast<int>(rng_.below(256)) - 128;
    }

    void
    emitRandom()
    {
        switch (rng_.below(14)) {
          case 0: case 1: case 2: { // three-register ALU
            static const Opcode ops[] = {
                Opcode::ADD, Opcode::ADC, Opcode::SUB, Opcode::SBC,
                Opcode::AND, Opcode::OR, Opcode::XOR, Opcode::SHL,
                Opcode::SHR, Opcode::ASR, Opcode::MUL};
            Opcode op = ops[rng_.below(std::size(ops))];
            code_.push_back(
                encode(makeR3(op, anyReg(), anyReg(), anyReg())));
            break;
          }
          case 3: case 4: { // immediate ALU
            static const Opcode ops[] = {Opcode::ADDI, Opcode::SUBI,
                                         Opcode::ANDI, Opcode::ORI,
                                         Opcode::XORI};
            Opcode op = ops[rng_.below(std::size(ops))];
            code_.push_back(
                encode(makeRI(op, anyReg(), anyReg(), smallImm())));
            break;
          }
          case 5: { // constant loads
            if (rng_.chance(0.5)) {
                code_.push_back(encode(makeLdi(
                    anyReg(), static_cast<int>(rng_.below(4096)) -
                                  2048)));
            } else {
                code_.push_back(encode(makeLdih(
                    anyReg(), static_cast<unsigned>(rng_.below(256)))));
            }
            break;
          }
          case 6: { // two-register ops
            static const Opcode ops[] = {Opcode::MOV, Opcode::NOT,
                                         Opcode::NEG};
            code_.push_back(encode(makeR2(ops[rng_.below(3)], anyReg(),
                                          anyReg())));
            break;
          }
          case 7: { // compares / flags
            Instruction i;
            i.op = rng_.chance(0.5) ? Opcode::CMP : Opcode::TST;
            i.ra = anyReg();
            i.rb = anyReg();
            code_.push_back(encode(i));
            break;
          }
          case 8: { // MULH
            code_.push_back(
                encode(makeR2(Opcode::MULH, anyReg(), 0)));
            break;
          }
          case 9: { // internal memory, direct (low region only)
            unsigned addr = static_cast<unsigned>(rng_.below(256));
            Opcode op =
                rng_.chance(0.5) ? Opcode::LDMD : Opcode::STMD;
            Instruction i;
            i.op = op;
            i.rd = anyReg();
            i.imm = static_cast<int>(addr);
            code_.push_back(encode(i));
            break;
          }
          case 10: { // internal memory, register indirect via masked reg
            // Constrain the base: r = r & 0xff so the address stays in
            // the low region, away from the stack.
            unsigned base = anyReg();
            code_.push_back(
                encode(makeRI(Opcode::ANDI, base, base, 0x7f)));
            Opcode op = rng_.chance(0.5) ? Opcode::LDM : Opcode::STM;
            code_.push_back(encode(makeRI(op, anyReg(), base,
                                          static_cast<int>(
                                              rng_.below(64)))));
            break;
          }
          case 11: { // window motion (bounded)
            if (rng_.chance(0.5) && headroom_ > 0) {
                code_.push_back(encode(makeOp(Opcode::WINC)));
                --headroom_;
                ++depth_;
            } else if (depth_ > 0) {
                code_.push_back(encode(makeOp(Opcode::WDEC)));
                ++headroom_;
                --depth_;
            }
            break;
          }
          case 12: { // wctl suffix on an ALU op (bounded)
            if (headroom_ > 0 && depth_ < 100) {
                code_.push_back(encode(makeR3(Opcode::ADD, anyReg(),
                                              anyReg(), anyReg(),
                                              WCtl::Inc)));
                --headroom_;
                ++depth_;
            }
            break;
          }
          case 13: { // short forward branch over 1..3 instructions
            unsigned skip = 1 + static_cast<unsigned>(rng_.below(3));
            Cond cond = static_cast<Cond>(rng_.below(8));
            code_.push_back(encode(
                makeBranch(cond, static_cast<int>(skip) + 1)));
            for (unsigned k = 0; k < skip; ++k) {
                code_.push_back(encode(makeRI(
                    Opcode::ADDI, anyReg(), anyReg(), smallImm())));
            }
            break;
          }
        }
    }
};

/** Compare all architected state between machine and interpreter. */
void
expectSameArchState(const Machine &m, const Interp &ref,
                    std::uint64_t seed)
{
    for (unsigned r = 0; r < 12; ++r) {
        EXPECT_EQ(m.readReg(0, r), ref.readReg(r))
            << "seed " << seed << " reg " << reg::name(r);
    }
    EXPECT_EQ(m.window(0).awp(), ref.window().awp()) << "seed " << seed;
    // Flags (low 4 bits of SR).
    EXPECT_EQ(m.readReg(0, reg::SR) & 0xf, ref.readReg(reg::SR) & 0xf)
        << "seed " << seed;
    for (Addr a = 0; a < kInternalMemWords; ++a) {
        ASSERT_EQ(m.internalMemory().read(a),
                  ref.internalMemory().read(a))
            << "seed " << seed << " mem[" << a << "]";
    }
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DifferentialTest, MachineMatchesGoldenModel)
{
    std::uint64_t seed = GetParam();
    ProgramGenerator gen(seed);
    Program p = gen.generate(300);

    Interp ref;
    ref.load(p);
    std::uint64_t executed = ref.run(100000);
    ASSERT_TRUE(ref.halted()) << "seed " << seed;
    ASSERT_EQ(ref.overflowEvents(), 0u)
        << "generator let the window escape, seed " << seed;

    Machine m;
    m.load(p);
    m.startStream(0, 0);
    m.run(1000000);
    ASSERT_TRUE(m.idle()) << "seed " << seed;
    EXPECT_EQ(m.stats().stackOverflows, 0u);

    expectSameArchState(m, ref, seed);
    // The pipelined machine retires exactly the instructions the
    // golden model executed (flushed wrong-path work never retires).
    EXPECT_EQ(m.stats().totalRetired, executed) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 81));

TEST(DifferentialCalls, NestedCallProgramMatches)
{
    // Calls/returns are exercised with a structured program (the
    // random generator keeps to straight-line + forward branches).
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi g0, 4
            call fib           ; g1 = fib(g0) with memoised recursion
            stmd g1, [0x20]
            ldi g0, 7
            call fib
            stmd g1, [0x21]
            halt
        fib:
            cmpi g0, 2
            bge f_rec
            mov g1, g0
            ret 0
        f_rec:
            winc               ; local: saved n
            winc               ; local: fib(n-1)
            mov r0, g0
            subi g0, r0, 1
            call fib
            mov r1, g1
            subi g0, r0, 2
            call fib
            add g1, g1, r1
            ret 2
    )");
    Interp ref;
    ref.load(p);
    ref.setPc(p.symbol("main"));
    ref.run(100000);
    ASSERT_TRUE(ref.halted());
    EXPECT_EQ(ref.internalMemory().read(0x20), 3);  // fib(4)
    EXPECT_EQ(ref.internalMemory().read(0x21), 13); // fib(7)

    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(1000000);
    ASSERT_TRUE(m.idle());
    expectSameArchState(m, ref, 0);
}

TEST(DifferentialDevices, ExternalAccessesMatchWithZeroLatency)
{
    // With a zero-wait-state device both models see the same values.
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10
            ldi  r1, 7
            st   r1, [g0+2]
            ld   r2, [g0+2]
            addi r2, r2, 1
            st   r2, [g0+3]
            ld   g1, [g0+3]
            halt
    )");
    ExternalMemoryDevice dev_m(64, 0), dev_i(64, 0);

    Machine m;
    m.attachDevice(0x1000, 64, &dev_m);
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(10000);
    ASSERT_TRUE(m.idle());

    Interp ref;
    ref.attachDevice(0x1000, 64, &dev_i);
    ref.load(p);
    ref.setPc(p.symbol("main"));
    ref.run(10000);
    ASSERT_TRUE(ref.halted());

    EXPECT_EQ(dev_m.peek(3), dev_i.peek(3));
    EXPECT_EQ(m.readReg(0, reg::G1), ref.readReg(reg::G1));
    EXPECT_EQ(m.readReg(0, reg::G1), 8);
}

TEST(Interpreter, HaltStopsExecution)
{
    Program p = assemble("main:\n halt\n nop\n");
    Interp ref;
    ref.load(p);
    EXPECT_EQ(ref.run(100), 1u);
    EXPECT_TRUE(ref.halted());
    EXPECT_FALSE(ref.step());
}

/**
 * A corpus covering every (opcode, wctl) word class, including the
 * undefined opcode space, crossed with operand patterns that put every
 * value in every 4-bit field plus the wide-immediate corner patterns.
 */
std::vector<InstWord>
predecodeCorpus()
{
    std::vector<std::uint32_t> lows;
    for (unsigned nib = 0; nib < 4; ++nib)
        for (std::uint32_t v = 0; v < 16; ++v)
            lows.push_back(v << (4 * nib));
    for (std::uint32_t extra : {0xffffu, 0x0fffu, 0x01ffu, 0x1234u,
                                0x8765u, 0xf0f0u, 0x0f0fu, 0xaaaau})
        lows.push_back(extra);

    std::vector<InstWord> words;
    words.reserve(64 * 4 * lows.size());
    for (std::uint32_t op = 0; op < 64; ++op)
        for (std::uint32_t wctl = 0; wctl < 4; ++wctl)
            for (std::uint32_t low : lows)
                words.push_back((op << 18) | (wctl << 16) | low);
    return words;
}

TEST(Predecode, TableMatchesPerWordFunctionsForEveryWordClass)
{
    Program p;
    p.code = predecodeCorpus();
    PredecodeTable table;
    table.load(p);
    ASSERT_EQ(table.size(), p.code.size());

    for (PAddr addr = 0; addr < p.code.size(); ++addr) {
        InstWord word = p.code[addr];
        const PredecodedInst &pd = table.at(addr);
        ASSERT_EQ(pd.legal, isLegal(word)) << strprintf("word %06x", word);
        ASSERT_TRUE(pd.inst == decode(word))
            << strprintf("word %06x", word);
        std::uint32_t reads = 0, writes = 0;
        depMasks(decode(word), reads, writes);
        ASSERT_EQ(pd.readsMask, reads) << strprintf("word %06x", word);
        ASSERT_EQ(pd.writesMask, writes) << strprintf("word %06x", word);
    }

    // Beyond the image the table yields the predecoded NOP, mirroring
    // ProgramMemory::fetch.
    const PredecodedInst &past = table.at(
        static_cast<PAddr>(p.code.size()) + 100);
    EXPECT_TRUE(past.legal);
    EXPECT_TRUE(past.inst == decode(0));
}

TEST(Predecode, DependencyMaskSemantics)
{
    // Window-register operands pick up the AWP pseudo-dependency;
    // globals do not. Flag writers mark kDepFlags.
    PredecodedInst add = predecode(encode(makeR3(Opcode::ADD, 3, 1, 2)));
    ASSERT_TRUE(add.legal);
    EXPECT_EQ(add.readsMask, (1u << 1) | (1u << 2) | kDepAwp);
    EXPECT_EQ(add.writesMask, (1u << 3) | kDepFlags);

    PredecodedInst gadd = predecode(
        encode(makeR3(Opcode::ADD, reg::G0, reg::G1, reg::G2)));
    EXPECT_EQ(gadd.readsMask, (1u << reg::G1) | (1u << reg::G2));
    EXPECT_EQ(gadd.writesMask, (1u << reg::G0) | kDepFlags);

    // The MUL high-half latch is a pseudo-resource ordered between
    // MUL (producer) and MULH (consumer).
    PredecodedInst mul = predecode(encode(makeR3(Opcode::MUL, 3, 1, 2)));
    EXPECT_NE(mul.writesMask & kDepMulHigh, 0u);
    Instruction mulh;
    mulh.op = Opcode::MULH;
    mulh.rd = 4;
    EXPECT_NE(predecode(encode(mulh)).readsMask & kDepMulHigh, 0u);

    // Window motion (explicit or via wctl) orders on the AWP.
    PredecodedInst winc = predecode(encode(makeOp(Opcode::WINC)));
    EXPECT_NE(winc.writesMask & kDepAwp, 0u);
    PredecodedInst addw = predecode(
        encode(makeR3(Opcode::ADD, reg::G0, reg::G1, reg::G2, WCtl::Inc)));
    EXPECT_NE(addw.writesMask & kDepAwp, 0u);

    // Undefined opcodes predecode as illegal.
    EXPECT_FALSE(predecode(static_cast<InstWord>(60) << 18).legal);
}

TEST(Interpreter, IllegalInstructionSkipsAndCounts)
{
    Program p;
    p.code = {static_cast<InstWord>(60) << 18, // undefined opcode
              encode(makeOp(Opcode::HALT))};
    Interp ref;
    ref.load(p);
    ref.run(10);
    EXPECT_EQ(ref.illegalEvents(), 1u);
    EXPECT_TRUE(ref.halted());
}

} // namespace
} // namespace disc
