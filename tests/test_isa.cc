/**
 * @file
 * Unit tests for the ISA layer: opcode metadata, encode/decode
 * round-trips, the assembler and the disassembler.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "isa/instruction.hh"

namespace disc
{
namespace
{

TEST(Opcodes, MetadataConsistency)
{
    // Every opcode has a unique, non-empty mnemonic.
    std::set<std::string_view> seen;
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
        auto op = static_cast<Opcode>(i);
        const OpInfo &oi = opInfo(op);
        EXPECT_FALSE(oi.mnemonic.empty());
        EXPECT_TRUE(seen.insert(oi.mnemonic).second)
            << "duplicate mnemonic " << oi.mnemonic;
    }
}

TEST(Opcodes, StoreReadsRdNotWrites)
{
    for (Opcode op : {Opcode::ST, Opcode::STM, Opcode::STMD}) {
        EXPECT_TRUE(opInfo(op).readsRd);
        EXPECT_FALSE(opInfo(op).writesRd);
    }
    for (Opcode op : {Opcode::LD, Opcode::LDM, Opcode::LDMD}) {
        EXPECT_FALSE(opInfo(op).readsRd);
        EXPECT_TRUE(opInfo(op).writesRd);
    }
}

TEST(Opcodes, ExternalVsInternalClassification)
{
    EXPECT_TRUE(opInfo(Opcode::LD).isExternal);
    EXPECT_TRUE(opInfo(Opcode::ST).isExternal);
    EXPECT_FALSE(opInfo(Opcode::LDM).isExternal);
    EXPECT_TRUE(opInfo(Opcode::LDM).isInternalMem);
    EXPECT_TRUE(opInfo(Opcode::TAS).isInternalMem);
}

TEST(Opcodes, JumpTypeClassification)
{
    // These are the "aljmp" instructions of the stochastic model.
    for (Opcode op : {Opcode::JMP, Opcode::JR, Opcode::CALL,
                      Opcode::CALLR, Opcode::RET, Opcode::BR,
                      Opcode::RETI}) {
        EXPECT_TRUE(opInfo(op).isJumpType) << opMnemonic(op);
    }
    for (Opcode op : {Opcode::ADD, Opcode::LD, Opcode::SWI,
                      Opcode::FORK, Opcode::HALT}) {
        EXPECT_FALSE(opInfo(op).isJumpType) << opMnemonic(op);
    }
}

// ---- Encode/decode round trips ----

class RoundTripTest : public ::testing::TestWithParam<Instruction>
{};

TEST_P(RoundTripTest, EncodeDecodeIdentity)
{
    const Instruction &inst = GetParam();
    InstWord w = encode(inst);
    EXPECT_LE(w, 0xffffffu) << "must fit in 24 bits";
    Instruction back = decode(w);
    EXPECT_EQ(back, inst) << inst.toString() << " vs " << back.toString();
    EXPECT_EQ(encode(back), w);
}

INSTANTIATE_TEST_SUITE_P(
    Representative, RoundTripTest,
    ::testing::Values(
        makeOp(Opcode::NOP),
        makeR3(Opcode::ADD, 1, 2, 3),
        makeR3(Opcode::SUB, 7, reg::G0, reg::G0 + 3, WCtl::Inc),
        makeR3(Opcode::MUL, 0, 1, 2, WCtl::Dec),
        makeR2(Opcode::MOV, reg::G0, 5),
        makeR2(Opcode::TAS, 2, reg::G1, WCtl::None),
        makeRI(Opcode::ADDI, 3, 3, -128),
        makeRI(Opcode::ADDI, 3, 3, 127),
        makeRI(Opcode::LD, 4, reg::G2, -5),
        makeRI(Opcode::ST, 4, reg::G2, 100),
        makeRI(Opcode::LDM, 0, 1, 0),
        makeLdi(5, -2048),
        makeLdi(5, 2047),
        makeLdih(5, 0xff),
        makeJump(Opcode::JMP, 0xffff),
        makeJump(Opcode::CALL, 0x0020),
        makeBranch(Cond::NE, -2048),
        makeBranch(Cond::ULT, 2047),
        makeRet(0), makeRet(15),
        makeSwi(3, 7), makeSwi(0, 0),
        makeClri(6),
        makeFork(2, 0xfff),
        makeSched(15, 3),
        makeOp(Opcode::RETI), makeOp(Opcode::HALT),
        makeOp(Opcode::WINC), makeOp(Opcode::WDEC, WCtl::None)));

TEST(Encoding, AllOpcodeFormatsRoundTripExhaustively)
{
    // Sweep every opcode with a mid-range operand pattern.
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
        Instruction inst;
        inst.op = static_cast<Opcode>(i);
        inst.rd = 3;
        inst.ra = 9;
        inst.rb = 12;
        inst.cond = Cond::GE;
        inst.stream = 1;
        inst.bit = 5;
        inst.slot = 7;
        switch (inst.info().format) {
          case Format::RI:
          case Format::RIA:
            inst.imm = -7;
            break;
          case Format::DI:
            inst.imm = -1000;
            break;
          case Format::IH:
            inst.imm = 200;
            break;
          case Format::MD:
            inst.imm = 300;
            break;
          case Format::J:
            inst.imm = 0x1234;
            break;
          case Format::B:
            inst.imm = -100;
            break;
          case Format::Ret:
            inst.imm = 9;
            break;
          case Format::Fork:
            inst.imm = 0x234;
            break;
          default:
            inst.imm = 0;
            break;
        }
        // Zero out fields the format does not carry, then round trip.
        Instruction canon = decode(encode(inst));
        EXPECT_EQ(decode(encode(canon)), canon)
            << opMnemonic(inst.op);
        EXPECT_EQ(canon.op, inst.op);
    }
}

TEST(Encoding, IllegalOpcodeDetected)
{
    InstWord bad = static_cast<InstWord>(kNumOpcodes) << 18;
    EXPECT_FALSE(isLegal(bad));
    EXPECT_TRUE(isLegal(encode(makeOp(Opcode::NOP))));
    // Reserved wctl value 3 is illegal.
    InstWord w = encode(makeR3(Opcode::ADD, 0, 1, 2)) | (3u << 16);
    EXPECT_FALSE(isLegal(w));
}

TEST(Encoding, DecodeMasksTo24Bits)
{
    InstWord w = encode(makeJump(Opcode::JMP, 0x00ff));
    Instruction a = decode(w);
    Instruction b = decode(w | 0xff000000u);
    EXPECT_EQ(a, b);
}

// ---- Register naming ----

TEST(Registers, Names)
{
    EXPECT_EQ(reg::name(0), "r0");
    EXPECT_EQ(reg::name(7), "r7");
    EXPECT_EQ(reg::name(8), "g0");
    EXPECT_EQ(reg::name(11), "g3");
    EXPECT_EQ(reg::name(reg::SR), "sr");
    EXPECT_EQ(reg::name(reg::IRR), "irr");
    EXPECT_EQ(reg::name(reg::IMR), "imr");
    EXPECT_EQ(reg::name(reg::AWP), "awp");
}

TEST(Registers, Classification)
{
    EXPECT_TRUE(reg::isWindow(0));
    EXPECT_TRUE(reg::isWindow(7));
    EXPECT_FALSE(reg::isWindow(8));
    EXPECT_TRUE(reg::isGlobal(8));
    EXPECT_TRUE(reg::isGlobal(11));
    EXPECT_FALSE(reg::isGlobal(12));
    EXPECT_TRUE(reg::isSpecial(12));
    EXPECT_TRUE(reg::isSpecial(15));
}

// ---- Assembler ----

TEST(Assembler, BasicProgram)
{
    Program p = assemble(R"(
        ; simple arithmetic
        start:
            ldi r0, 5
            ldi r1, 7
            add r2, r0, r1
            halt
    )");
    ASSERT_EQ(p.code.size(), 4u);
    EXPECT_EQ(decode(p.code[0]), makeLdi(0, 5));
    EXPECT_EQ(decode(p.code[1]), makeLdi(1, 7));
    EXPECT_EQ(decode(p.code[2]), makeR3(Opcode::ADD, 2, 0, 1));
    EXPECT_EQ(decode(p.code[3]), makeOp(Opcode::HALT));
    EXPECT_EQ(p.symbol("start"), 0u);
}

TEST(Assembler, OrgAndLabels)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            jmp main
    )");
    ASSERT_EQ(p.code.size(), 0x21u);
    EXPECT_EQ(decode(p.code[0x20]), makeJump(Opcode::JMP, 0x20));
    // The gap is NOP-filled.
    EXPECT_EQ(decode(p.code[0]).op, Opcode::NOP);
}

TEST(Assembler, ForwardReferences)
{
    Program p = assemble(R"(
            jmp end
            nop
        end:
            halt
    )");
    EXPECT_EQ(decode(p.code[0]), makeJump(Opcode::JMP, 2));
}

TEST(Assembler, BranchOffsets)
{
    Program p = assemble(R"(
        top:
            nop
            beq top
            bne after
            nop
        after:
            halt
    )");
    Instruction beq = decode(p.code[1]);
    EXPECT_EQ(beq.op, Opcode::BR);
    EXPECT_EQ(beq.cond, Cond::EQ);
    EXPECT_EQ(beq.imm, -1);
    Instruction bne = decode(p.code[2]);
    EXPECT_EQ(bne.cond, Cond::NE);
    EXPECT_EQ(bne.imm, 2);
}

TEST(Assembler, MemoryOperands)
{
    Program p = assemble(R"(
        ld  r1, [g0+4]
        st  r1, [g0-4]
        ldm r2, [r3]
        stm r2, [r3+1]
        ldmd r4, [0x1f0]
        stmd r4, [3]
        tas r5, [g1]
    )");
    EXPECT_EQ(decode(p.code[0]), makeRI(Opcode::LD, 1, reg::G0, 4));
    EXPECT_EQ(decode(p.code[1]), makeRI(Opcode::ST, 1, reg::G0, -4));
    EXPECT_EQ(decode(p.code[2]), makeRI(Opcode::LDM, 2, 3, 0));
    EXPECT_EQ(decode(p.code[3]), makeRI(Opcode::STM, 2, 3, 1));
    Instruction ldmd = decode(p.code[4]);
    EXPECT_EQ(ldmd.op, Opcode::LDMD);
    EXPECT_EQ(ldmd.imm, 0x1f0);
    Instruction tas = decode(p.code[6]);
    EXPECT_EQ(tas.op, Opcode::TAS);
    EXPECT_EQ(tas.ra, reg::G1);
}

TEST(Assembler, WindowSuffixes)
{
    Program p = assemble(R"(
        add+ r0, r1, r2
        sub- r0, r1, r2
        winc
        wdec
        ldi+ r0, 3
    )");
    EXPECT_EQ(decode(p.code[0]).wctl, WCtl::Inc);
    EXPECT_EQ(decode(p.code[1]).wctl, WCtl::Dec);
    EXPECT_EQ(decode(p.code[2]).op, Opcode::WINC);
    EXPECT_EQ(decode(p.code[4]).wctl, WCtl::Inc);
}

TEST(Assembler, EquAndExpressions)
{
    Program p = assemble(R"(
        .equ BASE, 0x40
        .equ COUNT, 5
        ldi r0, BASE
        ldi r1, BASE+2
        ldi r2, COUNT
        ldmd r3, [BASE-1]
    )");
    EXPECT_EQ(decode(p.code[0]).imm, 0x40);
    EXPECT_EQ(decode(p.code[1]).imm, 0x42);
    EXPECT_EQ(decode(p.code[2]).imm, 5);
    EXPECT_EQ(decode(p.code[3]).imm, 0x3f);
}

TEST(Assembler, DmemDirective)
{
    Program p = assemble(R"(
        .dmem 0x10, 1234
        .dmem 0x11, 0xffff
        nop
    )");
    ASSERT_EQ(p.dataInit.size(), 2u);
    EXPECT_EQ(p.dataInit[0].first, 0x10);
    EXPECT_EQ(p.dataInit[0].second, 1234);
    EXPECT_EQ(p.dataInit[1].second, 0xffff);
}

TEST(Assembler, StreamControl)
{
    Program p = assemble(R"(
        handler:
            clri 3
            reti
        main:
            swi 2, 3
            fork 1, handler
            sched 4, 2
            ret 2
    )");
    EXPECT_EQ(decode(p.code[2]), makeSwi(2, 3));
    EXPECT_EQ(decode(p.code[3]), makeFork(1, 0));
    EXPECT_EQ(decode(p.code[4]), makeSched(4, 2));
    EXPECT_EQ(decode(p.code[5]), makeRet(2));
}

TEST(Assembler, RetDefaultsToZero)
{
    Program p = assemble("ret\n");
    EXPECT_EQ(decode(p.code[0]), makeRet(0));
}

// Error cases.

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate r0\n"), FatalError);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_THROW(assemble("jmp nowhere\n"), FatalError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("a:\na:\n"), FatalError);
}

TEST(AssemblerErrors, ImmediateRange)
{
    EXPECT_THROW(assemble("addi r0, r0, 128\n"), FatalError);
    EXPECT_THROW(assemble("addi r0, r0, -129\n"), FatalError);
    EXPECT_THROW(assemble("ldi r0, 2048\n"), FatalError);
    EXPECT_THROW(assemble("ldmd r0, [512]\n"), FatalError);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble("add r0, r1\n"), FatalError);
    EXPECT_THROW(assemble("halt r0\n"), FatalError);
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_THROW(assemble("add r0, r1, r9\n"), FatalError);
    EXPECT_THROW(assemble("mov q1, r0\n"), FatalError);
}

// ---- Disassembler ----

TEST(Disassembler, ListsEveryWord)
{
    Program p = assemble(R"(
        ldi r0, 1
        add+ r1, r0, g2
        jmp 0
    )");
    std::string text = disassemble(p);
    EXPECT_NE(text.find("ldi r0, 1"), std::string::npos);
    EXPECT_NE(text.find("add+ r1, r0, g2"), std::string::npos);
    EXPECT_NE(text.find("jmp 0x0000"), std::string::npos);
}

TEST(Disassembler, RoundTripThroughAssembler)
{
    // Disassembly of instruction text must re-assemble to the same bits
    // for position-independent instructions.
    Program p = assemble(R"(
        ldi r0, -7
        add r1, r0, r0
        ldm r2, [r1+3]
        st r2, [g0-2]
        swi 1, 4
        ret 3
        halt
    )");
    for (InstWord w : p.code) {
        Instruction inst = decode(w);
        if (inst.op == Opcode::BR || inst.op == Opcode::JMP)
            continue;
        Program q = assemble(inst.toString() + "\n");
        ASSERT_EQ(q.code.size(), 1u);
        EXPECT_EQ(q.code[0], w) << inst.toString();
    }
}

} // namespace
} // namespace disc
