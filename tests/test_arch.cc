/**
 * @file
 * Unit tests for the architecture substrate: internal memory, stack
 * window, interrupt unit, scheduler, bus/ABI and device models.
 */

#include <gtest/gtest.h>

#include "arch/bus.hh"
#include "arch/devices.hh"
#include "arch/interrupts.hh"
#include "arch/memory.hh"
#include "arch/scheduler.hh"
#include "arch/stack_window.hh"
#include "arch/window_models.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/serialize.hh"

namespace disc
{
namespace
{

// ---- Internal memory ----

TEST(InternalMemory, ReadWriteRoundTrip)
{
    InternalMemory mem;
    mem.write(0, 0x1234);
    mem.write(1023, 0xffff);
    EXPECT_EQ(mem.read(0), 0x1234);
    EXPECT_EQ(mem.read(1023), 0xffff);
    EXPECT_EQ(mem.read(5), 0);
}

TEST(InternalMemory, AddressWraps)
{
    InternalMemory mem;
    mem.write(static_cast<Addr>(kInternalMemWords + 3), 7);
    EXPECT_EQ(mem.read(3), 7);
}

TEST(InternalMemory, TestAndSetIsAtomicSemantics)
{
    InternalMemory mem;
    mem.write(10, 0);
    EXPECT_EQ(mem.testAndSet(10), 0);      // acquired
    EXPECT_EQ(mem.read(10), 0xffff);
    EXPECT_EQ(mem.testAndSet(10), 0xffff); // contended
}

TEST(InternalMemory, LoadAppliesDmemRecords)
{
    Program p;
    p.dataInit = {{4, 44}, {5, 55}};
    InternalMemory mem;
    mem.load(p);
    EXPECT_EQ(mem.read(4), 44);
    EXPECT_EQ(mem.read(5), 55);
}

// ---- Program memory ----

TEST(ProgramMemory, OutOfImageFetchesNop)
{
    ProgramMemory pm;
    Program p;
    p.code = {0x123456, 0x0000ff};
    pm.load(p);
    EXPECT_EQ(pm.fetch(0), 0x123456u);
    EXPECT_EQ(pm.fetch(1), 0x0000ffu);
    EXPECT_EQ(pm.fetch(2), 0u);
    EXPECT_EQ(pm.fetch(60000), 0u);
}

// ---- Stack window ----

class StackWindowTest : public ::testing::Test
{
  protected:
    InternalMemory mem;
    StackWindow sw{mem, 512, 64};
};

TEST_F(StackWindowTest, ResetPosition)
{
    EXPECT_EQ(sw.awp(), 512u + kNumWindowRegs - 1);
    EXPECT_EQ(sw.depth(), 0u);
    EXPECT_EQ(sw.bos(), 512u);
}

TEST_F(StackWindowTest, ReadWriteWindowRegisters)
{
    for (unsigned n = 0; n < kNumWindowRegs; ++n)
        sw.write(n, static_cast<Word>(100 + n));
    for (unsigned n = 0; n < kNumWindowRegs; ++n)
        EXPECT_EQ(sw.read(n), 100 + n);
    // R0 is at AWP, Rn at AWP-n (backing memory visible through LDM).
    EXPECT_EQ(mem.read(sw.awp()), 100);
    EXPECT_EQ(mem.read(sw.awp() - 3), 103);
}

TEST_F(StackWindowTest, IncSlidesWindowUp)
{
    sw.write(0, 11);
    sw.write(1, 22);
    EXPECT_FALSE(sw.inc());
    // The old R0 is now R1 (Figure 3.5 left).
    EXPECT_EQ(sw.read(1), 11);
    EXPECT_EQ(sw.read(2), 22);
}

TEST_F(StackWindowTest, DecSlidesWindowDown)
{
    sw.inc();
    sw.write(0, 99);
    sw.write(1, 11);
    EXPECT_FALSE(sw.dec());
    // The old R1 is now R0; the old R0 left the window.
    EXPECT_EQ(sw.read(0), 11);
}

TEST_F(StackWindowTest, CallReturnDiscipline)
{
    // Simulate: caller writes local, CALL pushes RA, callee allocates
    // 2 locals, RET 2 restores.
    sw.write(0, 0xaaaa);         // caller local
    sw.inc();                    // CALL: AWP++
    sw.write(0, 0x0123);         // return address in new R0
    sw.move(2);                  // callee allocates two locals
    sw.write(0, 1);
    sw.write(1, 2);
    EXPECT_EQ(sw.read(2), 0x0123); // RA visible at R2 (= allocations)
    sw.move(-2);                 // RET 2: unwind locals
    EXPECT_EQ(sw.read(0), 0x0123);
    sw.dec();                    // pop RA
    EXPECT_EQ(sw.read(0), 0xaaaa); // caller frame restored
}

TEST_F(StackWindowTest, OverflowDetectedAndClamped)
{
    bool bad = false;
    for (int i = 0; i < 100 && !bad; ++i)
        bad = sw.inc();
    EXPECT_TRUE(bad);
    EXPECT_EQ(sw.awp(), 512u + 64 - 1); // clamped to region top
}

TEST_F(StackWindowTest, UnderflowDetectedAndClamped)
{
    EXPECT_TRUE(sw.dec());
    EXPECT_EQ(sw.awp(), sw.minAwp());
}

TEST_F(StackWindowTest, SetAwpValidatesRange)
{
    EXPECT_FALSE(sw.setAwp(540));
    EXPECT_EQ(sw.awp(), 540u);
    EXPECT_TRUE(sw.setAwp(100));   // below region
    EXPECT_EQ(sw.awp(), sw.minAwp());
    EXPECT_TRUE(sw.setAwp(1000));  // above region
    EXPECT_EQ(sw.awp(), 512u + 63);
}

TEST_F(StackWindowTest, HeadroomTracksAwp)
{
    unsigned initial = sw.headroom();
    sw.inc();
    EXPECT_EQ(sw.headroom(), initial - 1);
}

TEST(StackWindowConfig, RejectsTinyRegion)
{
    InternalMemory mem;
    EXPECT_THROW(StackWindow(mem, 0, 4), FatalError);
}

TEST(StackWindowConfig, RejectsOutOfMemoryRegion)
{
    InternalMemory mem;
    EXPECT_THROW(StackWindow(mem, 1000, 64), FatalError);
}

/** Property: any legal sequence of pushes/pops is LIFO-consistent. */
TEST(StackWindowProperty, RandomPushPopLifo)
{
    InternalMemory mem;
    StackWindow sw(mem, 512, 128);
    Rng rng(2024);
    std::vector<Word> model; // values pushed, in order
    for (int step = 0; step < 5000; ++step) {
        bool push = model.empty() ||
                    (sw.headroom() > 0 && rng.chance(0.55));
        if (push && sw.headroom() > 0) {
            Word v = static_cast<Word>(rng.next64());
            ASSERT_FALSE(sw.inc());
            sw.write(0, v);
            model.push_back(v);
        } else if (!model.empty()) {
            ASSERT_EQ(sw.read(0), model.back());
            model.pop_back();
            ASSERT_FALSE(sw.dec());
        }
        ASSERT_EQ(sw.depth(), model.size());
    }
}

// ---- Window traffic models ----

TEST(FixedWindows, NoTrafficWithinResidentSet)
{
    FixedWindowModel m(4, 8);
    for (int i = 0; i < 3; ++i)
        m.call();
    for (int i = 0; i < 3; ++i)
        m.ret();
    EXPECT_EQ(m.traffic().spillWords, 0u);
    EXPECT_EQ(m.traffic().fillWords, 0u);
}

TEST(FixedWindows, SpillsOnePerCallPastCapacity)
{
    FixedWindowModel m(4, 8);
    for (int i = 0; i < 10; ++i)
        m.call();
    // Depth 10 with 4 resident: 10 - 4 = 6 windows spilled.
    EXPECT_EQ(m.traffic().spillWords, 6u * 8);
    for (int i = 0; i < 10; ++i)
        m.ret();
    EXPECT_EQ(m.traffic().fillWords, 6u * 8);
    EXPECT_EQ(m.depth(), 0u);
}

TEST(FixedWindows, LazyPolicyMakesSingleBoundaryOscillationCheap)
{
    FixedWindowModel m(4, 8);
    for (int i = 0; i < 5; ++i)
        m.call(); // one spill
    std::uint64_t after_setup = m.traffic().spillWords;
    for (int i = 0; i < 100; ++i) {
        m.ret();
        m.call();
    }
    // Depth never drops below the resident base: no further traffic.
    EXPECT_EQ(m.traffic().spillWords, after_setup);
    EXPECT_EQ(m.traffic().fillWords, 0u);
}

TEST(FixedWindows, ReturnBelowZeroPanics)
{
    FixedWindowModel m(2, 8);
    EXPECT_THROW(m.ret(), PanicError);
}

TEST(StackWindowModelTest, NoTrafficUntilRegionOverflow)
{
    StackWindowModel m(32, 32);
    for (int i = 0; i < 10; ++i)
        m.call(3); // 30 words: fits
    EXPECT_EQ(m.traffic().overflowTraps, 0u);
    EXPECT_EQ(m.traffic().trafficCycles(1), 0u);
    m.call(3); // 33 words: trap
    EXPECT_EQ(m.traffic().overflowTraps, 1u);
    EXPECT_EQ(m.traffic().trafficCycles(1), 64u);
}

TEST(StackWindowModelTest, VariableFramesTracked)
{
    StackWindowModel m(128, 128);
    m.call(1);
    m.call(5);
    m.call(2);
    EXPECT_EQ(m.depthWords(), 8u);
    m.ret();
    EXPECT_EQ(m.depthWords(), 6u);
    m.ret();
    m.ret();
    EXPECT_EQ(m.depthWords(), 0u);
}

// ---- Interrupt unit ----

TEST(Interrupts, RaiseAndActivity)
{
    InterruptUnit iu;
    EXPECT_FALSE(iu.isActive(0));
    iu.raise(0, 0);
    EXPECT_TRUE(iu.isActive(0));
    EXPECT_EQ(iu.ir(0), 0x01);
    EXPECT_FALSE(iu.isActive(1));
}

TEST(Interrupts, MaskGatesActivity)
{
    InterruptUnit iu;
    iu.setMr(2, 0x00);
    iu.raise(2, 3);
    EXPECT_FALSE(iu.isActive(2));
    iu.setMr(2, 0x08);
    EXPECT_TRUE(iu.isActive(2));
}

TEST(Interrupts, BackgroundDoesNotVector)
{
    InterruptUnit iu;
    iu.raise(1, 0);
    EXPECT_FALSE(iu.pendingVector(1).has_value());
}

TEST(Interrupts, HighestPriorityVectors)
{
    InterruptUnit iu;
    iu.raise(0, 2);
    iu.raise(0, 5);
    auto v = iu.pendingVector(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 5u);
}

TEST(Interrupts, RunningLevelBlocksEqualOrLower)
{
    InterruptUnit iu;
    iu.raise(0, 4);
    iu.enterService(0, 4);
    EXPECT_EQ(iu.runningLevel(0), 4u);
    // Same level pending again: no vector.
    EXPECT_FALSE(iu.pendingVector(0).has_value());
    iu.raise(0, 3);
    EXPECT_FALSE(iu.pendingVector(0).has_value());
    iu.raise(0, 6);
    auto v = iu.pendingVector(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 6u);
}

TEST(Interrupts, NestedServiceUnwinds)
{
    InterruptUnit iu;
    iu.enterService(0, 3);
    iu.enterService(0, 6);
    EXPECT_EQ(iu.runningLevel(0), 6u);
    EXPECT_EQ(iu.serviceDepth(0), 2u);
    EXPECT_TRUE(iu.exitService(0));
    EXPECT_EQ(iu.runningLevel(0), 3u);
    EXPECT_TRUE(iu.exitService(0));
    EXPECT_EQ(iu.runningLevel(0), 0u);
    EXPECT_FALSE(iu.exitService(0));
}

TEST(Interrupts, ClearDropsRequest)
{
    InterruptUnit iu;
    iu.raise(3, 7);
    iu.raise(3, 1);
    iu.clear(3, 7);
    EXPECT_EQ(iu.ir(3), 0x02);
}

TEST(Interrupts, MaskedBitDoesNotVector)
{
    InterruptUnit iu;
    iu.setMr(0, 0x01); // only background enabled
    iu.raise(0, 5);
    EXPECT_FALSE(iu.pendingVector(0).has_value());
    EXPECT_FALSE(iu.isActive(0));
}

TEST(Interrupts, VectorAddressLayout)
{
    EXPECT_EQ(vectorAddress(0, 1), 1u);
    EXPECT_EQ(vectorAddress(1, 0), 8u);
    EXPECT_EQ(vectorAddress(3, 7), 31u);
    EXPECT_EQ(kVectorTableEnd, 32u);
}

// ---- Scheduler ----

TEST(SchedulerTest, EvenPartitionRoundRobins)
{
    Scheduler sched;
    sched.setEven(4);
    unsigned ready = 0xf;
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(sched.pick(ready), i % 4);
}

TEST(SchedulerTest, DynamicReallocationDonatesSlots)
{
    Scheduler sched;
    sched.setEven(4);
    // Stream 2 never ready: its slots must go to others, never bubble.
    unsigned ready = 0xb; // 1011
    std::array<unsigned, kNumStreams> counts{};
    for (unsigned i = 0; i < 1600; ++i) {
        StreamId s = sched.pick(ready);
        ASSERT_NE(s, kNoStream);
        ASSERT_NE(s, 2);
        ++counts[s];
    }
    // Everyone ready gets at least its own 400 slots.
    EXPECT_GE(counts[0], 400u);
    EXPECT_GE(counts[1], 400u);
    EXPECT_GE(counts[3], 400u);
    EXPECT_EQ(counts[0] + counts[1] + counts[3], 1600u);
}

TEST(SchedulerTest, StaticModeWastesUnreadySlots)
{
    Scheduler sched;
    sched.setEven(4);
    sched.setMode(Scheduler::Mode::Static);
    unsigned ready = 0x1; // only stream 0
    unsigned bubbles = 0, issued = 0;
    for (unsigned i = 0; i < 1600; ++i) {
        StreamId s = sched.pick(ready);
        if (s == kNoStream)
            ++bubbles;
        else
            ++issued;
    }
    EXPECT_EQ(issued, 400u);  // exactly its 4/16 share
    EXPECT_EQ(bubbles, 1200u);
}

TEST(SchedulerTest, SharesArePropotionalWhenAllReady)
{
    Scheduler sched;
    // Paper's Figure 3.3 example: T/2, T/6-ish -> 8,4,2,2 sixteenths.
    sched.setShares({8, 4, 2, 2});
    std::array<unsigned, kNumStreams> counts{};
    for (unsigned i = 0; i < 1600; ++i)
        ++counts[sched.pick(0xf)];
    EXPECT_EQ(counts[0], 800u);
    EXPECT_EQ(counts[1], 400u);
    EXPECT_EQ(counts[2], 200u);
    EXPECT_EQ(counts[3], 200u);
}

TEST(SchedulerTest, SharesInterleaveAcrossFrame)
{
    Scheduler sched;
    sched.setShares({8, 4, 2, 2});
    // Stream 0 must not own more than 2 consecutive slots anywhere.
    std::string table = sched.describe();
    EXPECT_EQ(table.size(), kScheduleSlots);
    EXPECT_EQ(table.find("000"), std::string::npos) << table;
}

TEST(SchedulerTest, SharesMustSumToSixteen)
{
    Scheduler sched;
    EXPECT_THROW(sched.setShares({8, 8, 8, 8}), FatalError);
    EXPECT_THROW(sched.setShares({1, 1, 1, 1}), FatalError);
}

TEST(SchedulerTest, SingleStreamGetsFullThroughput)
{
    // Figure 3.3: when only IS1 is active it receives T even though
    // its static share is T/2.
    Scheduler sched;
    sched.setShares({8, 4, 2, 2});
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(sched.pick(0x2), 1);
}

TEST(SchedulerTest, NoReadyStreamBubbles)
{
    Scheduler sched;
    EXPECT_EQ(sched.pick(0), kNoStream);
}

TEST(SchedulerTest, SchedInstructionUpdatesSlot)
{
    Scheduler sched;
    sched.setSlot(5, 3);
    EXPECT_EQ(sched.slot(5), 3);
}

TEST(SchedulerTest, AllStreamsWaitingWholeFrameBubbles)
{
    // Every stream parked on a bus access: a full frame of bubbles in
    // both modes, with the cursor still advancing so the partition
    // resumes in place once someone wakes.
    for (Scheduler::Mode mode :
         {Scheduler::Mode::Dynamic, Scheduler::Mode::Static}) {
        Scheduler sched;
        sched.setShares({8, 4, 2, 2});
        sched.setMode(mode);
        for (unsigned i = 0; i < kScheduleSlots; ++i) {
            EXPECT_EQ(sched.pick(0), kNoStream);
            EXPECT_EQ(sched.cursor(), (i + 1) % kScheduleSlots);
        }
        // Wrapped exactly once; the next frame honours the partition.
        std::array<unsigned, kNumStreams> counts{};
        for (unsigned i = 0; i < kScheduleSlots; ++i)
            ++counts[sched.pick(0xf)];
        EXPECT_EQ(counts[0], 8u);
        EXPECT_EQ(counts[1], 4u);
        EXPECT_EQ(counts[2], 2u);
        EXPECT_EQ(counts[3], 2u);
    }
}

TEST(SchedulerTest, PartitionSumBelowSixteenRejected)
{
    Scheduler sched;
    EXPECT_THROW(sched.setShares({8, 4, 2, 1}), FatalError); // 15
    EXPECT_THROW(sched.setShares({0, 0, 0, 0}), FatalError);
    EXPECT_THROW(sched.setShares({15, 0, 0, 0}), FatalError);
}

TEST(SchedulerTest, PartitionSumExactlySixteenAccepted)
{
    // Degenerate but legal splits must be honoured exactly.
    Scheduler sched;
    sched.setShares({13, 1, 1, 1});
    std::array<unsigned, kNumStreams> counts{};
    for (unsigned i = 0; i < 1600; ++i)
        ++counts[sched.pick(0xf)];
    EXPECT_EQ(counts[0], 1300u);
    EXPECT_EQ(counts[1], 100u);
    EXPECT_EQ(counts[2], 100u);
    EXPECT_EQ(counts[3], 100u);

    sched.setShares({16, 0, 0, 0});
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(sched.pick(0xf), 0u);
}

TEST(SchedulerTest, StalledPartitionedStreamSlotsReclaimed)
{
    // A stream with the dominant share stalls (e.g. parked on a slow
    // bus access): dynamic reallocation must donate all its slots with
    // no bubbles, and give them back the moment it is ready again.
    Scheduler sched;
    sched.setShares({8, 4, 2, 2});

    std::array<unsigned, kNumStreams> counts{};
    for (unsigned i = 0; i < 1600; ++i) {
        StreamId s = sched.pick(0xe); // stream 0 stalled
        ASSERT_NE(s, kNoStream);
        ASSERT_NE(s, 0u);
        ++counts[s];
    }
    // Everyone keeps at least its own entitlement and the stalled
    // stream's 800 slots are fully absorbed.
    EXPECT_GE(counts[1], 400u);
    EXPECT_GE(counts[2], 200u);
    EXPECT_GE(counts[3], 200u);
    EXPECT_EQ(counts[1] + counts[2] + counts[3], 1600u);

    // Reclaim: once ready again, stream 0 gets its full share back.
    counts = {};
    for (unsigned i = 0; i < 1600; ++i)
        ++counts[sched.pick(0xf)];
    EXPECT_EQ(counts[0], 800u);
}

TEST(SchedulerTest, NextOwnerReportsStaticEntitlement)
{
    Scheduler sched;
    sched.setShares({8, 4, 2, 2});
    for (unsigned i = 0; i < 2 * kScheduleSlots; ++i) {
        StreamId owner = sched.nextOwner();
        EXPECT_EQ(owner, sched.slot(sched.cursor()));
        // With every stream ready, pick() must match the entitlement.
        EXPECT_EQ(sched.pick(0xf), owner);
    }
}

/** Property: dynamic mode never starves a ready stream. */
class SchedulerStarvationTest
    : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SchedulerStarvationTest, EveryReadyStreamIssuesWithinAFrame)
{
    unsigned ready = GetParam();
    Scheduler sched;
    sched.setShares({13, 1, 1, 1}); // heavily skewed partition
    std::array<unsigned, kNumStreams> counts{};
    for (unsigned i = 0; i < 16 * 100; ++i) {
        StreamId s = sched.pick(ready);
        if (s != kNoStream)
            ++counts[s];
    }
    for (StreamId s = 0; s < kNumStreams; ++s) {
        if (ready & (1u << s))
            EXPECT_GE(counts[s], 100u) << "stream " << unsigned(s);
        else
            EXPECT_EQ(counts[s], 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(ReadyMasks, SchedulerStarvationTest,
                         ::testing::Values(0x1u, 0x2u, 0x3u, 0x5u, 0x7u,
                                           0x9u, 0xbu, 0xeu, 0xfu));

// ---- Scheduler pick memo ----
//
// pick() is a memoized (mode, cursor, ready mask) lookup rebuilt when
// the slot table changes; referencePick() is the original circular
// scan it must stay bit-identical to. Each mutator below is followed
// by a sweep of every ready mask at every cursor under both modes.

/** Sweep all 16 masks at all 16 cursors, both modes, vs the scan. */
void
expectMemoMatchesReference(Scheduler &sched)
{
    for (auto mode :
         {Scheduler::Mode::Dynamic, Scheduler::Mode::Static}) {
        sched.setMode(mode);
        for (unsigned mask = 0; mask < (1u << kNumStreams); ++mask) {
            for (unsigned i = 0; i < kScheduleSlots; ++i) {
                unsigned cur = sched.cursor();
                StreamId expect =
                    sched.referencePick(cur, mask, mode);
                ASSERT_EQ(sched.pick(mask), expect)
                    << "mask 0x" << std::hex << mask << " cursor "
                    << std::dec << cur << " table "
                    << sched.describe();
                ASSERT_EQ(sched.cursor(),
                          (cur + 1) % kScheduleSlots);
            }
        }
    }
}

TEST(SchedulerMemoTest, FreshSchedulerMatchesReference)
{
    Scheduler sched;
    expectMemoMatchesReference(sched);
}

TEST(SchedulerMemoTest, SetSlotRebuilds)
{
    Scheduler sched;
    sched.setSlot(0, 3);
    sched.setSlot(7, 3);
    sched.setSlot(15, 1);
    expectMemoMatchesReference(sched);
}

TEST(SchedulerMemoTest, SetSharesRebuilds)
{
    Scheduler sched;
    sched.setShares({8, 4, 2, 2});
    expectMemoMatchesReference(sched);
    sched.setShares({13, 1, 1, 1});
    expectMemoMatchesReference(sched);
}

TEST(SchedulerMemoTest, SetEvenRebuilds)
{
    Scheduler sched;
    sched.setShares({8, 4, 2, 2});
    sched.setEven(2);
    expectMemoMatchesReference(sched);
}

TEST(SchedulerMemoTest, SetModeNeedsNoRebuild)
{
    // Both modes are precomputed, so flipping the mode between picks
    // must be just as consistent as rebuilding would be.
    Scheduler sched;
    sched.setShares({8, 4, 2, 2});
    for (unsigned mask = 0; mask < (1u << kNumStreams); ++mask) {
        sched.setMode(mask & 1 ? Scheduler::Mode::Static
                               : Scheduler::Mode::Dynamic);
        unsigned cur = sched.cursor();
        ASSERT_EQ(sched.pick(mask),
                  sched.referencePick(cur, mask, sched.mode()));
    }
}

TEST(SchedulerMemoTest, SkipSlotsOnlyMovesCursor)
{
    Scheduler sched;
    sched.setShares({8, 4, 2, 2});
    sched.skipSlots(5);
    EXPECT_EQ(sched.cursor(), 5u);
    expectMemoMatchesReference(sched);
    sched.skipSlots(kScheduleSlots + 3); // wraps
    expectMemoMatchesReference(sched);
}

TEST(SchedulerMemoTest, RestoreRebuilds)
{
    Scheduler a;
    a.setShares({8, 4, 2, 2});
    a.setMode(Scheduler::Mode::Static);
    a.skipSlots(11);
    Serializer out;
    a.save(out);

    // Restore into a scheduler whose memo reflects a different table:
    // the restored memo must serve the checkpointed table.
    Scheduler b;
    b.setShares({13, 1, 1, 1});
    Deserializer in(out.bytes());
    b.restore(in);
    EXPECT_EQ(b.describe(), a.describe());
    EXPECT_EQ(b.cursor(), 11u);
    expectMemoMatchesReference(b);
}

// ---- Bus and ABI ----

TEST(BusTest, DecodeRouting)
{
    Bus bus;
    ExternalMemoryDevice mem(256, 2);
    ActuatorDevice act(1);
    bus.attach(0x1000, 256, &mem);
    bus.attach(0x2000, 16, &act);
    Addr off = 0;
    EXPECT_EQ(bus.decode(0x1005, off), &mem);
    EXPECT_EQ(off, 5);
    EXPECT_EQ(bus.decode(0x200f, off), &act);
    EXPECT_EQ(off, 15);
    EXPECT_EQ(bus.decode(0x0000, off), nullptr);
    EXPECT_EQ(bus.decode(0x2010, off), nullptr);
}

TEST(BusTest, OverlapRejected)
{
    Bus bus;
    ExternalMemoryDevice a(256, 1), b(256, 1);
    bus.attach(0x1000, 256, &a);
    EXPECT_THROW(bus.attach(0x10ff, 4, &b), FatalError);
    EXPECT_NO_THROW(bus.attach(0x1100, 4, &b));
}

TEST(AbiTest, ReadCompletesAfterLatency)
{
    Bus bus;
    ExternalMemoryDevice mem(64, 3);
    mem.poke(5, 0xbeef);
    bus.attach(0x1000, 64, &mem);
    AsyncBusInterface abi(bus);

    auto out = abi.request(1, 0x1005, false, 0, 4);
    EXPECT_EQ(out, AsyncBusInterface::Outcome::Started);
    EXPECT_FALSE(abi.takeImmediate().has_value());
    EXPECT_TRUE(abi.busy());

    EXPECT_FALSE(abi.advance(1).has_value());
    EXPECT_FALSE(abi.advance(1).has_value());
    auto comp = abi.advance(1);
    ASSERT_TRUE(comp.has_value());
    EXPECT_EQ(comp->stream, 1);
    EXPECT_EQ(comp->destReg, 4);
    EXPECT_EQ(comp->data, 0xbeef);
    EXPECT_FALSE(abi.busy());
    EXPECT_EQ(abi.busyCycles(), 3u);
}

TEST(AbiTest, WriteLandsAtCompletion)
{
    Bus bus;
    ExternalMemoryDevice mem(64, 2);
    bus.attach(0, 64, &mem);
    AsyncBusInterface abi(bus);
    abi.request(0, 7, true, 0x1234, AsyncBusInterface::kNoDest);
    EXPECT_EQ(mem.peek(7), 0); // not yet written
    abi.advance(1);
    auto comp = abi.advance(1);
    ASSERT_TRUE(comp.has_value());
    EXPECT_TRUE(comp->isWrite);
    EXPECT_EQ(mem.peek(7), 0x1234);
}

TEST(AbiTest, BusyWhileInFlight)
{
    Bus bus;
    ExternalMemoryDevice mem(64, 4);
    bus.attach(0, 64, &mem);
    AsyncBusInterface abi(bus);
    EXPECT_EQ(abi.request(0, 1, false, 0, 0),
              AsyncBusInterface::Outcome::Started);
    EXPECT_EQ(abi.request(1, 2, false, 0, 0),
              AsyncBusInterface::Outcome::Busy);
}

TEST(AbiTest, FaultOnUnmappedAddress)
{
    Bus bus;
    AsyncBusInterface abi(bus);
    EXPECT_EQ(abi.request(0, 0x5555, false, 0, 0),
              AsyncBusInterface::Outcome::Fault);
    EXPECT_FALSE(abi.busy());
}

TEST(AbiTest, ZeroLatencyCompletesImmediately)
{
    Bus bus;
    ExternalMemoryDevice mem(64, 0);
    mem.poke(3, 42);
    bus.attach(0, 64, &mem);
    AsyncBusInterface abi(bus);
    EXPECT_EQ(abi.request(2, 3, false, 0, 6),
              AsyncBusInterface::Outcome::Started);
    auto imm = abi.takeImmediate();
    ASSERT_TRUE(imm.has_value());
    EXPECT_EQ(imm->data, 42);
    EXPECT_FALSE(abi.busy());
    EXPECT_EQ(abi.busyCycles(), 0u);
}

// ---- Devices ----

TEST(Devices, SensorProducesAndInterrupts)
{
    SensorDevice sensor(10, 2);
    sensor.setInterrupt(2, 4);
    unsigned ints = 0;
    for (int i = 0; i < 100; ++i) {
        if (auto req = sensor.onEvent(1)) {
            EXPECT_EQ(req->stream, 2);
            EXPECT_EQ(req->bit, 4u);
            ++ints;
        }
    }
    EXPECT_EQ(ints, 10u);
    EXPECT_EQ(sensor.samplesProduced(), 10u);
    Word v = sensor.read(0);
    EXPECT_EQ(v, static_cast<Word>(9 * 17 + 3));
    EXPECT_EQ(sensor.samplesRead(), 1u);
}

TEST(Devices, SensorCustomGenerator)
{
    SensorDevice sensor(1, 0);
    sensor.setGenerator([](std::uint64_t n) {
        return static_cast<Word>(n * n);
    });
    for (int i = 0; i < 5; ++i)
        sensor.onEvent(1);
    EXPECT_EQ(sensor.read(0), 16);
}

TEST(Devices, ActuatorRecordsOutputs)
{
    ActuatorDevice act(1);
    act.onEvent(1);
    act.onEvent(1);
    act.write(0, 100);
    act.onEvent(1);
    act.write(1, 200);
    ASSERT_EQ(act.outputs().size(), 2u);
    EXPECT_EQ(act.outputs()[0].cycle, 2u);
    EXPECT_EQ(act.outputs()[0].value, 100);
    EXPECT_EQ(act.outputs()[1].offset, 1);
    EXPECT_EQ(act.lastValue(), 100);
}

TEST(Devices, TimerFiresPeriodically)
{
    TimerDevice timer(5, 1, 7);
    unsigned fires = 0;
    for (int i = 0; i < 25; ++i) {
        if (auto req = timer.onEvent(1)) {
            EXPECT_EQ(req->stream, 1);
            EXPECT_EQ(req->bit, 7u);
            ++fires;
        }
    }
    EXPECT_EQ(fires, 5u);
    EXPECT_EQ(timer.fired(), 5u);
}

TEST(Devices, TimerReprogrammable)
{
    TimerDevice timer(100, 0, 1);
    timer.write(0, 2);
    unsigned fires = 0;
    for (int i = 0; i < 10; ++i)
        fires += timer.onEvent(1).has_value();
    EXPECT_EQ(fires, 5u);
}

} // namespace
} // namespace disc
