/**
 * @file
 * Tests for the stochastic evaluation model: load processes, the
 * sequencer model's accounting, and the qualitative shapes the paper
 * asserts in section 4.2.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "stochastic/experiment.hh"
#include "stochastic/load.hh"
#include "stochastic/model.hh"

namespace disc
{
namespace
{

// ---- Load processes ----

TEST(LoadProcess, AlwaysActiveLoadNeverIdles)
{
    LoadProcess p(standardLoad(1), 7);
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(p.active());
        p.next();
    }
}

TEST(LoadProcess, OnOffPhasesAlternate)
{
    LoadSpec spec = standardLoad(2);
    LoadProcess p(spec, 11);
    std::uint64_t on = 0, off = 0;
    for (int i = 0; i < 200000; ++i) {
        if (p.active()) {
            p.next();
            ++on;
        } else {
            p.tickIdle();
            ++off;
        }
    }
    double duty = static_cast<double>(on) / (on + off);
    double expect = spec.meanOn / (spec.meanOn + spec.meanOff);
    EXPECT_NEAR(duty, expect, 0.03);
}

TEST(LoadProcess, RequestRateMatchesMeanReq)
{
    LoadSpec spec = standardLoad(1);
    LoadProcess p(spec, 13);
    std::uint64_t n = 200000, req = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        req += p.next().external;
    double rate = static_cast<double>(req) / n;
    EXPECT_NEAR(rate, 1.0 / spec.meanReq, 0.01);
}

TEST(LoadProcess, JumpRateMatchesAlJmp)
{
    LoadSpec spec = standardLoad(1);
    LoadProcess p(spec, 17);
    std::uint64_t n = 200000, jumps = 0, ext = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        InstrClass c = p.next();
        jumps += c.jump;
        ext += c.external;
    }
    // Jumps are drawn among non-external instructions.
    double rate = static_cast<double>(jumps) / (n - ext);
    EXPECT_NEAR(rate, spec.alJmp, 0.01);
}

TEST(LoadProcess, MemoryVsIoSplitFollowsAlpha)
{
    LoadSpec spec = standardLoad(1);
    LoadProcess p(spec, 19);
    std::uint64_t mem = 0, io = 0;
    double io_time_sum = 0;
    for (int i = 0; i < 400000; ++i) {
        InstrClass c = p.next();
        if (!c.external)
            continue;
        if (c.accessTime == spec.tmem)
            ++mem;
        else {
            ++io;
            io_time_sum += c.accessTime;
        }
    }
    double frac = static_cast<double>(mem) / (mem + io);
    // I/O accesses occasionally draw accessTime == tmem; tolerate.
    EXPECT_NEAR(frac, spec.alpha, 0.05);
    EXPECT_NEAR(io_time_sum / io, spec.meanIo, 0.8);
}

TEST(LoadProcess, NoRequestsWhenMeanReqZero)
{
    LoadProcess p(standardLoad(3), 23);
    for (int i = 0; i < 10000; ++i)
        ASSERT_FALSE(p.next().external);
}

TEST(LoadProcess, ParameterValidation)
{
    LoadSpec bad = standardLoad(1);
    bad.alpha = 1.5;
    EXPECT_THROW(LoadProcess(bad, 1), FatalError);
    bad = standardLoad(1);
    bad.alJmp = -0.1;
    EXPECT_THROW(LoadProcess(bad, 1), FatalError);
}

TEST(LoadProcess, DeterministicForSeed)
{
    LoadProcess a(standardLoad(4), 99), b(standardLoad(4), 99);
    for (int i = 0; i < 5000; ++i) {
        ASSERT_EQ(a.active(), b.active());
        if (a.active()) {
            InstrClass ca = a.next(), cb = b.next();
            ASSERT_EQ(ca.jump, cb.jump);
            ASSERT_EQ(ca.external, cb.external);
            ASSERT_EQ(ca.accessTime, cb.accessTime);
        } else {
            a.tickIdle();
            b.tickIdle();
        }
    }
}

TEST(CombinedSourceTest, ActiveWhenEitherActive)
{
    // Combine an always-active load with a bursty one: always active.
    auto a = std::make_unique<LoadProcess>(standardLoad(1), 1);
    auto b = std::make_unique<LoadProcess>(standardLoad(4), 2);
    CombinedSource comb(std::move(a), std::move(b));
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(comb.active());
        comb.next();
    }
    EXPECT_EQ(comb.name(), "load1:load4");
}

TEST(CombinedSourceTest, BurstyPairHasHigherDutyThanEither)
{
    auto duty = [](WorkSource &src) {
        std::uint64_t on = 0;
        const int n = 200000;
        for (int i = 0; i < n; ++i) {
            if (src.active()) {
                src.next();
                ++on;
            } else {
                src.tickIdle();
            }
        }
        return static_cast<double>(on) / n;
    };
    LoadProcess solo(standardLoad(4), 5);
    double duty_solo = duty(solo);
    CombinedSource comb(
        std::make_unique<LoadProcess>(standardLoad(4), 6),
        std::make_unique<LoadProcess>(standardLoad(4), 7));
    double duty_comb = duty(comb);
    EXPECT_GT(duty_comb, duty_solo * 1.3);
}

// ---- Model accounting ----

StochasticConfig
quickConfig()
{
    StochasticConfig cfg;
    cfg.warmup = 1000;
    cfg.horizon = 50000;
    return cfg;
}

TEST(StochasticModelTest, PerfectLoadSaturates)
{
    // No jumps, no I/O, always active: PD == 1 for any stream count.
    LoadSpec perfect{"perfect", 0, 0, 0, 0, 0, 0, 0};
    for (unsigned k = 1; k <= 4; ++k) {
        auto r = runPartitioned(quickConfig(), perfect, k, 2);
        EXPECT_NEAR(r.pd.mean(), 1.0, 1e-9) << "k=" << k;
        EXPECT_NEAR(r.ps.mean(), 1.0, 1e-9);
    }
}

TEST(StochasticModelTest, JumpOnlySingleStreamMatchesAnalytic)
{
    // Jump-only load, one stream: every jump flushes (depth-1) slots,
    // identical to the standard processor, so PD ~= Ps and delta ~= 0.
    LoadSpec jumpy{"jumpy", 0, 0, 0, 0, 0, 0, 0.2};
    auto r = runPartitioned(quickConfig(), jumpy, 1, 3);
    double analytic = 1.0 / (1.0 + 0.2 * 3); // depth 4
    EXPECT_NEAR(r.ps.mean(), analytic, 0.01);
    EXPECT_NEAR(r.delta.mean(), 0.0, 6.0);
}

TEST(StochasticModelTest, JumpOnlyFourStreamsHideFlushes)
{
    // With four streams, flushed slots belong to other streams'
    // instructions only rarely; utilisation approaches 1.
    LoadSpec jumpy{"jumpy", 0, 0, 0, 0, 0, 0, 0.2};
    auto r = runPartitioned(quickConfig(), jumpy, 4, 3);
    EXPECT_GT(r.pd.mean(), 0.9);
    EXPECT_GT(r.delta.mean(), 40.0);
}

TEST(StochasticModelTest, IoOnlySingleStreamWorseThanStandard)
{
    // I/O-only, one stream: DISC flushes and refetches around every
    // wait while the standard pipe just stalls -> negative delta.
    LoadSpec io{"io", 0, 0, /*meanReq=*/10, /*alpha=*/0.0, /*tmem=*/0,
                /*meanIo=*/8, /*alJmp=*/0.0};
    auto r = runPartitioned(quickConfig(), io, 1, 3);
    EXPECT_LT(r.delta.mean(), 0.0);
}

TEST(StochasticModelTest, IoOnlyMultiStreamOverlapsWaits)
{
    LoadSpec io{"io", 0, 0, 10, 0.0, 0, 8, 0.0};
    auto r1 = runPartitioned(quickConfig(), io, 1, 3);
    auto r4 = runPartitioned(quickConfig(), io, 4, 3);
    EXPECT_GT(r4.pd.mean(), r1.pd.mean() + 0.15);
    EXPECT_GT(r4.delta.mean(), 20.0);
}

TEST(StochasticModelTest, BusSaturationBoundsUtilisation)
{
    // With very frequent long accesses the shared bus is the
    // bottleneck: utilisation cannot exceed what the bus admits.
    LoadSpec hog{"hog", 0, 0, /*meanReq=*/2, 0.0, 0, /*meanIo=*/20, 0.0};
    auto r = runPartitioned(quickConfig(), hog, 4, 2);
    // Each access occupies ~20 cycles of bus per ~2 instructions.
    EXPECT_LT(r.pd.mean(), 0.25);
}

TEST(StochasticModelTest, ResultFieldsConsistent)
{
    StochasticConfig cfg = quickConfig();
    std::vector<std::unique_ptr<WorkSource>> sources;
    sources.push_back(
        std::make_unique<LoadProcess>(standardLoad(1), 42));
    StochasticModel model(cfg, std::move(sources));
    RunTotals t = model.run();
    EXPECT_EQ(t.cycles, cfg.horizon);
    EXPECT_LE(t.busyCycles, t.cycles);
    EXPECT_LE(t.executed, t.cycles);
    EXPECT_LE(t.jumps, t.executed);
    EXPECT_EQ(t.perStreamExecuted.size(), 1u);
    EXPECT_EQ(t.perStreamExecuted[0], t.executed);
    EXPECT_GT(t.pd(), 0.0);
    EXPECT_LE(t.pd(), 1.0);
}

TEST(StochasticModelTest, ActivationLatencyBoundedBySlotSpacing)
{
    // A 1/16-share bursty stream against three always-ready
    // interferers: the first issue after activation can wait at most
    // 15 slots (and at least sometimes does).
    StochasticConfig cfg = quickConfig();
    cfg.shares = {1, 5, 5, 5};
    std::vector<std::unique_ptr<WorkSource>> sources;
    sources.push_back(std::make_unique<LoadProcess>(
        LoadSpec{"evt", 15, 150, 0, 0, 0, 0, 0.0}, 3));
    for (unsigned s = 0; s < 3; ++s) {
        sources.push_back(std::make_unique<LoadProcess>(
            LoadSpec{"bg", 0, 0, 0, 0, 0, 0, 0.0}, 50 + s));
    }
    StochasticModel model(cfg, std::move(sources));
    RunTotals t = model.run();
    ASSERT_GT(t.activationLatency.count(), 50u);
    EXPECT_LE(t.activationLatency.maxValue(), 15u);
    EXPECT_GT(t.activationLatency.mean(), 2.0);
}

TEST(StochasticModelTest, ActivationLatencyZeroWhenAlone)
{
    StochasticConfig cfg = quickConfig();
    std::vector<std::unique_ptr<WorkSource>> sources;
    sources.push_back(std::make_unique<LoadProcess>(
        LoadSpec{"evt", 20, 100, 0, 0, 0, 0, 0.0}, 9));
    StochasticModel model(cfg, std::move(sources));
    RunTotals t = model.run();
    ASSERT_GT(t.activationLatency.count(), 100u);
    EXPECT_EQ(t.activationLatency.maxValue(), 0u);
}

TEST(StochasticModelTest, RejectsBadConfig)
{
    StochasticConfig cfg;
    std::vector<std::unique_ptr<WorkSource>> none;
    EXPECT_THROW(StochasticModel(cfg, std::move(none)), FatalError);
    EXPECT_THROW(runPartitioned(cfg, standardLoad(1), 5, 1), FatalError);
    EXPECT_THROW(runPartitioned(cfg, standardLoad(1), 0, 1), FatalError);
}

TEST(StochasticModelTest, DeterministicForSeeds)
{
    auto a = runPartitioned(quickConfig(), standardLoad(2), 2, 2, 777);
    auto b = runPartitioned(quickConfig(), standardLoad(2), 2, 2, 777);
    EXPECT_DOUBLE_EQ(a.pd.mean(), b.pd.mean());
    EXPECT_DOUBLE_EQ(a.delta.mean(), b.delta.mean());
}

// ---- The paper's headline shapes (section 4.2) ----

class PartitioningShape : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PartitioningShape, UtilisationRisesWithStreamCount)
{
    // Table 4.2a: "as the degree of partitioning increases, so does
    // the utilization."
    unsigned load_no = GetParam();
    StochasticConfig cfg = quickConfig();
    double prev = 0.0;
    for (unsigned k = 1; k <= 4; ++k) {
        auto r = runPartitioned(cfg, standardLoad(load_no), k, 3);
        EXPECT_GE(r.pd.mean(), prev - 0.02)
            << "load " << load_no << " k=" << k;
        prev = r.pd.mean();
    }
}

INSTANTIATE_TEST_SUITE_P(Loads, PartitioningShape,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(PaperShapes, TwoStreamsSignificantlyOutperformOne)
{
    // Conclusion: "even a system with two instruction streams
    // significantly outperforms a single instruction stream system."
    auto r1 = runPartitioned(quickConfig(), standardLoad(1), 1, 3);
    auto r2 = runPartitioned(quickConfig(), standardLoad(1), 2, 3);
    EXPECT_GT(r2.delta.mean(), r1.delta.mean() + 20.0);
    EXPECT_GT(r2.delta.mean(), 25.0);
}

TEST(PaperShapes, SingleStreamDeltaNearZeroOrNegative)
{
    // Section 4.1: the flush assumptions make single-stream DISC no
    // better than (and for I/O-bound loads worse than) the standard
    // machine.
    for (unsigned load_no : {2u, 4u}) {
        auto r = runPartitioned(quickConfig(), standardLoad(load_no), 1,
                                3);
        EXPECT_LT(r.delta.mean(), 5.0) << "load " << load_no;
    }
}

TEST(PaperShapes, HighUtilisationLoadGainsLittle)
{
    // "in applications where single stream processor utilization is
    // very high, the advantages of DISC are not significant."
    auto r1 = runPartitioned(quickConfig(), standardLoad(3), 1, 3);
    auto r4 = runPartitioned(quickConfig(), standardLoad(3), 4, 3);
    EXPECT_GT(r1.ps.mean(), 0.8);
    EXPECT_LT(r4.delta.mean(), 25.0);
    EXPECT_GT(r4.delta.mean(), 0.0); // "there are still some gains"
}

TEST(PaperShapes, SeparatedLoadsBeatCombinedSingleStream)
{
    // Table 4.3: running load 1 and load x in separate streams beats
    // the statistical combination in one stream, for every x.
    StochasticConfig cfg = quickConfig();
    LoadSpec l1 = standardLoad(1);
    for (unsigned x = 2; x <= 4; ++x) {
        LoadSpec lx = standardLoad(x);
        auto comb =
            runExperiment(cfg, {makeCombinedFactory(l1, lx)}, 3);
        auto sep = runExperiment(
            cfg, {makeLoadFactory(l1), makeLoadFactory(lx)}, 3);
        EXPECT_GT(sep.pd.mean(), comb.pd.mean() + 0.05) << "x=" << x;
        EXPECT_GT(sep.delta.mean(), comb.delta.mean() + 10.0);
    }
}

TEST(PaperShapes, FurtherPartitioningKeepsHelping)
{
    // Table 4.3's "Three ISs" (load 1 split in two) and "Four ISs"
    // (both split) columns improve on the separated pair.
    StochasticConfig cfg = quickConfig();
    LoadSpec l1 = standardLoad(1);
    LoadSpec l4 = standardLoad(4);
    auto sep = runExperiment(
        cfg, {makeLoadFactory(l1), makeLoadFactory(l4)}, 3);
    auto three = runExperiment(cfg,
                               {makeLoadFactory(l1), makeLoadFactory(l1),
                                makeLoadFactory(l4)},
                               3);
    auto four = runExperiment(cfg,
                              {makeLoadFactory(l1), makeLoadFactory(l1),
                               makeLoadFactory(l4), makeLoadFactory(l4)},
                              3);
    EXPECT_GT(three.pd.mean(), sep.pd.mean());
    EXPECT_GT(four.delta.mean(), sep.delta.mean() + 10.0);
}

TEST(PaperShapes, StaticSchedulingUnderperformsDynamic)
{
    // The ablation the DISC concept motivates: strict static slots
    // waste stalled streams' bandwidth.
    StochasticConfig dynamic_cfg = quickConfig();
    StochasticConfig static_cfg = quickConfig();
    static_cfg.schedMode = Scheduler::Mode::Static;
    auto dyn = runPartitioned(dynamic_cfg, standardLoad(2), 4, 3);
    auto sta = runPartitioned(static_cfg, standardLoad(2), 4, 3);
    EXPECT_GT(dyn.pd.mean(), sta.pd.mean() + 0.05);
}

// ---- Parallel experiment harness ----

/** All aggregate fields of two experiment results, compared bitwise. */
void
expectBitIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    auto same = [](const RunningStat &x, const RunningStat &y) {
        EXPECT_EQ(x.count(), y.count());
        EXPECT_EQ(x.mean(), y.mean());
        EXPECT_EQ(x.variance(), y.variance());
        EXPECT_EQ(x.stderror(), y.stderror());
    };
    same(a.pd, b.pd);
    same(a.ps, b.ps);
    same(a.delta, b.delta);
    same(a.busyFraction, b.busyFraction);
}

TEST(ExperimentPool, ResultsIdenticalAcrossPoolSizes)
{
    // Replication seeds depend only on (base_seed, rep, stream) and
    // per-replication samples merge in replication order, so the
    // result must not depend on how many threads ran the job.
    StochasticConfig cfg = quickConfig();
    std::vector<SourceFactory> streams(4,
                                       makeLoadFactory(standardLoad(1)));
    ThreadPool p1(1), p2(2), p8(8);
    ExperimentResult r1 = runExperiment(cfg, streams, 8, 1, &p1);
    ExperimentResult r2 = runExperiment(cfg, streams, 8, 1, &p2);
    ExperimentResult r8 = runExperiment(cfg, streams, 8, 1, &p8);
    EXPECT_GT(r1.pd.mean(), 0.0);
    expectBitIdentical(r1, r2);
    expectBitIdentical(r1, r8);
}

TEST(ExperimentPool, PartitionedIdenticalAcrossPoolSizes)
{
    StochasticConfig cfg = quickConfig();
    ThreadPool p1(1), p8(8);
    expectBitIdentical(runPartitioned(cfg, standardLoad(2), 3, 6, 7, &p1),
                       runPartitioned(cfg, standardLoad(2), 3, 6, 7, &p8));
}

TEST(ExperimentPool, BaseSeedChangesResults)
{
    StochasticConfig cfg = quickConfig();
    ThreadPool p1(1);
    auto a = runPartitioned(cfg, standardLoad(1), 2, 4, 1, &p1);
    auto b = runPartitioned(cfg, standardLoad(1), 2, 4, 2, &p1);
    EXPECT_NE(a.pd.mean(), b.pd.mean());
}

TEST(PaperShapes, DeeperPipesHurtSingleStreamMore)
{
    // Section 4.2 varied pipeline length: jump flushes cost more in a
    // deeper pipe, and interleaving recovers the loss.
    LoadSpec l1 = standardLoad(1);
    StochasticConfig shallow = quickConfig();
    shallow.pipeDepth = 3;
    StochasticConfig deep = quickConfig();
    deep.pipeDepth = 8;
    auto s1 = runPartitioned(shallow, l1, 1, 3);
    auto d1 = runPartitioned(deep, l1, 1, 3);
    EXPECT_GT(s1.pd.mean(), d1.pd.mean() + 0.1);
    auto d4 = runPartitioned(deep, l1, 4, 3);
    EXPECT_GT(d4.pd.mean(), d1.pd.mean() + 0.2);
}

} // namespace
} // namespace disc
