/**
 * @file
 * Board subsystem tests: the spec parser (accept, canonicalize,
 * reject), the nine-type device registry, construction equivalence
 * with the legacy attachDevice path, checkpoint v3 board embedding
 * (round trip, spec mismatch, v2 backward compatibility), dual-tier
 * Machine/Interp agreement on a board, serve park/restore digest
 * identity for board-backed sessions, cross-tier digest identity for
 * every scenario-zoo board, and unit semantics of the three devices
 * introduced with the subsystem (watchdog, gpio, mailbox).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/devices.hh"
#include "board/board.hh"
#include "board/registry.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"
#include "serve/session.hh"
#include "sim/batch.hh"
#include "sim/digest.hh"
#include "sim/interp.hh"
#include "sim/machine.hh"

#ifndef DISC_SOURCE_DIR
#define DISC_SOURCE_DIR "."
#endif

namespace disc
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing file " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A board spec exercising every builtin device type once. */
const char *kNineTypeSpec = R"(
# one of everything, declaration order = attach order
device extmem   ram  base=0x2000 size=128 latency=1
device sensor   temp base=0x2100 size=4 period=50 latency=1 irq=1:4
device actuator out  base=0x2200 size=4 latency=1
device timer    tick base=0x2300 size=4 period=80 irq=0:2
device uart     com0 base=0x2400 size=4 period=60 latency=1 rx=5,6,7 irq=1:3
device dma      dma0 base=0x2500 size=4 target=ram cpw=2 irq=0:3
device watchdog dog  base=0x2600 size=4 timeout=500 grace=100 irq=2:5
device gpio     pins base=0x2700 size=4 period=40 pattern=1,0,3 edge=any irq=3:4
device mailbox  mbox base=0x2800 size=8 depth=4 delay=2 irq=3:6
)";

/** A small driver that pokes several of the nine devices and spins. */
const char *kNineTypeDriver = R"(
    .org 2
        jmp tock
    .org 11
        jmp srv1
    .org 12
        jmp srv1
    .org 21
        jmp srv2
    .org 28
        jmp srv3
    .org 30
        jmp srv3
    .org 0x40
    main:
        ldi  g0, 0x00
        ldih g0, 0x20      ; extmem
        ldi  r1, 9
        st   r1, [g0]
        st   r1, [g0+1]
        ldi  g0, 0x00
        ldih g0, 0x28      ; mailbox push
        st   r1, [g0+1]
        st   r1, [g0+1]
    spin:
        ldmd r2, [0x90]
        addi r2, r2, 1
        stmd r2, [0x90]
        jmp  spin
    tock:
        clri 2
        reti
    srv1:
        ldmd r1, [0x91]
        addi r1, r1, 1
        stmd r1, [0x91]
        clri 3
        clri 4
        reti
    srv2:
        clri 5
        reti
    srv3:
        ldmd r1, [0x92]
        addi r1, r1, 1
        stmd r1, [0x92]
        clri 4
        clri 6
        reti
)";

/** Build a machine running @p driver on the board in @p spec_text. */
struct BoardRig
{
    explicit BoardRig(const std::string &spec_text,
                      const std::string &driver,
                      MachineConfig cfg = {})
        : machine(cfg),
          board(buildBoard(parseBoardSpec(spec_text, "<test>")))
    {
        prog = assemble(driver);
        board.attachTo(machine);
        machine.load(prog);
        machine.startStream(0, prog.symbol("main"));
        board.startStreams(machine, prog);
    }

    Machine machine;
    Board board;
    Program prog;
};

// ---- Parser ----------------------------------------------------------

TEST(BoardParser, AcceptsCommentsWhitespaceAndParams)
{
    BoardSpec spec = parseBoardSpec(R"(
        # comment
        ; also a comment
        device uart com0 base=0x2100 size=4 period=40 rx=7,8 irq=1:4

        device extmem ram base=0x2000 size=64 latency=2   # trailing
        start 2 worker
    )");
    ASSERT_EQ(spec.devices.size(), 2u);
    EXPECT_EQ(spec.devices[0].type, "uart");
    EXPECT_EQ(spec.devices[0].name, "com0");
    EXPECT_EQ(spec.devices[0].base, 0x2100);
    EXPECT_EQ(spec.devices[0].size, 4);
    EXPECT_EQ(spec.devices[0].params.at("rx"), "7,8");
    EXPECT_EQ(spec.devices[1].type, "extmem");
    EXPECT_EQ(spec.devices[1].params.at("latency"), "2");
    ASSERT_EQ(spec.starts.size(), 1u);
    EXPECT_EQ(spec.starts[0].stream, 2u);
    EXPECT_EQ(spec.starts[0].label, "worker");
}

TEST(BoardParser, CanonicalTextIsAFixedPoint)
{
    BoardSpec spec = parseBoardSpec(kNineTypeSpec);
    std::string canon = spec.canonicalText();
    BoardSpec again = parseBoardSpec(canon, "<canon>");
    EXPECT_EQ(again.canonicalText(), canon);
    EXPECT_EQ(again.devices.size(), spec.devices.size());
}

TEST(BoardParser, RejectsStructuralErrors)
{
    // Unknown device type.
    EXPECT_THROW(parseBoardSpec("device bogus x base=0x2000 size=4\n"),
                 FatalError);
    // Duplicate instance name.
    EXPECT_THROW(
        parseBoardSpec("device extmem a base=0x2000 size=4\n"
                       "device extmem a base=0x3000 size=4\n"),
        FatalError);
    // Zero size.
    EXPECT_THROW(parseBoardSpec("device extmem a base=0x2000 size=0\n"),
                 FatalError);
    // Address range wraps.
    EXPECT_THROW(parseBoardSpec("device extmem a base=0xfffe size=8\n"),
                 FatalError);
    // Overlapping ranges.
    EXPECT_THROW(
        parseBoardSpec("device extmem a base=0x2000 size=64\n"
                       "device extmem b base=0x2020 size=64\n"),
        FatalError);
    // Start on a stream that does not exist.
    EXPECT_THROW(parseBoardSpec("start 7 main\n"), FatalError);
    // Malformed device line (missing size).
    EXPECT_THROW(parseBoardSpec("device extmem a base=0x2000\n"),
                 FatalError);
    // Unknown directive.
    EXPECT_THROW(parseBoardSpec("attach extmem a\n"), FatalError);
}

TEST(BoardParser, FactoriesRejectBadParameters)
{
    // Unknown parameter key.
    EXPECT_THROW(
        buildBoard(parseBoardSpec(
            "device extmem a base=0x2000 size=4 wibble=1\n")),
        FatalError);
    // IRQ stream out of range.
    EXPECT_THROW(
        buildBoard(parseBoardSpec(
            "device timer t base=0x2000 size=4 period=10 irq=6:2\n")),
        FatalError);
    // IRQ bit out of range (only 1..7 vector).
    EXPECT_THROW(
        buildBoard(parseBoardSpec(
            "device timer t base=0x2000 size=4 period=10 irq=0:9\n")),
        FatalError);
    // Malformed IRQ.
    EXPECT_THROW(
        buildBoard(parseBoardSpec(
            "device timer t base=0x2000 size=4 period=10 irq=zap\n")),
        FatalError);
    // Timer requires an irq.
    EXPECT_THROW(
        buildBoard(parseBoardSpec(
            "device timer t base=0x2000 size=4 period=10\n")),
        FatalError);
    // DMA requires a target...
    EXPECT_THROW(
        buildBoard(
            parseBoardSpec("device dma d base=0x2000 size=4 cpw=1\n")),
        FatalError);
    // ...that names an extmem declared EARLIER.
    EXPECT_THROW(
        buildBoard(parseBoardSpec(
            "device dma d base=0x2000 size=4 target=ram\n"
            "device extmem ram base=0x3000 size=64\n")),
        FatalError);
    EXPECT_THROW(
        buildBoard(parseBoardSpec(
            "device sensor s base=0x3000 size=4 period=9\n"
            "device dma d base=0x2000 size=4 target=s\n")),
        FatalError);
}

// ---- Registry --------------------------------------------------------

TEST(BoardRegistry, BuiltinCoversNineTypes)
{
    const DeviceRegistry &reg = DeviceRegistry::builtin();
    EXPECT_EQ(reg.size(), kNumBoardDeviceTypes);
    std::vector<std::string> types = reg.types();
    ASSERT_EQ(types.size(), kNumBoardDeviceTypes);
    for (const char *t : {"actuator", "dma", "extmem", "gpio", "mailbox",
                          "sensor", "timer", "uart", "watchdog"})
        EXPECT_TRUE(reg.has(t)) << t;
    // types() is sorted and typeIndex() agrees with it.
    for (std::size_t i = 0; i < types.size(); ++i) {
        if (i > 0) {
            EXPECT_LT(types[i - 1], types[i]);
        }
        EXPECT_EQ(reg.typeIndex(types[i]), i);
    }
    EXPECT_THROW(reg.typeIndex("bogus"), FatalError);
}

TEST(BoardRegistry, NineTypeBoardsBuildBitIdenticalMachines)
{
    BoardRig a(kNineTypeSpec, kNineTypeDriver);
    BoardRig b(kNineTypeSpec, kNineTypeDriver);
    EXPECT_EQ(a.board.numDevices(), kNumBoardDeviceTypes);
    a.machine.run(3000, false);
    b.machine.run(3000, false);
    EXPECT_EQ(a.machine.saveState(), b.machine.saveState());
    // The run actually drove the board: timer ticks and deliveries.
    EXPECT_GT(a.machine.internalMemory().read(0x90), 0u);
    EXPECT_GT(a.machine.internalMemory().read(0x92), 0u);
}

// ---- Legacy construction equivalence ---------------------------------

TEST(BoardBuild, RegistryExtmemMatchesLegacyAttachByteForByte)
{
    const char *driver = R"(
        .org 0x40
        main:
            ldi  g0, 0x00
            ldih g0, 0x20
            ldi  r1, 3
            ldi  r2, 16
        fill:
            st   r1, [g0]
            addi g0, g0, 1
            addi r1, r1, 5
            addi r2, r2, -1
            cmpi r2, 0
            bne  fill
            halt
    )";
    Program prog = assemble(driver);

    Machine legacy;
    ExternalMemoryDevice dev(64, 2);
    legacy.attachDevice(0x2000, 64, &dev);
    legacy.load(prog);
    legacy.startStream(0, prog.symbol("main"));
    legacy.run(2000, false);

    BoardRig rig("device extmem d0 base=0x2000 size=64 latency=2\n",
                 driver);
    rig.machine.run(2000, false);

    // Same device timing, same contents...
    auto &bdev = rig.board.findAs<ExternalMemoryDevice>("d0");
    for (Addr a = 0; a < 20; ++a)
        EXPECT_EQ(dev.peek(a), bdev.peek(a)) << "word " << a;
    // ...and byte-identical checkpoints once the board identity
    // string (the only intentional difference) is aligned.
    legacy.setBoardSpec(rig.machine.boardSpec());
    EXPECT_EQ(legacy.saveState(), rig.machine.saveState());
}

// ---- Checkpoint v3 ---------------------------------------------------

TEST(BoardCheckpoint, V3RoundTripIsBitIdentical)
{
    BoardRig a(kNineTypeSpec, kNineTypeDriver);
    a.machine.run(2500, false);
    std::vector<std::uint8_t> snap = a.machine.saveState();

    BoardRig b(kNineTypeSpec, kNineTypeDriver);
    b.machine.restoreState(snap);
    EXPECT_EQ(b.machine.saveState(), snap);

    // And the restored machine continues identically.
    a.machine.run(500, false);
    b.machine.run(500, false);
    EXPECT_EQ(a.machine.saveState(), b.machine.saveState());
}

TEST(BoardCheckpoint, BoardSpecMismatchIsFatal)
{
    BoardRig a("device extmem d0 base=0x2000 size=64 latency=1\n",
               "    .org 0x40\nmain:\n    halt\n");
    std::vector<std::uint8_t> snap = a.machine.saveState();

    BoardRig b("device extmem d0 base=0x2000 size=32 latency=1\n",
               "    .org 0x40\nmain:\n    halt\n");
    EXPECT_THROW(b.machine.restoreState(snap), FatalError);
}

TEST(BoardCheckpoint, V2CheckpointsStillRestore)
{
    // A machine with no board: its v3 checkpoint carries an empty
    // spec string right after magic+version+pipeDepth. Splicing that
    // string out and rewriting the version yields exactly the bytes a
    // pre-board v2 build would have produced.
    Program prog = assemble("    .org 0x40\nmain:\n    ldi r1, 7\n"
                            "    stmd r1, [0x80]\n    halt\n");
    Machine m;
    m.load(prog);
    m.startStream(0, prog.symbol("main"));
    m.run(200, false);
    std::vector<std::uint8_t> v3 = m.saveState();

    std::vector<std::uint8_t> v2 = v3;
    ASSERT_GE(v2.size(), 12u);
    v2[4] = 2; // version u16, little-endian
    v2[5] = 0;
    // Empty board spec string = 4 zero length bytes at offset 8.
    ASSERT_EQ(v2[8] | v2[9] | v2[10] | v2[11], 0);
    v2.erase(v2.begin() + 8, v2.begin() + 12);

    Machine n;
    n.load(prog);
    n.restoreState(v2);
    EXPECT_EQ(n.internalMemory().read(0x80), 7u);
    EXPECT_EQ(n.saveState(), v3); // re-saves as v3, same state
}

// ---- Dual tier: Machine vs Interp ------------------------------------

TEST(BoardDualTier, MachineAndInterpAgreeOnAccessDrivenDevices)
{
    // The golden-model interpreter does not tick device events, so
    // this workload only uses access-driven behaviour: extmem
    // stores/loads and mailbox push/pop (delivery interrupts are
    // events, but the FIFO itself moves on bus accesses alone).
    const char *spec =
        "device extmem ram base=0x2000 size=64 latency=1\n"
        "device mailbox mbox base=0x2100 size=8 depth=8 delay=2\n";
    const char *driver = R"(
        .org 0x40
        main:
            ldi  g0, 0x00
            ldih g0, 0x20
            ldi  g1, 0x00
            ldih g1, 0x21
            ldi  r1, 5
            ldi  r2, 4
        put:
            st   r1, [g0]      ; ram[i] = value
            st   r1, [g1+1]    ; push the same word
            addi g0, g0, 1
            addi r1, r1, 3
            addi r2, r2, -1
            cmpi r2, 0
            bne  put
            ldi  r3, 0
            ldi  r2, 4
        take:
            ld   r1, [g1]      ; pop
            add  r3, r3, r1
            addi r2, r2, -1
            cmpi r2, 0
            bne  take
            stmd r3, [0x80]
            halt
    )";
    Program prog = assemble(driver);

    BoardRig rig(spec, driver);
    rig.machine.run(3000, false);
    ASSERT_TRUE(rig.machine.idle());

    Board golden = buildBoard(parseBoardSpec(spec, "<interp>"));
    Interp interp;
    golden.attachTo(interp);
    interp.load(prog);
    interp.reset(prog.symbol("main"));
    interp.run(2000);
    ASSERT_TRUE(interp.halted());

    // 5+8+11+14 = 38, in both tiers.
    EXPECT_EQ(rig.machine.internalMemory().read(0x80), 38u);
    EXPECT_EQ(interp.internalMemory().read(0x80), 38u);
    auto &mdev = rig.board.findAs<ExternalMemoryDevice>("ram");
    auto &idev = golden.findAs<ExternalMemoryDevice>("ram");
    for (Addr a = 0; a < 8; ++a)
        EXPECT_EQ(mdev.peek(a), idev.peek(a)) << "word " << a;
}

// ---- Serve: park/restore digest identity -----------------------------

TEST(BoardServe, ParkedBoardSessionRestoresBitIdentical)
{
    const char *board_text =
        "device sensor s0 base=0x2100 size=4 period=45 latency=1 "
        "irq=1:4\n"
        "device actuator a0 base=0x2200 size=4 latency=1\n";
    const char *source = R"(
        .org 12
            jmp isr
        .org 0x40
        main:
            ldi  g0, 0x00
            ldih g0, 0x22
        loop:
            ldmd r1, [0x80]
            addi r1, r1, 1
            st   r1, [g0]
            jmp  loop
        isr:
            ldi  g1, 0x00
            ldih g1, 0x21
            ld   r1, [g1]
            stmd r1, [0x80]
            clri 4
            reti
    )";

    auto offlineBoardDigest = [&](Cycle cycles) {
        Program prog = assemble(source);
        Machine m;
        Board b = buildBoard(parseBoardSpec(board_text, "<offline>"));
        b.attachTo(m);
        m.load(prog);
        ExecTrace trace(serve::kSessionTraceEntries);
        m.setExecTrace(&trace);
        m.startStream(0, prog.symbol("main"));
        b.startStreams(m, prog);
        m.run(cycles, false);
        return runDigest(m, trace);
    };

    std::string dir =
        (std::filesystem::temp_directory_path() / "disc_board_park")
            .string();
    std::filesystem::remove_all(dir);

    serve::SessionRegistry reg(dir, 1);
    serve::SessionSpec spec_a;
    spec_a.id = "board-a";
    spec_a.source = source;
    spec_a.board = board_text;
    reg.open(spec_a);
    serve::SessionSpec spec_b = spec_a;
    spec_b.id = "board-b";
    reg.open(spec_b);

    // max_resident=1: every switch parks one session and restores the
    // other, so each session crosses the park file repeatedly.
    for (unsigned round = 0; round < 4; ++round) {
        for (const char *id : {"board-a", "board-b"}) {
            serve::SessionLease lease = reg.acquire(id);
            lease->machine().run(250, false);
        }
    }
    EXPECT_GT(reg.evictedTotal(), 0u);
    EXPECT_GT(reg.restoredTotal(), 0u);
    for (const char *id : {"board-a", "board-b"}) {
        serve::SessionLease lease = reg.acquire(id);
        EXPECT_EQ(serve::sessionDigest(*lease), offlineBoardDigest(1000))
            << id;
    }
}

// ---- Scenario zoo: cross-tier digest identity ------------------------

struct ZooBoard
{
    const char *name;
    Cycle horizon;
};

class ZooCrossTier : public ::testing::TestWithParam<ZooBoard>
{
};

TEST_P(ZooCrossTier, AllFourTiersBitIdentical)
{
    const ZooBoard &zb = GetParam();
    std::string dir =
        std::string(DISC_SOURCE_DIR) + "/examples/boards/";
    std::string spec_text = readFile(dir + zb.name + ".board");
    Program prog = assemble(readFile(dir + zb.name + ".s"));

    auto runTier = [&](MachineConfig cfg, bool batch) {
        Machine m(cfg);
        Board b = buildBoard(parseBoardSpec(spec_text, zb.name));
        b.attachTo(m);
        m.load(prog);
        m.startStream(0, prog.symbol("main"));
        b.startStreams(m, prog);
        if (batch) {
            MachineBatch mb(1);
            mb.add(&m);
            mb.run(zb.horizon, false);
        } else {
            m.run(zb.horizon, false);
        }
        return m.saveState();
    };

    MachineConfig full;  // fast-forward + uops + superblock
    MachineConfig nosb;
    nosb.superblockExec = false;
    MachineConfig legacy; // per-cycle legacy-switch reference
    legacy.fastForward = false;
    legacy.uopDispatch = false;
    legacy.superblockExec = false;

    std::vector<std::uint8_t> ref = runTier(legacy, false);
    EXPECT_EQ(runTier(nosb, false), ref) << "uop tier diverged";
    EXPECT_EQ(runTier(full, false), ref) << "superblock tier diverged";
    EXPECT_EQ(runTier(full, true), ref) << "batch tier diverged";
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooCrossTier,
    ::testing::Values(ZooBoard{"uart_echo", 4000},
                      ZooBoard{"watchdog_kick", 4000},
                      ZooBoard{"dma_scatter", 4000},
                      ZooBoard{"rtos_mailbox", 4000},
                      ZooBoard{"sensor_fusion", 4000},
                      ZooBoard{"engine_controller", 6000}),
    [](const ::testing::TestParamInfo<ZooBoard> &info) {
        return std::string(info.param.name);
    });

// ---- Watchdog unit ---------------------------------------------------

TEST(Watchdog, BitesAfterTimeoutThenResetsAfterGrace)
{
    WatchdogDevice dog(10, 5, 0);
    dog.setBiteInterrupt(1, 5);
    dog.setResetInterrupt(0, 6);

    EXPECT_EQ(dog.nextEventIn(), 10u);
    auto bite = dog.onEvent(10);
    ASSERT_TRUE(bite.has_value());
    EXPECT_EQ(bite->stream, 1);
    EXPECT_EQ(bite->bit, 5u);
    EXPECT_EQ(dog.bites(), 1u);
    EXPECT_EQ(dog.read(1), 1u); // in grace

    EXPECT_EQ(dog.nextEventIn(), 5u);
    auto reset = dog.onEvent(5);
    ASSERT_TRUE(reset.has_value());
    EXPECT_EQ(reset->stream, 0);
    EXPECT_EQ(reset->bit, 6u);
    EXPECT_EQ(dog.resets(), 1u);
    EXPECT_EQ(dog.read(1), 0u); // re-armed, watching again
    EXPECT_EQ(dog.read(2), 1u); // bites register
    EXPECT_EQ(dog.read(3), 1u); // resets register
}

TEST(Watchdog, KickRearmsBeforeAndDuringGrace)
{
    WatchdogDevice dog(10, 5, 0);
    dog.setBiteInterrupt(0, 5);

    // Kick at half time: no bite at the original deadline.
    EXPECT_FALSE(dog.onEvent(5).has_value());
    dog.write(0, 1);
    EXPECT_EQ(dog.nextEventIn(), 10u);
    EXPECT_FALSE(dog.onEvent(9).has_value());
    auto bite = dog.onEvent(1);
    ASSERT_TRUE(bite.has_value());
    EXPECT_EQ(dog.read(1), 1u);

    // A kick during grace cancels the pending reset.
    dog.write(0, 1);
    EXPECT_EQ(dog.read(1), 0u);
    EXPECT_EQ(dog.nextEventIn(), 10u);
    EXPECT_EQ(dog.resets(), 0u);
}

// ---- GPIO unit -------------------------------------------------------

TEST(Gpio, RisingEdgesLatchAndReadClears)
{
    GpioDevice gpio(5, {1, 0, 1}, GpioDevice::Edge::Rise, 0);
    gpio.setEdgeInterrupt(2, 3);

    EXPECT_EQ(gpio.nextEventIn(), 5u);
    auto e1 = gpio.onEvent(5); // 0 -> 1: rise
    ASSERT_TRUE(e1.has_value());
    EXPECT_EQ(e1->stream, 2);
    EXPECT_EQ(e1->bit, 3u);
    EXPECT_EQ(gpio.read(0), 1u); // input word
    EXPECT_EQ(gpio.read(2), 1u); // pending bit 0...
    EXPECT_EQ(gpio.read(2), 0u); // ...cleared by the read

    EXPECT_FALSE(gpio.onEvent(5).has_value()); // 1 -> 0: no rise
    EXPECT_TRUE(gpio.onEvent(5).has_value());  // 0 -> 1: rise
    EXPECT_EQ(gpio.steps(), 3u);
    EXPECT_EQ(gpio.read(3), 3u); // steps register
}

TEST(Gpio, FallAndAnySenses)
{
    GpioDevice fall(4, {3, 1}, GpioDevice::Edge::Fall, 0);
    fall.setEdgeInterrupt(0, 2);
    EXPECT_FALSE(fall.onEvent(4).has_value()); // 0 -> 3: rises only
    auto f = fall.onEvent(4);                  // 3 -> 1: bit 1 falls
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(fall.read(2), 2u);

    GpioDevice any(4, {2, 1}, GpioDevice::Edge::Any, 0);
    any.setEdgeInterrupt(0, 2);
    EXPECT_TRUE(any.onEvent(4).has_value()); // 0 -> 2
    EXPECT_TRUE(any.onEvent(4).has_value()); // 2 -> 1: both change
    EXPECT_EQ(any.read(2), 3u);
}

TEST(Gpio, OutputLatchReadsBack)
{
    GpioDevice gpio(4, {0}, GpioDevice::Edge::Rise, 0);
    gpio.write(1, 0xa5);
    EXPECT_EQ(gpio.read(1), 0xa5u);
    EXPECT_EQ(gpio.outputLatch(), 0xa5u);
}

// ---- Mailbox unit ----------------------------------------------------

TEST(Mailbox, FifoOrderOccupancyAndOverflow)
{
    MailboxDevice mbox(2, 1, 0);
    EXPECT_EQ(mbox.read(0), 0u); // pop when empty
    mbox.write(1, 10);
    mbox.write(1, 20);
    mbox.write(1, 30); // full: dropped
    EXPECT_EQ(mbox.occupancy(), 2u);
    EXPECT_EQ(mbox.overflows(), 1u);
    EXPECT_EQ(mbox.read(2), 2u);          // occupancy register
    EXPECT_EQ(mbox.read(3) & 3u, 3u);     // non-empty | full
    EXPECT_EQ(mbox.read(4), 1u);          // overflows register
    EXPECT_EQ(mbox.read(0), 10u);
    EXPECT_EQ(mbox.read(0), 20u);
    EXPECT_EQ(mbox.read(0), 0u);
    EXPECT_EQ(mbox.read(3), 0u);
}

TEST(Mailbox, DeliversOneInterruptPerPostAfterDelay)
{
    MailboxDevice mbox(8, 3, 0);
    mbox.setDeliveryInterrupt(3, 4);
    mbox.write(1, 7);
    mbox.write(1, 8);

    Cycle in = mbox.nextEventIn();
    ASSERT_LE(in, 3u);
    unsigned delivered = 0;
    for (unsigned guard = 0; guard < 16; ++guard) {
        Cycle n = mbox.nextEventIn();
        if (n == kNoDeviceEvent || n == 0)
            break;
        if (auto req = mbox.onEvent(n)) {
            EXPECT_EQ(req->stream, 3);
            EXPECT_EQ(req->bit, 4u);
            ++delivered;
        }
        if (delivered == 2)
            break;
    }
    EXPECT_EQ(delivered, 2u);
    EXPECT_EQ(mbox.occupancy(), 2u); // delivery does not consume
}

} // namespace
} // namespace disc
