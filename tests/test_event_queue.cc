/**
 * @file
 * Unit tests for the min-heap timing kernel queue: time ordering,
 * same-cycle FIFO stability, supersession, lazy cancellation and
 * sparse source ids.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"

namespace disc
{
namespace
{

std::vector<EventQueue::Event>
drain(EventQueue &q, Cycle now)
{
    std::vector<EventQueue::Event> out;
    q.popDue(now, out);
    return out;
}

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), kNoEvent);
    EXPECT_FALSE(q.pending(0));
    EXPECT_EQ(q.scheduledAt(0), kNoEvent);
    EXPECT_TRUE(drain(q, 1000).empty());
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    q.schedule(1, 30);
    q.schedule(2, 10);
    q.schedule(3, 20);
    EXPECT_EQ(q.nextTime(), 10u);
    auto due = drain(q, 100);
    ASSERT_EQ(due.size(), 3u);
    EXPECT_EQ(due[0].source, 2u);
    EXPECT_EQ(due[1].source, 3u);
    EXPECT_EQ(due[2].source, 1u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameCycleIsFifoStable)
{
    // Many sources on one cycle must pop in schedule order, not in
    // whatever order the heap internally settles on.
    EventQueue q;
    const std::uint32_t order[] = {7, 3, 11, 0, 5, 9, 2, 8, 1};
    for (std::uint32_t s : order)
        q.schedule(s, 42);
    auto due = drain(q, 42);
    ASSERT_EQ(due.size(), std::size(order));
    for (std::size_t i = 0; i < std::size(order); ++i) {
        EXPECT_EQ(due[i].source, order[i]) << "position " << i;
        EXPECT_EQ(due[i].when, 42u);
    }
}

TEST(EventQueue, PopDueLeavesFutureEvents)
{
    EventQueue q;
    q.schedule(0, 5);
    q.schedule(1, 6);
    q.schedule(2, 7);
    auto due = drain(q, 6);
    ASSERT_EQ(due.size(), 2u);
    EXPECT_EQ(due[0].source, 0u);
    EXPECT_EQ(due[1].source, 1u);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_TRUE(q.pending(2));
    EXPECT_FALSE(q.pending(0));
    EXPECT_EQ(q.nextTime(), 7u);
}

TEST(EventQueue, RescheduleSupersedes)
{
    EventQueue q;
    q.schedule(4, 50);
    q.schedule(4, 10); // moves earlier
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.scheduledAt(4), 10u);
    auto due = drain(q, 100);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].when, 10u);

    q.schedule(4, 10);
    q.schedule(4, 50); // moves later
    EXPECT_EQ(q.nextTime(), 50u);
    EXPECT_TRUE(drain(q, 49).empty());
    ASSERT_EQ(drain(q, 50).size(), 1u);
}

TEST(EventQueue, RescheduleMovesFifoPositionToBack)
{
    // Superseding an event re-enters the FIFO at the tail even when
    // the cycle is unchanged.
    EventQueue q;
    q.schedule(1, 20);
    q.schedule(2, 20);
    q.schedule(1, 20);
    auto due = drain(q, 20);
    ASSERT_EQ(due.size(), 2u);
    EXPECT_EQ(due[0].source, 2u);
    EXPECT_EQ(due[1].source, 1u);
}

TEST(EventQueue, CancelDropsEvent)
{
    EventQueue q;
    q.schedule(0, 10);
    q.schedule(1, 5);
    q.cancel(1);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_FALSE(q.pending(1));
    EXPECT_EQ(q.nextTime(), 10u); // the cancelled earlier event is gone
    auto due = drain(q, 100);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].source, 0u);

    q.cancel(0); // cancelling an unscheduled source is a no-op
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelThenRescheduleWorks)
{
    EventQueue q;
    q.schedule(6, 8);
    q.cancel(6);
    q.schedule(6, 12);
    EXPECT_EQ(q.scheduledAt(6), 12u);
    auto due = drain(q, 20);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].source, 6u);
    EXPECT_EQ(due[0].when, 12u);
}

TEST(EventQueue, SparseSourceIds)
{
    // The machine uses 0xffffffff for the ABI completion; ids beyond
    // the dense table must behave identically.
    EventQueue q;
    const std::uint32_t abi = 0xffffffffu;
    q.schedule(abi, 9);
    q.schedule(3, 9);
    EXPECT_TRUE(q.pending(abi));
    EXPECT_EQ(q.scheduledAt(abi), 9u);
    auto due = drain(q, 9);
    ASSERT_EQ(due.size(), 2u);
    EXPECT_EQ(due[0].source, abi);
    EXPECT_EQ(due[1].source, 3u);

    q.schedule(abi, 4);
    q.cancel(abi);
    EXPECT_FALSE(q.pending(abi));
    EXPECT_TRUE(drain(q, 100).empty());
}

TEST(EventQueue, ClearForgetsEverything)
{
    EventQueue q;
    q.schedule(0, 1);
    q.schedule(1, 2);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.pending(0));
    EXPECT_EQ(q.nextTime(), kNoEvent);
    EXPECT_TRUE(drain(q, 1000).empty());
    q.schedule(0, 3); // usable again after clear
    EXPECT_EQ(q.nextTime(), 3u);
}

} // namespace
} // namespace disc
