/**
 * @file
 * Cycle-accurate machine tests: whole assembled programs running on
 * the DISC1 model, covering ALU semantics, the stack window calling
 * convention, interleaving, hazards, the asynchronous bus, interrupts
 * and stream control.
 */

#include <gtest/gtest.h>

#include "arch/devices.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace disc
{
namespace
{

/** Assemble, load, start stream 0 at "main", run to idle. */
Machine &
runProgram(Machine &m, const std::string &src, Cycle max_cycles = 20000)
{
    Program p = assemble(src);
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(max_cycles);
    EXPECT_TRUE(m.idle()) << "program did not finish";
    return m;
}

TEST(MachineBasic, ArithmeticAndHalt)
{
    Machine m;
    runProgram(m, R"(
        .org 0x20
        main:
            ldi r0, 5
            ldi r1, 7
            add r2, r0, r1
            mul r3, r0, r1
            sub r4, r1, r0
            stmd r2, [0x40]
            stmd r3, [0x41]
            stmd r4, [0x42]
            halt
    )");
    EXPECT_EQ(m.internalMemory().read(0x40), 12);
    EXPECT_EQ(m.internalMemory().read(0x41), 35);
    EXPECT_EQ(m.internalMemory().read(0x42), 2);
    EXPECT_EQ(m.stats().totalRetired, 9u);
}

TEST(MachineBasic, SixteenBitConstants)
{
    Machine m;
    runProgram(m, R"(
        .org 0x20
        main:
            ldi  r0, 0x34
            ldih r0, 0x12
            stmd r0, [0x10]
            ldi  r1, -1       ; 0xffff
            stmd r1, [0x11]
            halt
    )");
    EXPECT_EQ(m.internalMemory().read(0x10), 0x1234);
    EXPECT_EQ(m.internalMemory().read(0x11), 0xffff);
}

TEST(MachineBasic, MulHighLatch)
{
    Machine m;
    runProgram(m, R"(
        .org 0x20
        main:
            ldi  r0, 0x100
            ldi  r1, 0x300
            mul  r2, r0, r1    ; 0x30000: low 0x0000, high 0x0003
            mulh r3
            stmd r2, [0x20]
            stmd r3, [0x21]
            halt
    )");
    EXPECT_EQ(m.internalMemory().read(0x20), 0x0000);
    EXPECT_EQ(m.internalMemory().read(0x21), 0x0003);
}

TEST(MachineBasic, BranchesAndLoop)
{
    // Sum 1..10 with a countdown loop.
    Machine m;
    runProgram(m, R"(
        .org 0x20
        main:
            ldi r0, 10      ; counter
            ldi r1, 0       ; sum
        loop:
            add r1, r1, r0
            subi r0, r0, 1
            cmpi r0, 0
            bne loop
            stmd r1, [0x50]
            halt
    )");
    EXPECT_EQ(m.internalMemory().read(0x50), 55);
    EXPECT_GT(m.stats().redirects, 8u);
    EXPECT_GT(m.stats().squashedJump, 0u);
}

TEST(MachineBasic, SignedComparisons)
{
    Machine m;
    runProgram(m, R"(
        .org 0x20
        main:
            ldi r0, -5
            ldi r1, 3
            cmp r0, r1
            blt was_less
            ldi r2, 0
            jmp store
        was_less:
            ldi r2, 1
        store:
            stmd r2, [0x30]
            ; unsigned view: 0xfffb > 3
            cmp r0, r1
            bult was_below
            ldi r3, 0
            jmp store2
        was_below:
            ldi r3, 1
        store2:
            stmd r3, [0x31]
            halt
    )");
    EXPECT_EQ(m.internalMemory().read(0x30), 1); // signed less
    EXPECT_EQ(m.internalMemory().read(0x31), 0); // not unsigned-below
}

TEST(MachineBasic, InternalMemoryAddressing)
{
    Machine m;
    runProgram(m, R"(
        .dmem 0x60, 111
        .dmem 0x61, 222
        .org 0x20
        main:
            ldi r0, 0x60
            ldm r1, [r0]      ; register indirect
            ldm r2, [r0+1]    ; register + offset
            ldmd r3, [0x60]   ; direct
            add r4, r1, r2
            add r4, r4, r3
            stm r4, [r0+2]
            halt
    )");
    EXPECT_EQ(m.internalMemory().read(0x62), 444);
}

// ---- Stack window calling convention ----

TEST(MachineCalls, CallReturnsAndPreservesCallerFrame)
{
    Machine m;
    runProgram(m, R"(
        .org 0x20
        main:
            ldi r0, 77        ; caller local in r0
            call fn
            stmd r0, [0x40]   ; caller frame must be intact
            stmd r1, [0x41]
            halt
        fn:
            ; After CALL, RA sits in r0 and the caller's r0 shows
            ; through at r1. Allocate one local with winc, use it,
            ; then RET 1 unwinds the local and pops the RA.
            winc
            ldi r0, 123
            ret 1
    )");
    EXPECT_EQ(m.internalMemory().read(0x40), 77);
}

TEST(MachineCalls, RecursiveFactorial)
{
    // factorial(6) via the stack window: argument in g0, result in g1.
    Machine m;
    runProgram(m, R"(
        .org 0x20
        main:
            ldi g0, 6
            call fact
            stmd g1, [0x70]
            halt
        fact:
            ; frame: r0 = RA. allocate r0' = saved arg (1 local).
            cmpi g0, 2
            bge recurse
            ldi g1, 1
            ret 0
        recurse:
            winc              ; allocate one local (old RA now at r1)
            mov r0, g0        ; save n
            subi g0, g0, 1
            call fact         ; g1 = (n-1)!
            mul g1, g1, r0    ; n * (n-1)!
            ret 1
    )", 100000);
    EXPECT_EQ(m.internalMemory().read(0x70), 720);
}

TEST(MachineCalls, StackOverflowRaisesInterrupt)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            winc
            jmp main
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(3000, false);
    EXPECT_GT(m.stats().stackOverflows, 0u);
    EXPECT_TRUE(m.interrupts().ir(0) & (1u << kStackOverflowBit));
}

// ---- Hazards and interleaving ----

TEST(MachineHazards, DependentChainStallsSingleStream)
{
    // A long chain of dependent adds cannot sustain one IPC alone.
    Machine m;
    std::string src = ".org 0x20\nmain:\n    ldi r0, 0\n";
    for (int i = 0; i < 40; ++i)
        src += "    addi r0, r0, 1\n";
    src += "    stmd r0, [0x10]\n    halt\n";
    runProgram(m, src);
    EXPECT_EQ(m.internalMemory().read(0x10), 40);
    // Utilisation well below 1 because of interlock stalls.
    EXPECT_LT(m.stats().utilization(), 0.55);
    EXPECT_GT(m.stats().bubbles, 40u);
}

TEST(MachineHazards, IndependentOpsDoNotStall)
{
    // Independent instructions from one stream can fill the pipe.
    Machine m;
    std::string src = ".org 0x20\nmain:\n";
    for (int i = 0; i < 10; ++i) {
        src += "    ldi r1, 1\n    ldi r2, 2\n    ldi r3, 3\n"
               "    ldi r4, 4\n";
    }
    src += "    halt\n";
    runProgram(m, src);
    EXPECT_GT(m.stats().utilization(), 0.9);
}

TEST(MachineHazards, FourStreamsHideDependencyStalls)
{
    // The same dependent chain on four streams interleaves to ~1 IPC:
    // the interleaving principle of Figure 3.1.
    auto chain = [](int n) {
        std::string s = "    ldi r0, 0\n";
        for (int i = 0; i < n; ++i)
            s += "    addi r0, r0, 1\n";
        s += "    halt\n";
        return s;
    };
    Program p = assemble(".org 0x20\nentry:\n" + chain(40));
    Machine m;
    m.load(p);
    for (StreamId s = 0; s < 4; ++s)
        m.startStream(s, p.symbol("entry"));
    m.run(20000);
    EXPECT_TRUE(m.idle());
    EXPECT_GT(m.stats().utilization(), 0.95);
}

TEST(MachineHazards, JumpFlushPenaltyVisible)
{
    // Tight loop of jumps: each taken jump flushes the younger
    // same-stream fetches.
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            jmp main
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(1000, false);
    // With depth 4 every executed jump wastes pipe slots.
    EXPECT_LT(m.stats().utilization(), 0.55);
    EXPECT_GT(m.stats().squashedJump, 100u);
}

// ---- External bus behaviour ----

class MachineBusTest : public ::testing::Test
{
  protected:
    Machine m;
    ExternalMemoryDevice ext{256, 8}; // 8-cycle external memory

    void
    SetUp() override
    {
        m.attachDevice(0x1000, 256, &ext);
    }
};

TEST_F(MachineBusTest, LoadStoreRoundTrip)
{
    ext.poke(5, 0xcafe);
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10     ; g0 = 0x1000
            ld   r1, [g0+5]
            st   r1, [g0+6]
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(2000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(ext.peek(6), 0xcafe);
    EXPECT_EQ(m.stats().externalReads, 1u);
    EXPECT_EQ(m.stats().externalWrites, 1u);
}

TEST_F(MachineBusTest, WaitingStreamDonatesSlots)
{
    // Stream 0 repeatedly loads from slow memory; stream 1 computes.
    // Running both together must overlap stream 0's bus waits with
    // stream 1's work: combined busy time is well below the sum of
    // the two solo runs (the dynamic-interleaving claim).
    Program p = assemble(R"(
        .org 0x20
        io_loop:
            ldi  g0, 0x00
            ldih g0, 0x10
            ldi  r1, 20
        io_body:
            ld   r2, [g0]
            subi r1, r1, 1
            cmpi r1, 0
            bne  io_body
            halt
        compute:
            ldi r0, 0
            ldi r1, 900
        compute_body:
            add  r0, r0, r1
            subi r1, r1, 1
            cmpi r1, 0
            bne  compute_body
            halt
    )");
    auto solo_busy = [&](const char *entry) {
        Machine solo;
        ExternalMemoryDevice dev(256, 8);
        solo.attachDevice(0x1000, 256, &dev);
        solo.load(p);
        solo.startStream(0, p.symbol(entry));
        solo.run(60000);
        EXPECT_TRUE(solo.idle());
        return solo.stats().busyCycles;
    };
    Cycle io_busy = solo_busy("io_loop");
    Cycle compute_busy = solo_busy("compute");

    m.load(p);
    m.startStream(0, p.symbol("io_loop"));
    m.startStream(1, p.symbol("compute"));
    m.run(60000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.stats().externalReads, 20u);
    // Strict overlap: at least half of the I/O stream's cost is
    // hidden under the compute stream (in practice nearly all of it).
    EXPECT_LT(m.stats().busyCycles, compute_busy + io_busy / 2);
    // Sanity: running together is never slower than running serially.
    EXPECT_LT(m.stats().busyCycles, io_busy + compute_busy);
}

TEST_F(MachineBusTest, BusBusyRejectionAndRetry)
{
    // Two streams both hammer the bus; one always finds it busy first
    // and must retry, yet all accesses complete.
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi  g0, 0x00
            ldih g0, 0x10
            ldi  r1, 10
        body:
            ld   r2, [g0]
            subi r1, r1, 1
            cmpi r1, 0
            bne  body
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("entry"));
    m.startStream(1, p.symbol("entry"));
    m.run(60000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.stats().externalReads, 20u);
    EXPECT_GT(m.stats().busBusyRejections, 0u);
}

TEST_F(MachineBusTest, BusFaultRaisesInterrupt)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x70     ; unmapped
            ld   r1, [g0]
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    // Note: the fault vectors to a NOP-filled table entry which falls
    // through into main again, so the fault can repeat; assert at
    // least one occurred and the request bit is latched.
    m.run(2000, false);
    EXPECT_GE(m.stats().busFaults, 1u);
    EXPECT_TRUE(m.interrupts().ir(0) & (1u << kBusFaultBit));
}

TEST_F(MachineBusTest, ZeroLatencyDeviceDoesNotWait)
{
    ActuatorDevice act(0);
    m.attachDevice(0x2000, 16, &act);
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x20
            ldi  r1, 42
            st   r1, [g0]
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(1000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(act.lastValue(), 42);
    EXPECT_EQ(m.stats().squashedWait, 0u);
}

// ---- Interrupts and stream control ----

TEST(MachineInterrupts, TimerVectorsDedicatedStream)
{
    Machine m;
    TimerDevice timer(50, /*stream=*/1, /*bit=*/3);
    m.attachDevice(0x3000, 4, &timer);
    Program p = assemble(R"(
        ; vector table: stream 1, level 3 -> address 8 + 3 = 11
        .org 11
            jmp handler
        .org 0x20
        main:                 ; background on stream 0
            ldi r0, 0
        bg:
            addi r0, r0, 1
            jmp bg
        handler:
            ldmd r1, [0x80]
            addi r1, r1, 1
            stmd r1, [0x80]
            clri 3
            reti
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(1000, false);
    // ~20 timer fires in 1000 cycles.
    Word count = m.internalMemory().read(0x80);
    EXPECT_GE(count, 18);
    EXPECT_LE(count, 20);
    EXPECT_EQ(m.stats().vectorsTaken, count);
    // Latency from raise to vector entry was measured.
    EXPECT_EQ(m.latencyHistogram().count(), count);
    // Dedicated-stream latency is small (a few cycles).
    EXPECT_LT(m.latencyHistogram().mean(), 6.0);
}

TEST(MachineInterrupts, SoftwareInterruptBetweenStreams)
{
    Machine m;
    Program p = assemble(R"(
        .org 12              ; stream 1, level 4 vector (8 + 4)
            jmp handler
        .org 0x20
        main:
            swi 1, 4          ; poke stream 1
            halt
        handler:
            ldi r1, 99
            stmd r1, [0x90]
            clri 4
            reti
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(500, false);
    EXPECT_EQ(m.internalMemory().read(0x90), 99);
    // After RETI with no other bits set, stream 1 goes inactive again.
    EXPECT_FALSE(m.interrupts().isActive(1));
}

TEST(MachineInterrupts, PriorityNesting)
{
    // A low-priority handler is preempted by a high-priority one.
    Machine m;
    Program p = assemble(R"(
        .org 1                ; stream 0 level 1 vector
            jmp low
        .org 6                ; stream 0 level 6 vector
            jmp high
        .org 0x20
        main:
            swi 0, 1          ; trigger low on self
        spin:
            jmp spin
        low:
            ldmd r1, [0xa0]
            ori  r1, r1, 1
            stmd r1, [0xa0]
            swi 0, 6          ; raise high while in low
            ; give the vector a chance to preempt
            nop
            nop
            nop
            ldmd r1, [0xa0]
            ori  r1, r1, 4    ; low-resume marker
            stmd r1, [0xa0]
            clri 1
            reti
        high:
            ldmd r1, [0xa0]
            ori  r1, r1, 2
            stmd r1, [0xa0]
            clri 6
            reti
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(300, false);
    // All three markers present: low entered, high nested, low resumed.
    EXPECT_EQ(m.internalMemory().read(0xa0), 7);
}

TEST(MachineInterrupts, MaskDefersVector)
{
    Machine m;
    Program p = assemble(R"(
        .org 2                ; stream 0 level 2
            jmp handler
        .org 0x20
        main:
            ldi  r0, 0x01     ; mask: background only
            mov  imr, r0
            swi  0, 2         ; pends but cannot vector
            nop
            nop
            nop
            nop
            ldmd r1, [0xb0]
            stmd r1, [0xb1]   ; copy marker before unmask (must be 0)
            ldi  r0, 0xff
            mov  imr, r0      ; unmask -> vector now
            nop
            nop
            halt
        handler:
            ldi r1, 1
            stmd r1, [0xb0]
            clri 2
            reti
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(500, false);
    EXPECT_EQ(m.internalMemory().read(0xb1), 0); // not taken while masked
    EXPECT_EQ(m.internalMemory().read(0xb0), 1); // taken after unmask
}

TEST(MachineInterrupts, ForkStartsAndHaltStops)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            fork 2, worker
            halt
        worker:
            ldi r0, 5
            stmd r0, [0xc0]
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(500);
    EXPECT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0xc0), 5);
    EXPECT_FALSE(m.interrupts().isActive(2));
    EXPECT_GT(m.stats().retired[2], 0u);
}

TEST(MachineInterrupts, SemaphoreHandshakeViaTas)
{
    // Stream 0 produces into internal memory guarded by a TAS lock;
    // stream 1 consumes. Global g3 counts consumed items.
    Machine m;
    Program p = assemble(R"(
        .equ LOCK, 0x100
        .equ DATA, 0x101
        .equ DONE, 0x102
        .org 0x20
        producer:
            ldi r0, 1
        p_acquire:
            tas r1, [g0]      ; g0 = LOCK
            cmpi r1, 0
            bne p_acquire
            stmd r0, [DATA]
            ldi r2, 0
            stmd r2, [LOCK+0] ; release... keep simple: write 0
            addi r0, r0, 1
            cmpi r0, 6
            bne p_acquire
            ldi r3, 1
            stmd r3, [DONE]
            halt
        consumer:
        c_loop:
            ldmd r1, [DONE]
            cmpi r1, 1
            bne c_loop
            ldmd r2, [DATA]
            mov g3, r2
            halt
    )");
    m.load(p);
    // Both streams need LOCK address in g0 (globals are shared).
    m.load(p);
    m.writeReg(0, reg::G0, 0x100);
    m.startStream(0, p.symbol("producer"));
    m.startStream(1, p.symbol("consumer"));
    m.run(20000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.readReg(1, reg::G3), 5); // last produced value
}

TEST(MachineInterrupts, SchedInstructionRepartitions)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            sched 0, 1
            sched 1, 1
            sched 2, 1
            sched 3, 1
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(200);
    EXPECT_EQ(m.scheduler().slot(0), 1);
    EXPECT_EQ(m.scheduler().slot(3), 1);
}

TEST(MachineInterrupts, IllegalInstructionTraps)
{
    Machine m;
    Program p;
    p.code = {static_cast<InstWord>(63) << 18}; // undefined opcode
    m.load(p);
    m.startStream(0, 0);
    m.run(50, false);
    EXPECT_GT(m.stats().illegalInstructions, 0u);
    EXPECT_TRUE(m.interrupts().ir(0) & (1u << kIllegalInstBit));
}

// ---- Special registers ----

TEST(MachineSpecials, StatusRegisterReadsContext)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r0, 0
            cmpi r0, 0        ; Z := 1
            mov r1, sr
            stmd r1, [0xd0]
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(500);
    Word sr = m.internalMemory().read(0xd0);
    EXPECT_TRUE(sr & 1);                 // Z
    EXPECT_EQ((sr >> 4) & 3, 0);         // stream id
}

TEST(MachineSpecials, AwpReadWrite)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            mov g1, awp
            winc
            mov g2, awp
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(500);
    EXPECT_EQ(m.readReg(0, reg::G2), m.readReg(0, reg::G1) + 1);
}

// ---- Baseline (standard processor) mode ----

TEST(MachineBaseline, HaltOnWaitMatchesStandardModel)
{
    // The baseline machine freezes during external waits; DISC with a
    // single IS flushes instead. Baseline must not be slower.
    auto build = [](bool baseline, ExternalMemoryDevice &ext) {
        MachineConfig cfg;
        cfg.baselineHaltOnWait = baseline;
        auto m = std::make_unique<Machine>(cfg);
        m->attachDevice(0x1000, 64, &ext);
        return m;
    };
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10
            ldi  r1, 30
        body:
            ld   r2, [g0]
            subi r1, r1, 1
            cmpi r1, 0
            bne  body
            halt
    )");

    ExternalMemoryDevice ext_a(64, 6), ext_b(64, 6);
    auto base = build(true, ext_a);
    auto dyn = build(false, ext_b);
    for (auto *mm : {base.get(), dyn.get()}) {
        mm->load(p);
        mm->startStream(0, p.symbol("main"));
        mm->run(30000);
        EXPECT_TRUE(mm->idle());
    }
    EXPECT_EQ(base->stats().externalReads, 30u);
    EXPECT_EQ(dyn->stats().externalReads, 30u);
    // Single-stream DISC pays flush+refetch; baseline just stalls.
    EXPECT_LE(base->stats().busyCycles, dyn->stats().busyCycles);
}

// ---- Trace ----

TEST(MachineTrace, RecordsInterleavedPipeline)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r0, 1
            ldi r1, 2
            ldi r2, 3
            ldi r3, 4
            halt
    )");
    m.load(p);
    PipeTrace trace(m.pipeDepth(), 64);
    m.setTrace(&trace);
    for (StreamId s = 0; s < 4; ++s)
        m.startStream(s, p.symbol("entry"));
    m.run(40);
    std::string out = trace.render();
    EXPECT_NE(out.find("IF"), std::string::npos);
    EXPECT_NE(out.find("WR"), std::string::npos);
    // Streams 1..4 all appear in the chart.
    for (char c : {'1', '2', '3', '4'})
        EXPECT_NE(out.find(c), std::string::npos) << c;
}

} // namespace
} // namespace disc
