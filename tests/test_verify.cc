/**
 * @file
 * The verification subsystem itself: the multi-stream workload
 * generator, the Machine-vs-Interp differential engine, the invariant
 * checker and the coverage map. These are the oracles the fuzzer
 * trusts, so they get their own unit bar.
 */

#include <gtest/gtest.h>

#include "arch/interrupts.hh"
#include "verify/differential.hh"
#include "verify/invariants.hh"

namespace disc
{
namespace
{

// ---- Generator ----

TEST(Generator, DeterministicForSeedAndOptions)
{
    GenOptions opts;
    MultiStreamProgram a = generateMultiStream(42, opts);
    MultiStreamProgram b = generateMultiStream(42, opts);
    EXPECT_EQ(a.program.code, b.program.code);
    EXPECT_EQ(a.entry, b.entry);
    MultiStreamProgram c = generateMultiStream(43, opts);
    EXPECT_NE(a.program.code, c.program.code);
}

TEST(Generator, RespectsStreamAndLengthClamps)
{
    GenOptions opts;
    opts.streams = 99;
    opts.length = 100000;
    MultiStreamProgram msp = generateMultiStream(7, opts);
    EXPECT_EQ(msp.streams, kNumStreams);
    EXPECT_LE(msp.opts.length, 220u);
    // FORK's 12-bit entry field must be able to reach every stream.
    for (StreamId s = 0; s < msp.streams; ++s)
        EXPECT_LT(msp.entry[s], 4096u);
}

TEST(Generator, VectorTablePrefixPresent)
{
    MultiStreamProgram msp = generateMultiStream(3, GenOptions{});
    ASSERT_GE(msp.program.code.size(), kVectorTableEnd);
    for (StreamId s = 0; s < msp.streams; ++s)
        EXPECT_GE(msp.entry[s], kVectorTableEnd);
}

// ---- Differential engine ----

class DiffSeed : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DiffSeed, MachineMatchesPerStreamReference)
{
    GenOptions opts;
    MultiStreamProgram msp = generateMultiStream(GetParam(), opts);
    DiffOutcome out = runDifferential(msp);
    EXPECT_TRUE(out.ok()) << out.summary();
}

TEST_P(DiffSeed, CleanUnderInvariantChecker)
{
    MultiStreamProgram msp =
        generateMultiStream(GetParam() * 1621 + 5, GenOptions{});
    MachineRig rig(msp);
    InvariantChecker chk(rig.machine());
    rig.machine().setObserver(&chk);
    rig.start();
    rig.machine().run(rig.cycleBudget());
    EXPECT_TRUE(rig.machine().idle());
    EXPECT_TRUE(chk.ok()) << chk.report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffSeed,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Differential, SingleStreamAndFeaturesOffStillVerify)
{
    GenOptions opts;
    opts.streams = 1;
    opts.useInterrupts = false;
    opts.useDevices = false;
    DiffOutcome out =
        runDifferential(generateMultiStream(11, opts));
    EXPECT_TRUE(out.ok()) << out.summary();
}

TEST(Differential, SlowDevicesDoNotChangeArchitecturalState)
{
    for (unsigned latency : {0u, 1u, 6u}) {
        GenOptions opts;
        opts.deviceLatency = latency;
        DiffOutcome out =
            runDifferential(generateMultiStream(17, opts));
        EXPECT_TRUE(out.ok()) << "latency " << latency << "\n"
                              << out.summary();
    }
}

// ---- Invariant checker ----

TEST(Invariants, SeededPriorityInversionIsCaught)
{
    // The injected defect vectors to the *lowest* eligible pending
    // level; the generator's multi-level bursts make that observable
    // and only the bit-7-highest priority invariant can see it (the
    // handlers are architecturally net-zero).
    MultiStreamProgram msp = generateMultiStream(1, GenOptions{});
    MachineRig rig(msp);
    rig.machine().interrupts().setDefectLowPriorityVector(true);
    InvariantChecker chk(rig.machine());
    rig.machine().setObserver(&chk);
    rig.start();
    rig.machine().run(rig.cycleBudget());
    EXPECT_FALSE(chk.ok());
    ASSERT_FALSE(chk.violations().empty());
    EXPECT_NE(chk.violations()[0].message.find("vectored to level"),
              std::string::npos)
        << chk.report();
}

TEST(Invariants, DefectCaughtAcrossManySeeds)
{
    unsigned caught = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        MultiStreamProgram msp =
            generateMultiStream(seed, GenOptions{});
        MachineRig rig(msp);
        rig.machine().interrupts().setDefectLowPriorityVector(true);
        InvariantChecker chk(rig.machine());
        rig.machine().setObserver(&chk);
        rig.start();
        rig.machine().run(rig.cycleBudget());
        caught += chk.ok() ? 0 : 1;
    }
    EXPECT_GE(caught, 6u);
}

TEST(Invariants, ViolationStorageIsBounded)
{
    MultiStreamProgram msp = generateMultiStream(2, GenOptions{});
    MachineRig rig(msp);
    rig.machine().interrupts().setDefectLowPriorityVector(true);
    InvariantChecker chk(rig.machine());
    rig.machine().setObserver(&chk);
    rig.start();
    rig.machine().run(rig.cycleBudget());
    EXPECT_LE(chk.violations().size(), 32u);
    EXPECT_GE(chk.totalViolations(), chk.violations().size());
}

// ---- Coverage map ----

TEST(Coverage, RecordsAndMerges)
{
    CoverageMap a, b;
    EXPECT_EQ(a.pointsHit(), 0u);
    a.record(Opcode::ADD, PipeEvent::Issue, 1);
    a.record(Opcode::ADD, PipeEvent::Issue, 1);
    a.record(Opcode::LD, PipeEvent::BusBusy, 3);
    EXPECT_EQ(a.pointsHit(), 2u);

    b.record(Opcode::ADD, PipeEvent::Issue, 1);
    b.record(Opcode::HALT, PipeEvent::Retire, 2);
    EXPECT_EQ(a.countNew(b), 1u);
    a.merge(b);
    EXPECT_EQ(a.pointsHit(), 3u);
    EXPECT_EQ(a.countNew(b), 0u);

    a.clear();
    EXPECT_EQ(a.pointsHit(), 0u);
}

TEST(Coverage, DifferentialRunsGrowCoverage)
{
    CoverageMap total;
    std::size_t last = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        MultiStreamProgram msp =
            generateMultiStream(seed, GenOptions{});
        MachineRig rig(msp);
        InvariantChecker chk(rig.machine());
        CoverageMap local;
        chk.setCoverage(&local);
        rig.machine().setObserver(&chk);
        rig.start();
        rig.machine().run(rig.cycleBudget());
        total.merge(local);
    }
    EXPECT_GT(total.pointsHit(), last);
    EXPECT_LE(total.pointsHit(), total.pointsTotal());
    // Multi-stream workloads must exercise multi-stream coverage
    // points, not just the single-stream column.
    EXPECT_GT(total.pointsHit(), 50u);
}

// ---- Observer overhead contract ----

TEST(Observer, DetachingRestoresBaseline)
{
    // The runtime flag is the observer pointer: with it null the
    // machine must behave identically (the perf bar is covered by
    // bench/perf_sim; here we check behavioural identity).
    MultiStreamProgram msp = generateMultiStream(9, GenOptions{});

    MachineRig plain(msp);
    plain.start();
    plain.machine().run(plain.cycleBudget());

    MachineRig observed(msp);
    InvariantChecker chk(observed.machine());
    observed.machine().setObserver(&chk);
    observed.start();
    observed.machine().run(observed.cycleBudget());
    EXPECT_TRUE(chk.ok()) << chk.report();

    EXPECT_EQ(plain.machine().stats().cycles,
              observed.machine().stats().cycles);
    EXPECT_EQ(plain.machine().stats().totalRetired,
              observed.machine().stats().totalRetired);
    for (StreamId s = 0; s < msp.streams; ++s) {
        EXPECT_EQ(plain.machine().pc(s), observed.machine().pc(s));
        EXPECT_EQ(plain.machine().window(s).awp(),
                  observed.machine().window(s).awp());
    }
}

} // namespace
} // namespace disc
