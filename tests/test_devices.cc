/**
 * @file
 * Tests for the UART and DMA peripheral models, standalone and
 * integrated with the machine (interrupt-driven echo, DMA offload).
 */

#include <gtest/gtest.h>

#include "arch/devices.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "stochastic/model.hh"

namespace disc
{
namespace
{

// ---- UART standalone ----

TEST(Uart, DeliversScriptOnCadence)
{
    UartDevice uart(10, 1);
    uart.scriptRx({100, 200, 300});
    unsigned delivered = 0;
    for (int c = 0; c < 35; ++c) {
        if (auto req = uart.onEvent(1))
            ADD_FAILURE() << "no interrupt configured";
        if (uart.read(2) & 1) {
            Word v = uart.read(0);
            EXPECT_EQ(v, 100 * (delivered + 1));
            ++delivered;
            EXPECT_EQ(uart.read(2) & 1, 0); // read clears ready
        }
    }
    EXPECT_EQ(delivered, 3u);
    EXPECT_EQ(uart.pendingRx(), 0u);
    EXPECT_EQ(uart.overruns(), 0u);
}

TEST(Uart, RxInterruptRequests)
{
    UartDevice uart(5, 1);
    uart.setRxInterrupt(2, 4);
    uart.scriptRx({7});
    unsigned ints = 0;
    for (int c = 0; c < 20; ++c) {
        if (auto req = uart.onEvent(1)) {
            EXPECT_EQ(req->stream, 2);
            EXPECT_EQ(req->bit, 4u);
            ++ints;
        }
    }
    EXPECT_EQ(ints, 1u);
}

TEST(Uart, OverrunWhenUnread)
{
    UartDevice uart(3, 1);
    uart.scriptRx({1, 2, 3});
    for (int c = 0; c < 12; ++c)
        uart.onEvent(1);
    EXPECT_EQ(uart.overruns(), 2u); // only the last word survives
    EXPECT_EQ(uart.read(0), 3);
}

TEST(Uart, RecordsTransmits)
{
    UartDevice uart(10, 1);
    uart.write(1, 0xaa);
    uart.write(1, 0xbb);
    ASSERT_EQ(uart.transmitted().size(), 2u);
    EXPECT_EQ(uart.transmitted()[0], 0xaa);
    EXPECT_EQ(uart.transmitted()[1], 0xbb);
}

// ---- DMA standalone ----

TEST(Dma, CopiesBlockAndInterrupts)
{
    ExternalMemoryDevice mem(128, 2);
    for (Addr a = 0; a < 8; ++a)
        mem.poke(a, static_cast<Word>(0x100 + a));
    DmaDevice dma(mem, 3);
    dma.setCompletionInterrupt(1, 5);

    dma.write(0, 0);   // src
    dma.write(1, 64);  // dst
    dma.write(2, 8);   // count: starts
    EXPECT_EQ(dma.read(3), 1); // busy

    unsigned ints = 0;
    for (int c = 0; c < 8 * 3 + 5; ++c) {
        if (auto req = dma.onEvent(1)) {
            EXPECT_EQ(req->stream, 1);
            EXPECT_EQ(req->bit, 5u);
            ++ints;
        }
    }
    EXPECT_EQ(ints, 1u);
    EXPECT_EQ(dma.read(3), 0);
    EXPECT_EQ(dma.transfersDone(), 1u);
    for (Addr a = 0; a < 8; ++a)
        EXPECT_EQ(mem.peek(64 + a), 0x100 + a);
}

TEST(Dma, IgnoresStartWhileBusy)
{
    ExternalMemoryDevice mem(64, 1);
    DmaDevice dma(mem, 2);
    dma.write(2, 4);
    dma.write(2, 10); // ignored: already busy
    unsigned ticks = 0;
    while (dma.read(3) == 1 && ticks < 100) {
        dma.onEvent(1);
        ++ticks;
    }
    EXPECT_EQ(ticks, 8u); // 4 words x 2 cycles
}

// ---- Machine integration ----

TEST(UartMachine, InterruptDrivenEcho)
{
    // Classic RTS demo: stream 1 sleeps until the UART receives a
    // word, echoes it (incremented) to TX, and goes back to sleep.
    // The background stream keeps computing throughout.
    Machine m;
    UartDevice uart(60, 2);
    uart.setRxInterrupt(1, 4);
    uart.scriptRx({10, 20, 30, 40, 50});
    m.attachDevice(0x2000, 4, &uart);

    Program p = assemble(R"(
        .org 12               ; vectorAddress(1, 4)
            jmp rx_isr
        .org 0x20
        background:
            ldmd r1, [0x30]
            addi r1, r1, 1
            stmd r1, [0x30]
            jmp background
        rx_isr:
            ld   r1, [g0]     ; read RX (g0 = uart base)
            addi r1, r1, 1
            st   r1, [g0+1]   ; echo to TX
            clri 4
            reti
    )");
    m.load(p);
    m.writeReg(0, reg::G0, 0x2000);
    m.startStream(0, p.symbol("background"));
    m.run(2000, false);

    ASSERT_EQ(uart.transmitted().size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(uart.transmitted()[i], 10 * (i + 1) + 1);
    EXPECT_EQ(uart.overruns(), 0u);
    EXPECT_GT(m.internalMemory().read(0x30), 100);
}

TEST(DmaMachine, OffloadsCopyWhileCpuComputes)
{
    // The CPU programs a DMA block copy, continues computing, and
    // takes a completion interrupt to verify the copy.
    Machine m;
    ExternalMemoryDevice mem(256, 3);
    for (Addr a = 0; a < 16; ++a)
        mem.poke(a, static_cast<Word>(5 * a + 1));
    DmaDevice dma(mem, 4);
    dma.setCompletionInterrupt(0, 3);
    m.attachDevice(0x1000, 256, &mem);
    m.attachDevice(0x3000, 8, &dma);

    Program p = assemble(R"(
        .org 3                ; vectorAddress(0, 3)
            jmp done_isr
        .org 0x20
        main:
            ldi  g1, 0x00
            ldih g1, 0x30     ; DMA register base
            ldi  r1, 0
            st   r1, [g1]     ; src
            ldi  r1, 128
            st   r1, [g1+1]   ; dst
            ldi  r1, 16
            st   r1, [g1+2]   ; count -> go
            ldi  r2, 0
        compute:
            addi r2, r2, 1
            stmd r2, [0x40]
            jmp  compute
        done_isr:
            ldi  r3, 1
            stmd r3, [0x41]
            clri 3
            ; stop the experiment: silence the background loop too
            clri 0
            reti
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(5000, false);

    EXPECT_EQ(m.internalMemory().read(0x41), 1);   // completion seen
    EXPECT_GT(m.internalMemory().read(0x40), 5);   // CPU kept working
    for (Addr a = 0; a < 16; ++a)
        EXPECT_EQ(mem.peek(128 + a), 5 * a + 1);
    EXPECT_EQ(dma.transfersDone(), 1u);
}

// ---- Stochastic shares plumbing ----

TEST(StochasticShares, CustomPartitionSkewsStreams)
{
    StochasticConfig cfg;
    cfg.warmup = 1000;
    cfg.horizon = 50000;
    cfg.shares = {13, 1, 1, 1};
    std::vector<std::unique_ptr<WorkSource>> sources;
    for (unsigned s = 0; s < 4; ++s) {
        sources.push_back(std::make_unique<LoadProcess>(
            LoadSpec{"flat", 0, 0, 0, 0, 0, 0, 0.0}, 100 + s));
    }
    StochasticModel model(cfg, std::move(sources));
    RunTotals t = model.run();
    double share0 = static_cast<double>(t.perStreamExecuted[0]) /
                    static_cast<double>(t.executed);
    EXPECT_NEAR(share0, 13.0 / 16.0, 0.02);
}

} // namespace
} // namespace disc
