/**
 * @file
 * Corner cases of the asynchronous bus interface as seen from
 * programs: window auto-motion on waited loads, store-data capture
 * across retries, destination-register resolution, and the Ps helper
 * on machine statistics.
 */

#include <gtest/gtest.h>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace disc
{
namespace
{

class ExternalAccessTest : public ::testing::Test
{
  protected:
    Machine m;
    ExternalMemoryDevice slow{64, 7};
    ExternalMemoryDevice fast{64, 0};

    void
    SetUp() override
    {
        m.attachDevice(0x1000, 64, &slow);
        m.attachDevice(0x2000, 64, &fast);
    }

    void
    finish(const Program &p, const char *entry)
    {
        m.load(p);
        m.startStream(0, p.symbol(entry));
        m.run(100000);
        ASSERT_TRUE(m.idle());
    }
};

TEST_F(ExternalAccessTest, WaitedLoadWithWindowIncrement)
{
    // "ld+ r0, [g0]" must load into the *pre-increment* r0 and only
    // then slide the window: after the inc, the value shows at r1.
    slow.poke(0, 0x1234);
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10
            ld+  r0, [g0]
            stmd r1, [0x40]   ; old r0 is r1 after the increment
            mov  r2, awp
            stmd r2, [0x41]
            halt
    )");
    finish(p, "main");
    EXPECT_EQ(m.internalMemory().read(0x40), 0x1234);
    // AWP moved exactly one past reset.
    EXPECT_EQ(m.internalMemory().read(0x41),
              m.window(0).minAwp() + 1);
}

TEST_F(ExternalAccessTest, ZeroLatencyLoadWithWindowIncrement)
{
    fast.poke(3, 0x4321);
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x20
            ld+  r0, [g0+3]
            stmd r1, [0x40]
            halt
    )");
    finish(p, "main");
    EXPECT_EQ(m.internalMemory().read(0x40), 0x4321);
}

TEST_F(ExternalAccessTest, LoadIntoGlobalVisibleToOtherStreams)
{
    slow.poke(9, 777);
    Program p = assemble(R"(
        .org 0x20
        loader:
            ldi  g0, 0x00
            ldih g0, 0x10
            ld   g1, [g0+9]
            ldi  r1, 1
            stmd r1, [0x50]
            halt
        watcher:
        spin:
            ldmd r1, [0x50]
            cmpi r1, 1
            bne  spin
            stmd g1, [0x51]
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("loader"));
    m.startStream(1, p.symbol("watcher"));
    m.run(100000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x51), 777);
}

TEST_F(ExternalAccessTest, StoreValueSurvivesBusyRetry)
{
    // Stream 1 keeps the bus hot; stream 2's store gets rejected at
    // least once but must still deliver the correct value.
    Program p = assemble(R"(
        .org 0x20
        hog:
            ldi  g0, 0x00
            ldih g0, 0x10
            ldi  r1, 12
        h_loop:
            ld   r2, [g0]
            subi r1, r1, 1
            cmpi r1, 0
            bne  h_loop
            halt
        storer:
            ldi  r1, 0xab
            st   r1, [g0+5]
            ldi  r1, 0xcd     ; clobber AFTER the store retires
            st   r1, [g0+6]
            halt
    )");
    m.load(p);
    m.writeReg(0, reg::G0, 0x1000);
    m.startStream(0, p.symbol("hog"));
    m.startStream(1, p.symbol("storer"));
    m.run(100000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(slow.peek(5), 0xab);
    EXPECT_EQ(slow.peek(6), 0xcd);
    EXPECT_GT(m.stats().busBusyRejections, 0u);
}

TEST_F(ExternalAccessTest, BackToBackLoadsSerializeOnBus)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10
            ld   r1, [g0]
            ld   r2, [g0+1]
            ld   r3, [g0+2]
            halt
    )");
    slow.poke(0, 1);
    slow.poke(1, 2);
    slow.poke(2, 3);
    finish(p, "main");
    EXPECT_EQ(m.stats().externalReads, 3u);
    // Three 7-cycle accesses cannot overlap on one bus.
    EXPECT_GE(m.abi().busyCycles(), 21u);
    EXPECT_EQ(m.readReg(0, 3), 3);
}

TEST_F(ExternalAccessTest, MixedInternalExternalOrdering)
{
    // A waited load followed by dependent internal ops: the interlock
    // plus wait state must keep program order.
    slow.poke(0, 40);
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10
            ld   r1, [g0]
            addi r1, r1, 2    ; depends on the waited load
            stmd r1, [0x60]
            halt
    )");
    finish(p, "main");
    EXPECT_EQ(m.internalMemory().read(0x60), 42);
}

TEST_F(ExternalAccessTest, StandardPsHelperConsistent)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10
            ldi  r7, 10
        loop:
            ld   r1, [g0]
            subi r7, r7, 1
            cmpi r7, 0
            bne  loop
            halt
    )");
    finish(p, "main");
    const MachineStats &st = m.stats();
    double ps = st.standardPs(m.abi().busyCycles(), m.pipeDepth());
    EXPECT_GT(ps, 0.0);
    EXPECT_LT(ps, 1.0);
    // Single-stream DISC with flush-on-wait must not beat the
    // standard model here.
    EXPECT_LE(st.utilization(), ps + 0.05);
}

TEST_F(ExternalAccessTest, FourStreamsShareOneBusFairly)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi  r7, 8
        loop:
            ld   r1, [g0]
            subi r7, r7, 1
            cmpi r7, 0
            bne  loop
            halt
    )");
    m.load(p);
    m.writeReg(0, reg::G0, 0x1000);
    for (StreamId s = 0; s < 4; ++s)
        m.startStream(s, p.symbol("entry"));
    m.run(100000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.stats().externalReads, 32u);
    // No stream starves: each retired its whole program.
    for (StreamId s = 0; s < 4; ++s)
        EXPECT_GT(m.stats().retired[s], 30u);
}

} // namespace
} // namespace disc
