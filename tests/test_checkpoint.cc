/**
 * @file
 * Checkpoint/restore tests: the serialization substrate, and full
 * machine determinism across save/restore — a restored machine must
 * continue exactly like the original, mid-pipeline, mid-bus-access
 * and mid-interrupt included.
 */

#include <gtest/gtest.h>

#include "arch/devices.hh"
#include "arch/interrupts.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "verify/differential.hh"
#include "verify/generator.hh"

namespace disc
{
namespace
{

// ---- Serializer primitives ----

TEST(Serialize, RoundTripScalars)
{
    Serializer out;
    out.put<std::uint8_t>(0xab);
    out.put<std::uint16_t>(0x1234);
    out.put<std::uint32_t>(0xdeadbeef);
    out.put<std::uint64_t>(0x0123456789abcdefULL);
    out.put<std::int32_t>(-42);
    out.putBool(true);
    out.putBool(false);

    Deserializer in(out.bytes());
    EXPECT_EQ(in.get<std::uint8_t>(), 0xab);
    EXPECT_EQ(in.get<std::uint16_t>(), 0x1234);
    EXPECT_EQ(in.get<std::uint32_t>(), 0xdeadbeefu);
    EXPECT_EQ(in.get<std::uint64_t>(), 0x0123456789abcdefULL);
    EXPECT_EQ(in.get<std::int32_t>(), -42);
    EXPECT_TRUE(in.getBool());
    EXPECT_FALSE(in.getBool());
    EXPECT_TRUE(in.exhausted());
}

TEST(Serialize, RoundTripVectors)
{
    Serializer out;
    out.putVector(std::vector<Word>{1, 2, 0xffff});
    out.putVector(std::vector<std::uint8_t>{});
    Deserializer in(out.bytes());
    auto v = in.getVector<Word>();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2], 0xffff);
    EXPECT_TRUE(in.getVector<std::uint8_t>().empty());
}

TEST(Serialize, TruncationDiagnosed)
{
    Serializer out;
    out.put<std::uint32_t>(7);
    std::vector<std::uint8_t> bytes = out.bytes();
    bytes.pop_back();
    Deserializer in(bytes);
    EXPECT_THROW(in.get<std::uint32_t>(), FatalError);
}

// ---- Machine checkpoints ----

/** Build the reference workload: timers, bus traffic, interrupts. */
struct Rig
{
    Machine machine;
    ExternalMemoryDevice ext{64, 7};
    TimerDevice timer{97, 1, 3};
    Program prog;

    Rig()
    {
        machine.attachDevice(0x1000, 64, &ext);
        machine.attachDevice(0x3000, 4, &timer);
        prog = assemble(R"(
            .org 11             ; vectorAddress(1, 3)
                jmp tick_isr
            .org 0x20
            main:
                ldi  g0, 0x00
                ldih g0, 0x10
            loop:
                ld   r1, [g0]
                addi r1, r1, 1
                st   r1, [g0]
                ldmd r2, [0x40]
                addi r2, r2, 1
                stmd r2, [0x40]
                jmp  loop
            tick_isr:
                ldmd r1, [0x41]
                addi r1, r1, 1
                stmd r1, [0x41]
                clri 3
                reti
        )");
        machine.load(prog);
        machine.startStream(0, prog.symbol("main"));
    }
};

/** Fingerprint of all observable machine state. */
std::string
fingerprint(const Machine &m, const ExternalMemoryDevice &ext)
{
    std::string fp;
    const MachineStats &st = m.stats();
    fp += strprintf("c=%llu busy=%llu ret=%llu redir=%llu waits=%llu ",
                    (unsigned long long)st.cycles,
                    (unsigned long long)st.busyCycles,
                    (unsigned long long)st.totalRetired,
                    (unsigned long long)st.redirects,
                    (unsigned long long)st.squashedWait);
    for (StreamId s = 0; s < kNumStreams; ++s) {
        fp += strprintf("s%u:pc=%04x awp=%u ir=%02x ", s, m.pc(s),
                        m.window(s).awp(), m.interrupts().ir(s));
    }
    for (Addr a = 0x40; a < 0x44; ++a)
        fp += strprintf("m%x=%u ", a, m.internalMemory().read(a));
    fp += strprintf("ext0=%u", ext.peek(0));
    return fp;
}

TEST(Checkpoint, RestoredMachineContinuesIdentically)
{
    // Run A: 1000 + 1000 cycles straight through.
    Rig a;
    a.machine.run(1000, false);
    std::vector<std::uint8_t> snap = a.machine.saveState();
    a.machine.run(1000, false);
    std::string want = fingerprint(a.machine, a.ext);

    // Run B: fresh rig, restore the snapshot, run the second half.
    Rig b;
    b.machine.restoreState(snap);
    EXPECT_EQ(b.machine.stats().cycles, 1000u);
    b.machine.run(1000, false);
    EXPECT_EQ(fingerprint(b.machine, b.ext), want);
}

class CheckpointAtCycle : public ::testing::TestWithParam<Cycle>
{};

TEST_P(CheckpointAtCycle, AnySplitPointIsExact)
{
    // Property: for any split point — mid-access, mid-vector,
    // mid-flush — restore + continue equals straight-through.
    const Cycle split = GetParam();
    const Cycle total = 700;

    Rig a;
    a.machine.run(total, false);
    std::string want = fingerprint(a.machine, a.ext);

    Rig b;
    b.machine.run(split, false);
    auto snap = b.machine.saveState();

    Rig c;
    c.machine.restoreState(snap);
    c.machine.run(total - split, false);
    EXPECT_EQ(fingerprint(c.machine, c.ext), want)
        << "split at " << split;
}

INSTANTIATE_TEST_SUITE_P(Splits, CheckpointAtCycle,
                         ::testing::Values(1u, 13u, 97u, 98u, 255u,
                                           500u, 699u));

TEST(Checkpoint, MismatchesDiagnosed)
{
    Rig a;
    a.machine.run(100, false);
    auto snap = a.machine.saveState();

    // Wrong pipe depth.
    MachineConfig deep;
    deep.pipeDepth = 6;
    Machine other(deep);
    EXPECT_THROW(other.restoreState(snap), FatalError);

    // Wrong device set.
    Machine bare;
    EXPECT_THROW(bare.restoreState(snap), FatalError);

    // Corrupted magic.
    auto bad = snap;
    bad[0] ^= 0xff;
    Rig b;
    EXPECT_THROW(b.machine.restoreState(bad), FatalError);

    // Truncation.
    auto trunc = snap;
    trunc.resize(trunc.size() / 2);
    Rig c;
    EXPECT_THROW(c.machine.restoreState(trunc), FatalError);
}

TEST(Checkpoint, UartAndDmaSurvive)
{
    ExternalMemoryDevice ext_a(64, 2), ext_b(64, 2);
    auto build = [](ExternalMemoryDevice &ext, UartDevice &u,
                    DmaDevice &d, Machine &m, const Program &p) {
        m.attachDevice(0x1000, 64, &ext);
        m.attachDevice(0x2000, 4, &u);
        m.attachDevice(0x3000, 8, &d);
        m.load(p);
        m.startStream(0, p.symbol("main"));
    };
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x30
            ldi  r1, 0
            st   r1, [g0]      ; dma src
            ldi  r1, 32
            st   r1, [g0+1]    ; dma dst
            ldi  r1, 8
            st   r1, [g0+2]    ; start
        spin:
            jmp spin
    )");

    UartDevice uart_a(40, 1), uart_b(40, 1);
    uart_a.scriptRx({5, 6, 7, 8, 9});
    uart_b.scriptRx({5, 6, 7, 8, 9});
    DmaDevice dma_a(ext_a, 9), dma_b(ext_b, 9);
    for (Addr i = 0; i < 8; ++i) {
        ext_a.poke(i, static_cast<Word>(i + 100));
        ext_b.poke(i, static_cast<Word>(i + 100));
    }

    Machine a;
    build(ext_a, uart_a, dma_a, a, p);
    a.run(60, false);
    auto snap = a.saveState();
    a.run(200, false);

    Machine b;
    build(ext_b, uart_b, dma_b, b, p);
    b.restoreState(snap);
    b.run(200, false);

    EXPECT_EQ(uart_b.pendingRx(), uart_a.pendingRx());
    EXPECT_EQ(dma_b.transfersDone(), dma_a.transfersDone());
    for (Addr i = 0; i < 8; ++i)
        EXPECT_EQ(ext_b.peek(32 + i), ext_a.peek(32 + i)) << i;
}

// ---- Fuzz-generated multi-stream workloads ----

/** Observable state of a rig running a generated workload. */
std::string
fuzzFingerprint(MachineRig &rig)
{
    const Machine &m = rig.machine();
    const MultiStreamProgram &msp = rig.workload();
    std::string fp;
    fp += strprintf("c=%llu ret=%llu ",
                    (unsigned long long)m.stats().cycles,
                    (unsigned long long)m.stats().totalRetired);
    for (StreamId s = 0; s < kNumStreams; ++s) {
        fp += strprintf("s%u:pc=%04x awp=%u ir=%02x d=%u w=%d ", s,
                        m.pc(s), m.window(s).awp(),
                        m.interrupts().ir(s),
                        m.interrupts().serviceDepth(s),
                        m.isWaiting(s) ? 1 : 0);
        for (unsigned r = 0; r < kNumWindowRegs; ++r)
            fp += strprintf("%04x ", m.readReg(s, r));
    }
    for (Addr a = 0; a < msp.streams * kFuzzScratchWords; ++a)
        fp += strprintf("%04x", m.internalMemory().read(a));
    for (StreamId s = 0; s < msp.streams; ++s) {
        if (ExternalMemoryDevice *dev = rig.device(s))
            for (Addr w = 0; w < kFuzzDeviceWords; ++w)
                fp += strprintf("%04x", dev->peek(w));
    }
    return fp;
}

/**
 * Step @p rig until @p stop(machine) holds (or the budget runs out;
 * returns whether the condition was reached).
 */
template <typename Pred>
bool
runUntil(MachineRig &rig, Pred stop)
{
    for (Cycle c = 0; c < rig.cycleBudget(); ++c) {
        if (rig.machine().idle())
            return false;
        rig.machine().step();
        if (stop(rig.machine()))
            return true;
    }
    return false;
}

/**
 * Split a generated workload's run at the cycle where @p stop first
 * holds and prove restore-and-continue equals straight-through.
 */
template <typename Pred>
void
checkSplitAt(std::uint64_t seed, Pred stop, const char *what)
{
    GenOptions opts;
    MultiStreamProgram msp = generateMultiStream(seed, opts);

    // Straight through.
    MachineRig a(msp);
    a.start();
    a.machine().run(a.cycleBudget());
    ASSERT_TRUE(a.machine().idle()) << what << " seed " << seed;
    std::string want = fuzzFingerprint(a);

    // Run to the split condition, snapshot there.
    MachineRig b(msp);
    b.start();
    if (!runUntil(b, stop))
        GTEST_SKIP() << what << ": condition not reached on seed "
                     << seed;
    std::vector<std::uint8_t> snap = b.machine().saveState();

    // Fresh rig, restore mid-flight, run to completion.
    MachineRig c(msp);
    c.machine().restoreState(snap);
    c.machine().run(c.cycleBudget());
    ASSERT_TRUE(c.machine().idle());
    EXPECT_EQ(fuzzFingerprint(c), want) << what << " seed " << seed;
}

class FuzzCheckpointSeed
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzCheckpointSeed, RoundTripMidAbiWait)
{
    // Snapshot taken while some stream is parked on an asynchronous
    // bus access (the ABI wait state).
    checkSplitAt(GetParam(),
                 [](const Machine &m) {
                     for (StreamId s = 0; s < kNumStreams; ++s)
                         if (m.isWaiting(s))
                             return true;
                     return false;
                 },
                 "mid-ABI-wait");
}

TEST_P(FuzzCheckpointSeed, RoundTripMidInterrupt)
{
    // Snapshot taken while some stream is inside an interrupt service
    // (vector frame live, running level elevated).
    checkSplitAt(GetParam(),
                 [](const Machine &m) {
                     for (StreamId s = 0; s < kNumStreams; ++s)
                         if (m.interrupts().serviceDepth(s) > 0)
                             return true;
                     return false;
                 },
                 "mid-interrupt");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCheckpointSeed,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(FuzzCheckpoint, DeepSplitStillDifferentiallyCorrect)
{
    // After a restore the machine must not only continue identically,
    // it must still pass the per-stream differential against the
    // sequential golden model.
    GenOptions opts;
    MultiStreamProgram msp = generateMultiStream(23, opts);

    MachineRig b(msp);
    b.start();
    b.machine().run(200);
    std::vector<std::uint8_t> snap = b.machine().saveState();

    MachineRig c(msp);
    c.machine().restoreState(snap);
    c.machine().run(c.cycleBudget());
    ASSERT_TRUE(c.machine().idle());
    std::vector<std::string> diffs = compareWithReference(c);
    EXPECT_TRUE(diffs.empty())
        << (diffs.empty() ? "" : diffs.front());
}

} // namespace
} // namespace disc
