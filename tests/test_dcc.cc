/**
 * @file
 * Tests for DCC, the DISC C-like compiler: programs are compiled to
 * assembly, assembled, executed on the cycle-accurate machine, and
 * checked for architectural results. Covers expressions, control
 * flow, the stack-window calling convention (including recursion and
 * deep frames), builtins, and error diagnostics.
 */

#include <gtest/gtest.h>

#include "arch/devices.hh"
#include "common/logging.hh"
#include "dcc/dcc.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace disc
{
namespace
{

/** Compile, run to idle, and return g0 of stream 0 (main's result). */
Word
runDcc(const std::string &source, Machine &m, Cycle budget = 200000)
{
    std::string asm_text = dcc::compile(source);
    Program p = assemble(asm_text);
    m.load(p);
    m.startStream(0, p.symbol("__start"));
    m.run(budget);
    EXPECT_TRUE(m.idle()) << "program did not halt:\n" << asm_text;
    EXPECT_EQ(m.stats().stackOverflows, 0u) << asm_text;
    return m.readReg(0, reg::G0);
}

Word
runDcc(const std::string &source)
{
    Machine m;
    return runDcc(source, m);
}

TEST(Dcc, ReturnConstant)
{
    EXPECT_EQ(runDcc("fn main() { return 42; }"), 42);
}

TEST(Dcc, Arithmetic)
{
    EXPECT_EQ(runDcc("fn main() { return 2 + 3 * 4; }"), 14);
    EXPECT_EQ(runDcc("fn main() { return (2 + 3) * 4; }"), 20);
    EXPECT_EQ(runDcc("fn main() { return 10 - 2 - 3; }"), 5);
    EXPECT_EQ(runDcc("fn main() { return -5 + 8; }"), 3);
    EXPECT_EQ(runDcc("fn main() { return 0xff & 0x0f; }"), 0x0f);
    EXPECT_EQ(runDcc("fn main() { return 1 | 6 ^ 2; }"), 5);
    EXPECT_EQ(runDcc("fn main() { return 3 << 4; }"), 48);
    EXPECT_EQ(runDcc("fn main() { return 256 >> 3; }"), 32);
}

TEST(Dcc, LargeConstants)
{
    EXPECT_EQ(runDcc("fn main() { return 0x1234; }"), 0x1234);
    EXPECT_EQ(runDcc("fn main() { return 40000; }"), 40000);
    EXPECT_EQ(runDcc("fn main() { return -32768; }"), 0x8000);
}

TEST(Dcc, VariablesAndAssignment)
{
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var a = 5;
            var b = 7;
            a = a + b;
            b = a * 2;
            return b - a;
        }
    )"),
              12);
}

TEST(Dcc, Comparisons)
{
    EXPECT_EQ(runDcc("fn main() { return 3 < 5; }"), 1);
    EXPECT_EQ(runDcc("fn main() { return 5 < 3; }"), 0);
    EXPECT_EQ(runDcc("fn main() { return 5 <= 5; }"), 1);
    EXPECT_EQ(runDcc("fn main() { return 5 > 5; }"), 0);
    EXPECT_EQ(runDcc("fn main() { return 6 >= 5; }"), 1);
    EXPECT_EQ(runDcc("fn main() { return 4 == 4; }"), 1);
    EXPECT_EQ(runDcc("fn main() { return 4 != 4; }"), 0);
    // Signed semantics.
    EXPECT_EQ(runDcc("fn main() { return -1 < 1; }"), 1);
    EXPECT_EQ(runDcc("fn main() { return -32768 < 32767; }"), 1);
}

TEST(Dcc, LogicalOperators)
{
    EXPECT_EQ(runDcc("fn main() { return 1 && 1; }"), 1);
    EXPECT_EQ(runDcc("fn main() { return 1 && 0; }"), 0);
    EXPECT_EQ(runDcc("fn main() { return 0 || 3; }"), 1);
    EXPECT_EQ(runDcc("fn main() { return 0 || 0; }"), 0);
    EXPECT_EQ(runDcc("fn main() { return !0; }"), 1);
    EXPECT_EQ(runDcc("fn main() { return !7; }"), 0);
    EXPECT_EQ(runDcc("fn main() { return !!5; }"), 1);
    // Precedence: || lowest, && above it, comparisons bind tighter.
    EXPECT_EQ(runDcc("fn main() { return 1 < 2 && 3 < 4; }"), 1);
    EXPECT_EQ(runDcc("fn main() { return 0 && 0 || 1; }"), 1);
}

TEST(Dcc, ShortCircuitSkipsSideEffects)
{
    Machine m;
    Word r = runDcc(R"(
        fn bump() {
            store(0x50, load(0x50) + 1);
            return 1;
        }
        fn main() {
            var x = 0 && bump();   // bump must NOT run
            var y = 1 || bump();   // bump must NOT run
            var z = 1 && bump();   // bump runs once
            return x + y + z;
        }
    )",
                    m);
    EXPECT_EQ(r, 2);
    EXPECT_EQ(m.internalMemory().read(0x50), 1);
}

TEST(Dcc, LogicalInConditions)
{
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var n = 0;
            var i = 0;
            while (i < 20 && n < 12) {
                n = n + 3;
                i = i + 1;
            }
            if (i == 4 && n == 12) { return 99; }
            return 0;
        }
    )"),
              99);
}

TEST(Dcc, IfElse)
{
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var x = 10;
            if (x > 5) { return 1; } else { return 2; }
        }
    )"),
              1);
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var x = 3;
            if (x > 5) { return 1; } else { return 2; }
        }
    )"),
              2);
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var r = 0;
            if (1) r = 7;
            if (0) r = 9;
            return r;
        }
    )"),
              7);
}

TEST(Dcc, WhileLoop)
{
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var i = 1;
            var sum = 0;
            while (i <= 100) {
                sum = sum + i;
                i = i + 1;
            }
            return sum;
        }
    )"),
              5050);
}

TEST(Dcc, FunctionsAndArguments)
{
    EXPECT_EQ(runDcc(R"(
        fn add3(a, b, c) { return a + b + c; }
        fn main() { return add3(1, 2, 3); }
    )"),
              6);
    EXPECT_EQ(runDcc(R"(
        fn max(a, b) {
            if (a > b) { return a; }
            return b;
        }
        fn main() { return max(max(3, 9), max(7, 2)); }
    )"),
              9);
}

TEST(Dcc, NestedCallsInArguments)
{
    EXPECT_EQ(runDcc(R"(
        fn twice(x) { return x * 2; }
        fn add(a, b) { return a + b; }
        fn main() { return add(twice(3), twice(add(1, 1))); }
    )"),
              10);
}

TEST(Dcc, RecursionFactorial)
{
    EXPECT_EQ(runDcc(R"(
        fn fact(n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        fn main() { return fact(7); }
    )"),
              5040);
}

TEST(Dcc, RecursionFibonacci)
{
    EXPECT_EQ(runDcc(R"(
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(12); }
    )"),
              144);
}

TEST(Dcc, DeepFramesUseAwpFallback)
{
    // Ten locals force variable access past the eight window names;
    // the compiler must fall back to AWP arithmetic.
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var a = 1; var b = 2; var c = 3; var d = 4; var e = 5;
            var f = 6; var g = 7; var h = 8; var i = 9; var j = 10;
            a = a + j;     // a is 9 slots deep here
            return a + b + c + d + e + f + g + h + i + j;
        }
    )"),
              65);
}

TEST(Dcc, BlockScoping)
{
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var x = 1;
            {
                var y = 10;
                x = x + y;
            }
            {
                var z = 100;
                x = x + z;
            }
            return x;
        }
    )"),
              111);
}

TEST(Dcc, LoopLocalBlockVariable)
{
    // A var inside the loop's block is reclaimed every iteration.
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var i = 0;
            var acc = 0;
            while (i < 50) {
                var t = i * 2;
                acc = acc + t;
                i = i + 1;
            }
            return acc;
        }
    )"),
              2450);
}

TEST(Dcc, InternalMemoryBuiltins)
{
    Machine m;
    Word r = runDcc(R"(
        fn main() {
            store(0x80, 1234);
            store(0x81, load(0x80) + 1);
            return load(0x81);
        }
    )",
                    m);
    EXPECT_EQ(r, 1235);
    EXPECT_EQ(m.internalMemory().read(0x80), 1234);
    EXPECT_EQ(m.internalMemory().read(0x81), 1235);
}

TEST(Dcc, ExternalBusBuiltins)
{
    Machine m;
    ExternalMemoryDevice dev(64, 5);
    dev.poke(2, 50);
    m.attachDevice(0x1000, 64, &dev);
    Word r = runDcc(R"(
        fn main() {
            var base = 0x1000;
            xstore(base + 3, xload(base + 2) * 2);
            return xload(base + 3);
        }
    )",
                    m);
    EXPECT_EQ(r, 100);
    EXPECT_EQ(dev.peek(3), 100);
}

TEST(Dcc, GcdProgram)
{
    EXPECT_EQ(runDcc(R"(
        fn gcd(a, b) {
            while (b != 0) {
                var t = b;
                // a mod b by repeated subtraction
                while (a >= b) { a = a - b; }
                b = a;
                a = t;
            }
            return a;
        }
        fn main() { return gcd(462, 1071); }
    )"),
              21);
}

TEST(Dcc, CollatzSteps)
{
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var n = 27;
            var steps = 0;
            while (n != 1) {
                if (n & 1) {
                    n = 3 * n + 1;
                } else {
                    n = n >> 1;
                }
                steps = steps + 1;
            }
            return steps;
        }
    )"),
              111);
}

TEST(Dcc, ImplicitReturnZero)
{
    EXPECT_EQ(runDcc("fn main() { var x = 9; x = x + 1; }"), 0);
}

TEST(Dcc, HaltBuiltin)
{
    Machine m;
    std::string asm_text = dcc::compile(R"(
        fn main() {
            store(0x70, 5);
            halt();
            store(0x70, 9);  // unreachable
            return 0;
        }
    )");
    Program p = assemble(asm_text);
    m.load(p);
    m.startStream(0, p.symbol("__start"));
    m.run(10000);
    EXPECT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x70), 5);
}

TEST(Dcc, SpawnRunsWorkerOnAnotherStream)
{
    Machine m;
    Word r = runDcc(R"(
        fn worker() {
            store(0x40, 123);
            store(0x41, 1);
            return 0;
        }
        fn main() {
            spawn(1, worker);
            while (load(0x41) == 0) { }
            return load(0x40);
        }
    )",
                    m);
    EXPECT_EQ(r, 123);
    EXPECT_GT(m.stats().retired[1], 0u);
}

TEST(Dcc, SpawnedPipelineOfStreams)
{
    // main spawns two workers that hand off through shared memory.
    Machine m;
    Word r = runDcc(R"(
        fn doubler() {
            while (load(0x51) == 0) { }
            store(0x52, load(0x50) * 2);
            store(0x53, 1);
            return 0;
        }
        fn producer() {
            store(0x50, 21);
            store(0x51, 1);
            return 0;
        }
        fn main() {
            spawn(2, doubler);
            spawn(1, producer);
            while (load(0x53) == 0) { }
            return load(0x52);
        }
    )",
                    m);
    EXPECT_EQ(r, 42);
}

TEST(Dcc, ScheduleProgramsPartition)
{
    Machine m;
    runDcc(R"(
        fn main() {
            schedule(0, 1);
            schedule(1, 1);
            schedule(2, 3);
            return 0;
        }
    )",
           m);
    EXPECT_EQ(m.scheduler().slot(0), 1);
    EXPECT_EQ(m.scheduler().slot(1), 1);
    EXPECT_EQ(m.scheduler().slot(2), 3);
}

TEST(Dcc, SignalSetsRequestBit)
{
    // The signalled stream becomes active (vectoring into an empty
    // table slot), so the machine does not go idle; check the IR
    // directly after a bounded run.
    Machine m;
    Program p = assemble(dcc::compile(R"(
        fn main() {
            signal(3, 2);
            return 0;
        }
    )"));
    m.load(p);
    m.startStream(0, p.symbol("__start"));
    m.run(200, false);
    EXPECT_TRUE(m.interrupts().ir(3) & 0x04);
    EXPECT_TRUE(m.interrupts().isActive(3));
}

TEST(DccErrors, SpawnValidation)
{
    EXPECT_THROW(dcc::compile(R"(
        fn w(a) { return a; }
        fn main() { spawn(1, w); return 0; }
    )"),
                 FatalError);
    EXPECT_THROW(dcc::compile(R"(
        fn main() { spawn(9, main); return 0; }
    )"),
                 FatalError);
    EXPECT_THROW(dcc::compile(R"(
        fn main() { spawn(1, nothere); return 0; }
    )"),
                 FatalError);
}

TEST(Dcc, DeepRecursionTrapsStackOverflow)
{
    // ~200 frames x 2 words exceed the 120-word headroom of a stream's
    // stack region: the machine must raise the overflow interrupt
    // rather than silently corrupt memory.
    std::string asm_text = dcc::compile(R"(
        fn down(n) {
            if (n == 0) { return 0; }
            return down(n - 1);
        }
        fn main() { return down(200); }
    )");
    Program p = assemble(asm_text);
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("__start"));
    m.run(300000, false);
    EXPECT_GT(m.stats().stackOverflows, 0u);
    EXPECT_TRUE(m.interrupts().ir(0) & (1u << kStackOverflowBit));
}

// ---- Diagnostics ----

TEST(DccErrors, UndefinedVariable)
{
    EXPECT_THROW(dcc::compile("fn main() { return x; }"), FatalError);
    EXPECT_THROW(dcc::compile("fn main() { x = 1; }"), FatalError);
}

TEST(DccErrors, UndefinedFunction)
{
    EXPECT_THROW(dcc::compile("fn main() { return f(1); }"),
                 FatalError);
}

TEST(DccErrors, ArityMismatch)
{
    EXPECT_THROW(dcc::compile(R"(
        fn f(a, b) { return a; }
        fn main() { return f(1); }
    )"),
                 FatalError);
}

TEST(DccErrors, MissingMain)
{
    EXPECT_THROW(dcc::compile("fn helper() { return 1; }"),
                 FatalError);
}

TEST(DccErrors, DuplicateFunction)
{
    EXPECT_THROW(dcc::compile(R"(
        fn main() { return 1; }
        fn main() { return 2; }
    )"),
                 FatalError);
}

TEST(DccErrors, DuplicateVariableInScope)
{
    EXPECT_THROW(dcc::compile(R"(
        fn main() { var a = 1; var a = 2; return a; }
    )"),
                 FatalError);
}

TEST(DccErrors, ShadowingInInnerBlockAllowed)
{
    EXPECT_EQ(runDcc(R"(
        fn main() {
            var a = 1;
            {
                var a = 50;
                a = a + 1;
            }
            return a;
        }
    )"),
              1);
}

TEST(DccErrors, TooManyParameters)
{
    EXPECT_THROW(
        dcc::compile("fn f(a, b, c, d, e) { return 0; }\n"
                     "fn main() { return 0; }"),
        FatalError);
}

TEST(DccErrors, VarAsLoopBodyRejected)
{
    EXPECT_THROW(dcc::compile(R"(
        fn main() {
            var i = 0;
            while (i < 3) var leak = 1;
            return 0;
        }
    )"),
                 FatalError);
}

TEST(DccErrors, SyntaxErrors)
{
    EXPECT_THROW(dcc::compile("fn main( { return 0; }"), FatalError);
    EXPECT_THROW(dcc::compile("fn main() { return 0 }"), FatalError);
    EXPECT_THROW(dcc::compile("fn main() { 1 +; }"), FatalError);
    EXPECT_THROW(dcc::compile("main() { return 0; }"), FatalError);
    EXPECT_THROW(dcc::compile("fn main() { return $; }"), FatalError);
}

TEST(DccErrors, BuiltinMisuse)
{
    EXPECT_THROW(dcc::compile("fn main() { return load(); }"),
                 FatalError);
    EXPECT_THROW(dcc::compile("fn main() { return store(1); }"),
                 FatalError);
    EXPECT_THROW(dcc::compile("fn main() { return halt(1); }"),
                 FatalError);
    EXPECT_THROW(dcc::compile("fn load() { return 0; }\n"
                              "fn main() { return 0; }"),
                 FatalError);
}

// ---- The multithreading payoff: compiled code on several streams ----

TEST(Dcc, CompiledWorkOnFourStreams)
{
    // The same compiled function runs on all four streams against
    // different internal-memory cells, demonstrating that compiled
    // frames (one stack region per stream) are stream-safe.
    std::string asm_text = dcc::compile(R"(
        fn triangle(n) {
            var sum = 0;
            var i = 1;
            while (i <= n) { sum = sum + i; i = i + 1; }
            return sum;
        }
        fn main() {
            store(0x60 + load(0x5f), triangle(10 + load(0x5f) * 10));
            return 0;
        }
    )");
    Program p = assemble(asm_text);
    Machine m;
    m.load(p);
    // Stream s reads its id from 0x5f... globals are shared, so run
    // streams sequentially instead: each picks its slot by the value
    // at 0x5f which we set between starts.
    for (StreamId s = 0; s < 4; ++s) {
        m.internalMemory().write(0x5f, s);
        m.startStream(s, p.symbol("__start"));
        m.run(100000);
        ASSERT_TRUE(m.idle());
    }
    EXPECT_EQ(m.internalMemory().read(0x60), 55);   // triangle(10)
    EXPECT_EQ(m.internalMemory().read(0x61), 210);  // triangle(20)
    EXPECT_EQ(m.internalMemory().read(0x62), 465);  // triangle(30)
    EXPECT_EQ(m.internalMemory().read(0x63), 820);  // triangle(40)
}

} // namespace
} // namespace disc
