/**
 * @file
 * Tests for the assembler preprocessor: .macro/.endm with parameters
 * and unique-label counters, .rept/.endr repeat blocks, nesting, and
 * error reporting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "isa/instruction.hh"
#include "sim/machine.hh"

namespace disc
{
namespace
{

TEST(Macros, SimpleExpansion)
{
    Program p = assemble(R"(
        .macro inc2 reg
            addi \reg, \reg, 2
        .endm
        main:
            ldi r0, 1
            inc2 r0
            inc2 r1
            halt
    )");
    ASSERT_EQ(p.code.size(), 4u);
    EXPECT_EQ(decode(p.code[1]), makeRI(Opcode::ADDI, 0, 0, 2));
    EXPECT_EQ(decode(p.code[2]), makeRI(Opcode::ADDI, 1, 1, 2));
}

TEST(Macros, MultipleParameters)
{
    Program p = assemble(R"(
        .macro move3 a, b, c
            mov \a, \b
            mov \b, \c
            mov \c, \a
        .endm
        move3 r1, r2, g0
    )");
    ASSERT_EQ(p.code.size(), 3u);
    EXPECT_EQ(decode(p.code[0]), makeR2(Opcode::MOV, 1, 2));
    EXPECT_EQ(decode(p.code[1]), makeR2(Opcode::MOV, 2, reg::G0));
    EXPECT_EQ(decode(p.code[2]), makeR2(Opcode::MOV, reg::G0, 1));
}

TEST(Macros, UniqueLabelsViaCounter)
{
    // \@ gives each expansion a distinct label suffix, so the macro
    // can contain loops and be used twice.
    Program p = assemble(R"(
        .macro spin n
            ldi r7, \n
        loop\@:
            subi r7, r7, 1
            cmpi r7, 0
            bne loop\@
        .endm
        main:
            spin 3
            spin 5
            stmd r7, [0x10]
            halt
    )");
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(10000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x10), 0);
}

TEST(Macros, MacroCallsMacro)
{
    Program p = assemble(R"(
        .macro zero reg
            ldi \reg, 0
        .endm
        .macro zero2 x, y
            zero \x
            zero \y
        .endm
        zero2 r3, g1
    )");
    ASSERT_EQ(p.code.size(), 2u);
    EXPECT_EQ(decode(p.code[0]), makeLdi(3, 0));
    EXPECT_EQ(decode(p.code[1]), makeLdi(reg::G1, 0));
}

TEST(Macros, ParameterNamePrefixesDoNotCollide)
{
    // Parameter "a" must not replace inside "\ab".
    Program p = assemble(R"(
        .macro two a, ab
            ldi \a, 1
            ldi \ab, 2
        .endm
        two r1, r2
    )");
    EXPECT_EQ(decode(p.code[0]), makeLdi(1, 1));
    EXPECT_EQ(decode(p.code[1]), makeLdi(2, 2));
}

TEST(Rept, RepeatsBlock)
{
    Program p = assemble(R"(
        main:
        .rept 5
            addi r0, r0, 1
        .endr
            halt
    )");
    ASSERT_EQ(p.code.size(), 6u);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(decode(p.code[i]).op, Opcode::ADDI);
}

TEST(Rept, NestedRepeats)
{
    Program p = assemble(R"(
        .rept 3
        .rept 2
            nop
        .endr
            winc
        .endr
        halt
    )");
    // 3 * (2 nops + winc) + halt = 10 words.
    ASSERT_EQ(p.code.size(), 10u);
    EXPECT_EQ(decode(p.code[2]).op, Opcode::WINC);
}

TEST(Rept, ZeroCountEmitsNothing)
{
    Program p = assemble(R"(
        .rept 0
            nop
        .endr
        halt
    )");
    ASSERT_EQ(p.code.size(), 1u);
}

TEST(Rept, MacroContainingRept)
{
    Program p = assemble(R"(
        .macro pad n
        .rept \n
            nop
        .endr
        .endm
        pad 4
        halt
    )");
    ASSERT_EQ(p.code.size(), 5u);
}

TEST(MacroErrors, MissingEndm)
{
    EXPECT_THROW(assemble(".macro broken\n nop\n"), FatalError);
}

TEST(MacroErrors, MissingEndr)
{
    EXPECT_THROW(assemble(".rept 3\n nop\n"), FatalError);
}

TEST(MacroErrors, ArgumentCountMismatch)
{
    EXPECT_THROW(assemble(R"(
        .macro one a
            ldi \a, 0
        .endm
        one r1, r2
    )"),
                 FatalError);
}

TEST(MacroErrors, BadReptCount)
{
    EXPECT_THROW(assemble(".rept nope\n nop\n.endr\n"), FatalError);
    EXPECT_THROW(assemble(".rept -1\n nop\n.endr\n"), FatalError);
}

TEST(MacroErrors, SelfRecursionDetected)
{
    EXPECT_THROW(assemble(R"(
        .macro forever
            forever
        .endm
        forever
    )"),
                 FatalError);
}

TEST(Macros, WorkloadGeneration)
{
    // The intended use: generating sizeable synthetic workloads.
    Program p = assemble(R"(
        .macro block seed
            ldi r1, \seed
            ldi r2, \seed
            add r3, r1, r2
        .endm
        main:
        .rept 20
            block 7
        .endr
            halt
    )");
    EXPECT_EQ(p.code.size(), 61u);
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(10000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.readReg(0, 3), 14);
}

} // namespace
} // namespace disc
