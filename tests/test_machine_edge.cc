/**
 * @file
 * Edge-case and feature tests for the cycle-accurate machine:
 * multi-precision arithmetic, shift corners, register-indirect
 * control flow, special-register semantics, interrupt corner cases,
 * TAS contention, deeper pipes and the execution trace.
 */

#include <gtest/gtest.h>

#include "arch/devices.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "sim/vcd.hh"

namespace disc
{
namespace
{

Machine &
runOn(Machine &m, const Program &p, const char *entry,
      Cycle max_cycles = 50000)
{
    m.load(p);
    m.startStream(0, p.symbol(entry));
    m.run(max_cycles);
    EXPECT_TRUE(m.idle());
    return m;
}

TEST(MachineEdge, MultiPrecisionAddWithCarry)
{
    // 0x1fff0 + 0x2fff0 as two 32-bit numbers via ADD/ADC.
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  r0, -16      ; 0xfff0 low a
            ldi  r1, 1        ; high a  -> a = 0x1fff0
            ldi  r2, -16      ; 0xfff0 low b
            ldi  r3, 2        ; high b  -> b = 0x2fff0
            add  r4, r0, r2   ; low sum, sets carry
            adc  r5, r1, r3   ; high sum + carry
            stmd r4, [0x10]
            stmd r5, [0x11]
            halt
    )");
    runOn(m, p, "main");
    // 0x1fff0 + 0x2fff0 = 0x4ffe0.
    EXPECT_EQ(m.internalMemory().read(0x10), 0xffe0);
    EXPECT_EQ(m.internalMemory().read(0x11), 0x0004);
}

TEST(MachineEdge, MultiPrecisionSubWithBorrow)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  r0, 0        ; a = 0x0002_0000
            ldi  r1, 2
            ldi  r2, 1        ; b = 0x0000_0001
            ldi  r3, 0
            sub  r4, r0, r2   ; low, sets borrow
            sbc  r5, r1, r3   ; high - borrow
            stmd r4, [0x10]
            stmd r5, [0x11]
            halt
    )");
    runOn(m, p, "main");
    // 0x20000 - 1 = 0x1ffff.
    EXPECT_EQ(m.internalMemory().read(0x10), 0xffff);
    EXPECT_EQ(m.internalMemory().read(0x11), 0x0001);
}

TEST(MachineEdge, ShiftCorners)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  r0, 1
            ldi  r1, 15
            shl  r2, r0, r1   ; 0x8000
            ldi  r3, 0
            shl  r4, r2, r3   ; shift by zero: unchanged, no carry
            asr  r5, r2, r1   ; arithmetic: sign fills -> 0xffff
            shr  r6, r2, r1   ; logical -> 1
            stmd r2, [0x10]
            stmd r4, [0x11]
            stmd r5, [0x12]
            stmd r6, [0x13]
            halt
    )");
    runOn(m, p, "main");
    EXPECT_EQ(m.internalMemory().read(0x10), 0x8000);
    EXPECT_EQ(m.internalMemory().read(0x11), 0x8000);
    EXPECT_EQ(m.internalMemory().read(0x12), 0xffff);
    EXPECT_EQ(m.internalMemory().read(0x13), 0x0001);
}

TEST(MachineEdge, RegisterIndirectControlFlow)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r0, target
            jr  r0
            ldi g0, 111       ; skipped
            halt
        target:
            ldi r1, fn
            callr r1
            stmd g1, [0x10]
            halt
        fn:
            ldi g1, 77
            ret 0
    )");
    runOn(m, p, "main");
    EXPECT_EQ(m.internalMemory().read(0x10), 77);
    EXPECT_EQ(m.readReg(0, reg::G0), 0); // skipped path never ran
}

TEST(MachineEdge, ForkRegisterForm)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r0, worker
            forkr 3, r0
            halt
        worker:
            ldi r1, 9
            stmd r1, [0x30]
            halt
    )");
    runOn(m, p, "main");
    EXPECT_EQ(m.internalMemory().read(0x30), 9);
    EXPECT_GT(m.stats().retired[3], 0u);
}

TEST(MachineEdge, MovToImrMasksAndIrrSelfPosts)
{
    Machine m;
    Program p = assemble(R"(
        .org 3                ; stream 0 level 3 vector
            jmp handler
        .org 0x20
        main:
            ldi  r0, 0x01
            mov  imr, r0      ; mask everything but background
            ldi  r0, 0x08
            mov  irr, r0      ; self-post level 3 (stays pending)
            nop
            nop
            nop
            ldmd r1, [0x40]
            stmd r1, [0x41]   ; must still be 0
            ldi  r0, 0xff
            mov  imr, r0      ; unmask -> vector fires
            nop
            nop
            halt
        handler:
            ldi r1, 1
            stmd r1, [0x40]
            clri 3
            reti
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(1000, false);
    EXPECT_EQ(m.internalMemory().read(0x41), 0);
    EXPECT_EQ(m.internalMemory().read(0x40), 1);
}

TEST(MachineEdge, AwpDirectWrite)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            mov g0, awp
            addi g1, g0, 4
            mov awp, g1       ; jump the window up by four
            mov g2, awp
            halt
    )");
    runOn(m, p, "main");
    EXPECT_EQ(m.readReg(0, reg::G2), m.readReg(0, reg::G0) + 4);
    EXPECT_EQ(m.stats().stackOverflows, 0u);
}

TEST(MachineEdge, SrWriteRestoresFlags)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r0, 1
            cmpi r0, 1        ; Z=1
            mov r1, sr        ; save flags
            cmpi r0, 0        ; Z=0
            mov sr, r1        ; restore
            beq was_zero
            ldi g0, 0
            halt
        was_zero:
            ldi g0, 1
            halt
    )");
    runOn(m, p, "main");
    EXPECT_EQ(m.readReg(0, reg::G0), 1);
}

TEST(MachineEdge, StackOverflowVectorsToHandler)
{
    Machine m;
    Program p = assemble(R"(
        .org 6                ; stream 0, kStackOverflowBit = 6
            jmp ovf_handler
        .org 0x20
        main:
            winc
            jmp main
        ovf_handler:
            ldmd r1, [0x50]
            addi r1, r1, 1
            stmd r1, [0x50]
            ; recover: pull the window back down
            mov g0, awp
            subi g0, g0, 32
            mov awp, g0
            clri 6
            reti
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(5000, false);
    EXPECT_GT(m.internalMemory().read(0x50), 0);
}

TEST(MachineEdge, TasContentionGrantsExactlyOneWinner)
{
    // Two streams race for the same lock; exactly one may hold it at
    // a time, and the total number of critical sections is exact.
    Machine m;
    Program p = assemble(R"(
        .equ LOCK, 0x80
        .equ COUNT, 0x81
        .org 0x20
        entry:
            ldi r7, 30         ; rounds per stream
        spin:
            tas r1, [g0]
            cmpi r1, 0
            bne spin
            ; critical section: non-atomic read-modify-write
            ldmd r2, [COUNT]
            addi r2, r2, 1
            stmd r2, [COUNT]
            ldi r3, 0
            stmd r3, [LOCK]
            subi r7, r7, 1
            cmpi r7, 0
            bne spin
            halt
    )");
    m.load(p);
    m.writeReg(0, reg::G0, 0x80);
    m.startStream(0, p.symbol("entry"));
    m.startStream(1, p.symbol("entry"));
    m.run(100000);
    ASSERT_TRUE(m.idle());
    // Without mutual exclusion the non-atomic increment would lose
    // updates; with TAS the count is exactly 60.
    EXPECT_EQ(m.internalMemory().read(0x81), 60);
}

TEST(MachineEdge, RetiOutsideHandlerTraps)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            reti
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(100, false);
    EXPECT_GT(m.stats().illegalInstructions, 0u);
}

TEST(MachineEdge, ForkRestartsActiveStream)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            fork 1, loop_a
            ldi r0, 40
        wait1:
            subi r0, r0, 1
            cmpi r0, 0
            bne wait1
            fork 1, finish    ; restart stream 1 elsewhere
            halt
        loop_a:
            ldmd r1, [0x60]
            addi r1, r1, 1
            stmd r1, [0x60]
            jmp loop_a
        finish:
            ldi r2, 1
            stmd r2, [0x61]
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(5000);
    ASSERT_TRUE(m.idle());
    EXPECT_GT(m.internalMemory().read(0x60), 0);  // loop_a ran
    EXPECT_EQ(m.internalMemory().read(0x61), 1);  // then was re-forked
}

TEST(MachineEdge, SchedRepartitionSkewsThroughput)
{
    // Give stream 1 fifteen of sixteen slots; its retirement share
    // must dominate even though both streams are always ready.
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
            ldi r3, 3
            jmp entry
    )");
    Machine m;
    m.load(p);
    for (unsigned slot = 0; slot < 15; ++slot)
        m.scheduler().setSlot(slot, 1);
    m.scheduler().setSlot(15, 0);
    m.startStream(0, p.symbol("entry"));
    m.startStream(1, p.symbol("entry"));
    m.run(8000, false);
    double share1 =
        static_cast<double>(m.stats().retired[1]) /
        static_cast<double>(m.stats().retired[0] + m.stats().retired[1]);
    EXPECT_GT(share1, 0.85);
    EXPECT_LT(share1, 0.99);
}

class PipeDepthTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PipeDepthTest, ResultsIndependentOfDepth)
{
    MachineConfig cfg;
    cfg.pipeDepth = GetParam();
    Machine m(cfg);
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r0, 12
            ldi r1, 0
        loop:
            add r1, r1, r0
            subi r0, r0, 1
            cmpi r0, 0
            bne loop
            stmd r1, [0x70]
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(50000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x70), 78); // sum 1..12
}

INSTANTIATE_TEST_SUITE_P(Depths, PipeDepthTest,
                         ::testing::Values(3u, 4u, 5u, 6u, 8u));

TEST(MachineEdge, DeeperPipeCostsMoreCycles)
{
    auto cycles_at = [](unsigned depth) {
        MachineConfig cfg;
        cfg.pipeDepth = depth;
        Machine m(cfg);
        Program p = assemble(R"(
            .org 0x20
            main:
                ldi r0, 50
            loop:
                subi r0, r0, 1
                cmpi r0, 0
                bne loop
                halt
        )");
        m.load(p);
        m.startStream(0, p.symbol("main"));
        m.run(100000);
        EXPECT_TRUE(m.idle());
        return m.stats().busyCycles;
    };
    EXPECT_LT(cycles_at(3), cycles_at(6));
}

TEST(MachineEdge, NegativeInternalMemoryOffset)
{
    Machine m;
    Program p = assemble(R"(
        .dmem 0x4e, 321
        .org 0x20
        main:
            ldi r0, 0x50
            ldm r1, [r0-2]
            stmd r1, [0x51]
            halt
    )");
    runOn(m, p, "main");
    EXPECT_EQ(m.internalMemory().read(0x51), 321);
}

TEST(MachineEdge, BaselineModeMatchesArchitecturally)
{
    // The baseline (halt-on-wait) machine must compute the same
    // values as the DISC machine; only the timing differs.
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10
            ldi  r7, 5
            ldi  r6, 0
        loop:
            ld   r1, [g0]
            add  r6, r6, r1
            st   r6, [g0+1]
            subi r7, r7, 1
            cmpi r7, 0
            bne  loop
            stmd r6, [0x90]
            halt
    )");
    auto run_mode = [&](bool baseline) {
        MachineConfig cfg;
        cfg.baselineHaltOnWait = baseline;
        Machine m(cfg);
        ExternalMemoryDevice dev(16, 4);
        dev.poke(0, 11);
        m.attachDevice(0x1000, 16, &dev);
        m.load(p);
        m.startStream(0, p.symbol("main"));
        m.run(100000);
        EXPECT_TRUE(m.idle());
        return m.internalMemory().read(0x90);
    };
    EXPECT_EQ(run_mode(false), 55);
    EXPECT_EQ(run_mode(true), 55);
}

TEST(MachineEdge, MulZeroSetsZFlag)
{
    Machine m;
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r0, 0
            ldi r1, 999
            mul r2, r0, r1
            beq was_zero
            ldi g0, 0
            halt
        was_zero:
            ldi g0, 1
            halt
    )");
    runOn(m, p, "main");
    EXPECT_EQ(m.readReg(0, reg::G0), 1);
}

// ---- VCD waveforms ----

TEST(Vcd, EmitsValidStructureAndChanges)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r1, 1
            ldi r2, 2
            halt
    )");
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));
    VcdWriter vcd;
    while (!m.idle()) {
        m.step();
        vcd.sample(m);
    }
    std::string text = vcd.text();
    EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(text.find("is1_active"), std::string::npos);
    EXPECT_NE(text.find("retired"), std::string::npos);
    // Activity edges: stream 1 turned on then off.
    EXPECT_NE(text.find("1a0"), std::string::npos);
    EXPECT_NE(text.find("0a0"), std::string::npos);
    // Timestamped change records exist.
    EXPECT_NE(text.find("#1"), std::string::npos);
    EXPECT_GT(vcd.samples(), 5u);
}

TEST(Vcd, OnlyChangesAreEmitted)
{
    // An idle machine sampled repeatedly must not grow the document.
    Machine m;
    Program p;
    p.code = {encode(makeOp(Opcode::HALT))};
    m.load(p);
    VcdWriter vcd;
    vcd.sample(m);
    std::size_t after_first = vcd.text().size();
    for (int i = 0; i < 100; ++i)
        vcd.sample(m);
    EXPECT_EQ(vcd.text().size(), after_first);
    EXPECT_EQ(vcd.samples(), 101u);
}

// ---- Delayed branching ----

TEST(DelaySlots, SparedInstructionsExecute)
{
    // With one delay slot, the (independent) instruction after a
    // taken jump still executes. Note: only instructions already in
    // flight are spared, so a slot instruction that interlocks on an
    // older write would never have issued - the compiler must fill
    // slots with independent work, as on any delay-slot machine.
    Program p = assemble(R"(
        .org 0x20
        main:
            jmp over
            ldi r2, 5         ; delay slot: executes
            ldi r3, 50        ; second younger: flushed
        over:
            stmd r2, [0x10]
            stmd r3, [0x11]
            halt
    )");
    MachineConfig cfg;
    cfg.branchDelaySlots = 1;
    Machine m(cfg);
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(1000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x10), 5);
    EXPECT_EQ(m.internalMemory().read(0x11), 0);
}

TEST(DelaySlots, DefaultSemanticsFlushEverything)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r1, 0
            jmp over
            addi r1, r1, 5
            addi r1, r1, 50
        over:
            stmd r1, [0x10]
            halt
    )");
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(1000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x10), 0);
}

TEST(DelaySlots, ImproveSingleStreamBranchThroughput)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
            ldi r3, 3
            jmp entry
    )");
    auto util = [&](unsigned slots) {
        MachineConfig cfg;
        cfg.pipeDepth = 6; // deep enough that two slots stay below 1.0
        cfg.branchDelaySlots = slots;
        Machine m(cfg);
        m.load(p);
        m.startStream(0, p.symbol("entry"));
        m.run(20000, false);
        return m.stats().utilization();
    };
    double none = util(0);
    double one = util(1);
    double two = util(2);
    EXPECT_GT(one, none + 0.05);
    EXPECT_GT(two, one + 0.05);
}

// ---- Execution trace ----

TEST(ExecTraceTest, RecordsRetirementOrder)
{
    Machine m;
    ExecTrace trace(1024);
    m.setExecTrace(&trace);
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r0, 1
            ldi r1, 2
            add r2, r0, r1
            halt
    )");
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(1000);
    ASSERT_TRUE(m.idle());
    ASSERT_EQ(trace.total(), m.stats().totalRetired);
    ASSERT_GE(trace.entries().size(), 4u);
    EXPECT_EQ(trace.entries()[0].inst.op, Opcode::LDI);
    EXPECT_EQ(trace.entries()[2].inst.op, Opcode::ADD);
    EXPECT_EQ(trace.entries().back().inst.op, Opcode::HALT);
    // Cycles strictly increase within a stream.
    for (std::size_t i = 1; i < trace.entries().size(); ++i)
        EXPECT_GT(trace.entries()[i].cycle, trace.entries()[i - 1].cycle);
    std::string text = trace.render();
    EXPECT_NE(text.find("add r2, r0, r1"), std::string::npos);
}

TEST(ExecTraceTest, InterleavesStreams)
{
    Machine m;
    ExecTrace trace(4096);
    m.setExecTrace(&trace);
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
            ldi r3, 3
            ldi r4, 4
            halt
    )");
    m.load(p);
    for (StreamId s = 0; s < 4; ++s)
        m.startStream(s, p.symbol("entry"));
    m.run(1000);
    ASSERT_TRUE(m.idle());
    // Adjacent records mostly belong to different streams.
    unsigned adjacent_same = 0;
    const auto &es = trace.entries();
    for (std::size_t i = 1; i < es.size(); ++i)
        adjacent_same += es[i].stream == es[i - 1].stream;
    EXPECT_LT(adjacent_same, es.size() / 3);
}

TEST(ExecTraceTest, CapsEntries)
{
    ExecTrace trace(4);
    Instruction nop = makeOp(Opcode::NOP);
    for (Cycle c = 0; c < 10; ++c)
        trace.record(c, 0, static_cast<PAddr>(c), nop);
    EXPECT_EQ(trace.entries().size(), 4u);
    EXPECT_EQ(trace.total(), 10u);
    EXPECT_EQ(trace.entries().front().cycle, 6u);
}

TEST(PipeTraceTest, StageNamesByDepth)
{
    EXPECT_EQ(PipeTrace::stageNames(3),
              (std::vector<std::string>{"IF", "EX", "WR"}));
    EXPECT_EQ(PipeTrace::stageNames(5),
              (std::vector<std::string>{"IF", "ID", "RR", "EX", "WR"}));
    auto seven = PipeTrace::stageNames(7);
    EXPECT_EQ(seven.size(), 7u);
    EXPECT_EQ(seven.front(), "IF");
    EXPECT_EQ(seven.back(), "WR");
}

TEST(PipeTraceTest, CapsColumnsAndClears)
{
    PipeTrace trace(4, 8);
    std::vector<PipeTrace::StageEntry> stages(4);
    for (Cycle c = 0; c < 20; ++c)
        trace.record(c, stages);
    EXPECT_EQ(trace.size(), 8u);
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_NE(trace.render().find("empty"), std::string::npos);
}

} // namespace
} // namespace disc
