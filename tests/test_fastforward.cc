/**
 * @file
 * Event-skip equivalence: running a workload with fast-forward on and
 * off must be bit-identical — same retired-instruction trace (cycle
 * numbers included), same statistics and the same checkpoint bytes.
 * The fast-forward counters themselves are the only permitted
 * difference, and they are excluded from checkpoints by design.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "verify/differential.hh"
#include "verify/generator.hh"
#include "verify/invariants.hh"

#ifndef DISC_SOURCE_DIR
#define DISC_SOURCE_DIR "."
#endif

namespace disc
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing sample " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Everything one run produces that the other must reproduce. */
struct RunRecord
{
    std::string trace;
    std::vector<std::uint8_t> checkpoint;
    MachineStats stats;
};

/** Stats fields that must match between stepping modes, as text. */
std::string
statsFingerprint(const MachineStats &st)
{
    std::string fp = strprintf(
        "c=%llu b=%llu r=%llu j=%llu q=%llu w=%llu d=%llu bub=%llu "
        "rd=%llu wr=%llu rej=%llu vec=%llu",
        (unsigned long long)st.cycles, (unsigned long long)st.busyCycles,
        (unsigned long long)st.totalRetired,
        (unsigned long long)st.redirects,
        (unsigned long long)st.squashedJump,
        (unsigned long long)st.squashedWait,
        (unsigned long long)st.squashedDeact,
        (unsigned long long)st.bubbles,
        (unsigned long long)st.externalReads,
        (unsigned long long)st.externalWrites,
        (unsigned long long)st.busBusyRejections,
        (unsigned long long)st.vectorsTaken);
    for (StreamId s = 0; s < kNumStreams; ++s) {
        fp += strprintf(" s%u=%llu/%llu/%llu/%llu", unsigned(s),
                        (unsigned long long)st.retired[s],
                        (unsigned long long)st.readyCycles[s],
                        (unsigned long long)st.waitAbiCycles[s],
                        (unsigned long long)st.inactiveCycles[s]);
    }
    return fp;
}

void
expectEquivalent(const RunRecord &ff, const RunRecord &steps)
{
    EXPECT_EQ(ff.trace, steps.trace);
    EXPECT_EQ(ff.checkpoint, steps.checkpoint);
    EXPECT_EQ(statsFingerprint(ff.stats), statsFingerprint(steps.stats));
    // The per-cycle run must never have skipped anything.
    EXPECT_EQ(steps.stats.fastForwardedCycles, 0u);
    EXPECT_EQ(steps.stats.fastForwards, 0u);
}

/** Run one of the shipped samples under @p setup in both modes. */
template <typename Setup>
void
checkSample(const Program &p, Cycle budget, Setup setup)
{
    auto record = [&](bool fast_forward) {
        Machine m;
        m.setFastForward(fast_forward);
        m.load(p);
        setup(m);
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(budget);
        EXPECT_TRUE(m.idle());
        return RunRecord{trace.render(), m.saveState(), m.stats()};
    };
    RunRecord ff = record(true);
    RunRecord steps = record(false);
    expectEquivalent(ff, steps);
}

TEST(FastForwardEquivalence, GcdSample)
{
    Program p = assemble(
        readFile(std::string(DISC_SOURCE_DIR) + "/examples/asm/gcd.s"));
    checkSample(p, 10000,
                [&](Machine &m) { m.startStream(0, p.symbol("main")); });
}

TEST(FastForwardEquivalence, ParallelSumSample)
{
    Program p = assemble(readFile(std::string(DISC_SOURCE_DIR) +
                                  "/examples/asm/parallel_sum.s"));
    checkSample(p, 50000, [&](Machine &m) {
        m.startStream(0, p.symbol("combine"));
        m.startStream(1, p.symbol("worker_a"));
        m.startStream(2, p.symbol("worker_b"));
        m.startStream(3, p.symbol("worker_c"));
    });
}

/**
 * I/O-bound kernel: a slow-device load loop spends most of its cycles
 * in the Access wait state — the case the event skip is for. The
 * fast-forward run must actually take skips here or the equivalence
 * claim is vacuous.
 */
TEST(FastForwardEquivalence, SlowDeviceLoadLoop)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10     ; device at 0x1000
            ldi  r1, 20       ; iterations
            ldi  r2, 0        ; accumulator
        loop:
            ld   r3, [g0]
            add  r2, r2, r3
            st   r2, [g0]
            subi r1, r1, 1
            cmpi r1, 0
            bne  loop
            stmd r2, [0x40]
            halt
    )");
    auto record = [&](bool fast_forward) {
        Machine m;
        m.setFastForward(fast_forward);
        m.load(p);
        ExternalMemoryDevice dev(64, 60); // 60-cycle access time
        dev.poke(0, 5);
        m.attachDevice(0x1000, 64, &dev);
        m.startStream(0, p.symbol("main"));
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(200000);
        EXPECT_TRUE(m.idle());
        if (fast_forward)
            EXPECT_GT(m.stats().fastForwardedCycles, 0u);
        return RunRecord{trace.render(), m.saveState(), m.stats()};
    };
    RunRecord ff = record(true);
    RunRecord steps = record(false);
    expectEquivalent(ff, steps);
    // The wait tally should dominate: each load waits ~60 cycles.
    EXPECT_GT(ff.stats.waitAbiCycles[0], ff.stats.readyCycles[0]);
}

/**
 * Timer-driven wakeups: between expiries every stream is idle, so the
 * skip jumps straight from event to event; each expiry must still
 * land on exactly the right cycle.
 */
TEST(FastForwardEquivalence, TimerDrivenInterrupts)
{
    Program p = assemble(R"(
        .org 3              ; stream 0, level 3: timer tick
            jmp tick
        .org 0x20
        main:
            ldi  r1, 0
            stmd r1, [0x40]
            ldi  r2, 6       ; ticks to count
            ldi  r3, 0x09
            mov  imr, r3     ; unmask levels 0 and 3
        wait_loop:
            ldmd r1, [0x40]
            cmp  r1, r2
            bne  wait_loop
            halt
        tick:
            ldmd r1, [0x40]
            addi r1, r1, 1
            stmd r1, [0x40]
            clri 3
            reti
    )");
    auto record = [&](bool fast_forward) {
        Machine m;
        m.setFastForward(fast_forward);
        m.load(p);
        TimerDevice timer(700, 0, 3);
        m.attachDevice(0x2000, 4, &timer);
        m.startStream(0, p.symbol("main"));
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(100000, /*stop_when_idle=*/true);
        EXPECT_TRUE(m.idle());
        EXPECT_EQ(m.internalMemory().read(0x40), 6);
        return RunRecord{trace.render(), m.saveState(), m.stats()};
    };
    RunRecord ff = record(true);
    RunRecord steps = record(false);
    expectEquivalent(ff, steps);
}

/** Generated multi-stream workloads: both modes, several seeds. */
TEST(FastForwardEquivalence, GeneratedWorkloads)
{
    for (std::uint64_t seed : {11u, 23u, 47u}) {
        GenOptions opts;
        MultiStreamProgram msp = generateMultiStream(seed, opts);
        auto record = [&](bool fast_forward) {
            MachineRig rig(msp);
            rig.machine().setFastForward(fast_forward);
            ExecTrace trace(1u << 20);
            rig.machine().setExecTrace(&trace);
            rig.start();
            rig.machine().run(rig.cycleBudget());
            EXPECT_TRUE(rig.machine().idle()) << "seed " << seed;
            return RunRecord{trace.render(), rig.machine().saveState(),
                             rig.machine().stats()};
        };
        RunRecord ff = record(true);
        RunRecord steps = record(false);
        expectEquivalent(ff, steps);
    }
}

/**
 * The PR-2 safety net must hold in both stepping modes: generated
 * workloads run under the invariant checker, then the architectural
 * end state is diffed against the sequential reference interpreter.
 */
TEST(FastForwardEquivalence, DifferentialAndInvariantsBothModes)
{
    for (bool fast_forward : {true, false}) {
        for (std::uint64_t seed : {5u, 9u}) {
            GenOptions opts;
            MultiStreamProgram msp = generateMultiStream(seed, opts);
            MachineConfig cfg;
            cfg.fastForward = fast_forward;
            MachineRig rig(msp, cfg);
            InvariantChecker chk(rig.machine());
            rig.machine().setObserver(&chk);
            rig.start();
            rig.machine().run(rig.cycleBudget());
            EXPECT_TRUE(rig.machine().idle())
                << "seed " << seed << " ff " << fast_forward;
            for (const std::string &d : compareWithReference(rig))
                ADD_FAILURE() << "seed " << seed << " ff "
                              << fast_forward << ": " << d;
            EXPECT_TRUE(chk.ok()) << chk.report();
            rig.machine().setObserver(nullptr);
        }
    }
}

TEST(FastForward, EnvironmentOverrideDisables)
{
    ::setenv("DISC_NO_FASTFORWARD", "1", 1);
    Machine off;
    EXPECT_FALSE(off.fastForwardEnabled());
    ::setenv("DISC_NO_FASTFORWARD", "0", 1);
    Machine zero;
    EXPECT_TRUE(zero.fastForwardEnabled());
    ::unsetenv("DISC_NO_FASTFORWARD");
    Machine on;
    EXPECT_TRUE(on.fastForwardEnabled());
    MachineConfig cfg;
    cfg.fastForward = false;
    Machine cfg_off(cfg);
    EXPECT_FALSE(cfg_off.fastForwardEnabled());
}

} // namespace
} // namespace disc
