/**
 * @file
 * Superblock execution tier equivalence and translation-cache
 * hygiene. The per-cycle uop path is the oracle: every trace line,
 * statistic, checkpoint byte and run digest must be bit-identical
 * with the superblock tier on (the default) and off
 * (DISC_NO_SUPERBLOCK / MachineConfig::superblockExec=false), and
 * every equivalence check here also asserts the tier actually engaged
 * so the comparison is non-vacuous. The cache tests pin the
 * invalidation points: program load, reset, checkpoint restore, and
 * the disc-serve park/restore path built on them.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "serve/session.hh"
#include "sim/digest.hh"
#include "sim/machine.hh"
#include "sim/superblock.hh"
#include "sim/trace.hh"
#include "verify/differential.hh"
#include "verify/generator.hh"
#include "verify/invariants.hh"

#ifndef DISC_SOURCE_DIR
#define DISC_SOURCE_DIR "."
#endif

namespace disc
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing sample " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Save, override, and on destruction restore one env variable. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = ::getenv(name))
            saved_ = old;
        else
            unset_ = true;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (unset_)
            ::unsetenv(name_);
        else
            ::setenv(name_, saved_.c_str(), 1);
    }

  private:
    const char *name_;
    std::string saved_;
    bool unset_ = false;
};

// ---- Classification ----

TEST(SuperblockClass, ExternalAndCrossStreamOpsNeverExecuteInBlock)
{
    EXPECT_FALSE(superblockExecutable(Uop::LD));
    EXPECT_FALSE(superblockExecutable(Uop::ST));
    EXPECT_FALSE(superblockExecutable(Uop::SWI));
    EXPECT_FALSE(superblockExecutable(Uop::FORK));
    EXPECT_FALSE(superblockExecutable(Uop::FORKR));
    EXPECT_FALSE(superblockExecutable(Uop::SCHED));
    for (unsigned u = 0; u < kNumUops; ++u) {
        Uop uop = static_cast<Uop>(u);
        std::uint8_t cls = superblockClass(uop);
        if (!superblockExecutable(uop)) {
            EXPECT_EQ(cls, kSbClsNonExec) << uopName(uop);
            continue;
        }
        // Control implies the control class bit, nothing else does.
        EXPECT_EQ((cls & kSbClsControl) != 0, superblockControl(uop))
            << uopName(uop);
    }
}

TEST(SuperblockClass, EveryBailReasonHasAName)
{
    for (unsigned b = 0; b < kNumSbBails; ++b)
        EXPECT_STRNE(sbBailName(static_cast<SbBail>(b)), "?");
}

// ---- Machine equivalence ----

/**
 * The equivalence and cache tests exist to exercise the tier, so the
 * fixtures neutralise both process-wide opt-outs: the machines here
 * (including the ones disc-serve sessions construct internally) read
 * DISC_NO_SUPERBLOCK and DISC_NO_UOP at construction, and the tier
 * cannot engage without the uop tables.
 */
class SuperblockEquivalence : public ::testing::Test
{
    ScopedEnv uops_{"DISC_NO_UOP", "0"};
    ScopedEnv sblocks_{"DISC_NO_SUPERBLOCK", "0"};
};

/** Everything one run produces that the other must reproduce. */
struct RunRecord
{
    std::string trace;
    std::vector<std::uint8_t> checkpoint;
    MachineStats stats;
};

/**
 * Stats fields that must match between execution tiers, as text. The
 * superblock tallies themselves (superblockCycles/Enters/Bails) are
 * intentionally absent: they describe which tier ran, not what the
 * machine did.
 */
std::string
statsFingerprint(const MachineStats &st)
{
    std::string fp = strprintf(
        "c=%llu b=%llu r=%llu j=%llu q=%llu w=%llu d=%llu bub=%llu "
        "rd=%llu wr=%llu rej=%llu vec=%llu ill=%llu ff=%llu",
        (unsigned long long)st.cycles, (unsigned long long)st.busyCycles,
        (unsigned long long)st.totalRetired,
        (unsigned long long)st.redirects,
        (unsigned long long)st.squashedJump,
        (unsigned long long)st.squashedWait,
        (unsigned long long)st.squashedDeact,
        (unsigned long long)st.bubbles,
        (unsigned long long)st.externalReads,
        (unsigned long long)st.externalWrites,
        (unsigned long long)st.busBusyRejections,
        (unsigned long long)st.vectorsTaken,
        (unsigned long long)st.illegalInstructions,
        (unsigned long long)st.fastForwardedCycles);
    for (StreamId s = 0; s < kNumStreams; ++s) {
        fp += strprintf(" s%u=%llu/%llu/%llu/%llu", unsigned(s),
                        (unsigned long long)st.retired[s],
                        (unsigned long long)st.readyCycles[s],
                        (unsigned long long)st.waitAbiCycles[s],
                        (unsigned long long)st.inactiveCycles[s]);
    }
    return fp;
}

void
expectEquivalent(const RunRecord &sblock, const RunRecord &plain)
{
    EXPECT_EQ(sblock.trace, plain.trace);
    EXPECT_EQ(sblock.checkpoint, plain.checkpoint);
    EXPECT_EQ(statsFingerprint(sblock.stats),
              statsFingerprint(plain.stats));
    // The comparison only means something if the tier actually ran
    // in one mode and never in the other.
    EXPECT_GT(sblock.stats.superblockCycles, 0u);
    EXPECT_EQ(plain.stats.superblockCycles, 0u);
}

/** Run a program through both tiers and demand identity. */
template <typename Setup>
void
checkSample(const Program &p, Cycle budget, Setup setup,
            bool expect_idle = true)
{
    auto record = [&](bool use_sblock) {
        Machine m;
        m.setSuperblockExec(use_sblock);
        m.load(p);
        setup(m);
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(budget, expect_idle);
        if (expect_idle) {
            EXPECT_TRUE(m.idle());
        }
        return RunRecord{trace.render(), m.saveState(), m.stats()};
    };
    expectEquivalent(record(true), record(false));
}

TEST_F(SuperblockEquivalence, GcdSample)
{
    Program p = assemble(
        readFile(std::string(DISC_SOURCE_DIR) + "/examples/asm/gcd.s"));
    checkSample(p, 10000,
                [&](Machine &m) { m.startStream(0, p.symbol("main")); });
}

TEST_F(SuperblockEquivalence, RtosMailboxSample)
{
    // No "main" symbol: start at address 0 like disc-run's fallback.
    Program p = assemble(readFile(std::string(DISC_SOURCE_DIR) +
                                  "/examples/asm/rtos_mailbox.s"));
    checkSample(
        p, 200000, [&](Machine &m) { m.startStream(0, 0); },
        /*expect_idle=*/false);
}

/** External accesses force the Abi bail and re-engagement. */
TEST_F(SuperblockEquivalence, SlowDeviceLoadLoop)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10     ; device at 0x1000
            ldi  r1, 20       ; iterations
            ldi  r2, 0        ; accumulator
        loop:
            ld   r3, [g0]
            add  r2, r2, r3
            st   r2, [g0]
            subi r1, r1, 1
            cmpi r1, 0
            bne  loop
            stmd r2, [0x40]
            halt
    )");
    auto record = [&](bool use_sblock) {
        Machine m;
        m.setSuperblockExec(use_sblock);
        m.load(p);
        ExternalMemoryDevice dev(64, 60);
        dev.poke(0, 5);
        m.attachDevice(0x1000, 64, &dev);
        m.startStream(0, p.symbol("main"));
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(200000);
        EXPECT_TRUE(m.idle());
        if (use_sblock) {
            EXPECT_GT(
                m.stats().superblockBails[unsigned(SbBail::Abi)], 0u);
        }
        return RunRecord{trace.render(), m.saveState(), m.stats()};
    };
    expectEquivalent(record(true), record(false));
}

/** Timer interrupts cross the Interrupt bail and vector delivery. */
TEST_F(SuperblockEquivalence, TimerDrivenInterrupts)
{
    Program p = assemble(R"(
        .org 3              ; stream 0, level 3: timer tick
            jmp tick
        .org 0x20
        main:
            ldi  r1, 0
            stmd r1, [0x40]
            ldi  r2, 6       ; ticks to count
            ldi  r3, 0x09
            mov  imr, r3     ; unmask levels 0 and 3
        wait_loop:
            ldmd r1, [0x40]
            cmp  r1, r2
            bne  wait_loop
            halt
        tick:
            ldmd r1, [0x40]
            addi r1, r1, 1
            stmd r1, [0x40]
            clri 3
            reti
    )");
    auto record = [&](bool use_sblock) {
        Machine m;
        m.setSuperblockExec(use_sblock);
        m.load(p);
        TimerDevice timer(700, 0, 3);
        m.attachDevice(0x2000, 4, &timer);
        m.startStream(0, p.symbol("main"));
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(100000, /*stop_when_idle=*/true);
        EXPECT_TRUE(m.idle());
        EXPECT_EQ(m.internalMemory().read(0x40), 6);
        return RunRecord{trace.render(), m.saveState(), m.stats()};
    };
    expectEquivalent(record(true), record(false));
}

/** Generated multi-stream workloads, several seeds, both tiers. */
TEST_F(SuperblockEquivalence, GeneratedWorkloads)
{
    for (std::uint64_t seed : {13u, 29u, 53u}) {
        GenOptions opts;
        MultiStreamProgram msp = generateMultiStream(seed, opts);
        auto record = [&](bool use_sblock) {
            MachineRig rig(msp);
            rig.machine().setSuperblockExec(use_sblock);
            ExecTrace trace(1u << 20);
            rig.machine().setExecTrace(&trace);
            rig.start();
            rig.machine().run(rig.cycleBudget());
            EXPECT_TRUE(rig.machine().idle()) << "seed " << seed;
            return RunRecord{trace.render(), rig.machine().saveState(),
                             rig.machine().stats()};
        };
        RunRecord sblock = record(true);
        RunRecord plain = record(false);
        EXPECT_EQ(sblock.trace, plain.trace) << "seed " << seed;
        EXPECT_EQ(sblock.checkpoint, plain.checkpoint)
            << "seed " << seed;
        EXPECT_EQ(statsFingerprint(sblock.stats),
                  statsFingerprint(plain.stats))
            << "seed " << seed;
        // Multi-stream phases keep the gate shut; the single-stream
        // prologue/epilogue may still engage, so only the off-mode
        // zero is asserted unconditionally.
        EXPECT_EQ(plain.stats.superblockCycles, 0u);
    }
}

/** The verification safety net holds with the tier on and off. */
TEST_F(SuperblockEquivalence, DifferentialAndInvariantsBothModes)
{
    for (bool use_sblock : {true, false}) {
        for (std::uint64_t seed : {7u, 19u}) {
            GenOptions opts;
            MultiStreamProgram msp = generateMultiStream(seed, opts);
            MachineConfig cfg;
            cfg.superblockExec = use_sblock;
            MachineRig rig(msp, cfg);
            InvariantChecker chk(rig.machine());
            rig.machine().setObserver(&chk);
            rig.start();
            rig.machine().run(rig.cycleBudget());
            EXPECT_TRUE(rig.machine().idle())
                << "seed " << seed << " sblock " << use_sblock;
            for (const std::string &d : compareWithReference(rig))
                ADD_FAILURE() << "seed " << seed << " sblock "
                              << use_sblock << ": " << d;
            EXPECT_TRUE(chk.ok()) << chk.report();
            rig.machine().setObserver(nullptr);
        }
    }
}

// ---- Translation-cache invalidation ----

/** Same discipline as SuperblockEquivalence (see above). */
class SuperblockCache : public ::testing::Test
{
    ScopedEnv uops_{"DISC_NO_UOP", "0"};
    ScopedEnv sblocks_{"DISC_NO_SUPERBLOCK", "0"};
};

/** A single-stream loop the tier is guaranteed to engage on. */
Program
engagingLoop(unsigned k)
{
    return assemble(strprintf(".org 0x20\n"
                              "main:\n"
                              "    ldi r1, %u\n"
                              "    ldi r2, 2\n"
                              "loop:\n"
                              "    add r3, r1, r2\n"
                              "    add r4, r3, r2\n"
                              "    sub r5, r4, r1\n"
                              "    jmp loop\n",
                              k));
}

TEST_F(SuperblockCache, EngagementPopulatesTheCache)
{
    Program p = engagingLoop(1);
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(10000, false);
    EXPECT_GT(m.stats().superblockCycles, 0u);
    EXPECT_GT(m.stats().superblockEnters, 0u);
    EXPECT_GT(m.superblocks().cachedBlocks(), 0u);
    EXPECT_TRUE(m.superblocks().cached(p.symbol("main")));
}

TEST_F(SuperblockCache, ProgramReloadDropsEveryBlock)
{
    Program first = engagingLoop(1);
    Program second = engagingLoop(7);
    Machine m;
    m.load(first);
    m.startStream(0, first.symbol("main"));
    m.run(10000, false);
    ASSERT_GT(m.superblocks().cachedBlocks(), 0u);

    // Reload: stale blocks translated from the first image must not
    // survive into the second. The reloaded machine must be
    // bit-identical to one that never ran the first program.
    m.load(second);
    EXPECT_EQ(m.superblocks().cachedBlocks(), 0u);
    m.startStream(0, second.symbol("main"));
    m.run(10000, false);

    Machine fresh;
    fresh.load(second);
    fresh.startStream(0, second.symbol("main"));
    fresh.run(10000, false);
    EXPECT_GT(m.stats().superblockCycles, 0u);
    EXPECT_EQ(m.saveState(), fresh.saveState());
}

TEST_F(SuperblockCache, ResetDropsEveryBlock)
{
    Program p = engagingLoop(3);
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(10000, false);
    ASSERT_GT(m.superblocks().cachedBlocks(), 0u);
    m.reset();
    EXPECT_EQ(m.superblocks().cachedBlocks(), 0u);
}

TEST_F(SuperblockCache, CheckpointRestoreDropsEveryBlock)
{
    // The checkpoint carries no program image, so blocks translated
    // from the restoring machine's *previous* program would be stale
    // the moment the restore completes.
    Program a = engagingLoop(1);
    Program b = engagingLoop(9);

    Machine ma;
    ma.load(a);
    ma.startStream(0, a.symbol("main"));
    ma.run(5000, false);
    std::vector<std::uint8_t> snap = ma.saveState();

    Machine mb;
    mb.load(b);
    mb.startStream(0, b.symbol("main"));
    mb.run(3000, false);
    ASSERT_GT(mb.superblocks().cachedBlocks(), 0u);

    // Restore a's checkpoint into the machine that ran b, then load
    // a's image (the serve park/restore discipline). Continuing must
    // match the uninterrupted machine bit for bit, in both tiers.
    mb.restoreState(snap);
    EXPECT_EQ(mb.superblocks().cachedBlocks(), 0u);
    mb.load(a);
    mb.restoreState(snap);
    mb.run(5000, false);
    ma.run(5000, false);
    EXPECT_GT(ma.stats().superblockCycles, 0u);
    EXPECT_EQ(mb.saveState(), ma.saveState());
}

TEST_F(SuperblockCache, RestoredRunMatchesBothTiers)
{
    // checkpoint at N cycles, continue M in each tier: all four end
    // states (straight-through and restored, tier on and off) agree.
    Program p = engagingLoop(5);
    auto finish = [&](bool use_sblock, bool via_checkpoint) {
        Machine m;
        m.setSuperblockExec(use_sblock);
        m.load(p);
        m.startStream(0, p.symbol("main"));
        if (via_checkpoint) {
            m.run(4000, false);
            std::vector<std::uint8_t> snap = m.saveState();
            Machine r;
            r.setSuperblockExec(use_sblock);
            r.load(p);
            r.restoreState(snap);
            r.run(4000, false);
            return r.saveState();
        }
        m.run(8000, false);
        return m.saveState();
    };
    std::vector<std::uint8_t> want = finish(false, false);
    EXPECT_EQ(finish(false, true), want);
    EXPECT_EQ(finish(true, false), want);
    EXPECT_EQ(finish(true, true), want);
}

TEST_F(SuperblockCache, ServeParkRestoreStaysBitIdentical)
{
    // disc-serve eviction: two sessions, one resident slot, so every
    // acquire parks the other session and restores this one from its
    // park file. The offline control never parks; its digest must be
    // reproduced and its run must have used the superblock tier.
    namespace fs = std::filesystem;
    std::string dir =
        (fs::temp_directory_path() / "disc_sb_park_restore").string();
    fs::remove_all(dir);
    serve::SessionRegistry reg(dir, 1);
    auto spec = [](const std::string &id, unsigned k) {
        serve::SessionSpec s;
        s.id = id;
        s.tenant = 0;
        s.source = strprintf(".org 0x20\n"
                             "main:\n"
                             "    ldi r1, %u\n"
                             "loop:\n"
                             "    add r2, r2, r1\n"
                             "    sub r3, r2, r1\n"
                             "    jmp loop\n",
                             k);
        return s;
    };
    reg.open(spec("a", 2));
    reg.open(spec("b", 6));
    for (int round = 0; round < 4; ++round) {
        for (const char *id : {"a", "b"}) {
            serve::SessionLease lease = reg.acquire(id);
            lease->machine().run(250, false);
        }
    }
    EXPECT_GT(reg.evictedTotal(), 0u);
    EXPECT_GT(reg.restoredTotal(), 0u);
    auto offline = [&](unsigned k) {
        serve::SessionSpec s = spec("x", k);
        Program prog = assemble(s.source);
        Machine m;
        m.load(prog);
        ExecTrace trace(serve::kSessionTraceEntries);
        m.setExecTrace(&trace);
        m.startStream(0, prog.symbol("main"));
        m.run(1000, false);
        EXPECT_GT(m.stats().superblockCycles, 0u);
        return runDigest(m, trace);
    };
    {
        serve::SessionLease lease = reg.acquire("a");
        EXPECT_EQ(serve::sessionDigest(*lease), offline(2));
    }
    {
        serve::SessionLease lease = reg.acquire("b");
        EXPECT_EQ(serve::sessionDigest(*lease), offline(6));
    }
}

// ---- Environment override ----

TEST(SuperblockExec, EnvironmentOverrideDisables)
{
    // Restores whatever the suite was launched with on scope exit.
    ScopedEnv restore("DISC_NO_SUPERBLOCK", "1");
    Machine off;
    EXPECT_FALSE(off.superblockExecEnabled());
    ::setenv("DISC_NO_SUPERBLOCK", "0", 1);
    Machine zero;
    EXPECT_TRUE(zero.superblockExecEnabled());
    ::unsetenv("DISC_NO_SUPERBLOCK");
    Machine on;
    EXPECT_TRUE(on.superblockExecEnabled());
    MachineConfig cfg;
    cfg.superblockExec = false;
    Machine cfg_off(cfg);
    EXPECT_FALSE(cfg_off.superblockExecEnabled());

    // The tier also needs the uop tables: disabling them disables it.
    Program p = engagingLoop(1);
    Machine no_uops;
    no_uops.setUopDispatch(false);
    no_uops.load(p);
    no_uops.startStream(0, p.symbol("main"));
    no_uops.run(5000, false);
    EXPECT_EQ(no_uops.stats().superblockCycles, 0u);
}

} // namespace
} // namespace disc
