/**
 * @file
 * Regression tests for the shipped assembly samples in examples/asm
 * and for inter-stream join synchronisation (paper section 3.6.3:
 * "the first IS to reach the join point is deactivated until the
 * other IS arrives").
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "dcc/dcc.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

#ifndef DISC_SOURCE_DIR
#define DISC_SOURCE_DIR "."
#endif

namespace disc
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing sample " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Samples, GcdComputes21)
{
    Program p = assemble(
        readFile(std::string(DISC_SOURCE_DIR) + "/examples/asm/gcd.s"));
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(10000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x80), 21);
}

TEST(Samples, ParallelSumComputes5050)
{
    Program p = assemble(readFile(std::string(DISC_SOURCE_DIR) +
                                  "/examples/asm/parallel_sum.s"));
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("combine"));
    m.startStream(1, p.symbol("worker_a"));
    m.startStream(2, p.symbol("worker_b"));
    m.startStream(3, p.symbol("worker_c"));
    m.run(50000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x94), 5050);
    // All four streams contributed.
    for (StreamId s = 0; s < 4; ++s)
        EXPECT_GT(m.stats().retired[s], 0u) << "stream " << unsigned(s);
}

TEST(Samples, DccPrimesCounts46)
{
    std::string src = readFile(std::string(DISC_SOURCE_DIR) +
                               "/examples/dcc/primes.dc");
    Program p = assemble(dcc::compile(src));
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("__start"));
    m.run(2000000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.readReg(0, reg::G0), 46);
}

TEST(Samples, DccPipelineComputes408)
{
    std::string src = readFile(std::string(DISC_SOURCE_DIR) +
                               "/examples/dcc/pipeline.dc");
    Program p = assemble(dcc::compile(src));
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("__start"));
    m.run(100000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.readReg(0, reg::G0), 408);
    // All three pipeline stages ran on their own streams.
    for (StreamId s = 0; s < 3; ++s)
        EXPECT_GT(m.stats().retired[s], 50u) << unsigned(s);
}

TEST(Samples, RtosMailboxServesBlockedClients)
{
    Program p = assemble(readFile(std::string(DISC_SOURCE_DIR) +
                                  "/examples/asm/rtos_mailbox.s"));
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("idle"));
    m.startStream(1, p.symbol("client1"));
    m.startStream(2, p.symbol("client2"));
    m.run(100000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x120), 42); // 20 + 22
    EXPECT_EQ(m.internalMemory().read(0x121), 42); // 6 * 7
    EXPECT_EQ(m.internalMemory().read(0x122), 25); // 5 * 5
    // The kernel stream ran purely on request interrupts.
    EXPECT_GT(m.stats().retired[3], 30u);
    EXPECT_FALSE(m.interrupts().isActive(3));
    // Clients blocked instead of polling: tiny retire counts.
    EXPECT_LT(m.stats().retired[1], 120u);
    EXPECT_LT(m.stats().retired[2], 80u);
}

TEST(Samples, DccThermostatHoldsBand)
{
    std::string src = readFile(std::string(DISC_SOURCE_DIR) +
                               "/examples/dcc/thermostat.dc");
    Program p = assemble(dcc::compile(src));
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("__start"));
    m.run(3000000);
    ASSERT_TRUE(m.idle());
    // The bang-bang controller keeps the plant inside the comfort
    // band for nearly all of the 400 samples.
    EXPECT_GE(m.readReg(0, reg::G0), 350);
    EXPECT_LE(m.readReg(0, reg::G0), 400);
}

TEST(JoinSync, FirstArriverSleepsUntilPartnerSignals)
{
    // Interrupt-based join: stream 1 (short job) halts at the join;
    // stream 2 (long job) SWIs stream 1's join level when it arrives.
    // While stream 1 sleeps, its throughput goes to stream 2 — no
    // polling loop burns slots.
    Machine m;
    Program p = assemble(R"(
        .org 13               ; vectorAddress(1, 5): join wake-up
            jmp joined
        .org 0x20
        short_job:
            ldi r1, 3
            stmd r1, [0x20]
            halt              ; arrive at join: deactivate
        joined:
            ldmd r1, [0x20]
            ldmd r2, [0x21]
            add  r3, r1, r2
            stmd r3, [0x22]   ; combined result
            clri 5
            halt
        long_job:
            ldi r0, 200
        work:
            subi r0, r0, 1
            cmpi r0, 0
            bne  work
            ldi r1, 4
            stmd r1, [0x21]
            swi 1, 5          ; partner may proceed
            halt
    )");
    m.load(p);
    m.startStream(1, p.symbol("short_job"));
    m.startStream(2, p.symbol("long_job"));
    m.run(20000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x22), 7);
    // The sleeping stream burned (almost) nothing: its retired count
    // is only its two jobs, not hundreds of polling iterations.
    EXPECT_LT(m.stats().retired[1], 20u);
    EXPECT_GT(m.stats().retired[2], 500u);
}

TEST(JoinSync, SignalBeforeArrivalStillJoins)
{
    // Race the other way: the long job signals before the short job
    // reaches its HALT. The request bit is latched in the IR, so the
    // join must still happen.
    Machine m;
    Program p = assemble(R"(
        .org 13
            jmp joined
        .org 0x20
        late_arriver:
            ldi r0, 0x01
            mov imr, r0       ; mask the join level until arrival
            ldi r0, 300       ; now the *arriver* is slow
        spin:
            subi r0, r0, 1
            cmpi r0, 0
            bne  spin
            ldi r1, 3
            stmd r1, [0x20]
            ldi r0, 0x21
            mov imr, r0       ; arrive: accept the join signal
            halt
        joined:
            ldmd r1, [0x20]
            addi r1, r1, 10
            stmd r1, [0x22]
            clri 5
            halt
        early_signaler:
            ldi r1, 4
            stmd r1, [0x21]
            swi 1, 5
            halt
    )");
    m.load(p);
    m.startStream(1, p.symbol("late_arriver"));
    m.startStream(2, p.symbol("early_signaler"));
    m.run(20000);
    ASSERT_TRUE(m.idle());
    EXPECT_EQ(m.internalMemory().read(0x22), 13);
}

} // namespace
} // namespace disc
