/**
 * @file
 * Cross-shard session migration tests: the park → detach → digest →
 * rename → adopt → restore protocol (serve/session.hh), exercised as
 * a randomized soak with digests compared at every hop, plus the
 * crash-consistency cases — a kill between the rename and the
 * restore must be recovered by the target's restoreDir(), and a stale
 * write-side temp file must be ignored, not resurrected.
 */

#include <filesystem>
#include <fstream>
#include <random>
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "serve/session.hh"
#include "sim/digest.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

using namespace disc;
using namespace disc::serve;

namespace
{

/** An endless, never-idle workload with a per-session constant. */
std::string
loopSource(unsigned k)
{
    return strprintf(".org 0x20\n"
                     "main:\n"
                     "    ldi  r0, %u\n"
                     "    ldi  r1, 1\n"
                     "loop:\n"
                     "    add  r1, r1, r0\n"
                     "    mul  r2, r1, r0\n"
                     "    sub  r3, r2, r1\n"
                     "    jmp  loop\n",
                     3 + k);
}

SessionSpec
loopSpec(const std::string &id, TenantId tenant, unsigned k)
{
    SessionSpec spec;
    spec.id = id;
    spec.tenant = tenant;
    spec.source = loopSource(k);
    return spec;
}

/** The digest an offline machine reaches after @p cycles. */
std::uint64_t
offlineDigest(unsigned k, Cycle cycles)
{
    Program prog = assemble(loopSource(k));
    Machine m;
    m.load(prog);
    ExecTrace trace(kSessionTraceEntries);
    m.setExecTrace(&trace);
    m.startStream(0, prog.symbol("main"));
    m.run(cycles, false);
    return runDigest(m, trace);
}

/** A fresh, empty state directory for one test. */
std::string
freshDir(const std::string &name)
{
    std::string dir =
        (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(Migration, RoundTripAcrossRegistriesKeepsDigest)
{
    SessionRegistry a(freshDir("disc_mig_test_rt_a"), 4);
    SessionRegistry b(freshDir("disc_mig_test_rt_b"), 4);
    a.open(loopSpec("m0", 0, 0));
    {
        SessionLease lease = a.acquire("m0");
        lease->machine().run(500, false);
    }

    MigrationResult out = migrateSession(a, b, "m0");
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.digest, offlineDigest(0, 500));
    EXPECT_FALSE(a.has("m0"));
    ASSERT_TRUE(b.has("m0"));
    EXPECT_FALSE(std::filesystem::exists(a.parkPath("m0")));
    EXPECT_TRUE(std::filesystem::exists(b.parkPath("m0")));

    // Run on the new home, then move back: the digest chain holds.
    {
        SessionLease lease = b.acquire("m0");
        lease->machine().run(500, false);
    }
    MigrationResult back = migrateSession(b, a, "m0");
    ASSERT_TRUE(back.ok) << back.error;
    EXPECT_EQ(back.digest, offlineDigest(0, 1000));
    {
        SessionLease lease = a.acquire("m0");
        EXPECT_EQ(sessionDigest(*lease), offlineDigest(0, 1000));
    }
}

TEST(Migration, RandomizedSoakDigestsCheckedEveryHop)
{
    constexpr unsigned kShards = 3;
    constexpr unsigned kSessions = 6;
    constexpr unsigned kRounds = 60;
    constexpr Cycle kChunk = 100;

    std::vector<std::unique_ptr<SessionRegistry>> shards;
    for (unsigned i = 0; i < kShards; ++i)
        shards.push_back(std::make_unique<SessionRegistry>(
            freshDir(strprintf("disc_mig_test_soak_%u", i)), 2));

    std::vector<unsigned> home(kSessions);
    std::vector<Cycle> cycles(kSessions, 0);
    for (unsigned s = 0; s < kSessions; ++s) {
        home[s] = s % kShards;
        shards[home[s]]->open(
            loopSpec(strprintf("k%u", s), 0, s));
    }

    std::mt19937 rng(0xd15c);
    unsigned moves = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        unsigned s = rng() % kSessions;
        std::string id = strprintf("k%u", s);

        // Run a chunk wherever the session currently lives.
        {
            SessionLease lease = shards[home[s]]->acquire(id);
            lease->machine().run(kChunk, false);
            cycles[s] += kChunk;
        }

        // Hop to a random other shard, digest-checked on both sides:
        // migrateSession() compares pre-move park-file digest against
        // the restored session; we additionally pin the pre-move
        // digest to the offline ground truth.
        unsigned to = (home[s] + 1 + rng() % (kShards - 1)) % kShards;
        MigrationResult out =
            migrateSession(*shards[home[s]], *shards[to], id);
        ASSERT_TRUE(out.ok)
            << id << " round " << round << ": " << out.error;
        EXPECT_EQ(out.digest, offlineDigest(s, cycles[s]))
            << id << " round " << round;
        home[s] = to;
        ++moves;
    }
    EXPECT_EQ(moves, kRounds);

    // Final cross-check: every session, wherever it ended up, holds
    // exactly the state its cycle count demands.
    for (unsigned s = 0; s < kSessions; ++s) {
        SessionLease lease =
            shards[home[s]]->acquire(strprintf("k%u", s));
        EXPECT_EQ(sessionDigest(*lease), offlineDigest(s, cycles[s]))
            << "session k" << s;
        EXPECT_EQ(lease->machine().stats().cycles, cycles[s]);
    }
}

TEST(Migration, BusySessionAbortsMoveGracefully)
{
    SessionRegistry a(freshDir("disc_mig_test_busy_a"), 4);
    SessionRegistry b(freshDir("disc_mig_test_busy_b"), 4);
    a.open(loopSpec("busy", 0, 1));
    {
        // A held lease pins the session: the move must refuse and
        // leave it exactly where it was.
        SessionLease lease = a.acquire("busy");
        MigrationResult out = migrateSession(a, b, "busy");
        EXPECT_FALSE(out.ok);
        EXPECT_NE(out.error.find("busy"), std::string::npos);
        EXPECT_TRUE(a.has("busy"));
        EXPECT_FALSE(b.has("busy"));
        lease->machine().run(100, false);
    }
    // Released, the same move goes through.
    MigrationResult out = migrateSession(a, b, "busy");
    ASSERT_TRUE(out.ok) << out.error;
    SessionLease lease = b.acquire("busy");
    EXPECT_EQ(sessionDigest(*lease), offlineDigest(1, 100));
}

TEST(Migration, SameRegistryAndUnknownIdRefused)
{
    SessionRegistry a(freshDir("disc_mig_test_self_a"), 4);
    SessionRegistry b(freshDir("disc_mig_test_self_b"), 4);
    a.open(loopSpec("solo", 0, 2));
    MigrationResult self = migrateSession(a, a, "solo");
    EXPECT_FALSE(self.ok);
    EXPECT_TRUE(a.has("solo"));
    MigrationResult ghost = migrateSession(a, b, "ghost");
    EXPECT_FALSE(ghost.ok);
    EXPECT_FALSE(b.has("ghost"));
}

TEST(Migration, DetachRefusesResidentOrPinnedSessions)
{
    SessionRegistry a(freshDir("disc_mig_test_detach"), 4);
    a.open(loopSpec("d0", 0, 3));
    // Resident (never parked): detach must refuse.
    EXPECT_EQ(a.detach("d0"), "");
    ASSERT_TRUE(a.evict("d0"));
    // Parked and idle: detach hands over the park file, which stays
    // on disk while the registry forgets the session.
    std::string path = a.detach("d0");
    ASSERT_FALSE(path.empty());
    EXPECT_FALSE(a.has("d0"));
    EXPECT_TRUE(std::filesystem::exists(path));
    // The orphaned file re-registers cleanly (the rollback path).
    EXPECT_EQ(a.adoptFile(path), "d0");
    ASSERT_TRUE(a.has("d0"));
    SessionLease lease = a.acquire("d0");
    EXPECT_EQ(sessionDigest(*lease), offlineDigest(3, 0));
}

TEST(Migration, AdoptRejectsForeignAndMalformedFiles)
{
    SessionRegistry a(freshDir("disc_mig_test_adopt_a"), 4);
    SessionRegistry b(freshDir("disc_mig_test_adopt_b"), 4);
    a.open(loopSpec("f0", 0, 4));
    ASSERT_TRUE(a.evict("f0"));
    // A file still sitting in a's dir is not at b's home path for the
    // session — adopting it from there must refuse (the rename into
    // the target dir is a protocol step, not a nicety).
    EXPECT_THROW(b.adoptFile(a.parkPath("f0")), FatalError);
    // Garbage on disk is a fatal parse, not UB.
    std::string junk = b.stateDir() + "/junk.dsess";
    {
        std::ofstream out(junk, std::ios::binary);
        out << "not a session";
    }
    EXPECT_THROW(b.adoptFile(junk), FatalError);
}

TEST(Migration, KillBetweenRenameAndRestoreIsRecovered)
{
    std::string dir_a = freshDir("disc_mig_test_crash_a");
    std::string dir_b = freshDir("disc_mig_test_crash_b");
    std::uint64_t pre_move;
    {
        SessionRegistry a(dir_a, 4);
        SessionRegistry b(dir_b, 4); // creates dir_b
        a.open(loopSpec("c0", 0, 5));
        {
            SessionLease lease = a.acquire("c0");
            lease->machine().run(700, false);
        }
        // Replay the migration by hand and "crash" at the worst
        // moment: after the rename committed the file to the target
        // shard, before the target ever adopted it.
        ASSERT_TRUE(a.evict("c0"));
        std::string from = a.detach("c0");
        ASSERT_FALSE(from.empty());
        pre_move = parkFileDigest(from);
        std::filesystem::rename(from, b.parkPath("c0"));
        // ...process dies here; both registries go away.
    }
    // The restarted target finds the file in its directory and owns
    // the session; the source has nothing — no split brain.
    SessionRegistry a2(dir_a, 4);
    SessionRegistry b2(dir_b, 4);
    EXPECT_EQ(a2.restoreDir(), 0u);
    EXPECT_EQ(b2.restoreDir(), 1u);
    ASSERT_TRUE(b2.has("c0"));
    {
        SessionLease lease = b2.acquire("c0");
        EXPECT_EQ(sessionDigest(*lease), pre_move);
        EXPECT_EQ(sessionDigest(*lease), offlineDigest(5, 700));
        // And it still runs bit-identically from there.
        lease->machine().run(300, false);
        EXPECT_EQ(sessionDigest(*lease), offlineDigest(5, 1000));
    }
}

TEST(Migration, StaleTmpFileIgnoredAndRemovedOnRestart)
{
    std::string dir = freshDir("disc_mig_test_tmp");
    {
        SessionRegistry reg(dir, 4);
        reg.open(loopSpec("t0", 0, 6));
        {
            SessionLease lease = reg.acquire("t0");
            lease->machine().run(400, false);
        }
        reg.parkAll();
    }
    // A crash mid-park leaves a half-written temp file behind. It was
    // never the durable copy: restart must drop it and resume only
    // from the committed park file.
    std::string stale = dir + "/t0.dsess.tmp";
    {
        std::ofstream out(stale, std::ios::binary);
        out << "half-written checkpoint";
    }
    SessionRegistry reg2(dir, 4);
    EXPECT_EQ(reg2.restoreDir(), 1u);
    EXPECT_FALSE(std::filesystem::exists(stale));
    SessionLease lease = reg2.acquire("t0");
    EXPECT_EQ(sessionDigest(*lease), offlineDigest(6, 400));
}

TEST(Migration, ConcurrentMigrationsOfDisjointSessionsAreClean)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kHops = 8;
    SessionRegistry a(freshDir("disc_mig_test_conc_a"), kThreads);
    SessionRegistry b(freshDir("disc_mig_test_conc_b"), kThreads);
    for (unsigned i = 0; i < kThreads; ++i)
        a.open(loopSpec(strprintf("p%u", i), 0, i));

    // Each thread ping-pongs its own session between the registries,
    // running a chunk on arrival — migrations in both directions at
    // once, sharing the two registry locks and the two directories.
    std::vector<std::thread> workers;
    std::atomic<unsigned> failures{0};
    for (unsigned i = 0; i < kThreads; ++i) {
        workers.emplace_back([&, i] {
            std::string id = strprintf("p%u", i);
            for (unsigned hop = 0; hop < kHops; ++hop) {
                SessionRegistry &src = hop % 2 ? b : a;
                SessionRegistry &dst = hop % 2 ? a : b;
                {
                    SessionLease lease = src.acquire(id);
                    lease->machine().run(50, false);
                }
                MigrationResult out = migrateSession(src, dst, id);
                if (!out.ok)
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(failures.load(), 0u);
    for (unsigned i = 0; i < kThreads; ++i) {
        SessionLease lease = a.acquire(strprintf("p%u", i));
        EXPECT_EQ(sessionDigest(*lease),
                  offlineDigest(i, kHops * 50))
            << "session p" << i;
    }
}

} // namespace
