/**
 * @file
 * Tests for the real-time layer: partition policies and the RTS
 * task-set experiment harness (response times, deadline misses, the
 * DISC-vs-conventional latency argument).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/logging.hh"
#include "rts/schedule.hh"
#include "rts/system.hh"

namespace disc
{
namespace
{

// ---- Partition policies ----

TEST(Shares, EvenWeightsSplitEvenly)
{
    auto s = proportionalShares({1.0, 1.0, 1.0, 1.0});
    for (unsigned v : s)
        EXPECT_EQ(v, 4u);
}

TEST(Shares, SumsToSixteen)
{
    for (auto w : std::vector<std::array<double, 4>>{
             {8, 4, 2, 2}, {1, 0, 0, 0}, {0.7, 0.2, 0.05, 0.05},
             {5, 4, 3, 1}, {0.01, 0.01, 0.01, 10.0}}) {
        auto s = proportionalShares(w);
        EXPECT_EQ(std::accumulate(s.begin(), s.end(), 0u),
                  kScheduleSlots);
    }
}

TEST(Shares, Figure33Partition)
{
    // T/2, T/6, T/6, T/6 -> 8, ~2.7 each; rounded shares keep order.
    auto s = proportionalShares({0.5, 1.0 / 6, 1.0 / 6, 1.0 / 6});
    EXPECT_EQ(s[0], 8u);
    EXPECT_GE(s[1], 2u);
    EXPECT_LE(s[1], 3u);
}

TEST(Shares, PositiveWeightGetsAtLeastOneSlot)
{
    auto s = proportionalShares({100.0, 0.001, 0.001, 0.001});
    EXPECT_GE(s[1], 1u);
    EXPECT_GE(s[2], 1u);
    EXPECT_GE(s[3], 1u);
    EXPECT_EQ(std::accumulate(s.begin(), s.end(), 0u), kScheduleSlots);
}

TEST(Shares, ZeroWeightGetsNothing)
{
    auto s = proportionalShares({1.0, 1.0, 0.0, 0.0});
    EXPECT_EQ(s[2], 0u);
    EXPECT_EQ(s[3], 0u);
    EXPECT_EQ(s[0] + s[1], kScheduleSlots);
}

TEST(Shares, RejectsBadWeights)
{
    EXPECT_THROW(proportionalShares({0, 0, 0, 0}), FatalError);
    EXPECT_THROW(proportionalShares({-1, 2, 0, 0}), FatalError);
}

TEST(Shares, GeneralSchedulingFromDemands)
{
    // Tasks with work/period demands; shares proportional.
    std::array<double, 4> demands{taskDemand(300, 1000),
                                  taskDemand(100, 1000),
                                  taskDemand(50, 500), 0.0};
    auto s = generalSchedulingShares(demands);
    EXPECT_GT(s[0], s[1]);
    EXPECT_EQ(std::accumulate(s.begin(), s.end(), 0u), kScheduleSlots);
    EXPECT_EQ(s[3], 0u);
}

TEST(Shares, TaskDemandValidation)
{
    EXPECT_THROW(taskDemand(10, 0), FatalError);
    EXPECT_THROW(taskDemand(-1, 10), FatalError);
    EXPECT_DOUBLE_EQ(taskDemand(250, 1000), 0.25);
}

// ---- RTS system harness ----

TEST(RtsSystemTest, SingleTaskMeetsDeadlines)
{
    RtsConfig cfg;
    cfg.horizon = 50000;
    RtsSystem sys({{"tick", /*stream=*/1, /*bit=*/3, /*period=*/400,
                    /*deadline=*/0, /*workLoops=*/10, /*ioAccesses=*/1}},
                  cfg);
    RtsReport rep = sys.run();
    ASSERT_EQ(rep.tasks.size(), 1u);
    const RtsTaskResult &t = rep.tasks[0];
    EXPECT_GE(t.activations, 120u);
    EXPECT_EQ(t.deadlineMisses, 0u);
    EXPECT_GT(t.completions, 0u);
    // Handler work ~ 30 instructions + one slow I/O; response is far
    // below the 400-cycle period.
    EXPECT_LT(t.worstResponse, 200u);
    EXPECT_GT(rep.backgroundProgress, 0u);
    // The wait-state breakdown accounts for every cycle of the run.
    for (StreamId s = 0; s < kNumStreams; ++s) {
        EXPECT_EQ(rep.readyCycles[s] + rep.waitAbiCycles[s] +
                      rep.inactiveCycles[s],
                  cfg.horizon)
            << "stream " << unsigned(s);
    }
    // Stream 1 hosts the only handler; it should see handler activity
    // and I/O waits, while stream 3 stays inactive throughout.
    EXPECT_GT(rep.readyCycles[1], 0u);
    EXPECT_GT(rep.waitAbiCycles[1], 0u);
    EXPECT_EQ(rep.inactiveCycles[3], cfg.horizon);
}

TEST(RtsSystemTest, CompletionsTrackActivations)
{
    RtsConfig cfg;
    cfg.horizon = 40000;
    RtsSystem sys({{"a", 1, 2, 500, 0, 5, 0},
                   {"b", 2, 5, 700, 0, 5, 0}},
                  cfg);
    RtsReport rep = sys.run();
    for (const auto &t : rep.tasks) {
        EXPECT_GT(t.activations, 10u);
        // All but possibly the in-flight last activation completed.
        EXPECT_GE(t.completions + 2, t.activations) << t.name;
    }
}

TEST(RtsSystemTest, DedicatedStreamLatencyIsSmall)
{
    // The headline claim: a dedicated stream starts the handler in a
    // few cycles even with a busy background.
    RtsConfig cfg;
    cfg.horizon = 60000;
    RtsSystem sys({{"fast", 1, 7, 300, 0, 4, 0}}, cfg);
    RtsReport rep = sys.run();
    EXPECT_LT(rep.meanVectorLatency, 6.0);
    EXPECT_LT(rep.worstVectorLatency, 20u);
}

TEST(RtsSystemTest, ConventionalOverheadInflatesResponse)
{
    // Same task set, same stream assignment; the conventional model
    // pays a register save/restore per activation.
    auto response_with = [](unsigned overhead) {
        RtsConfig cfg;
        cfg.horizon = 60000;
        cfg.contextSwitchOverhead = overhead;
        RtsSystem sys({{"t", 0, 4, 500, 0, 8, 1}}, cfg);
        RtsReport rep = sys.run();
        return rep.tasks[0].response.mean();
    };
    double lean = response_with(0);
    double fat = response_with(16);
    EXPECT_GT(fat, lean + 10.0);
}

TEST(RtsSystemTest, SharedStreamDelaysLowPriority)
{
    // Two tasks on one stream: the low-priority handler's worst case
    // includes the high-priority one's execution. On separate streams
    // both worst cases shrink.
    RtsConfig cfg;
    cfg.horizon = 80000;
    cfg.backgroundLoad = false;
    RtsSystem shared({{"hi", 1, 6, 251, 0, 30, 0},
                      {"lo", 1, 2, 379, 0, 30, 0}},
                     cfg);
    RtsReport rep_shared = shared.run();

    RtsSystem split({{"hi", 1, 6, 251, 0, 30, 0},
                     {"lo", 2, 2, 379, 0, 30, 0}},
                    cfg);
    RtsReport rep_split = split.run();

    const auto &lo_shared = rep_shared.tasks[1];
    const auto &lo_split = rep_split.tasks[1];
    EXPECT_GT(lo_shared.worstResponse, lo_split.worstResponse);
}

TEST(RtsSystemTest, BackgroundKeepsRunningDuringInterrupts)
{
    // Dynamic reallocation: interrupts on stream 1 must not stop the
    // background on stream 0 from making progress.
    RtsConfig with_tasks;
    with_tasks.horizon = 30000;
    RtsSystem sys({{"noisy", 1, 5, 100, 0, 12, 1}}, with_tasks);
    RtsReport rep = sys.run();
    // Background is a 4-instruction dependent loop with a jump; alone
    // it advances roughly once per ~8-10 cycles. Demand that the busy
    // interrupt load cost it less than half its solo progress.
    EXPECT_GT(rep.backgroundProgress, 30000u / 20);
}

TEST(RtsSystemTest, ValidatesTaskParameters)
{
    RtsConfig cfg;
    EXPECT_THROW(RtsSystem({}, cfg), FatalError);
    EXPECT_THROW(RtsSystem({{"x", 9, 3, 500, 0, 1, 0}}, cfg),
                 FatalError);
    EXPECT_THROW(RtsSystem({{"x", 1, 0, 500, 0, 1, 0}}, cfg),
                 FatalError);
    EXPECT_THROW(RtsSystem({{"x", 1, 3, 5, 0, 1, 0}}, cfg), FatalError);
    // Duplicate (stream, bit).
    EXPECT_THROW(RtsSystem({{"a", 1, 3, 500, 0, 1, 0},
                            {"b", 1, 3, 700, 0, 1, 0}},
                           cfg),
                 FatalError);
}

TEST(RtsSystemTest, ProgramTextIsValidAssembly)
{
    RtsConfig cfg;
    RtsSystem sys({{"probe", 3, 1, 1000, 0, 2, 1}}, cfg);
    EXPECT_NE(sys.programText().find("handler_probe"),
              std::string::npos);
    EXPECT_NE(sys.programText().find("reti"), std::string::npos);
}

} // namespace
} // namespace disc
