/**
 * @file
 * Global determinism properties: identical runs produce identical
 * cycle-level statistics, and race-free multi-stream programs produce
 * identical architectural results at every pipeline depth (timing
 * changes, results must not).
 */

#include <gtest/gtest.h>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace disc
{
namespace
{

/** Multi-stream, race-free program: disjoint memory per stream. */
const char *kRaceFree = R"(
    .org 0x20
    entry:
        ; each stream derives its own data area from its id in SR
        mov  r7, sr
        shr  r7, r7, g2       ; g2 = 4: stream id from SR[5:4]
        andi r7, r7, 3
        ldi  r6, 16
        mul  r6, r7, r6
        addi r6, r6, 0x40     ; base = 0x40 + 16*id
        ldi  r5, 10           ; iterations
        ldi  r4, 0            ; accumulator
    loop:
        add  r4, r4, r5
        call helper
        add  r4, r4, g1
        subi r5, r5, 1
        cmpi r5, 0
        bne  loop
        stm  r4, [r6]
        halt
    helper:
        winc
        ldi  r0, 3
        mul  g1, r0, r0       ; g1 = 9 (same for every caller: benign)
        ret 1
)";

std::string
machineFingerprint(const Machine &m)
{
    const MachineStats &st = m.stats();
    std::string fp = strprintf(
        "c=%llu b=%llu r=%llu j=%llu q=%llu w=%llu d=%llu bub=%llu",
        (unsigned long long)st.cycles,
        (unsigned long long)st.busyCycles,
        (unsigned long long)st.totalRetired,
        (unsigned long long)st.redirects,
        (unsigned long long)st.squashedJump,
        (unsigned long long)st.squashedWait,
        (unsigned long long)st.squashedDeact,
        (unsigned long long)st.bubbles);
    for (Addr a = 0x40; a < 0x80; ++a)
        fp += strprintf(" %04x", m.internalMemory().read(a));
    return fp;
}

TEST(Determinism, IdenticalRunsMatchCycleForCycle)
{
    Program p = assemble(kRaceFree);
    auto run = [&] {
        Machine m;
        m.load(p);
        m.writeReg(0, reg::G2, 4);
        for (StreamId s = 0; s < 4; ++s)
            m.startStream(s, p.symbol("entry"));
        m.run(100000);
        EXPECT_TRUE(m.idle());
        return machineFingerprint(m);
    };
    EXPECT_EQ(run(), run());
}

class DepthIndependence : public ::testing::TestWithParam<unsigned>
{};

TEST_P(DepthIndependence, RaceFreeResultsMatchReferenceDepth)
{
    Program p = assemble(kRaceFree);
    auto results = [&](unsigned depth) {
        MachineConfig cfg;
        cfg.pipeDepth = depth;
        Machine m(cfg);
        m.load(p);
        m.writeReg(0, reg::G2, 4);
        for (StreamId s = 0; s < 4; ++s)
            m.startStream(s, p.symbol("entry"));
        m.run(200000);
        EXPECT_TRUE(m.idle()) << "depth " << depth;
        std::string out;
        for (Addr a = 0x40; a < 0x80; ++a)
            out += strprintf(" %04x", m.internalMemory().read(a));
        return out;
    };
    EXPECT_EQ(results(GetParam()), results(kDisc1PipeDepth))
        << "depth " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthIndependence,
                         ::testing::Values(3u, 5u, 6u, 8u));

TEST(Determinism, SchedulerModeChangesTimingNotResults)
{
    Program p = assemble(kRaceFree);
    auto results = [&](Scheduler::Mode mode) {
        MachineConfig cfg;
        cfg.schedMode = mode;
        Machine m(cfg);
        m.load(p);
        m.writeReg(0, reg::G2, 4);
        for (StreamId s = 0; s < 4; ++s)
            m.startStream(s, p.symbol("entry"));
        m.run(400000);
        EXPECT_TRUE(m.idle());
        std::string out;
        for (Addr a = 0x40; a < 0x80; ++a)
            out += strprintf(" %04x", m.internalMemory().read(a));
        return out;
    };
    EXPECT_EQ(results(Scheduler::Mode::Dynamic),
              results(Scheduler::Mode::Static));
}

TEST(Determinism, DeviceTimingPerturbsScheduleNotValues)
{
    // Same program against external memories of different speeds:
    // wait lengths change, final values must not.
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10
            ldi  r1, 6
            ldi  r2, 0
        loop:
            ld   r3, [g0]
            add  r2, r2, r3
            st   r2, [g0+1]
            subi r1, r1, 1
            cmpi r1, 0
            bne  loop
            stmd r2, [0x90]
            halt
    )");
    auto result = [&](unsigned latency) {
        Machine m;
        ExternalMemoryDevice dev(16, latency);
        dev.poke(0, 5);
        m.attachDevice(0x1000, 16, &dev);
        m.load(p);
        m.startStream(0, p.symbol("main"));
        m.run(100000);
        EXPECT_TRUE(m.idle());
        return m.internalMemory().read(0x90);
    };
    Word fast = result(0);
    EXPECT_EQ(fast, 30);
    for (unsigned latency : {1u, 3u, 9u, 20u})
        EXPECT_EQ(result(latency), fast) << latency;
}

} // namespace
} // namespace disc
