/**
 * @file
 * Micro-op dispatch equivalence: executing through the pre-resolved
 * handler tables (the default) and through the legacy opcode switches
 * (DISC_NO_UOP) must be bit-identical — same retired-instruction
 * trace, same statistics, same checkpoint bytes, same architectural
 * end state in both the pipelined machine and the sequential
 * interpreter. Also covers the uop map itself: every (opcode, cond)
 * pair must resolve to a handler that round-trips to its opcode.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "isa/uops.hh"
#include "sim/interp.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "verify/differential.hh"
#include "verify/generator.hh"
#include "verify/invariants.hh"

#ifndef DISC_SOURCE_DIR
#define DISC_SOURCE_DIR "."
#endif

namespace disc
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing sample " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---- The uop map ----

TEST(UopMap, EveryOpcodeResolvesAndRoundTrips)
{
    for (unsigned op = 0; op < kNumOpcodes; ++op) {
        for (unsigned c = 0; c < 8; ++c) {
            Uop u = uopFor(static_cast<Opcode>(op),
                           static_cast<Cond>(c));
            ASSERT_NE(u, Uop::Invalid)
                << "opcode " << op << " cond " << c;
            ASSERT_LT(static_cast<unsigned>(u), kNumUops);
            EXPECT_EQ(uopOpcode(u), static_cast<Opcode>(op))
                << "opcode " << op << " cond " << c;
        }
    }
}

TEST(UopMap, BranchSplitsByCondition)
{
    // BR is the one opcode that fans out: eight uops, one per cond.
    bool seen[kNumUops] = {};
    for (unsigned c = 0; c < 8; ++c) {
        Uop u = uopFor(Opcode::BR, static_cast<Cond>(c));
        EXPECT_FALSE(seen[static_cast<unsigned>(u)])
            << "cond " << c << " aliases another branch uop";
        seen[static_cast<unsigned>(u)] = true;
        EXPECT_EQ(uopOpcode(u), Opcode::BR);
    }
    // Non-branch opcodes ignore cond entirely.
    for (unsigned c = 1; c < 8; ++c) {
        EXPECT_EQ(uopFor(Opcode::ADD, static_cast<Cond>(c)),
                  uopFor(Opcode::ADD, Cond::EQ));
    }
}

TEST(UopMap, NamesAreUnique)
{
    for (unsigned a = 0; a < kNumUops; ++a) {
        for (unsigned b = a + 1; b < kNumUops; ++b) {
            EXPECT_NE(uopName(static_cast<Uop>(a)),
                      uopName(static_cast<Uop>(b)))
                << "uops " << a << " and " << b;
        }
    }
}

// ---- Machine equivalence ----

/** Everything one run produces that the other must reproduce. */
struct RunRecord
{
    std::string trace;
    std::vector<std::uint8_t> checkpoint;
    MachineStats stats;
};

/** Stats fields that must match between dispatch paths, as text. */
std::string
statsFingerprint(const MachineStats &st)
{
    std::string fp = strprintf(
        "c=%llu b=%llu r=%llu j=%llu q=%llu w=%llu d=%llu bub=%llu "
        "rd=%llu wr=%llu rej=%llu vec=%llu",
        (unsigned long long)st.cycles, (unsigned long long)st.busyCycles,
        (unsigned long long)st.totalRetired,
        (unsigned long long)st.redirects,
        (unsigned long long)st.squashedJump,
        (unsigned long long)st.squashedWait,
        (unsigned long long)st.squashedDeact,
        (unsigned long long)st.bubbles,
        (unsigned long long)st.externalReads,
        (unsigned long long)st.externalWrites,
        (unsigned long long)st.busBusyRejections,
        (unsigned long long)st.vectorsTaken);
    for (StreamId s = 0; s < kNumStreams; ++s) {
        fp += strprintf(" s%u=%llu/%llu/%llu/%llu", unsigned(s),
                        (unsigned long long)st.retired[s],
                        (unsigned long long)st.readyCycles[s],
                        (unsigned long long)st.waitAbiCycles[s],
                        (unsigned long long)st.inactiveCycles[s]);
    }
    return fp;
}

void
expectEquivalent(const RunRecord &uops, const RunRecord &legacy)
{
    EXPECT_EQ(uops.trace, legacy.trace);
    EXPECT_EQ(uops.checkpoint, legacy.checkpoint);
    EXPECT_EQ(statsFingerprint(uops.stats),
              statsFingerprint(legacy.stats));
}

/** Run a program through both dispatch paths and demand identity. */
template <typename Setup>
void
checkSample(const Program &p, Cycle budget, Setup setup)
{
    auto record = [&](bool use_uops) {
        Machine m;
        m.setUopDispatch(use_uops);
        m.load(p);
        setup(m);
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(budget);
        EXPECT_TRUE(m.idle());
        return RunRecord{trace.render(), m.saveState(), m.stats()};
    };
    RunRecord uops = record(true);
    RunRecord legacy = record(false);
    expectEquivalent(uops, legacy);
}

TEST(UopEquivalence, GcdSample)
{
    Program p = assemble(
        readFile(std::string(DISC_SOURCE_DIR) + "/examples/asm/gcd.s"));
    checkSample(p, 10000,
                [&](Machine &m) { m.startStream(0, p.symbol("main")); });
}

TEST(UopEquivalence, ParallelSumSample)
{
    Program p = assemble(readFile(std::string(DISC_SOURCE_DIR) +
                                  "/examples/asm/parallel_sum.s"));
    checkSample(p, 50000, [&](Machine &m) {
        m.startStream(0, p.symbol("combine"));
        m.startStream(1, p.symbol("worker_a"));
        m.startStream(2, p.symbol("worker_b"));
        m.startStream(3, p.symbol("worker_c"));
    });
}

/** External accesses and wait states cross the LD/ST handler. */
TEST(UopEquivalence, SlowDeviceLoadLoop)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10     ; device at 0x1000
            ldi  r1, 20       ; iterations
            ldi  r2, 0        ; accumulator
        loop:
            ld   r3, [g0]
            add  r2, r2, r3
            st   r2, [g0]
            subi r1, r1, 1
            cmpi r1, 0
            bne  loop
            stmd r2, [0x40]
            halt
    )");
    auto record = [&](bool use_uops) {
        Machine m;
        m.setUopDispatch(use_uops);
        m.load(p);
        ExternalMemoryDevice dev(64, 60);
        dev.poke(0, 5);
        m.attachDevice(0x1000, 64, &dev);
        m.startStream(0, p.symbol("main"));
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(200000);
        EXPECT_TRUE(m.idle());
        return RunRecord{trace.render(), m.saveState(), m.stats()};
    };
    expectEquivalent(record(true), record(false));
}

/** Vectored interrupts exercise CALL/RETI and the vector stage. */
TEST(UopEquivalence, TimerDrivenInterrupts)
{
    Program p = assemble(R"(
        .org 3              ; stream 0, level 3: timer tick
            jmp tick
        .org 0x20
        main:
            ldi  r1, 0
            stmd r1, [0x40]
            ldi  r2, 6       ; ticks to count
            ldi  r3, 0x09
            mov  imr, r3     ; unmask levels 0 and 3
        wait_loop:
            ldmd r1, [0x40]
            cmp  r1, r2
            bne  wait_loop
            halt
        tick:
            ldmd r1, [0x40]
            addi r1, r1, 1
            stmd r1, [0x40]
            clri 3
            reti
    )");
    auto record = [&](bool use_uops) {
        Machine m;
        m.setUopDispatch(use_uops);
        m.load(p);
        TimerDevice timer(700, 0, 3);
        m.attachDevice(0x2000, 4, &timer);
        m.startStream(0, p.symbol("main"));
        ExecTrace trace(1u << 20);
        m.setExecTrace(&trace);
        m.run(100000, /*stop_when_idle=*/true);
        EXPECT_TRUE(m.idle());
        EXPECT_EQ(m.internalMemory().read(0x40), 6);
        return RunRecord{trace.render(), m.saveState(), m.stats()};
    };
    expectEquivalent(record(true), record(false));
}

/** Generated multi-stream workloads: both paths, several seeds. */
TEST(UopEquivalence, GeneratedWorkloads)
{
    for (std::uint64_t seed : {13u, 29u, 53u}) {
        GenOptions opts;
        MultiStreamProgram msp = generateMultiStream(seed, opts);
        auto record = [&](bool use_uops) {
            MachineRig rig(msp);
            rig.machine().setUopDispatch(use_uops);
            ExecTrace trace(1u << 20);
            rig.machine().setExecTrace(&trace);
            rig.start();
            rig.machine().run(rig.cycleBudget());
            EXPECT_TRUE(rig.machine().idle()) << "seed " << seed;
            return RunRecord{trace.render(), rig.machine().saveState(),
                             rig.machine().stats()};
        };
        expectEquivalent(record(true), record(false));
    }
}

/**
 * The verification safety net must hold on both dispatch paths:
 * generated workloads run under the invariant checker, then the
 * architectural end state is diffed against the sequential reference
 * interpreter (itself running its own dispatch table).
 */
TEST(UopEquivalence, DifferentialAndInvariantsBothPaths)
{
    for (bool use_uops : {true, false}) {
        for (std::uint64_t seed : {7u, 19u}) {
            GenOptions opts;
            MultiStreamProgram msp = generateMultiStream(seed, opts);
            MachineConfig cfg;
            cfg.uopDispatch = use_uops;
            MachineRig rig(msp, cfg);
            InvariantChecker chk(rig.machine());
            rig.machine().setObserver(&chk);
            rig.start();
            rig.machine().run(rig.cycleBudget());
            EXPECT_TRUE(rig.machine().idle())
                << "seed " << seed << " uops " << use_uops;
            for (const std::string &d : compareWithReference(rig))
                ADD_FAILURE() << "seed " << seed << " uops "
                              << use_uops << ": " << d;
            EXPECT_TRUE(chk.ok()) << chk.report();
            rig.machine().setObserver(nullptr);
        }
    }
}

// ---- Interpreter equivalence ----

/** Architectural fingerprint of a finished interpreter. */
std::string
interpFingerprint(const Interp &ip)
{
    std::string fp =
        strprintf("pc=%u halted=%d ovf=%llu ill=%llu", ip.pc(),
                  ip.halted() ? 1 : 0,
                  (unsigned long long)ip.overflowEvents(),
                  (unsigned long long)ip.illegalEvents());
    for (unsigned r = 0; r < 16; ++r)
        fp += strprintf(" r%u=%04x", r, ip.readReg(r));
    for (Addr a = 0; a < 0x80; ++a)
        fp += strprintf(" m%02x=%04x", a, ip.internalMemory().read(a));
    return fp;
}

TEST(UopEquivalence, InterpreterBothPaths)
{
    Program p = assemble(
        readFile(std::string(DISC_SOURCE_DIR) + "/examples/asm/gcd.s"));
    auto record = [&](bool use_uops) {
        Interp ip;
        ip.setUopDispatch(use_uops);
        ip.load(p);
        ip.setPc(p.symbol("main"));
        ip.run(100000);
        EXPECT_TRUE(ip.halted());
        return interpFingerprint(ip);
    };
    EXPECT_EQ(record(true), record(false));
}

// ---- Environment override ----

TEST(UopDispatch, EnvironmentOverrideDisables)
{
    ::setenv("DISC_NO_UOP", "1", 1);
    Machine off;
    EXPECT_FALSE(off.uopDispatchEnabled());
    Interp ioff;
    EXPECT_FALSE(ioff.uopDispatchEnabled());
    ::setenv("DISC_NO_UOP", "0", 1);
    Machine zero;
    EXPECT_TRUE(zero.uopDispatchEnabled());
    ::unsetenv("DISC_NO_UOP");
    Machine on;
    EXPECT_TRUE(on.uopDispatchEnabled());
    Interp ion;
    EXPECT_TRUE(ion.uopDispatchEnabled());
    MachineConfig cfg;
    cfg.uopDispatch = false;
    Machine cfg_off(cfg);
    EXPECT_FALSE(cfg_off.uopDispatchEnabled());
}

} // namespace
} // namespace disc
