/**
 * @file
 * Direct unit tests for the golden-model interpreter (beyond the
 * differential suite): control interface, event counters, device
 * access and special-register behaviour.
 */

#include <gtest/gtest.h>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/interp.hh"

namespace disc
{
namespace
{

TEST(InterpBasic, RunsAProgramFromEntry)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r0, 6
            ldi r1, 7
            mul r2, r0, r1
            stmd r2, [0x30]
            halt
    )");
    Interp ref;
    ref.load(p);
    ref.setPc(p.symbol("main"));
    std::uint64_t n = ref.run(100);
    EXPECT_TRUE(ref.halted());
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(ref.internalMemory().read(0x30), 42);
    EXPECT_EQ(ref.readReg(2), 42);
}

TEST(InterpBasic, RunBudgetStopsExecution)
{
    Program p = assemble("spin:\n jmp spin\n");
    Interp ref;
    ref.load(p);
    EXPECT_EQ(ref.run(50), 50u);
    EXPECT_FALSE(ref.halted());
}

TEST(InterpBasic, WindowOverflowCounted)
{
    Program p = assemble(R"(
        main:
            wdec
            halt
    )");
    Interp ref;
    ref.load(p);
    ref.run(10);
    EXPECT_EQ(ref.overflowEvents(), 1u);
}

TEST(InterpBasic, CallReturnThroughWindow)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi g0, 5
            call dbl
            stmd g0, [0x40]
            halt
        dbl:
            add g0, g0, g0
            ret 0
    )");
    Interp ref;
    ref.load(p);
    ref.setPc(p.symbol("main"));
    ref.run(100);
    EXPECT_TRUE(ref.halted());
    EXPECT_EQ(ref.internalMemory().read(0x40), 10);
    // The window returned to its reset position.
    EXPECT_EQ(ref.window().depth(), 0u);
}

TEST(InterpBasic, ExternalDeviceAccess)
{
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi  g0, 0x00
            ldih g0, 0x10
            ldi  r1, 99
            st   r1, [g0+2]
            ld   r2, [g0+2]
            stmd r2, [0x41]
            halt
    )");
    ExternalMemoryDevice dev(16, 3); // latency irrelevant to Interp
    Interp ref;
    ref.attachDevice(0x1000, 16, &dev);
    ref.load(p);
    ref.setPc(p.symbol("main"));
    ref.run(100);
    EXPECT_EQ(dev.peek(2), 99);
    EXPECT_EQ(ref.internalMemory().read(0x41), 99);
}

TEST(InterpBasic, BusFaultLatchesRequestBit)
{
    Program p = assemble(R"(
        main:
            ldi  g0, 0x00
            ldih g0, 0x70
            ld   r1, [g0]
            halt
    )");
    Interp ref;
    ref.load(p);
    ref.run(100);
    EXPECT_TRUE(ref.readReg(reg::IRR) & (1u << kBusFaultBit));
}

TEST(InterpBasic, SpecialRegisterRoundTrips)
{
    Interp ref;
    Program p;
    p.code = {encode(makeOp(Opcode::HALT))};
    ref.load(p);
    ref.writeReg(reg::IMR, 0x55);
    EXPECT_EQ(ref.readReg(reg::IMR), 0x55);
    ref.writeReg(reg::SR, 0x0f);
    EXPECT_EQ(ref.readReg(reg::SR) & 0xf, 0xf);
    Word awp = ref.readReg(reg::AWP);
    ref.writeReg(reg::AWP, static_cast<Word>(awp + 3));
    EXPECT_EQ(ref.readReg(reg::AWP), awp + 3);
}

TEST(InterpBasic, SelfSwiSetsOwnRequestBit)
{
    Program p = assemble(R"(
        main:
            swi 0, 5
            halt
    )");
    Interp ref;
    ref.load(p);
    ref.run(10);
    EXPECT_TRUE(ref.readReg(reg::IRR) & 0x20);
}

TEST(InterpBasic, RetiActsAsReturn)
{
    // The interpreter models RETI as RET 0 so handler bodies can be
    // golden-tested in isolation.
    Program p = assemble(R"(
        .org 0x20
        main:
            call handler
            stmd g1, [0x42]
            halt
        handler:
            ldi g1, 7
            reti
    )");
    Interp ref;
    ref.load(p);
    ref.setPc(p.symbol("main"));
    ref.run(100);
    EXPECT_TRUE(ref.halted());
    EXPECT_EQ(ref.internalMemory().read(0x42), 7);
}

} // namespace
} // namespace disc
