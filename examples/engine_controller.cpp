/**
 * @file
 * Automotive engine-controller scenario (the paper's motivating
 * domain: DISC1 "is targeted to the typical control requirements of
 * automotive electronics").
 *
 * Three concurrent activities share the machine:
 *  - stream 1: crank-angle interrupt (high priority, hard deadline) -
 *    reads the crank sensor, computes a spark-advance value with the
 *    hardware multiplier, writes it to the ignition actuator;
 *  - stream 2: fuel task on a slower timer - reads the MAP sensor
 *    through the asynchronous bus and updates a fuel table entry;
 *  - stream 0: background diagnostics loop (level 0).
 *
 * The crank handler must never miss even while the fuel task holds
 * the external bus - the ABI parks the fuel stream, and the scheduler
 * gives its slots to the others.
 */

#include <cstdio>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

int
main()
{
    Program prog = assemble(R"(
        .equ CRANK_SENSOR, 0x1000
        .equ MAP_SENSOR,   0x1100
        .equ IGNITION,     0x1200
        .equ FUEL_TBL,     0x0a0     ; internal memory
        .equ DIAG_CNT,     0x09f

        ; stream 1, level 6: crank-angle interrupt
        .org 14                       ; vectorAddress(1, 6)
            jmp crank_isr
        ; stream 2, level 3: fuel-timer interrupt
        .org 19                       ; vectorAddress(2, 3)
            jmp fuel_isr

        .org 0x20
        background:
            ldmd r1, [DIAG_CNT]
            addi r1, r1, 1
            stmd r1, [DIAG_CNT]
            jmp background

        crank_isr:
            ld   r1, [g0]             ; crank position (g0=CRANK_SENSOR)
            ldi  r2, 3                ; advance gain
            mul  r3, r1, r2
            andi r3, r3, 0x7f         ; clamp to table range
            st   r3, [g2]             ; ignition actuator (g2=IGNITION)
            clri 6
            reti

        fuel_isr:
            ld   r1, [g1]             ; manifold pressure (g1=MAP_SENSOR)
            shr  r2, r1, r3           ; scale (r3 junk -> use imm shift)
            ldi  r2, 2
            shr  r1, r1, r2
            stmd r1, [FUEL_TBL]
            clri 3
            reti
    )");

    Machine m;
    SensorDevice crank(/*period=*/97, /*read_latency=*/2);
    crank.setInterrupt(/*stream=*/1, /*bit=*/6);
    SensorDevice map_sensor(/*period=*/703, /*read_latency=*/9);
    TimerDevice fuel_timer(/*period=*/701, /*stream=*/2, /*bit=*/3);
    ActuatorDevice ignition(/*write_latency=*/2);

    m.attachDevice(0x1000, 16, &crank);
    m.attachDevice(0x1100, 16, &map_sensor);
    m.attachDevice(0x1200, 16, &ignition);
    m.attachDevice(0x1300, 4, &fuel_timer);

    m.load(prog);
    m.writeReg(0, reg::G0, 0x1000); // globals are shared by all streams
    m.writeReg(0, reg::G1, 0x1100);
    m.writeReg(0, reg::G2, 0x1200);
    m.startStream(0, prog.symbol("background"));

    m.run(100000, false);

    std::printf("==== Engine controller on DISC1 ====\n\n");
    std::printf("crank interrupts handled : %llu\n",
                static_cast<unsigned long long>(crank.samplesRead()));
    std::printf("ignition writes          : %zu (last advance value "
                "%u)\n",
                ignition.outputs().size(), ignition.lastValue());
    std::printf("fuel table entry         : %u (from %llu MAP reads)\n",
                m.internalMemory().read(0x0a0),
                static_cast<unsigned long long>(
                    map_sensor.samplesRead()));
    std::printf("diagnostics progress     : %u iterations\n",
                m.internalMemory().read(0x09f));
    std::printf("\nvector-entry latency     : mean %.2f cycles, worst "
                "%llu\n",
                m.latencyHistogram().mean(),
                static_cast<unsigned long long>(
                    m.latencyHistogram().maxValue()));
    std::printf("machine utilisation      : %.3f\n",
                m.stats().utilization());
    std::printf("\nEvery crank edge produced an ignition write while "
                "the fuel task's slow MAP reads were\nin flight on the "
                "asynchronous bus - no polling, no context-switch "
                "code.\n");
    return 0;
}
