; engine_controller.s - engine management unit
; (see engine_controller.board). Runs forever; use --free-run.
;
; Register discipline: g0..g3 are SHARED across streams, so each
; stream owns the global matching its number (stream 0 -> g0 base
; pointer, stream 1 -> g1, stream 2 -> g2) and everything else lives
; in the stream's private window registers. A handler's rN aliases
; the interrupted frame's r(N-1) — the vector push slides the window
; by one word — so the background loop keeps nothing live in r0..r6
; across an iteration.

.equ EDGES,  0x80      ; crank rising edges seen
.equ TICKS,  0x81      ; control ticks taken
.equ STALLS, 0x82      ; watchdog bites (0 while healthy)
.equ IDLE,   0x83      ; background loop iterations

; --- vector table ---
.org 2                 ; stream 0, level 2: control tick
    jmp tick_isr
.org 11                ; stream 1, level 3: crank edge
    jmp edge_isr
.org 21                ; stream 2, level 5: watchdog bite
    jmp stall_isr

.org 0x40
main:
    ; Critical init: mask the control tick while the fuel map is
    ; staged, so the handler cannot interleave with the fill loop.
    ldi  r1, 0xfb      ; all levels except bit 2
    mov  imr, r1
    ; Stage a tiny fuel map in external RAM: map[i] = 40 + 4*i.
    ldi  g0, 0x00
    ldih g0, 0x20      ; fuel map base (0x2000)
    ldi  r1, 40
    ldi  r2, 8
fill:
    st   r1, [g0]
    addi g0, g0, 1
    addi r1, r1, 4
    addi r2, r2, -1
    cmpi r2, 0
    bne  fill
    ; Park g0 on the watchdog for the background kicker and unmask.
    ldi  g0, 0x00
    ldih g0, 0x24      ; watchdog base (0x2400)
    ldi  r1, 0xff
    mov  imr, r1
background:            ; idle loop: keep the dog fed regardless
    st   r1, [g0]      ; kick
    ldmd r3, [IDLE]
    addi r3, r3, 1
    stmd r3, [IDLE]
    jmp  background

tick_isr:              ; the control law, paced by the timer
    ; Scratch is r1,r2,r5,r6,r7 — never r4: handler r4 aliases the
    ; background loop's live r3 (the IDLE counter mid-update).
    ldmd r1, [EDGES]
    andi r2, r1, 7     ; fold the edge count into the map
    ldi  r6, 0x00
    ldih r6, 0x20      ; fuel map base (0x2000)
    add  r6, r6, r2
    ld   r5, [r6]      ; fuel map lookup
    add  r5, r5, r1    ; plus a rate term
    ldi  r6, 0x00
    ldih r6, 0x23      ; injector (0x2300)
    st   r5, [r6]      ; drive the pulse width
    ldi  r6, 0x00
    ldih r6, 0x24      ; watchdog (0x2400)
    st   r5, [r6]      ; kick the dog from the control path too
    ldmd r7, [TICKS]
    addi r7, r7, 1
    stmd r7, [TICKS]
    clri 2
    reti

edge_isr:              ; stream 1: count crank rising edges
    ldi  g1, 0x02
    ldih g1, 0x22      ; gpio pending register (0x2202)
    ld   r1, [g1]      ; read clears the latched edges
    ldmd r2, [EDGES]
    addi r2, r2, 1
    stmd r2, [EDGES]
    clri 3
    reti

stall_isr:             ; stream 2: watchdog bite — log and recover
    ldmd r1, [STALLS]
    addi r1, r1, 1
    stmd r1, [STALLS]
    ldi  g2, 0x00
    ldih g2, 0x24
    st   r1, [g2]      ; emergency kick
    clri 5
    reti
