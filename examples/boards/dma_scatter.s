; dma_scatter.s - scatter one block to two destinations via DMA
; (see dma_scatter.board).

.equ DONE,  0x80       ; transfers completed
.equ SUM1,  0x81       ; checksum of destination block 1
.equ SUM2,  0x82       ; checksum of destination block 2
.equ BUSY,  0x83       ; foreground work performed during the copies

; --- vector table ---
.org 3                 ; stream 0, level 3: DMA completion
    jmp done_isr

.org 0x40
main:
    ldi  g0, 0x00
    ldih g0, 0x20      ; RAM base (0x2000)
    ldi  g1, 0x00
    ldih g1, 0x22      ; DMA register base (0x2200)

    ; Stage the source block: ram[i] = 11 + 7*i, i = 0..7.
    mov  g2, g0
    ldi  r1, 11
    ldi  r2, 8
fill:
    st   r1, [g2]
    addi g2, g2, 1
    addi r1, r1, 7
    addi r2, r2, -1
    cmpi r2, 0
    bne  fill

    ; Scatter transfer 1: offsets 0..7 -> 64..71.
    ldi  r1, 0
    st   r1, [g1]      ; src
    ldi  r1, 64
    st   r1, [g1+1]    ; dst
    ldi  r1, 8
    st   r1, [g1+2]    ; count: starts the engine
    jmp  wait1

compute:               ; foreground work while the DMA runs
    ldmd r4, [BUSY]
    addi r4, r4, 1
    stmd r4, [BUSY]
wait1:
    ldmd r3, [DONE]
    cmpi r3, 1
    bne  compute

    ; Scatter transfer 2: offsets 0..7 -> 96..103.
    ldi  r1, 0
    st   r1, [g1]
    ldi  r1, 96
    st   r1, [g1+1]
    ldi  r1, 8
    st   r1, [g1+2]
    jmp  wait2

compute2:
    ldmd r4, [BUSY]
    addi r4, r4, 1
    stmd r4, [BUSY]
wait2:
    ldmd r3, [DONE]
    cmpi r3, 2
    bne  compute2

    ; Verify both destination blocks.
    ldi  r5, 64
    add  g2, g0, r5
    ldi  r6, 0
    ldi  r2, 8
sum1:
    ld   r1, [g2]
    add  r6, r6, r1
    addi g2, g2, 1
    addi r2, r2, -1
    cmpi r2, 0
    bne  sum1
    stmd r6, [SUM1]

    ldi  r5, 96
    add  g2, g0, r5
    ldi  r6, 0
    ldi  r2, 8
sum2:
    ld   r1, [g2]
    add  r6, r6, r1
    addi g2, g2, 1
    addi r2, r2, -1
    cmpi r2, 0
    bne  sum2
    stmd r6, [SUM2]
    halt

done_isr:
    ldmd r1, [DONE]    ; handler r1 aliases main's r0 (the vector
    addi r1, r1, 1     ; push slides the window one word) — r0 is
    stmd r1, [DONE]    ; the one register main never uses
    clri 3
    reti
