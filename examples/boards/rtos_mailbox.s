; rtos_mailbox.s - hardware-mailbox IPC (see rtos_mailbox.board).
;
; The board's start lines launch worker1 on stream 1 and worker2 on
; stream 2; each posts three words to the mailbox's push register and
; halts. Every delivery wakes the kernel stream (3, level 4), which
; acknowledges the request bit FIRST and then drains the FIFO:
; delivery interrupts that arrive while the handler is running
; coalesce into the one pending bit, so a handler that popped a
; single word — or that cleared the bit after draining — would
; strand or lose deliveries. Acknowledge-then-consume only works
; because the kernel stream is started as a background loop (its
; level-0 bit stays set, so the early clri cannot deactivate it).
; Stream 0 polls the consumed count, flags the kernel down at six,
; and halts.

.equ COUNT, 0x80       ; messages consumed by the kernel
.equ SUM,   0x81       ; running sum of consumed words
.equ STOP,  0x82       ; set by stream 0 when the demo is over

; --- vector table ---
.org 28                ; stream 3, level 4: mailbox delivery
    jmp deliver_isr

.org 0x40
main:
    ldmd r1, [COUNT]
    cmpi r1, 6
    bne  main
    ldi  r2, 1
    stmd r2, [STOP]    ; wave the kernel stream off
    halt

kernel:                ; started by the board: idle until stopped
    ldmd r1, [STOP]
    cmpi r1, 1
    bne  kernel
    halt

; Post r2, then r2+step, then r2+2*step; \base = push register.
; Each worker addresses through its own global — g0..g3 are shared
; across streams, so concurrent streams must not stage addresses in
; the same one (even a same-valued reload is a two-instruction
; ldi/ldih sequence another stream can observe half-done).
.macro worker start, step, base
    ldi  \base, 0x01
    ldih \base, 0x21   ; mailbox push register (0x2101)
    ldi  r2, \start
    ldi  r3, 3
post\@:
    st   r2, [\base]
    addi r2, r2, \step
    addi r3, r3, -1
    cmpi r3, 0
    bne  post\@
    halt
.endm

worker1:
    worker 10, 10, g1
worker2:
    worker 100, 5, g2

deliver_isr:
    clri 4             ; acknowledge FIRST: a delivery that lands
                       ; mid-drain re-raises the level and re-enters
                       ; after reti, instead of being wiped by a
                       ; clear at the end (lost wakeup); safe only
                       ; because the kernel's level-0 bit is set
    ldi  g3, 0x00
    ldih g3, 0x21      ; mailbox base (0x2100)
drain:
    ld   r3, [g3+2]    ; occupancy
    cmpi r3, 0
    beq  drained
    ld   r1, [g3]      ; pop one delivered word
    ldmd r2, [SUM]
    add  r2, r2, r1
    stmd r2, [SUM]
    ldmd r2, [COUNT]
    addi r2, r2, 1
    stmd r2, [COUNT]
    jmp  drain
drained:
    reti
