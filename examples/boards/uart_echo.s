; uart_echo.s - interrupt-driven serial echo (see uart_echo.board).
;
; Stream 1 sleeps until the UART receives a word, echoes it
; incremented to TX, records it, and goes back to sleep. Stream 0
; watches the echo counter and halts the run once every scripted word
; has been served, so the machine reaches quiescence on its own.

.equ COUNT, 0x80       ; words echoed so far
.equ LAST,  0x81       ; most recent echoed value

; --- vector table ---
.org 12                ; stream 1, level 4: UART RX ready
    jmp rx_isr

.org 0x40
main:
    ldmd r1, [COUNT]
    cmpi r1, 8
    bne  main          ; keep watching until the script drains
    halt

rx_isr:
    ldi  g1, 0x00
    ldih g1, 0x21      ; UART register base (0x2100)
    ld   r1, [g1]      ; RX (read clears data-ready)
    addi r1, r1, 1
    st   r1, [g1+1]    ; echo to TX
    stmd r1, [LAST]
    ldmd r2, [COUNT]
    addi r2, r2, 1
    stmd r2, [COUNT]
    clri 4
    reti
