; watchdog_kick.s - kick the dog, then wedge and let it reset us
; (see watchdog_kick.board).

.equ BITES,     0x80   ; bite interrupts observed
.equ RECOVERED, 0x81   ; reset handler ran

; --- vector table ---
.org 6                 ; stream 0, level 6: watchdog reset
    jmp reset_isr
.org 13                ; stream 1, level 5: watchdog bite
    jmp bite_isr

.org 0x40
main:
    ldi  g0, 0x00
    ldih g0, 0x21      ; watchdog register base (0x2100)
    ldi  r2, 5         ; healthy kicks before the "hang"
kick_loop:
    st   r2, [g0]      ; kick: any write re-arms the count
    ldi  r3, 20
pause:
    addi r3, r3, -1
    cmpi r3, 0
    bne  pause
    addi r2, r2, -1
    cmpi r2, 0
    bne  kick_loop
wedge:                 ; simulated firmware hang: no more kicks
    jmp  wedge

bite_isr:              ; stream 1: log the bite, don't rescue
    ldmd r1, [BITES]
    addi r1, r1, 1
    stmd r1, [BITES]
    clri 5
    reti

reset_isr:             ; stream 0, level 6: recovery path
    ldi  r1, 1
    stmd r1, [RECOVERED]
    clri 0             ; silence the wedged background loop
    clri 6
    reti
