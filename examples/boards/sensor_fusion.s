; sensor_fusion.s - fuse two sensor rates onto an actuator
; (see sensor_fusion.board). Runs forever; use --free-run --cycles N.

.equ FAST,  0x80       ; latest fast-sensor sample
.equ SLOW,  0x81       ; latest slow-sensor sample
.equ FUSED, 0x82       ; last value sent to the actuator

; --- vector table ---
.org 12                ; stream 1, level 4: fast sensor ready
    jmp fast_isr
.org 20                ; stream 2, level 4: slow sensor ready
    jmp slow_isr

.org 0x40
main:
    ldi  g0, 0x00
    ldih g0, 0x23      ; actuator base (0x2300)
loop:
    ldmd r1, [FAST]
    ldmd r2, [SLOW]
    add  r3, r1, r2    ; fuse: sum of the freshest samples
    stmd r3, [FUSED]
    st   r3, [g0]      ; drive the actuator
    jmp  loop

fast_isr:
    ldi  g1, 0x00
    ldih g1, 0x21      ; fast sensor base (0x2100)
    ld   r1, [g1]      ; freshest sample; stale ones are gone forever
    stmd r1, [FAST]
    clri 4
    reti

slow_isr:
    ldi  g2, 0x00      ; g2, not g1: globals are shared machine-wide,
    ldih g2, 0x22      ; and fast_isr on stream 1 owns g1
    ld   r1, [g2]
    stmd r1, [SLOW]
    clri 4
    reti
