/**
 * @file
 * Inter-stream communication and synchronisation (paper section 3.6.2):
 *
 *  - a producer stream fills a ring buffer in shared internal memory,
 *    guarded by a TAS (test-and-set) semaphore;
 *  - a consumer stream drains it and accumulates a checksum in a
 *    shared global register;
 *  - when the producer finishes it *software-interrupts* the consumer
 *    (SWI) whose handler records the shutdown - interrupt-based
 *    synchronisation instead of semaphore polling, which the paper
 *    recommends because polling throughput is dynamically reallocated
 *    to useful streams.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

int
main()
{
    Program prog = assemble(R"(
        .equ LOCK,  0x100
        .equ HEAD,  0x101      ; next write index
        .equ TAIL,  0x102      ; next read index
        .equ RING,  0x110      ; 8-entry ring buffer
        .equ COUNT, 40         ; items to transfer

        ; consumer stream 2, level 4: producer-finished notification
        .org 20                ; vectorAddress(2, 4)
            jmp done_isr

        .org 0x40
        producer:
            ldi r7, 0          ; produced count
        p_next:
            tas r1, [g1]       ; acquire LOCK (g1 = LOCK)
            cmpi r1, 0
            bne p_next
            ; room in ring? (head - tail) < 8
            ldmd r2, [HEAD]
            ldmd r3, [TAIL]
            sub r4, r2, r3
            cmpi r4, 8
            bge p_release
            ; write item = 3*count + 1
            ldi r5, 3
            mul r5, r7, r5
            addi r5, r5, 1
            andi r4, r2, 7
            ldi r6, RING
            add r6, r6, r4
            stm r5, [r6]
            addi r2, r2, 1
            stmd r2, [HEAD]
            addi r7, r7, 1
        p_release:
            ldi r1, 0
            stmd r1, [LOCK]
            cmpi r7, COUNT
            bne p_next
            swi 2, 4           ; tell the consumer we are done
            halt

        consumer:
            ldi g3, 0          ; checksum lives in a shared global
        c_next:
            tas r1, [g1]
            cmpi r1, 0
            bne c_next
            ldmd r2, [HEAD]
            ldmd r3, [TAIL]
            cmp r3, r2
            beq c_release      ; empty
            andi r4, r3, 7
            ldi r6, RING
            add r6, r6, r4
            ldm r5, [r6]
            add g3, g3, r5
            addi r3, r3, 1
            stmd r3, [TAIL]
        c_release:
            ldi r1, 0
            stmd r1, [LOCK]
            ; exit when the producer signalled and the ring is empty
            ldmd r1, [0x104]   ; done flag set by the interrupt handler
            cmpi r1, 1
            bne c_next
            ldmd r2, [HEAD]
            ldmd r3, [TAIL]
            cmp r3, r2
            bne c_next
            ldi r1, 1
            stmd r1, [0x103]   ; drained marker
            halt

        done_isr:
            ldi r1, 1
            stmd r1, [0x104]
            clri 4
            reti
    )");

    Machine m;
    m.load(prog);
    m.writeReg(0, reg::G1, 0x100); // LOCK address in a shared global
    m.startStream(1, prog.symbol("producer"));
    m.startStream(2, prog.symbol("consumer"));
    m.run(200000);

    // Expected checksum: sum_{k=0..39} (3k + 1) = 3*780 + 40 = 2380.
    std::printf("==== IPC via semaphores and software interrupts "
                "====\n\n");
    std::printf("items produced    : 40\n");
    std::printf("checksum (g3)     : %u (expected 2380)\n",
                m.readReg(0, reg::G3));
    std::printf("drained marker    : %u\n",
                m.internalMemory().read(0x103));
    std::printf("machine idle      : %s\n", m.idle() ? "yes" : "no");
    std::printf("bus/TAS conflicts resolved by hardware read-modify-"
                "write; the shutdown used an\ninter-stream interrupt "
                "(SWI 2,4) rather than a polled flag.\n");
    return 0;
}
