/**
 * @file
 * Sensor-fusion scenario: three sensors with very different access
 * times are polled by three streams while a fourth stream runs the
 * fusion computation. Demonstrates the paper's core throughput claim:
 * slow I/O waits on some streams are filled with useful work from the
 * others (dynamic interleaving), so the same program finishes far
 * sooner than a serial single-stream version.
 */

#include <cstdio>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

namespace
{

const char *kSource = R"(
    .equ RESULT, 0x0c0
    .equ DONE0,  0x0c8
    .equ DONE1,  0x0c9
    .equ DONE2,  0x0ca

    .org 0x20
    ; Reader for sensor in g0, accumulates into RESULT+offset in r7.
    reader0:
        ldi r6, 50          ; samples to take
        ldi r5, 0
    r0_loop:
        ld  r1, [g0]
        add r5, r5, r1
        subi r6, r6, 1
        cmpi r6, 0
        bne r0_loop
        stmd r5, [RESULT]
        ldi r1, 1
        stmd r1, [DONE0]
        halt
    reader1:
        ldi r6, 50
        ldi r5, 0
    r1_loop:
        ld  r1, [g1]
        add r5, r5, r1
        subi r6, r6, 1
        cmpi r6, 0
        bne r1_loop
        stmd r5, [RESULT+1]
        ldi r1, 1
        stmd r1, [DONE1]
        halt
    reader2:
        ldi r6, 50
        ldi r5, 0
    r2_loop:
        ld  r1, [g2]
        add r5, r5, r1
        subi r6, r6, 1
        cmpi r6, 0
        bne r2_loop
        stmd r5, [RESULT+2]
        ldi r1, 1
        stmd r1, [DONE2]
        halt

    ; Fusion: wait for all three, then combine.
    fusion:
        ldmd r1, [DONE0]
        ldmd r2, [DONE1]
        ldmd r3, [DONE2]
        add  r4, r1, r2
        add  r4, r4, r3
        cmpi r4, 3
        bne  fusion
        ldmd r1, [RESULT]
        ldmd r2, [RESULT+1]
        ldmd r3, [RESULT+2]
        add  r4, r1, r2
        add  r4, r4, r3
        ldi  r5, 2
        shr  r4, r4, r5      ; weighted-ish average
        stmd r4, [RESULT+3]
        halt
)";

Cycle
runConfig(bool parallel)
{
    Program prog = assemble(kSource);
    Machine m;
    SensorDevice fast(11, /*latency=*/2);
    SensorDevice mid(29, /*latency=*/7);
    SensorDevice slow(97, /*latency=*/19);
    m.attachDevice(0x1000, 16, &fast);
    m.attachDevice(0x1100, 16, &mid);
    m.attachDevice(0x1200, 16, &slow);
    m.load(prog);
    m.writeReg(0, reg::G0, 0x1000);
    m.writeReg(0, reg::G1, 0x1100);
    m.writeReg(0, reg::G2, 0x1200);

    if (parallel) {
        m.startStream(0, prog.symbol("fusion"));
        m.startStream(1, prog.symbol("reader0"));
        m.startStream(2, prog.symbol("reader1"));
        m.startStream(3, prog.symbol("reader2"));
        m.run(2000000);
        if (!m.idle())
            std::printf("(parallel run did not finish!)\n");
        return m.stats().busyCycles;
    }

    // Serial: the same work on one stream, one phase after another.
    Cycle total = 0;
    for (const char *entry :
         {"reader0", "reader1", "reader2", "fusion"}) {
        m.startStream(0, prog.symbol(entry));
        m.run(2000000);
        if (!m.idle())
            std::printf("(serial phase %s did not finish!)\n", entry);
        total = m.stats().busyCycles;
    }
    return total;
}

} // namespace

int
main()
{
    std::printf("==== Sensor fusion: dynamic interleaving in action "
                "====\n\n");
    Cycle parallel = runConfig(true);
    Cycle serial = runConfig(false);
    std::printf("three sensors (latencies 2/7/19 cycles), 50 samples "
                "each, plus fusion:\n\n");
    std::printf("  single stream, serial : %8llu busy cycles\n",
                static_cast<unsigned long long>(serial));
    std::printf("  four streams, DISC    : %8llu busy cycles\n",
                static_cast<unsigned long long>(parallel));
    std::printf("  speedup               : %.2fx\n\n",
                static_cast<double>(serial) /
                    static_cast<double>(parallel));
    std::printf("While one reader waits on the asynchronous bus the "
                "scheduler hands its slots to the other\nreaders and "
                "the fusion stream - the waits overlap instead of "
                "accumulating.\n");
    return 0;
}
