; gcd.s - Euclid's algorithm on DISC1.
; Run:  disc-run gcd.s --dump 0x80:1
; Result: mem[0x80] = gcd(462, 1071) = 21
.org 0x20
main:
    ldi  r0, 462
    ldi  r1, 1071
gcd:
    cmpi r1, 0
    beq  done
    ; r2 = r0 mod r1 by repeated subtraction
mod:
    cmp  r0, r1
    bult mod_done
    sub  r0, r0, r1
    jmp  mod
mod_done:
    mov  r2, r0
    mov  r0, r1
    mov  r1, r2
    jmp  gcd
done:
    stmd r0, [0x80]
    halt
