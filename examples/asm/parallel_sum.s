; parallel_sum.s - four streams each sum a quarter of 1..100, stream 0
; combines the partial sums.
; Run:  disc-run parallel_sum.s --entry combine \
;         --stream 1:worker_a --stream 2:worker_b --stream 3:worker_c \
;         --dump 0x90:5
; Result: mem[0x94] = 5050
.equ P0, 0x90
.equ P1, 0x91
.equ P2, 0x92
.equ P3, 0x93
.equ TOTAL, 0x94
.equ D0, 0x98
.equ D1, 0x99
.equ D2, 0x9a
.equ D3, 0x9b

.org 0x20
; sum [r0, r1] into r2, store at [r3], flag at [r4]
sum_range:
    ldi r2, 0
sr_loop:
    add r2, r2, r0
    addi r0, r0, 1
    cmp r1, r0
    buge sr_loop
    stm r2, [r3]
    ldi r5, 1
    stm r5, [r4]
    halt

combine:
    ; stream 0 computes its own quarter inline, then combines
    ldi r0, 1
    ldi r1, 25
    ldi r2, 0
c_loop:
    add r2, r2, r0
    addi r0, r0, 1
    cmp r1, r0
    buge c_loop
    stmd r2, [P0]
    ldi r5, 1
    stmd r5, [D0]
wait:
    ldmd r5, [D0]
    ldmd r6, [D1]
    add  r5, r5, r6
    ldmd r6, [D2]
    add  r5, r5, r6
    ldmd r6, [D3]
    add  r5, r5, r6
    cmpi r5, 4
    bne  wait
    ldmd r5, [P0]
    ldmd r6, [P1]
    add  r5, r5, r6
    ldmd r6, [P2]
    add  r5, r5, r6
    ldmd r6, [P3]
    add  r5, r5, r6
    stmd r5, [TOTAL]
    halt

worker_a:
    ldi r0, 26
    ldi r1, 50
    ldi r3, P1
    ldi r4, D1
    jmp sum_range
worker_b:
    ldi r0, 51
    ldi r1, 75
    ldi r3, P2
    ldi r4, D2
    jmp sum_range
worker_c:
    ldi r0, 76
    ldi r1, 100
    ldi r3, P3
    ldi r4, D3
    jmp sum_range
