; rtos_mailbox.s - an OS-service pattern on DISC1: a kernel stream
; serves arithmetic requests from client streams through a locked
; mailbox. Clients BLOCK (halt) while waiting; the kernel wakes them
; with an inter-stream interrupt whose handler re-arms the run level
; and returns to the instruction after the halt. Lost wakeups are
; prevented by masking the wake level until the moment of blocking.
;
; Run: disc-run rtos_mailbox.s --entry idle --stream 1:client1 \
;          --stream 2:client2 --dump 0x120:3
; Expected: mem[0x120]=42 (20+22), 002a; mem[0x121]=42 (6*7);
;           mem[0x122]=25 (5*5)

.equ LOCK,  0x100
.equ OP,    0x101      ; 1 = add, 2 = mul
.equ ARG_A, 0x102
.equ ARG_B, 0x103
.equ CLIENT,0x104      ; requesting stream id
.equ REPLY, 0x108      ; reply slot base: REPLY + client id

; --- vector table ---
.org 11                ; stream 1, level 3: client1 wake-up
    jmp wake_isr
.org 19                ; stream 2, level 3: client2 wake-up
    jmp wake_isr
.org 28                ; stream 3, level 4: kernel request service
    jmp kernel_isr

.org 0x40
idle:                      ; stream 0 takes no part in this demo
    halt

; Post one request and block until the kernel replies.
.macro request op, a, b, self
acquire\@:
    tas  r1, [g1]          ; g1 holds LOCK's address
    cmpi r1, 0
    bne  acquire\@
    ldi  r1, \op
    stmd r1, [OP]
    ldi  r1, \a
    stmd r1, [ARG_A]
    ldi  r1, \b
    stmd r1, [ARG_B]
    ldi  r1, \self
    stmd r1, [CLIENT]
    swi  3, 4              ; ring the kernel
    ldi  r1, 0x09          ; unmask the wake level (bits 0 and 3)...
    mov  imr, r1
    halt                   ; ...and block; wake resumes *here*
    ldi  r1, 0x01          ; re-mask while running
    mov  imr, r1
.endm

; Wake-up handler (any client): re-arm the run level and resume.
wake_isr:
    ldi  r1, 0x01
    mov  irr, r1           ; set own background bit again
    clri 3
    reti

; The kernel: woken only by request interrupts on stream 3.
kernel_isr:
    ldmd r1, [OP]
    ldmd r2, [ARG_A]
    ldmd r3, [ARG_B]
    cmpi r1, 1
    beq  k_add
    mul  r4, r2, r3
    jmp  k_reply
k_add:
    add  r4, r2, r3
k_reply:
    ldmd r5, [CLIENT]
    ldi  r6, REPLY
    add  r6, r6, r5
    stm  r4, [r6]          ; deposit the reply
    cmpi r5, 1             ; wake the right client
    beq  k_wake1
    swi  2, 3
    jmp  k_unlock
k_wake1:
    swi  1, 3
k_unlock:
    ldi  r1, 0
    stmd r1, [LOCK]        ; release the mailbox
    clri 4
    reti

client1:
    ldi  g1, LOCK
    ldi  r1, 0x01
    mov  imr, r1           ; wake level masked while running
    request 1, 20, 22, 1
    ldmd r2, [REPLY+1]
    stmd r2, [0x120]
    request 2, 6, 7, 1
    ldmd r2, [REPLY+1]
    stmd r2, [0x121]
    ldi  r1, 0xff          ; restore the full mask before exit
    mov  imr, r1
    halt

client2:
    ldi  g1, LOCK
    ldi  r1, 0x01
    mov  imr, r1
    request 2, 5, 5, 2
    ldmd r2, [REPLY+2]
    stmd r2, [0x122]
    ldi  r1, 0xff
    mov  imr, r1
    halt
