/**
 * @file
 * Interrupt-driven UART echo with protocol framing — the canonical
 * "no polling" controller demo.
 *
 * A UART receives a scripted message one word at a time; a dedicated
 * stream wakes on each RX interrupt, applies a trivial protocol
 * (XOR checksum accumulated across the frame, appended at the end),
 * and transmits. A compute stream runs a control-law loop the whole
 * time, and the report shows it barely noticed.
 */

#include <cstdio>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

using namespace disc;

int
main()
{
    Program prog = assemble(R"(
        .equ CHK, 0x0b0        ; running checksum cell
        .org 12                ; vectorAddress(1, 4): UART RX
            jmp rx_isr

        .org 0x20
        control_law:
            ldmd r1, [0x0b8]
            ldi  r2, 3
            mul  r1, r1, r2
            addi r1, r1, 7
            andi r1, r1, 0x7f
            stmd r1, [0x0b8]
            ldmd r3, [0x0b9]
            addi r3, r3, 1
            stmd r3, [0x0b9]   ; iteration counter
            jmp  control_law

        rx_isr:
            ld   r1, [g0]      ; read RX word (g0 = uart base)
            cmpi r1, 0         ; 0 terminates the frame
            beq  frame_end
            ldmd r2, [CHK]
            xor  r2, r2, r1
            stmd r2, [CHK]
            st   r1, [g0+1]    ; echo the payload word
            clri 4
            reti
        frame_end:
            ldmd r2, [CHK]
            st   r2, [g0+1]    ; transmit the checksum
            ldi  r3, 0
            stmd r3, [CHK]
            clri 4
            reti
    )");

    Machine m;
    UartDevice uart(/*rx_period=*/80, /*latency=*/3);
    uart.setRxInterrupt(/*stream=*/1, /*bit=*/4);
    uart.scriptRx({0x11, 0x22, 0x44, 0x00,      // frame 1 + terminator
                   0x0f, 0xf0, 0x00});          // frame 2 + terminator
    m.attachDevice(0x2000, 4, &uart);

    m.load(prog);
    m.writeReg(0, reg::G0, 0x2000);
    m.startStream(0, prog.symbol("control_law"));

    ExecTrace trace(64);
    m.setExecTrace(&trace);
    m.run(1500, false);

    std::printf("==== UART echo with checksum framing ====\n\n");
    std::printf("transmitted words:");
    for (Word w : uart.transmitted())
        std::printf(" 0x%02x", w);
    std::printf("\nexpected         : 0x11 0x22 0x44 0x77 0x0f 0xf0 "
                "0xff\n");
    std::printf("rx overruns      : %llu\n",
                static_cast<unsigned long long>(uart.overruns()));
    std::printf("control-law iters: %u\n",
                m.internalMemory().read(0x0b9));
    std::printf("vector latency   : mean %.2f cycles\n\n",
                m.latencyHistogram().mean());
    std::printf("last instructions retired (is1 = control law, is2 = "
                "echo handler):\n%s",
                trace.render().c_str());
    return 0;
}
