/**
 * @file
 * Quickstart: assemble a small DISC1 program, run it on the
 * cycle-accurate machine, and inspect the results.
 *
 * Demonstrates the three layers a user touches first:
 *  - the assembler (text -> Program);
 *  - the Machine (load, start a stream, run);
 *  - architectural state access (registers, internal memory, stats).
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

int
main()
{
    // Sum the numbers 1..10 and leave the result in internal memory,
    // then compute 12 * 34 with the hardware multiplier.
    Program prog = assemble(R"(
        .org 0x20              ; program space above the vector table
        main:
            ldi r0, 10         ; loop counter
            ldi r1, 0          ; accumulator
        loop:
            add r1, r1, r0
            subi r0, r0, 1
            cmpi r0, 0
            bne loop
            stmd r1, [0x80]    ; internal memory[0x80] = 55

            ldi r2, 12
            ldi r3, 34
            mul r4, r2, r3
            stmd r4, [0x81]    ; internal memory[0x81] = 408
            halt
    )");

    std::printf("Assembled %zu instruction words. Disassembly:\n\n%s\n",
                prog.size(), disassemble(prog).c_str());

    Machine machine;
    machine.load(prog);
    machine.startStream(0, prog.symbol("main"));
    Cycle cycles = machine.run(10000);

    std::printf("Finished in %llu cycles (idle=%s).\n",
                static_cast<unsigned long long>(cycles),
                machine.idle() ? "yes" : "no");
    std::printf("sum(1..10)  = %u\n", machine.internalMemory().read(0x80));
    std::printf("12 * 34     = %u\n", machine.internalMemory().read(0x81));

    const MachineStats &st = machine.stats();
    std::printf("\nretired=%llu  utilisation=%.3f  redirects=%llu  "
                "squashed(jump)=%llu  bubbles=%llu\n",
                static_cast<unsigned long long>(st.totalRetired),
                st.utilization(),
                static_cast<unsigned long long>(st.redirects),
                static_cast<unsigned long long>(st.squashedJump),
                static_cast<unsigned long long>(st.bubbles));
    std::printf("\nNote the single-stream utilisation: the dependent "
                "loop stalls the pipe, and each taken\nbranch flushes "
                "younger fetches - exactly the losses dynamic "
                "interleaving recovers when more\nstreams are active "
                "(see examples/sensor_fusion).\n");
    return 0;
}
