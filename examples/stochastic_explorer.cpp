/**
 * @file
 * Command-line explorer for the section 4.1 stochastic model: set the
 * workload parameters and machine shape on the command line, get PD,
 * Ps and delta.
 *
 * Usage:
 *   stochastic_explorer [options]
 *     --streams N      1..4 identical streams        (default 2)
 *     --meanon X       burst length, 0 = always on   (default 0)
 *     --meanoff X      idle length                   (default 0)
 *     --meanreq X      instrs between requests, 0 = none (default 20)
 *     --alpha X        memory fraction of requests   (default 0.5)
 *     --tmem N         memory wait cycles            (default 4)
 *     --meanio X       mean I/O wait cycles          (default 12)
 *     --aljmp X        jump fraction                 (default 0.15)
 *     --depth N        pipe depth                    (default 4)
 *     --static         strict static slot allocation
 *     --horizon N      measured cycles               (default 200000)
 *     --reps N         replications                  (default 5)
 *     --load N         preset: standard load 1..4
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "stochastic/experiment.hh"

using namespace disc;

int
main(int argc, char **argv)
{
    LoadSpec spec = standardLoad(1);
    spec.name = "custom";
    unsigned streams = 2;
    unsigned reps = 5;
    StochasticConfig cfg;

    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("option %s needs a value", argv[i]);
        return argv[++i];
    };

    try {
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            if (!std::strcmp(a, "--streams"))
                streams = std::strtoul(need_value(i), nullptr, 0);
            else if (!std::strcmp(a, "--meanon"))
                spec.meanOn = std::strtod(need_value(i), nullptr);
            else if (!std::strcmp(a, "--meanoff"))
                spec.meanOff = std::strtod(need_value(i), nullptr);
            else if (!std::strcmp(a, "--meanreq"))
                spec.meanReq = std::strtod(need_value(i), nullptr);
            else if (!std::strcmp(a, "--alpha"))
                spec.alpha = std::strtod(need_value(i), nullptr);
            else if (!std::strcmp(a, "--tmem"))
                spec.tmem = std::strtoul(need_value(i), nullptr, 0);
            else if (!std::strcmp(a, "--meanio"))
                spec.meanIo = std::strtod(need_value(i), nullptr);
            else if (!std::strcmp(a, "--aljmp"))
                spec.alJmp = std::strtod(need_value(i), nullptr);
            else if (!std::strcmp(a, "--depth"))
                cfg.pipeDepth = std::strtoul(need_value(i), nullptr, 0);
            else if (!std::strcmp(a, "--horizon"))
                cfg.horizon = std::strtoull(need_value(i), nullptr, 0);
            else if (!std::strcmp(a, "--reps"))
                reps = std::strtoul(need_value(i), nullptr, 0);
            else if (!std::strcmp(a, "--static"))
                cfg.schedMode = Scheduler::Mode::Static;
            else if (!std::strcmp(a, "--load"))
                spec = standardLoad(
                    std::strtoul(need_value(i), nullptr, 0));
            else
                fatal("unknown option '%s' (see the file header)", a);
        }

        ExperimentResult r = runPartitioned(cfg, spec, streams, reps);
        std::printf("load '%s' x %u stream(s), depth %u, %s "
                    "scheduling\n",
                    spec.name.c_str(), streams, cfg.pipeDepth,
                    cfg.schedMode == Scheduler::Mode::Dynamic
                        ? "dynamic"
                        : "static");
        std::printf("  meanon=%g meanoff=%g mean_req=%g alpha=%g "
                    "tmem=%u mean_io=%g aljmp=%g\n",
                    spec.meanOn, spec.meanOff, spec.meanReq, spec.alpha,
                    spec.tmem, spec.meanIo, spec.alJmp);
        std::printf("\n  PD    = %.4f (+- %.4f)\n", r.pd.mean(),
                    r.pd.stderror());
        std::printf("  Ps    = %.4f (+- %.4f)\n", r.ps.mean(),
                    r.ps.stderror());
        std::printf("  delta = %+.2f%% (+- %.2f)\n", r.delta.mean(),
                    r.delta.stderror());
        std::printf("  machine busy fraction = %.3f\n",
                    r.busyFraction.mean());
    } catch (const FatalError &e) {
        return 1;
    }
    return 0;
}
