/**
 * @file
 * Regenerates the section 4.2 "effect of only jump instructions"
 * runs: PD and delta versus the jump fraction aljmp, for 1..4
 * streams, with no external accesses.
 *
 * Expected shape: at one stream DISC matches the standard machine
 * (delta ~ 0 - both pay (pipe-1) per jump); with more streams the
 * flushed slots are filled by other streams' instructions, so PD
 * recovers toward 1 and delta grows with aljmp.
 */

#include "bench_util.hh"

using namespace disc;

int
main()
{
    StochasticConfig cfg = bench::defaultConfig();
    const double jmps[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40};

    bench::banner("Sweep: jump-only loads (no external accesses)");

    Table pd("PD vs aljmp");
    Table dt("delta (%) vs aljmp");
    std::vector<std::string> header{"aljmp"};
    for (unsigned k = 1; k <= 4; ++k)
        header.push_back(strprintf("%u IS", k));
    pd.setHeader(header);
    dt.setHeader(header);

    for (double aljmp : jmps) {
        LoadSpec spec{"jump-only", 0, 0, 0, 0, 0, 0, aljmp};
        std::vector<std::string> pd_row{Table::cell(aljmp, 2)};
        std::vector<std::string> dt_row{Table::cell(aljmp, 2)};
        for (unsigned k = 1; k <= 4; ++k) {
            auto r = runPartitioned(cfg, spec, k, bench::kReplications);
            pd_row.push_back(bench::meanErr(r.pd));
            dt_row.push_back(Table::cell(r.delta.mean(), 1));
        }
        pd.addRow(pd_row);
        dt.addRow(dt_row);
    }
    pd.print();
    std::printf("\n");
    dt.print();
    std::printf("\nAnalytic single-stream reference: PD = 1 / (1 + "
                "aljmp * (pipe_len - 1)).\n");
    return 0;
}
