/**
 * @file
 * Regenerates Figure 3.6: the block diagram of DISC1 — rendered from
 * the simulator's *actual* configured parameters so the diagram can
 * never drift from the implementation.
 */

#include <cstdio>

#include "arch/stack_window.hh"
#include "common/types.hh"
#include "sim/machine.hh"

using namespace disc;

int
main()
{
    Machine machine; // default DISC1 configuration

    std::printf("==== Figure 3.6 - Block Diagram of DISC1 ====\n\n");
    std::printf(
        "                      program bus (24-bit)\n"
        "            +---------------+----------------+\n"
        "            |                                 |\n"
        "   +--------v---------+            +----------+---------+\n"
        "   |  program memory  |            |  hardware scheduler|\n"
        "   |  24-bit words    |            |  %2u slots (1/%u)   |\n"
        "   +--------+---------+            +----------+---------+\n"
        "            |   fetch                         | pick/cycle\n"
        "   +--------v---------------------------------v--------+\n"
        "   |          %u-stage pipeline  IF  ID  EX  WR         |\n"
        "   +---+-----------------+------------------------+----+\n"
        "       |                 |                        |\n"
        "  +----v-----+   +-------v--------+     +---------v-------+\n"
        "  | %u x ctx  |   | register file  |     | interrupt unit  |\n"
        "  | PC,SR per|   | %uxR 4xG 4xS    |     | IR/MR per IS    |\n"
        "  | stream   |   | stack windows  |     | %u levels        |\n"
        "  +----------+   +-------+--------+     +---------+-------+\n"
        "                         |                        ^\n"
        "              +----------v-----------+            |\n"
        "              |  internal memory     |            |\n"
        "              |  %4zu x 16 bits      |            |\n"
        "              |  stacks: %ux%3u words |            |\n"
        "              +----------+-----------+            |\n"
        "                         |                        |\n"
        "  +----------+   +------v--------+               |\n"
        "  | 16x16 MUL|   |     ABI       +---------------+\n"
        "  | 1 cycle  |   | 1 outstanding |  device interrupts\n"
        "  +----------+   +------+--------+\n"
        "                        |\n"
        "            asynchronous data bus (16-bit)\n"
        "        +---------+-----+----+----------+\n"
        "        | extmem  | sensors  | timers   | uart/dma ...\n"
        "        +---------+----------+----------+\n\n",
        kScheduleSlots, kScheduleSlots, machine.pipeDepth(),
        kNumStreams, kNumWindowRegs, kNumIntLevels,
        machine.internalMemory().size(), kNumStreams,
        kStackRegionWords);

    std::printf("Configured architectural parameters:\n");
    std::printf("  instruction streams   : %u\n", kNumStreams);
    std::printf("  pipeline depth        : %u (IF, ID/RR, EX, WR)\n",
                machine.pipeDepth());
    std::printf("  scheduler granularity : 1/%u of total throughput\n",
                kScheduleSlots);
    std::printf("  registers per stream  : %u window + %u global "
                "(shared) + %u special\n",
                kNumWindowRegs, kNumGlobalRegs, kNumSpecialRegs);
    std::printf("  internal memory       : %zu x 16-bit words (2 KB)\n",
                machine.internalMemory().size());
    std::printf("  stack regions         : %u words per stream at "
                "0x%03x+\n",
                kStackRegionWords, kStackRegionBase);
    std::printf("  interrupt levels      : %u per stream (bit 7 "
                "highest, bit 0 background)\n",
                kNumIntLevels);
    std::printf("  program word          : 24 bits; data word: 16 "
                "bits (Harvard)\n");
    std::printf("  multiplier            : 16x16 -> 32, single "
                "cycle (MUL/MULH)\n");
    return 0;
}
