/**
 * @file
 * Throughput-guarantee study (paper sections 1.0 and 3.4): with
 * partitionable throughput, "scheduling which is in some senses
 * optimal can be achieved" (Coffman & Denning) — but only if the
 * partition is actually enforced under interference.
 *
 * A critical stream is given a static share; three aggressive
 * interfering streams are always ready. The harness reports the
 * critical stream's observed instruction rate against its guarantee
 * for a range of shares, under both dynamic and static scheduling,
 * and then shows the other face of dynamic reallocation: when the
 * interferers go idle, the critical stream picks up the slack.
 */

#include "bench_util.hh"

using namespace disc;

namespace
{

double
criticalShare(const StochasticConfig &base, unsigned share,
              bool interferers_active)
{
    StochasticConfig cfg = base;
    unsigned rest = kScheduleSlots - share;
    cfg.shares = {share, (rest + 2) / 3, (rest + 1) / 3, rest / 3};

    std::vector<std::unique_ptr<WorkSource>> sources;
    // Critical stream: clean compute (no jumps -> any shortfall is
    // scheduling, not its own stalls).
    sources.push_back(std::make_unique<LoadProcess>(
        LoadSpec{"critical", 0, 0, 0, 0, 0, 0, 0.0}, 11));
    for (unsigned s = 0; s < 3; ++s) {
        LoadSpec hog{"hog", 0, 0, 0, 0, 0, 0, 0.0};
        if (!interferers_active) {
            hog.meanOn = 10;
            hog.meanOff = 1000; // mostly idle
        }
        sources.push_back(
            std::make_unique<LoadProcess>(hog, 21 + s));
    }
    StochasticModel model(cfg, std::move(sources));
    RunTotals t = model.run();
    return static_cast<double>(t.perStreamExecuted[0]) /
           static_cast<double>(t.cycles);
}

} // namespace

int
main()
{
    StochasticConfig cfg = bench::defaultConfig();

    bench::banner("Throughput guarantees under the 16-slot partition");

    Table t("critical stream's instructions/cycle vs its share "
            "(3 saturating interferers)");
    t.setHeader({"share", "guarantee", "dynamic", "static",
                 "dynamic, idle rivals"});
    for (unsigned share : {2u, 4u, 8u, 12u}) {
        double guarantee = static_cast<double>(share) / kScheduleSlots;
        StochasticConfig dyn = cfg;
        StochasticConfig sta = cfg;
        sta.schedMode = Scheduler::Mode::Static;
        double got_dyn = criticalShare(dyn, share, true);
        double got_sta = criticalShare(sta, share, true);
        double got_idle = criticalShare(dyn, share, false);
        t.addRow({strprintf("%u/16", share), Table::cell(guarantee, 3),
                  Table::cell(got_dyn, 3), Table::cell(got_sta, 3),
                  Table::cell(got_idle, 3)});
    }
    t.print();
    std::printf("\nBoth policies honour the guarantee under full "
                "interference (columns ~= guarantee); only the\n"
                "dynamic policy lets the critical stream harvest idle "
                "bandwidth (last column -> ~1.0) - the\npaper's 'own "
                "virtual processor of adjustable computational "
                "power'.\n");
    return 0;
}
