/**
 * @file
 * Regenerates Tables 4.2a and 4.2b: processor utilisation PD and
 * delta for each standard load partitioned into 1..4 instruction
 * streams.
 *
 * Paper claims reproduced here (section 4.2): utilisation rises with
 * the degree of partitioning; gains are large when single-stream
 * utilisation is low and small (but positive) when it is already high
 * (load 3); at one stream delta is near zero or negative.
 */

#include "bench_util.hh"

using namespace disc;

int
main()
{
    StochasticConfig cfg = bench::defaultConfig();

    bench::banner("Table 4.2a - Processor Utilization PD");
    Table pd("PD vs maximum number of instruction streams");
    pd.setHeader({"load", "1", "2", "3", "4"});
    bench::banner("(running...)");

    // All 16 (load, k) cells are independent: run them across the
    // global pool; each cell's replications fold into the same pool.
    std::vector<std::vector<ExperimentResult>> results(
        5, std::vector<ExperimentResult>(4));
    ThreadPool::global().parallelFor(16, [&](std::size_t cell) {
        unsigned ld = 1 + static_cast<unsigned>(cell / 4);
        unsigned k = 1 + static_cast<unsigned>(cell % 4);
        results[ld][k - 1] = runPartitioned(cfg, standardLoad(ld), k,
                                            bench::kReplications);
    });
    for (unsigned ld = 1; ld <= 4; ++ld) {
        std::vector<std::string> row{strprintf("load %u", ld)};
        for (unsigned k = 1; k <= 4; ++k)
            row.push_back(bench::meanErr(results[ld][k - 1].pd));
        pd.addRow(row);
    }
    pd.print();

    bench::banner("Table 4.2b - Delta (%)");
    Table dt("delta = (PD - Ps)/Ps * 100%");
    dt.setHeader({"load", "1", "2", "3", "4"});
    for (unsigned ld = 1; ld <= 4; ++ld) {
        std::vector<std::string> row{strprintf("load %u", ld)};
        for (unsigned k = 1; k <= 4; ++k)
            row.push_back(Table::cell(results[ld][k - 1].delta.mean(), 1));
        dt.addRow(row);
    }
    dt.print();

    bench::banner("Reference: standard-processor utilisation Ps");
    Table ps("Ps (independent of stream count)");
    ps.setHeader({"load", "Ps"});
    for (unsigned ld = 1; ld <= 4; ++ld)
        ps.addRow({strprintf("load %u", ld),
                   bench::meanErr(results[ld][0].ps)});
    ps.print();
    return 0;
}
