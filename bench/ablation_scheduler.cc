/**
 * @file
 * Ablation: dynamic slot reallocation vs a strict static partition.
 *
 * This isolates the "dynamic" in Dynamic Instruction Stream Computer:
 * both configurations keep the 16-slot table, but the static one
 * wastes the slot of any stream that is inactive or waiting. The gap
 * between the two columns is the entire benefit claimed by section
 * 3.4's dynamic interleaving.
 */

#include "bench_util.hh"

using namespace disc;

int
main()
{
    bench::banner("Ablation: dynamic vs static slot allocation "
                  "(4 streams, even partition)");

    Table t("PD by scheduling policy");
    t.setHeader({"load", "dynamic PD", "static PD", "dynamic delta %",
                 "static delta %"});

    for (unsigned ld = 1; ld <= 4; ++ld) {
        StochasticConfig dyn_cfg = bench::defaultConfig();
        StochasticConfig sta_cfg = bench::defaultConfig();
        sta_cfg.schedMode = Scheduler::Mode::Static;
        auto dyn = runPartitioned(dyn_cfg, standardLoad(ld), 4,
                                  bench::kReplications);
        auto sta = runPartitioned(sta_cfg, standardLoad(ld), 4,
                                  bench::kReplications);
        t.addRow({strprintf("load %u", ld), bench::meanErr(dyn.pd),
                  bench::meanErr(sta.pd),
                  Table::cell(dyn.delta.mean(), 1),
                  Table::cell(sta.delta.mean(), 1)});
    }
    t.print();
    std::printf("\nStatic scheduling wastes the slots of waiting/"
                "inactive streams; the dynamic column is the\nDISC "
                "concept, the static column is classic fixed barrel "
                "interleaving (e.g. CDC 6600 PPs / HEP-style\nfixed "
                "rotation) on the same hardware.\n");
    return 0;
}
