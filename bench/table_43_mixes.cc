/**
 * @file
 * Regenerates Tables 4.3a and 4.3b: load 1 combined with each other
 * load, run as (a) a statistical combination in a single stream,
 * (b) two separate streams, (c) three streams (load 1 split in two),
 * (d) four streams (both loads split in two).
 *
 * Paper claim (section 4.2): "The range of improvement of DISC over a
 * traditional single-instruction-stream processor (delta) is dramatic
 * as long as at least two ISs are enabled, especially when
 * traditional processor performance is poor."
 */

#include "bench_util.hh"

using namespace disc;

int
main()
{
    StochasticConfig cfg = bench::defaultConfig();
    LoadSpec l1 = standardLoad(1);

    Table pd("Table 4.3a - Processor Utilization PD");
    pd.setHeader({"loads", "combined", "separated", "three ISs",
                  "four ISs"});
    Table dt("Table 4.3b - Delta (%)");
    dt.setHeader({"loads", "combined", "separated", "three ISs",
                  "four ISs"});

    // 3 mixes x 4 stream configurations = 12 independent cells; run
    // them across the global pool.
    std::vector<std::vector<ExperimentResult>> cells(
        3, std::vector<ExperimentResult>(4));
    ThreadPool::global().parallelFor(12, [&](std::size_t cell) {
        unsigned x = 2 + static_cast<unsigned>(cell / 4);
        unsigned cfg_no = static_cast<unsigned>(cell % 4);
        LoadSpec lx = standardLoad(x);
        std::vector<SourceFactory> streams;
        switch (cfg_no) {
          case 0:
            streams = {makeCombinedFactory(l1, lx)};
            break;
          case 1:
            streams = {makeLoadFactory(l1), makeLoadFactory(lx)};
            break;
          case 2:
            streams = {makeLoadFactory(l1), makeLoadFactory(l1),
                       makeLoadFactory(lx)};
            break;
          default:
            streams = {makeLoadFactory(l1), makeLoadFactory(l1),
                       makeLoadFactory(lx), makeLoadFactory(lx)};
            break;
        }
        cells[x - 2][cfg_no] =
            runExperiment(cfg, streams, bench::kReplications);
    });

    for (unsigned x = 2; x <= 4; ++x) {
        const ExperimentResult &combined = cells[x - 2][0];
        const ExperimentResult &separated = cells[x - 2][1];
        const ExperimentResult &three = cells[x - 2][2];
        const ExperimentResult &four = cells[x - 2][3];

        std::string label = strprintf("1 & %u", x);
        pd.addRow({label, bench::meanErr(combined.pd),
                   bench::meanErr(separated.pd), bench::meanErr(three.pd),
                   bench::meanErr(four.pd)});
        dt.addRow({label, Table::cell(combined.delta.mean(), 1),
                   Table::cell(separated.delta.mean(), 1),
                   Table::cell(three.delta.mean(), 1),
                   Table::cell(four.delta.mean(), 1)});
    }

    bench::banner("Table 4.3 - Load 1 Combined With Each Other Load");
    pd.print();
    std::printf("\n");
    dt.print();
    return 0;
}
