/**
 * @file
 * Regenerates Figure 3.1: an interleaved pipeline in which every
 * in-flight instruction belongs to a different stream, so no data or
 * control hazards exist between pipe stages.
 *
 * DISC1 has four streams and a four-stage pipe (the paper's figure
 * illustrates the concept with five); with all four streams active
 * and an even partition, consecutive pipe slots carry instructions
 * "a1, b2, c3, d4, ..." exactly as in the figure.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

using namespace disc;

int
main()
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
            ldi r3, 3
            ldi r4, 4
            ldi r5, 5
            ldi r6, 6
            halt
    )");

    Machine m;
    m.load(p);
    PipeTrace trace(m.pipeDepth(), 32);
    m.setTrace(&trace);
    for (StreamId s = 0; s < kNumStreams; ++s)
        m.startStream(s, p.symbol("entry"));
    m.run(16, false);

    std::printf("==== Figure 3.1 - Interleaved Pipeline ====\n\n");
    std::printf("Four active streams, even partition; cell \"a1\" means "
                "instruction 'a' of stream 1.\n\n");
    std::printf("%s\n", trace.render().c_str());
    std::printf("Every column holds instructions from distinct streams: "
                "no intra-stream hazards.\n");
    std::printf("Utilisation over the window: %.3f\n",
                m.stats().utilization());
    return 0;
}
