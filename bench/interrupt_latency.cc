/**
 * @file
 * Regenerates the section 4.1 interrupt-latency comparison.
 *
 * The same three-task automotive-style task set runs in two
 * configurations:
 *  - DISC: each task dedicated to its own instruction stream; the
 *    handler starts within a few cycles of the request (single-cycle
 *    context activation);
 *  - conventional: all tasks vector onto one stream, paying a
 *    register save/restore per activation and priority blocking.
 *
 * Reported per task: mean/worst response time (request -> handler
 * completion), deadline misses, plus the vector-entry latency
 * histogram and background throughput.
 */

#include <cstdio>

#include "bench_util.hh"
#include "rts/system.hh"

using namespace disc;

namespace
{

std::vector<RtsTask>
taskSet(bool dedicated)
{
    // Crank-angle style fast task, mid-rate fuel task, slow diagnostic
    // task. In the conventional build everything shares stream 1.
    std::vector<RtsTask> tasks = {
        {"crank", static_cast<StreamId>(dedicated ? 1 : 1), 7, 230, 0,
         6, 1},
        {"fuel", static_cast<StreamId>(dedicated ? 2 : 1), 5, 610, 0,
         20, 2},
        {"diag", static_cast<StreamId>(dedicated ? 3 : 1), 2, 1990, 0,
         60, 4},
    };
    return tasks;
}

void
report(const char *label, const RtsReport &rep)
{
    std::printf("%s\n", label);
    Table t("  per-task response (cycles)");
    t.setHeader({"task", "activations", "mean resp", "worst resp",
                 "misses"});
    for (const RtsTaskResult &r : rep.tasks) {
        t.addRow({r.name,
                  Table::cell(static_cast<long long>(r.activations)),
                  Table::cell(r.response.mean(), 1),
                  Table::cell(static_cast<long long>(r.worstResponse)),
                  Table::cell(static_cast<long long>(r.deadlineMisses))});
    }
    t.print();
    std::printf("  vector latency: mean %.2f, worst %llu cycles\n",
                rep.meanVectorLatency,
                static_cast<unsigned long long>(rep.worstVectorLatency));
    std::printf("  background progress: %llu iterations, utilisation "
                "%.3f\n\n",
                static_cast<unsigned long long>(rep.backgroundProgress),
                rep.utilization);
}

} // namespace

int
main()
{
    bench::banner("Interrupt latency: DISC streams vs conventional "
                  "context switching");

    RtsConfig disc_cfg;
    disc_cfg.horizon = 200000;
    disc_cfg.contextSwitchOverhead = 0;
    RtsSystem disc_sys(taskSet(/*dedicated=*/true), disc_cfg);
    RtsReport disc_rep = disc_sys.run();
    report("DISC: one stream per task, zero-overhead activation",
           disc_rep);

    RtsConfig conv_cfg;
    conv_cfg.horizon = 200000;
    conv_cfg.contextSwitchOverhead = 16; // save/restore 8 regs each way
    RtsSystem conv_sys(taskSet(/*dedicated=*/false), conv_cfg);
    RtsReport conv_rep = conv_sys.run();
    report("Conventional: shared stream + register save/restore",
           conv_rep);

    double disc_worst = 0, conv_worst = 0;
    for (std::size_t i = 0; i < disc_rep.tasks.size(); ++i) {
        disc_worst = std::max(
            disc_worst,
            static_cast<double>(disc_rep.tasks[i].worstResponse));
        conv_worst = std::max(
            conv_worst,
            static_cast<double>(conv_rep.tasks[i].worstResponse));
    }
    std::printf("Worst-case response, conventional / DISC: %.2fx\n",
                conv_worst / disc_worst);
    std::printf("(Real-time systems are judged on the worst case, not "
                "the average - section 1.0.)\n");
    return 0;
}
