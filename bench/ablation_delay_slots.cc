/**
 * @file
 * Ablation: delayed branching vs dynamic interleaving (paper sections
 * 2.0 and 4.1: "delayed branching can be used to help alleviate the
 * number of cycles needed to be flushed. However, delayed branching
 * can only be applied to statically analyzable portions of the design
 * and is less effective as pipeline depth increases").
 *
 * A branch-dense kernel (one taken jump every four instructions, all
 * independent — the compiler's best case for filling delay slots)
 * runs single-stream with 0/1/2 delay slots and multi-stream with
 * none, across pipe depths. Interleaving recovers everything the
 * delay slots recover and keeps scaling where they stop.
 */

#include <cstdio>

#include "common/table.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

namespace
{

double
utilization(unsigned depth, unsigned delay_slots, unsigned streams)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1       ; independent fillers: exactly what a
            ldi r2, 2       ; compiler would hoist into delay slots
            ldi r3, 3
            jmp entry
    )");
    MachineConfig cfg;
    cfg.pipeDepth = depth;
    cfg.branchDelaySlots = delay_slots;
    Machine m(cfg);
    m.load(p);
    for (StreamId s = 0; s < streams; ++s)
        m.startStream(s, p.symbol("entry"));
    m.run(60000, false);
    return m.stats().utilization();
}

} // namespace

int
main()
{
    std::printf("==== Ablation: delayed branching vs interleaving "
                "====\n\n");

    Table t("utilisation on a branch-dense kernel (jump every 4th "
            "instruction)");
    t.setHeader({"pipe depth", "1 IS, 0 slots", "1 IS, 1 slot",
                 "1 IS, 2 slots", "4 IS, 0 slots"});
    for (unsigned depth : {4u, 5u, 6u, 8u}) {
        t.addRow({Table::cell(static_cast<long long>(depth)),
                  Table::cell(utilization(depth, 0, 1), 3),
                  Table::cell(utilization(depth, 1, 1), 3),
                  Table::cell(utilization(depth, 2, 1), 3),
                  Table::cell(utilization(depth, 0, 4), 3)});
    }
    t.print();

    std::printf(
        "\nDelay slots claw back a fixed number of issue slots per "
        "branch, so their benefit shrinks\nrelative to the flush cost "
        "as the pipe deepens - and they only work when the compiler "
        "can\nfill them (this kernel is the best case). Four-way "
        "interleaving reaches full utilisation at\nevery depth with "
        "no compiler support and no static analysis, which is the "
        "paper's argument.\n");
    return 0;
}
