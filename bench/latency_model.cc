/**
 * @file
 * Future-work study (paper section 5.0): "appropriate measures of
 * interrupt latency need to be defined and modeled."
 *
 * Two measures are defined and measured:
 *  1. scheduling latency (stochastic model) — cycles from a stream's
 *     activation (interrupt arrival starting a burst) to its first
 *     issued instruction, as a function of competing load, partition
 *     shares and scheduling policy;
 *  2. vector-entry latency (cycle-accurate machine, reported by
 *     bench/interrupt_latency) — cycles from the request bit to the
 *     first handler fetch.
 *
 * The paper's observation holds: the *common* latency figure (time to
 * start a trivial handler) is tiny by construction on DISC; the
 * meaningful figure under load is the scheduling latency, which is
 * bounded by the slot spacing of the stream's partition.
 */

#include "bench_util.hh"

using namespace disc;

namespace
{

struct LatencyRow
{
    double mean;
    std::uint64_t p95;
    std::uint64_t worst;
};

LatencyRow
measure(Scheduler::Mode mode,
        const std::array<unsigned, kNumStreams> &shares,
        unsigned interferers)
{
    StochasticConfig cfg = bench::defaultConfig();
    cfg.schedMode = mode;
    cfg.shares = shares;

    std::vector<std::unique_ptr<WorkSource>> sources;
    // The bursty "interrupt" stream whose activations we time.
    sources.push_back(std::make_unique<LoadProcess>(
        LoadSpec{"evt", /*meanOn=*/15, /*meanOff=*/150, 0, 0, 0, 0,
                 0.1},
        7));
    for (unsigned s = 0; s < interferers; ++s) {
        sources.push_back(std::make_unique<LoadProcess>(
            LoadSpec{"bg", 0, 0, 0, 0, 0, 0, 0.1}, 30 + s));
    }
    StochasticModel model(cfg, std::move(sources));
    RunTotals t = model.run();
    return {t.activationLatency.mean(), t.activationLatency.percentile(0.95),
            t.activationLatency.maxValue()};
}

} // namespace

int
main()
{
    bench::banner("Defining interrupt latency: scheduling latency of a "
                  "bursty stream");

    Table t("activation -> first issue (cycles), bursty stream vs "
            "always-ready interferers");
    t.setHeader({"configuration", "mean", "p95", "worst"});

    struct Case
    {
        const char *label;
        Scheduler::Mode mode;
        std::array<unsigned, kNumStreams> shares;
        unsigned interferers;
    };
    const Case cases[] = {
        {"alone, even shares, dynamic", Scheduler::Mode::Dynamic,
         {0, 0, 0, 0}, 0},
        {"3 interferers, even, dynamic", Scheduler::Mode::Dynamic,
         {4, 4, 4, 4}, 3},
        {"3 interferers, even, static", Scheduler::Mode::Static,
         {4, 4, 4, 4}, 3},
        {"3 interferers, evt=8/16, dynamic", Scheduler::Mode::Dynamic,
         {8, 3, 3, 2}, 3},
        {"3 interferers, evt=1/16, dynamic", Scheduler::Mode::Dynamic,
         {1, 5, 5, 5}, 3},
        {"3 interferers, evt=1/16, static", Scheduler::Mode::Static,
         {1, 5, 5, 5}, 3},
    };
    for (const Case &c : cases) {
        LatencyRow r = measure(c.mode, c.shares, c.interferers);
        t.addRow({c.label, Table::cell(r.mean, 2),
                  Table::cell(static_cast<long long>(r.p95)),
                  Table::cell(static_cast<long long>(r.worst))});
    }
    t.print();

    std::printf("\nReading: worst-case scheduling latency is bounded "
                "by the slot spacing of the stream's\npartition "
                "(~16/share cycles); dynamic reallocation improves the "
                "mean but the *guarantee*\ncomes from the static "
                "share - exactly why DISC keeps both mechanisms.\n");
    return 0;
}
