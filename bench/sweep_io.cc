/**
 * @file
 * Regenerates the section 4.2 "external I/O only" runs: PD and delta
 * versus the I/O service time (mean_io) and request rate, with no
 * jump instructions.
 *
 * Expected shape: single-stream delta is *negative* (DISC flushes and
 * refetches around each wait while the standard pipe just stalls);
 * multiple streams overlap the waits and delta turns strongly
 * positive until the shared bus itself saturates.
 */

#include "bench_util.hh"

using namespace disc;

int
main()
{
    StochasticConfig cfg = bench::defaultConfig();

    bench::banner("Sweep: I/O-only loads (aljmp = 0, alpha = 0)");

    {
        Table pd("PD vs mean_io (mean_req = 10)");
        Table dt("delta (%) vs mean_io (mean_req = 10)");
        std::vector<std::string> header{"mean_io"};
        for (unsigned k = 1; k <= 4; ++k)
            header.push_back(strprintf("%u IS", k));
        pd.setHeader(header);
        dt.setHeader(header);
        for (double mean_io : {2.0, 4.0, 8.0, 12.0, 16.0, 24.0}) {
            LoadSpec spec{"io-only", 0, 0, 10, 0.0, 0, mean_io, 0.0};
            std::vector<std::string> pd_row{Table::cell(mean_io, 0)};
            std::vector<std::string> dt_row{Table::cell(mean_io, 0)};
            for (unsigned k = 1; k <= 4; ++k) {
                auto r =
                    runPartitioned(cfg, spec, k, bench::kReplications);
                pd_row.push_back(bench::meanErr(r.pd));
                dt_row.push_back(Table::cell(r.delta.mean(), 1));
            }
            pd.addRow(pd_row);
            dt.addRow(dt_row);
        }
        pd.print();
        std::printf("\n");
        dt.print();
    }

    std::printf("\n");

    {
        Table dt("delta (%) vs request rate (mean_io = 8)");
        std::vector<std::string> header{"mean_req"};
        for (unsigned k = 1; k <= 4; ++k)
            header.push_back(strprintf("%u IS", k));
        dt.setHeader(header);
        for (double mean_req : {4.0, 8.0, 16.0, 32.0, 64.0}) {
            LoadSpec spec{"io-only", 0, 0, mean_req, 0.0, 0, 8.0, 0.0};
            std::vector<std::string> row{Table::cell(mean_req, 0)};
            for (unsigned k = 1; k <= 4; ++k) {
                auto r =
                    runPartitioned(cfg, spec, k, bench::kReplications);
                row.push_back(Table::cell(r.delta.mean(), 1));
            }
            dt.addRow(row);
        }
        dt.print();
        std::printf("\nNote the bus-saturation regime at high request "
                    "rates: extra streams stop helping because the\n"
                    "single asynchronous bus is the bottleneck.\n");
    }
    return 0;
}
