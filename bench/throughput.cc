/**
 * @file
 * Host-throughput tracker: how fast the simulators run on this
 * machine, written to BENCH_throughput.json so the performance
 * trajectory of the repo is recorded PR over PR.
 *
 * Measured quantities:
 *  - cycle-accurate Machine: simulated cycles/sec and simulated MIPS
 *    (retired instructions/sec) for a single-stream compute loop, a
 *    four-stream compute loop and a four-stream external-bus workload;
 *  - batch-width sweep: the four-stream compute loop advanced through
 *    MachineBatch lockstep dispatch vs per-machine Machine::run() at
 *    widths {1, 4, 16, 64}, best-of-three per side. The recorded
 *    batched/scalar ratio is within-run and therefore host-speed-
 *    independent — it is the absolute promise check_perf.py's
 *    --batch-min-ratio gate holds;
 *  - stochastic model: simulated cycles/sec (events) for a four-stream
 *    standard-load run;
 *  - experiment harness: wall-clock for the same replicated experiment
 *    swept over explicit pool sizes {1, 2, 4, hardware}, recording the
 *    thread-scaling curve (speedup of each size over the 1-thread
 *    pool). Sweeping explicit sizes — rather than timing whatever
 *    ThreadPool::global() happens to be — is what makes the recorded
 *    speedup meaningful on any host: the old schema-1 bench compared
 *    the serial pool against a global pool that is itself sized 1 on
 *    single-core machines, and dutifully recorded speedup 0.99.
 *
 * Usage: throughput [--out FILE] [--budget SECONDS-PER-MEASUREMENT]
 * The default output path is BENCH_throughput.json in the current
 * directory (CI runs benches from the repo root).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/devices.hh"
#include "bench_util.hh"
#include "common/threadpool.hh"
#include "isa/assembler.hh"
#include "sim/batch.hh"
#include "sim/machine.hh"
#include "stochastic/experiment.hh"

using namespace disc;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One machine workload measurement. */
struct MachineRate
{
    double cyclesPerSec = 0;
    double mips = 0; ///< retired instructions per second / 1e6
};

/**
 * Execution tier under measurement. The default-configured machine
 * (all tiers enabled, environment overrides respected) feeds the
 * long-lived "machine" section; the dispatch sweep forces each tier
 * explicitly so the per-tier numbers are comparable across hosts and
 * environments.
 */
enum class Dispatch
{
    Default,    ///< whatever Machine's config + environment picked
    Interp,     ///< legacy switch interpreter (no uop tables)
    Uop,        ///< micro-op dispatch tables, no superblocks
    Superblock, ///< superblock tier above the uop tables
};

constexpr Dispatch kDispatchModes[] = {Dispatch::Interp, Dispatch::Uop,
                                       Dispatch::Superblock};

const char *
dispatchName(Dispatch d)
{
    switch (d) {
      case Dispatch::Interp: return "interp";
      case Dispatch::Uop: return "uop";
      case Dispatch::Superblock: return "superblock";
      default: return "default";
    }
}

void
applyDispatch(Machine &m, Dispatch d)
{
    switch (d) {
      case Dispatch::Default:
        break;
      case Dispatch::Interp:
        m.setUopDispatch(false);
        m.setSuperblockExec(false);
        break;
      case Dispatch::Uop:
        m.setUopDispatch(true);
        m.setSuperblockExec(false);
        break;
      case Dispatch::Superblock:
        m.setUopDispatch(true);
        m.setSuperblockExec(true);
        break;
    }
}

/**
 * Step a machine in chunks until the time budget elapses and report
 * simulated cycles/sec and MIPS over the whole run.
 */
MachineRate
measureMachine(Machine &m, double budget_sec)
{
    constexpr Cycle kChunk = 100000;
    m.run(kChunk, false); // warm the caches before timing
    Cycle cycles0 = m.stats().cycles;
    std::uint64_t retired0 = m.stats().totalRetired;
    auto start = Clock::now();
    double elapsed = 0;
    do {
        m.run(kChunk, false);
        elapsed = secondsSince(start);
    } while (elapsed < budget_sec);
    MachineRate r;
    r.cyclesPerSec =
        static_cast<double>(m.stats().cycles - cycles0) / elapsed;
    r.mips = static_cast<double>(m.stats().totalRetired - retired0) /
             elapsed / 1e6;
    return r;
}

MachineRate
measureComputeLoop(unsigned streams, double budget_sec,
                   Dispatch d = Dispatch::Default)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
            add r3, r1, r2
            add r4, r3, r2
            sub r5, r4, r1
            jmp entry
    )");
    Machine m;
    m.load(p);
    applyDispatch(m, d);
    for (StreamId s = 0; s < streams; ++s)
        m.startStream(s, p.symbol("entry"));
    return measureMachine(m, budget_sec);
}

MachineRate
measureBusTraffic(double budget_sec, ExternalMemoryDevice &dev,
                  Dispatch d = Dispatch::Default)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi  g0, 0x00
            ldih g0, 0x10
        loop:
            ld   r1, [g0]
            addi r2, r2, 1
            st   r2, [g0+1]
            jmp  loop
    )");
    Machine m;
    m.attachDevice(0x1000, 64, &dev);
    m.load(p);
    applyDispatch(m, d);
    for (StreamId s = 0; s < kNumStreams; ++s)
        m.startStream(s, p.symbol("entry"));
    return measureMachine(m, budget_sec);
}

/**
 * I/O-bound scenario: four streams hammering very slow devices, so
 * almost every simulated cycle is a wait state. This is the workload
 * the event-scheduled core's fast-forward is built for — the machine
 * jumps from completion to completion instead of idling cycle by
 * cycle.
 */
MachineRate
measureIoBound(double budget_sec)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            mov  r7, sr
            shr  r7, r7, g2   ; g2 = 4: stream id from SR[5:4]
            andi r7, r7, 3
            ldi  g0, 0x00
            ldih g0, 0x10     ; 0x1000 + 0x100 * stream id
            shl  r6, r7, g3   ; g3 = 8
            add  g0, g0, r6
        loop:
            ld   r1, [g0]
            addi r2, r2, 1
            st   r2, [g0+1]
            jmp  loop
    )");
    Machine m;
    std::vector<std::unique_ptr<ExternalMemoryDevice>> devs;
    for (StreamId s = 0; s < kNumStreams; ++s) {
        devs.push_back(std::make_unique<ExternalMemoryDevice>(64, 100));
        m.attachDevice(static_cast<Addr>(0x1000 + s * 0x100), 64,
                       devs.back().get());
    }
    m.load(p);
    m.writeReg(0, reg::G2, 4);
    m.writeReg(0, reg::G3, 8);
    for (StreamId s = 0; s < kNumStreams; ++s)
        m.startStream(s, p.symbol("entry"));
    return measureMachine(m, budget_sec);
}

/** One point on the batch-width sweep. */
struct BatchPoint
{
    unsigned width = 1;
    double batchedCyclesPerSec = 0; ///< MachineBatch lockstep
    double scalarCyclesPerSec = 0;  ///< per-machine Machine::run()
    double ratio = 0;               ///< batched / scalar
};

/**
 * Batched-vs-scalar throughput at one batch width on the four-stream
 * compute loop. Both sides advance `width` identically configured
 * machines by the same per-call budget; the only difference is
 * whether a MachineBatch dispatch or a per-machine run() loop drives
 * them, so the ratio is a host-speed-independent measure of what the
 * lockstep tier buys. Samples are interleaved batched/scalar and the
 * best of three kept per side: the workload is deterministic, so
 * repeats only reject scheduler noise — single samples on a busy
 * host swing the ratio by +-0.1.
 */
BatchPoint
measureBatchWidth(unsigned width, double budget_sec)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
            add r3, r1, r2
            add r4, r3, r2
            sub r5, r4, r1
            jmp entry
    )");
    auto build = [&p](unsigned n) {
        std::vector<std::unique_ptr<Machine>> ms;
        for (unsigned i = 0; i < n; ++i) {
            ms.push_back(std::make_unique<Machine>());
            ms.back()->load(p);
            for (StreamId s = 0; s < kNumStreams; ++s)
                ms.back()->startStream(s, p.symbol("entry"));
        }
        return ms;
    };
    std::vector<std::unique_ptr<Machine>> bms = build(width);
    std::vector<std::unique_ptr<Machine>> sms = build(width);
    MachineBatch mb(width);
    for (std::unique_ptr<Machine> &m : bms)
        mb.add(m.get());

    constexpr Cycle kChunk = 100000;
    auto batchedOnce = [&] { mb.run(kChunk, false); };
    auto scalarOnce = [&] {
        for (std::unique_ptr<Machine> &m : sms)
            m->run(kChunk, false);
    };
    // With stop_when_idle = false every machine advances exactly
    // kChunk cycles per call on this never-idle loop, so a call is a
    // fixed quantum of simulated work on both sides.
    const double per_call = static_cast<double>(kChunk) * width;
    auto sample = [&](const std::function<void()> &once) {
        std::uint64_t calls = 0;
        auto start = Clock::now();
        double elapsed = 0;
        do {
            once();
            ++calls;
            elapsed = secondsSince(start);
        } while (elapsed < budget_sec);
        return static_cast<double>(calls) * per_call / elapsed;
    };

    batchedOnce(); // warm both paths before timing
    scalarOnce();
    BatchPoint pt;
    pt.width = width;
    for (int rep = 0; rep < 3; ++rep) {
        pt.batchedCyclesPerSec =
            std::max(pt.batchedCyclesPerSec, sample(batchedOnce));
        pt.scalarCyclesPerSec =
            std::max(pt.scalarCyclesPerSec, sample(scalarOnce));
    }
    pt.ratio = pt.scalarCyclesPerSec > 0
                   ? pt.batchedCyclesPerSec / pt.scalarCyclesPerSec
                   : 0;
    return pt;
}

double
measureStochastic(double budget_sec)
{
    StochasticConfig cfg;
    cfg.warmup = 0;
    cfg.horizon = 100000;
    std::uint64_t runs = 0;
    auto start = Clock::now();
    double elapsed = 0;
    do {
        std::vector<std::unique_ptr<WorkSource>> sources;
        for (unsigned s = 0; s < kNumStreams; ++s) {
            sources.push_back(std::make_unique<LoadProcess>(
                standardLoad(1), 1000 + runs * kNumStreams + s));
        }
        StochasticModel model(cfg, std::move(sources));
        model.run();
        ++runs;
        elapsed = secondsSince(start);
    } while (elapsed < budget_sec);
    return static_cast<double>(runs) *
           static_cast<double>(cfg.horizon) / elapsed;
}

double
timeExperiment(ThreadPool &pool)
{
    StochasticConfig cfg;
    cfg.warmup = 1000;
    cfg.horizon = 100000;
    // Best of three runs: replication results are deterministic, so
    // repeats only reject scheduler noise in the wall-clock.
    double best = 0;
    for (int run = 0; run < 3; ++run) {
        auto start = Clock::now();
        runPartitioned(cfg, standardLoad(1), kNumStreams, 16, 1, &pool);
        double sec = secondsSince(start);
        if (run == 0 || sec < best)
            best = sec;
    }
    return best;
}

/** One point on the experiment thread-scaling curve. */
struct ScalingPoint
{
    unsigned threads = 1;
    double sec = 0;
    double speedup = 1;
};

/**
 * Time the replicated experiment on pools of 1, 2, 4 and
 * hardware_concurrency() threads (deduplicated, ascending).
 */
std::vector<ScalingPoint>
measureScaling()
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    std::vector<unsigned> sizes{1, 2, 4};
    if (std::find(sizes.begin(), sizes.end(), hw) == sizes.end())
        sizes.push_back(hw);
    std::sort(sizes.begin(), sizes.end());

    std::vector<ScalingPoint> curve;
    for (unsigned t : sizes) {
        ThreadPool pool(t);
        ScalingPoint p;
        p.threads = t;
        p.sec = timeExperiment(pool);
        p.speedup =
            curve.empty() || p.sec <= 0 ? 1.0 : curve.front().sec / p.sec;
        curve.push_back(p);
    }
    return curve;
}

void
printRate(const char *label, const MachineRate &r)
{
    std::printf("  %-22s %10.2f Mcycles/s  %8.2f MIPS\n", label,
                r.cyclesPerSec / 1e6, r.mips);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_throughput.json";
    double budget = 0.3;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--budget") && i + 1 < argc) {
            budget = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: throughput [--out FILE] [--budget S]\n");
            return 1;
        }
    }

    bench::banner("Simulator throughput on this host");

    MachineRate single = measureComputeLoop(1, budget);
    printRate("machine 1 stream", single);
    MachineRate four = measureComputeLoop(kNumStreams, budget);
    printRate("machine 4 streams", four);
    ExternalMemoryDevice dev(64, 5);
    MachineRate bus = measureBusTraffic(budget, dev);
    printRate("machine 4 streams+bus", bus);
    MachineRate io = measureIoBound(budget);
    printRate("machine io-bound", io);

    // Per-tier sweep: the same compute/bus workloads with each
    // execution tier forced, so the recorded interp/uop/superblock
    // ratios are host-independent (all three points move together
    // with host speed).
    struct DispatchRow
    {
        const char *scenario;
        MachineRate rates[3];
    };
    DispatchRow drows[] = {
        {"single_stream", {}},
        {"four_stream", {}},
        {"four_stream_bus", {}},
    };
    for (unsigned mi = 0; mi < 3; ++mi) {
        Dispatch d = kDispatchModes[mi];
        drows[0].rates[mi] = measureComputeLoop(1, budget, d);
        drows[1].rates[mi] = measureComputeLoop(kNumStreams, budget, d);
        ExternalMemoryDevice ddev(64, 5);
        drows[2].rates[mi] = measureBusTraffic(budget, ddev, d);
    }
    for (const DispatchRow &row : drows) {
        for (unsigned mi = 0; mi < 3; ++mi) {
            std::string label = std::string(row.scenario) + "/" +
                                dispatchName(kDispatchModes[mi]);
            printRate(label.c_str(), row.rates[mi]);
        }
    }

    // Batch-width sweep: lockstep MachineBatch vs per-machine run()
    // on the four-stream compute loop. The ratio column is the
    // host-independent quantity (both sides move with host speed).
    constexpr unsigned kBatchWidths[] = {1, 4, 16, 64};
    std::vector<BatchPoint> bpoints;
    for (unsigned w : kBatchWidths) {
        bpoints.push_back(measureBatchWidth(w, budget));
        const BatchPoint &bp = bpoints.back();
        std::printf("  batch width %-10u %10.2f Mcycles/s  vs scalar "
                    "%.2f Mcycles/s  ratio %.2fx\n",
                    bp.width, bp.batchedCyclesPerSec / 1e6,
                    bp.scalarCyclesPerSec / 1e6, bp.ratio);
    }

    double stochastic = measureStochastic(budget);
    std::printf("  %-22s %10.2f Mcycles/s\n", "stochastic model",
                stochastic / 1e6);

    std::vector<ScalingPoint> curve = measureScaling();
    for (const ScalingPoint &p : curve) {
        std::printf("  experiment pool(%u)%*s %10.3f s   %7.2fx\n",
                    p.threads, p.threads < 10 ? 12 : 11, "", p.sec,
                    p.speedup);
    }

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    unsigned hw = std::thread::hardware_concurrency();
    out << "{\n"
        << "  \"schema\": 4,\n"
        << "  \"host_threads\": " << (hw ? hw : 1) << ",\n"
        << "  \"machine\": {\n";
    auto emit = [&out](const char *key, const MachineRate &r,
                       bool last) {
        out << "    \"" << key << "\": {\"cycles_per_sec\": "
            << r.cyclesPerSec << ", \"mips\": " << r.mips << "}"
            << (last ? "\n" : ",\n");
    };
    emit("single_stream", single, false);
    emit("four_stream", four, false);
    emit("four_stream_bus", bus, false);
    emit("io_bound", io, true);
    out << "  },\n"
        << "  \"dispatch\": {\n";
    for (std::size_t ri = 0; ri < 3; ++ri) {
        const DispatchRow &row = drows[ri];
        out << "    \"" << row.scenario << "\": {";
        for (unsigned mi = 0; mi < 3; ++mi) {
            const MachineRate &r = row.rates[mi];
            out << "\"" << dispatchName(kDispatchModes[mi])
                << "\": {\"cycles_per_sec\": " << r.cyclesPerSec
                << ", \"mips\": " << r.mips << "}"
                << (mi + 1 < 3 ? ", " : "");
        }
        out << "}" << (ri + 1 < 3 ? ",\n" : "\n");
    }
    out << "  },\n"
        << "  \"batch\": {\n"
        << "    \"widths\": [\n";
    for (std::size_t i = 0; i < bpoints.size(); ++i) {
        const BatchPoint &bp = bpoints[i];
        out << "      {\"width\": " << bp.width
            << ", \"batched_cycles_per_sec\": " << bp.batchedCyclesPerSec
            << ", \"scalar_cycles_per_sec\": " << bp.scalarCyclesPerSec
            << ", \"ratio\": " << bp.ratio << "}"
            << (i + 1 < bpoints.size() ? ",\n" : "\n");
    }
    out << "    ]\n"
        << "  },\n"
        << "  \"stochastic\": {\"model_cycles_per_sec\": " << stochastic
        << "},\n"
        << "  \"experiment\": {\n"
        << "    \"serial_sec\": " << curve.front().sec << ",\n"
        << "    \"scaling\": [\n";
    for (std::size_t i = 0; i < curve.size(); ++i) {
        out << "      {\"threads\": " << curve[i].threads
            << ", \"sec\": " << curve[i].sec
            << ", \"speedup\": " << curve[i].speedup << "}"
            << (i + 1 < curve.size() ? ",\n" : "\n");
    }
    out << "    ]\n"
        << "  }\n"
        << "}\n";
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
