/**
 * @file
 * Regenerates the section 4.2 pipeline-length runs: PD and delta for
 * load 1 as the pipe deepens from 2 to 8 stages.
 *
 * Expected shape: deeper pipes amplify the per-jump flush cost, so
 * single-stream utilisation falls with depth while interleaving over
 * four streams recovers most of it; delta therefore grows with depth
 * (the paper: delayed branching "is less effective as pipeline depth
 * increases" - interleaving is the scalable alternative).
 */

#include "bench_util.hh"

using namespace disc;

int
main()
{
    bench::banner("Sweep: pipeline depth (load 1)");

    Table pd("PD vs pipe depth");
    Table dt("delta (%) vs pipe depth");
    std::vector<std::string> header{"depth"};
    for (unsigned k = 1; k <= 4; ++k)
        header.push_back(strprintf("%u IS", k));
    pd.setHeader(header);
    dt.setHeader(header);

    for (unsigned depth : {2u, 3u, 4u, 5u, 6u, 8u}) {
        StochasticConfig cfg = bench::defaultConfig();
        cfg.pipeDepth = depth;
        std::vector<std::string> pd_row{Table::cell((long long)depth)};
        std::vector<std::string> dt_row{Table::cell((long long)depth)};
        for (unsigned k = 1; k <= 4; ++k) {
            auto r = runPartitioned(cfg, standardLoad(1), k,
                                    bench::kReplications);
            pd_row.push_back(bench::meanErr(r.pd));
            dt_row.push_back(Table::cell(r.delta.mean(), 1));
        }
        pd.addRow(pd_row);
        dt.addRow(dt_row);
    }
    pd.print();
    std::printf("\n");
    dt.print();
    return 0;
}
