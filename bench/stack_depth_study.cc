/**
 * @file
 * Future-work study (paper section 5.0): "the depth and size of
 * memory usage in the stack windows could be evaluated by stochastic
 * means".
 *
 * A stochastic call-tree process models a control program: at every
 * step the program calls (probability p_call, geometric frame size),
 * returns, or executes straight-line code; interrupt entries push one
 * extra frame at random times. For each candidate stack-region size
 * the harness reports the depth distribution and the overflow
 * probability per million instructions, giving the region-size
 * choice a quantitative basis (DISC1 reserves 128 words per stream).
 */

#include <cstdio>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

using namespace disc;

namespace
{

struct DepthResult
{
    double meanDepth;
    std::uint64_t maxDepth;
    double p95;
    double overflowsPerMInstr;
};

DepthResult
simulate(unsigned region_words, double p_call, double mean_locals,
         double p_int, std::uint64_t steps, std::uint64_t seed)
{
    Rng rng(seed);
    Histogram depth_hist(512);
    std::vector<unsigned> frames; // locals+RA per active frame
    std::uint64_t depth = 0;
    std::uint64_t overflows = 0;
    const unsigned capacity = region_words - kNumWindowRegs;

    // Returns are slightly likelier than calls so the depth process
    // is stationary (real call trees unwind): geometric-tailed depth.
    const double p_ret = p_call * 1.25;

    for (std::uint64_t i = 0; i < steps; ++i) {
        double u = rng.uniform();
        bool interrupt = rng.chance(p_int);
        if (interrupt || (u < p_call)) {
            // CALL (or vector entry): 1 word RA + geometric locals.
            unsigned locals = interrupt
                                  ? 0
                                  : static_cast<unsigned>(
                                        rng.geometric(
                                            1.0 / (mean_locals + 1)));
            unsigned frame = 1 + locals;
            if (depth + frame > capacity) {
                ++overflows;
                // The overflow interrupt unwinds to a safe depth (a
                // recovery handler would reset the offending task).
                frames.clear();
                depth = 0;
            } else {
                frames.push_back(frame);
                depth += frame;
            }
        } else if (u < p_call + p_ret && !frames.empty()) {
            // RET n: drop the frame.
            depth -= frames.back();
            frames.pop_back();
        }
        depth_hist.add(depth);
    }

    DepthResult r;
    r.meanDepth = depth_hist.mean();
    r.maxDepth = depth_hist.maxValue();
    r.p95 = static_cast<double>(depth_hist.percentile(0.95));
    r.overflowsPerMInstr =
        1e6 * static_cast<double>(overflows) /
        static_cast<double>(steps);
    return r;
}

} // namespace

int
main()
{
    std::printf("==== Future work: stack-window depth and region size "
                "====\n\n");

    struct Workload
    {
        const char *label;
        double pCall;
        double meanLocals;
        double pInt;
    };
    const Workload loads[] = {
        {"shallow control code (p_call .02, 2 locals)", 0.02, 2.0, 0.0005},
        {"call-heavy (p_call .08, 3 locals)", 0.08, 3.0, 0.0005},
        {"recursive worst case (p_call .12, 4 locals)", 0.12, 4.0,
         0.001},
    };

    for (const Workload &w : loads) {
        Table t(w.label);
        t.setHeader({"region words", "mean depth", "p95", "max",
                     "overflows / M instr"});
        for (unsigned words : {32u, 64u, 128u, 256u}) {
            DepthResult r = simulate(words, w.pCall, w.meanLocals,
                                     w.pInt, 2000000, 42);
            t.addRow({Table::cell(static_cast<long long>(words)),
                      Table::cell(r.meanDepth, 1),
                      Table::cell(r.p95, 0),
                      Table::cell(static_cast<long long>(r.maxDepth)),
                      Table::cell(r.overflowsPerMInstr, 2)});
        }
        t.print();
        std::printf("\n");
    }

    std::printf("DISC1's 128 words per stream hold the 95th-percentile "
                "depth of even the call-heavy\nworkload with two "
                "orders of magnitude headroom on overflow rate; 32 "
                "words would overflow\nconstantly under recursion.\n");
    return 0;
}
