/**
 * @file
 * Regenerates Figure 3.3: the dynamic instruction stream diagram.
 *
 * The static partition assigns T/2 to IS1 and roughly T/6 to each of
 * IS2..IS4 (shares 8/4/2/2 of 16). Streams halt and restart over the
 * run; within every interval the issue bandwidth of halted streams is
 * dynamically reallocated to the remaining active ones, so each
 * stream's *observed* share follows the figure's staircase.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

int
main()
{
    // Each stream runs an endless independent compute loop; we control
    // activity from outside via HALT-equivalent (clearing run bits)
    // and FORK-equivalent (startStream).
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 0
        spin:
            ldi r2, 1
            ldi r3, 2
            ldi r4, 3
            jmp spin
    )");

    Machine m;
    m.load(p);
    m.scheduler().setShares({8, 4, 2, 2});

    std::printf("==== Figure 3.3 - Dynamic Instruction Stream Diagram "
                "====\n\n");
    std::printf("Static partition: IS1=8/16, IS2=4/16, IS3=2/16, "
                "IS4=2/16.\n");
    std::printf("Observed issue share per 2000-cycle interval (%%):\n\n");
    std::printf("%-28s %6s %6s %6s %6s\n", "interval (active streams)",
                "IS1", "IS2", "IS3", "IS4");

    struct Phase
    {
        const char *label;
        unsigned activeMask;
    };
    const Phase phases[] = {
        {"IS1 only", 0x1},
        {"IS1+IS2", 0x3},
        {"IS1+IS2+IS3+IS4", 0xf},
        {"IS2+IS3+IS4 (IS1 halted)", 0xe},
        {"IS3+IS4", 0xc},
        {"IS1 only again", 0x1},
    };

    std::array<std::uint64_t, kNumStreams> last{};
    for (const Phase &ph : phases) {
        // Apply the phase's activity pattern.
        for (StreamId s = 0; s < kNumStreams; ++s) {
            bool want = ph.activeMask & (1u << s);
            bool have = m.interrupts().isActive(s);
            if (want && !have)
                m.startStream(s, p.symbol("entry"));
            else if (!want && have)
                m.interrupts().clear(s, 0);
        }
        m.run(2000, false);
        std::printf("%-28s", ph.label);
        std::uint64_t total = 0;
        std::array<std::uint64_t, kNumStreams> delta{};
        for (StreamId s = 0; s < kNumStreams; ++s) {
            delta[s] = m.stats().retired[s] - last[s];
            last[s] = m.stats().retired[s];
            total += delta[s];
        }
        for (StreamId s = 0; s < kNumStreams; ++s) {
            std::printf(" %5.1f%%",
                        total ? 100.0 * static_cast<double>(delta[s]) /
                                    static_cast<double>(total)
                              : 0.0);
        }
        std::printf("\n");
    }

    std::printf("\nReading: when only IS1 is active it receives ~100%% "
                "of T although its static share is T/2;\n"
                "halting a stream redistributes its slots to the "
                "remaining active streams.\n");
    return 0;
}
