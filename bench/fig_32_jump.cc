/**
 * @file
 * Regenerates Figure 3.2: the interleaved pipeline during a jump.
 *
 * Two renderings are produced:
 *  1. four active streams - stream 1's jump flushes nothing because no
 *     other instruction in the pipe belongs to stream 1 (the figure's
 *     point: interleaving eliminates the control hazard);
 *  2. stream 1 running alone - the same jump now squashes its own
 *     younger in-flight instructions (bracketed cells).
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

using namespace disc;

namespace
{

const char *kProgram = R"(
    .org 0x20
    entry:
        ldi r1, 1
        ldi r2, 2
        jmp skip
        ldi r3, 3        ; fetched down the wrong path when alone
        ldi r4, 4
    skip:
        ldi r5, 5
        ldi r6, 6
        halt
)";

} // namespace

int
main()
{
    Program p = assemble(kProgram);

    std::printf("==== Figure 3.2 - Interleaved Pipeline During a Jump "
                "====\n\n");

    {
        Machine m;
        m.load(p);
        PipeTrace trace(m.pipeDepth(), 32);
        m.setTrace(&trace);
        for (StreamId s = 0; s < kNumStreams; ++s)
            m.startStream(s, p.symbol("entry"));
        m.run(24, false);
        std::printf("(a) four streams: the jump of each stream meets no "
                    "same-stream instruction in the pipe.\n\n%s\n",
                    trace.render().c_str());
        std::printf("    squashed by control: %llu\n\n",
                    static_cast<unsigned long long>(
                        m.stats().squashedJump));
    }

    {
        Machine m;
        m.load(p);
        PipeTrace trace(m.pipeDepth(), 32);
        m.setTrace(&trace);
        m.startStream(0, p.symbol("entry"));
        m.run(24, false);
        std::printf("(b) stream 1 alone: the jump squashes its own "
                    "younger fetches (bracketed).\n\n%s\n",
                    trace.render().c_str());
        std::printf("    squashed by control: %llu\n",
                    static_cast<unsigned long long>(
                        m.stats().squashedJump));
    }
    return 0;
}
