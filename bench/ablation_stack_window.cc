/**
 * @file
 * Ablation: the stack-window calling convention vs a conventional
 * flat register file with explicit save/restore (section 3.5's
 * motivation).
 *
 * Both programs compute the same nested-call workload on the same
 * machine. The stack-window version allocates locals by sliding the
 * AWP (zero instructions to save, RET n to unwind); the flat version
 * spills its live registers to an explicit memory stack around every
 * call, the way a conventional register machine must.
 */

#include <cstdio>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

namespace
{

constexpr int kIterations = 200;

const char *kWindowed = R"(
    .org 0x20
    main:
        ldi  g0, 200
    outer:
        call f1
        subi g0, g0, 1
        cmpi g0, 0
        bne  outer
        halt
    f1:
        winc
        winc
        winc            ; three locals
        ldi r0, 1
        ldi r1, 2
        ldi r2, 3
        call f2
        add r0, r1, r2
        ret 3
    f2:
        winc
        winc            ; two locals
        ldi r0, 4
        ldi r1, 5
        call f3
        ret 2
    f3:
        winc            ; one local
        ldi r0, 6
        ret 1
)";

// Conventional model: a *flat* register file emulated by immediately
// undoing the CALL's hardware window push (wdec) so register names
// never shift. Each function is callee-save: it pushes the return
// address and every register it uses onto a memory stack (g1 = SP)
// and returns through JR — exactly the per-call traffic a
// conventional register machine pays.
const char *kFlat = R"(
    .org 0x20
    main:
        ldi  g0, 200
        ldi  g1, 0x100   ; memory stack pointer
    outer:
        call f1
        subi g0, g0, 1
        cmpi g0, 0
        bne  outer
        halt
    f1:
        stm r0, [g1]     ; push return address
        wdec             ; neutralise the hardware push: flat names
        stm r1, [g1+1]   ; callee-save the three registers f1 uses
        stm r2, [g1+2]
        stm r3, [g1+3]
        addi g1, g1, 4
        ldi r1, 1
        ldi r2, 2
        ldi r3, 3
        call f2
        add r1, r2, r3
        subi g1, g1, 4
        ldm r4, [g1]     ; reload RA
        ldm r1, [g1+1]
        ldm r2, [g1+2]
        ldm r3, [g1+3]
        jr r4
    f2:
        stm r0, [g1]
        wdec
        stm r1, [g1+1]
        stm r2, [g1+2]
        addi g1, g1, 3
        ldi r1, 4
        ldi r2, 5
        call f3
        subi g1, g1, 3
        ldm r4, [g1]
        ldm r1, [g1+1]
        ldm r2, [g1+2]
        jr r4
    f3:
        stm r0, [g1]
        wdec
        stm r1, [g1+1]
        addi g1, g1, 2
        ldi r1, 6
        subi g1, g1, 2
        ldm r4, [g1]
        ldm r1, [g1+1]
        jr r4
)";

Cycle
cyclesFor(const char *src)
{
    Program p = assemble(src);
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));
    m.run(1000000);
    if (!m.idle())
        fatal("ablation program did not terminate");
    return m.stats().busyCycles;
}

} // namespace

int
main()
{
    std::printf("==== Ablation: stack window vs flat register file "
                "====\n\n");
    Cycle windowed = cyclesFor(kWindowed);
    Cycle flat = cyclesFor(kFlat);
    std::printf("%d iterations of a 3-deep call chain (6 locals live "
                "across calls):\n\n", kIterations);
    std::printf("  stack window : %8llu cycles\n",
                static_cast<unsigned long long>(windowed));
    std::printf("  flat + spill : %8llu cycles\n",
                static_cast<unsigned long long>(flat));
    std::printf("  speedup      : %.2fx\n\n",
                static_cast<double>(flat) /
                    static_cast<double>(windowed));
    std::printf("The stack window converts per-call register traffic "
                "into a pointer change, which is\nexactly the property "
                "section 3.5 needs for cheap interrupts and context "
                "activation.\n");
    return 0;
}
