/**
 * @file
 * Ablation: fixed overlapping register windows (RISC-I style) versus
 * the DISC stack window (paper sections 2.0 and 3.5).
 *
 * Three call traces are charged to both organisations:
 *  1. a stationary random call tree (typical control code);
 *  2. the fixed-window *worst case* the paper cites: call depth
 *     oscillating across a window boundary, spilling/filling a full
 *     window on every oscillation;
 *  3. an interrupt storm: shallow handler entries arriving on top of
 *     an existing call stack (the RTS-relevant case).
 *
 * Traffic is reported in memory cycles per 1000 calls (1 cycle/word).
 */

#include <cstdio>

#include "arch/window_models.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "common/types.hh"

using namespace disc;

namespace
{

struct Scores
{
    double fixed4;  ///< 4 windows x 8 regs
    double fixed8;  ///< 8 windows x 8 regs
    double stack;   ///< 128-word stack window
};

/** Run both models over the same trace; return traffic/1000 calls. */
template <typename TraceFn>
Scores
run(TraceFn &&trace)
{
    FixedWindowModel f4(4, 8), f8(8, 8);
    StackWindowModel sw(128, 128);
    trace(f4, f8, sw);
    auto per_kcall = [](const WindowTraffic &t) {
        return t.calls ? 1000.0 *
                             static_cast<double>(t.trafficCycles(1)) /
                             static_cast<double>(t.calls)
                       : 0.0;
    };
    return {per_kcall(f4.traffic()), per_kcall(f8.traffic()),
            per_kcall(sw.traffic())};
}

} // namespace

int
main()
{
    std::printf("==== Ablation: fixed windows vs stack window ====\n\n");

    Table t("memory-traffic cycles per 1000 calls (1 cycle/word)");
    t.setHeader({"trace", "fixed 4x8", "fixed 8x8", "stack window"});

    // 1. Stationary random call tree (mean depth ~8, frames 1-6 words).
    {
        Scores s = run([](auto &f4, auto &f8, auto &sw) {
            Rng rng(11);
            unsigned depth = 0;
            for (int i = 0; i < 2000000; ++i) {
                bool call = depth == 0 || rng.chance(0.47);
                if (call && depth < 60) {
                    unsigned frame =
                        1 + static_cast<unsigned>(rng.below(6));
                    f4.call();
                    f8.call();
                    sw.call(frame);
                    ++depth;
                } else if (depth > 0) {
                    f4.ret();
                    f8.ret();
                    sw.ret();
                    --depth;
                }
            }
        });
        t.addRow({"random call tree", Table::cell(s.fixed4, 1),
                  Table::cell(s.fixed8, 1), Table::cell(s.stack, 1)});
    }

    // 2. Worst case: depth excursions wider than the resident set
    //    (0 <-> 10): every excursion spills and refills windows.
    {
        Scores s = run([](auto &f4, auto &f8, auto &sw) {
            for (int cycle = 0; cycle < 100000; ++cycle) {
                for (int i = 0; i < 10; ++i) {
                    f4.call();
                    f8.call();
                    sw.call(3);
                }
                for (int i = 0; i < 10; ++i) {
                    f4.ret();
                    f8.ret();
                    sw.ret();
                }
            }
        });
        t.addRow({"deep excursions (worst case)",
                  Table::cell(s.fixed4, 1), Table::cell(s.fixed8, 1),
                  Table::cell(s.stack, 1)});
    }

    // 3. Interrupt storm over realistic background call activity: the
    //    background works a 5-deep call chain; handlers land on top.
    {
        Scores s = run([](auto &f4, auto &f8, auto &sw) {
            Rng rng(23);
            for (int i = 0; i < 1000000; ++i) {
                for (int d = 0; d < 5; ++d) {
                    f4.call();
                    f8.call();
                    sw.call(3);
                }
                if (rng.chance(0.6)) {
                    // Vector entry: one word, quick handler, return.
                    f4.call();
                    f8.call();
                    sw.call(1);
                    f4.ret();
                    f8.ret();
                    sw.ret();
                }
                for (int d = 0; d < 5; ++d) {
                    f4.ret();
                    f8.ret();
                    sw.ret();
                }
            }
        });
        t.addRow({"interrupt storm on 5-deep chains",
                  Table::cell(s.fixed4, 1), Table::cell(s.fixed8, 1),
                  Table::cell(s.stack, 1)});
    }

    t.print();
    std::printf(
        "\nThe fixed organisation pays a full window of traffic per\n"
        "boundary crossing - the paper's \"disadvantageous worst case\n"
        "replacement behavior\" - while the stack window's traffic is\n"
        "zero until its region overflows (never, in these traces:\n"
        "depth stays under 128 words). Interrupt entry costs one word,\n"
        "not one window, which is why DISC can afford an implicit\n"
        "vector-entry push on every interrupt.\n");
    return 0;
}
