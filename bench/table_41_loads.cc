/**
 * @file
 * Regenerates Table 4.1: the stochastic parameter set for the typical
 * program loads (loads 1-4 and the combined loads 1:2, 1:3, 1:4).
 *
 * The OCR of the published table lost its numeric cells; these values
 * are re-derived from the prose descriptions (see DESIGN.md §3/§4 and
 * EXPERIMENTS.md). Combined loads are simulated by multiplexing the
 * two generator processes, so their columns list both parameter sets.
 */

#include "bench_util.hh"
#include "stochastic/load.hh"

using namespace disc;

int
main()
{
    bench::banner("Table 4.1 - Parameter Set for Typical Program Loads");

    Table t("Parameters (meanon/meanoff in instructions/cycles; 0 = "
            "always on / never off / no requests)");
    t.setHeader({"parameter", "Ld1", "Ld2", "Ld3", "Ld4"});
    auto loads = standardLoads();
    auto row = [&](const std::string &name, auto get, int precision) {
        std::vector<std::string> cells{name};
        for (const LoadSpec &l : loads)
            cells.push_back(Table::cell(get(l), precision));
        t.addRow(cells);
    };
    row("meanon", [](const LoadSpec &l) { return l.meanOn; }, 0);
    row("meanoff", [](const LoadSpec &l) { return l.meanOff; }, 0);
    row("mean_req", [](const LoadSpec &l) { return l.meanReq; }, 0);
    row("alpha", [](const LoadSpec &l) { return l.alpha; }, 2);
    row("tmem",
        [](const LoadSpec &l) { return static_cast<double>(l.tmem); },
        0);
    row("mean_io", [](const LoadSpec &l) { return l.meanIo; }, 0);
    row("aljmp", [](const LoadSpec &l) { return l.alJmp; }, 2);
    t.print();

    std::printf("\nCombined loads (statistical combination on one "
                "stream), measured characteristics:\n\n");
    Table c("per 100k issued instructions of the combined stream");
    c.setHeader({"load", "duty cycle", "req rate", "jump rate"});
    for (unsigned x = 2; x <= 4; ++x) {
        CombinedSource src(
            std::make_unique<LoadProcess>(standardLoad(1), 11),
            std::make_unique<LoadProcess>(standardLoad(x), 22));
        std::uint64_t on = 0, req = 0, jmp = 0;
        const std::uint64_t horizon = 100000;
        for (std::uint64_t i = 0; i < horizon; ++i) {
            if (src.active()) {
                InstrClass cls = src.next();
                ++on;
                req += cls.external;
                jmp += cls.jump;
            } else {
                src.tickIdle();
            }
        }
        c.addRow({strprintf("Ld 1:%u", x),
                  Table::cell(static_cast<double>(on) / horizon, 3),
                  Table::cell(static_cast<double>(req) /
                                  static_cast<double>(on), 4),
                  Table::cell(static_cast<double>(jmp) /
                                  static_cast<double>(on), 4)});
    }
    c.print();
    std::printf("\nLd 1:x = multiplex(load1, loadx): active when "
                "either sub-process is; instructions served\n"
                "alternately from the active sub-processes. Load 1 is "
                "always active, so every combination has\nduty cycle "
                "1.0 and blends the request/jump rates of its parts.\n");
    return 0;
}
