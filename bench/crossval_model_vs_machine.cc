/**
 * @file
 * Cross-validation: the section 4.1 stochastic model against the
 * cycle-accurate DISC1 machine on matched deterministic workloads.
 *
 * Workloads: (a) jump-only - blocks of four independent constant
 * loads ended by a jump (aljmp = 0.2); (b) I/O-only - seven
 * independent instructions then an external load from a fixed-latency
 * device (mean_req = 8, access = 6 cycles).
 *
 * The two simulators differ in one documented respect: the machine
 * resolves control at EX (flushing pipe-2 younger instructions) while
 * the paper's model resolves at the end of the pipe (flushing
 * pipe-1), so machine PD sits slightly above model PD for jump-heavy
 * runs. The stream-count *trend* must agree.
 */

#include <cstdio>

#include "bench_util.hh"
#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

namespace
{

double
machineJumpOnly(unsigned streams)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
            ldi r3, 3
            ldi r4, 4
            jmp entry
    )");
    Machine m;
    m.load(p);
    for (StreamId s = 0; s < streams; ++s)
        m.startStream(s, p.symbol("entry"));
    m.run(100000, false);
    return m.stats().utilization();
}

double
machineIoOnly(unsigned streams)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi  g0, 0x00
            ldih g0, 0x10
        loop:
            ldi r1, 1
            ldi r2, 2
            ldi r3, 3
            ldi r4, 4
            ldi r5, 5
            ldi r6, 6
            ldi r7, 7
            ld  r1, [g0]
            jmp loop
    )");
    Machine m;
    ExternalMemoryDevice dev(64, 6);
    m.attachDevice(0x1000, 64, &dev);
    m.load(p);
    for (StreamId s = 0; s < streams; ++s)
        m.startStream(s, p.symbol("entry"));
    m.run(100000, false);
    return m.stats().utilization();
}

} // namespace

int
main()
{
    StochasticConfig cfg = bench::defaultConfig();

    bench::banner("Cross-validation: stochastic model vs cycle-accurate "
                  "machine");

    {
        Table t("(a) jump-only workload, aljmp = 0.2");
        t.setHeader({"streams", "model PD", "machine PD"});
        LoadSpec spec{"jump", 0, 0, 0, 0, 0, 0, 0.2};
        for (unsigned k = 1; k <= 4; ++k) {
            auto r = runPartitioned(cfg, spec, k, 3);
            t.addRow({Table::cell((long long)k),
                      bench::meanErr(r.pd),
                      Table::cell(machineJumpOnly(k), 3)});
        }
        t.print();
        std::printf("\n");
    }

    {
        Table t("(b) I/O-only workload, one 6-cycle access per 8 "
                "instructions");
        t.setHeader({"streams", "model PD", "machine PD"});
        LoadSpec spec{"io", 0, 0, /*meanReq=*/8, /*alpha=*/1.0,
                      /*tmem=*/6, /*meanIo=*/0, /*alJmp=*/0.0};
        for (unsigned k = 1; k <= 4; ++k) {
            auto r = runPartitioned(cfg, spec, k, 3);
            t.addRow({Table::cell((long long)k),
                      bench::meanErr(r.pd),
                      Table::cell(machineIoOnly(k), 3)});
        }
        t.print();
    }

    std::printf("\nBoth columns must rise monotonically with the stream "
                "count; absolute values differ by the\ndocumented "
                "control-resolution point (machine: EX; model: end of "
                "pipe) and by the machine's\nreal per-instruction "
                "accounting (the I/O workload's jump closes each "
                "block).\n");
    return 0;
}
