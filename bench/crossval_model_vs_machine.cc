/**
 * @file
 * Cross-validation: the section 4.1 stochastic model against the
 * cycle-accurate DISC1 machine on matched deterministic workloads.
 *
 * Workloads: (a) jump-only - blocks of four independent constant
 * loads ended by a jump (aljmp = 0.2); (b) I/O-only - seven
 * independent instructions then an external load from a fixed-latency
 * device (mean_req = 8, access = 6 cycles).
 *
 * The two simulators differ in one documented respect: the machine
 * resolves control at EX (flushing pipe-2 younger instructions) while
 * the paper's model resolves at the end of the pipe (flushing
 * pipe-1), so machine PD sits slightly above model PD for jump-heavy
 * runs. The stream-count *trend* must agree.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "stochastic/experiment.hh"

using namespace disc;

namespace
{

/**
 * The four machine cells (1..4 streams) of one workload, advanced as
 * lanes of a single lockstep batch via runMachineReplicas: replica k
 * is the (k+1)-stream machine. Bit-identical to four scalar runs.
 */
std::vector<double>
machineUtilizations(const Program &p,
                    std::vector<ExternalMemoryDevice> *devs)
{
    MachineFactory make = [&](unsigned rep, std::uint64_t) {
        auto m = std::make_unique<Machine>();
        if (devs)
            m->attachDevice(0x1000, 64, &(*devs)[rep]);
        m->load(p);
        for (StreamId s = 0; s <= rep; ++s)
            m->startStream(s, p.symbol("entry"));
        return m;
    };
    auto machines = runMachineReplicas(make, kNumStreams, 100000);
    std::vector<double> util;
    for (const auto &m : machines)
        util.push_back(m->stats().utilization());
    return util;
}

std::vector<double>
machineJumpOnly()
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
            ldi r3, 3
            ldi r4, 4
            jmp entry
    )");
    return machineUtilizations(p, nullptr);
}

std::vector<double>
machineIoOnly()
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi  g0, 0x00
            ldih g0, 0x10
        loop:
            ldi r1, 1
            ldi r2, 2
            ldi r3, 3
            ldi r4, 4
            ldi r5, 5
            ldi r6, 6
            ldi r7, 7
            ld  r1, [g0]
            jmp loop
    )");
    // One private fixed-latency device per replica lane.
    std::vector<ExternalMemoryDevice> devs(kNumStreams,
                                           ExternalMemoryDevice(64, 6));
    return machineUtilizations(p, &devs);
}

} // namespace

int
main()
{
    StochasticConfig cfg = bench::defaultConfig();

    bench::banner("Cross-validation: stochastic model vs cycle-accurate "
                  "machine");

    {
        Table t("(a) jump-only workload, aljmp = 0.2");
        t.setHeader({"streams", "model PD", "machine PD"});
        LoadSpec spec{"jump", 0, 0, 0, 0, 0, 0, 0.2};
        std::vector<double> util = machineJumpOnly();
        for (unsigned k = 1; k <= 4; ++k) {
            auto r = runPartitioned(cfg, spec, k, 3);
            t.addRow({Table::cell((long long)k),
                      bench::meanErr(r.pd),
                      Table::cell(util[k - 1], 3)});
        }
        t.print();
        std::printf("\n");
    }

    {
        Table t("(b) I/O-only workload, one 6-cycle access per 8 "
                "instructions");
        t.setHeader({"streams", "model PD", "machine PD"});
        LoadSpec spec{"io", 0, 0, /*meanReq=*/8, /*alpha=*/1.0,
                      /*tmem=*/6, /*meanIo=*/0, /*alJmp=*/0.0};
        std::vector<double> util = machineIoOnly();
        for (unsigned k = 1; k <= 4; ++k) {
            auto r = runPartitioned(cfg, spec, k, 3);
            t.addRow({Table::cell((long long)k),
                      bench::meanErr(r.pd),
                      Table::cell(util[k - 1], 3)});
        }
        t.print();
    }

    std::printf("\nBoth columns must rise monotonically with the stream "
                "count; absolute values differ by the\ndocumented "
                "control-resolution point (machine: EX; model: end of "
                "pipe) and by the machine's\nreal per-instruction "
                "accounting (the I/O workload's jump closes each "
                "block).\n");
    return 0;
}
