/**
 * @file
 * Future-work study (paper section 5.0): "Future work should be done
 * to evaluate the optimum number of instruction streams for a given
 * application."
 *
 * For a family of workloads spanning light to heavy stall behaviour,
 * this harness sweeps the stream count, reports the marginal
 * utilisation gain of each added stream, and marks the *knee*: the
 * smallest stream count whose next increment gains less than 2 % —
 * since every extra resident stream costs a full register/interrupt
 * context in hardware, the knee is the cost-effective design point.
 */

#include "bench_util.hh"

using namespace disc;

int
main()
{
    StochasticConfig cfg = bench::defaultConfig();

    bench::banner("Future work: optimum number of instruction streams");

    struct Case
    {
        const char *label;
        LoadSpec spec;
    };
    const Case cases[] = {
        {"compute-bound (aljmp .05)",
         {"c", 0, 0, 0, 0, 0, 0, 0.05}},
        {"branchy (aljmp .30)", {"b", 0, 0, 0, 0, 0, 0, 0.30}},
        {"moderate I/O (req 20, io 12)",
         {"m", 0, 0, 20, 0.5, 4, 12, 0.15}},
        {"heavy I/O (req 8, io 16)",
         {"h", 0, 0, 8, 0.3, 4, 16, 0.20}},
        {"bursty interrupts (load 4)", standardLoad(4)},
    };

    Table t("PD vs stream count, marginal gain, knee");
    t.setHeader({"workload", "1", "2", "3", "4", "knee"});
    for (const Case &c : cases) {
        std::vector<double> pd;
        for (unsigned k = 1; k <= 4; ++k) {
            auto r =
                runPartitioned(cfg, c.spec, k, bench::kReplications);
            pd.push_back(r.pd.mean());
        }
        unsigned knee = 4;
        for (unsigned k = 1; k < 4; ++k) {
            if (pd[k] - pd[k - 1] < 0.02) {
                knee = k;
                break;
            }
        }
        t.addRow({c.label, Table::cell(pd[0], 3), Table::cell(pd[1], 3),
                  Table::cell(pd[2], 3), Table::cell(pd[3], 3),
                  strprintf("%u IS", knee)});
    }
    t.print();
    std::printf("\nReading: compute-bound code saturates at 2 streams "
                "(little to hide); branch/IO-bound\nworkloads keep "
                "paying for all four; bursty interrupt loads are "
                "limited by burst overlap, not\nby the pipe - DISC1's "
                "choice of four streams covers the controller "
                "workloads without paying\nfor contexts that idle.\n");
    return 0;
}
