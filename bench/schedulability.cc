/**
 * @file
 * Schedulability and graceful degradation (paper section 1.0):
 * "reasonable provisions must be made for graceful degradation of low
 * priority tasks in exceptional circumstances."
 *
 * A three-task set (high/mid/low priority) runs on the machine while
 * the offered load rises (shrinking periods). Reported per load
 * point: deadline-miss ratio per task and background throughput, for
 * DISC (a stream per task) and the conventional single-stream
 * configuration with context-switch overhead.
 *
 * The shape that matters: as the system saturates, DISC sheds load
 * strictly by priority (the high-priority task stays clean while the
 * low-priority one degrades), while the conventional machine's
 * save/restore overhead drives every task over its deadline at much
 * lower offered load.
 */

#include <cstdio>

#include "common/table.hh"
#include "rts/system.hh"

using namespace disc;

namespace
{

struct Point
{
    double missHi;
    double missMid;
    double missLo;
    std::uint64_t background;
};

Point
measure(double load_scale, bool dedicated, bool weighted = false)
{
    auto period = [&](unsigned base) {
        return static_cast<unsigned>(base / load_scale);
    };
    RtsConfig cfg;
    cfg.horizon = 120000;
    cfg.contextSwitchOverhead = dedicated ? 0 : 16;
    if (weighted) {
        // Throughput partitioning by priority: hi gets half the
        // machine, background the leftovers.
        cfg.shares = {1, 8, 4, 3};
    }
    std::vector<RtsTask> tasks = {
        {"hi", static_cast<StreamId>(1), 7, period(400), 0, 8, 1},
        {"mid", static_cast<StreamId>(dedicated ? 2 : 1), 5,
         period(900), 0, 25, 2},
        {"lo", static_cast<StreamId>(dedicated ? 3 : 1), 2,
         period(2200), 0, 70, 4},
    };
    RtsSystem sys(std::move(tasks), cfg);
    RtsReport rep = sys.run();
    auto ratio = [](const RtsTaskResult &t) {
        return t.activations
                   ? static_cast<double>(t.deadlineMisses) /
                         static_cast<double>(t.activations)
                   : 0.0;
    };
    return {ratio(rep.tasks[0]), ratio(rep.tasks[1]),
            ratio(rep.tasks[2]), rep.backgroundProgress};
}

} // namespace

int
main()
{
    std::printf("==== Schedulability: graceful degradation under "
                "rising load ====\n\n");

    struct Config
    {
        const char *label;
        bool dedicated;
        bool weighted;
    };
    const Config configs[] = {
        {"DISC: one stream per task, even partition", true, false},
        {"DISC: one stream per task, priority-weighted partition "
         "(hi=8/16, mid=4/16, lo=3/16)",
         true, true},
        {"conventional: shared stream + 16-instr save/restore", false,
         false},
    };
    for (const Config &c : configs) {
        Table t(c.label);
        t.setHeader({"load scale", "hi miss %", "mid miss %",
                     "lo miss %", "background iters"});
        for (double scale : {1.0, 1.5, 2.0, 2.5, 3.0}) {
            Point p = measure(scale, c.dedicated, c.weighted);
            t.addRow({Table::cell(scale, 1),
                      Table::cell(100 * p.missHi, 1),
                      Table::cell(100 * p.missMid, 1),
                      Table::cell(100 * p.missLo, 1),
                      Table::cell(static_cast<long long>(
                          p.background))});
        }
        t.print();
        std::printf("\n");
    }

    std::printf(
        "Reading: with an even partition every stream overloads alike "
        "once the machine saturates\n(scale 3.0). The paper's "
        "throughput partitioning (section 1.0 / Coffman-Denning) "
        "extends the\nhigh-priority task's clean region (0%% misses "
        "at scale 2.5 where the even split already\nsheds load) and "
        "halves its misses at full saturation, pushing the overload "
        "onto the lower\npriorities and the background - graceful, "
        "priority-ordered degradation. The conventional\nmachine "
        "inverts priorities instead: the highest-rate task pays the "
        "save/restore overhead\nmost often and collapses first.\n");
    return 0;
}
