/**
 * @file
 * Regenerates Figures 3.4 and 3.5: the stack-window organisation and
 * its movements.
 *
 * Part (a) replays Figure 3.5 directly on a StackWindow: an increment
 * renames every register up by one (new R0 appears); a decrement
 * renames them down (the old R0 is lost).
 *
 * Part (b) traces the AWP of stream 0 through a nested call sequence
 * on the machine, showing the variable-size frames of the DISC
 * calling convention (CALL pushes the return address, the callee
 * claims locals, RET n unwinds).
 */

#include <cstdio>

#include "arch/stack_window.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

namespace
{

void
printWindow(const StackWindow &sw, const char *caption)
{
    std::printf("%-22s AWP=%u depth=%u  [", caption, sw.awp(),
                sw.depth());
    for (unsigned n = 0; n < kNumWindowRegs; ++n)
        std::printf(" r%u=%u", n, sw.read(n));
    std::printf(" ]\n");
}

} // namespace

int
main()
{
    std::printf("==== Figures 3.4 / 3.5 - The Stack Window ====\n\n");

    // (a) window movements, Figure 3.5.
    InternalMemory mem;
    StackWindow sw(mem, 512, 64);
    for (unsigned n = 0; n < kNumWindowRegs; ++n)
        sw.write(n, 10 + n);
    std::printf("(a) Window movements:\n\n");
    printWindow(sw, "initial");
    sw.inc();
    sw.write(0, 99);
    printWindow(sw, "after increment AWP");
    std::printf("%-22s (old r0..r6 renamed to r1..r7; old r7 left the "
                "window)\n", "");
    sw.dec();
    printWindow(sw, "after decrement AWP");
    std::printf("%-22s (the value 99 written at the top is lost, as in "
                "Figure 3.5)\n\n", "");

    // (b) AWP trajectory through nested calls on the machine.
    Program p = assemble(R"(
        .org 0x20
        main:
            ldi r0, 1
            call f1
            halt
        f1:
            winc            ; one local
            ldi r0, 11
            call f2
            ret 1
        f2:
            winc            ; two locals
            winc
            ldi r0, 21
            ldi r1, 22
            ret 2
    )");
    Machine m;
    m.load(p);
    m.startStream(0, p.symbol("main"));

    std::printf("(b) AWP of stream 0 through nested calls "
                "(variable-size frames):\n\n");
    std::printf("cycle  AWP  depth\n");
    Addr last_awp = m.window(0).awp();
    std::printf("%5d  %3u  %u  (reset)\n", 0, last_awp,
                m.window(0).depth());
    for (int c = 1; c <= 60 && !m.idle(); ++c) {
        m.step();
        Addr awp = m.window(0).awp();
        if (awp != last_awp) {
            std::printf("%5d  %3u  %u\n", c, awp, m.window(0).depth());
            last_awp = awp;
        }
    }
    std::printf("\nEach CALL pushes one word (the return address); each "
                "callee claims a different number of locals;\nRET n "
                "unwinds exactly n+1 words - windows are variable-sized, "
                "unlike RISC-I's fixed frames.\n");
    return 0;
}
