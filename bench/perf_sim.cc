/**
 * @file
 * Host-performance microbenchmarks (google-benchmark): how many
 * simulated cycles per second the cycle-accurate machine and the
 * stochastic model deliver on the host.
 */

#include <benchmark/benchmark.h>

#include "arch/devices.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "stochastic/model.hh"

namespace disc
{
namespace
{

void
BM_MachineComputeLoop(benchmark::State &state)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi r1, 1
            ldi r2, 2
            add r3, r1, r2
            jmp entry
    )");
    Machine m;
    m.load(p);
    unsigned streams = static_cast<unsigned>(state.range(0));
    for (StreamId s = 0; s < streams; ++s)
        m.startStream(s, p.symbol("entry"));
    for (auto _ : state)
        m.run(1000, false);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 1000,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineComputeLoop)->Arg(1)->Arg(4);

void
BM_MachineWithBusTraffic(benchmark::State &state)
{
    Program p = assemble(R"(
        .org 0x20
        entry:
            ldi  g0, 0x00
            ldih g0, 0x10
        loop:
            ld  r1, [g0]
            addi r2, r2, 1
            jmp loop
    )");
    Machine m;
    ExternalMemoryDevice dev(64, 5);
    m.attachDevice(0x1000, 64, &dev);
    m.load(p);
    for (StreamId s = 0; s < 4; ++s)
        m.startStream(s, p.symbol("entry"));
    for (auto _ : state)
        m.run(1000, false);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 1000,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineWithBusTraffic);

void
BM_StochasticModel(benchmark::State &state)
{
    StochasticConfig cfg;
    cfg.warmup = 0;
    cfg.horizon = 1000;
    unsigned streams = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        std::vector<std::unique_ptr<WorkSource>> sources;
        for (unsigned s = 0; s < streams; ++s) {
            sources.push_back(std::make_unique<LoadProcess>(
                standardLoad(1), 1234 + s));
        }
        StochasticModel model(cfg, std::move(sources));
        benchmark::DoNotOptimize(model.run());
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 1000,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StochasticModel)->Arg(1)->Arg(4);

void
BM_Assembler(benchmark::State &state)
{
    std::string src = ".org 0x20\nmain:\n";
    for (int i = 0; i < 200; ++i)
        src += "    addi r1, r1, 1\n    ldm r2, [r1+3]\n";
    src += "    halt\n";
    for (auto _ : state) {
        Program p = assemble(src);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_Assembler);

} // namespace
} // namespace disc
