/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 */

#ifndef DISC_BENCH_BENCH_UTIL_HH
#define DISC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "stochastic/experiment.hh"

namespace disc::bench
{

/** Replications per experiment cell (averaged with distinct seeds). */
constexpr unsigned kReplications = 5;

/** Default stochastic configuration used by all table harnesses. */
inline StochasticConfig
defaultConfig()
{
    StochasticConfig cfg;
    cfg.warmup = 5000;
    cfg.horizon = 200000;
    return cfg;
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n\n", title.c_str());
}

/** Format "mean +- stderr" for a statistic. */
inline std::string
meanErr(const RunningStat &s, int precision = 3)
{
    return strprintf("%.*f +- %.*f", precision, s.mean(), precision,
                     s.stderror());
}

} // namespace disc::bench

#endif // DISC_BENCH_BENCH_UTIL_HH
