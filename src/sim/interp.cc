#include "sim/interp.hh"

#include "common/logging.hh"

namespace disc
{

Interp::Interp()
    : window_(imem_, kStackRegionBase, kStackRegionWords)
{}

Interp::Interp(Addr stack_base, Addr stack_words, StreamId self)
    : window_(imem_, stack_base, stack_words), self_(self)
{}

void
Interp::load(const Program &prog)
{
    pmem_.load(prog);
    pdec_.load(prog);
    reset();
    imem_.load(prog);
}

void
Interp::reset(PAddr entry)
{
    imem_.reset();
    window_.reset();
    globals_.fill(0);
    pc_ = entry;
    z_ = n_ = c_ = v_ = false;
    mulHigh_ = 0;
    ir_ = 0x01; // background run bit: the interpreter is always "on"
    mr_ = 0xff;
    halted_ = false;
    overflows_ = 0;
    illegal_ = 0;
}

void
Interp::attachDevice(Addr base, Addr size, Device *device)
{
    bus_.attach(base, size, device);
}

Word
Interp::readReg(unsigned r) const
{
    if (reg::isWindow(r))
        return window_.read(r);
    if (reg::isGlobal(r))
        return globals_[r - reg::G0];
    switch (r) {
      case reg::SR:
        return static_cast<Word>((z_ ? 1 : 0) | (n_ ? 2 : 0) |
                                 (c_ ? 4 : 0) | (v_ ? 8 : 0));
      case reg::IRR:
        return ir_;
      case reg::IMR:
        return mr_;
      case reg::AWP:
        return window_.awp();
      default:
        panic("interp: bad register %u", r);
    }
}

void
Interp::writeReg(unsigned r, Word value)
{
    if (reg::isWindow(r)) {
        window_.write(r, value);
        return;
    }
    if (reg::isGlobal(r)) {
        globals_[r - reg::G0] = value;
        return;
    }
    switch (r) {
      case reg::SR:
        z_ = value & 1;
        n_ = value & 2;
        c_ = value & 4;
        v_ = value & 8;
        return;
      case reg::IRR:
        ir_ |= value & 0xff;
        return;
      case reg::IMR:
        mr_ = value & 0xff;
        return;
      case reg::AWP:
        noteWindow(window_.setAwp(value));
        return;
      default:
        panic("interp: bad register %u", r);
    }
}

void
Interp::setFlags(Word result, bool carry, bool overflow)
{
    z_ = result == 0;
    n_ = (result & 0x8000) != 0;
    c_ = carry;
    v_ = overflow;
}

void
Interp::noteWindow(bool violated)
{
    if (violated)
        ++overflows_;
}

void
Interp::applyWctl(WCtl w)
{
    StackWindow &win = window_;
    if (w == WCtl::Inc)
        noteWindow(win.inc());
    else if (w == WCtl::Dec)
        noteWindow(win.dec());
}

bool
Interp::step()
{
    if (halted_)
        return false;

    const PredecodedInst &pd = pdec_.at(pc_);
    if (!pd.legal) {
        ++illegal_;
        ++pc_;
        return true;
    }
    const Instruction &inst = pd.inst;
    PAddr this_pc = pc_;
    PAddr next = static_cast<PAddr>(pc_ + 1);
    StackWindow &win = window_;

    auto ra_v = [&] { return readReg(inst.ra); };
    auto rb_v = [&] { return readReg(inst.rb); };
    auto imm_w = [&] { return static_cast<Word>(inst.imm); };

    auto add_like = [&](Word a, Word b, Word cin) {
        DWord full = static_cast<DWord>(a) + b + cin;
        Word r = static_cast<Word>(full);
        setFlags(r, (full >> 16) != 0,
                 (~(a ^ b) & (a ^ r) & 0x8000) != 0);
        return r;
    };
    auto sub_like = [&](Word a, Word b, Word bin) {
        DWord full = static_cast<DWord>(a) - b - bin;
        Word r = static_cast<Word>(full);
        setFlags(r, (full >> 16) != 0, ((a ^ b) & (a ^ r) & 0x8000) != 0);
        return r;
    };
    auto logical = [&](Word r) {
        setFlags(r, false, false);
        return r;
    };
    auto write_rd = [&](Word value) { writeReg(inst.rd, value); };

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::ADD: write_rd(add_like(ra_v(), rb_v(), 0)); break;
      case Opcode::ADC:
        write_rd(add_like(ra_v(), rb_v(), c_ ? 1 : 0));
        break;
      case Opcode::SUB: write_rd(sub_like(ra_v(), rb_v(), 0)); break;
      case Opcode::SBC:
        write_rd(sub_like(ra_v(), rb_v(), c_ ? 1 : 0));
        break;
      case Opcode::AND: write_rd(logical(ra_v() & rb_v())); break;
      case Opcode::OR: write_rd(logical(ra_v() | rb_v())); break;
      case Opcode::XOR: write_rd(logical(ra_v() ^ rb_v())); break;
      case Opcode::SHL: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a << sh);
        setFlags(r, sh > 0 && ((a >> (16 - sh)) & 1), false);
        write_rd(r);
        break;
      }
      case Opcode::SHR: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a >> sh);
        setFlags(r, sh > 0 && ((a >> (sh - 1)) & 1), false);
        write_rd(r);
        break;
      }
      case Opcode::ASR: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(static_cast<SWord>(a) >> sh);
        setFlags(r, sh > 0 && ((a >> (sh - 1)) & 1), false);
        write_rd(r);
        break;
      }
      case Opcode::MUL: {
        DWord p = static_cast<DWord>(ra_v()) * rb_v();
        mulHigh_ = static_cast<Word>(p >> 16);
        Word r = static_cast<Word>(p);
        setFlags(r, false, false);
        write_rd(r);
        break;
      }
      case Opcode::MULH: write_rd(mulHigh_); break;
      case Opcode::MOV: write_rd(logical(ra_v())); break;
      case Opcode::NOT:
        write_rd(logical(static_cast<Word>(~ra_v())));
        break;
      case Opcode::NEG: write_rd(sub_like(0, ra_v(), 0)); break;
      case Opcode::CMP: sub_like(ra_v(), rb_v(), 0); break;
      case Opcode::TST: logical(ra_v() & rb_v()); break;
      case Opcode::ADDI: write_rd(add_like(ra_v(), imm_w(), 0)); break;
      case Opcode::SUBI: write_rd(sub_like(ra_v(), imm_w(), 0)); break;
      case Opcode::ANDI: write_rd(logical(ra_v() & imm_w())); break;
      case Opcode::ORI: write_rd(logical(ra_v() | imm_w())); break;
      case Opcode::XORI: write_rd(logical(ra_v() ^ imm_w())); break;
      case Opcode::CMPI: sub_like(ra_v(), imm_w(), 0); break;
      case Opcode::LDI: write_rd(imm_w()); break;
      case Opcode::LDIH:
        write_rd(static_cast<Word>((readReg(inst.rd) & 0x00ff) |
                                   (imm_w() << 8)));
        break;
      case Opcode::LD:
      case Opcode::ST: {
        Addr addr = static_cast<Addr>(ra_v() + inst.imm);
        Addr offset = 0;
        Device *dev = bus_.decode(addr, offset);
        if (!dev) {
            ir_ |= 1u << kBusFaultBit;
        } else if (inst.op == Opcode::LD) {
            write_rd(dev->read(offset));
        } else {
            dev->write(offset, readReg(inst.rd));
        }
        break;
      }
      case Opcode::LDM:
        write_rd(imem_.read(static_cast<Addr>(ra_v() + inst.imm)));
        break;
      case Opcode::STM:
        imem_.write(static_cast<Addr>(ra_v() + inst.imm),
                    readReg(inst.rd));
        break;
      case Opcode::LDMD:
        write_rd(imem_.read(static_cast<Addr>(inst.imm)));
        break;
      case Opcode::STMD:
        imem_.write(static_cast<Addr>(inst.imm), readReg(inst.rd));
        break;
      case Opcode::TAS: {
        Word old = imem_.testAndSet(ra_v());
        setFlags(old, false, false);
        write_rd(old);
        break;
      }
      case Opcode::JMP: next = static_cast<PAddr>(inst.imm); break;
      case Opcode::JR: next = ra_v(); break;
      case Opcode::CALL:
      case Opcode::CALLR: {
        PAddr target = inst.op == Opcode::CALL
                           ? static_cast<PAddr>(inst.imm)
                           : ra_v();
        noteWindow(win.inc());
        win.write(0, static_cast<Word>(this_pc + 1));
        next = target;
        break;
      }
      case Opcode::RET: {
        bool bad = win.move(-inst.imm);
        next = win.read(0);
        bad |= win.dec();
        noteWindow(bad);
        break;
      }
      case Opcode::RETI:
        // The interpreter has no interrupt machinery; treat RETI like
        // RET 0 so handler code can still be golden-tested.
        next = win.read(0);
        noteWindow(win.dec());
        break;
      case Opcode::BR: {
        bool take = false;
        switch (inst.cond) {
          case Cond::EQ: take = z_; break;
          case Cond::NE: take = !z_; break;
          case Cond::LT: take = n_ != v_; break;
          case Cond::GE: take = n_ == v_; break;
          case Cond::ULT: take = c_; break;
          case Cond::UGE: take = !c_; break;
          case Cond::MI: take = n_; break;
          case Cond::PL: take = !n_; break;
        }
        if (take)
            next = static_cast<PAddr>(static_cast<int>(this_pc) +
                                      inst.imm);
        break;
      }
      case Opcode::SWI:
        if (inst.stream == self_)
            ir_ |= static_cast<Word>(1u << inst.bit);
        break;
      case Opcode::CLRI:
        ir_ &= static_cast<Word>(~(1u << inst.bit));
        break;
      case Opcode::HALT:
        halted_ = true;
        break;
      case Opcode::FORK:
      case Opcode::FORKR:
      case Opcode::SCHED:
        // Multi-stream controls are no-ops in the one-stream model.
        break;
      case Opcode::WINC: noteWindow(win.inc()); break;
      case Opcode::WDEC: noteWindow(win.dec()); break;
      default:
        panic("interp: unhandled opcode %u",
              static_cast<unsigned>(inst.op));
    }

    applyWctl(inst.wctl);
    pc_ = next;
    return !halted_;
}

std::uint64_t
Interp::run(std::uint64_t max_instructions)
{
    std::uint64_t n = 0;
    while (n < max_instructions && step())
        ++n;
    if (halted_ && n < max_instructions)
        ++n; // count the HALT itself
    return n;
}

} // namespace disc
