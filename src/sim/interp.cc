#include "sim/interp.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace disc
{

namespace
{

/** DISC_NO_UOP=1 selects the legacy switch (shared with Machine). */
bool
uopEnvDisabled()
{
    const char *env = std::getenv("DISC_NO_UOP");
    return env && *env && std::strcmp(env, "0") != 0;
}

} // namespace

Interp::Interp()
    : window_(imem_, kStackRegionBase, kStackRegionWords)
{
    useUops_ = !uopEnvDisabled();
}

Interp::Interp(Addr stack_base, Addr stack_words, StreamId self)
    : window_(imem_, stack_base, stack_words), self_(self)
{
    useUops_ = !uopEnvDisabled();
}

void
Interp::load(const Program &prog)
{
    pmem_.load(prog);
    pdec_.load(prog);
    reset();
    imem_.load(prog);
}

void
Interp::reset(PAddr entry)
{
    imem_.reset();
    window_.reset();
    globals_.fill(0);
    pc_ = entry;
    z_ = n_ = c_ = v_ = false;
    mulHigh_ = 0;
    ir_ = 0x01; // background run bit: the interpreter is always "on"
    mr_ = 0xff;
    halted_ = false;
    overflows_ = 0;
    illegal_ = 0;
}

void
Interp::attachDevice(Addr base, Addr size, Device *device)
{
    bus_.attach(base, size, device);
}

Word
Interp::readReg(unsigned r) const
{
    if (reg::isWindow(r))
        return window_.read(r);
    if (reg::isGlobal(r))
        return globals_[r - reg::G0];
    switch (r) {
      case reg::SR:
        return static_cast<Word>((z_ ? 1 : 0) | (n_ ? 2 : 0) |
                                 (c_ ? 4 : 0) | (v_ ? 8 : 0));
      case reg::IRR:
        return ir_;
      case reg::IMR:
        return mr_;
      case reg::AWP:
        return window_.awp();
      default:
        panic("interp: bad register %u", r);
    }
}

void
Interp::writeReg(unsigned r, Word value)
{
    if (reg::isWindow(r)) {
        window_.write(r, value);
        return;
    }
    if (reg::isGlobal(r)) {
        globals_[r - reg::G0] = value;
        return;
    }
    switch (r) {
      case reg::SR:
        z_ = value & 1;
        n_ = value & 2;
        c_ = value & 4;
        v_ = value & 8;
        return;
      case reg::IRR:
        ir_ |= value & 0xff;
        return;
      case reg::IMR:
        mr_ = value & 0xff;
        return;
      case reg::AWP:
        noteWindow(window_.setAwp(value));
        return;
      default:
        panic("interp: bad register %u", r);
    }
}

void
Interp::setFlags(Word result, bool carry, bool overflow)
{
    z_ = result == 0;
    n_ = (result & 0x8000) != 0;
    c_ = carry;
    v_ = overflow;
}

void
Interp::noteWindow(bool violated)
{
    if (violated)
        ++overflows_;
}

void
Interp::applyWctl(WCtl w)
{
    StackWindow &win = window_;
    if (w == WCtl::Inc)
        noteWindow(win.inc());
    else if (w == WCtl::Dec)
        noteWindow(win.dec());
}

/**
 * Micro-op handlers for the interpreter, dispatched through the same
 * predecoded handler index the machine uses. Semantics mirror
 * Interp::stepLegacy() line for line; the legacy switch remains the
 * reference path (DISC_NO_UOP=1 / setUopDispatch(false)).
 */
struct InterpOps
{
    using Fn = void (*)(Interp &, const Instruction &, PAddr, PAddr &);

    static Word ra(Interp &ip, const Instruction &inst)
    {
        return ip.readReg(inst.ra);
    }
    static Word rb(Interp &ip, const Instruction &inst)
    {
        return ip.readReg(inst.rb);
    }
    static Word imm(const Instruction &inst)
    {
        return static_cast<Word>(inst.imm);
    }
    static void wr(Interp &ip, const Instruction &inst, Word value)
    {
        ip.writeReg(inst.rd, value);
    }

    static Word addLike(Interp &ip, Word a, Word b, Word cin)
    {
        DWord full = static_cast<DWord>(a) + b + cin;
        Word r = static_cast<Word>(full);
        ip.setFlags(r, (full >> 16) != 0,
                    (~(a ^ b) & (a ^ r) & 0x8000) != 0);
        return r;
    }
    static Word subLike(Interp &ip, Word a, Word b, Word bin)
    {
        DWord full = static_cast<DWord>(a) - b - bin;
        Word r = static_cast<Word>(full);
        ip.setFlags(r, (full >> 16) != 0,
                    ((a ^ b) & (a ^ r) & 0x8000) != 0);
        return r;
    }
    static Word logical(Interp &ip, Word r)
    {
        ip.setFlags(r, false, false);
        return r;
    }

    static void nop(Interp &, const Instruction &, PAddr, PAddr &) {}
    static void add(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, addLike(ip, ra(ip, inst), rb(ip, inst), 0));
    }
    static void adc(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst,
           addLike(ip, ra(ip, inst), rb(ip, inst), ip.c_ ? 1 : 0));
    }
    static void sub(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, subLike(ip, ra(ip, inst), rb(ip, inst), 0));
    }
    static void sbc(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst,
           subLike(ip, ra(ip, inst), rb(ip, inst), ip.c_ ? 1 : 0));
    }
    static void and_(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, logical(ip, ra(ip, inst) & rb(ip, inst)));
    }
    static void or_(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, logical(ip, ra(ip, inst) | rb(ip, inst)));
    }
    static void xor_(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, logical(ip, ra(ip, inst) ^ rb(ip, inst)));
    }
    static void shl(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        unsigned sh = rb(ip, inst) & 15u;
        Word a = ra(ip, inst);
        Word r = static_cast<Word>(a << sh);
        ip.setFlags(r, sh > 0 && ((a >> (16 - sh)) & 1), false);
        wr(ip, inst, r);
    }
    static void shr(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        unsigned sh = rb(ip, inst) & 15u;
        Word a = ra(ip, inst);
        Word r = static_cast<Word>(a >> sh);
        ip.setFlags(r, sh > 0 && ((a >> (sh - 1)) & 1), false);
        wr(ip, inst, r);
    }
    static void asr(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        unsigned sh = rb(ip, inst) & 15u;
        Word a = ra(ip, inst);
        Word r = static_cast<Word>(static_cast<SWord>(a) >> sh);
        ip.setFlags(r, sh > 0 && ((a >> (sh - 1)) & 1), false);
        wr(ip, inst, r);
    }
    static void mul(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        DWord p = static_cast<DWord>(ra(ip, inst)) * rb(ip, inst);
        ip.mulHigh_ = static_cast<Word>(p >> 16);
        Word r = static_cast<Word>(p);
        ip.setFlags(r, false, false);
        wr(ip, inst, r);
    }
    static void mulh(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, ip.mulHigh_);
    }
    static void mov(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, logical(ip, ra(ip, inst)));
    }
    static void not_(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, logical(ip, static_cast<Word>(~ra(ip, inst))));
    }
    static void neg(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, subLike(ip, 0, ra(ip, inst), 0));
    }
    static void cmp(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        subLike(ip, ra(ip, inst), rb(ip, inst), 0);
    }
    static void tst(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        logical(ip, ra(ip, inst) & rb(ip, inst));
    }
    static void addi(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, addLike(ip, ra(ip, inst), imm(inst), 0));
    }
    static void subi(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, subLike(ip, ra(ip, inst), imm(inst), 0));
    }
    static void andi(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, logical(ip, ra(ip, inst) & imm(inst)));
    }
    static void ori(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, logical(ip, ra(ip, inst) | imm(inst)));
    }
    static void xori(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, logical(ip, ra(ip, inst) ^ imm(inst)));
    }
    static void cmpi(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        subLike(ip, ra(ip, inst), imm(inst), 0);
    }
    static void ldi(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, imm(inst));
    }
    static void ldih(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst,
           static_cast<Word>((ip.readReg(inst.rd) & 0x00ff) |
                             (imm(inst) << 8)));
    }
    static void ldst(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        Addr addr = static_cast<Addr>(ra(ip, inst) + inst.imm);
        Addr offset = 0;
        Device *dev = ip.bus_.decode(addr, offset);
        if (!dev) {
            ip.ir_ |= 1u << kBusFaultBit;
        } else if (inst.op == Opcode::LD) {
            wr(ip, inst, dev->read(offset));
        } else {
            dev->write(offset, ip.readReg(inst.rd));
        }
    }
    static void ldm(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst,
           ip.imem_.read(static_cast<Addr>(ra(ip, inst) + inst.imm)));
    }
    static void stm(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        ip.imem_.write(static_cast<Addr>(ra(ip, inst) + inst.imm),
                       ip.readReg(inst.rd));
    }
    static void ldmd(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        wr(ip, inst, ip.imem_.read(static_cast<Addr>(inst.imm)));
    }
    static void stmd(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        ip.imem_.write(static_cast<Addr>(inst.imm), ip.readReg(inst.rd));
    }
    static void tas(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        Word old = ip.imem_.testAndSet(ra(ip, inst));
        ip.setFlags(old, false, false);
        wr(ip, inst, old);
    }
    static void jmp(Interp &, const Instruction &inst, PAddr, PAddr &next)
    {
        next = static_cast<PAddr>(inst.imm);
    }
    static void jr(Interp &ip, const Instruction &inst, PAddr, PAddr &next)
    {
        next = ra(ip, inst);
    }
    static void callCommon(Interp &ip, PAddr this_pc, PAddr &next,
                           PAddr target)
    {
        ip.noteWindow(ip.window_.inc());
        ip.window_.write(0, static_cast<Word>(this_pc + 1));
        next = target;
    }
    static void call(Interp &ip, const Instruction &inst, PAddr this_pc,
                     PAddr &next)
    {
        callCommon(ip, this_pc, next, static_cast<PAddr>(inst.imm));
    }
    static void callr(Interp &ip, const Instruction &inst, PAddr this_pc,
                      PAddr &next)
    {
        callCommon(ip, this_pc, next, ra(ip, inst));
    }
    static void ret(Interp &ip, const Instruction &inst, PAddr, PAddr &next)
    {
        bool bad = ip.window_.move(-inst.imm);
        next = ip.window_.read(0);
        bad |= ip.window_.dec();
        ip.noteWindow(bad);
    }
    static void reti(Interp &ip, const Instruction &, PAddr, PAddr &next)
    {
        // No interrupt machinery in the golden model: RETI == RET 0.
        next = ip.window_.read(0);
        ip.noteWindow(ip.window_.dec());
    }
    static void brTake(const Instruction &inst, PAddr this_pc, PAddr &next,
                       bool take)
    {
        if (take)
            next = static_cast<PAddr>(static_cast<int>(this_pc) +
                                      inst.imm);
    }
    static void brEq(Interp &ip, const Instruction &inst, PAddr this_pc,
                     PAddr &next)
    {
        brTake(inst, this_pc, next, ip.z_);
    }
    static void brNe(Interp &ip, const Instruction &inst, PAddr this_pc,
                     PAddr &next)
    {
        brTake(inst, this_pc, next, !ip.z_);
    }
    static void brLt(Interp &ip, const Instruction &inst, PAddr this_pc,
                     PAddr &next)
    {
        brTake(inst, this_pc, next, ip.n_ != ip.v_);
    }
    static void brGe(Interp &ip, const Instruction &inst, PAddr this_pc,
                     PAddr &next)
    {
        brTake(inst, this_pc, next, ip.n_ == ip.v_);
    }
    static void brUlt(Interp &ip, const Instruction &inst, PAddr this_pc,
                      PAddr &next)
    {
        brTake(inst, this_pc, next, ip.c_);
    }
    static void brUge(Interp &ip, const Instruction &inst, PAddr this_pc,
                      PAddr &next)
    {
        brTake(inst, this_pc, next, !ip.c_);
    }
    static void brMi(Interp &ip, const Instruction &inst, PAddr this_pc,
                     PAddr &next)
    {
        brTake(inst, this_pc, next, ip.n_);
    }
    static void brPl(Interp &ip, const Instruction &inst, PAddr this_pc,
                     PAddr &next)
    {
        brTake(inst, this_pc, next, !ip.n_);
    }
    static void swi(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        if (inst.stream == ip.self_)
            ip.ir_ |= static_cast<Word>(1u << inst.bit);
    }
    static void clri(Interp &ip, const Instruction &inst, PAddr, PAddr &)
    {
        ip.ir_ &= static_cast<Word>(~(1u << inst.bit));
    }
    static void halt(Interp &ip, const Instruction &, PAddr, PAddr &)
    {
        ip.halted_ = true;
    }
    static void streamNop(Interp &, const Instruction &, PAddr, PAddr &)
    {
        // FORK/FORKR/SCHED are no-ops in the one-stream model.
    }
    static void winc(Interp &ip, const Instruction &, PAddr, PAddr &)
    {
        ip.noteWindow(ip.window_.inc());
    }
    static void wdec(Interp &ip, const Instruction &, PAddr, PAddr &)
    {
        ip.noteWindow(ip.window_.dec());
    }
};

namespace
{

constexpr UopTable<InterpOps::Fn>
buildInterpTable()
{
    UopTable<InterpOps::Fn> t;
    t.set(Uop::NOP, &InterpOps::nop);
    t.set(Uop::ADD, &InterpOps::add);
    t.set(Uop::ADC, &InterpOps::adc);
    t.set(Uop::SUB, &InterpOps::sub);
    t.set(Uop::SBC, &InterpOps::sbc);
    t.set(Uop::AND, &InterpOps::and_);
    t.set(Uop::OR, &InterpOps::or_);
    t.set(Uop::XOR, &InterpOps::xor_);
    t.set(Uop::SHL, &InterpOps::shl);
    t.set(Uop::SHR, &InterpOps::shr);
    t.set(Uop::ASR, &InterpOps::asr);
    t.set(Uop::MUL, &InterpOps::mul);
    t.set(Uop::MULH, &InterpOps::mulh);
    t.set(Uop::MOV, &InterpOps::mov);
    t.set(Uop::NOT, &InterpOps::not_);
    t.set(Uop::NEG, &InterpOps::neg);
    t.set(Uop::CMP, &InterpOps::cmp);
    t.set(Uop::TST, &InterpOps::tst);
    t.set(Uop::ADDI, &InterpOps::addi);
    t.set(Uop::SUBI, &InterpOps::subi);
    t.set(Uop::ANDI, &InterpOps::andi);
    t.set(Uop::ORI, &InterpOps::ori);
    t.set(Uop::XORI, &InterpOps::xori);
    t.set(Uop::CMPI, &InterpOps::cmpi);
    t.set(Uop::LDI, &InterpOps::ldi);
    t.set(Uop::LDIH, &InterpOps::ldih);
    t.set(Uop::LD, &InterpOps::ldst);
    t.set(Uop::ST, &InterpOps::ldst);
    t.set(Uop::LDM, &InterpOps::ldm);
    t.set(Uop::STM, &InterpOps::stm);
    t.set(Uop::LDMD, &InterpOps::ldmd);
    t.set(Uop::STMD, &InterpOps::stmd);
    t.set(Uop::TAS, &InterpOps::tas);
    t.set(Uop::JMP, &InterpOps::jmp);
    t.set(Uop::JR, &InterpOps::jr);
    t.set(Uop::CALL, &InterpOps::call);
    t.set(Uop::CALLR, &InterpOps::callr);
    t.set(Uop::RET, &InterpOps::ret);
    t.set(Uop::BR_EQ, &InterpOps::brEq);
    t.set(Uop::BR_NE, &InterpOps::brNe);
    t.set(Uop::BR_LT, &InterpOps::brLt);
    t.set(Uop::BR_GE, &InterpOps::brGe);
    t.set(Uop::BR_ULT, &InterpOps::brUlt);
    t.set(Uop::BR_UGE, &InterpOps::brUge);
    t.set(Uop::BR_MI, &InterpOps::brMi);
    t.set(Uop::BR_PL, &InterpOps::brPl);
    t.set(Uop::SWI, &InterpOps::swi);
    t.set(Uop::CLRI, &InterpOps::clri);
    t.set(Uop::RETI, &InterpOps::reti);
    t.set(Uop::HALT, &InterpOps::halt);
    t.set(Uop::FORK, &InterpOps::streamNop);
    t.set(Uop::FORKR, &InterpOps::streamNop);
    t.set(Uop::SCHED, &InterpOps::streamNop);
    t.set(Uop::WINC, &InterpOps::winc);
    t.set(Uop::WDEC, &InterpOps::wdec);
    return t;
}

constexpr UopTable<InterpOps::Fn> kInterpTable = buildInterpTable();
static_assert(kInterpTable.complete(),
              "every micro-op needs an interpreter handler: extend "
              "buildInterpTable() alongside isa/uops.hh");

} // namespace

void
Interp::stepLegacy(const Instruction &inst, PAddr this_pc, PAddr &next)
{
    StackWindow &win = window_;

    auto ra_v = [&] { return readReg(inst.ra); };
    auto rb_v = [&] { return readReg(inst.rb); };
    auto imm_w = [&] { return static_cast<Word>(inst.imm); };

    auto add_like = [&](Word a, Word b, Word cin) {
        DWord full = static_cast<DWord>(a) + b + cin;
        Word r = static_cast<Word>(full);
        setFlags(r, (full >> 16) != 0,
                 (~(a ^ b) & (a ^ r) & 0x8000) != 0);
        return r;
    };
    auto sub_like = [&](Word a, Word b, Word bin) {
        DWord full = static_cast<DWord>(a) - b - bin;
        Word r = static_cast<Word>(full);
        setFlags(r, (full >> 16) != 0, ((a ^ b) & (a ^ r) & 0x8000) != 0);
        return r;
    };
    auto logical = [&](Word r) {
        setFlags(r, false, false);
        return r;
    };
    auto write_rd = [&](Word value) { writeReg(inst.rd, value); };

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::ADD: write_rd(add_like(ra_v(), rb_v(), 0)); break;
      case Opcode::ADC:
        write_rd(add_like(ra_v(), rb_v(), c_ ? 1 : 0));
        break;
      case Opcode::SUB: write_rd(sub_like(ra_v(), rb_v(), 0)); break;
      case Opcode::SBC:
        write_rd(sub_like(ra_v(), rb_v(), c_ ? 1 : 0));
        break;
      case Opcode::AND: write_rd(logical(ra_v() & rb_v())); break;
      case Opcode::OR: write_rd(logical(ra_v() | rb_v())); break;
      case Opcode::XOR: write_rd(logical(ra_v() ^ rb_v())); break;
      case Opcode::SHL: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a << sh);
        setFlags(r, sh > 0 && ((a >> (16 - sh)) & 1), false);
        write_rd(r);
        break;
      }
      case Opcode::SHR: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a >> sh);
        setFlags(r, sh > 0 && ((a >> (sh - 1)) & 1), false);
        write_rd(r);
        break;
      }
      case Opcode::ASR: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(static_cast<SWord>(a) >> sh);
        setFlags(r, sh > 0 && ((a >> (sh - 1)) & 1), false);
        write_rd(r);
        break;
      }
      case Opcode::MUL: {
        DWord p = static_cast<DWord>(ra_v()) * rb_v();
        mulHigh_ = static_cast<Word>(p >> 16);
        Word r = static_cast<Word>(p);
        setFlags(r, false, false);
        write_rd(r);
        break;
      }
      case Opcode::MULH: write_rd(mulHigh_); break;
      case Opcode::MOV: write_rd(logical(ra_v())); break;
      case Opcode::NOT:
        write_rd(logical(static_cast<Word>(~ra_v())));
        break;
      case Opcode::NEG: write_rd(sub_like(0, ra_v(), 0)); break;
      case Opcode::CMP: sub_like(ra_v(), rb_v(), 0); break;
      case Opcode::TST: logical(ra_v() & rb_v()); break;
      case Opcode::ADDI: write_rd(add_like(ra_v(), imm_w(), 0)); break;
      case Opcode::SUBI: write_rd(sub_like(ra_v(), imm_w(), 0)); break;
      case Opcode::ANDI: write_rd(logical(ra_v() & imm_w())); break;
      case Opcode::ORI: write_rd(logical(ra_v() | imm_w())); break;
      case Opcode::XORI: write_rd(logical(ra_v() ^ imm_w())); break;
      case Opcode::CMPI: sub_like(ra_v(), imm_w(), 0); break;
      case Opcode::LDI: write_rd(imm_w()); break;
      case Opcode::LDIH:
        write_rd(static_cast<Word>((readReg(inst.rd) & 0x00ff) |
                                   (imm_w() << 8)));
        break;
      case Opcode::LD:
      case Opcode::ST: {
        Addr addr = static_cast<Addr>(ra_v() + inst.imm);
        Addr offset = 0;
        Device *dev = bus_.decode(addr, offset);
        if (!dev) {
            ir_ |= 1u << kBusFaultBit;
        } else if (inst.op == Opcode::LD) {
            write_rd(dev->read(offset));
        } else {
            dev->write(offset, readReg(inst.rd));
        }
        break;
      }
      case Opcode::LDM:
        write_rd(imem_.read(static_cast<Addr>(ra_v() + inst.imm)));
        break;
      case Opcode::STM:
        imem_.write(static_cast<Addr>(ra_v() + inst.imm),
                    readReg(inst.rd));
        break;
      case Opcode::LDMD:
        write_rd(imem_.read(static_cast<Addr>(inst.imm)));
        break;
      case Opcode::STMD:
        imem_.write(static_cast<Addr>(inst.imm), readReg(inst.rd));
        break;
      case Opcode::TAS: {
        Word old = imem_.testAndSet(ra_v());
        setFlags(old, false, false);
        write_rd(old);
        break;
      }
      case Opcode::JMP: next = static_cast<PAddr>(inst.imm); break;
      case Opcode::JR: next = ra_v(); break;
      case Opcode::CALL:
      case Opcode::CALLR: {
        PAddr target = inst.op == Opcode::CALL
                           ? static_cast<PAddr>(inst.imm)
                           : ra_v();
        noteWindow(win.inc());
        win.write(0, static_cast<Word>(this_pc + 1));
        next = target;
        break;
      }
      case Opcode::RET: {
        bool bad = win.move(-inst.imm);
        next = win.read(0);
        bad |= win.dec();
        noteWindow(bad);
        break;
      }
      case Opcode::RETI:
        // The interpreter has no interrupt machinery; treat RETI like
        // RET 0 so handler code can still be golden-tested.
        next = win.read(0);
        noteWindow(win.dec());
        break;
      case Opcode::BR: {
        bool take = false;
        switch (inst.cond) {
          case Cond::EQ: take = z_; break;
          case Cond::NE: take = !z_; break;
          case Cond::LT: take = n_ != v_; break;
          case Cond::GE: take = n_ == v_; break;
          case Cond::ULT: take = c_; break;
          case Cond::UGE: take = !c_; break;
          case Cond::MI: take = n_; break;
          case Cond::PL: take = !n_; break;
        }
        if (take)
            next = static_cast<PAddr>(static_cast<int>(this_pc) +
                                      inst.imm);
        break;
      }
      case Opcode::SWI:
        if (inst.stream == self_)
            ir_ |= static_cast<Word>(1u << inst.bit);
        break;
      case Opcode::CLRI:
        ir_ &= static_cast<Word>(~(1u << inst.bit));
        break;
      case Opcode::HALT:
        halted_ = true;
        break;
      case Opcode::FORK:
      case Opcode::FORKR:
      case Opcode::SCHED:
        // Multi-stream controls are no-ops in the one-stream model.
        break;
      case Opcode::WINC: noteWindow(win.inc()); break;
      case Opcode::WDEC: noteWindow(win.dec()); break;
      default:
        panic("interp: unhandled opcode %u",
              static_cast<unsigned>(inst.op));
    }
}

bool
Interp::step()
{
    if (halted_)
        return false;

    const PredecodedInst &pd = pdec_.at(pc_);
    if (!pd.legal) {
        ++illegal_;
        ++pc_;
        return true;
    }
    PAddr this_pc = pc_;
    PAddr next = static_cast<PAddr>(pc_ + 1);

    if (useUops_)
        kInterpTable[pd.uop](*this, pd.inst, this_pc, next);
    else
        stepLegacy(pd.inst, this_pc, next);

    applyWctl(pd.inst.wctl);
    pc_ = next;
    return !halted_;
}

std::uint64_t
Interp::run(std::uint64_t max_instructions)
{
    std::uint64_t n = 0;
    while (n < max_instructions && step())
        ++n;
    if (halted_ && n < max_instructions)
        ++n; // count the HALT itself
    return n;
}

} // namespace disc
