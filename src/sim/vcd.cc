#include "sim/vcd.hh"

#include "common/logging.hh"
#include "sim/machine.hh"

namespace disc
{

namespace
{

/** Binary string of the low @p bits of @p value. */
std::string
bits(std::uint64_t value, unsigned width)
{
    std::string out;
    for (unsigned i = width; i-- > 0;)
        out += (value >> i) & 1 ? '1' : '0';
    return out;
}

} // namespace

VcdWriter::VcdWriter()
{
    emitHeader();
}

void
VcdWriter::emitHeader()
{
    body_ += "$date DISC1 simulation $end\n";
    body_ += "$version disc reproduction $end\n";
    body_ += "$timescale 1ns $end\n";
    body_ += "$scope module disc1 $end\n";
    for (unsigned s = 0; s < kNumStreams; ++s) {
        body_ += strprintf("$var wire 1 a%u is%u_active $end\n", s,
                           s + 1);
        body_ += strprintf("$var wire 1 w%u is%u_waiting $end\n", s,
                           s + 1);
        body_ += strprintf("$var wire 16 p%u is%u_pc $end\n", s, s + 1);
    }
    body_ += "$var wire 1 bb bus_busy $end\n";
    body_ += "$var wire 32 rt retired $end\n";
    body_ += "$upscope $end\n";
    body_ += "$enddefinitions $end\n";
}

void
VcdWriter::change(const char *id, const std::string &value)
{
    if (value.size() == 1)
        body_ += value + id + "\n";
    else
        body_ += "b" + value + " " + id + "\n";
}

void
VcdWriter::sample(const Machine &machine)
{
    std::string changes;
    auto scalar = [&](const char *id, int &last, bool now) {
        if (last != static_cast<int>(now)) {
            last = now;
            changes += strprintf("%c%s\n", now ? '1' : '0', id);
        }
    };

    for (StreamId s = 0; s < kNumStreams; ++s) {
        StreamSignals &sig = streams_[s];
        char aid[4], wid[4], pid[4];
        std::snprintf(aid, sizeof aid, "a%u", s);
        std::snprintf(wid, sizeof wid, "w%u", s);
        std::snprintf(pid, sizeof pid, "p%u", s);
        scalar(aid, sig.active, machine.interrupts().isActive(s));
        scalar(wid, sig.waiting, machine.isWaiting(s));
        std::uint32_t pc = machine.pc(s);
        if (sig.pc != pc) {
            sig.pc = pc;
            changes += "b" + bits(pc, 16) + " " + pid + "\n";
        }
    }
    scalar("bb", busBusy_, machine.abi().busy());
    std::uint64_t retired = machine.stats().totalRetired;
    if (retired_ != retired) {
        retired_ = retired;
        changes += "b" + bits(retired, 32) + " rt\n";
    }

    if (!changes.empty()) {
        body_ += strprintf("#%llu\n",
                           static_cast<unsigned long long>(samples_));
        body_ += changes;
    }
    ++samples_;
}

std::string
VcdWriter::text() const
{
    return body_;
}

} // namespace disc
