/**
 * @file
 * ABI/writeback stage: hands LD/ST accesses to the asynchronous bus
 * interface at EX, parks/flushes streams per the paper's wait rules,
 * and lands completions scheduled by the timing kernel.
 */

#include "sim/machine.hh"

namespace disc
{

void
AbiStage::externalAccess(PipeSlot &slot, unsigned stage)
{
    StreamId s = slot.stream;
    StreamCtx &c = m_.ctx(s);
    bool is_write = slot.inst.op == Opcode::ST;
    Addr addr = static_cast<Addr>(m_.readReg(s, slot.inst.ra) +
                                  slot.inst.imm);
    Word wdata = is_write ? m_.readReg(s, slot.inst.rd) : 0;
    int dest = is_write ? AsyncBusInterface::kNoDest : slot.inst.rd;

    // The target device's lazy clock must be exact before the access
    // can read or re-arm it.
    m_.timing_.syncDeviceForAccess(addr);

    auto outcome = m_.abi_.request(s, addr, is_write, wdata, dest);

    if (outcome == AsyncBusInterface::Outcome::Fault) {
        ++m_.stats_.busFaults;
        m_.raiseInternal(s, kBusFaultBit);
        // Faulting access retires as a no-op.
        ++m_.stats_.retired[s];
        ++m_.stats_.totalRetired;
        m_.executeStage_.applyWctl(slot);
        if (m_.observer_)
            m_.observer_->onEvent(s, slot.inst.op, PipeEvent::Retire);
        return;
    }

    if (outcome == AsyncBusInterface::Outcome::Busy) {
        // Paper: the instruction is flushed and re-requested once the
        // stream leaves the wait state.
        ++m_.stats_.busBusyRejections;
        slot.squashed = true;
        ++m_.stats_.squashedWait;
        if (m_.observer_)
            m_.observer_->onEvent(s, slot.inst.op, PipeEvent::BusBusy);
        m_.squashYounger(s, stage, &m_.stats_.squashedWait,
                         PipeEvent::SquashWait);
        c.wait = WaitState::BusFree;
        c.pc = slot.pc; // re-execute the access instruction
        return;
    }

    // Started.
    if (auto imm = m_.abi_.takeImmediate()) {
        // Zero-wait-state device: completes in the same cycle, the
        // stream does not wait.
        if (imm->destReg != AsyncBusInterface::kNoDest)
            m_.writeReg(s, static_cast<unsigned>(imm->destReg),
                        imm->data);
        if (is_write)
            ++m_.stats_.externalWrites;
        else
            ++m_.stats_.externalReads;
        ++m_.stats_.retired[s];
        ++m_.stats_.totalRetired;
        m_.executeStage_.applyWctl(slot);
        if (m_.observer_)
            m_.observer_->onEvent(s, slot.inst.op, PipeEvent::Retire);
        m_.timing_.rescheduleDeviceAt(addr);
        return;
    }

    // Latent access: let the kernel schedule the completion moment.
    m_.timing_.scheduleAbiCompletion();

    if (m_.cfg_.baselineHaltOnWait) {
        // Standard-processor model: the whole pipe halts until the
        // access completes; nothing is flushed.
        m_.haltedUntilBusDone_ = 1;
        slot.executed = true;
        c.pendingWctl = slot.inst.wctl;
        return;
    }

    // DISC: flush younger same-stream work and park the stream.
    if (m_.observer_)
        m_.observer_->onEvent(s, slot.inst.op, PipeEvent::WaitStart);
    m_.squashYounger(s, stage, &m_.stats_.squashedWait,
                     PipeEvent::SquashWait);
    c.wait = WaitState::Access;
    c.pc = static_cast<PAddr>(slot.pc + 1);
    c.pendingWctl = slot.inst.wctl;
    slot.executed = true; // retires when the ABI completes
}

void
AbiStage::completeAccess(const AsyncBusInterface::Completion &comp)
{
    StreamId s = comp.stream;
    StreamCtx &c = m_.ctx(s);
    if (comp.destReg != AsyncBusInterface::kNoDest)
        m_.writeReg(s, static_cast<unsigned>(comp.destReg), comp.data);
    if (comp.isWrite)
        ++m_.stats_.externalWrites;
    else
        ++m_.stats_.externalReads;
    ++m_.stats_.retired[s];
    ++m_.stats_.totalRetired;
    if (c.pendingWctl != WCtl::None) {
        bool bad = c.pendingWctl == WCtl::Inc ? m_.win(s).inc()
                                              : m_.win(s).dec();
        if (bad) {
            ++m_.stats_.stackOverflows;
            m_.raiseInternal(s, kStackOverflowBit);
        }
        c.pendingWctl = WCtl::None;
    }
    if (m_.observer_) {
        m_.observer_->onEvent(s, comp.isWrite ? Opcode::ST : Opcode::LD,
                              PipeEvent::Retire);
    }
    m_.haltedUntilBusDone_ = 0;
    wakeWaiters();
}

void
AbiStage::wakeWaiters()
{
    for (StreamId s = 0; s < kNumStreams; ++s) {
        if (m_.streams_[s].wait != WaitState::Ready) {
            m_.streams_[s].wait = WaitState::Ready;
            if (m_.observer_)
                m_.observer_->onEvent(s, Opcode::NOP, PipeEvent::Wake);
        }
    }
}

} // namespace disc
