#include "sim/trace.hh"

#include "common/logging.hh"

namespace disc
{

ExecTrace::ExecTrace(std::size_t max_entries)
    : maxEntries_(max_entries)
{
    if (max_entries == 0)
        panic("ExecTrace needs room for at least one entry");
}

void
ExecTrace::record(Cycle cycle, StreamId stream, PAddr pc,
                  const Instruction &inst)
{
    entries_.push_back({cycle, stream, pc, inst});
    ++total_;
    while (entries_.size() > maxEntries_)
        entries_.pop_front();
}

std::string
ExecTrace::render() const
{
    std::string out;
    for (const Entry &e : entries_) {
        out += strprintf("%8llu  is%u  %04x: %s\n",
                         static_cast<unsigned long long>(e.cycle),
                         e.stream + 1, e.pc,
                         e.inst.toString().c_str());
    }
    return out;
}

void
ExecTrace::clear()
{
    entries_.clear();
    total_ = 0;
}

void
ExecTrace::save(Serializer &out) const
{
    out.put<std::uint32_t>(static_cast<std::uint32_t>(maxEntries_));
    out.put<std::uint64_t>(total_);
    out.put<std::uint32_t>(static_cast<std::uint32_t>(entries_.size()));
    for (const Entry &e : entries_) {
        out.put<Cycle>(e.cycle);
        out.put<StreamId>(e.stream);
        out.put<PAddr>(e.pc);
        out.put<std::uint32_t>(encode(e.inst));
    }
}

void
ExecTrace::restore(Deserializer &in)
{
    maxEntries_ = in.get<std::uint32_t>();
    if (maxEntries_ == 0)
        fatal("exec trace snapshot has zero capacity");
    total_ = in.get<std::uint64_t>();
    auto n = in.get<std::uint32_t>();
    entries_.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        Entry e;
        e.cycle = in.get<Cycle>();
        e.stream = in.get<StreamId>();
        e.pc = in.get<PAddr>();
        e.inst = decode(in.get<std::uint32_t>());
        entries_.push_back(e);
    }
}

PipeTrace::PipeTrace(unsigned depth, std::size_t max_cycles)
    : depth_(depth), maxCycles_(max_cycles)
{
    if (depth == 0)
        panic("PipeTrace needs a positive depth");
}

void
PipeTrace::record(Cycle cycle, const std::vector<StageEntry> &stages)
{
    if (stages.size() != depth_)
        panic("trace record with %zu stages, expected %u", stages.size(),
              depth_);
    columns_.emplace_back(cycle, stages);
    while (columns_.size() > maxCycles_)
        columns_.pop_front();
}

std::vector<std::string>
PipeTrace::stageNames(unsigned depth)
{
    switch (depth) {
      case 3:
        return {"IF", "EX", "WR"};
      case 4:
        return {"IF", "ID", "EX", "WR"};
      case 5:
        return {"IF", "ID", "RR", "EX", "WR"};
      default: {
        std::vector<std::string> names;
        names.emplace_back("IF");
        for (unsigned i = 1; i + 2 < depth; ++i)
            names.push_back(strprintf("S%u", i));
        names.emplace_back("EX");
        names.emplace_back("WR");
        return names;
      }
    }
}

std::string
PipeTrace::render() const
{
    if (columns_.empty())
        return "(empty trace)\n";

    auto cell = [](const StageEntry &e) {
        if (!e.valid)
            return std::string(" -- ");
        std::string body = strprintf("%c%u", e.tag, e.stream + 1);
        if (e.squashed)
            return "[" + body + "]";
        return " " + body + " ";
    };

    std::vector<std::string> names = stageNames(depth_);
    std::string out = "cycle";
    for (const auto &[cycle, stages] : columns_)
        out += strprintf(" %4llu", static_cast<unsigned long long>(cycle));
    out += "\n";

    // IF at the top, matching Figure 3.1's layout.
    for (unsigned stage = 0; stage < depth_; ++stage) {
        out += strprintf("%-5s", names[stage].c_str());
        for (const auto &[cycle, stages] : columns_) {
            (void)cycle;
            out += " " + cell(stages[stage]);
        }
        out += "\n";
    }
    return out;
}

void
PipeTrace::clear()
{
    columns_.clear();
}

} // namespace disc
