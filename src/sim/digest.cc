#include "sim/digest.hh"

#include "common/hash.hh"

namespace disc
{

std::uint64_t
runDigest(const Machine &m, const ExecTrace &trace)
{
    std::uint64_t h = fnv1a64(m.saveState());
    return fnv1a64(trace.render(), h);
}

} // namespace disc
