/**
 * @file
 * Execute stage: full instruction semantics at EX — the ALU, control
 * transfers, stream control (FORK/HALT/SCHED), window moves and trap
 * raising. External accesses are handed to the ABI stage.
 */

#include "common/logging.hh"
#include "sim/machine.hh"

namespace disc
{

void
ExecuteStage::setAluFlags(StreamId s, Word result, bool carry,
                          bool overflow)
{
    StreamCtx &c = m_.ctx(s);
    c.z = result == 0;
    c.n = (result & 0x8000) != 0;
    c.c = carry;
    c.v = overflow;
}

void
ExecuteStage::applyWctl(PipeSlot &slot)
{
    if (slot.inst.wctl == WCtl::None)
        return;
    bool bad = slot.inst.wctl == WCtl::Inc ? m_.win(slot.stream).inc()
                                           : m_.win(slot.stream).dec();
    if (bad) {
        ++m_.stats_.stackOverflows;
        m_.raiseInternal(slot.stream, kStackOverflowBit);
    }
}

void
ExecuteStage::redirect(StreamId s, PAddr target, unsigned ex_stage)
{
    m_.ctx(s).pc = target;
    ++m_.stats_.redirects;
    if (m_.cfg_.branchDelaySlots == 0) {
        m_.squashYounger(s, ex_stage, &m_.stats_.squashedJump,
                         PipeEvent::SquashJump);
        return;
    }
    // Delayed branching: spare the first N younger same-stream
    // instructions in program order (they sit at the highest stages
    // below EX), squash the rest.
    unsigned spared = 0;
    for (unsigned i = ex_stage; i-- > 0;) {
        PipeSlot &slot = m_.pipeAt(i);
        if (!slot.valid || slot.squashed || slot.stream != s)
            continue;
        if (spared < m_.cfg_.branchDelaySlots) {
            ++spared;
            continue;
        }
        slot.squashed = true;
        ++m_.stats_.squashedJump;
        if (m_.observer_)
            m_.observer_->onEvent(s, slot.inst.op, PipeEvent::SquashJump);
    }
}

Word
ExecuteStage::aluOp(PipeSlot &slot, bool &is_redirect, PAddr &target)
{
    is_redirect = false;
    target = 0;
    StreamId s = slot.stream;
    StreamCtx &c = m_.ctx(s);
    const Instruction &inst = slot.inst;

    auto ra_v = [&] { return m_.readReg(s, inst.ra); };
    auto rb_v = [&] { return m_.readReg(s, inst.rb); };
    auto imm_v = [&] { return static_cast<Word>(inst.imm); };

    auto add_like = [&](Word a, Word b, Word carry_in) {
        DWord full = static_cast<DWord>(a) + b + carry_in;
        Word r = static_cast<Word>(full);
        bool carry = (full >> 16) != 0;
        bool ovf = (~(a ^ b) & (a ^ r) & 0x8000) != 0;
        setAluFlags(s, r, carry, ovf);
        return r;
    };
    auto sub_like = [&](Word a, Word b, Word borrow_in) {
        DWord full = static_cast<DWord>(a) - b - borrow_in;
        Word r = static_cast<Word>(full);
        bool borrow = (full >> 16) != 0; // wrapped below zero
        bool ovf = ((a ^ b) & (a ^ r) & 0x8000) != 0;
        setAluFlags(s, r, borrow, ovf);
        return r;
    };
    auto logic_flags = [&](Word r) {
        setAluFlags(s, r, false, false);
        return r;
    };

    switch (inst.op) {
      case Opcode::ADD:
        return add_like(ra_v(), rb_v(), 0);
      case Opcode::ADC:
        return add_like(ra_v(), rb_v(), c.c ? 1 : 0);
      case Opcode::SUB:
        return sub_like(ra_v(), rb_v(), 0);
      case Opcode::SBC:
        return sub_like(ra_v(), rb_v(), c.c ? 1 : 0);
      case Opcode::AND:
        return logic_flags(ra_v() & rb_v());
      case Opcode::OR:
        return logic_flags(ra_v() | rb_v());
      case Opcode::XOR:
        return logic_flags(ra_v() ^ rb_v());
      case Opcode::SHL: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a << sh);
        bool carry = sh > 0 && ((a >> (16 - sh)) & 1);
        setAluFlags(s, r, carry, false);
        return r;
      }
      case Opcode::SHR: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a >> sh);
        bool carry = sh > 0 && ((a >> (sh - 1)) & 1);
        setAluFlags(s, r, carry, false);
        return r;
      }
      case Opcode::ASR: {
        unsigned sh = rb_v() & 15u;
        SWord a = static_cast<SWord>(ra_v());
        Word r = static_cast<Word>(a >> sh);
        bool carry = sh > 0 && ((static_cast<Word>(a) >> (sh - 1)) & 1);
        setAluFlags(s, r, carry, false);
        return r;
      }
      case Opcode::MUL: {
        DWord p = static_cast<DWord>(ra_v()) * rb_v();
        c.mulHigh = static_cast<Word>(p >> 16);
        Word r = static_cast<Word>(p);
        setAluFlags(s, r, false, false);
        return r;
      }
      case Opcode::MULH:
        return c.mulHigh;
      case Opcode::MOV:
        return logic_flags(ra_v());
      case Opcode::NOT:
        return logic_flags(static_cast<Word>(~ra_v()));
      case Opcode::NEG:
        return sub_like(0, ra_v(), 0);
      case Opcode::CMP:
        sub_like(ra_v(), rb_v(), 0);
        return 0;
      case Opcode::TST:
        logic_flags(ra_v() & rb_v());
        return 0;
      case Opcode::ADDI:
        return add_like(ra_v(), imm_v(), 0);
      case Opcode::SUBI:
        return sub_like(ra_v(), imm_v(), 0);
      case Opcode::ANDI:
        return logic_flags(ra_v() & imm_v());
      case Opcode::ORI:
        return logic_flags(ra_v() | imm_v());
      case Opcode::XORI:
        return logic_flags(ra_v() ^ imm_v());
      case Opcode::CMPI:
        sub_like(ra_v(), imm_v(), 0);
        return 0;
      case Opcode::LDI:
        return static_cast<Word>(inst.imm);
      case Opcode::LDIH: {
        Word old = m_.readReg(s, inst.rd);
        return static_cast<Word>((old & 0x00ff) |
                                 (static_cast<Word>(inst.imm) << 8));
      }
      case Opcode::LDM: {
        Addr a = static_cast<Addr>(ra_v() + inst.imm);
        return m_.imem_.read(a);
      }
      case Opcode::LDMD:
        return m_.imem_.read(static_cast<Addr>(inst.imm));
      case Opcode::TAS: {
        Word old = m_.imem_.testAndSet(ra_v());
        logic_flags(old);
        return old;
      }
      case Opcode::JMP:
        is_redirect = true;
        target = static_cast<PAddr>(inst.imm);
        return 0;
      case Opcode::JR:
        is_redirect = true;
        target = ra_v();
        return 0;
      case Opcode::BR: {
        bool take = false;
        switch (inst.cond) {
          case Cond::EQ: take = c.z; break;
          case Cond::NE: take = !c.z; break;
          case Cond::LT: take = c.n != c.v; break;
          case Cond::GE: take = c.n == c.v; break;
          case Cond::ULT: take = c.c; break;
          case Cond::UGE: take = !c.c; break;
          case Cond::MI: take = c.n; break;
          case Cond::PL: take = !c.n; break;
        }
        if (take) {
            is_redirect = true;
            target = static_cast<PAddr>(
                static_cast<int>(slot.pc) + inst.imm);
        }
        return 0;
      }
      default:
        panic("aluOp called for %s",
              std::string(opMnemonic(inst.op)).c_str());
    }
}

void
ExecuteStage::execute(PipeSlot &slot)
{
    StreamId s = slot.stream;
    StreamCtx &c = m_.ctx(s);
    const Instruction &inst = slot.inst;
    const OpInfo &oi = inst.info();
    unsigned ex_stage = m_.cfg_.pipeDepth - 2;

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::LD:
      case Opcode::ST:
        // External accesses handle their own retirement/wctl.
        m_.abiStage_.externalAccess(slot, ex_stage);
        return;
      case Opcode::STM: {
        Addr a = static_cast<Addr>(m_.readReg(s, inst.ra) + inst.imm);
        m_.imem_.write(a, m_.readReg(s, inst.rd));
        break;
      }
      case Opcode::STMD:
        m_.imem_.write(static_cast<Addr>(inst.imm),
                       m_.readReg(s, inst.rd));
        break;
      case Opcode::CALL:
      case Opcode::CALLR: {
        PAddr target = inst.op == Opcode::CALL
                           ? static_cast<PAddr>(inst.imm)
                           : m_.readReg(s, inst.ra);
        if (m_.win(s).inc()) {
            ++m_.stats_.stackOverflows;
            m_.raiseInternal(s, kStackOverflowBit);
        }
        m_.win(s).write(0, static_cast<Word>(slot.pc + 1));
        redirect(s, target, ex_stage);
        break;
      }
      case Opcode::RET: {
        bool bad = m_.win(s).move(-inst.imm);
        PAddr ra_val = m_.win(s).read(0);
        bad |= m_.win(s).dec();
        if (bad) {
            ++m_.stats_.stackOverflows;
            m_.raiseInternal(s, kStackOverflowBit);
        }
        redirect(s, ra_val, ex_stage);
        break;
      }
      case Opcode::RETI: {
        if (!m_.intUnit_.exitService(s)) {
            // RETI outside a handler is an illegal use.
            ++m_.stats_.illegalInstructions;
            m_.raiseInternal(s, kIllegalInstBit);
            break;
        }
        PAddr ra_val = m_.win(s).read(0);
        if (m_.win(s).dec()) {
            ++m_.stats_.stackOverflows;
            m_.raiseInternal(s, kStackOverflowBit);
        }
        redirect(s, ra_val, ex_stage);
        break;
      }
      case Opcode::SWI:
        m_.raiseInternal(inst.stream, inst.bit);
        break;
      case Opcode::CLRI:
        m_.intUnit_.clear(s, inst.bit);
        if (!m_.intUnit_.isActive(s)) {
            // Deactivation: drop the younger fetches and park the PC
            // right after this instruction so a later activation
            // resumes exactly where the stream stopped.
            m_.squashYounger(s, ex_stage, &m_.stats_.squashedDeact,
                             PipeEvent::SquashDeact);
            c.pc = static_cast<PAddr>(slot.pc + 1);
        }
        break;
      case Opcode::HALT:
        m_.intUnit_.clear(s, 0);
        if (!m_.intUnit_.isActive(s)) {
            m_.squashYounger(s, ex_stage, &m_.stats_.squashedDeact,
                             PipeEvent::SquashDeact);
            c.pc = static_cast<PAddr>(slot.pc + 1);
        }
        break;
      case Opcode::FORK:
      case Opcode::FORKR: {
        StreamId t = inst.stream;
        PAddr entry = inst.op == Opcode::FORK
                          ? static_cast<PAddr>(inst.imm)
                          : m_.readReg(s, inst.ra);
        // Restart semantics: discard whatever the target had in
        // flight and point it at the new entry.
        m_.squashYounger(t, m_.cfg_.pipeDepth, &m_.stats_.squashedDeact,
                         PipeEvent::SquashDeact);
        m_.ctx(t).pc = entry;
        m_.intUnit_.raise(t, 0);
        break;
      }
      case Opcode::SCHED:
        m_.sched_.setSlot(inst.slot, inst.stream);
        break;
      case Opcode::WINC:
      case Opcode::WDEC: {
        bool bad =
            inst.op == Opcode::WINC ? m_.win(s).inc() : m_.win(s).dec();
        if (bad) {
            ++m_.stats_.stackOverflows;
            m_.raiseInternal(s, kStackOverflowBit);
        }
        break;
      }
      default: {
        // ALU / load-immediate / internal-memory read path.
        bool is_redirect = false;
        PAddr target = 0;
        Word result = aluOp(slot, is_redirect, target);
        if (oi.writesRd)
            m_.writeReg(s, inst.rd, result);
        if (is_redirect)
            redirect(s, target, ex_stage);
        break;
      }
    }

    applyWctl(slot);
    ++m_.stats_.retired[s];
    ++m_.stats_.totalRetired;
    if (oi.isJumpType)
        ++m_.stats_.jumpTypeRetired;
    if (m_.observer_)
        m_.observer_->onEvent(s, inst.op, PipeEvent::Retire);
}

/**
 * Micro-op handlers: one static function per Uop, dispatched through
 * a constexpr function-pointer table indexed by the handler id that
 * predecode resolved (isa/uops.hh). Semantics are a line-for-line
 * mirror of ExecuteStage::execute()/aluOp() above — the legacy switch
 * stays as the reference path (DISC_NO_UOP=1) and the equivalence
 * suite holds the two bit-identical.
 */
struct ExecOps
{
    using Fn = void (*)(ExecuteStage &, PipeSlot &);

    static unsigned exStage(ExecuteStage &ex)
    {
        return ex.m_.cfg_.pipeDepth - 2;
    }

    static Word ra(ExecuteStage &ex, PipeSlot &slot)
    {
        return ex.m_.readReg(slot.stream, slot.inst.ra);
    }
    static Word rb(ExecuteStage &ex, PipeSlot &slot)
    {
        return ex.m_.readReg(slot.stream, slot.inst.rb);
    }
    static Word imm(PipeSlot &slot)
    {
        return static_cast<Word>(slot.inst.imm);
    }
    static void wr(ExecuteStage &ex, PipeSlot &slot, Word value)
    {
        ex.m_.writeReg(slot.stream, slot.inst.rd, value);
    }

    static Word addLike(ExecuteStage &ex, StreamId s, Word a, Word b,
                        Word carry_in)
    {
        DWord full = static_cast<DWord>(a) + b + carry_in;
        Word r = static_cast<Word>(full);
        bool carry = (full >> 16) != 0;
        bool ovf = (~(a ^ b) & (a ^ r) & 0x8000) != 0;
        ex.setAluFlags(s, r, carry, ovf);
        return r;
    }
    static Word subLike(ExecuteStage &ex, StreamId s, Word a, Word b,
                        Word borrow_in)
    {
        DWord full = static_cast<DWord>(a) - b - borrow_in;
        Word r = static_cast<Word>(full);
        bool borrow = (full >> 16) != 0;
        bool ovf = ((a ^ b) & (a ^ r) & 0x8000) != 0;
        ex.setAluFlags(s, r, borrow, ovf);
        return r;
    }
    static Word logicFlags(ExecuteStage &ex, StreamId s, Word r)
    {
        ex.setAluFlags(s, r, false, false);
        return r;
    }

    /** Common retire tail (the legacy post-switch epilogue). */
    static void retire(ExecuteStage &ex, PipeSlot &slot, bool jump_type)
    {
        ex.applyWctl(slot);
        Machine &m = ex.m_;
        ++m.stats_.retired[slot.stream];
        ++m.stats_.totalRetired;
        if (jump_type)
            ++m.stats_.jumpTypeRetired;
        if (m.observer_)
            m.observer_->onEvent(slot.stream, slot.inst.op,
                                 PipeEvent::Retire);
    }

    static void noteWindowFault(ExecuteStage &ex, StreamId s, bool bad)
    {
        if (bad) {
            ++ex.m_.stats_.stackOverflows;
            ex.m_.raiseInternal(s, kStackOverflowBit);
        }
    }

    // --- ALU / immediates / internal memory ---

    static void nop(ExecuteStage &ex, PipeSlot &slot)
    {
        retire(ex, slot, false);
    }
    static void add(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot, addLike(ex, slot.stream, ra(ex, slot), rb(ex, slot), 0));
        retire(ex, slot, false);
    }
    static void adc(ExecuteStage &ex, PipeSlot &slot)
    {
        Word cin = ex.m_.ctx(slot.stream).c ? 1 : 0;
        wr(ex, slot,
           addLike(ex, slot.stream, ra(ex, slot), rb(ex, slot), cin));
        retire(ex, slot, false);
    }
    static void sub(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot, subLike(ex, slot.stream, ra(ex, slot), rb(ex, slot), 0));
        retire(ex, slot, false);
    }
    static void sbc(ExecuteStage &ex, PipeSlot &slot)
    {
        Word bin = ex.m_.ctx(slot.stream).c ? 1 : 0;
        wr(ex, slot,
           subLike(ex, slot.stream, ra(ex, slot), rb(ex, slot), bin));
        retire(ex, slot, false);
    }
    static void and_(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           logicFlags(ex, slot.stream, ra(ex, slot) & rb(ex, slot)));
        retire(ex, slot, false);
    }
    static void or_(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           logicFlags(ex, slot.stream, ra(ex, slot) | rb(ex, slot)));
        retire(ex, slot, false);
    }
    static void xor_(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           logicFlags(ex, slot.stream, ra(ex, slot) ^ rb(ex, slot)));
        retire(ex, slot, false);
    }
    static void shl(ExecuteStage &ex, PipeSlot &slot)
    {
        unsigned sh = rb(ex, slot) & 15u;
        Word a = ra(ex, slot);
        Word r = static_cast<Word>(a << sh);
        bool carry = sh > 0 && ((a >> (16 - sh)) & 1);
        ex.setAluFlags(slot.stream, r, carry, false);
        wr(ex, slot, r);
        retire(ex, slot, false);
    }
    static void shr(ExecuteStage &ex, PipeSlot &slot)
    {
        unsigned sh = rb(ex, slot) & 15u;
        Word a = ra(ex, slot);
        Word r = static_cast<Word>(a >> sh);
        bool carry = sh > 0 && ((a >> (sh - 1)) & 1);
        ex.setAluFlags(slot.stream, r, carry, false);
        wr(ex, slot, r);
        retire(ex, slot, false);
    }
    static void asr(ExecuteStage &ex, PipeSlot &slot)
    {
        unsigned sh = rb(ex, slot) & 15u;
        SWord a = static_cast<SWord>(ra(ex, slot));
        Word r = static_cast<Word>(a >> sh);
        bool carry = sh > 0 && ((static_cast<Word>(a) >> (sh - 1)) & 1);
        ex.setAluFlags(slot.stream, r, carry, false);
        wr(ex, slot, r);
        retire(ex, slot, false);
    }
    static void mul(ExecuteStage &ex, PipeSlot &slot)
    {
        StreamCtx &c = ex.m_.ctx(slot.stream);
        DWord p = static_cast<DWord>(ra(ex, slot)) * rb(ex, slot);
        c.mulHigh = static_cast<Word>(p >> 16);
        Word r = static_cast<Word>(p);
        ex.setAluFlags(slot.stream, r, false, false);
        wr(ex, slot, r);
        retire(ex, slot, false);
    }
    static void mulh(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot, ex.m_.ctx(slot.stream).mulHigh);
        retire(ex, slot, false);
    }
    static void mov(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot, logicFlags(ex, slot.stream, ra(ex, slot)));
        retire(ex, slot, false);
    }
    static void not_(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           logicFlags(ex, slot.stream,
                      static_cast<Word>(~ra(ex, slot))));
        retire(ex, slot, false);
    }
    static void neg(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot, subLike(ex, slot.stream, 0, ra(ex, slot), 0));
        retire(ex, slot, false);
    }
    static void cmp(ExecuteStage &ex, PipeSlot &slot)
    {
        subLike(ex, slot.stream, ra(ex, slot), rb(ex, slot), 0);
        retire(ex, slot, false);
    }
    static void tst(ExecuteStage &ex, PipeSlot &slot)
    {
        logicFlags(ex, slot.stream, ra(ex, slot) & rb(ex, slot));
        retire(ex, slot, false);
    }
    static void addi(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           addLike(ex, slot.stream, ra(ex, slot), imm(slot), 0));
        retire(ex, slot, false);
    }
    static void subi(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           subLike(ex, slot.stream, ra(ex, slot), imm(slot), 0));
        retire(ex, slot, false);
    }
    static void andi(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           logicFlags(ex, slot.stream, ra(ex, slot) & imm(slot)));
        retire(ex, slot, false);
    }
    static void ori(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           logicFlags(ex, slot.stream, ra(ex, slot) | imm(slot)));
        retire(ex, slot, false);
    }
    static void xori(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           logicFlags(ex, slot.stream, ra(ex, slot) ^ imm(slot)));
        retire(ex, slot, false);
    }
    static void cmpi(ExecuteStage &ex, PipeSlot &slot)
    {
        subLike(ex, slot.stream, ra(ex, slot), imm(slot), 0);
        retire(ex, slot, false);
    }
    static void ldi(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot, imm(slot));
        retire(ex, slot, false);
    }
    static void ldih(ExecuteStage &ex, PipeSlot &slot)
    {
        Word old = ex.m_.readReg(slot.stream, slot.inst.rd);
        wr(ex, slot,
           static_cast<Word>((old & 0x00ff) | (imm(slot) << 8)));
        retire(ex, slot, false);
    }
    static void ldm(ExecuteStage &ex, PipeSlot &slot)
    {
        Addr a = static_cast<Addr>(ra(ex, slot) + slot.inst.imm);
        wr(ex, slot, ex.m_.imem_.read(a));
        retire(ex, slot, false);
    }
    static void ldmd(ExecuteStage &ex, PipeSlot &slot)
    {
        wr(ex, slot,
           ex.m_.imem_.read(static_cast<Addr>(slot.inst.imm)));
        retire(ex, slot, false);
    }
    static void stm(ExecuteStage &ex, PipeSlot &slot)
    {
        Addr a = static_cast<Addr>(ra(ex, slot) + slot.inst.imm);
        ex.m_.imem_.write(a, ex.m_.readReg(slot.stream, slot.inst.rd));
        retire(ex, slot, false);
    }
    static void stmd(ExecuteStage &ex, PipeSlot &slot)
    {
        ex.m_.imem_.write(static_cast<Addr>(slot.inst.imm),
                          ex.m_.readReg(slot.stream, slot.inst.rd));
        retire(ex, slot, false);
    }
    static void tas(ExecuteStage &ex, PipeSlot &slot)
    {
        Word old = ex.m_.imem_.testAndSet(ra(ex, slot));
        logicFlags(ex, slot.stream, old);
        wr(ex, slot, old);
        retire(ex, slot, false);
    }

    // --- External bus (retires through the ABI) ---

    static void ldst(ExecuteStage &ex, PipeSlot &slot)
    {
        ex.m_.abiStage_.externalAccess(slot, exStage(ex));
    }

    // --- Control transfer ---

    static void jmp(ExecuteStage &ex, PipeSlot &slot)
    {
        ex.redirect(slot.stream, static_cast<PAddr>(slot.inst.imm),
                    exStage(ex));
        retire(ex, slot, true);
    }
    static void jr(ExecuteStage &ex, PipeSlot &slot)
    {
        ex.redirect(slot.stream, ra(ex, slot), exStage(ex));
        retire(ex, slot, true);
    }
    static void callCommon(ExecuteStage &ex, PipeSlot &slot, PAddr target)
    {
        StreamId s = slot.stream;
        noteWindowFault(ex, s, ex.m_.win(s).inc());
        ex.m_.win(s).write(0, static_cast<Word>(slot.pc + 1));
        ex.redirect(s, target, exStage(ex));
        retire(ex, slot, true);
    }
    static void call(ExecuteStage &ex, PipeSlot &slot)
    {
        callCommon(ex, slot, static_cast<PAddr>(slot.inst.imm));
    }
    static void callr(ExecuteStage &ex, PipeSlot &slot)
    {
        callCommon(ex, slot, ra(ex, slot));
    }
    static void ret(ExecuteStage &ex, PipeSlot &slot)
    {
        StreamId s = slot.stream;
        bool bad = ex.m_.win(s).move(-slot.inst.imm);
        PAddr ra_val = ex.m_.win(s).read(0);
        bad |= ex.m_.win(s).dec();
        noteWindowFault(ex, s, bad);
        ex.redirect(s, ra_val, exStage(ex));
        retire(ex, slot, true);
    }
    static void reti(ExecuteStage &ex, PipeSlot &slot)
    {
        StreamId s = slot.stream;
        if (!ex.m_.intUnit_.exitService(s)) {
            ++ex.m_.stats_.illegalInstructions;
            ex.m_.raiseInternal(s, kIllegalInstBit);
            retire(ex, slot, true);
            return;
        }
        PAddr ra_val = ex.m_.win(s).read(0);
        noteWindowFault(ex, s, ex.m_.win(s).dec());
        ex.redirect(s, ra_val, exStage(ex));
        retire(ex, slot, true);
    }
    static void brTake(ExecuteStage &ex, PipeSlot &slot, bool take)
    {
        if (take) {
            ex.redirect(slot.stream,
                        static_cast<PAddr>(static_cast<int>(slot.pc) +
                                           slot.inst.imm),
                        exStage(ex));
        }
        retire(ex, slot, true);
    }
    static void brEq(ExecuteStage &ex, PipeSlot &slot)
    {
        brTake(ex, slot, ex.m_.ctx(slot.stream).z);
    }
    static void brNe(ExecuteStage &ex, PipeSlot &slot)
    {
        brTake(ex, slot, !ex.m_.ctx(slot.stream).z);
    }
    static void brLt(ExecuteStage &ex, PipeSlot &slot)
    {
        const StreamCtx &c = ex.m_.ctx(slot.stream);
        brTake(ex, slot, c.n != c.v);
    }
    static void brGe(ExecuteStage &ex, PipeSlot &slot)
    {
        const StreamCtx &c = ex.m_.ctx(slot.stream);
        brTake(ex, slot, c.n == c.v);
    }
    static void brUlt(ExecuteStage &ex, PipeSlot &slot)
    {
        brTake(ex, slot, ex.m_.ctx(slot.stream).c);
    }
    static void brUge(ExecuteStage &ex, PipeSlot &slot)
    {
        brTake(ex, slot, !ex.m_.ctx(slot.stream).c);
    }
    static void brMi(ExecuteStage &ex, PipeSlot &slot)
    {
        brTake(ex, slot, ex.m_.ctx(slot.stream).n);
    }
    static void brPl(ExecuteStage &ex, PipeSlot &slot)
    {
        brTake(ex, slot, !ex.m_.ctx(slot.stream).n);
    }

    // --- Stream / interrupt control ---

    static void swi(ExecuteStage &ex, PipeSlot &slot)
    {
        ex.m_.raiseInternal(slot.inst.stream, slot.inst.bit);
        retire(ex, slot, false);
    }
    static void deactivate(ExecuteStage &ex, PipeSlot &slot)
    {
        StreamId s = slot.stream;
        if (!ex.m_.intUnit_.isActive(s)) {
            ex.m_.squashYounger(s, exStage(ex),
                                &ex.m_.stats_.squashedDeact,
                                PipeEvent::SquashDeact);
            ex.m_.ctx(s).pc = static_cast<PAddr>(slot.pc + 1);
        }
    }
    static void clri(ExecuteStage &ex, PipeSlot &slot)
    {
        ex.m_.intUnit_.clear(slot.stream, slot.inst.bit);
        deactivate(ex, slot);
        retire(ex, slot, false);
    }
    static void halt(ExecuteStage &ex, PipeSlot &slot)
    {
        ex.m_.intUnit_.clear(slot.stream, 0);
        deactivate(ex, slot);
        retire(ex, slot, false);
    }
    static void forkCommon(ExecuteStage &ex, PipeSlot &slot, PAddr entry)
    {
        StreamId t = slot.inst.stream;
        ex.m_.squashYounger(t, ex.m_.cfg_.pipeDepth,
                            &ex.m_.stats_.squashedDeact,
                            PipeEvent::SquashDeact);
        ex.m_.ctx(t).pc = entry;
        ex.m_.intUnit_.raise(t, 0);
        retire(ex, slot, false);
    }
    static void fork(ExecuteStage &ex, PipeSlot &slot)
    {
        forkCommon(ex, slot, static_cast<PAddr>(slot.inst.imm));
    }
    static void forkr(ExecuteStage &ex, PipeSlot &slot)
    {
        forkCommon(ex, slot, ra(ex, slot));
    }
    static void sched(ExecuteStage &ex, PipeSlot &slot)
    {
        ex.m_.sched_.setSlot(slot.inst.slot, slot.inst.stream);
        retire(ex, slot, false);
    }
    static void winc(ExecuteStage &ex, PipeSlot &slot)
    {
        noteWindowFault(ex, slot.stream, ex.m_.win(slot.stream).inc());
        retire(ex, slot, false);
    }
    static void wdec(ExecuteStage &ex, PipeSlot &slot)
    {
        noteWindowFault(ex, slot.stream, ex.m_.win(slot.stream).dec());
        retire(ex, slot, false);
    }
};

namespace
{

constexpr UopTable<ExecOps::Fn>
buildExecTable()
{
    UopTable<ExecOps::Fn> t;
    t.set(Uop::NOP, &ExecOps::nop);
    t.set(Uop::ADD, &ExecOps::add);
    t.set(Uop::ADC, &ExecOps::adc);
    t.set(Uop::SUB, &ExecOps::sub);
    t.set(Uop::SBC, &ExecOps::sbc);
    t.set(Uop::AND, &ExecOps::and_);
    t.set(Uop::OR, &ExecOps::or_);
    t.set(Uop::XOR, &ExecOps::xor_);
    t.set(Uop::SHL, &ExecOps::shl);
    t.set(Uop::SHR, &ExecOps::shr);
    t.set(Uop::ASR, &ExecOps::asr);
    t.set(Uop::MUL, &ExecOps::mul);
    t.set(Uop::MULH, &ExecOps::mulh);
    t.set(Uop::MOV, &ExecOps::mov);
    t.set(Uop::NOT, &ExecOps::not_);
    t.set(Uop::NEG, &ExecOps::neg);
    t.set(Uop::CMP, &ExecOps::cmp);
    t.set(Uop::TST, &ExecOps::tst);
    t.set(Uop::ADDI, &ExecOps::addi);
    t.set(Uop::SUBI, &ExecOps::subi);
    t.set(Uop::ANDI, &ExecOps::andi);
    t.set(Uop::ORI, &ExecOps::ori);
    t.set(Uop::XORI, &ExecOps::xori);
    t.set(Uop::CMPI, &ExecOps::cmpi);
    t.set(Uop::LDI, &ExecOps::ldi);
    t.set(Uop::LDIH, &ExecOps::ldih);
    t.set(Uop::LD, &ExecOps::ldst);
    t.set(Uop::ST, &ExecOps::ldst);
    t.set(Uop::LDM, &ExecOps::ldm);
    t.set(Uop::STM, &ExecOps::stm);
    t.set(Uop::LDMD, &ExecOps::ldmd);
    t.set(Uop::STMD, &ExecOps::stmd);
    t.set(Uop::TAS, &ExecOps::tas);
    t.set(Uop::JMP, &ExecOps::jmp);
    t.set(Uop::JR, &ExecOps::jr);
    t.set(Uop::CALL, &ExecOps::call);
    t.set(Uop::CALLR, &ExecOps::callr);
    t.set(Uop::RET, &ExecOps::ret);
    t.set(Uop::BR_EQ, &ExecOps::brEq);
    t.set(Uop::BR_NE, &ExecOps::brNe);
    t.set(Uop::BR_LT, &ExecOps::brLt);
    t.set(Uop::BR_GE, &ExecOps::brGe);
    t.set(Uop::BR_ULT, &ExecOps::brUlt);
    t.set(Uop::BR_UGE, &ExecOps::brUge);
    t.set(Uop::BR_MI, &ExecOps::brMi);
    t.set(Uop::BR_PL, &ExecOps::brPl);
    t.set(Uop::SWI, &ExecOps::swi);
    t.set(Uop::CLRI, &ExecOps::clri);
    t.set(Uop::RETI, &ExecOps::reti);
    t.set(Uop::HALT, &ExecOps::halt);
    t.set(Uop::FORK, &ExecOps::fork);
    t.set(Uop::FORKR, &ExecOps::forkr);
    t.set(Uop::SCHED, &ExecOps::sched);
    t.set(Uop::WINC, &ExecOps::winc);
    t.set(Uop::WDEC, &ExecOps::wdec);
    return t;
}

constexpr UopTable<ExecOps::Fn> kExecTable = buildExecTable();
static_assert(kExecTable.complete(),
              "every micro-op needs an EX handler: extend "
              "buildExecTable() alongside isa/uops.hh");

} // namespace

ExecFn
execHandler(Uop u)
{
    return kExecTable[u];
}

const UopTable<ExecFn> &
execTable()
{
    return kExecTable;
}

void
ExecuteStage::tick()
{
    PipeSlot &slot = m_.pipeAt(m_.cfg_.pipeDepth - 2);
    if (!slot.valid || slot.squashed || slot.executed)
        return;
    slot.executed = true;
    if (m_.uopsEnabled_)
        kExecTable[slot.uop](*this, slot);
    else
        execute(slot);
    if (m_.execTrace_ && !slot.squashed) {
        m_.execTrace_->record(m_.stats_.cycles, slot.stream, slot.pc,
                              slot.inst);
    }
}

} // namespace disc
