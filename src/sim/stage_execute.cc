/**
 * @file
 * Execute stage: full instruction semantics at EX — the ALU, control
 * transfers, stream control (FORK/HALT/SCHED), window moves and trap
 * raising. External accesses are handed to the ABI stage.
 */

#include "common/logging.hh"
#include "sim/machine.hh"

namespace disc
{

void
ExecuteStage::setAluFlags(StreamId s, Word result, bool carry,
                          bool overflow)
{
    StreamCtx &c = m_.ctx(s);
    c.z = result == 0;
    c.n = (result & 0x8000) != 0;
    c.c = carry;
    c.v = overflow;
}

void
ExecuteStage::applyWctl(PipeSlot &slot)
{
    if (slot.inst.wctl == WCtl::None)
        return;
    bool bad = slot.inst.wctl == WCtl::Inc ? m_.win(slot.stream).inc()
                                           : m_.win(slot.stream).dec();
    if (bad) {
        ++m_.stats_.stackOverflows;
        m_.raiseInternal(slot.stream, kStackOverflowBit);
    }
}

void
ExecuteStage::redirect(StreamId s, PAddr target, unsigned ex_stage)
{
    m_.ctx(s).pc = target;
    ++m_.stats_.redirects;
    if (m_.cfg_.branchDelaySlots == 0) {
        m_.squashYounger(s, ex_stage, &m_.stats_.squashedJump,
                         PipeEvent::SquashJump);
        return;
    }
    // Delayed branching: spare the first N younger same-stream
    // instructions in program order (they sit at the highest stages
    // below EX), squash the rest.
    unsigned spared = 0;
    for (unsigned i = ex_stage; i-- > 0;) {
        PipeSlot &slot = m_.pipe_[i];
        if (!slot.valid || slot.squashed || slot.stream != s)
            continue;
        if (spared < m_.cfg_.branchDelaySlots) {
            ++spared;
            continue;
        }
        slot.squashed = true;
        ++m_.stats_.squashedJump;
        if (m_.observer_)
            m_.observer_->onEvent(s, slot.inst.op, PipeEvent::SquashJump);
    }
}

Word
ExecuteStage::aluOp(PipeSlot &slot, bool &is_redirect, PAddr &target)
{
    is_redirect = false;
    target = 0;
    StreamId s = slot.stream;
    StreamCtx &c = m_.ctx(s);
    const Instruction &inst = slot.inst;

    auto ra_v = [&] { return m_.readReg(s, inst.ra); };
    auto rb_v = [&] { return m_.readReg(s, inst.rb); };
    auto imm_v = [&] { return static_cast<Word>(inst.imm); };

    auto add_like = [&](Word a, Word b, Word carry_in) {
        DWord full = static_cast<DWord>(a) + b + carry_in;
        Word r = static_cast<Word>(full);
        bool carry = (full >> 16) != 0;
        bool ovf = (~(a ^ b) & (a ^ r) & 0x8000) != 0;
        setAluFlags(s, r, carry, ovf);
        return r;
    };
    auto sub_like = [&](Word a, Word b, Word borrow_in) {
        DWord full = static_cast<DWord>(a) - b - borrow_in;
        Word r = static_cast<Word>(full);
        bool borrow = (full >> 16) != 0; // wrapped below zero
        bool ovf = ((a ^ b) & (a ^ r) & 0x8000) != 0;
        setAluFlags(s, r, borrow, ovf);
        return r;
    };
    auto logic_flags = [&](Word r) {
        setAluFlags(s, r, false, false);
        return r;
    };

    switch (inst.op) {
      case Opcode::ADD:
        return add_like(ra_v(), rb_v(), 0);
      case Opcode::ADC:
        return add_like(ra_v(), rb_v(), c.c ? 1 : 0);
      case Opcode::SUB:
        return sub_like(ra_v(), rb_v(), 0);
      case Opcode::SBC:
        return sub_like(ra_v(), rb_v(), c.c ? 1 : 0);
      case Opcode::AND:
        return logic_flags(ra_v() & rb_v());
      case Opcode::OR:
        return logic_flags(ra_v() | rb_v());
      case Opcode::XOR:
        return logic_flags(ra_v() ^ rb_v());
      case Opcode::SHL: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a << sh);
        bool carry = sh > 0 && ((a >> (16 - sh)) & 1);
        setAluFlags(s, r, carry, false);
        return r;
      }
      case Opcode::SHR: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a >> sh);
        bool carry = sh > 0 && ((a >> (sh - 1)) & 1);
        setAluFlags(s, r, carry, false);
        return r;
      }
      case Opcode::ASR: {
        unsigned sh = rb_v() & 15u;
        SWord a = static_cast<SWord>(ra_v());
        Word r = static_cast<Word>(a >> sh);
        bool carry = sh > 0 && ((static_cast<Word>(a) >> (sh - 1)) & 1);
        setAluFlags(s, r, carry, false);
        return r;
      }
      case Opcode::MUL: {
        DWord p = static_cast<DWord>(ra_v()) * rb_v();
        c.mulHigh = static_cast<Word>(p >> 16);
        Word r = static_cast<Word>(p);
        setAluFlags(s, r, false, false);
        return r;
      }
      case Opcode::MULH:
        return c.mulHigh;
      case Opcode::MOV:
        return logic_flags(ra_v());
      case Opcode::NOT:
        return logic_flags(static_cast<Word>(~ra_v()));
      case Opcode::NEG:
        return sub_like(0, ra_v(), 0);
      case Opcode::CMP:
        sub_like(ra_v(), rb_v(), 0);
        return 0;
      case Opcode::TST:
        logic_flags(ra_v() & rb_v());
        return 0;
      case Opcode::ADDI:
        return add_like(ra_v(), imm_v(), 0);
      case Opcode::SUBI:
        return sub_like(ra_v(), imm_v(), 0);
      case Opcode::ANDI:
        return logic_flags(ra_v() & imm_v());
      case Opcode::ORI:
        return logic_flags(ra_v() | imm_v());
      case Opcode::XORI:
        return logic_flags(ra_v() ^ imm_v());
      case Opcode::CMPI:
        sub_like(ra_v(), imm_v(), 0);
        return 0;
      case Opcode::LDI:
        return static_cast<Word>(inst.imm);
      case Opcode::LDIH: {
        Word old = m_.readReg(s, inst.rd);
        return static_cast<Word>((old & 0x00ff) |
                                 (static_cast<Word>(inst.imm) << 8));
      }
      case Opcode::LDM: {
        Addr a = static_cast<Addr>(ra_v() + inst.imm);
        return m_.imem_.read(a);
      }
      case Opcode::LDMD:
        return m_.imem_.read(static_cast<Addr>(inst.imm));
      case Opcode::TAS: {
        Word old = m_.imem_.testAndSet(ra_v());
        logic_flags(old);
        return old;
      }
      case Opcode::JMP:
        is_redirect = true;
        target = static_cast<PAddr>(inst.imm);
        return 0;
      case Opcode::JR:
        is_redirect = true;
        target = ra_v();
        return 0;
      case Opcode::BR: {
        bool take = false;
        switch (inst.cond) {
          case Cond::EQ: take = c.z; break;
          case Cond::NE: take = !c.z; break;
          case Cond::LT: take = c.n != c.v; break;
          case Cond::GE: take = c.n == c.v; break;
          case Cond::ULT: take = c.c; break;
          case Cond::UGE: take = !c.c; break;
          case Cond::MI: take = c.n; break;
          case Cond::PL: take = !c.n; break;
        }
        if (take) {
            is_redirect = true;
            target = static_cast<PAddr>(
                static_cast<int>(slot.pc) + inst.imm);
        }
        return 0;
      }
      default:
        panic("aluOp called for %s",
              std::string(opMnemonic(inst.op)).c_str());
    }
}

void
ExecuteStage::execute(PipeSlot &slot)
{
    StreamId s = slot.stream;
    StreamCtx &c = m_.ctx(s);
    const Instruction &inst = slot.inst;
    const OpInfo &oi = inst.info();
    unsigned ex_stage = m_.cfg_.pipeDepth - 2;

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::LD:
      case Opcode::ST:
        // External accesses handle their own retirement/wctl.
        m_.abiStage_.externalAccess(slot, ex_stage);
        return;
      case Opcode::STM: {
        Addr a = static_cast<Addr>(m_.readReg(s, inst.ra) + inst.imm);
        m_.imem_.write(a, m_.readReg(s, inst.rd));
        break;
      }
      case Opcode::STMD:
        m_.imem_.write(static_cast<Addr>(inst.imm),
                       m_.readReg(s, inst.rd));
        break;
      case Opcode::CALL:
      case Opcode::CALLR: {
        PAddr target = inst.op == Opcode::CALL
                           ? static_cast<PAddr>(inst.imm)
                           : m_.readReg(s, inst.ra);
        if (m_.win(s).inc()) {
            ++m_.stats_.stackOverflows;
            m_.raiseInternal(s, kStackOverflowBit);
        }
        m_.win(s).write(0, static_cast<Word>(slot.pc + 1));
        redirect(s, target, ex_stage);
        break;
      }
      case Opcode::RET: {
        bool bad = m_.win(s).move(-inst.imm);
        PAddr ra_val = m_.win(s).read(0);
        bad |= m_.win(s).dec();
        if (bad) {
            ++m_.stats_.stackOverflows;
            m_.raiseInternal(s, kStackOverflowBit);
        }
        redirect(s, ra_val, ex_stage);
        break;
      }
      case Opcode::RETI: {
        if (!m_.intUnit_.exitService(s)) {
            // RETI outside a handler is an illegal use.
            ++m_.stats_.illegalInstructions;
            m_.raiseInternal(s, kIllegalInstBit);
            break;
        }
        PAddr ra_val = m_.win(s).read(0);
        if (m_.win(s).dec()) {
            ++m_.stats_.stackOverflows;
            m_.raiseInternal(s, kStackOverflowBit);
        }
        redirect(s, ra_val, ex_stage);
        break;
      }
      case Opcode::SWI:
        m_.raiseInternal(inst.stream, inst.bit);
        break;
      case Opcode::CLRI:
        m_.intUnit_.clear(s, inst.bit);
        if (!m_.intUnit_.isActive(s)) {
            // Deactivation: drop the younger fetches and park the PC
            // right after this instruction so a later activation
            // resumes exactly where the stream stopped.
            m_.squashYounger(s, ex_stage, &m_.stats_.squashedDeact,
                             PipeEvent::SquashDeact);
            c.pc = static_cast<PAddr>(slot.pc + 1);
        }
        break;
      case Opcode::HALT:
        m_.intUnit_.clear(s, 0);
        if (!m_.intUnit_.isActive(s)) {
            m_.squashYounger(s, ex_stage, &m_.stats_.squashedDeact,
                             PipeEvent::SquashDeact);
            c.pc = static_cast<PAddr>(slot.pc + 1);
        }
        break;
      case Opcode::FORK:
      case Opcode::FORKR: {
        StreamId t = inst.stream;
        PAddr entry = inst.op == Opcode::FORK
                          ? static_cast<PAddr>(inst.imm)
                          : m_.readReg(s, inst.ra);
        // Restart semantics: discard whatever the target had in
        // flight and point it at the new entry.
        m_.squashYounger(t, m_.cfg_.pipeDepth, &m_.stats_.squashedDeact,
                         PipeEvent::SquashDeact);
        m_.ctx(t).pc = entry;
        m_.intUnit_.raise(t, 0);
        break;
      }
      case Opcode::SCHED:
        m_.sched_.setSlot(inst.slot, inst.stream);
        break;
      case Opcode::WINC:
      case Opcode::WDEC: {
        bool bad =
            inst.op == Opcode::WINC ? m_.win(s).inc() : m_.win(s).dec();
        if (bad) {
            ++m_.stats_.stackOverflows;
            m_.raiseInternal(s, kStackOverflowBit);
        }
        break;
      }
      default: {
        // ALU / load-immediate / internal-memory read path.
        bool is_redirect = false;
        PAddr target = 0;
        Word result = aluOp(slot, is_redirect, target);
        if (oi.writesRd)
            m_.writeReg(s, inst.rd, result);
        if (is_redirect)
            redirect(s, target, ex_stage);
        break;
      }
    }

    applyWctl(slot);
    ++m_.stats_.retired[s];
    ++m_.stats_.totalRetired;
    if (oi.isJumpType)
        ++m_.stats_.jumpTypeRetired;
    if (m_.observer_)
        m_.observer_->onEvent(s, inst.op, PipeEvent::Retire);
}

void
ExecuteStage::tick()
{
    PipeSlot &slot = m_.pipe_[m_.cfg_.pipeDepth - 2];
    if (!slot.valid || slot.squashed || slot.executed)
        return;
    slot.executed = true;
    execute(slot);
    if (m_.execTrace_ && !slot.squashed) {
        m_.execTrace_->record(m_.stats_.cycles, slot.stream, slot.pc,
                              slot.inst);
    }
}

} // namespace disc
