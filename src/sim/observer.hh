/**
 * @file
 * Per-cycle observation interface for the cycle-accurate machine.
 *
 * The machine optionally reports its micro-architectural events —
 * issue decisions with their scheduling context, vector entries,
 * squashes, wait-state transitions, traps and retirements — to an
 * attached MachineObserver. The hooks exist so a correctness oracle
 * (src/verify/invariants.hh) and a fuzzing coverage map
 * (src/verify/coverage.hh) can watch the machine without the machine
 * depending on them; when no observer is attached every hook site is
 * a single predictable branch on a null pointer (zero overhead).
 */

#ifndef DISC_SIM_OBSERVER_HH
#define DISC_SIM_OBSERVER_HH

#include "common/types.hh"
#include "isa/instruction.hh"

namespace disc
{

/** Micro-architectural event classes reported to an observer. */
enum class PipeEvent : std::uint8_t
{
    Issue,        ///< instruction entered the pipe
    Retire,       ///< instruction completed architecturally
    SquashJump,   ///< flushed by a control redirect
    SquashWait,   ///< flushed by an external-access wait
    SquashDeact,  ///< flushed by HALT/CLRI deactivation or FORK restart
    BusBusy,      ///< external access rejected, stream waits for the bus
    WaitStart,    ///< access started with latency, stream parks
    Wake,         ///< stream re-activated by an access completion
    Vector,       ///< interrupt vector entry
    TrapOverflow, ///< stack window bound violation
    TrapIllegal,  ///< illegal instruction
    TrapBusFault, ///< external access decoded to no device

    NumEvents
};

/** Number of pipe-event classes (coverage-map dimensioning). */
constexpr unsigned kNumPipeEvents =
    static_cast<unsigned>(PipeEvent::NumEvents);

/** Printable name of a pipe event. */
const char *pipeEventName(PipeEvent ev);

/**
 * Passive observer of machine events. All hooks default to no-ops so
 * implementations override only what they need. The machine calls the
 * hooks synchronously from step(); observers must not mutate the
 * machine.
 */
class MachineObserver
{
  public:
    virtual ~MachineObserver() = default;

    /**
     * An instruction was issued (including ones that will trap as
     * illegal at issue).
     * @param s          the issuing stream.
     * @param slot_owner static owner of the scheduler slot consumed.
     * @param ready_mask the ready mask the scheduler picked from.
     * @param pc         fetch address of the instruction.
     * @param inst       predecoded instruction at @p pc.
     */
    virtual void onIssue(StreamId s, StreamId slot_owner,
                         unsigned ready_mask, PAddr pc,
                         const Instruction &inst)
    {
        (void)s; (void)slot_owner; (void)ready_mask; (void)pc;
        (void)inst;
    }

    /**
     * Stream @p s is about to enter the vector for @p level. Called
     * before the in-service stack is pushed, so the observer sees the
     * pre-entry IR/MR/running-level state.
     */
    virtual void onVector(StreamId s, unsigned level)
    {
        (void)s; (void)level;
    }

    /** A classified event happened to @p op of stream @p s. */
    virtual void onEvent(StreamId s, Opcode op, PipeEvent ev)
    {
        (void)s; (void)op; (void)ev;
    }

    /** End of one machine cycle (state is consistent for checking). */
    virtual void onCycleEnd() {}
};

} // namespace disc

#endif // DISC_SIM_OBSERVER_HH
