/**
 * @file
 * Issue stage and vector unit: per-cycle readiness, the hardware
 * schedule pick, interlock modelling and serialized vector entry.
 */

#include "common/logging.hh"
#include "sim/machine.hh"

namespace disc
{

bool
IssueStage::interlocked(StreamId s, std::uint32_t reads,
                        std::uint32_t writes) const
{
    for (const PipeSlot &slot : m_.pipe_) {
        if (!slot.valid || slot.squashed || slot.stream != s)
            continue;
        if (reads & slot.writesMask)
            return true;
        // Window moves must also wait for in-flight window users.
        if ((writes & kDepAwp) && (slot.readsMask & kDepAwp))
            return true;
    }
    return false;
}

bool
IssueStage::hasInFlight(StreamId s) const
{
    for (const PipeSlot &slot : m_.pipe_) {
        if (slot.valid && !slot.squashed && slot.stream == s)
            return true;
    }
    return false;
}

unsigned
IssueStage::readyMask() const
{
    // One pass over the pipe gathers every stream's in-flight
    // dependency state, so the per-stream checks below are mask tests
    // instead of a pipe scan per candidate (the union over a stream's
    // slots answers exactly what interlocked()'s any-slot scan asks).
    std::uint32_t in_writes[kNumStreams] = {};
    std::uint32_t in_reads[kNumStreams] = {};
    unsigned in_flight = 0;
    for (const PipeSlot &slot : m_.pipe_) {
        if (!slot.valid || slot.squashed)
            continue;
        in_writes[slot.stream] |= slot.writesMask;
        in_reads[slot.stream] |= slot.readsMask;
        in_flight |= 1u << slot.stream;
    }

    unsigned ready = 0;
    for (StreamId s = 0; s < kNumStreams; ++s) {
        const StreamCtx &c = m_.streams_[s];
        if (c.wait != WaitState::Ready)
            continue;
        if (!m_.intUnit_.isActive(s))
            continue;
        auto vec = m_.intUnit_.pendingVector(s);
        if (vec && (in_flight & (1u << s)))
            continue; // vector entry serialises against the pipe
        PAddr fetch_pc = vec ? vectorAddress(s, *vec) : c.pc;
        const PredecodedInst &pd = m_.pdec_.at(fetch_pc);
        if (!pd.legal) {
            ready |= 1u << s; // issue consumes it and raises the trap
            continue;
        }
        if (!vec && ((pd.readsMask & in_writes[s]) ||
                     ((pd.writesMask & kDepAwp) &&
                      (in_reads[s] & kDepAwp))))
            continue; // interlock: see interlocked()
        ready |= 1u << s;
    }
    return ready;
}

void
IssueStage::tick()
{
    unsigned ready = readyMask();
    StreamId slot_owner =
        m_.observer_ ? m_.sched_.nextOwner() : kNoStream;
    StreamId s = m_.sched_.pick(ready);
    if (s == kNoStream) {
        ++m_.stats_.bubbles;
        return;
    }

    StreamCtx &c = m_.ctx(s);
    if (auto vec = m_.intUnit_.pendingVector(s))
        m_.vectorStage_.takeVector(s, *vec);

    const PredecodedInst &pd = m_.pdec_.at(c.pc);
    if (m_.observer_) {
        m_.observer_->onIssue(s, slot_owner, ready, c.pc, pd.inst);
        if (pd.legal)
            m_.observer_->onEvent(s, pd.inst.op, PipeEvent::Issue);
    }
    if (!pd.legal) {
        ++m_.stats_.illegalInstructions;
        m_.raiseInternal(s, kIllegalInstBit);
        ++c.pc;
        return;
    }

    PipeSlot &slot = m_.pipeAt(0);
    slot.valid = true;
    slot.squashed = false;
    slot.executed = false;
    slot.stream = s;
    slot.pc = c.pc;
    slot.inst = pd.inst;
    slot.readsMask = pd.readsMask;
    slot.writesMask = pd.writesMask;
    slot.uop = pd.uop;
    slot.tag = m_.nextTag_;
    m_.nextTag_ =
        m_.nextTag_ == 'z' ? 'a' : static_cast<char>(m_.nextTag_ + 1);
    ++c.pc;
}

void
VectorStage::takeVector(StreamId s, unsigned level)
{
    StreamCtx &c = m_.ctx(s);
    if (m_.observer_) {
        // Before enterService so the observer can audit the pre-entry
        // pending/mask/running-level state against the chosen level.
        m_.observer_->onVector(s, level);
        m_.observer_->onEvent(s, Opcode::NOP, PipeEvent::Vector);
    }
    if (m_.win(s).inc()) {
        ++m_.stats_.stackOverflows;
        m_.raiseInternal(s, kStackOverflowBit);
    }
    m_.win(s).write(0, c.pc);
    m_.intUnit_.enterService(s, level);
    c.pc = vectorAddress(s, level);
    ++m_.stats_.vectorsTaken;
    if (c.latencyArmed[level]) {
        m_.latency_.add(m_.stats_.cycles - c.lastRaise[level]);
        c.latencyArmed[level] = false;
    }
}

} // namespace disc
