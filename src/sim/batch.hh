/**
 * @file
 * MachineBatch: batched lockstep execution across N Machines.
 *
 * The stochastic experiments and disc-serve shards both advance many
 * independent Machines with identical structure. Stepping them one at
 * a time pays the full per-cycle bookkeeping of Machine::step() —
 * the engaged() scan, the event-queue probe, the per-stream wait
 * tally, readyMask() over all four streams — for every machine on
 * every cycle. A MachineBatch owns the lanes' scheduling state in a
 * structure-of-arrays BatchArena and advances all of them in lockstep
 * *chunks*: per chunk it proves a regime in which that bookkeeping is
 * loop-invariant, hoists it, and runs a lean cycle loop through the
 * existing stage modules (IssueStage::tickWith, ExecuteStage::tick).
 *
 * The hot-chunk regime and why it is exact
 * ----------------------------------------
 * A chunk is entered only when nothing attached wants per-cycle hooks
 * (no PipeTrace or observer; exec traces are recorded in-chunk at EX,
 * like the superblock tier), the machine is not in the baseline halt
 * mode, and no unexecuted external/cross-stream op is already in
 * flight. Within a chunk three facts hold, each pinned by
 * a chunk-ending rule:
 *
 *  - No queued event fires: the chunk runs strictly below the event
 *    horizon (TimingKernel::nextEventTime()), and only excluded ops
 *    (LD/ST, device access) can schedule new events — so the per-
 *    cycle dispatch() probe is hoisted to one horizon computation.
 *  - Every stream's wait state and activity are frozen: waits change
 *    only via the ABI (LD/ST excluded, completions are events) and
 *    activity only via CLRI/HALT/FORK/FORKR/SWI/IRR/IMR writes (all
 *    excluded — they end the chunk when issued) or raises on the
 *    issuing stream itself, which is necessarily already active. The
 *    per-stream ready/waitAbi/inactive tallies and busyCycles are
 *    therefore constant per cycle and settle as one span at chunk
 *    exit — the same licence Machine::fastForward() uses.
 *  - Vectors appear only through traps: own-stream raises (illegal
 *    instruction, stack overflow) are the only in-chunk sources of a
 *    pending vector. Both bump a stats counter, so a two-counter
 *    sentinel checked between EX and issue upgrades the trimmed
 *    readiness mirror to the full vector-aware one exactly when
 *    needed.
 *
 * Everything else — handlers, redirects, traps, vector entry, the
 * scheduler pick, interlocks, superblock attempts — runs the real
 * code. Machines that leave the regime are peeled to the scalar path
 * (Machine::run()/step()) and re-admitted at the next sync point, so
 * traces, checkpoints, stats and run digests are bit-identical to
 * scalar stepping at every batch width. Like the fast-forward and
 * superblock tiers, the only counters that may differ are the
 * stepping-mode diagnostics (the fastForward/superblock counter
 * families — excluded from checkpoints and digests); BatchStats
 * itself lives outside MachineStats entirely.
 *
 * Opt-out: MachineConfig::batchExec = false or DISC_NO_BATCH=1 sends
 * every lane down the scalar path; MachineBatch remains usable as a
 * plain sequential runner so call sites need no second code path.
 */

#ifndef DISC_SIM_BATCH_HH
#define DISC_SIM_BATCH_HH

#include <array>
#include <cstdint>

#include "common/batch_arena.hh"
#include "common/types.hh"
#include "isa/uops.hh"

namespace disc
{

class Machine;

/** Why a lane left the batched hot lane. */
enum class BatchPeel : std::uint8_t
{
    Event,    ///< queued device/ABI event reached the horizon
    NonHot,   ///< excluded op issued (LD/ST, stream/interrupt control)
    Stall,    ///< no stream both active and ABI-ready (scalar FF regime)
    Done,     ///< lane went idle (stop-when-idle) or budget exhausted
    Baseline, ///< baseline halt-on-wait machine (never batched)
    Observed, ///< pipe trace/observer attached: every cycle must be seen
    Disabled, ///< opted out (config, DISC_NO_BATCH, or uop dispatch off)
    NumReasons,
};

/** Number of distinct peel reasons. */
constexpr unsigned kNumBatchPeels =
    static_cast<unsigned>(BatchPeel::NumReasons);

/** Printable peel-reason name ("event", "non-hot", ...). */
const char *batchPeelName(BatchPeel p);

/**
 * True when @p u may issue without ending a hot chunk. External
 * accesses change wait states; SWI/CLRI/HALT/FORK/FORKR change stream
 * activity — both would break the frozen-tally invariant, so they
 * peel the lane at issue and execute on the scalar path. (SCHED and
 * RETI stay hot: slot-table and running-level changes touch neither
 * waits nor activity.)
 */
constexpr bool
batchHotUop(Uop u)
{
    switch (u) {
      case Uop::LD:
      case Uop::ST:
      case Uop::SWI:
      case Uop::CLRI:
      case Uop::HALT:
      case Uop::FORK:
      case Uop::FORKR:
        return false;
      default:
        return static_cast<unsigned>(u) < kNumUops;
    }
}

/** Aggregate counters for one MachineBatch (diagnostics only). */
struct BatchStats
{
    std::uint64_t dispatches = 0;   ///< run()/step() calls
    std::uint64_t lanesRun = 0;     ///< lanes summed over dispatches
    Cycle hotCycles = 0;            ///< cycles stepped in the hot lane
    Cycle scalarCycles = 0;         ///< cycles delegated to the scalar path
    std::uint64_t hotChunks = 0;    ///< hot-chunk entries
    std::array<std::uint64_t, kNumBatchPeels> peels{};
};

/**
 * A batch of Machines advanced in lockstep. Lanes are added with
 * add() and stay until clear(); run()/step() advance every lane by
 * the same budget, interleaved in bounded quanta so the lanes stay
 * within one sync window of each other.
 */
class MachineBatch
{
  public:
    /** Cycles a lane may advance before the next lane gets the core. */
    static constexpr Cycle kSyncQuantum = 8192;

    explicit MachineBatch(std::size_t capacity = 16);

    /** Add a lane. The machine must outlive the batch (or clear()). */
    void add(Machine *m);

    /** Forget every lane (stats are retained). */
    void clear();

    /** Number of lanes. */
    std::size_t size() const { return arena_.size(); }

    /**
     * Advance every lane as if by Machine::run(max_cycles,
     * stop_when_idle) — bit-identical final state, traces and
     * architectural stats for each machine.
     */
    void run(Cycle max_cycles, bool stop_when_idle = true);

    /**
     * Advance every lane as if by n calls to Machine::step(): no
     * fast-forward, no superblocks, no idle break, no boundary sync —
     * the serve Step-request semantics.
     */
    void step(Cycle n);

    /** Diagnostics (never part of any machine's checkpoint). */
    const BatchStats &stats() const { return stats_; }

  private:
    enum class Mode : std::uint8_t
    {
        Run,  ///< Machine::run() semantics (ff + superblocks + sync)
        Step, ///< bare Machine::step() semantics
    };

    void dispatch(Cycle budget, bool stop_when_idle, Mode mode);

    /** Advance one lane by at most @p slice; returns cycles advanced. */
    Cycle advanceLane(std::size_t i, Cycle slice, bool stop_when_idle,
                      Mode mode);

    /**
     * The lean cycle loop: step @p m up to @p budget cycles inside
     * the frozen regime described in the file comment. Returns cycles
     * advanced (hot-stepped plus any superblock spans) and the peel
     * reason that ended the chunk.
     */
    Cycle hotChunk(Machine &m, Cycle budget, Mode mode, BatchPeel &peel);

    /** Scalar fallback for @p budget cycles under @p mode. */
    Cycle scalarSpan(Machine &m, Cycle budget, bool stop_when_idle,
                     Mode mode);

    BatchArena<Machine *> arena_;
    BatchStats stats_;
};

} // namespace disc

#endif // DISC_SIM_BATCH_HH
