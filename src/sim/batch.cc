/**
 * @file
 * MachineBatch implementation: the lockstep dispatcher and the lean
 * hot-chunk cycle loop. See batch.hh for the regime argument; the
 * short version is that a chunk only runs while the per-cycle
 * bookkeeping of Machine::step() is provably loop-invariant, so it
 * is hoisted (event horizon) or settled as a span (wait tallies,
 * busyCycles) exactly the way Machine::fastForward() settles dead
 * spans. Everything with semantic content — EX handlers, redirects,
 * traps, vector entry, the schedule pick — runs the unmodified stage
 * code.
 *
 * The cycle loop is mirrored inline rather than calling step():
 * Machine::step() inlines advancePipe/EX/issue into its own TU, so a
 * cross-TU call per stage would erase the batch advantage. The
 * mirror must stay a specialisation of machine.cc / stage_issue.cc /
 * stage_execute.cc: readiness is IssueStage::readyMask() with the
 * wait/activity checks replaced by the frozen candidate mask, the
 * pendingVector probe elided until the trap sentinel proves a vector
 * can exist, and the per-stream dep masks patched incrementally for
 * touched streams only. The scalar path is the oracle;
 * tests/test_batch.cc holds the two bit-identical across every
 * workload the fuzzer can produce.
 */

#include "sim/batch.hh"

#include <bit>
#include <vector>

#include "common/logging.hh"
#include "isa/instruction.hh"
#include "isa/predecode.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace disc
{

namespace
{

/** Dep-mask bits whose write retargets interrupt state (IRR/IMR):
 *  any instruction naming them as destination can change stream
 *  activity or raise from EX, so it ends a hot chunk like the
 *  dedicated stream-control ops do. */
constexpr std::uint32_t kIntCtlWrites =
    (1u << reg::IRR) | (1u << reg::IMR);

/** True when the issued slot may execute without leaving the hot
 *  regime. */
inline bool
hotIssue(const PipeSlot &slot)
{
    return batchHotUop(slot.uop) && (slot.writesMask & kIntCtlWrites) == 0;
}

/** True when an in-flight, not-yet-executed slot would leave the hot
 *  regime at EX — a chunk must not start while one is pending. */
inline bool
pipeHasColdInFlight(const std::vector<PipeSlot> &pipe)
{
    for (const PipeSlot &slot : pipe) {
        if (slot.valid && !slot.squashed && !slot.executed &&
            !hotIssue(slot))
            return true;
    }
    return false;
}

} // namespace

const char *
batchPeelName(BatchPeel p)
{
    switch (p) {
      case BatchPeel::Event: return "event";
      case BatchPeel::NonHot: return "non-hot";
      case BatchPeel::Stall: return "stall";
      case BatchPeel::Done: return "done";
      case BatchPeel::Baseline: return "baseline";
      case BatchPeel::Observed: return "observed";
      case BatchPeel::Disabled: return "disabled";
      case BatchPeel::NumReasons: break;
    }
    return "?";
}

MachineBatch::MachineBatch(std::size_t capacity) : arena_(capacity) {}

void
MachineBatch::add(Machine *m)
{
    if (!m)
        fatal("null machine added to a batch");
    arena_.push(m, 0);
}

void
MachineBatch::clear()
{
    arena_.clear();
}

void
MachineBatch::run(Cycle max_cycles, bool stop_when_idle)
{
    dispatch(max_cycles, stop_when_idle, Mode::Run);
}

void
MachineBatch::step(Cycle n)
{
    dispatch(n, false, Mode::Step);
}

Cycle
MachineBatch::hotChunk(Machine &m, Cycle budget, Mode mode,
                       BatchPeel &peel)
{
    const Cycle start = m.stats_.cycles;
    Cycle end_at = start + budget;
    peel = BatchPeel::Done;
    if (Cycle next = m.timing_.nextEventTime(); next != kNoEvent) {
        if (next <= start) {
            peel = BatchPeel::Event;
            return 0;
        }
        if (next < end_at) {
            end_at = next;
            peel = BatchPeel::Event;
        }
    }

    ++stats_.hotChunks;
    const bool allow_sb = mode == Mode::Run && m.sbEnabled_;
    const unsigned depth = m.cfg_.pipeDepth;
    const unsigned ex_stage = depth - 2;
    const UopTable<ExecFn> &extab = execTable();
    ExecTrace *const etrace = m.execTrace_;

    // Frozen per-stream categories (see batch.hh): recomputed after
    // every superblock span, invariant across hot-stepped cycles.
    unsigned cand = 0;
    unsigned wait_mask = 0;
    bool vec_watch = false;
    std::uint64_t sentinel = 0;
    Cycle span_start = start;

    auto freeze = [&] {
        cand = 0;
        wait_mask = 0;
        vec_watch = false;
        for (StreamId s = 0; s < kNumStreams; ++s) {
            if (m.streams_[s].wait != WaitState::Ready)
                wait_mask |= 1u << s;
            else if (m.intUnit_.isActive(s))
                cand |= 1u << s;
            if ((m.intUnit_.ir(s) & m.intUnit_.mr(s) & ~1u) != 0)
                vec_watch = true;
        }
        sentinel =
            m.stats_.illegalInstructions + m.stats_.stackOverflows;
        span_start = m.stats_.cycles;
    };

    // Settle the span since span_start: every cycle of it had the
    // frozen categories and at least one engaged stream, so the
    // per-cycle tallies of finishCycle() collapse to span additions
    // (the fastForward() licence).
    // Bubbles accumulate locally (nothing reads the counter inside a
    // chunk) and flush with the span tallies.
    std::uint64_t bub = 0;

    auto settle = [&] {
        m.stats_.bubbles += bub;
        bub = 0;
        Cycle span = m.stats_.cycles - span_start;
        span_start = m.stats_.cycles;
        if (span == 0)
            return;
        stats_.hotCycles += span;
        for (StreamId s = 0; s < kNumStreams; ++s) {
            if (wait_mask & (1u << s))
                m.stats_.waitAbiCycles[s] += span;
            else if (cand & (1u << s))
                m.stats_.readyCycles[s] += span;
            else
                m.stats_.inactiveCycles[s] += span;
        }
        m.stats_.busyCycles += span;
    };

    // Readiness cache — the incremental mirror of readyMask() (see
    // the file comment in batch.hh). Per-candidate dep masks, live
    // slot counts and ready bits are rebuilt wholesale at freeze()
    // and then maintained in place at the sites that change them. The
    // two per-cycle sites are O(1): a retirement that empties its
    // stream's pipe share clears the masks directly — and, with no
    // vector live, an empty pipe share means unconditionally ready —
    // and an issue ORs the predecoded masks of the new slot in. Only
    // the rare sites (redirect squashes, traps, a retire that leaves
    // older slots behind) fall back to re-scanning the pipe, which is
    // what makes the steady-state readiness cost independent of pipe
    // depth.
    std::uint32_t in_writes[kNumStreams] = {};
    std::uint32_t in_reads[kNumStreams] = {};
    std::uint8_t flight_n[kNumStreams] = {};
    // Predecode entry at each candidate's current pc, refreshed by
    // every non-vectored readyBit() — pc changes always pass through
    // recompute()/rebuild(), so the pointer is fresh at issue time
    // whenever no vector redirected the pc (the vec_watch issue path
    // re-reads the table directly).
    const PredecodedInst *pd_cache[kNumStreams] = {};
    unsigned in_flight = 0;
    unsigned ready = 0;
    std::uint64_t redirects0 = 0;

    auto gatherStream = [&](StreamId s) {
        std::uint32_t w = 0;
        std::uint32_t r = 0;
        unsigned n = 0;
        for (unsigned d = 0; d < depth; ++d) {
            const PipeSlot &sl = m.pipe_[d];
            if (sl.valid && !sl.squashed && sl.stream == s) {
                w |= sl.writesMask;
                r |= sl.readsMask;
                ++n;
            }
        }
        in_writes[s] = w;
        in_reads[s] = r;
        flight_n[s] = static_cast<std::uint8_t>(n);
        if (n)
            in_flight |= 1u << s;
        else
            in_flight &= ~(1u << s);
    };

    // One candidate's ready bit; must track IssueStage::readyMask()
    // (the wait/activity filters are the frozen cand mask, the vector
    // probe is elided until vec_watch).
    auto readyBit = [&](StreamId s) -> unsigned {
        if (vec_watch && m.intUnit_.pendingVector(s)) {
            // Vectored fetches skip the interlock but serialise
            // against the pipe.
            return (in_flight & (1u << s)) ? 0u : 1u << s;
        }
        const PredecodedInst &pd = m.pdec_.at(m.streams_[s].pc);
        pd_cache[s] = &pd;
        if (!pd.legal)
            return 1u << s; // issue consumes it and raises the trap
        if ((pd.readsMask & in_writes[s]) ||
            ((pd.writesMask & kDepAwp) && (in_reads[s] & kDepAwp)))
            return 0; // interlock
        return 1u << s;
    };

    /** Re-derive one candidate's ready bit from the current cache. */
    auto recompute = [&](StreamId s) {
        unsigned bit = 1u << s;
        ready = (ready & ~bit) | readyBit(s);
    };

    auto rebuild = [&] {
        ready = 0;
        in_flight = 0;
        for (unsigned bits = cand; bits != 0; bits &= bits - 1)
            gatherStream(static_cast<StreamId>(std::countr_zero(bits)));
        for (unsigned bits = cand; bits != 0; bits &= bits - 1)
            ready |= readyBit(static_cast<StreamId>(std::countr_zero(bits)));
        redirects0 = m.stats_.redirects;
    };

    freeze();
    rebuild();

    while (m.stats_.cycles < end_at) {
        // cand is frozen: it can only change at freeze(), so the
        // stall test belongs here, not in the cycle loop.
        if (cand == 0) {
            settle();
            peel = BatchPeel::Stall;
            return m.stats_.cycles - start;
        }
        if (allow_sb && m.stats_.cycles >= m.sblock_.retryAt()) {
            // Flush the hot span first: an engaged block settles its
            // own cycles, so they must not sit between span_start and
            // the next settle().
            settle();
            if (m.sblock_.execute(end_at - m.stats_.cycles)) {
                // The block may have changed activity (CLRI/HALT
                // execute in-block) or left an external access at EX
                // — re-establish the regime before hot-stepping on.
                // Its cycles still ran under batch dispatch, so they
                // count as hot for the batch diagnostics.
                stats_.hotCycles += m.stats_.cycles - span_start;
                span_start = m.stats_.cycles;
                if (pipeHasColdInFlight(m.pipe_)) {
                    peel = BatchPeel::NonHot;
                    return m.stats_.cycles - start;
                }
                freeze();
                rebuild();
                continue;
            }
        }
        // The superblock retry memo bounds an inner span free of
        // per-cycle retry probes: when the memo is in the future the
        // next attempt lands exactly where scalar run() would make
        // it. A memo-free reject (ra in the past) re-attempts at the
        // span end instead of every cycle — engagement timing is not
        // architecturally visible (the block is bit-identical to
        // stepping), only the sb attempt diagnostics move, and the
        // span is guaranteed non-empty either way.
        Cycle inner_end = end_at;
        if (allow_sb) {
            Cycle ra = m.sblock_.retryAt();
            if (ra > m.stats_.cycles && ra < inner_end)
                inner_end = ra;
        }

      while (m.stats_.cycles < inner_end) {
        // One architectural cycle: Machine::step() with the dispatch
        // probe hoisted (event horizon), the tallies deferred to
        // settle(), readiness patched from the cache, and the stage
        // bodies mirrored inline (superblock.cc discipline: must
        // track machine.cc / stage_issue.cc / stage_execute.cc).
        // advancePipe(): the ring head moves back one slot; the slot
        // it lands on is the retiring WR, cleared to become new IF.
        const unsigned head = m.pipeHead_ == 0 ? depth - 1
                                               : m.pipeHead_ - 1;
        PipeSlot &wrs = m.pipe_[head];
        const bool retiring =
            wrs.valid && !wrs.squashed && (cand & (1u << wrs.stream));
        const StreamId rs = wrs.stream;
        // Defer the slot clear: issue overwrites every PipeSlot field,
        // so until then dropping the valid bit is enough for every
        // in-cycle pipe walk — including the re-gather below, which
        // must no longer see the retiring slot. The bubble and
        // illegal paths restore the full advancePipe() clear for
        // checkpoint-byte parity.
        wrs.valid = false;
        m.pipeHead_ = head; // live before any handler walks pipeAt()
        if (retiring) {
            // Retirement sheds the slot's dep masks. The common case
            // leaves the stream's pipe share empty: clear the cache
            // in place — and with no vector live an empty share means
            // ready outright (no interlock is possible, and an
            // illegal pc still issues: it is consumed by the trap).
            if (--flight_n[rs] == 0) {
                in_writes[rs] = 0;
                in_reads[rs] = 0;
                in_flight &= ~(1u << rs);
                if (!vec_watch)
                    ready |= 1u << rs;
                else
                    recompute(rs);
            } else {
                gatherStream(rs);
                recompute(rs);
            }
        }

        unsigned ei = head + ex_stage;
        if (ei >= depth)
            ei -= depth;
        PipeSlot &exs = m.pipe_[ei];
        if (exs.valid && !exs.squashed && !exs.executed) {
            exs.executed = true;
            extab[exs.uop](m.executeStage_, exs);
            if (m.stats_.redirects != redirects0) {
                redirects0 = m.stats_.redirects;
                if (cand & (1u << exs.stream)) {
                    // pc moved, younger same-stream slots squashed.
                    gatherStream(exs.stream);
                    recompute(exs.stream);
                }
            }
            if (etrace && !exs.squashed)
                etrace->record(m.stats_.cycles, exs.stream, exs.pc,
                               exs.inst);
        }

        if (std::uint64_t s2 =
                m.stats_.illegalInstructions + m.stats_.stackOverflows;
            s2 != sentinel) {
            sentinel = s2;
            vec_watch = true; // a trap raised: vectors can exist now
            ready = 0;
            for (unsigned bits = cand; bits != 0; bits &= bits - 1)
                gatherStream(
                    static_cast<StreamId>(std::countr_zero(bits)));
            for (unsigned bits = cand; bits != 0; bits &= bits - 1)
                ready |=
                    readyBit(static_cast<StreamId>(std::countr_zero(bits)));
        }

        bool cold_issued = false;
        StreamId s = m.sched_.pick(ready);
        if (s == kNoStream) {
            ++bub;
            m.pipe_[head] = PipeSlot{}; // bubble: full advancePipe clear
        } else {
            StreamCtx &c = m.streams_[s];
            if (vec_watch) {
                if (auto vec = m.intUnit_.pendingVector(s))
                    m.vectorStage_.takeVector(s, *vec);
            }
            // A vector entry just moved the pc past the cached entry;
            // otherwise the last readyBit() looked this pc up already.
            const PredecodedInst &pd =
                vec_watch ? m.pdec_.at(c.pc) : *pd_cache[s];
            if (!pd.legal) {
                ++m.stats_.illegalInstructions;
                m.raiseInternal(s, kIllegalInstBit);
                sentinel = m.stats_.illegalInstructions +
                           m.stats_.stackOverflows;
                vec_watch = true;
                m.pipe_[head] = PipeSlot{}; // no slot: full clear
            } else {
                PipeSlot &slot = m.pipe_[head]; // stage 0 = IF
                slot.valid = true;
                slot.squashed = false;
                slot.executed = false;
                slot.stream = s;
                slot.pc = c.pc;
                slot.inst = pd.inst;
                slot.readsMask = pd.readsMask;
                slot.writesMask = pd.writesMask;
                slot.uop = pd.uop;
                slot.tag = m.nextTag_;
                m.nextTag_ = m.nextTag_ == 'z'
                                 ? 'a'
                                 : static_cast<char>(m.nextTag_ + 1);
                cold_issued = !hotIssue(slot);
                // The new slot joins the stream's in-flight masks.
                if (flight_n[s]++ == 0) {
                    in_writes[s] = pd.writesMask;
                    in_reads[s] = pd.readsMask;
                } else {
                    in_writes[s] |= pd.writesMask;
                    in_reads[s] |= pd.readsMask;
                }
                in_flight |= 1u << s;
            }
            ++c.pc;
            recompute(s); // pc moved / new in-flight slot
        }
        ++m.stats_.cycles;

        if (cold_issued) {
            settle();
            peel = BatchPeel::NonHot;
            return m.stats_.cycles - start;
        }
      } // inner span (to the next superblock attempt or the chunk end)
    }

    settle();
    return m.stats_.cycles - start;
}

Cycle
MachineBatch::scalarSpan(Machine &m, Cycle budget, bool stop_when_idle,
                         Mode mode)
{
    if (mode == Mode::Run)
        return m.run(budget, stop_when_idle);
    for (Cycle i = 0; i < budget; ++i)
        m.step();
    return budget;
}

Cycle
MachineBatch::advanceLane(std::size_t i, Cycle slice, bool stop_when_idle,
                          Mode mode)
{
    Machine &m = *arena_.lane(i);
    Cycle done = 0;
    while (done < slice) {
        Cycle left = slice - done;
        if (mode == Mode::Run && stop_when_idle && m.idle()) {
            arena_.state(i) = LaneState::Done;
            break;
        }

        // Admission: reasons that hold for the whole slice go scalar
        // in one span; transient ones retry the hot lane after a
        // bounded scalar stretch.
        BatchPeel blocked = BatchPeel::NumReasons;
        if (!m.batchEnabled_ || !m.uopsEnabled_)
            blocked = BatchPeel::Disabled;
        else if (m.trace_ || m.observer_)
            blocked = BatchPeel::Observed;
        else if (m.cfg_.baselineHaltOnWait || m.haltedUntilBusDone_)
            blocked = BatchPeel::Baseline;
        if (blocked != BatchPeel::NumReasons) {
            ++stats_.peels[static_cast<unsigned>(blocked)];
            Cycle n = scalarSpan(m, left, stop_when_idle, mode);
            stats_.scalarCycles += n;
            done += n;
            if (n < left)
                arena_.state(i) = LaneState::Done; // idle break
            break;
        }
        if (pipeHasColdInFlight(m.pipe_)) {
            // An excluded op is on its way to EX: step it through on
            // the scalar path (at most one pipe depth), then retry.
            ++stats_.peels[static_cast<unsigned>(BatchPeel::NonHot)];
            Cycle span = std::min<Cycle>(left, m.cfg_.pipeDepth);
            Cycle n = scalarSpan(m, span, stop_when_idle, mode);
            stats_.scalarCycles += n;
            done += n;
            if (n < span) {
                arena_.state(i) = LaneState::Done;
                break;
            }
            continue;
        }

        BatchPeel peel = BatchPeel::Done;
        Cycle n = hotChunk(m, left, mode, peel);
        done += n;
        ++stats_.peels[static_cast<unsigned>(peel)];
        if (done >= slice)
            break;
        switch (peel) {
          case BatchPeel::Event: {
            // Cross the event cycle on the scalar path (dispatch
            // fires at the top of step()).
            Cycle w = scalarSpan(m, 1, stop_when_idle, mode);
            stats_.scalarCycles += w;
            done += w;
            if (w == 0)
                arena_.state(i) = LaneState::Done; // idle break
            break;
          }
          case BatchPeel::Stall: {
            // Nothing can issue until an event or forever: the scalar
            // path fast-forwards this span (or, in step mode, pays
            // the per-cycle walk exactly like a scalar step loop).
            Cycle w = scalarSpan(m, left - n, stop_when_idle, mode);
            stats_.scalarCycles += w;
            done += w;
            if (w < left - n)
                arena_.state(i) = LaneState::Done;
            break;
          }
          case BatchPeel::NonHot:
          default:
            break; // loop re-checks admission / runs the next chunk
        }
    }
    return done;
}

void
MachineBatch::dispatch(Cycle budget, bool stop_when_idle, Mode mode)
{
    ++stats_.dispatches;
    stats_.lanesRun += arena_.size();
    for (std::size_t i = 0; i < arena_.size(); ++i) {
        arena_.remaining(i) = budget;
        arena_.advanced(i) = 0;
        arena_.state(i) =
            budget > 0 ? LaneState::Hot : LaneState::Done;
    }

    bool live = arena_.size() > 0 && budget > 0;
    while (live) {
        live = false;
        for (std::size_t i = 0; i < arena_.size(); ++i) {
            if (arena_.state(i) == LaneState::Done)
                continue;
            Cycle slice = std::min(kSyncQuantum, arena_.remaining(i));
            Cycle n = advanceLane(i, slice, stop_when_idle, mode);
            arena_.remaining(i) -= n;
            arena_.advanced(i) += n;
            if (arena_.remaining(i) == 0)
                arena_.state(i) = LaneState::Done;
            if (arena_.state(i) != LaneState::Done)
                live = true;
        }
    }

    if (mode == Mode::Run) {
        // Machine::run() leaves every lazy clock exact at return;
        // lanes that finished inside a hot chunk still owe the sync.
        for (std::size_t i = 0; i < arena_.size(); ++i)
            arena_.lane(i)->timing_.syncAll();
    }
}

} // namespace disc
