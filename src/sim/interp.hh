/**
 * @file
 * A sequential architectural interpreter of the DISC1 ISA, used as a
 * golden model for differential testing of the pipelined machine.
 *
 * The interpreter executes one stream, one instruction at a time,
 * with no pipeline, no scheduler and no bus timing (external accesses
 * complete immediately through the same Bus decode). Architected
 * results — registers, flags, window position, internal memory —
 * must match the cycle-accurate Machine for any single-stream program
 * regardless of pipelining, which is exactly what the differential
 * property tests assert.
 *
 * Implementation note: the semantics here are written independently
 * of sim/machine.cc (no shared execution code beyond the decoder), so
 * a bug must be made twice to go unnoticed.
 */

#ifndef DISC_SIM_INTERP_HH
#define DISC_SIM_INTERP_HH

#include <array>
#include <cstdint>

#include "arch/bus.hh"
#include "arch/interrupts.hh"
#include "arch/memory.hh"
#include "arch/stack_window.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/predecode.hh"
#include "isa/program.hh"

namespace disc
{

struct InterpOps;

/** Single-stream golden-model interpreter. */
class Interp
{
  public:
    Interp();

    /**
     * Golden model for one particular stream of a multi-stream
     * program: the window lives over [stack_base, stack_base +
     * stack_words) and SWI recognises @p self as "this stream" (so a
     * self-signalling stream still posts to its own IR). Everything
     * else is the usual sequential model.
     */
    Interp(Addr stack_base, Addr stack_words, StreamId self);

    /** Load a program (code + data preloads) and reset. */
    void load(const Program &prog);

    /** Reset architectural state, set the PC. */
    void reset(PAddr entry = 0);

    /** Map a device for external accesses (zero-latency semantics). */
    void attachDevice(Addr base, Addr size, Device *device);

    /**
     * Execute one instruction.
     * @return false when the stream halted (HALT executed) or an
     *         unrecoverable condition occurred.
     */
    bool step();

    /**
     * Run until HALT or @p max_instructions executed.
     * @return instructions executed.
     */
    std::uint64_t run(std::uint64_t max_instructions);

    /** True after HALT. */
    bool halted() const { return halted_; }

    /** Architected register read (same numbering as the machine). */
    Word readReg(unsigned r) const;

    /** Architected register write. */
    void writeReg(unsigned r, Word value);

    /** Current PC. */
    PAddr pc() const { return pc_; }

    /** Set the PC. */
    void setPc(PAddr pc) { pc_ = pc; }

    /** Internal memory. */
    InternalMemory &internalMemory() { return imem_; }
    const InternalMemory &internalMemory() const { return imem_; }

    /** Stack window. */
    const StackWindow &window() const { return window_; }

    /** Count of stack-window bound violations seen. */
    std::uint64_t overflowEvents() const { return overflows_; }

    /** Count of illegal instructions seen (skipped as NOPs). */
    std::uint64_t illegalEvents() const { return illegal_; }

    /** True when step() uses the micro-op table (config + env). */
    bool uopDispatchEnabled() const { return useUops_; }

    /** Override the micro-op dispatch setting (tests, tools). */
    void setUopDispatch(bool on) { useUops_ = on; }

  private:
    friend struct InterpOps; ///< micro-op handlers (interp.cc)
    InternalMemory imem_;
    ProgramMemory pmem_;
    PredecodeTable pdec_; ///< shared predecode path with the Machine
    Bus bus_;
    StackWindow window_;
    std::array<Word, kNumGlobalRegs> globals_{};
    PAddr pc_ = 0;
    bool z_ = false, n_ = false, c_ = false, v_ = false;
    Word mulHigh_ = 0;
    Word ir_ = 0;
    Word mr_ = 0xff;
    StreamId self_ = 0;
    bool halted_ = false;
    bool useUops_ = true;
    std::uint64_t overflows_ = 0;
    std::uint64_t illegal_ = 0;

    void setFlags(Word result, bool carry, bool overflow);
    void noteWindow(bool violated);
    void applyWctl(WCtl w);
    void stepLegacy(const Instruction &inst, PAddr this_pc, PAddr &next);
    Word aluResult(const Instruction &inst, bool &wrote, PAddr &next);
};

} // namespace disc

#endif // DISC_SIM_INTERP_HH
