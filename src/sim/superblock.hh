/**
 * @file
 * Superblock execution tier: per-stream threaded code above the
 * micro-op tables.
 *
 * The per-cycle loop pays a fixed overhead per issued word — the
 * engaged() scan, the event-queue probe, readyMask() over all four
 * streams, the schedule pick and the per-stream tally loop — even
 * when one stream owns the machine and nothing external can happen.
 * This tier translates straight-line runs of predecoded words into
 * *superblocks* (flat arrays of prebuilt pipe slots) and executes
 * whole blocks against the live pipeline with none of that per-cycle
 * bookkeeping, the same shape as QEMU's TCG translation cache driven
 * by an icount budget.
 *
 * Cycle accounting stays exact: the engine only engages when the
 * machine is provably in the single-active-stream regime (all streams
 * ABI-ready, no vector pending, the scheduler guaranteed to pick the
 * runner on every slot, no queued event inside the budget), simulates
 * each architectural cycle — advance, EX handler, interlock, issue —
 * against the real pipe_ array via a rotating head cursor, and bails
 * back to the interpreter the moment anything outside the regime
 * shows up: an external access at EX, a pending vector, a stream
 * deactivation, a cross-stream op, or the icount/event budget
 * expiring. Settling is a fastForward()-style batch update of the
 * cycle tallies, so every MachineStats counter, trace line,
 * checkpoint and digest is bit-identical to the per-cycle path.
 *
 * Translation is keyed by fetch PC alone. The scheduler-visible mode
 * bits (slot table, dynamic-vs-static policy) do not key the cache
 * because the engagement gate already pins them: blocks only run
 * while the scheduler provably awards every pick to the single
 * runner, and any SCHED instruction ends the block at EX before it
 * can change the table. Block contents are a pure function of the
 * program image, so the cache is dropped on program load, reset and
 * checkpoint restore.
 *
 * The interpreter/uop path remains the oracle: MachineConfig::
 * superblockExec=false or DISC_NO_SUPERBLOCK=1 disables the tier
 * (same discipline as DISC_NO_UOP), and the equivalence suite holds
 * the two bit-identical.
 */

#ifndef DISC_SIM_SUPERBLOCK_HH
#define DISC_SIM_SUPERBLOCK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "isa/uops.hh"
#include "sim/pipeline_state.hh"

namespace disc
{

class Machine;
class ExecuteStage;

/** EX handler signature, shared with the micro-op dispatch table. */
using ExecFn = void (*)(ExecuteStage &, PipeSlot &);

/** Resolve a micro-op to its EX handler (sim/stage_execute.cc). */
ExecFn execHandler(Uop u);

/**
 * The whole EX handler table, indexed by Uop. Hot loops fetch it once
 * per span so the per-cycle dispatch is a single indexed indirect
 * call.
 */
const UopTable<ExecFn> &execTable();

/** Why a superblock run handed control back to the interpreter. */
enum class SbBail : std::uint8_t
{
    Branch,    ///< fetch ran into an untranslatable (illegal) word
    Abi,       ///< an external LD/ST reached the EX stage
    Interrupt, ///< vector became pending or the stream deactivated
    Budget,    ///< icount budget expired (run limit or event deadline)
    Stream,    ///< cross-stream op (SWI/FORK/SCHED) reached EX
    NumReasons,
};

/** Number of distinct bail reasons. */
constexpr unsigned kNumSbBails = static_cast<unsigned>(SbBail::NumReasons);

/**
 * Deepest pipeline the block executor engages for (bound for its
 * stack-allocated in-flight rings). Deeper configurations simply stay
 * on the per-cycle path.
 */
constexpr unsigned kSbMaxDepth = 16;

/** Printable bail-reason name ("branch", "abi", ...). */
const char *sbBailName(SbBail b);

/**
 * True when @p u may *execute* inside a superblock. External accesses
 * are excluded (they engage the ABI and wait states), as are the ops
 * with cross-stream or scheduler effects the single-runner engagement
 * gate cannot see coming (SWI, FORK, FORKR, SCHED). Excluded ops
 * still *issue* from a block — they end it when they reach EX.
 */
constexpr bool
superblockExecutable(Uop u)
{
    switch (u) {
      case Uop::LD:
      case Uop::ST:
      case Uop::SWI:
      case Uop::FORK:
      case Uop::FORKR:
      case Uop::SCHED:
        return false;
      default:
        return static_cast<unsigned>(u) < kNumUops;
    }
}

/**
 * In-block classification of a word, precomputed at translation so
 * the cycle loop tests one byte instead of re-deriving properties
 * from the micro-op. Plain words (class 0) can neither redirect nor
 * raise nor leave the tier, which is what licenses the batched stall
 * fast path.
 */
enum : std::uint8_t
{
    kSbClsPlain = 0,   ///< pure register/memory/flag effect
    kSbClsControl = 1, ///< may redirect/park/squash at EX
    kSbClsRaise = 2,   ///< may raise (window op or wctl overflow)
    kSbClsNonExec = 4, ///< never executes in-block (LD/ST/SWI/...)
};

/**
 * True when @p u may redirect, park or squash at EX — the handlers
 * that walk pipe_[] and rewrite the stream PC. The block executor
 * realigns its rotating ring to the canonical stage order before
 * running one of these, then re-chains translation at the (possibly
 * new) fetch PC.
 */
constexpr bool
superblockControl(Uop u)
{
    switch (u) {
      case Uop::JMP:
      case Uop::JR:
      case Uop::CALL:
      case Uop::CALLR:
      case Uop::RET:
      case Uop::RETI:
      case Uop::BR_EQ:
      case Uop::BR_NE:
      case Uop::BR_LT:
      case Uop::BR_GE:
      case Uop::BR_ULT:
      case Uop::BR_UGE:
      case Uop::BR_MI:
      case Uop::BR_PL:
      case Uop::CLRI:
      case Uop::HALT:
        return true;
      default:
        return false;
    }
}

/** The kSbCls* classification of @p u. */
constexpr std::uint8_t
superblockClass(Uop u)
{
    if (!superblockExecutable(u))
        return kSbClsNonExec;
    if (superblockControl(u))
        return kSbClsControl;
    if (u == Uop::WINC || u == Uop::WDEC)
        return kSbClsRaise;
    return kSbClsPlain;
}

/**
 * The superblock translation cache and block executor for one
 * Machine. Owned by the Machine; engaged from run() between the
 * fast-forward check and step().
 */
class SuperblockEngine
{
  public:
    explicit SuperblockEngine(Machine &m) : m_(m) {}

    /**
     * Try to run superblocks for up to @p budget cycles. Returns the
     * number of architectural cycles simulated (0 when the engagement
     * gate refuses or a bail fires before the first cycle); the
     * caller falls through to step() on 0, which guarantees progress.
     */
    Cycle execute(Cycle budget);

    /**
     * Drop every translated block. Fired on program load, reset and
     * checkpoint restore; also clears the engagement-retry memo.
     */
    void invalidate();

    /**
     * No engagement attempt pays off before this cycle (retry memo
     * from a recent reject). run() compares this inline before even
     * calling execute().
     */
    Cycle retryAt() const { return retryAt_; }

    /** Number of PCs with a translated block (tests, diagnostics). */
    std::size_t cachedBlocks() const;

    /** True when a block is cached at @p pc (tests). */
    bool cached(PAddr pc) const;

  private:
    /**
     * One translated superblock: prebuilt pipe slots for a
     * straight-line run of legal words starting at one fetch PC
     * (empty when that word is illegal — issue consumes it as a
     * trap), plus the parallel kSbCls* byte per word. Slot stream/tag
     * are stamped at issue time.
     */
    struct Block
    {
        std::vector<PipeSlot> protos;
        std::vector<std::uint8_t> cls;
    };

    /**
     * The in-block cycle loop: runs blocks for the engaged stream
     * @p s until a bail or the budget expires. @tparam D is the pipe
     * depth as a compile-time constant (0 = read from the config), so
     * the common DISC1 depth folds its ring arithmetic to masks.
     */
    template <unsigned D>
    Cycle blockLoop(StreamId s, Cycle budget, SbBail &reason,
                    std::uint64_t &issued, bool &trap_issued);

    /** Block starting at @p pc, translating on first use. */
    const Block *lookup(PAddr pc);

    std::unique_ptr<Block> translate(PAddr pc) const;

    bool alwaysPicks(StreamId s) const;

    Machine &m_;
    /// Translation cache over the full 16-bit program space, sized
    /// lazily on first engagement so disabled/never-engaged machines
    /// pay nothing.
    std::vector<std::unique_ptr<Block>> cache_;
    /// Engagement-retry memo: no attempt before this cycle. Purely a
    /// performance hint (attempts have no architectural effect);
    /// cleared by invalidate().
    Cycle retryAt_ = 0;
};

} // namespace disc

#endif // DISC_SIM_SUPERBLOCK_HH
