/**
 * @file
 * Stage modules and the timing kernel that together form the
 * event-scheduled simulator core.
 *
 * The former monolithic Machine::step() is decomposed into four
 * cooperating stage objects — issue (fetch/schedule), execute,
 * ABI/writeback, interrupt-vector — plus a TimingKernel that owns the
 * event queue and keeps lazily-synchronized device time. Each stage
 * holds a back-reference to the Machine, whose architectural state
 * remains the single source of truth; the split is about giving each
 * pipeline concern its own reviewable module, not about duplicating
 * state.
 *
 * Layering (see DESIGN.md):
 *
 *   event kernel (EventQueue + TimingKernel)
 *        ^ schedules completions/expiries
 *   devices / ABI bus
 *        ^ accessed at EX / completion
 *   pipeline stages (issue -> execute -> ABI/writeback, vector unit)
 *        ^ hook points
 *   observer / traces / stats
 */

#ifndef DISC_SIM_STAGES_HH
#define DISC_SIM_STAGES_HH

#include <vector>

#include "arch/bus.hh"
#include "common/event_queue.hh"
#include "common/types.hh"
#include "sim/pipeline_state.hh"

namespace disc
{

class Machine;
struct ExecOps;

/** Interrupt-vector stage: serialized vector entry at issue time. */
class VectorStage
{
  public:
    explicit VectorStage(Machine &m) : m_(m) {}

    /** Push the return PC and redirect @p s into its vector handler. */
    void takeVector(StreamId s, unsigned level);

  private:
    Machine &m_;
};

/** Fetch/issue stage: readiness, interlocks and the schedule pick. */
class IssueStage
{
  public:
    explicit IssueStage(Machine &m) : m_(m) {}

    /** Streams that could issue this cycle (bit per stream). */
    unsigned readyMask() const;

    /** Issue one instruction from the scheduled stream (or bubble). */
    void tick();

  private:
    bool interlocked(StreamId s, std::uint32_t reads,
                     std::uint32_t writes) const;
    bool hasInFlight(StreamId s) const;

    Machine &m_;
};

/** Execute stage: instruction semantics at EX, redirects, traps. */
class ExecuteStage
{
  public:
    explicit ExecuteStage(Machine &m) : m_(m) {}

    /** Execute the instruction sitting at the EX stage, if any. */
    void tick();

    /** Apply a post-execute window move (shared with the ABI stage). */
    void applyWctl(PipeSlot &slot);

  private:
    void execute(PipeSlot &slot);
    Word aluOp(PipeSlot &slot, bool &is_redirect, PAddr &target);
    void redirect(StreamId s, PAddr target, unsigned ex_stage);
    void setAluFlags(StreamId s, Word result, bool carry, bool overflow);

    Machine &m_;

    friend class AbiStage;  // external accesses start from execute()
    friend struct ExecOps;  // micro-op handlers (stage_execute.cc)
};

/** ABI/writeback stage: external accesses, waits and completions. */
class AbiStage
{
  public:
    explicit AbiStage(Machine &m) : m_(m) {}

    /** Hand a LD/ST at EX to the ABI; park or squash as needed. */
    void externalAccess(PipeSlot &slot, unsigned stage);

    /** Land a completed access: writeback, wctl, wake waiters. */
    void completeAccess(const AsyncBusInterface::Completion &c);

  private:
    void wakeWaiters();

    Machine &m_;
};

/**
 * The timing kernel: owns the event queue, tracks how far each
 * device's local clock has been advanced (lazy synchronization), and
 * dispatches due events at the top of every machine cycle.
 *
 * Source ids are the device attach index; the ABI completion uses the
 * reserved kAbiSource. Events due on the same cycle dispatch in
 * (device attach order, then ABI) order — exactly the legacy
 * phase-1-devices / phase-2-ABI sequence of the per-cycle loop.
 */
class TimingKernel : public DeviceScheduleListener
{
  public:
    static constexpr std::uint32_t kAbiSource = 0xffffffffu;

    explicit TimingKernel(Machine &m) : m_(m) {}

    /** Register a newly attached device and schedule its first event. */
    void addDevice(Device *dev);

    /** Fire every event due at the current cycle (start of step()). */
    void dispatch();

    /** Cycle of the earliest queued event (kNoEvent when none). */
    Cycle nextEventTime() const { return queue_.nextTime(); }

    /** Schedule the ABI completion for the just-started access. */
    void scheduleAbiCompletion();

    /**
     * Bring the device mapped at @p addr exactly up to date before a
     * bus access touches it (device-local clocks are lazy).
     */
    void syncDeviceForAccess(Addr addr);

    /** Re-derive the event for the device at @p addr after an access. */
    void rescheduleDeviceAt(Addr addr);

    /**
     * Advance every lazy clock (devices and ABI) to the current cycle
     * boundary. Called before checkpointing and when run() returns so
     * externally visible countdowns/counters are exact.
     */
    void syncAll();

    /** Rebuild schedule state after restoreState()/reset(). */
    void rebuild();

    /** DeviceScheduleListener: device woke up out-of-band. */
    void deviceScheduleChanged(Device &dev) override;

  private:
    void syncDevice(std::size_t i, Cycle to);
    void rescheduleDevice(std::size_t i);

    Machine &m_;
    EventQueue queue_;
    std::vector<Device *> devices_;    ///< attach order = source id
    std::vector<Cycle> devSynced_;     ///< legacy ticks applied so far
    Cycle abiSynced_ = 0;
    std::vector<EventQueue::Event> dueScratch_;
};

} // namespace disc

#endif // DISC_SIM_STAGES_HH
