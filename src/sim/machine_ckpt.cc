/**
 * @file
 * Checkpointing: full-fidelity save/restore of the machine state.
 *
 * Version 2 extends the version-1 layout with the per-stream
 * wait-state tallies. Version 3 embeds the canonical board spec in
 * the header so park/restore and cross-shard migration can verify the
 * receiving machine composed the same device graph; version-2
 * checkpoints (no spec) still restore into boardless machines. The
 * fast-forward counters are deliberately NOT serialized: they are
 * diagnostics of how a run was stepped, not machine state, and
 * keeping them out makes checkpoints taken in event-skip and
 * per-cycle modes byte-identical.
 */

#include "sim/machine.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace disc
{

namespace
{

constexpr std::uint32_t kCheckpointMagic = 0x44495343; // "DISC"
constexpr std::uint16_t kCheckpointVersion = 3;

} // namespace

std::vector<std::uint8_t>
Machine::saveState() const
{
    // Device countdowns and ABI busy counters are lazy; make them
    // exact before they are serialized. Side-effect-free at a cycle
    // boundary, hence callable from const.
    timing_.syncAll();

    Serializer out;
    out.put(kCheckpointMagic);
    out.put(kCheckpointVersion);
    out.put<std::uint16_t>(static_cast<std::uint16_t>(cfg_.pipeDepth));
    out.putString(boardSpec_);

    imem_.save(out);
    for (Word g : globals_)
        out.put(g);
    for (const StreamCtx &c : streams_) {
        out.put(c.pc);
        out.putBool(c.z);
        out.putBool(c.n);
        out.putBool(c.c);
        out.putBool(c.v);
        out.put(c.mulHigh);
        out.put<std::uint8_t>(static_cast<std::uint8_t>(c.wait));
        out.put<std::uint8_t>(static_cast<std::uint8_t>(c.pendingWctl));
        for (unsigned b = 0; b < kNumIntLevels; ++b) {
            out.put<Cycle>(c.lastRaise[b]);
            out.putBool(c.latencyArmed[b]);
        }
    }
    for (const auto &w : windows_)
        w->save(out);
    intUnit_.save(out);
    sched_.save(out);
    abi_.save(out);

    // Stage order (IF..WR), not ring memory order, so the byte format
    // is independent of where the head happens to sit.
    for (unsigned i = 0; i < cfg_.pipeDepth; ++i) {
        const PipeSlot &slot = pipeAt(i);
        out.putBool(slot.valid);
        out.putBool(slot.squashed);
        out.putBool(slot.executed);
        out.put(slot.stream);
        out.put(slot.pc);
        out.put<std::uint32_t>(encode(slot.inst));
        out.put<std::uint8_t>(static_cast<std::uint8_t>(slot.tag));
    }

    out.put<Cycle>(stats_.cycles);
    out.put<Cycle>(stats_.busyCycles);
    for (std::uint64_t r : stats_.retired)
        out.put(r);
    out.put(stats_.totalRetired);
    out.put(stats_.squashedJump);
    out.put(stats_.squashedWait);
    out.put(stats_.squashedDeact);
    out.put(stats_.bubbles);
    out.put(stats_.redirects);
    out.put(stats_.jumpTypeRetired);
    out.put(stats_.externalReads);
    out.put(stats_.externalWrites);
    out.put(stats_.busBusyRejections);
    out.put(stats_.vectorsTaken);
    out.put(stats_.stackOverflows);
    out.put(stats_.illegalInstructions);
    out.put(stats_.busFaults);
    for (std::uint64_t r : stats_.readyCycles)
        out.put(r);
    for (std::uint64_t w : stats_.waitAbiCycles)
        out.put(w);
    for (std::uint64_t i : stats_.inactiveCycles)
        out.put(i);

    out.put<std::uint8_t>(static_cast<std::uint8_t>(nextTag_));
    out.put<Cycle>(haltedUntilBusDone_);

    bus_.saveDevices(out);
    return out.take();
}

void
Machine::restoreState(const std::vector<std::uint8_t> &bytes)
{
    Deserializer in(bytes);
    if (in.get<std::uint32_t>() != kCheckpointMagic)
        fatal("not a DISC checkpoint");
    std::uint16_t version = in.get<std::uint16_t>();
    if (version != 2 && version != kCheckpointVersion)
        fatal("checkpoint version mismatch");
    if (in.get<std::uint16_t>() != cfg_.pipeDepth)
        fatal("checkpoint pipe depth mismatch");
    if (version >= 3) {
        // A v2 checkpoint carries no spec; the caller vouches for the
        // device graph, exactly as every pre-board checkpoint did.
        std::string spec = in.getString();
        if (spec != boardSpec_)
            fatal("checkpoint board spec mismatch: checkpoint has %zu "
                  "spec bytes, machine has %zu",
                  spec.size(), boardSpec_.size());
    }

    imem_.restore(in);
    for (Word &g : globals_)
        g = in.get<Word>();
    for (StreamCtx &c : streams_) {
        c.pc = in.get<PAddr>();
        c.z = in.getBool();
        c.n = in.getBool();
        c.c = in.getBool();
        c.v = in.getBool();
        c.mulHigh = in.get<Word>();
        c.wait = static_cast<WaitState>(in.get<std::uint8_t>());
        c.pendingWctl = static_cast<WCtl>(in.get<std::uint8_t>());
        for (unsigned b = 0; b < kNumIntLevels; ++b) {
            c.lastRaise[b] = in.get<Cycle>();
            c.latencyArmed[b] = in.getBool();
        }
    }
    for (auto &w : windows_)
        w->restore(in);
    intUnit_.restore(in);
    sched_.restore(in);
    abi_.restore(in);

    pipeHead_ = 0; // slots arrive in stage order; restore canonical
    for (PipeSlot &slot : pipe_) {
        slot.valid = in.getBool();
        slot.squashed = in.getBool();
        slot.executed = in.getBool();
        slot.stream = in.get<StreamId>();
        slot.pc = in.get<PAddr>();
        slot.inst = decode(in.get<std::uint32_t>());
        depMasks(slot.inst, slot.readsMask, slot.writesMask);
        slot.uop = uopFor(slot.inst.op, slot.inst.cond);
        slot.tag = static_cast<char>(in.get<std::uint8_t>());
    }

    stats_.cycles = in.get<Cycle>();
    stats_.busyCycles = in.get<Cycle>();
    for (std::uint64_t &r : stats_.retired)
        r = in.get<std::uint64_t>();
    stats_.totalRetired = in.get<std::uint64_t>();
    stats_.squashedJump = in.get<std::uint64_t>();
    stats_.squashedWait = in.get<std::uint64_t>();
    stats_.squashedDeact = in.get<std::uint64_t>();
    stats_.bubbles = in.get<std::uint64_t>();
    stats_.redirects = in.get<std::uint64_t>();
    stats_.jumpTypeRetired = in.get<std::uint64_t>();
    stats_.externalReads = in.get<std::uint64_t>();
    stats_.externalWrites = in.get<std::uint64_t>();
    stats_.busBusyRejections = in.get<std::uint64_t>();
    stats_.vectorsTaken = in.get<std::uint64_t>();
    stats_.stackOverflows = in.get<std::uint64_t>();
    stats_.illegalInstructions = in.get<std::uint64_t>();
    stats_.busFaults = in.get<std::uint64_t>();
    for (std::uint64_t &r : stats_.readyCycles)
        r = in.get<std::uint64_t>();
    for (std::uint64_t &w : stats_.waitAbiCycles)
        w = in.get<std::uint64_t>();
    for (std::uint64_t &i : stats_.inactiveCycles)
        i = in.get<std::uint64_t>();
    stats_.fastForwardedCycles = 0;
    stats_.fastForwards = 0;
    stats_.superblockCycles = 0;
    stats_.superblockEnters = 0;
    stats_.superblockBails.fill(0);

    nextTag_ = static_cast<char>(in.get<std::uint8_t>());
    haltedUntilBusDone_ = in.get<Cycle>();

    bus_.restoreDevices(in);
    if (!in.exhausted())
        fatal("checkpoint has %zu trailing bytes",
              bytes.size() - in.position());

    // The restored machine may be running a different program image
    // than the one the blocks were translated from; drop them all.
    sblock_.invalidate();
    // Device countdowns and the ABI remainder are exact again; rebuild
    // the event schedule from them.
    timing_.rebuild();
}

} // namespace disc
