#include "sim/machine.hh"

#include "common/logging.hh"
#include "sim/trace.hh"

namespace disc
{

const char *
pipeEventName(PipeEvent ev)
{
    switch (ev) {
      case PipeEvent::Issue: return "issue";
      case PipeEvent::Retire: return "retire";
      case PipeEvent::SquashJump: return "squash-jump";
      case PipeEvent::SquashWait: return "squash-wait";
      case PipeEvent::SquashDeact: return "squash-deact";
      case PipeEvent::BusBusy: return "bus-busy";
      case PipeEvent::WaitStart: return "wait-start";
      case PipeEvent::Wake: return "wake";
      case PipeEvent::Vector: return "vector";
      case PipeEvent::TrapOverflow: return "trap-overflow";
      case PipeEvent::TrapIllegal: return "trap-illegal";
      case PipeEvent::TrapBusFault: return "trap-bus-fault";
      case PipeEvent::NumEvents: break;
    }
    return "?";
}

double
MachineStats::utilization() const
{
    if (busyCycles == 0)
        return 0.0;
    return static_cast<double>(totalRetired) /
           static_cast<double>(busyCycles);
}

double
MachineStats::standardPs(Cycle bus_busy_cycles, unsigned pipe_depth) const
{
    double e = static_cast<double>(totalRetired);
    if (e == 0.0)
        return 0.0;
    double denom = e + static_cast<double>(bus_busy_cycles) +
                   static_cast<double>(jumpTypeRetired) *
                       static_cast<double>(pipe_depth - 1);
    return e / denom;
}

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg), abi_(bus_), latency_(128)
{
    if (cfg_.pipeDepth < 3)
        fatal("pipe depth %u is below the minimum of 3", cfg_.pipeDepth);
    sched_.setMode(cfg_.schedMode);
    for (StreamId s = 0; s < kNumStreams; ++s) {
        windows_.push_back(std::make_unique<StackWindow>(
            imem_, static_cast<Addr>(cfg_.stackBase + s * cfg_.stackWords),
            cfg_.stackWords));
    }
    pipe_.resize(cfg_.pipeDepth);
}

void
Machine::load(const Program &prog)
{
    pmem_.load(prog);
    pdec_.load(prog);
    reset();
    imem_.load(prog);
}

void
Machine::reset()
{
    imem_.reset();
    abi_.reset();
    intUnit_.reset();
    sched_.reset();
    sched_.setMode(cfg_.schedMode);
    for (auto &w : windows_)
        w->reset();
    for (auto &c : streams_)
        c = StreamCtx{};
    globals_.fill(0);
    std::fill(pipe_.begin(), pipe_.end(), Slot{});
    stats_ = MachineStats{};
    latency_ = Histogram(128);
    nextTag_ = 'a';
    haltedUntilBusDone_ = 0;
}

void
Machine::attachDevice(Addr base, Addr size, Device *device)
{
    bus_.attach(base, size, device);
}

Machine::StreamCtx &
Machine::ctx(StreamId s)
{
    if (s >= kNumStreams)
        panic("bad stream id %u", s);
    return streams_[s];
}

const Machine::StreamCtx &
Machine::ctx(StreamId s) const
{
    if (s >= kNumStreams)
        panic("bad stream id %u", s);
    return streams_[s];
}

StackWindow &
Machine::win(StreamId s)
{
    if (s >= kNumStreams)
        panic("bad stream id %u", s);
    return *windows_[s];
}

const StackWindow &
Machine::win(StreamId s) const
{
    if (s >= kNumStreams)
        panic("bad stream id %u", s);
    return *windows_[s];
}

const StackWindow &
Machine::window(StreamId s) const
{
    return win(s);
}

bool
Machine::isWaiting(StreamId s) const
{
    return ctx(s).wait != WaitState::Ready;
}

void
Machine::startStream(StreamId s, PAddr entry)
{
    ctx(s).pc = entry;
    intUnit_.raise(s, 0);
}

void
Machine::raiseExternal(StreamId s, unsigned bit)
{
    raiseInternal(s, bit);
}

void
Machine::raiseInternal(StreamId s, unsigned bit)
{
    StreamCtx &c = ctx(s);
    bool was_pending = (intUnit_.ir(s) >> bit) & 1;
    intUnit_.raise(s, bit);
    if (bit >= 1 && !was_pending) {
        c.lastRaise[bit] = stats_.cycles;
        c.latencyArmed[bit] = true;
    }
    if (observer_) {
        if (bit == kStackOverflowBit)
            observer_->onEvent(s, Opcode::NOP, PipeEvent::TrapOverflow);
        else if (bit == kIllegalInstBit)
            observer_->onEvent(s, Opcode::NOP, PipeEvent::TrapIllegal);
        else if (bit == kBusFaultBit)
            observer_->onEvent(s, Opcode::NOP, PipeEvent::TrapBusFault);
    }
}

PAddr
Machine::pc(StreamId s) const
{
    return ctx(s).pc;
}

Word
Machine::readReg(StreamId s, unsigned r) const
{
    if (reg::isWindow(r))
        return win(s).read(r);
    if (reg::isGlobal(r))
        return globals_[r - reg::G0];
    const StreamCtx &c = ctx(s);
    switch (r) {
      case reg::SR:
        return static_cast<Word>(
            (c.z ? 1 : 0) | (c.n ? 2 : 0) | (c.c ? 4 : 0) |
            (c.v ? 8 : 0) | (static_cast<unsigned>(s) << 4) |
            (intUnit_.runningLevel(s) << 6));
      case reg::IRR:
        return intUnit_.ir(s);
      case reg::IMR:
        return intUnit_.mr(s);
      case reg::AWP:
        return win(s).awp();
      default:
        panic("bad register %u", r);
    }
}

void
Machine::writeReg(StreamId s, unsigned r, Word value)
{
    if (reg::isWindow(r)) {
        win(s).write(r, value);
        return;
    }
    if (reg::isGlobal(r)) {
        globals_[r - reg::G0] = value;
        return;
    }
    StreamCtx &c = ctx(s);
    switch (r) {
      case reg::SR:
        c.z = value & 1;
        c.n = value & 2;
        c.c = value & 4;
        c.v = value & 8;
        return;
      case reg::IRR:
        // A stream may post requests to its own IR; bits clear only
        // via CLRI.
        for (unsigned bit = 0; bit < kNumIntLevels; ++bit) {
            if (value & (1u << bit))
                raiseInternal(s, bit);
        }
        return;
      case reg::IMR:
        intUnit_.setMr(s, value);
        return;
      case reg::AWP:
        if (win(s).setAwp(value)) {
            ++stats_.stackOverflows;
            raiseInternal(s, kStackOverflowBit);
        }
        return;
      default:
        panic("bad register %u", r);
    }
}

bool
Machine::interlocked(StreamId s, std::uint32_t reads,
                     std::uint32_t writes) const
{
    for (const Slot &slot : pipe_) {
        if (!slot.valid || slot.squashed || slot.stream != s)
            continue;
        if (reads & slot.writesMask)
            return true;
        // Window moves must also wait for in-flight window users.
        if ((writes & kDepAwp) && (slot.readsMask & kDepAwp))
            return true;
    }
    return false;
}

bool
Machine::hasInFlight(StreamId s) const
{
    for (const Slot &slot : pipe_) {
        if (slot.valid && !slot.squashed && slot.stream == s)
            return true;
    }
    return false;
}

unsigned
Machine::readyMask()
{
    unsigned ready = 0;
    for (StreamId s = 0; s < kNumStreams; ++s) {
        const StreamCtx &c = streams_[s];
        if (c.wait != WaitState::Ready)
            continue;
        if (!intUnit_.isActive(s))
            continue;
        auto vec = intUnit_.pendingVector(s);
        if (vec && hasInFlight(s))
            continue; // vector entry serialises against the pipe
        PAddr fetch_pc = vec ? vectorAddress(s, *vec) : c.pc;
        const PredecodedInst &pd = pdec_.at(fetch_pc);
        if (!pd.legal) {
            ready |= 1u << s; // issue consumes it and raises the trap
            continue;
        }
        if (!vec && interlocked(s, pd.readsMask, pd.writesMask))
            continue;
        ready |= 1u << s;
    }
    return ready;
}

void
Machine::takeVector(StreamId s, unsigned level)
{
    StreamCtx &c = ctx(s);
    if (observer_) {
        // Before enterService so the observer can audit the pre-entry
        // pending/mask/running-level state against the chosen level.
        observer_->onVector(s, level);
        observer_->onEvent(s, Opcode::NOP, PipeEvent::Vector);
    }
    if (win(s).inc()) {
        ++stats_.stackOverflows;
        raiseInternal(s, kStackOverflowBit);
    }
    win(s).write(0, c.pc);
    intUnit_.enterService(s, level);
    c.pc = vectorAddress(s, level);
    ++stats_.vectorsTaken;
    if (c.latencyArmed[level]) {
        latency_.add(stats_.cycles - c.lastRaise[level]);
        c.latencyArmed[level] = false;
    }
}

void
Machine::issue()
{
    unsigned ready = readyMask();
    StreamId slot_owner = observer_ ? sched_.nextOwner() : kNoStream;
    StreamId s = sched_.pick(ready);
    if (s == kNoStream) {
        ++stats_.bubbles;
        return;
    }

    StreamCtx &c = ctx(s);
    if (auto vec = intUnit_.pendingVector(s))
        takeVector(s, *vec);

    const PredecodedInst &pd = pdec_.at(c.pc);
    if (observer_) {
        observer_->onIssue(s, slot_owner, ready, c.pc, pd.inst);
        if (pd.legal)
            observer_->onEvent(s, pd.inst.op, PipeEvent::Issue);
    }
    if (!pd.legal) {
        ++stats_.illegalInstructions;
        raiseInternal(s, kIllegalInstBit);
        ++c.pc;
        return;
    }

    Slot &slot = pipe_[0];
    slot.valid = true;
    slot.squashed = false;
    slot.executed = false;
    slot.stream = s;
    slot.pc = c.pc;
    slot.inst = pd.inst;
    slot.readsMask = pd.readsMask;
    slot.writesMask = pd.writesMask;
    slot.tag = nextTag_;
    nextTag_ = nextTag_ == 'z' ? 'a' : static_cast<char>(nextTag_ + 1);
    ++c.pc;
}

void
Machine::squashYounger(StreamId s, unsigned ex_stage,
                       std::uint64_t *counter, PipeEvent ev)
{
    for (unsigned i = 0; i < ex_stage; ++i) {
        Slot &slot = pipe_[i];
        if (slot.valid && !slot.squashed && slot.stream == s) {
            slot.squashed = true;
            if (counter)
                ++(*counter);
            if (observer_)
                observer_->onEvent(s, slot.inst.op, ev);
        }
    }
}

void
Machine::redirect(StreamId s, PAddr target, unsigned ex_stage)
{
    ctx(s).pc = target;
    ++stats_.redirects;
    if (cfg_.branchDelaySlots == 0) {
        squashYounger(s, ex_stage, &stats_.squashedJump,
                      PipeEvent::SquashJump);
        return;
    }
    // Delayed branching: spare the first N younger same-stream
    // instructions in program order (they sit at the highest stages
    // below EX), squash the rest.
    unsigned spared = 0;
    for (unsigned i = ex_stage; i-- > 0;) {
        Slot &slot = pipe_[i];
        if (!slot.valid || slot.squashed || slot.stream != s)
            continue;
        if (spared < cfg_.branchDelaySlots) {
            ++spared;
            continue;
        }
        slot.squashed = true;
        ++stats_.squashedJump;
        if (observer_)
            observer_->onEvent(s, slot.inst.op, PipeEvent::SquashJump);
    }
}

void
Machine::setAluFlags(StreamId s, Word result, bool carry, bool overflow)
{
    StreamCtx &c = ctx(s);
    c.z = result == 0;
    c.n = (result & 0x8000) != 0;
    c.c = carry;
    c.v = overflow;
}

void
Machine::applyWctl(Slot &slot)
{
    if (slot.inst.wctl == WCtl::None)
        return;
    bool bad = slot.inst.wctl == WCtl::Inc ? win(slot.stream).inc()
                                           : win(slot.stream).dec();
    if (bad) {
        ++stats_.stackOverflows;
        raiseInternal(slot.stream, kStackOverflowBit);
    }
}

void
Machine::externalAccess(Slot &slot, unsigned stage)
{
    StreamId s = slot.stream;
    StreamCtx &c = ctx(s);
    bool is_write = slot.inst.op == Opcode::ST;
    Addr addr = static_cast<Addr>(readReg(s, slot.inst.ra) +
                                  slot.inst.imm);
    Word wdata = is_write ? readReg(s, slot.inst.rd) : 0;
    int dest = is_write ? AsyncBusInterface::kNoDest : slot.inst.rd;

    auto outcome = abi_.request(s, addr, is_write, wdata, dest);

    if (outcome == AsyncBusInterface::Outcome::Fault) {
        ++stats_.busFaults;
        raiseInternal(s, kBusFaultBit);
        // Faulting access retires as a no-op.
        ++stats_.retired[s];
        ++stats_.totalRetired;
        applyWctl(slot);
        if (observer_)
            observer_->onEvent(s, slot.inst.op, PipeEvent::Retire);
        return;
    }

    if (outcome == AsyncBusInterface::Outcome::Busy) {
        // Paper: the instruction is flushed and re-requested once the
        // stream leaves the wait state.
        ++stats_.busBusyRejections;
        slot.squashed = true;
        ++stats_.squashedWait;
        if (observer_)
            observer_->onEvent(s, slot.inst.op, PipeEvent::BusBusy);
        squashYounger(s, stage, &stats_.squashedWait,
                      PipeEvent::SquashWait);
        c.wait = WaitState::BusFree;
        c.pc = slot.pc; // re-execute the access instruction
        return;
    }

    // Started.
    if (auto imm = abi_.takeImmediate()) {
        // Zero-wait-state device: completes in the same cycle, the
        // stream does not wait.
        if (imm->destReg != AsyncBusInterface::kNoDest)
            writeReg(s, static_cast<unsigned>(imm->destReg), imm->data);
        if (is_write)
            ++stats_.externalWrites;
        else
            ++stats_.externalReads;
        ++stats_.retired[s];
        ++stats_.totalRetired;
        applyWctl(slot);
        if (observer_)
            observer_->onEvent(s, slot.inst.op, PipeEvent::Retire);
        return;
    }

    if (cfg_.baselineHaltOnWait) {
        // Standard-processor model: the whole pipe halts until the
        // access completes; nothing is flushed.
        haltedUntilBusDone_ = 1;
        slot.executed = true;
        c.pendingWctl = slot.inst.wctl;
        return;
    }

    // DISC: flush younger same-stream work and park the stream.
    if (observer_)
        observer_->onEvent(s, slot.inst.op, PipeEvent::WaitStart);
    squashYounger(s, stage, &stats_.squashedWait,
                  PipeEvent::SquashWait);
    c.wait = WaitState::Access;
    c.pc = static_cast<PAddr>(slot.pc + 1);
    c.pendingWctl = slot.inst.wctl;
    slot.executed = true; // retires when the ABI completes
}

void
Machine::completeAccess(const AsyncBusInterface::Completion &comp)
{
    StreamId s = comp.stream;
    StreamCtx &c = ctx(s);
    if (comp.destReg != AsyncBusInterface::kNoDest)
        writeReg(s, static_cast<unsigned>(comp.destReg), comp.data);
    if (comp.isWrite)
        ++stats_.externalWrites;
    else
        ++stats_.externalReads;
    ++stats_.retired[s];
    ++stats_.totalRetired;
    if (c.pendingWctl != WCtl::None) {
        bool bad = c.pendingWctl == WCtl::Inc ? win(s).inc()
                                              : win(s).dec();
        if (bad) {
            ++stats_.stackOverflows;
            raiseInternal(s, kStackOverflowBit);
        }
        c.pendingWctl = WCtl::None;
    }
    if (observer_) {
        observer_->onEvent(s, comp.isWrite ? Opcode::ST : Opcode::LD,
                           PipeEvent::Retire);
    }
    haltedUntilBusDone_ = 0;
    wakeWaiters();
}

void
Machine::wakeWaiters()
{
    for (StreamId s = 0; s < kNumStreams; ++s) {
        if (streams_[s].wait != WaitState::Ready) {
            streams_[s].wait = WaitState::Ready;
            if (observer_)
                observer_->onEvent(s, Opcode::NOP, PipeEvent::Wake);
        }
    }
}

Word
Machine::aluOp(Slot &slot, bool &is_redirect, PAddr &target)
{
    is_redirect = false;
    target = 0;
    StreamId s = slot.stream;
    StreamCtx &c = ctx(s);
    const Instruction &inst = slot.inst;

    auto ra_v = [&] { return readReg(s, inst.ra); };
    auto rb_v = [&] { return readReg(s, inst.rb); };
    auto imm_v = [&] { return static_cast<Word>(inst.imm); };

    auto add_like = [&](Word a, Word b, Word carry_in) {
        DWord full = static_cast<DWord>(a) + b + carry_in;
        Word r = static_cast<Word>(full);
        bool carry = (full >> 16) != 0;
        bool ovf = (~(a ^ b) & (a ^ r) & 0x8000) != 0;
        setAluFlags(s, r, carry, ovf);
        return r;
    };
    auto sub_like = [&](Word a, Word b, Word borrow_in) {
        DWord full = static_cast<DWord>(a) - b - borrow_in;
        Word r = static_cast<Word>(full);
        bool borrow = (full >> 16) != 0; // wrapped below zero
        bool ovf = ((a ^ b) & (a ^ r) & 0x8000) != 0;
        setAluFlags(s, r, borrow, ovf);
        return r;
    };
    auto logic_flags = [&](Word r) {
        setAluFlags(s, r, false, false);
        return r;
    };

    switch (inst.op) {
      case Opcode::ADD:
        return add_like(ra_v(), rb_v(), 0);
      case Opcode::ADC:
        return add_like(ra_v(), rb_v(), c.c ? 1 : 0);
      case Opcode::SUB:
        return sub_like(ra_v(), rb_v(), 0);
      case Opcode::SBC:
        return sub_like(ra_v(), rb_v(), c.c ? 1 : 0);
      case Opcode::AND:
        return logic_flags(ra_v() & rb_v());
      case Opcode::OR:
        return logic_flags(ra_v() | rb_v());
      case Opcode::XOR:
        return logic_flags(ra_v() ^ rb_v());
      case Opcode::SHL: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a << sh);
        bool carry = sh > 0 && ((a >> (16 - sh)) & 1);
        setAluFlags(s, r, carry, false);
        return r;
      }
      case Opcode::SHR: {
        unsigned sh = rb_v() & 15u;
        Word a = ra_v();
        Word r = static_cast<Word>(a >> sh);
        bool carry = sh > 0 && ((a >> (sh - 1)) & 1);
        setAluFlags(s, r, carry, false);
        return r;
      }
      case Opcode::ASR: {
        unsigned sh = rb_v() & 15u;
        SWord a = static_cast<SWord>(ra_v());
        Word r = static_cast<Word>(a >> sh);
        bool carry = sh > 0 && ((static_cast<Word>(a) >> (sh - 1)) & 1);
        setAluFlags(s, r, carry, false);
        return r;
      }
      case Opcode::MUL: {
        DWord p = static_cast<DWord>(ra_v()) * rb_v();
        c.mulHigh = static_cast<Word>(p >> 16);
        Word r = static_cast<Word>(p);
        setAluFlags(s, r, false, false);
        return r;
      }
      case Opcode::MULH:
        return c.mulHigh;
      case Opcode::MOV:
        return logic_flags(ra_v());
      case Opcode::NOT:
        return logic_flags(static_cast<Word>(~ra_v()));
      case Opcode::NEG:
        return sub_like(0, ra_v(), 0);
      case Opcode::CMP:
        sub_like(ra_v(), rb_v(), 0);
        return 0;
      case Opcode::TST:
        logic_flags(ra_v() & rb_v());
        return 0;
      case Opcode::ADDI:
        return add_like(ra_v(), imm_v(), 0);
      case Opcode::SUBI:
        return sub_like(ra_v(), imm_v(), 0);
      case Opcode::ANDI:
        return logic_flags(ra_v() & imm_v());
      case Opcode::ORI:
        return logic_flags(ra_v() | imm_v());
      case Opcode::XORI:
        return logic_flags(ra_v() ^ imm_v());
      case Opcode::CMPI:
        sub_like(ra_v(), imm_v(), 0);
        return 0;
      case Opcode::LDI:
        return static_cast<Word>(inst.imm);
      case Opcode::LDIH: {
        Word old = readReg(s, inst.rd);
        return static_cast<Word>((old & 0x00ff) |
                                 (static_cast<Word>(inst.imm) << 8));
      }
      case Opcode::LDM: {
        Addr a = static_cast<Addr>(ra_v() + inst.imm);
        return imem_.read(a);
      }
      case Opcode::LDMD:
        return imem_.read(static_cast<Addr>(inst.imm));
      case Opcode::TAS: {
        Word old = imem_.testAndSet(ra_v());
        logic_flags(old);
        return old;
      }
      case Opcode::JMP:
        is_redirect = true;
        target = static_cast<PAddr>(inst.imm);
        return 0;
      case Opcode::JR:
        is_redirect = true;
        target = ra_v();
        return 0;
      case Opcode::BR: {
        bool take = false;
        switch (inst.cond) {
          case Cond::EQ: take = c.z; break;
          case Cond::NE: take = !c.z; break;
          case Cond::LT: take = c.n != c.v; break;
          case Cond::GE: take = c.n == c.v; break;
          case Cond::ULT: take = c.c; break;
          case Cond::UGE: take = !c.c; break;
          case Cond::MI: take = c.n; break;
          case Cond::PL: take = !c.n; break;
        }
        if (take) {
            is_redirect = true;
            target = static_cast<PAddr>(
                static_cast<int>(slot.pc) + inst.imm);
        }
        return 0;
      }
      default:
        panic("aluOp called for %s",
              std::string(opMnemonic(inst.op)).c_str());
    }
}

void
Machine::execute(Slot &slot)
{
    StreamId s = slot.stream;
    StreamCtx &c = ctx(s);
    const Instruction &inst = slot.inst;
    const OpInfo &oi = inst.info();
    unsigned ex_stage = cfg_.pipeDepth - 2;

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::LD:
      case Opcode::ST:
        // External accesses handle their own retirement/wctl.
        externalAccess(slot, ex_stage);
        return;
      case Opcode::STM: {
        Addr a = static_cast<Addr>(readReg(s, inst.ra) + inst.imm);
        imem_.write(a, readReg(s, inst.rd));
        break;
      }
      case Opcode::STMD:
        imem_.write(static_cast<Addr>(inst.imm), readReg(s, inst.rd));
        break;
      case Opcode::CALL:
      case Opcode::CALLR: {
        PAddr target = inst.op == Opcode::CALL
                           ? static_cast<PAddr>(inst.imm)
                           : readReg(s, inst.ra);
        if (win(s).inc()) {
            ++stats_.stackOverflows;
            raiseInternal(s, kStackOverflowBit);
        }
        win(s).write(0, static_cast<Word>(slot.pc + 1));
        redirect(s, target, ex_stage);
        break;
      }
      case Opcode::RET: {
        bool bad = win(s).move(-inst.imm);
        PAddr ra_val = win(s).read(0);
        bad |= win(s).dec();
        if (bad) {
            ++stats_.stackOverflows;
            raiseInternal(s, kStackOverflowBit);
        }
        redirect(s, ra_val, ex_stage);
        break;
      }
      case Opcode::RETI: {
        if (!intUnit_.exitService(s)) {
            // RETI outside a handler is an illegal use.
            ++stats_.illegalInstructions;
            raiseInternal(s, kIllegalInstBit);
            break;
        }
        PAddr ra_val = win(s).read(0);
        if (win(s).dec()) {
            ++stats_.stackOverflows;
            raiseInternal(s, kStackOverflowBit);
        }
        redirect(s, ra_val, ex_stage);
        break;
      }
      case Opcode::SWI:
        raiseInternal(inst.stream, inst.bit);
        break;
      case Opcode::CLRI:
        intUnit_.clear(s, inst.bit);
        if (!intUnit_.isActive(s)) {
            // Deactivation: drop the younger fetches and park the PC
            // right after this instruction so a later activation
            // resumes exactly where the stream stopped.
            squashYounger(s, ex_stage, &stats_.squashedDeact,
                          PipeEvent::SquashDeact);
            c.pc = static_cast<PAddr>(slot.pc + 1);
        }
        break;
      case Opcode::HALT:
        intUnit_.clear(s, 0);
        if (!intUnit_.isActive(s)) {
            squashYounger(s, ex_stage, &stats_.squashedDeact,
                          PipeEvent::SquashDeact);
            c.pc = static_cast<PAddr>(slot.pc + 1);
        }
        break;
      case Opcode::FORK:
      case Opcode::FORKR: {
        StreamId t = inst.stream;
        PAddr entry = inst.op == Opcode::FORK
                          ? static_cast<PAddr>(inst.imm)
                          : readReg(s, inst.ra);
        // Restart semantics: discard whatever the target had in
        // flight and point it at the new entry.
        squashYounger(t, cfg_.pipeDepth, &stats_.squashedDeact,
                      PipeEvent::SquashDeact);
        ctx(t).pc = entry;
        intUnit_.raise(t, 0);
        break;
      }
      case Opcode::SCHED:
        sched_.setSlot(inst.slot, inst.stream);
        break;
      case Opcode::WINC:
      case Opcode::WDEC: {
        bool bad = inst.op == Opcode::WINC ? win(s).inc() : win(s).dec();
        if (bad) {
            ++stats_.stackOverflows;
            raiseInternal(s, kStackOverflowBit);
        }
        break;
      }
      default: {
        // ALU / load-immediate / internal-memory read path.
        bool is_redirect = false;
        PAddr target = 0;
        Word result = aluOp(slot, is_redirect, target);
        if (oi.writesRd)
            writeReg(s, inst.rd, result);
        if (is_redirect)
            redirect(s, target, ex_stage);
        break;
      }
    }

    applyWctl(slot);
    ++stats_.retired[s];
    ++stats_.totalRetired;
    if (oi.isJumpType)
        ++stats_.jumpTypeRetired;
    if (observer_)
        observer_->onEvent(s, inst.op, PipeEvent::Retire);
}

void
Machine::executeAt(unsigned stage)
{
    Slot &slot = pipe_[stage];
    if (!slot.valid || slot.squashed || slot.executed)
        return;
    slot.executed = true;
    execute(slot);
    if (execTrace_ && !slot.squashed) {
        execTrace_->record(stats_.cycles, slot.stream, slot.pc,
                           slot.inst);
    }
}

bool
Machine::engaged() const
{
    if (abi_.busy())
        return true;
    for (StreamId s = 0; s < kNumStreams; ++s) {
        if (intUnit_.isActive(s) || streams_[s].wait != WaitState::Ready)
            return true;
    }
    for (const Slot &slot : pipe_) {
        if (slot.valid && !slot.squashed)
            return true;
    }
    return false;
}

void
Machine::recordTrace()
{
    if (!trace_)
        return;
    traceScratch_.resize(cfg_.pipeDepth);
    for (unsigned i = 0; i < cfg_.pipeDepth; ++i) {
        const Slot &slot = pipe_[i];
        traceScratch_[i] = {slot.valid, slot.squashed, slot.stream,
                            slot.tag};
    }
    trace_->record(stats_.cycles, traceScratch_);
}

void
Machine::step()
{
    bool was_engaged = engaged();

    // 1. Peripheral activity.
    for (const IntRequest &req : bus_.tickDevices())
        raiseInternal(req.stream, req.bit);

    // 2. Asynchronous bus progress.
    if (auto comp = abi_.tick())
        completeAccess(*comp);

    // 3. Standard-processor mode: the pipe is frozen during a wait.
    if (haltedUntilBusDone_) {
        ++stats_.cycles;
        if (was_engaged || engaged())
            ++stats_.busyCycles;
        recordTrace();
        if (observer_)
            observer_->onCycleEnd();
        return;
    }

    // 4. Advance the pipe: retire WR, age everything one stage.
    for (unsigned i = cfg_.pipeDepth - 1; i > 0; --i)
        pipe_[i] = pipe_[i - 1];
    pipe_[0] = Slot{};

    // 5. Execute the instruction now at EX.
    executeAt(cfg_.pipeDepth - 2);

    // 6. Issue from the scheduled stream.
    if (!haltedUntilBusDone_)
        issue();

    ++stats_.cycles;
    if (was_engaged || engaged())
        ++stats_.busyCycles;
    recordTrace();
    if (observer_)
        observer_->onCycleEnd();
}

bool
Machine::idle() const
{
    return !engaged();
}

namespace
{
constexpr std::uint32_t kCheckpointMagic = 0x44495343; // "DISC"
constexpr std::uint16_t kCheckpointVersion = 1;
} // namespace

std::vector<std::uint8_t>
Machine::saveState() const
{
    Serializer out;
    out.put(kCheckpointMagic);
    out.put(kCheckpointVersion);
    out.put<std::uint16_t>(static_cast<std::uint16_t>(cfg_.pipeDepth));

    imem_.save(out);
    for (Word g : globals_)
        out.put(g);
    for (const StreamCtx &c : streams_) {
        out.put(c.pc);
        out.putBool(c.z);
        out.putBool(c.n);
        out.putBool(c.c);
        out.putBool(c.v);
        out.put(c.mulHigh);
        out.put<std::uint8_t>(static_cast<std::uint8_t>(c.wait));
        out.put<std::uint8_t>(static_cast<std::uint8_t>(c.pendingWctl));
        for (unsigned b = 0; b < kNumIntLevels; ++b) {
            out.put<Cycle>(c.lastRaise[b]);
            out.putBool(c.latencyArmed[b]);
        }
    }
    for (const auto &w : windows_)
        w->save(out);
    intUnit_.save(out);
    sched_.save(out);
    abi_.save(out);

    for (const Slot &slot : pipe_) {
        out.putBool(slot.valid);
        out.putBool(slot.squashed);
        out.putBool(slot.executed);
        out.put(slot.stream);
        out.put(slot.pc);
        out.put<std::uint32_t>(encode(slot.inst));
        out.put<std::uint8_t>(static_cast<std::uint8_t>(slot.tag));
    }

    out.put<Cycle>(stats_.cycles);
    out.put<Cycle>(stats_.busyCycles);
    for (std::uint64_t r : stats_.retired)
        out.put(r);
    out.put(stats_.totalRetired);
    out.put(stats_.squashedJump);
    out.put(stats_.squashedWait);
    out.put(stats_.squashedDeact);
    out.put(stats_.bubbles);
    out.put(stats_.redirects);
    out.put(stats_.jumpTypeRetired);
    out.put(stats_.externalReads);
    out.put(stats_.externalWrites);
    out.put(stats_.busBusyRejections);
    out.put(stats_.vectorsTaken);
    out.put(stats_.stackOverflows);
    out.put(stats_.illegalInstructions);
    out.put(stats_.busFaults);

    out.put<std::uint8_t>(static_cast<std::uint8_t>(nextTag_));
    out.put<Cycle>(haltedUntilBusDone_);

    bus_.saveDevices(out);
    return out.take();
}

void
Machine::restoreState(const std::vector<std::uint8_t> &bytes)
{
    Deserializer in(bytes);
    if (in.get<std::uint32_t>() != kCheckpointMagic)
        fatal("not a DISC checkpoint");
    if (in.get<std::uint16_t>() != kCheckpointVersion)
        fatal("checkpoint version mismatch");
    if (in.get<std::uint16_t>() != cfg_.pipeDepth)
        fatal("checkpoint pipe depth mismatch");

    imem_.restore(in);
    for (Word &g : globals_)
        g = in.get<Word>();
    for (StreamCtx &c : streams_) {
        c.pc = in.get<PAddr>();
        c.z = in.getBool();
        c.n = in.getBool();
        c.c = in.getBool();
        c.v = in.getBool();
        c.mulHigh = in.get<Word>();
        c.wait = static_cast<WaitState>(in.get<std::uint8_t>());
        c.pendingWctl = static_cast<WCtl>(in.get<std::uint8_t>());
        for (unsigned b = 0; b < kNumIntLevels; ++b) {
            c.lastRaise[b] = in.get<Cycle>();
            c.latencyArmed[b] = in.getBool();
        }
    }
    for (auto &w : windows_)
        w->restore(in);
    intUnit_.restore(in);
    sched_.restore(in);
    abi_.restore(in);

    for (Slot &slot : pipe_) {
        slot.valid = in.getBool();
        slot.squashed = in.getBool();
        slot.executed = in.getBool();
        slot.stream = in.get<StreamId>();
        slot.pc = in.get<PAddr>();
        slot.inst = decode(in.get<std::uint32_t>());
        depMasks(slot.inst, slot.readsMask, slot.writesMask);
        slot.tag = static_cast<char>(in.get<std::uint8_t>());
    }

    stats_.cycles = in.get<Cycle>();
    stats_.busyCycles = in.get<Cycle>();
    for (std::uint64_t &r : stats_.retired)
        r = in.get<std::uint64_t>();
    stats_.totalRetired = in.get<std::uint64_t>();
    stats_.squashedJump = in.get<std::uint64_t>();
    stats_.squashedWait = in.get<std::uint64_t>();
    stats_.squashedDeact = in.get<std::uint64_t>();
    stats_.bubbles = in.get<std::uint64_t>();
    stats_.redirects = in.get<std::uint64_t>();
    stats_.jumpTypeRetired = in.get<std::uint64_t>();
    stats_.externalReads = in.get<std::uint64_t>();
    stats_.externalWrites = in.get<std::uint64_t>();
    stats_.busBusyRejections = in.get<std::uint64_t>();
    stats_.vectorsTaken = in.get<std::uint64_t>();
    stats_.stackOverflows = in.get<std::uint64_t>();
    stats_.illegalInstructions = in.get<std::uint64_t>();
    stats_.busFaults = in.get<std::uint64_t>();

    nextTag_ = static_cast<char>(in.get<std::uint8_t>());
    haltedUntilBusDone_ = in.get<Cycle>();

    bus_.restoreDevices(in);
    if (!in.exhausted())
        fatal("checkpoint has %zu trailing bytes",
              bytes.size() - in.position());
}

Cycle
Machine::run(Cycle max_cycles, bool stop_when_idle)
{
    Cycle start = stats_.cycles;
    while (stats_.cycles - start < max_cycles) {
        if (stop_when_idle && idle())
            break;
        step();
    }
    return stats_.cycles - start;
}

} // namespace disc
