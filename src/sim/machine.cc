/**
 * @file
 * Machine core: construction, architectural state access, the
 * per-cycle step() skeleton and shared pipe helpers. Stage semantics
 * live in stage_issue.cc / stage_execute.cc / stage_abi.cc, event
 * scheduling and fast-forward in machine_events.cc, checkpointing in
 * machine_ckpt.cc.
 */

#include "sim/machine.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "sim/trace.hh"

namespace disc
{

const char *
pipeEventName(PipeEvent ev)
{
    switch (ev) {
      case PipeEvent::Issue: return "issue";
      case PipeEvent::Retire: return "retire";
      case PipeEvent::SquashJump: return "squash-jump";
      case PipeEvent::SquashWait: return "squash-wait";
      case PipeEvent::SquashDeact: return "squash-deact";
      case PipeEvent::BusBusy: return "bus-busy";
      case PipeEvent::WaitStart: return "wait-start";
      case PipeEvent::Wake: return "wake";
      case PipeEvent::Vector: return "vector";
      case PipeEvent::TrapOverflow: return "trap-overflow";
      case PipeEvent::TrapIllegal: return "trap-illegal";
      case PipeEvent::TrapBusFault: return "trap-bus-fault";
      case PipeEvent::NumEvents: break;
    }
    return "?";
}

double
MachineStats::utilization() const
{
    if (busyCycles == 0)
        return 0.0;
    return static_cast<double>(totalRetired) /
           static_cast<double>(busyCycles);
}

double
MachineStats::standardPs(Cycle bus_busy_cycles, unsigned pipe_depth) const
{
    double e = static_cast<double>(totalRetired);
    if (e == 0.0)
        return 0.0;
    double denom = e + static_cast<double>(bus_busy_cycles) +
                   static_cast<double>(jumpTypeRetired) *
                       static_cast<double>(pipe_depth - 1);
    return e / denom;
}

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg), abi_(bus_), latency_(128), vectorStage_(*this),
      issueStage_(*this), executeStage_(*this), abiStage_(*this),
      sblock_(*this), timing_(*this)
{
    if (cfg_.pipeDepth < 3)
        fatal("pipe depth %u is below the minimum of 3", cfg_.pipeDepth);
    sched_.setMode(cfg_.schedMode);
    for (StreamId s = 0; s < kNumStreams; ++s) {
        windows_.push_back(std::make_unique<StackWindow>(
            imem_, static_cast<Addr>(cfg_.stackBase + s * cfg_.stackWords),
            cfg_.stackWords));
    }
    pipe_.resize(cfg_.pipeDepth);
    ffEnabled_ = cfg_.fastForward;
    if (const char *env = std::getenv("DISC_NO_FASTFORWARD");
        env && *env && std::strcmp(env, "0") != 0)
        ffEnabled_ = false;
    uopsEnabled_ = cfg_.uopDispatch;
    if (const char *env = std::getenv("DISC_NO_UOP");
        env && *env && std::strcmp(env, "0") != 0)
        uopsEnabled_ = false;
    sbEnabled_ = cfg_.superblockExec;
    if (const char *env = std::getenv("DISC_NO_SUPERBLOCK");
        env && *env && std::strcmp(env, "0") != 0)
        sbEnabled_ = false;
    batchEnabled_ = cfg_.batchExec;
    if (const char *env = std::getenv("DISC_NO_BATCH");
        env && *env && std::strcmp(env, "0") != 0)
        batchEnabled_ = false;
}

void
Machine::load(const Program &prog)
{
    pmem_.load(prog);
    pdec_.load(prog);
    reset();
    imem_.load(prog);
}

void
Machine::reset()
{
    imem_.reset();
    abi_.reset();
    intUnit_.reset();
    sched_.reset();
    sched_.setMode(cfg_.schedMode);
    for (auto &w : windows_)
        w->reset();
    for (auto &c : streams_)
        c = StreamCtx{};
    globals_.fill(0);
    std::fill(pipe_.begin(), pipe_.end(), PipeSlot{});
    pipeHead_ = 0;
    stats_ = MachineStats{};
    latency_ = Histogram(128);
    nextTag_ = 'a';
    haltedUntilBusDone_ = 0;
    sblock_.invalidate();
    timing_.rebuild();
}

void
Machine::attachDevice(Addr base, Addr size, Device *device)
{
    bus_.attach(base, size, device);
    timing_.addDevice(device);
}

StreamCtx &
Machine::ctx(StreamId s)
{
    if (s >= kNumStreams)
        panic("bad stream id %u", s);
    return streams_[s];
}

const StreamCtx &
Machine::ctx(StreamId s) const
{
    if (s >= kNumStreams)
        panic("bad stream id %u", s);
    return streams_[s];
}

StackWindow &
Machine::win(StreamId s)
{
    if (s >= kNumStreams)
        panic("bad stream id %u", s);
    return *windows_[s];
}

const StackWindow &
Machine::win(StreamId s) const
{
    if (s >= kNumStreams)
        panic("bad stream id %u", s);
    return *windows_[s];
}

const StackWindow &
Machine::window(StreamId s) const
{
    return win(s);
}

bool
Machine::isWaiting(StreamId s) const
{
    return ctx(s).wait != WaitState::Ready;
}

void
Machine::startStream(StreamId s, PAddr entry)
{
    ctx(s).pc = entry;
    intUnit_.raise(s, 0);
}

void
Machine::raiseExternal(StreamId s, unsigned bit)
{
    raiseInternal(s, bit);
}

void
Machine::raiseInternal(StreamId s, unsigned bit)
{
    StreamCtx &c = ctx(s);
    bool was_pending = (intUnit_.ir(s) >> bit) & 1;
    intUnit_.raise(s, bit);
    if (bit >= 1 && !was_pending) {
        c.lastRaise[bit] = stats_.cycles;
        c.latencyArmed[bit] = true;
    }
    if (observer_) {
        if (bit == kStackOverflowBit)
            observer_->onEvent(s, Opcode::NOP, PipeEvent::TrapOverflow);
        else if (bit == kIllegalInstBit)
            observer_->onEvent(s, Opcode::NOP, PipeEvent::TrapIllegal);
        else if (bit == kBusFaultBit)
            observer_->onEvent(s, Opcode::NOP, PipeEvent::TrapBusFault);
    }
}

PAddr
Machine::pc(StreamId s) const
{
    return ctx(s).pc;
}

Word
Machine::readReg(StreamId s, unsigned r) const
{
    if (reg::isWindow(r))
        return win(s).read(r);
    if (reg::isGlobal(r))
        return globals_[r - reg::G0];
    const StreamCtx &c = ctx(s);
    switch (r) {
      case reg::SR:
        return static_cast<Word>(
            (c.z ? 1 : 0) | (c.n ? 2 : 0) | (c.c ? 4 : 0) |
            (c.v ? 8 : 0) | (static_cast<unsigned>(s) << 4) |
            (intUnit_.runningLevel(s) << 6));
      case reg::IRR:
        return intUnit_.ir(s);
      case reg::IMR:
        return intUnit_.mr(s);
      case reg::AWP:
        return win(s).awp();
      default:
        panic("bad register %u", r);
    }
}

void
Machine::writeReg(StreamId s, unsigned r, Word value)
{
    if (reg::isWindow(r)) {
        win(s).write(r, value);
        return;
    }
    if (reg::isGlobal(r)) {
        globals_[r - reg::G0] = value;
        return;
    }
    StreamCtx &c = ctx(s);
    switch (r) {
      case reg::SR:
        c.z = value & 1;
        c.n = value & 2;
        c.c = value & 4;
        c.v = value & 8;
        return;
      case reg::IRR:
        // A stream may post requests to its own IR; bits clear only
        // via CLRI.
        for (unsigned bit = 0; bit < kNumIntLevels; ++bit) {
            if (value & (1u << bit))
                raiseInternal(s, bit);
        }
        return;
      case reg::IMR:
        intUnit_.setMr(s, value);
        return;
      case reg::AWP:
        if (win(s).setAwp(value)) {
            ++stats_.stackOverflows;
            raiseInternal(s, kStackOverflowBit);
        }
        return;
      default:
        panic("bad register %u", r);
    }
}

void
Machine::squashYounger(StreamId s, unsigned ex_stage,
                       std::uint64_t *counter, PipeEvent ev)
{
    for (unsigned i = 0; i < ex_stage; ++i) {
        PipeSlot &slot = pipeAt(i);
        if (slot.valid && !slot.squashed && slot.stream == s) {
            slot.squashed = true;
            if (counter)
                ++(*counter);
            if (observer_)
                observer_->onEvent(s, slot.inst.op, ev);
        }
    }
}

bool
Machine::engaged() const
{
    if (abi_.busy())
        return true;
    for (StreamId s = 0; s < kNumStreams; ++s) {
        if (intUnit_.isActive(s) || streams_[s].wait != WaitState::Ready)
            return true;
    }
    for (const PipeSlot &slot : pipe_) {
        if (slot.valid && !slot.squashed)
            return true;
    }
    return false;
}

void
Machine::recordTrace()
{
    if (!trace_)
        return;
    traceScratch_.resize(cfg_.pipeDepth);
    for (unsigned i = 0; i < cfg_.pipeDepth; ++i) {
        const PipeSlot &slot = pipeAt(i);
        traceScratch_[i] = {slot.valid, slot.squashed, slot.stream,
                            slot.tag};
    }
    trace_->record(stats_.cycles, traceScratch_);
}

void
Machine::advancePipe()
{
    // Retire WR implicitly, age everything one stage: the ring head
    // moves back one slot, and the slot it lands on — the old WR —
    // is cleared to become the new IF.
    pipeHead_ = pipeHead_ == 0 ? cfg_.pipeDepth - 1 : pipeHead_ - 1;
    pipe_[pipeHead_] = PipeSlot{};
}

void
Machine::finishCycle(bool was_engaged)
{
    for (StreamId s = 0; s < kNumStreams; ++s) {
        if (streams_[s].wait != WaitState::Ready)
            ++stats_.waitAbiCycles[s];
        else if (intUnit_.isActive(s))
            ++stats_.readyCycles[s];
        else
            ++stats_.inactiveCycles[s];
    }
    ++stats_.cycles;
    if (was_engaged || engaged())
        ++stats_.busyCycles;
    recordTrace();
    if (observer_)
        observer_->onCycleEnd();
}

void
Machine::step()
{
    bool was_engaged = engaged();

    // 1. Timing kernel: fire due device expiries and ABI completions
    //    (the legacy phase-1 device tick / phase-2 ABI tick pair).
    timing_.dispatch();

    // 2. Standard-processor mode: the pipe is frozen during a wait.
    if (haltedUntilBusDone_) {
        finishCycle(was_engaged);
        return;
    }

    // 3. Pipe stages: age, execute at EX, issue into IF.
    advancePipe();
    executeStage_.tick();
    if (!haltedUntilBusDone_)
        issueStage_.tick();

    finishCycle(was_engaged);
}

bool
Machine::idle() const
{
    return !engaged();
}

} // namespace disc
