/**
 * @file
 * Shared pipeline-state types used by the Machine and its stage
 * modules (sim/stages.hh). Kept at namespace scope so the stage
 * classes can name them in their interfaces without pulling in the
 * full Machine definition.
 */

#ifndef DISC_SIM_PIPELINE_STATE_HH
#define DISC_SIM_PIPELINE_STATE_HH

#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/uops.hh"

namespace disc
{

/** Why a stream is not running. */
enum class WaitState : std::uint8_t
{
    Ready,       ///< may be scheduled
    BusFree,     ///< retry the access when the bus frees
    Access,      ///< own access in flight
};

/** One pipeline slot. */
struct PipeSlot
{
    bool valid = false;
    bool squashed = false;
    bool executed = false;    ///< baseline halt mode bookkeeping
    StreamId stream = kNoStream;
    PAddr pc = 0;
    Instruction inst;
    std::uint32_t readsMask = 0;
    std::uint32_t writesMask = 0;
    Uop uop = Uop::NOP;       ///< pre-resolved EX handler (derived)
    char tag = ' ';           ///< trace letter
};

/** Per-stream architectural and micro-architectural state. */
struct StreamCtx
{
    PAddr pc = 0;
    bool z = false, n = false, c = false, v = false;
    Word mulHigh = 0;
    WaitState wait = WaitState::Ready;
    WCtl pendingWctl = WCtl::None; ///< applied when the access lands
    Cycle lastRaise[kNumIntLevels] = {};
    bool latencyArmed[kNumIntLevels] = {};
};

} // namespace disc

#endif // DISC_SIM_PIPELINE_STATE_HH
