/**
 * @file
 * Superblock block executor: engagement gate, translation cache and
 * the in-block cycle loop. See superblock.hh for the model.
 *
 * The executor works on the Machine's own pipe_ array through a
 * rotating head cursor: "advance" is one slot clear plus index
 * arithmetic instead of advancePipe()'s full copy chain. Handlers
 * that never touch pipe_ (the ALU/immediate/internal-memory set) run
 * at any rotation; redirect-capable handlers (branches, calls,
 * returns, CLRI/HALT deactivation) need squashYounger()'s canonical
 * stage order, so the ring is realigned with one std::rotate first —
 * once per control transfer, not per cycle.
 *
 * Every simulated cycle reproduces step()'s exact sequence for the
 * single-runner regime: advance, EX handler + exec-trace record,
 * vector/deactivation check, interlock test, issue (or trap-issue on
 * an illegal word). The cycle counter advances at end-of-cycle
 * exactly like finishCycle() — it is kept in a register and synced
 * to MachineStats only before handlers that can observe it
 * (raiseInternal latency stamps) — so every trace line and stat is
 * bit-identical to the per-cycle path. The wait-state tallies,
 * bubbles, busy cycles and scheduler cursor are settled in one batch
 * at exit, the same bulk update fastForward() uses.
 *
 * The loop is instantiated once with the DISC1 pipe depth as a
 * compile-time constant (ring arithmetic folds to masks) and once
 * generic for unusual configurations.
 */

#include "sim/superblock.hh"

#include <algorithm>
#include <array>

#include "sim/machine.hh"

namespace disc
{

namespace
{

/// Retry distance after an engagement attempt fails for a reason that
/// changes rarely (several streams active, or the runner owns no
/// schedule slot). Keeps the per-step cost of the disengaged tier at
/// one compare for multi-stream workloads.
constexpr Cycle kRetrySlow = 64;

/// The kSbCls* classification of one decoded word: the micro-op
/// class, plus Raise when a window-control modifier can overflow at
/// retire (applyWctl), whatever the base op is.
std::uint8_t
classOf(const PipeSlot &slot)
{
    std::uint8_t cls = superblockClass(slot.uop);
    if (slot.inst.wctl != WCtl::None)
        cls |= kSbClsRaise;
    return cls;
}

} // namespace

const char *
sbBailName(SbBail b)
{
    switch (b) {
      case SbBail::Branch: return "branch";
      case SbBail::Abi: return "abi";
      case SbBail::Interrupt: return "interrupt";
      case SbBail::Budget: return "budget";
      case SbBail::Stream: return "stream";
      case SbBail::NumReasons: break;
    }
    return "?";
}

bool
SuperblockEngine::alwaysPicks(StreamId s) const
{
    // pick() advances the cursor by exactly one every cycle, so the
    // single-runner regime needs every cursor position to award a
    // ready mask of {s} to s. Dynamic reallocation donates any slot
    // to the only ready stream as long as s owns at least one slot;
    // strict-static mode only qualifies when s owns the whole table.
    const Scheduler &sched = m_.sched_;
    if (sched.mode() == Scheduler::Mode::Dynamic) {
        for (unsigned i = 0; i < kScheduleSlots; ++i) {
            if (sched.slot(i) == s)
                return true;
        }
        return false;
    }
    for (unsigned i = 0; i < kScheduleSlots; ++i) {
        if (sched.slot(i) != s)
            return false;
    }
    return true;
}

std::unique_ptr<SuperblockEngine::Block>
SuperblockEngine::translate(PAddr pc) const
{
    // A block is the straight-line fetch run from pc: consecutive
    // legal words, capped by the configured length. Words the
    // executor cannot run at EX (LD/ST, SWI/FORK/SCHED) still join
    // the block — they issue speculatively exactly like the per-cycle
    // fetch stream and end the block when they reach EX. Translation
    // stops only at an illegal word, whose issue is a trap, not a
    // slot fill. Out-of-image addresses predecode to legal NOPs, so
    // runs past the image edge translate like the interpreter fetches
    // them.
    auto b = std::make_unique<Block>();
    unsigned max_len = std::max(1u, m_.cfg_.superblockMaxLen);
    PAddr p = pc;
    for (unsigned i = 0; i < max_len; ++i) {
        const PredecodedInst &pd = m_.pdec_.at(p);
        if (!pd.legal)
            break;
        PipeSlot proto;
        proto.valid = true;
        proto.squashed = false;
        proto.executed = false;
        proto.stream = kNoStream; // stamped at issue
        proto.pc = p;
        proto.inst = pd.inst;
        proto.readsMask = pd.readsMask;
        proto.writesMask = pd.writesMask;
        proto.uop = pd.uop;
        proto.tag = ' ';
        b->protos.push_back(proto);
        b->cls.push_back(classOf(proto));
        ++p;
        if (p == pc)
            break; // wrapped the whole program space
    }

    return b;
}

const SuperblockEngine::Block *
SuperblockEngine::lookup(PAddr pc)
{
    if (cache_.empty())
        cache_.resize(std::size_t{1} << 16);
    std::unique_ptr<Block> &entry = cache_[pc];
    if (!entry)
        entry = translate(pc);
    return entry.get();
}

void
SuperblockEngine::invalidate()
{
    cache_.clear();
    retryAt_ = 0;
}

std::size_t
SuperblockEngine::cachedBlocks() const
{
    std::size_t n = 0;
    for (const auto &b : cache_) {
        if (b)
            ++n;
    }
    return n;
}

bool
SuperblockEngine::cached(PAddr pc) const
{
    return pc < cache_.size() && cache_[pc] != nullptr;
}

/**
 * The in-block cycle loop. @tparam D is the pipe depth as a
 * compile-time constant (a power of two, so ring indices reduce to
 * masks), or 0 for the generic variant that reads the depth from the
 * machine configuration.
 *
 * Returns the number of architectural cycles simulated; the caller
 * (execute()) settles the batch tallies. @p reason, @p issued and
 * @p trap_issued report the exit condition for that settling.
 */
template <unsigned D>
Cycle
SuperblockEngine::blockLoop(StreamId s, Cycle budget, SbBail &reason,
                            std::uint64_t &issued, bool &trap_issued)
{
    static_assert(D == 0 || (D & (D - 1)) == 0,
                  "specialized depths must be powers of two");
    Machine &m = m_;
    MachineStats &st = m.stats_;
    const unsigned depth = D ? D : m.cfg_.pipeDepth;
    const unsigned ex_off = depth - 2;
    PipeSlot *const pipe = m.pipe_.data();
    ExecTrace *const etrace = m.execTrace_;
    StreamCtx &c = m.streams_[s];

    auto wrap = [depth](unsigned v) -> unsigned {
        if (D != 0)
            return v & (D - 1);
        return v >= depth ? v - depth : v;
    };

    // In-flight class ring, mirroring pipe slots: kSbCls* of each
    // word still relevant (0 once executed or squashed-out). Seeded
    // from the residue the engagement gate already vetted.
    std::array<std::uint8_t, kSbMaxDepth> cring{};
    // Interlock mask ring, also mirroring pipe slots: the effective
    // writesMask (low half) and AWP-read bit (high half) of every
    // slot that can conflict with an issue (valid, unsquashed,
    // stream s — executed slots included, exactly like IssueStage's
    // scan). Zero for slots that cannot conflict, so the common-case
    // interlock test is one union-and-test instead of a flag walk
    // over 40-byte slots.
    auto slotMasks = [](const PipeSlot &sl) -> std::uint64_t {
        return sl.writesMask |
               (static_cast<std::uint64_t>(sl.readsMask & kDepAwp)
                << 32);
    };
    std::array<std::uint64_t, kSbMaxDepth> mring{};
    for (unsigned i = 0; i < depth; ++i) {
        const PipeSlot &slot = pipe[i];
        if (slot.valid && !slot.squashed && !slot.executed)
            cring[i] = classOf(slot);
        if (slot.valid && !slot.squashed && slot.stream == s)
            mring[i] = slotMasks(slot);
    }

    const Block *blk = lookup(c.pc);
    const PipeSlot *protos = blk->protos.data();
    const std::uint8_t *pcls = blk->cls.data();
    std::size_t nprotos = blk->protos.size();
    if (nprotos == 0)
        return 0; // illegal word at the fetch pc: step() traps it

    unsigned head = 0; // pipe[wrap(head + stage)] = logical stage
    const Cycle cyc0 = st.cycles;
    Cycle cyc = cyc0;            // register mirror of st.cycles
    const Cycle limit = cyc0 + budget;
    char tag = m.nextTag_;       // register mirror of nextTag_
    std::size_t idx = 0; // next proto to issue; protos[idx].pc == c.pc
    reason = SbBail::Budget;

    while (true) {
        if (cyc == limit) {
            reason = SbBail::Budget;
            break;
        }

        // The word entering EX this cycle must be executable here;
        // external accesses and cross-stream ops go back to step().
        {
            unsigned pi = wrap(head + ex_off - 1);
            const PipeSlot &nx = pipe[pi];
            if ((cring[pi] & kSbClsNonExec) && nx.valid && !nx.squashed &&
                !nx.executed) {
                reason = (nx.uop == Uop::LD || nx.uop == Uop::ST)
                             ? SbBail::Abi
                             : SbBail::Stream;
                break;
            }
        }

        // Chain: fall through into the block at the fetch pc.
        if (idx == nprotos) {
            blk = lookup(c.pc);
            protos = blk->protos.data();
            pcls = blk->cls.data();
            nprotos = blk->protos.size();
            idx = 0;
            if (nprotos == 0) {
                reason = SbBail::Branch;
                break;
            }
        }

        // ---- one architectural cycle (cf. Machine::step()) ----
        head = wrap(head + depth - 1);
        // Advance. With ex_off >= 2 the fresh IF slot is not read
        // before the issue decision below, which either overwrites it
        // or clears it — so the clear is deferred and skipped on
        // issue cycles (the common case). Shallower rings (possible
        // only in the generic instantiation) clear eagerly.
        constexpr bool kLazyIfClear = D >= 4;
        if constexpr (!kLazyIfClear)
            pipe[head] = PipeSlot{};
        cring[head] = kSbClsPlain;
        mring[head] = 0;

        bool bail_vec = false;
        unsigned exi = wrap(head + ex_off);
        PipeSlot *exs = &pipe[exi];
        if (exs->valid && !exs->squashed && !exs->executed) {
            std::uint8_t cls = cring[exi];
            bool ctl = (cls & kSbClsControl) != 0;
            if (ctl && head != 0) {
                // Redirect handlers walk pipe_[0..EX) by stage index;
                // realign the ring to the canonical order first.
                std::rotate(pipe, pipe + head, pipe + depth);
                std::rotate(cring.begin(), cring.begin() + head,
                            cring.begin() + depth);
                std::rotate(mring.begin(), mring.begin() + head,
                            mring.begin() + depth);
                head = 0;
                exi = ex_off;
                exs = &pipe[ex_off];
            }
            if constexpr (kLazyIfClear) {
                // Control handlers walk the pipe (squashYounger), so
                // the stale IF slot must be empty before they run.
                if (ctl)
                    pipe[head] = PipeSlot{};
            }
            PAddr pc_before = c.pc;
            exs->executed = true;
            cring[exi] = kSbClsPlain;
            if (cls != kSbClsPlain) {
                // Raise-capable: raiseInternal stamps latency with
                // the live cycle counter.
                st.cycles = cyc;
            }
            execHandler(exs->uop)(m.executeStage_, *exs);
            if (etrace && !exs->squashed)
                etrace->record(cyc, exs->stream, exs->pc, exs->inst);
            if (ctl) {
                // The handler may have squashed the younger stages
                // (any redirect, including one to the current fetch
                // pc): refresh their interlock ring entries from the
                // live flags.
                for (unsigned y = 0; y < ex_off; ++y) {
                    const PipeSlot &sl = pipe[y];
                    bool on =
                        sl.valid && !sl.squashed && sl.stream == s;
                    mring[y] = on ? slotMasks(sl) : 0;
                    if (!on)
                        cring[y] = kSbClsPlain;
                }
            }
            if (cls != kSbClsPlain) {
                // Only control and raise-capable words can deactivate
                // the runner or make a vector deliverable; plain ones
                // skip the interrupt-state probe entirely.
                if (!m.intUnit_.isActive(s) ||
                    m.intUnit_.pendingVector(s)) {
                    // Deactivated, or a raise became deliverable: the
                    // issue below is a bubble either way (inactive, or
                    // vector serialising against the in-flight slot).
                    bail_vec = true;
                } else if (ctl && c.pc != pc_before) {
                    // Redirect: re-chain translation at the target.
                    blk = lookup(c.pc);
                    protos = blk->protos.data();
                    pcls = blk->cls.data();
                    nprotos = blk->protos.size();
                    idx = 0;
                }
            }
        }

        unsigned k_conf = 0;   // youngest conflicting stage, 0 = none
        std::uint8_t live = 0; // class union of unexecuted in-flights
        if (!bail_vec) {
            if (nprotos == 0) {
                // Redirect landed on an illegal word: issue consumes
                // it and raises the trap (cf. IssueStage::tick()).
                st.cycles = cyc;
                ++st.illegalInstructions;
                m.raiseInternal(s, kIllegalInstBit);
                ++c.pc;
                trap_issued = true;
                if constexpr (kLazyIfClear)
                    pipe[head] = PipeSlot{};
            } else {
                // Interlock test against the mask-ring union. The
                // head entry is zero at this point, so the whole ring
                // can be folded without excluding it.
                const PipeSlot &proto = protos[idx];
                std::uint64_t mu = 0;
                if constexpr (D != 0) {
                    for (unsigned k = 0; k < D; ++k)
                        mu |= mring[k];
                } else {
                    for (unsigned k = 0; k < depth; ++k)
                        mu |= mring[k];
                }
                bool blocked =
                    (proto.readsMask & static_cast<std::uint32_t>(mu)) !=
                        0 ||
                    ((proto.writesMask & kDepAwp) && (mu >> 32) != 0);
                if (!blocked) {
                    PipeSlot &ifs = pipe[head];
                    ifs = proto;
                    ifs.stream = s;
                    ifs.tag = tag;
                    cring[head] = pcls[idx];
                    mring[head] = slotMasks(proto);
                    tag = tag == 'z' ? 'a' : static_cast<char>(tag + 1);
                    ++idx;
                    ++c.pc;
                    ++issued;
                } else {
                    // Blocked: rescan the rings to find the youngest
                    // conflicting stage (stall length) and the class
                    // union of everything unexecuted (batch license).
                    // mring entries are nonzero only for slots the
                    // interlock scan would consider, and cring entries
                    // only for unexecuted unsquashed ones, so neither
                    // scan touches the 40-byte slots.
                    if constexpr (kLazyIfClear)
                        pipe[head] = PipeSlot{}; // IF stays empty
                    for (unsigned k = 1; k < depth; ++k) {
                        unsigned ri = wrap(head + k);
                        std::uint64_t mk = mring[ri];
                        if (k_conf == 0 && mk != 0 &&
                            ((proto.readsMask &
                              static_cast<std::uint32_t>(mk)) ||
                             ((proto.writesMask & kDepAwp) &&
                              (mk >> 32) != 0)))
                            k_conf = k;
                        live |= cring[ri];
                    }
                }
            }
        }

        ++cyc;
        if (bail_vec) {
            if constexpr (kLazyIfClear)
                pipe[head] = PipeSlot{}; // suppressed issue: IF empty
            reason = SbBail::Interrupt;
            break;
        }
        if (trap_issued) {
            reason = SbBail::Branch;
            break;
        }

        if (k_conf == 0 || live != kSbClsPlain)
            continue;

        // ---- stall batching ----
        // The issue is interlocked, and the conflict clears at a
        // known cycle: masks never change in flight and nothing new
        // issues while blocked, so protos[idx] stays blocked exactly
        // until every conflicting slot drains past WR. All unexecuted
        // in-flight words are plain (no control transfer, no raise),
        // so the intervening cycles cannot bail or change stream
        // state: run them through a reduced loop — advance, execute
        // whatever reaches EX, count — with no per-cycle interlock
        // scan, chain or bail checks.
        {
            Cycle stall = depth - k_conf - 1;
            stall = std::min(stall, limit - cyc);
            while (stall--) {
                head = wrap(head + depth - 1);
                pipe[head] = PipeSlot{};
                cring[head] = kSbClsPlain;
                mring[head] = 0;
                unsigned ei = wrap(head + ex_off);
                PipeSlot &e = pipe[ei];
                if (e.valid && !e.squashed && !e.executed) {
                    e.executed = true;
                    execHandler(e.uop)(m.executeStage_, e);
                    if (etrace && !e.squashed)
                        etrace->record(cyc, e.stream, e.pc, e.inst);
                }
                ++cyc;
            }
        }
    }

    if (cyc == cyc0)
        return 0; // bailed before the first cycle; step() proceeds

    st.cycles = cyc;
    m.nextTag_ = tag;
    if (head != 0)
        std::rotate(pipe, pipe + head, pipe + depth);
    return cyc - cyc0;
}

Cycle
SuperblockEngine::execute(Cycle budget)
{
    Machine &m = m_;
    MachineStats &st = m.stats_;
    if (st.cycles < retryAt_)
        return 0;

    // --- Engagement gate -------------------------------------------
    // Activity first: stream activation changes only on rare events
    // (FORK, HALT/CLRI, interrupt delivery), so a multi- or zero-
    // active reject is worth a retry memo — it keeps multi-stream
    // workloads at one compare per cycle. Wait states flip on every
    // external access, so their reject stays memo-free.
    unsigned active = 0;
    for (StreamId t = 0; t < kNumStreams; ++t) {
        if (m.intUnit_.isActive(t))
            active |= 1u << t;
    }
    if (active == 0 || (active & (active - 1)) != 0) {
        retryAt_ = st.cycles + kRetrySlow;
        return 0;
    }

    // Per-cycle diagnostics (pipe trace, observer) must see every
    // cycle; the exec trace is recorded in-block. Baseline halt mode
    // and a busy ABI mean wait bookkeeping the block loop skips.
    if (m.trace_ || m.observer_ || m.haltedUntilBusDone_ || m.abi_.busy())
        return 0;

    // Every stream must be ABI-ready: a waiting stream would tally
    // waitAbiCycles and wake on an ABI completion the block never
    // models.
    for (StreamId t = 0; t < kNumStreams; ++t) {
        if (m.streams_[t].wait != WaitState::Ready)
            return 0;
    }
    StreamId s = 0;
    while (!(active & (1u << s)))
        ++s;
    if (m.intUnit_.pendingVector(s))
        return 0; // vector entry serialises through the issue stage

    // Event horizon: the block may run only to the cycle before the
    // next queued device/ABI event, which step() will dispatch.
    Cycle next = m.timing_.nextEventTime();
    if (next <= st.cycles)
        return 0;
    if (next != kNoEvent)
        budget = std::min(budget, next - st.cycles);
    if (budget == 0)
        return 0;

    if (!alwaysPicks(s)) {
        retryAt_ = st.cycles + kRetrySlow;
        return 0;
    }

    // Pipe residue must be inert: anything still unexecuted has to
    // belong to the runner and be executable in-block (an in-flight
    // LD, or a leftover of a stream deactivated by a mask write,
    // drains through step() first — a few cycles at most).
    const unsigned depth = m.cfg_.pipeDepth;
    if (depth > kSbMaxDepth)
        return 0;
    for (unsigned i = 0; i < depth; ++i) {
        const PipeSlot &slot = m.pipe_[i];
        if (slot.valid && !slot.squashed && !slot.executed &&
            (slot.stream != s || !superblockExecutable(slot.uop)))
            return 0;
    }

    // blockLoop seeds its rings by raw index and rotates back to
    // index 0 = IF on exit: realign the machine's pipe ring to that
    // canonical order before engaging (one rotate per engagement).
    if (m.pipeHead_ != 0) {
        std::rotate(m.pipe_.begin(), m.pipe_.begin() + m.pipeHead_,
                    m.pipe_.end());
        m.pipeHead_ = 0;
    }

    SbBail reason = SbBail::Budget;
    std::uint64_t issued = 0;
    bool trap_issued = false;
    Cycle done =
        depth == kDisc1PipeDepth
            ? blockLoop<kDisc1PipeDepth>(s, budget, reason, issued,
                                         trap_issued)
            : blockLoop<0>(s, budget, reason, issued, trap_issued);
    if (done == 0)
        return 0;

    // --- Settle ----------------------------------------------------
    // Batch tallies, bit-identical to per-cycle finishCycle(): the
    // runner was engaged and ready every cycle (inactive only on a
    // final deactivation cycle), the others were inactive throughout,
    // non-issue cycles were bubbles, and the scheduler consumed one
    // slot per cycle.
    st.busyCycles += done;
    st.bubbles += done - issued - (trap_issued ? 1 : 0);
    m.sched_.skipSlots(static_cast<unsigned>(done % kScheduleSlots));
    for (StreamId t = 0; t < kNumStreams; ++t) {
        if (t != s)
            st.inactiveCycles[t] += done;
    }
    if (m.intUnit_.isActive(s)) {
        st.readyCycles[s] += done;
    } else {
        st.readyCycles[s] += done - 1;
        st.inactiveCycles[s] += 1;
    }

    st.superblockCycles += done;
    ++st.superblockEnters;
    ++st.superblockBails[static_cast<unsigned>(reason)];
    return done;
}

} // namespace disc
