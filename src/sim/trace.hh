/**
 * @file
 * Pipeline trace recorder and diagram renderer.
 *
 * Regenerates the paper's Figure 3.1/3.2 style charts: one row per
 * pipe stage, one column per cycle, each cell naming the instruction
 * occupying the stage as "<tag><stream+1>" (e.g. "a1", "f2"), with
 * squashed instructions bracketed.
 */

#ifndef DISC_SIM_TRACE_HH
#define DISC_SIM_TRACE_HH

#include <deque>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace disc
{

/**
 * Records retired instructions in order: cycle, stream, pc and the
 * decoded instruction. Useful for debugging programs and for tests
 * asserting on execution order across streams.
 */
class ExecTrace
{
  public:
    /** One retired instruction. */
    struct Entry
    {
        Cycle cycle;
        StreamId stream;
        PAddr pc;
        Instruction inst;
    };

    /** @param max_entries keep at most this many most-recent records. */
    explicit ExecTrace(std::size_t max_entries = 4096);

    /** Append one retirement record. */
    void record(Cycle cycle, StreamId stream, PAddr pc,
                const Instruction &inst);

    /** Records currently held (oldest first). */
    const std::deque<Entry> &entries() const { return entries_; }

    /** Total retirements seen (including evicted ones). */
    std::uint64_t total() const { return total_; }

    /** Render as "cycle stream pc: disassembly" lines. */
    std::string render() const;

    /** Drop all records. */
    void clear();

    /**
     * Serialize the retained entries, the retention cap and the total
     * count, so a parked session's trace survives eviction with the
     * machine checkpoint and the restored trace renders byte-identical
     * to a never-evicted one.
     */
    void save(Serializer &out) const;

    /** Restore state saved by save(); replaces current contents. */
    void restore(Deserializer &in);

  private:
    std::size_t maxEntries_;
    std::deque<Entry> entries_;
    std::uint64_t total_ = 0;
};

/** Records pipeline stage occupancy per cycle. */
class PipeTrace
{
  public:
    /** Occupancy of one stage in one cycle. */
    struct StageEntry
    {
        bool valid = false;
        bool squashed = false;
        StreamId stream = kNoStream;
        char tag = ' ';
    };

    /**
     * @param depth      pipe depth (rows).
     * @param max_cycles keep at most this many most-recent cycles.
     */
    explicit PipeTrace(unsigned depth, std::size_t max_cycles = 256);

    /** Append one cycle's stage occupancy (size must equal depth). */
    void record(Cycle cycle, const std::vector<StageEntry> &stages);

    /** Number of recorded cycles currently held. */
    std::size_t size() const { return columns_.size(); }

    /** Stage-name row labels for a given depth (IF, ID, ... WR). */
    static std::vector<std::string> stageNames(unsigned depth);

    /**
     * Render the figure: rows are stages (IF at the top), columns are
     * cycles. Squashed instructions render as "[a1]", bubbles as "--".
     */
    std::string render() const;

    /** Drop all recorded cycles. */
    void clear();

  private:
    unsigned depth_;
    std::size_t maxCycles_;
    std::deque<std::pair<Cycle, std::vector<StageEntry>>> columns_;
};

} // namespace disc

#endif // DISC_SIM_TRACE_HH
