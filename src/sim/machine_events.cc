/**
 * @file
 * Event scheduling: the TimingKernel that replaces the legacy
 * per-cycle device/ABI tick phases, and the run()-level fast-forward
 * that jumps over cycles where nothing observable can happen.
 *
 * Lazy clocks. Devices no longer tick every cycle; instead the kernel
 * remembers, per device, how many legacy ticks have been applied
 * (devSynced_) and batches the rest into one onEvent(n) call at the
 * moment it matters: when the device's countdown expires, when a bus
 * access is about to touch it, or at a cycle boundary that must be
 * externally exact (checkpoint, run() return). A device whose
 * countdown is c with ticks applied through S expires during step
 * S + c - 1, so its event is scheduled at that cycle; pure
 * synchronization never moves the expiry because the countdown
 * decrements linearly. The ABI gets the same treatment via abiSynced_.
 */

#include "sim/machine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace disc
{

void
TimingKernel::addDevice(Device *dev)
{
    for (Device *existing : devices_) {
        if (existing == dev)
            fatal("device attached twice");
    }
    devices_.push_back(dev);
    devSynced_.push_back(m_.stats_.cycles);
    dev->setScheduleListener(this);
    rescheduleDevice(devices_.size() - 1);
}

void
TimingKernel::syncDevice(std::size_t i, Cycle to)
{
    if (to <= devSynced_[i])
        return;
    Cycle n = to - devSynced_[i];
    devSynced_[i] = to;
    if (auto req = devices_[i]->onEvent(n))
        m_.raiseInternal(req->stream, req->bit);
}

void
TimingKernel::rescheduleDevice(std::size_t i)
{
    Cycle c = devices_[i]->nextEventIn();
    if (c == kNoDeviceEvent) {
        queue_.cancel(static_cast<std::uint32_t>(i));
        return;
    }
    if (c == 0)
        fatal("device %zu armed with a zero countdown", i);
    queue_.schedule(static_cast<std::uint32_t>(i), devSynced_[i] + c - 1);
}

void
TimingKernel::dispatch()
{
    Cycle now = m_.stats_.cycles;
    if (queue_.empty() || queue_.nextTime() > now)
        return;
    dueScratch_.clear();
    queue_.popDue(now, dueScratch_);
    // Same-cycle events replay the legacy phase order: devices in
    // attach order first, the ABI completion (kAbiSource, the largest
    // id) last.
    std::sort(dueScratch_.begin(), dueScratch_.end(),
              [](const EventQueue::Event &a, const EventQueue::Event &b) {
                  return a.source < b.source;
              });
    for (const EventQueue::Event &ev : dueScratch_) {
        if (ev.source != kAbiSource) {
            syncDevice(ev.source, now + 1);
            rescheduleDevice(ev.source);
            continue;
        }
        // The completing access reads or writes its target device, so
        // that device's clock must be exact first.
        Addr addr = m_.abi_.pendingAddr();
        syncDeviceForAccess(addr);
        auto comp = m_.abi_.advance(now + 1 - abiSynced_);
        abiSynced_ = now + 1;
        if (!comp)
            panic("ABI completion event fired with no completion");
        rescheduleDeviceAt(addr);
        m_.abiStage_.completeAccess(*comp);
    }
}

void
TimingKernel::scheduleAbiCompletion()
{
    Cycle now = m_.stats_.cycles;
    // The legacy loop ticked the ABI from the cycle after the request;
    // a latency-L access started during step R completes during step
    // R + L.
    abiSynced_ = now + 1;
    queue_.schedule(kAbiSource, now + m_.abi_.remainingCycles());
}

void
TimingKernel::syncDeviceForAccess(Addr addr)
{
    Addr offset = 0;
    Device *dev = m_.bus_.decode(addr, offset);
    if (!dev)
        return;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        if (devices_[i] == dev) {
            syncDevice(i, m_.stats_.cycles + 1);
            return;
        }
    }
    fatal("bus access to a device the timing kernel never saw");
}

void
TimingKernel::rescheduleDeviceAt(Addr addr)
{
    Addr offset = 0;
    Device *dev = m_.bus_.decode(addr, offset);
    if (!dev)
        return;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        if (devices_[i] == dev) {
            rescheduleDevice(i);
            return;
        }
    }
}

void
TimingKernel::syncAll()
{
    // Boundary semantics: bring every clock up to "stats_.cycles legacy
    // ticks applied". Dispatch has already fired everything due before
    // this cycle, so no sync below can cross an expiry or completion.
    Cycle now = m_.stats_.cycles;
    for (std::size_t i = 0; i < devices_.size(); ++i)
        syncDevice(i, now);
    if (m_.abi_.busy() && abiSynced_ < now) {
        if (m_.abi_.advance(now - abiSynced_))
            panic("ABI completed during a boundary sync");
    }
    if (abiSynced_ < now)
        abiSynced_ = now;
}

void
TimingKernel::rebuild()
{
    queue_.clear();
    Cycle now = m_.stats_.cycles;
    abiSynced_ = now;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        devSynced_[i] = now;
        rescheduleDevice(i);
    }
    if (m_.abi_.busy())
        queue_.schedule(kAbiSource, now + m_.abi_.remainingCycles() - 1);
}

void
TimingKernel::deviceScheduleChanged(Device &dev)
{
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        if (devices_[i] == &dev) {
            // The skipped span was event-free by contract (the device
            // was quiescent), so jump its clock without onEvent.
            devSynced_[i] = m_.stats_.cycles;
            rescheduleDevice(i);
            return;
        }
    }
    fatal("schedule change from a device the timing kernel never saw");
}

Cycle
Machine::run(Cycle max_cycles, bool stop_when_idle)
{
    Cycle start = stats_.cycles;
    while (stats_.cycles - start < max_cycles) {
        if (stop_when_idle && idle())
            break;
        if (ffEnabled_) {
            Cycle left = max_cycles - (stats_.cycles - start);
            if (Cycle span = skippableCycles(left)) {
                fastForward(span);
                continue;
            }
        }
        if (sbEnabled_ && uopsEnabled_ &&
            stats_.cycles >= sblock_.retryAt()) {
            Cycle left = max_cycles - (stats_.cycles - start);
            if (sblock_.execute(left))
                continue;
        }
        step();
    }
    // Countdowns and busy counters must read exact between run() calls.
    timing_.syncAll();
    return stats_.cycles - start;
}

/**
 * How many upcoming cycles are provably dead: no queued event fires,
 * nothing live is in the pipe and no stream can issue, so every one of
 * them would be a bubble (or a frozen halt cycle). Capped at @p budget.
 */
Cycle
Machine::skippableCycles(Cycle budget) const
{
    if (!haltedUntilBusDone_) {
        // Cheap CPU-bound early-out: something issued last cycle.
        const PipeSlot &s0 = pipeAt(0);
        if (s0.valid && !s0.squashed)
            return 0;
    }
    if (trace_)
        return 0; // per-cycle pipe diagrams must see every cycle
    Cycle now = stats_.cycles;
    Cycle next = timing_.nextEventTime();
    if (next <= now)
        return 0;
    if (!haltedUntilBusDone_) {
        for (const PipeSlot &slot : pipe_) {
            if (slot.valid && !slot.squashed)
                return 0;
        }
        if (issueStage_.readyMask() != 0)
            return 0;
    }
    if (next == kNoEvent)
        return budget;
    return std::min(budget, next - now);
}

/**
 * Account @p span dead cycles in bulk. Every per-cycle quantity is
 * constant across the span (no stream changes state without an event
 * or an issue), so the bulk update is bit-identical to stepping: the
 * same wait-state tallies, bubbles, scheduler cursor movement and
 * squashed-slot drain. With an observer attached the cycles are
 * stepped for real so every onCycleEnd hook still fires.
 */
void
Machine::fastForward(Cycle span)
{
    stats_.fastForwardedCycles += span;
    ++stats_.fastForwards;
    if (observer_) {
        for (Cycle i = 0; i < span; ++i)
            step();
        return;
    }
    bool eng = engaged();
    for (StreamId s = 0; s < kNumStreams; ++s) {
        if (streams_[s].wait != WaitState::Ready)
            stats_.waitAbiCycles[s] += span;
        else if (intUnit_.isActive(s))
            stats_.readyCycles[s] += span;
        else
            stats_.inactiveCycles[s] += span;
    }
    stats_.cycles += span;
    if (eng)
        stats_.busyCycles += span;
    if (!haltedUntilBusDone_) {
        // Each dead cycle was a bubble: the scheduler still consumed a
        // slot, and any squashed slots aged out of the pipe.
        stats_.bubbles += span;
        sched_.skipSlots(
            static_cast<unsigned>(span % kScheduleSlots));
        Cycle shifts = std::min<Cycle>(span, cfg_.pipeDepth);
        for (Cycle i = 0; i < shifts; ++i)
            advancePipe();
    }
}

} // namespace disc
