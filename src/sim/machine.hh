/**
 * @file
 * The cycle-accurate DISC1 machine model (paper section 3.7).
 *
 * DISC1 is a 16-bit Harvard load/store machine with up to four
 * resident instruction streams, a four-stage pipeline (IF, ID/RR, EX,
 * WR), a 16-slot hardware scheduler with dynamic reallocation, a
 * stack-window register file per stream, 2 KB of shared internal
 * memory, an asynchronous external data bus with a pseudo-DMA
 * interface, and per-stream vectored interrupts.
 *
 * Pipeline model
 * --------------
 * One instruction issues per cycle from the stream chosen by the
 * scheduler. Semantics execute when an instruction reaches the EX
 * stage (depth-2); the WR stage models writeback occupancy. Data
 * hazards are modelled with a per-stream interlock: a stream cannot
 * issue an instruction whose sources (registers, flags, AWP, MULH
 * latch) are written by one of its own in-flight instructions — the
 * interleaving principle means other streams use those slots instead.
 *
 * Control hazards follow the paper's simplifying assumption: when a
 * redirect executes (taken branch, jump, call, return, vector entry),
 * all younger in-flight instructions of the same stream are flushed.
 *
 * External accesses (LD/ST) hand the access to the ABI at EX. If the
 * bus is busy, the instruction itself is flushed and retried when the
 * stream leaves its wait state; if the access starts with a non-zero
 * access time, younger same-stream instructions are flushed and the
 * stream waits. Completion writes the destination register and
 * re-activates all waiting streams.
 *
 * A "standard processor" baseline mode is provided (single stream,
 * pipe halts during external waits instead of flushing) matching the
 * Ps model of section 4.1.
 *
 * Timing core
 * -----------
 * The cycle loop is event-scheduled (sim/stages.hh): devices and the
 * ABI register completions/expiries with a min-heap event queue
 * instead of being polled every cycle, step() delegates to per-stage
 * modules, and run() fast-forwards across spans where every resident
 * stream is waiting or inactive. Skipped cycles are still counted in
 * MachineStats (the paper's tables are defined over architectural
 * cycles), so both stepping modes produce bit-identical results.
 */

#ifndef DISC_SIM_MACHINE_HH
#define DISC_SIM_MACHINE_HH

#include <array>
#include <memory>
#include <vector>

#include "arch/bus.hh"
#include "arch/interrupts.hh"
#include "arch/memory.hh"
#include "arch/scheduler.hh"
#include "arch/stack_window.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/predecode.hh"
#include "isa/program.hh"
#include "sim/observer.hh"
#include "sim/pipeline_state.hh"
#include "sim/stages.hh"
#include "sim/superblock.hh"
#include "sim/trace.hh"

namespace disc
{

/** Machine construction parameters. */
struct MachineConfig
{
    /** Pipeline depth in stages (>= 3; DISC1 uses 4). */
    unsigned pipeDepth = kDisc1PipeDepth;

    /** Scheduler policy (dynamic reallocation vs strict static). */
    Scheduler::Mode schedMode = Scheduler::Mode::Dynamic;

    /**
     * Branch delay slots: on a taken control transfer, this many of
     * the stream's in-flight younger instructions (in program order
     * after the branch) execute instead of being flushed — the
     * conventional alternative the paper contrasts with interleaving.
     * Only instructions already fetched benefit; programs must be
     * scheduled delay-slot aware. Default 0 (DISC semantics).
     */
    unsigned branchDelaySlots = 0;

    /**
     * Standard-processor baseline: halt the whole pipe during external
     * waits (no flush, no overlap) — the single-stream machine the
     * paper compares against.
     */
    bool baselineHaltOnWait = false;

    /** First word of stream 0's stack region in internal memory. */
    Addr stackBase = kStackRegionBase;

    /** Words of stack region per stream. */
    Addr stackWords = kStackRegionWords;

    /**
     * Let run() jump over cycles where nothing observable can happen
     * (all streams waiting/inactive, no event due). Semantics- and
     * stats-preserving; disable to force per-cycle stepping. The
     * DISC_NO_FASTFORWARD environment variable (set non-zero)
     * overrides this to false.
     */
    bool fastForward = true;

    /**
     * Dispatch EX semantics through the predecoded micro-op handler
     * table (isa/uops.hh) instead of the legacy opcode switch. Both
     * paths are bit-identical; the switch is kept as the reference.
     * The DISC_NO_UOP environment variable (set non-zero) overrides
     * this to false.
     */
    bool uopDispatch = true;

    /**
     * Execute straight-line code through the superblock translation
     * tier (sim/superblock.hh) when the machine is in the single-
     * active-stream regime. Bit-identical to per-cycle stepping; the
     * DISC_NO_SUPERBLOCK environment variable (set non-zero)
     * overrides this to false. Requires uopDispatch (the tier runs
     * the same micro-op handlers).
     */
    bool superblockExec = true;

    /** Maximum words per translated superblock (>= 1). */
    unsigned superblockMaxLen = 64;

    /**
     * Let a MachineBatch (sim/batch.hh) drive this machine through
     * its batched hot lane when several machines run in lockstep.
     * Bit-identical to scalar stepping; the DISC_NO_BATCH environment
     * variable (set non-zero) overrides this to false, forcing every
     * batch member onto the scalar path.
     */
    bool batchExec = true;
};

/** Counters exposed by the machine. */
struct MachineStats
{
    Cycle cycles = 0;          ///< total cycles simulated
    Cycle busyCycles = 0;      ///< cycles with any stream engaged
    std::array<std::uint64_t, kNumStreams> retired{};
    std::uint64_t totalRetired = 0;
    std::uint64_t squashedJump = 0;   ///< flushed by control redirects
    std::uint64_t squashedWait = 0;   ///< flushed by external accesses
    std::uint64_t squashedDeact = 0;  ///< flushed by HALT/CLRI deactivation
    std::uint64_t bubbles = 0;        ///< issue slots with no ready stream
    std::uint64_t redirects = 0;      ///< taken control transfers
    std::uint64_t jumpTypeRetired = 0;
    std::uint64_t externalReads = 0;
    std::uint64_t externalWrites = 0;
    std::uint64_t busBusyRejections = 0;
    std::uint64_t vectorsTaken = 0;
    std::uint64_t stackOverflows = 0;
    std::uint64_t illegalInstructions = 0;
    std::uint64_t busFaults = 0;

    /**
     * Per-stream wait-state breakdown: every simulated cycle each
     * stream is counted as ready (active, may be scheduled), waiting
     * on the ABI (bus-free retry or own access in flight), or
     * inactive. The three sum to `cycles` per stream.
     */
    std::array<std::uint64_t, kNumStreams> readyCycles{};
    std::array<std::uint64_t, kNumStreams> waitAbiCycles{};
    std::array<std::uint64_t, kNumStreams> inactiveCycles{};

    /**
     * Fast-forward accounting: cycles covered by event-skip jumps
     * (still included in `cycles` and every per-cycle counter above)
     * and the number of jumps taken. These are the only counters that
     * differ between stepping modes.
     */
    Cycle fastForwardedCycles = 0;
    std::uint64_t fastForwards = 0;

    /**
     * Superblock-tier accounting: cycles simulated inside translated
     * blocks (included in `cycles` and every per-cycle counter
     * above), block-executor engagements, and exits by bail reason
     * (indexed by SbBail). Like the fast-forward counters, these are
     * diagnostics of the stepping mode, not architectural state, and
     * are excluded from checkpoints and digests.
     */
    Cycle superblockCycles = 0;
    std::uint64_t superblockEnters = 0;
    std::array<std::uint64_t, kNumSbBails> superblockBails{};

    /** Utilisation: retired instructions per machine-busy cycle. */
    double utilization() const;

    /**
     * The paper's standard-processor utilisation computed from this
     * run's totals: E / (E + B + (pipe-1) * Njump), with B the data
     * bus busy cycles (passed in) and the pipe depth of the run.
     */
    double standardPs(Cycle bus_busy_cycles, unsigned pipe_depth) const;
};

/** The DISC1 machine. */
class Machine
{
  public:
    explicit Machine(MachineConfig cfg = {});

    /** Load a program (code + internal-memory preloads) and reset. */
    void load(const Program &prog);

    /** Reset architectural state; keeps the loaded program/devices. */
    void reset();

    /** Map a device on the external data bus. */
    void attachDevice(Addr base, Addr size, Device *device);

    /** Activate stream @p s at @p entry (external FORK). */
    void startStream(StreamId s, PAddr entry);

    /** Raise an external interrupt request. */
    void raiseExternal(StreamId s, unsigned bit);

    /** Advance one cycle. */
    void step();

    /**
     * Run until idle (all streams inactive, pipe drained, bus quiet)
     * or until @p max_cycles elapse. When fast-forward is enabled the
     * kernel jumps over dead spans; results are identical either way.
     * @param stop_when_idle pass false to always run max_cycles.
     * @return cycles actually simulated.
     */
    Cycle run(Cycle max_cycles, bool stop_when_idle = true);

    /** True when nothing can make progress without external input. */
    bool idle() const;

    /** True when run() may skip dead cycles (config + environment). */
    bool fastForwardEnabled() const { return ffEnabled_; }

    /** Override the fast-forward setting (tests, tools). */
    void setFastForward(bool on) { ffEnabled_ = on; }

    /** True when EX uses the micro-op table (config + environment). */
    bool uopDispatchEnabled() const { return uopsEnabled_; }

    /** Override the micro-op dispatch setting (tests, tools). */
    void setUopDispatch(bool on) { uopsEnabled_ = on; }

    /** True when run() may use superblocks (config + environment). */
    bool superblockExecEnabled() const { return sbEnabled_; }

    /** Override the superblock setting (tests, tools). */
    void setSuperblockExec(bool on) { sbEnabled_ = on; }

    /** True when a batch may use the hot lane (config + environment). */
    bool batchExecEnabled() const { return batchEnabled_; }

    /** Override the batched-execution setting (tests, tools). */
    void setBatchExec(bool on) { batchEnabled_ = on; }

    /** Superblock engine (cache inspection in tests/diagnostics). */
    const SuperblockEngine &superblocks() const { return sblock_; }

    // --- Architectural state access (tests, examples, probes) ---

    /** Read an architected register of a stream. */
    Word readReg(StreamId s, unsigned r) const;

    /** Write an architected register of a stream. */
    void writeReg(StreamId s, unsigned r, Word value);

    /** Current fetch PC of a stream. */
    PAddr pc(StreamId s) const;

    /** Stream's stack window. */
    const StackWindow &window(StreamId s) const;

    /** Shared internal memory. */
    InternalMemory &internalMemory() { return imem_; }
    const InternalMemory &internalMemory() const { return imem_; }

    /** Interrupt unit. */
    InterruptUnit &interrupts() { return intUnit_; }
    const InterruptUnit &interrupts() const { return intUnit_; }

    /** Stream scheduler. */
    Scheduler &scheduler() { return sched_; }
    const Scheduler &scheduler() const { return sched_; }

    /** External bus (for decode tests). */
    Bus &bus() { return bus_; }

    /** Asynchronous bus interface. */
    const AsyncBusInterface &abi() const { return abi_; }

    /** Counters. */
    const MachineStats &stats() const { return stats_; }

    /** Interrupt latency samples (cycles from raise to vector entry). */
    const Histogram &latencyHistogram() const { return latency_; }

    /** Attach a pipeline trace recorder (nullptr to detach). */
    void setTrace(PipeTrace *trace) { trace_ = trace; }

    /**
     * Attach a micro-architectural observer (nullptr to detach).
     * Every hook site is guarded by a null check, so a detached
     * machine pays one predictable branch per event at most.
     */
    void setObserver(MachineObserver *obs) { observer_ = obs; }

    /**
     * Attach an instruction-level execution trace (nullptr to
     * detach). External accesses are recorded when they execute at
     * EX, i.e. when the access is handed to the ABI.
     */
    void setExecTrace(ExecTrace *trace) { execTrace_ = trace; }

    /** Pipe depth configured for this machine. */
    unsigned pipeDepth() const { return cfg_.pipeDepth; }

    /**
     * Canonical board spec this machine was composed from (empty for
     * hand-wired machines). Board::attachTo() records it; checkpoint
     * v3 embeds it so restore can verify the receiving machine
     * composed the same board.
     */
    const std::string &boardSpec() const { return boardSpec_; }

    /** Record the canonical board spec (see boardSpec()). */
    void setBoardSpec(std::string spec) { boardSpec_ = std::move(spec); }

    /** True while the stream waits on the ABI. */
    bool isWaiting(StreamId s) const;

    /**
     * Serialize the complete machine state: memories, registers,
     * windows, interrupt state, scheduler, ABI, pipeline contents,
     * statistics, and every attached device (in attach order). The
     * loaded program, device configuration and the latency histogram
     * are NOT included — restore into a machine constructed with the
     * same config, program and devices.
     */
    std::vector<std::uint8_t> saveState() const;

    /**
     * Restore a checkpoint produced by saveState() on an identically
     * configured machine. fatal() on any mismatch.
     */
    void restoreState(const std::vector<std::uint8_t> &bytes);

  private:
    friend class VectorStage;
    friend class IssueStage;
    friend class ExecuteStage;
    friend class AbiStage;
    friend class TimingKernel;
    friend class SuperblockEngine;
    friend class MachineBatch;
    friend struct ExecOps;

    MachineConfig cfg_;
    std::string boardSpec_; ///< canonical board text (checkpoint v3)
    InternalMemory imem_;
    ProgramMemory pmem_;
    PredecodeTable pdec_; ///< per-address decode + dep masks, built at load()
    Bus bus_;
    /// Mutable: lazily-deferred bus time is materialized from const
    /// snapshots (saveState) without changing observable behavior.
    mutable AsyncBusInterface abi_;
    InterruptUnit intUnit_;
    Scheduler sched_;
    std::vector<std::unique_ptr<StackWindow>> windows_;
    std::array<StreamCtx, kNumStreams> streams_;
    std::array<Word, kNumGlobalRegs> globals_{};
    /// Pipeline slots as a ring: stage i lives at
    /// pipe_[(pipeHead_ + i) % depth], stage 0 = IF .. depth-1 = WR.
    /// advancePipe() rotates the head instead of copying slots; use
    /// pipeAt() for stage-indexed access, plain iteration for
    /// order-independent scans (interlocks, engaged()).
    std::vector<PipeSlot> pipe_;
    unsigned pipeHead_ = 0; ///< ring index of the IF stage
    MachineStats stats_;
    Histogram latency_;
    PipeTrace *trace_ = nullptr;
    ExecTrace *execTrace_ = nullptr;
    MachineObserver *observer_ = nullptr;
    std::vector<PipeTrace::StageEntry> traceScratch_;
    char nextTag_ = 'a';
    Cycle haltedUntilBusDone_ = 0; ///< baseline mode flag (bool-ish)
    bool ffEnabled_ = true;
    bool uopsEnabled_ = true;
    bool sbEnabled_ = true;
    bool batchEnabled_ = true;

    // Stage modules and the timing kernel (sim/stages.hh). Declared
    // last so they are constructed after the state they reference.
    VectorStage vectorStage_;
    IssueStage issueStage_;
    ExecuteStage executeStage_;
    AbiStage abiStage_;
    SuperblockEngine sblock_;
    mutable TimingKernel timing_; ///< mutable: see abi_ above

    // -- shared helpers (machine.cc) --
    StreamCtx &ctx(StreamId s);
    const StreamCtx &ctx(StreamId s) const;

    /** Slot at pipeline stage @p stage (0 = IF .. depth-1 = WR). */
    PipeSlot &
    pipeAt(unsigned stage)
    {
        unsigned i = pipeHead_ + stage;
        if (i >= cfg_.pipeDepth)
            i -= cfg_.pipeDepth;
        return pipe_[i];
    }
    const PipeSlot &
    pipeAt(unsigned stage) const
    {
        unsigned i = pipeHead_ + stage;
        if (i >= cfg_.pipeDepth)
            i -= cfg_.pipeDepth;
        return pipe_[i];
    }
    StackWindow &win(StreamId s);
    const StackWindow &win(StreamId s) const;

    void raiseInternal(StreamId s, unsigned bit);
    void squashYounger(StreamId s, unsigned ex_stage,
                       std::uint64_t *counter, PipeEvent ev);
    bool engaged() const;
    void recordTrace();
    void advancePipe();
    void finishCycle(bool was_engaged);
    Cycle skippableCycles(Cycle budget) const;
    void fastForward(Cycle span);
};

} // namespace disc

#endif // DISC_SIM_MACHINE_HH
