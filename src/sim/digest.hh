/**
 * @file
 * Run digests: one 64-bit fingerprint for "did these two runs end in
 * exactly the same place".
 *
 * The digest folds the machine's full checkpoint image (memories,
 * registers, windows, scheduler, ABI, pipeline contents, devices and
 * every statistics counter except the stepping-mode diagnostics,
 * which saveState() already excludes) together with the rendered
 * execution trace. Two runs of the same workload — offline via
 * disc-run, served via disc-serve, split across any sequence of
 * run/step requests, parked and restored any number of times — must
 * produce the same digest or one of them is wrong.
 */

#ifndef DISC_SIM_DIGEST_HH
#define DISC_SIM_DIGEST_HH

#include <cstdint>

#include "sim/machine.hh"
#include "sim/trace.hh"

namespace disc
{

/** Digest of a machine's architectural state plus its exec trace. */
std::uint64_t runDigest(const Machine &m, const ExecTrace &trace);

} // namespace disc

#endif // DISC_SIM_DIGEST_HH
