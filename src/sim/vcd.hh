/**
 * @file
 * VCD (Value Change Dump) waveform writer for machine activity.
 *
 * Records per-cycle machine signals — per-stream activity/wait/PC,
 * issue-stream id, bus busy, pipe occupancy — in the standard IEEE
 * 1364 VCD format, viewable in GTKWave or any waveform viewer. The
 * writer is pull-based: call sample(machine) once per cycle (or wire
 * it up around Machine::step in your driver loop).
 */

#ifndef DISC_SIM_VCD_HH
#define DISC_SIM_VCD_HH

#include <string>

#include "common/types.hh"

namespace disc
{

class Machine;

/** Streams machine state into VCD text. */
class VcdWriter
{
  public:
    VcdWriter();

    /**
     * Sample the machine's observable state for the current cycle.
     * Emits value changes only (VCD semantics).
     */
    void sample(const Machine &machine);

    /** The VCD document accumulated so far (header + changes). */
    std::string text() const;

    /** Number of samples taken. */
    Cycle samples() const { return samples_; }

  private:
    struct StreamSignals
    {
        int active = -1;   ///< -1 = never emitted
        int waiting = -1;
        std::uint32_t pc = 0xffffffff;
    };

    std::string body_;
    Cycle samples_ = 0;
    StreamSignals streams_[kNumStreams];
    int busBusy_ = -1;
    int issueStream_ = -100; ///< kNumStreams = bubble
    std::uint64_t retired_ = ~0ull;

    void emitHeader();
    void change(const char *id, const std::string &value);
};

} // namespace disc

#endif // DISC_SIM_VCD_HH
