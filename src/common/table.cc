#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace disc
{

Table::Table(std::string title)
    : title_(std::move(title))
{}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size()) {
        panic("Table row width %zu does not match header width %zu",
              row.size(), header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
Table::cell(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
Table::cell(long long v)
{
    return strprintf("%lld", v);
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c >= width.size())
                width.resize(c + 1, 0);
            width[c] = std::max(width[c], row[c].size());
        }
    }

    auto format_row = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            // First column left-aligned (row label), rest right-aligned.
            if (c == 0)
                line += strprintf(" %-*s |", static_cast<int>(width[c]),
                                  v.c_str());
            else
                line += strprintf(" %*s |", static_cast<int>(width[c]),
                                  v.c_str());
        }
        return line + "\n";
    };

    std::string rule = "+";
    for (auto w : width)
        rule += std::string(w + 2, '-') + "+";
    rule += "\n";

    std::string out;
    if (!title_.empty())
        out += title_ + "\n";
    out += rule;
    if (!header_.empty()) {
        out += format_row(header_);
        out += rule;
    }
    for (const auto &row : rows_)
        out += format_row(row);
    out += rule;
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace disc
