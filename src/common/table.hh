/**
 * @file
 * ASCII table renderer used by the benchmark harnesses to print
 * paper-style tables (Tables 4.1, 4.2, 4.3 and the sweeps).
 */

#ifndef DISC_COMMON_TABLE_HH
#define DISC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace disc
{

/**
 * A simple left/right-aligned column table with a title row. Cells are
 * strings; numeric helpers format with fixed precision.
 */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title);

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string cell(double v, int precision = 3);

    /** Format an integer cell. */
    static std::string cell(long long v);

    /** Render the full table. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace disc

#endif // DISC_COMMON_TABLE_HH
