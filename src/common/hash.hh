/**
 * @file
 * FNV-1a hashing for result digests.
 *
 * Used wherever two runs must be compared for bit-identity without
 * shipping the full state around: the serving layer digests a
 * session's checkpoint bytes and trace text, and disc-run can print
 * the same digest for an offline run of the same workload.
 */

#ifndef DISC_COMMON_HASH_HH
#define DISC_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace disc
{

/** 64-bit FNV-1a offset basis. */
constexpr std::uint64_t kFnv64Basis = 0xcbf29ce484222325ull;

/** Fold @p len bytes into a running FNV-1a state. */
constexpr std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t len,
        std::uint64_t state = kFnv64Basis)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    for (std::size_t i = 0; i < len; ++i) {
        state ^= data[i];
        state *= kPrime;
    }
    return state;
}

/** Fold a byte vector into a running FNV-1a state. */
inline std::uint64_t
fnv1a64(const std::vector<std::uint8_t> &bytes,
        std::uint64_t state = kFnv64Basis)
{
    return fnv1a64(bytes.data(), bytes.size(), state);
}

/** Fold a string's bytes into a running FNV-1a state. */
inline std::uint64_t
fnv1a64(const std::string &text, std::uint64_t state = kFnv64Basis)
{
    return fnv1a64(reinterpret_cast<const std::uint8_t *>(text.data()),
                   text.size(), state);
}

} // namespace disc

#endif // DISC_COMMON_HASH_HH
