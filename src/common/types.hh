/**
 * @file
 * Fundamental scalar types shared by every DISC module.
 *
 * DISC1 is a 16-bit Harvard machine: the data path is 16 bits wide, the
 * program bus is 24 bits wide (one instruction word per fetch), and up to
 * four instruction streams are resident at once.
 */

#ifndef DISC_COMMON_TYPES_HH
#define DISC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace disc
{

/** 16-bit architectural data word. */
using Word = std::uint16_t;

/** Signed view of a data word (two's complement). */
using SWord = std::int16_t;

/** 32-bit double word (multiplier result, intermediate arithmetic). */
using DWord = std::uint32_t;

/** Data address (16-bit external space; internal memory is a subrange). */
using Addr = std::uint16_t;

/** Program-memory address (instruction index; PC is 16 bits). */
using PAddr = std::uint16_t;

/** Raw 24-bit instruction word, stored right-aligned in 32 bits. */
using InstWord = std::uint32_t;

/** Simulated cycle count. */
using Cycle = std::uint64_t;

/** Instruction-stream identifier (0 .. numStreams-1). */
using StreamId = std::uint8_t;

/** Sentinel meaning "no stream" (pipeline bubble, unassigned slot). */
constexpr StreamId kNoStream = std::numeric_limits<StreamId>::max();

/** Number of hardware instruction streams in DISC1. */
constexpr unsigned kNumStreams = 4;

/** Number of scheduler slots: throughput granularity is 1/16. */
constexpr unsigned kScheduleSlots = 16;

/** Architected register-file shape (per stream view). */
constexpr unsigned kNumWindowRegs = 8;   ///< R0..R7 stack-window locals
constexpr unsigned kNumGlobalRegs = 4;   ///< G0..G3 shared between streams
constexpr unsigned kNumSpecialRegs = 4;  ///< S0..S3 per-stream special
constexpr unsigned kNumRegs = 16;        ///< total architected names

/** Internal (on-chip) data memory size in 16-bit words (2 KB). */
constexpr unsigned kInternalMemWords = 1024;

/** Default pipeline depth of the DISC1 implementation. */
constexpr unsigned kDisc1PipeDepth = 4;

/** Interrupt priority levels per stream (bit 7 highest, bit 0 background). */
constexpr unsigned kNumIntLevels = 8;

} // namespace disc

#endif // DISC_COMMON_TYPES_HH
