/**
 * @file
 * Lightweight statistics accumulators used by probes, the stochastic
 * model and the experiment driver.
 */

#ifndef DISC_COMMON_STATS_HH
#define DISC_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace disc
{

/**
 * Running mean / variance / min / max over double-valued samples
 * (Welford's online algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    std::uint64_t count() const { return n_; }

    /** Sample mean (0 if empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Standard error of the mean. */
    double stderror() const;

    /** Minimum sample (+inf if empty). */
    double min() const { return min_; }

    /** Maximum sample (-inf if empty). */
    double max() const { return max_; }

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over non-negative integer samples with an
 * overflow bucket; used for latency distributions.
 */
class Histogram
{
  public:
    /**
     * @param num_bins number of unit-width bins starting at 0.
     */
    explicit Histogram(std::size_t num_bins = 64);

    /** Record one sample. */
    void add(std::uint64_t value);

    /** Total number of samples. */
    std::uint64_t count() const { return count_; }

    /** Count in a given bin (bin == num_bins means overflow). */
    std::uint64_t binCount(std::size_t bin) const;

    /** Number of unit bins (excluding overflow). */
    std::size_t numBins() const { return bins_.size(); }

    /** Sample mean. */
    double mean() const;

    /** Maximum recorded value. */
    std::uint64_t maxValue() const { return max_; }

    /**
     * Smallest value v such that at least fraction q of samples are <= v.
     * Overflowed samples are treated as numBins().
     */
    std::uint64_t percentile(double q) const;

    /** Render a compact ASCII bar chart. */
    std::string render(std::size_t max_width = 50) const;

  private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace disc

#endif // DISC_COMMON_STATS_HH
