#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <vector>

namespace disc
{

namespace
{

std::atomic<bool> quietFlag{false};

thread_local std::string threadTag;

/**
 * Emit one fully formatted line with a single stream write. stdio
 * locks the FILE around each call, so lines from concurrent threads
 * (ThreadPool workers, server connection handlers) never interleave
 * mid-line; assembling prefix + message + newline first keeps it to
 * exactly one call.
 */
void
emitLine(const char *level, const std::string &msg)
{
    std::string line;
    line.reserve(threadTag.size() + msg.size() + 16);
    line += level;
    line += ": ";
    if (!threadTag.empty()) {
        line += '[';
        line += threadTag;
        line += "] ";
    }
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    emitLine("panic", msg);
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    emitLine("fatal", msg);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    emitLine("warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    emitLine("info", msg);
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

void
setLogTag(const std::string &tag)
{
    threadTag = tag;
}

const std::string &
logTag()
{
    return threadTag;
}

} // namespace disc
