#include "common/threadpool.hh"

#include <cstdlib>

namespace disc
{

namespace
{

/**
 * True while the current thread is executing pool work (a worker, or
 * a caller participating in its own parallelFor). Nested parallelFor
 * calls from such a thread run inline.
 */
thread_local bool tls_in_pool = false;

unsigned
globalPoolSize()
{
    if (const char *env = std::getenv("DISC_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        return v > 0 ? static_cast<unsigned>(v) : 1;
    }
    return 0; // hardware_concurrency
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    size_ = threads;
    // The caller participates in its own jobs, so it counts as one of
    // the size_ threads; spawn the rest.
    workers_.reserve(size_ - 1);
    for (unsigned t = 1; t < size_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

bool
ThreadPool::insideWorker()
{
    return tls_in_pool;
}

void
ThreadPool::parallelForGroups(
    std::size_t n, std::size_t group,
    const std::function<void(std::size_t, std::size_t)> &body)
{
    if (group == 0)
        group = 1;
    std::size_t groups = (n + group - 1) / group;
    parallelFor(groups, [&](std::size_t g) {
        std::size_t begin = g * group;
        std::size_t end = begin + group < n ? begin + group : n;
        body(begin, end);
    });
}

void
ThreadPool::runIndices(Job &job)
{
    // Lock-free claim loop: fetch_add hands out each index exactly
    // once. The counter may overshoot n by up to one per thread; only
    // claims below n execute.
    std::size_t i;
    while ((i = job.next.fetch_add(1, std::memory_order_relaxed)) <
           job.n) {
        (*job.body)(i);
        job.done.fetch_add(1, std::memory_order_release);
    }
}

void
ThreadPool::workerLoop()
{
    tls_in_pool = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        workCv_.wait(lk, [this, seen] {
            return stop_ || (job_ && jobSeq_ != seen);
        });
        if (stop_)
            return;
        Job *j = job_;
        seen = jobSeq_;
        ++j->active;
        lk.unlock();
        runIndices(*j);
        lk.lock();
        // Only after deregistering may the caller destroy the Job
        // (runIndices probed j->next once more after its last index).
        if (--j->active == 0 &&
            j->done.load(std::memory_order_acquire) == j->n)
            doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (size_ <= 1 || n == 1 || insideWorker()) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::lock_guard<std::mutex> caller(callerMutex_);
    Job job;
    job.n = n;
    job.body = &body;

    tls_in_pool = true;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        job_ = &job;
        ++jobSeq_;
    }
    workCv_.notify_all();
    // Participate: claim indices alongside the workers.
    runIndices(job);
    {
        std::unique_lock<std::mutex> lk(mutex_);
        doneCv_.wait(lk, [&job] {
            return job.active == 0 &&
                   job.done.load(std::memory_order_acquire) == job.n;
        });
        job_ = nullptr;
    }
    tls_in_pool = false;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(globalPoolSize());
    return pool;
}

} // namespace disc
