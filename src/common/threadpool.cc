#include "common/threadpool.hh"

#include <cstdlib>

namespace disc
{

namespace
{

/**
 * True while the current thread is executing pool work (a worker, or
 * a caller participating in its own parallelFor). Nested parallelFor
 * calls from such a thread run inline.
 */
thread_local bool tls_in_pool = false;

unsigned
globalPoolSize()
{
    if (const char *env = std::getenv("DISC_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        return v > 0 ? static_cast<unsigned>(v) : 1;
    }
    return 0; // hardware_concurrency
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    size_ = threads;
    // The caller participates in its own jobs, so it counts as one of
    // the size_ threads; spawn the rest.
    workers_.reserve(size_ - 1);
    for (unsigned t = 1; t < size_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

bool
ThreadPool::insideWorker()
{
    return tls_in_pool;
}

void
ThreadPool::workerLoop()
{
    tls_in_pool = true;
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        workCv_.wait(lk, [this] {
            return stop_ || (job_ && job_->next < job_->n);
        });
        if (stop_)
            return;
        Job *j = job_;
        while (job_ == j && j->next < j->n) {
            std::size_t i = j->next++;
            lk.unlock();
            (*j->body)(i);
            lk.lock();
            if (++j->done == j->n)
                doneCv_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (size_ <= 1 || n == 1 || insideWorker()) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::lock_guard<std::mutex> caller(callerMutex_);
    Job job;
    job.n = n;
    job.body = &body;

    tls_in_pool = true;
    std::unique_lock<std::mutex> lk(mutex_);
    job_ = &job;
    workCv_.notify_all();
    // Participate: claim indices alongside the workers.
    while (job.next < job.n) {
        std::size_t i = job.next++;
        lk.unlock();
        body(i);
        lk.lock();
        ++job.done;
    }
    doneCv_.wait(lk, [&job] { return job.done == job.n; });
    job_ = nullptr;
    lk.unlock();
    tls_in_pool = false;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(globalPoolSize());
    return pool;
}

} // namespace disc
