#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

#if defined(__GLIBC__)
// Not declared under strict -std=c++20, but always exported by glibc.
extern "C" double lgamma_r(double, int *);
#endif

namespace disc
{

namespace
{

/**
 * Thread-safe log-gamma. glibc's lgamma() writes its sign result to
 * the process-global `signgam`, which is a data race when experiment
 * replications draw Poisson variates on pool threads; lgamma_r()
 * computes the identical value through an out-parameter instead.
 */
double
logGamma(double x)
{
#if defined(__GLIBC__)
    int sign = 0;
    return lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0,1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with bound 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean < 0.0)
        panic("Rng::poisson called with negative mean %f", mean);
    if (mean == 0.0)
        return 0;

    if (mean < 30.0) {
        // Knuth: multiply uniforms until the product drops below e^-mean.
        const double limit = std::exp(-mean);
        double prod = 1.0;
        std::uint64_t n = 0;
        for (;;) {
            prod *= uniform();
            if (prod <= limit)
                return n;
            ++n;
        }
    }

    // PTRS (Hormann 1993) transformed rejection for large means.
    const double b = 0.931 + 2.53 * std::sqrt(mean);
    const double a = -0.059 + 0.02483 * b;
    const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    const double v_r = 0.9277 - 3.6224 / (b - 2.0);
    for (;;) {
        double u = uniform() - 0.5;
        double v = uniform();
        double us = 0.5 - std::fabs(u);
        double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
        if (us >= 0.07 && v <= v_r)
            return static_cast<std::uint64_t>(k);
        if (k < 0.0 || (us < 0.013 && v > us))
            continue;
        double log_accept = std::log(v * inv_alpha / (a / (us * us) + b));
        double log_target =
            k * std::log(mean) - mean - logGamma(k + 1.0);
        if (log_accept <= log_target)
            return static_cast<std::uint64_t>(k);
    }
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        return 0.0;
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0)
        panic("Rng::geometric called with p <= 0");
    if (p >= 1.0)
        return 0;
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

} // namespace disc
