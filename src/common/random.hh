/**
 * @file
 * Deterministic pseudo-random number generation for the stochastic model.
 *
 * The paper's evaluation draws run lengths from Poisson distributions
 * (meanon, meanoff, mean_req, mean_io). We provide a small, seedable,
 * reproducible generator (xoshiro256**) plus the samplers the model needs.
 * Reproducibility across platforms matters more here than statistical
 * exotica, so we avoid std::poisson_distribution whose output is
 * implementation-defined.
 */

#ifndef DISC_COMMON_RANDOM_HH
#define DISC_COMMON_RANDOM_HH

#include <cstdint>

namespace disc
{

/**
 * xoshiro256** PRNG with splitmix64 seeding. Deterministic across
 * platforms and fast enough for billions of draws.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t below(std::uint64_t bound);

    /** Bernoulli draw: true with probability p. */
    bool chance(double p);

    /**
     * Poisson-distributed sample with the given mean.
     *
     * Uses Knuth multiplication for small means and the PTRS
     * transformed-rejection method for large means, both driven by the
     * portable uniform source above.
     */
    std::uint64_t poisson(double mean);

    /** Exponentially distributed sample with the given mean. */
    double exponential(double mean);

    /** Geometric sample: number of failures before first success. */
    std::uint64_t geometric(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace disc

#endif // DISC_COMMON_RANDOM_HH
