/**
 * @file
 * BatchArena: structure-of-arrays storage for a batch of lockstep
 * lanes.
 *
 * A batch steps N independent state machines (simulator Machines,
 * stochastic replicas) through the same control loop. The loop's
 * per-lane bookkeeping — budgets, horizons, candidate masks, peel
 * state — is what the scheduler touches every round for every lane,
 * so it lives here in contiguous per-field arrays rather than
 * scattered across N heap objects: one field of all lanes occupies
 * consecutive cache lines, and a sweep over the batch walks each
 * array linearly.
 *
 * The arena owns only the hot scalar fields. The lanes' heavyweight
 * state (memories, pipes, registers) stays inside the objects the
 * lanes point at — it must, since checkpointing and serving hand
 * those objects around whole.
 */

#ifndef DISC_COMMON_BATCH_ARENA_HH
#define DISC_COMMON_BATCH_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace disc
{

/** Lifecycle of one lane inside a batch dispatch. */
enum class LaneState : std::uint8_t
{
    Hot,    ///< eligible for the batched hot lane this round
    Scalar, ///< peeled: advancing on the scalar reference path
    Done,   ///< budget exhausted or idle; skipped by further rounds
};

/**
 * Per-lane hot fields of one batch, one parallel array per field.
 * Fixed capacity set at construction; lanes join with push() and the
 * arrays never reallocate during a dispatch.
 */
template <typename LanePtr>
class BatchArena
{
  public:
    explicit BatchArena(std::size_t capacity)
    {
        lanes_.reserve(capacity);
        remaining_.reserve(capacity);
        advanced_.reserve(capacity);
        state_.reserve(capacity);
        candMask_.reserve(capacity);
    }

    /** Add a lane with @p budget cycles of work. */
    void push(LanePtr lane, Cycle budget)
    {
        lanes_.push_back(lane);
        remaining_.push_back(budget);
        advanced_.push_back(0);
        state_.push_back(LaneState::Hot);
        candMask_.push_back(0);
    }

    /** Forget every lane (capacity is retained). */
    void clear()
    {
        lanes_.clear();
        remaining_.clear();
        advanced_.clear();
        state_.clear();
        candMask_.clear();
    }

    std::size_t size() const { return lanes_.size(); }
    bool empty() const { return lanes_.empty(); }

    LanePtr lane(std::size_t i) const { return lanes_[i]; }

    /** Cycles of budget this lane still owes. */
    Cycle &remaining(std::size_t i) { return remaining_[i]; }

    /** Cycles this lane has advanced inside the dispatch. */
    Cycle &advanced(std::size_t i) { return advanced_[i]; }

    LaneState &state(std::size_t i) { return state_[i]; }

    /** Scratch per-lane mask (hot-lane candidate streams). */
    std::uint8_t &candMask(std::size_t i) { return candMask_[i]; }

    /** True while any lane still owes budget. */
    bool anyLive() const
    {
        for (LaneState s : state_) {
            if (s != LaneState::Done)
                return true;
        }
        return false;
    }

  private:
    std::vector<LanePtr> lanes_;
    std::vector<Cycle> remaining_;
    std::vector<Cycle> advanced_;
    std::vector<LaneState> state_;
    std::vector<std::uint8_t> candMask_;
};

} // namespace disc

#endif // DISC_COMMON_BATCH_ARENA_HH
