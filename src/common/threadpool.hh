/**
 * @file
 * A small fixed-size worker pool for embarrassingly parallel jobs:
 * experiment replications and bench-table cells.
 *
 * Design constraints, in order:
 *
 *  1. Determinism. parallelFor() only distributes *independent* index
 *     ranges; callers must write results into per-index slots and
 *     reduce sequentially afterwards, so the outcome is bit-identical
 *     for any pool size (including 1).
 *  2. Re-entrancy. A parallelFor() issued from inside a worker thread
 *     (e.g. runExperiment() called from a parallel bench cell) runs
 *     inline on the calling thread instead of deadlocking on the
 *     already-occupied pool.
 *  3. Scalability. Claiming an index is one uncontended atomic
 *     fetch_add, not a mutex round-trip: the pool mutex is touched
 *     only to publish a job, to park a thread, and to retire a job.
 *     With per-cycle work items (a whole simulation run per index)
 *     the lock would not matter; with fine-grained items it did.
 *  4. Simplicity. One mutex, two condition variables, two atomic
 *     counters per job. No futures, no task graph.
 *
 * The global() pool is sized from the DISC_THREADS environment
 * variable when set (0 or 1 disables parallelism), otherwise from
 * std::thread::hardware_concurrency().
 */

#ifndef DISC_COMMON_THREADPOOL_HH
#define DISC_COMMON_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace disc
{

/** Fixed-size worker pool; see file comment for the usage contract. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means hardware_concurrency().
     *        A pool of size 1 runs every job inline on the caller.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers (pending jobs finish first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads this pool schedules onto (>= 1). */
    unsigned size() const { return size_; }

    /**
     * Run body(i) for every i in [0, n), distributed over the pool,
     * and return when all indices completed. Calls from inside a
     * worker thread execute serially inline (see file comment).
     * body must not throw.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Run body(begin, end) for contiguous index groups of (up to)
     * @p group indices covering [0, n). One group is one pool task,
     * so a worker thread processes its whole group back-to-back —
     * the batched-replica shape — instead of claiming indices one at
     * a time. Grouping never affects results under the parallelFor
     * contract (independent per-index slots, sequential reduce).
     */
    void parallelForGroups(std::size_t n, std::size_t group,
                           const std::function<void(std::size_t,
                                                    std::size_t)> &body);

    /** The process-wide shared pool (sized per DISC_THREADS). */
    static ThreadPool &global();

  private:
    struct Job
    {
        std::size_t n = 0;
        const std::function<void(std::size_t)> *body = nullptr;
        /// Next index to claim; lock-free, may overshoot n.
        std::atomic<std::size_t> next{0};
        /// Indices completed; lock-free.
        std::atomic<std::size_t> done{0};
        /// Workers currently inside the claim loop (guarded by
        /// mutex_). The job may only be retired once this drops to
        /// zero AND done == n: a worker that just completed the last
        /// index still reads `next` once more before leaving the
        /// loop, so the Job must outlive that probe.
        unsigned active = 0;
    };

    unsigned size_ = 1;
    std::vector<std::thread> workers_;
    std::mutex callerMutex_; ///< serialises concurrent parallelFor calls
    std::mutex mutex_;
    std::condition_variable workCv_;  ///< signalled when a job arrives
    std::condition_variable doneCv_;  ///< signalled when a job finishes
    Job *job_ = nullptr;              ///< current job, if any
    std::uint64_t jobSeq_ = 0;        ///< bumps when a job is published
    bool stop_ = false;

    void runIndices(Job &job);
    void workerLoop();
    static bool insideWorker();
};

} // namespace disc

#endif // DISC_COMMON_THREADPOOL_HH
