/**
 * @file
 * Min-heap timing kernel for the event-scheduled simulator core.
 *
 * The queue holds at most one pending event per *source* (a small
 * integer chosen by the client — the machine uses the device attach
 * index and a reserved id for the ABI). Scheduling a source that
 * already has an event replaces it; cancellation is lazy: stale heap
 * entries are recognised by a per-source generation counter and
 * discarded when they surface at the top.
 *
 * Determinism: events due on the same cycle pop in schedule order
 * (FIFO, via a monotonic sequence number), independent of heap
 * internals, so two runs that schedule identically dispatch
 * identically.
 */

#ifndef DISC_COMMON_EVENT_QUEUE_HH
#define DISC_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace disc
{

/** "No event pending" timestamp. */
constexpr Cycle kNoEvent = ~static_cast<Cycle>(0);

class EventQueue
{
  public:
    /** An event popped by popDue(). */
    struct Event
    {
        Cycle when;
        std::uint32_t source;
    };

    /**
     * Schedule (or reschedule) @p source's event at cycle @p when.
     * Any previously scheduled event for the source is superseded.
     */
    void schedule(std::uint32_t source, Cycle when);

    /** Drop @p source's pending event, if any. */
    void cancel(std::uint32_t source);

    /** True when @p source has an event pending. */
    bool pending(std::uint32_t source) const;

    /** Cycle of @p source's pending event (kNoEvent when none). */
    Cycle scheduledAt(std::uint32_t source) const;

    /** Cycle of the earliest pending event (kNoEvent when empty). */
    Cycle nextTime() const;

    /** True when no events are pending. */
    bool empty() const { return live_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return live_; }

    /**
     * Pop every event with when <= @p now into @p out, ordered by
     * (when, schedule order). Popped sources become unscheduled.
     */
    void popDue(Cycle now, std::vector<Event> &out);

    /** Forget all events and reset the FIFO sequence. */
    void clear();

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t source;
        std::uint64_t gen;

        /** Min-heap: earlier cycle first, then earlier schedule. */
        bool operator<(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    struct SourceState
    {
        std::uint64_t gen = 0;
        bool scheduled = false;
        Cycle when = kNoEvent;
    };

    const SourceState *stateOf(std::uint32_t source) const;
    SourceState &stateFor(std::uint32_t source);
    void dropStale() const;

    /** Mutable so stale-entry cleanup can run from const peeks. */
    mutable std::vector<Entry> heap_;
    std::vector<SourceState> states_;       ///< dense sources
    std::vector<std::uint32_t> sparseIds_;  ///< sources >= kDenseSources
    std::vector<SourceState> sparse_;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;

    static constexpr std::uint32_t kDenseSources = 64;
};

} // namespace disc

#endif // DISC_COMMON_EVENT_QUEUE_HH
