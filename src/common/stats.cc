#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace disc
{

void
RunningStat::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::stderror() const
{
    if (n_ < 2)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n_));
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    double delta = other.mean_ - mean_;
    double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(std::size_t num_bins)
    : bins_(num_bins, 0)
{
    if (num_bins == 0)
        panic("Histogram requires at least one bin");
}

void
Histogram::add(std::uint64_t value)
{
    if (value < bins_.size())
        ++bins_[value];
    else
        ++overflow_;
    ++count_;
    sum_ += value;
    max_ = std::max(max_, value);
}

std::uint64_t
Histogram::binCount(std::size_t bin) const
{
    if (bin < bins_.size())
        return bins_[bin];
    if (bin == bins_.size())
        return overflow_;
    panic("Histogram::binCount bin %zu out of range", bin);
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    target = std::max<std::uint64_t>(target, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (seen >= target)
            return i;
    }
    return bins_.size();
}

std::string
Histogram::render(std::size_t max_width) const
{
    std::uint64_t peak = overflow_;
    for (auto b : bins_)
        peak = std::max(peak, b);
    if (peak == 0)
        return "(empty histogram)\n";

    std::string out;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        std::size_t width = static_cast<std::size_t>(
            static_cast<double>(bins_[i]) / static_cast<double>(peak) *
            static_cast<double>(max_width));
        out += strprintf("%5zu | %-*s %llu\n", i,
                         static_cast<int>(max_width),
                         std::string(std::max<std::size_t>(width, 1),
                                     '#').c_str(),
                         static_cast<unsigned long long>(bins_[i]));
    }
    if (overflow_ > 0) {
        out += strprintf(" >%3zu | %llu\n", bins_.size() - 1,
                         static_cast<unsigned long long>(overflow_));
    }
    return out;
}

} // namespace disc
