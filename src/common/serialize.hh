/**
 * @file
 * Minimal byte-stream serialization for machine checkpoints.
 *
 * Fixed little-endian layout, explicit sizes, and a checked cursor:
 * checkpoints are portable between builds of the same version and a
 * truncated or mismatched stream produces fatal(), never UB.
 */

#ifndef DISC_COMMON_SERIALIZE_HH
#define DISC_COMMON_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace disc
{

namespace detail
{
/** Lazily resolve an enum's underlying type (identity otherwise). */
template <typename T, bool = std::is_enum_v<T>>
struct UnderlyingOf
{
    using type = std::underlying_type_t<T>;
};

template <typename T>
struct UnderlyingOf<T, false>
{
    using type = T;
};
} // namespace detail

/** Append-only byte sink. */
class Serializer
{
  public:
    /** Write one unsigned integer little-endian. */
    template <typename T>
    void
    put(T value)
    {
        static_assert(std::is_integral_v<T> || std::is_enum_v<T>);
        using U =
            std::make_unsigned_t<typename detail::UnderlyingOf<T>::type>;
        U u = static_cast<U>(value);
        for (std::size_t i = 0; i < sizeof(U); ++i)
            bytes_.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
    }

    /** Write a vector of integers with a length prefix. */
    template <typename T>
    void
    putVector(const std::vector<T> &values)
    {
        put<std::uint32_t>(static_cast<std::uint32_t>(values.size()));
        for (const T &v : values)
            put(v);
    }

    /** Write a boolean. */
    void putBool(bool b) { put<std::uint8_t>(b ? 1 : 0); }

    /** Write a string with a length prefix. */
    void
    putString(const std::string &s)
    {
        put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
        for (char c : s)
            bytes_.push_back(static_cast<std::uint8_t>(c));
    }

    /** Write a raw byte blob with a length prefix. */
    void
    putBlob(const std::vector<std::uint8_t> &blob)
    {
        put<std::uint32_t>(static_cast<std::uint32_t>(blob.size()));
        bytes_.insert(bytes_.end(), blob.begin(), blob.end());
    }

    /** The accumulated bytes. */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

    /** Move the accumulated bytes out. */
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Checked byte-stream reader. */
class Deserializer
{
  public:
    explicit Deserializer(const std::vector<std::uint8_t> &bytes)
        : bytes_(bytes)
    {}

    /** Read one unsigned integer little-endian. */
    template <typename T>
    T
    get()
    {
        static_assert(std::is_integral_v<T> || std::is_enum_v<T>);
        using U =
            std::make_unsigned_t<typename detail::UnderlyingOf<T>::type>;
        if (pos_ + sizeof(U) > bytes_.size())
            fatal("checkpoint truncated at byte %zu", pos_);
        U u = 0;
        for (std::size_t i = 0; i < sizeof(U); ++i)
            u |= static_cast<U>(bytes_[pos_ + i]) << (8 * i);
        pos_ += sizeof(U);
        return static_cast<T>(u);
    }

    /** Read a length-prefixed vector. */
    template <typename T>
    std::vector<T>
    getVector()
    {
        auto n = get<std::uint32_t>();
        std::vector<T> out;
        out.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
            out.push_back(get<T>());
        return out;
    }

    /** Read a boolean. */
    bool getBool() { return get<std::uint8_t>() != 0; }

    /** Read a length-prefixed string. */
    std::string
    getString()
    {
        auto n = get<std::uint32_t>();
        if (n == 0)
            return {};
        if (pos_ + n > bytes_.size())
            fatal("checkpoint truncated at byte %zu", pos_);
        std::string s(reinterpret_cast<const char *>(&bytes_[pos_]), n);
        pos_ += n;
        return s;
    }

    /** Read a length-prefixed byte blob. */
    std::vector<std::uint8_t>
    getBlob()
    {
        auto n = get<std::uint32_t>();
        if (pos_ + n > bytes_.size())
            fatal("checkpoint truncated at byte %zu", pos_);
        std::vector<std::uint8_t> blob(bytes_.begin() + pos_,
                                       bytes_.begin() + pos_ + n);
        pos_ += n;
        return blob;
    }

    /** True when every byte was consumed. */
    bool exhausted() const { return pos_ == bytes_.size(); }

    /** Bytes consumed so far. */
    std::size_t position() const { return pos_; }

  private:
    const std::vector<std::uint8_t> &bytes_;
    std::size_t pos_ = 0;
};

} // namespace disc

#endif // DISC_COMMON_SERIALIZE_HH
