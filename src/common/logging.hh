/**
 * @file
 * Error-reporting and status-message helpers (gem5-style).
 *
 * panic()  — an internal invariant was violated: a simulator bug. Aborts.
 * fatal()  — the user asked for something impossible (bad program, bad
 *            configuration). Exits with an error code.
 * warn()   — something questionable happened but simulation continues.
 * inform() — neutral status output.
 */

#ifndef DISC_COMMON_LOGGING_HH
#define DISC_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace disc
{

/** Thrown by fatal(): a user-level error (bad program or configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic(): a simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug and throw PanicError.
 * @param fmt printf-style message.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and throw FatalError.
 * @param fmt printf-style message.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/**
 * Tag every message the calling thread emits with "[tag] " — e.g. a
 * worker id or the session/connection a server thread is handling.
 * Thread-local; an empty tag (the default) removes the prefix.
 *
 * All four reporters are thread-safe: a message is formatted into one
 * buffer (prefix included) and written with a single stream operation,
 * so concurrent threads cannot shear each other's lines, and the
 * quiet flag is a relaxed atomic checked before any formatting work.
 */
void setLogTag(const std::string &tag);

/** The calling thread's current log tag ("" when unset). */
const std::string &logTag();

} // namespace disc

#endif // DISC_COMMON_LOGGING_HH
