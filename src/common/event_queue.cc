#include "common/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace disc
{

const EventQueue::SourceState *
EventQueue::stateOf(std::uint32_t source) const
{
    if (source < kDenseSources) {
        if (source >= states_.size())
            return nullptr;
        return &states_[source];
    }
    for (std::size_t i = 0; i < sparseIds_.size(); ++i) {
        if (sparseIds_[i] == source)
            return &sparse_[i];
    }
    return nullptr;
}

EventQueue::SourceState &
EventQueue::stateFor(std::uint32_t source)
{
    if (source < kDenseSources) {
        if (source >= states_.size())
            states_.resize(source + 1);
        return states_[source];
    }
    for (std::size_t i = 0; i < sparseIds_.size(); ++i) {
        if (sparseIds_[i] == source)
            return sparse_[i];
    }
    sparseIds_.push_back(source);
    sparse_.emplace_back();
    return sparse_.back();
}

void
EventQueue::schedule(std::uint32_t source, Cycle when)
{
    if (when == kNoEvent)
        fatal("cannot schedule an event at kNoEvent");
    SourceState &st = stateFor(source);
    ++st.gen; // supersedes any heap entry for this source
    if (!st.scheduled)
        ++live_;
    st.scheduled = true;
    st.when = when;
    heap_.push_back({when, nextSeq_++, source, st.gen});
    std::push_heap(heap_.begin(), heap_.end());
}

void
EventQueue::cancel(std::uint32_t source)
{
    SourceState &st = stateFor(source);
    if (!st.scheduled)
        return;
    ++st.gen;
    st.scheduled = false;
    st.when = kNoEvent;
    --live_;
    dropStale();
}

bool
EventQueue::pending(std::uint32_t source) const
{
    const SourceState *st = stateOf(source);
    return st && st->scheduled;
}

Cycle
EventQueue::scheduledAt(std::uint32_t source) const
{
    const SourceState *st = stateOf(source);
    return st && st->scheduled ? st->when : kNoEvent;
}

void
EventQueue::dropStale() const
{
    while (!heap_.empty()) {
        const Entry &top = heap_.front();
        const SourceState *st = stateOf(top.source);
        if (st && st->scheduled && st->gen == top.gen)
            return;
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
    }
}

Cycle
EventQueue::nextTime() const
{
    dropStale();
    return heap_.empty() ? kNoEvent : heap_.front().when;
}

void
EventQueue::popDue(Cycle now, std::vector<Event> &out)
{
    for (;;) {
        dropStale();
        if (heap_.empty() || heap_.front().when > now)
            return;
        Entry top = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
        SourceState &st = stateFor(top.source);
        st.scheduled = false;
        st.when = kNoEvent;
        --live_;
        out.push_back({top.when, top.source});
    }
}

void
EventQueue::clear()
{
    heap_.clear();
    states_.clear();
    sparseIds_.clear();
    sparse_.clear();
    nextSeq_ = 0;
    live_ = 0;
}

} // namespace disc
