/**
 * @file
 * Two-pass text assembler for the DISC1 ISA.
 *
 * Syntax summary (one statement per line, ';' or '#' start a comment):
 *
 *   .org  ADDR          set the program counter for following code
 *   .equ  NAME, VALUE   define a constant
 *   .dmem ADDR, VALUE   preload one internal data-memory word
 *   label:              define a label at the current address
 *   mnemonic operands   one instruction (see below)
 *
 * A '+' or '-' suffix on any mnemonic sets the window-control field
 * (AWP auto increment/decrement after the instruction), e.g. "add+".
 *
 * Register names: r0..r7 (window locals), g0..g3 (globals), sr, irr,
 * imr, awp (specials).
 *
 * Memory operands: "[ra]", "[ra+imm]", "[ra-imm]"; direct internal
 * forms take "[imm]". Branches (beq/bne/blt/bge/bult/buge/bmi/bpl)
 * take a label or numeric absolute target and assemble a PC-relative
 * offset. Immediates and addresses may be decimal, 0x hex, 0b binary,
 * a symbol, or symbol+/-constant.
 */

#ifndef DISC_ISA_ASSEMBLER_HH
#define DISC_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace disc
{

/**
 * Assemble DISC1 assembly source text.
 * @param source full program text.
 * @return the assembled program.
 * @throws FatalError on any syntax or range error (message carries the
 *         line number).
 */
Program assemble(const std::string &source);

/** Disassemble a program image into listing text (addr: word  asm). */
std::string disassemble(const Program &prog);

} // namespace disc

#endif // DISC_ISA_ASSEMBLER_HH
