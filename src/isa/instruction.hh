/**
 * @file
 * Decoded instruction representation plus encode/decode between the
 * 24-bit architectural word and the decoded form.
 */

#ifndef DISC_ISA_INSTRUCTION_HH
#define DISC_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace disc
{

/** Register name encodings in the 4-bit register fields. */
namespace reg
{
constexpr unsigned R0 = 0;    ///< window locals are 0..7
constexpr unsigned G0 = 8;    ///< globals are 8..11
constexpr unsigned G1 = 9;
constexpr unsigned G2 = 10;
constexpr unsigned G3 = 11;
constexpr unsigned SR = 12;   ///< status register
constexpr unsigned IRR = 13;  ///< interrupt request register
constexpr unsigned IMR = 14;  ///< interrupt mask register
constexpr unsigned AWP = 15;  ///< active window pointer

/** True for window-local register names R0..R7. */
constexpr bool isWindow(unsigned r) { return r < kNumWindowRegs; }
/** True for global register names G0..G3. */
constexpr bool isGlobal(unsigned r) { return r >= 8 && r < 12; }
/** True for special register names. */
constexpr bool isSpecial(unsigned r) { return r >= 12 && r < 16; }

/** Printable name for a register field value ("r3", "g1", "sr", ...). */
std::string name(unsigned r);
} // namespace reg

/**
 * A fully decoded DISC1 instruction. The raw 24-bit word can always be
 * regenerated with encode().
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    WCtl wctl = WCtl::None;
    std::uint8_t rd = 0;      ///< destination (or store-source) register
    std::uint8_t ra = 0;      ///< first source register
    std::uint8_t rb = 0;      ///< second source register
    Cond cond = Cond::EQ;     ///< BR condition
    std::int32_t imm = 0;     ///< sign-extended immediate / target / count
    std::uint8_t stream = 0;  ///< SWI/FORK target stream
    std::uint8_t bit = 0;     ///< SWI/CLRI interrupt bit
    std::uint8_t slot = 0;    ///< SCHED slot index

    /** Instruction metadata (format and behaviour flags). */
    const OpInfo &info() const { return opInfo(op); }

    /** Render as assembly text. */
    std::string toString() const;

    /** Structural equality (all architected fields). */
    bool operator==(const Instruction &other) const;
};

/**
 * Decode a 24-bit instruction word.
 *
 * Undefined opcodes decode to NOP with a warning counter; the hardware
 * would raise an illegal-instruction interrupt, which the machine layer
 * implements on top of this by checking isLegal().
 */
Instruction decode(InstWord word);

/** True if the word holds a defined opcode with a legal field encoding. */
bool isLegal(InstWord word);

/** Encode a decoded instruction into its 24-bit word. */
InstWord encode(const Instruction &inst);

// --- Convenience builders used by tests, examples and the assembler ---

/** rd, ra, rb three-register ALU operation. */
Instruction makeR3(Opcode op, unsigned rd, unsigned ra, unsigned rb,
                   WCtl w = WCtl::None);
/** rd, ra two-register operation (MOV/NOT/NEG/TAS). */
Instruction makeR2(Opcode op, unsigned rd, unsigned ra,
                   WCtl w = WCtl::None);
/** rd, ra, imm8 immediate operation (also LD/ST/LDM/STM). */
Instruction makeRI(Opcode op, unsigned rd, unsigned ra, int imm,
                   WCtl w = WCtl::None);
/** LDI rd, imm12. */
Instruction makeLdi(unsigned rd, int imm);
/** LDIH rd, imm8. */
Instruction makeLdih(unsigned rd, unsigned imm);
/** JMP/CALL with absolute 16-bit target. */
Instruction makeJump(Opcode op, PAddr target);
/** BR cond with signed 12-bit PC-relative offset. */
Instruction makeBranch(Cond cond, int offset);
/** RET n. */
Instruction makeRet(unsigned pops);
/** SWI stream, bit. */
Instruction makeSwi(unsigned stream, unsigned bit);
/** CLRI bit. */
Instruction makeClri(unsigned bit);
/** FORK stream, addr12. */
Instruction makeFork(unsigned stream, PAddr target);
/** SCHED slot, stream. */
Instruction makeSched(unsigned slot, unsigned stream);
/** Opcode with no operands (NOP/RETI/HALT/WINC/WDEC). */
Instruction makeOp(Opcode op, WCtl w = WCtl::None);

} // namespace disc

#endif // DISC_ISA_INSTRUCTION_HH
