#include "isa/predecode.hh"

namespace disc
{

std::uint32_t
depRegBit(unsigned r)
{
    std::uint32_t mask = 1u << r;
    if (reg::isWindow(r))
        mask |= kDepAwp; // window names remap when the AWP moves
    if (r == reg::SR)
        mask |= kDepFlags;
    if (r == reg::AWP)
        mask |= kDepAwp;
    return mask;
}

void
depMasks(const Instruction &inst, std::uint32_t &reads,
         std::uint32_t &writes)
{
    reads = 0;
    writes = 0;
    const OpInfo &oi = inst.info();
    if (oi.readsRa)
        reads |= depRegBit(inst.ra);
    if (oi.readsRb)
        reads |= depRegBit(inst.rb);
    if (oi.readsRd)
        reads |= depRegBit(inst.rd);
    if (oi.writesRd) {
        writes |= depRegBit(inst.rd) & ~kDepAwp;
        if (reg::isWindow(inst.rd))
            reads |= kDepAwp; // write-port addressing depends on AWP
    }
    if (oi.setsFlags)
        writes |= kDepFlags;
    if (oi.movesWindow || inst.wctl != WCtl::None) {
        writes |= kDepAwp;
        reads |= kDepAwp;
    }

    switch (inst.op) {
      case Opcode::ADC:
      case Opcode::SBC:
        reads |= kDepFlags;
        break;
      case Opcode::BR:
        reads |= kDepFlags;
        break;
      case Opcode::MUL:
        writes |= kDepMulHigh;
        break;
      case Opcode::MULH:
        reads |= kDepMulHigh;
        break;
      case Opcode::CALL:
      case Opcode::CALLR:
        writes |= depRegBit(0); // return address lands in the new R0
        break;
      case Opcode::RET:
      case Opcode::RETI:
        reads |= depRegBit(0);
        break;
      default:
        break;
    }
}

PredecodedInst
predecode(InstWord word)
{
    PredecodedInst pd;
    pd.legal = isLegal(word);
    pd.inst = decode(word);
    depMasks(pd.inst, pd.readsMask, pd.writesMask);
    pd.uop = uopFor(pd.inst.op, pd.inst.cond);
    return pd;
}

void
PredecodeTable::load(const Program &prog)
{
    table_.clear();
    table_.reserve(prog.code.size());
    for (InstWord word : prog.code)
        table_.push_back(predecode(word));
}

} // namespace disc
