#include "isa/uops.hh"

#include "common/logging.hh"

namespace disc
{

Opcode
uopOpcode(Uop u)
{
    switch (u) {
      case Uop::BR_EQ:
      case Uop::BR_NE:
      case Uop::BR_LT:
      case Uop::BR_GE:
      case Uop::BR_ULT:
      case Uop::BR_UGE:
      case Uop::BR_MI:
      case Uop::BR_PL:
        return Opcode::BR;
      default:
        break;
    }
    // Non-branch micro-ops mirror the Opcode enum order exactly up to
    // RET; those after the BR block are shifted by the 7 extra BR_*.
    unsigned v = static_cast<unsigned>(u);
    constexpr unsigned kFirstBr = static_cast<unsigned>(Uop::BR_EQ);
    if (v < kFirstBr)
        return static_cast<Opcode>(v);
    if (v < kNumUops)
        return static_cast<Opcode>(v - 7);
    panic("uopOpcode: bad micro-op %u", v);
}

std::string_view
uopName(Uop u)
{
    switch (u) {
      case Uop::BR_EQ: return "br.eq";
      case Uop::BR_NE: return "br.ne";
      case Uop::BR_LT: return "br.lt";
      case Uop::BR_GE: return "br.ge";
      case Uop::BR_ULT: return "br.ult";
      case Uop::BR_UGE: return "br.uge";
      case Uop::BR_MI: return "br.mi";
      case Uop::BR_PL: return "br.pl";
      default:
        return opMnemonic(uopOpcode(u));
    }
}

} // namespace disc
