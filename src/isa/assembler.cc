#include "isa/assembler.hh"

#include <cctype>
#include <optional>
#include <unordered_map>

#include "common/logging.hh"
#include "isa/instruction.hh"

namespace disc
{

PAddr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '%s'", name.c_str());
    return static_cast<PAddr>(it->second);
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.count(name) != 0;
}

namespace
{

/** One tokenised source line. */
struct Line
{
    unsigned number = 0;
    std::string label;
    std::string mnemonic;              // lower-cased, suffix stripped
    WCtl wctl = WCtl::None;
    std::vector<std::string> operands; // comma-separated, trimmed
    bool isDirective = false;
};

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::string
toLower(std::string s)
{
    for (auto &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

/** Split the operand field on top-level commas. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    std::string last = trim(cur);
    if (!last.empty() || !out.empty())
        out.push_back(last);
    return out;
}

std::optional<Line>
tokenize(const std::string &raw, unsigned number)
{
    std::string text = raw;
    // Strip comments.
    for (char marker : {';', '#'}) {
        std::size_t pos = text.find(marker);
        if (pos != std::string::npos)
            text = text.substr(0, pos);
    }
    text = trim(text);
    if (text.empty())
        return std::nullopt;

    Line line;
    line.number = number;

    // Leading label?
    std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        std::string maybe_label = trim(text.substr(0, colon));
        bool ok = !maybe_label.empty() && isIdentStart(maybe_label[0]);
        for (char c : maybe_label)
            ok = ok && isIdentChar(c);
        if (ok) {
            line.label = maybe_label;
            text = trim(text.substr(colon + 1));
        }
    }
    if (text.empty())
        return line;

    std::size_t sp = text.find_first_of(" \t");
    std::string mnem = sp == std::string::npos ? text : text.substr(0, sp);
    std::string rest = sp == std::string::npos ? "" : trim(text.substr(sp));

    mnem = toLower(mnem);
    if (!mnem.empty() && mnem[0] == '.') {
        line.isDirective = true;
    } else if (!mnem.empty() && (mnem.back() == '+' || mnem.back() == '-')) {
        line.wctl = mnem.back() == '+' ? WCtl::Inc : WCtl::Dec;
        mnem.pop_back();
    }
    line.mnemonic = mnem;
    line.operands = splitOperands(rest);
    return line;
}

/** Register-name lookup; returns std::nullopt for non-registers. */
std::optional<unsigned>
parseReg(const std::string &tok)
{
    std::string t = toLower(tok);
    if (t.size() == 2 && t[0] == 'r' && t[1] >= '0' && t[1] <= '7')
        return static_cast<unsigned>(t[1] - '0');
    if (t.size() == 2 && t[0] == 'g' && t[1] >= '0' && t[1] <= '3')
        return reg::G0 + static_cast<unsigned>(t[1] - '0');
    if (t == "sr")
        return reg::SR;
    if (t == "irr")
        return reg::IRR;
    if (t == "imr")
        return reg::IMR;
    if (t == "awp")
        return reg::AWP;
    return std::nullopt;
}

/** One raw source line with the line number errors should cite. */
struct RawLine
{
    std::string text;
    unsigned number;
};

/**
 * Macro/repeat preprocessor. Handles, at text level:
 *
 *   .macro NAME [p1, p2, ...]   ...body...   .endm
 *   .rept N                     ...body...   .endr
 *
 * Inside a macro body, "\p" substitutes a parameter and "\@" a
 * counter unique to each expansion (for local labels). Expanded lines
 * keep the invocation site's line number for error reporting.
 */
class Preprocessor
{
  public:
    std::vector<RawLine>
    run(const std::string &source)
    {
        std::vector<RawLine> raw;
        unsigned number = 0;
        std::size_t pos = 0;
        while (pos <= source.size()) {
            std::size_t nl = source.find('\n', pos);
            std::string text = nl == std::string::npos
                                   ? source.substr(pos)
                                   : source.substr(pos, nl - pos);
            raw.push_back({std::move(text), ++number});
            if (nl == std::string::npos)
                break;
            pos = nl + 1;
        }
        std::vector<RawLine> out;
        expand(raw, out, 0);
        return out;
    }

  private:
    struct Macro
    {
        std::vector<std::string> params;
        std::vector<RawLine> body;
    };

    std::map<std::string, Macro> macros_;
    unsigned expansions_ = 0;

    /** Strip comments/space and return the first token, lowered. */
    static std::string
    firstToken(const std::string &raw, std::string &rest)
    {
        std::string text = raw;
        for (char marker : {';', '#'}) {
            std::size_t p = text.find(marker);
            if (p != std::string::npos)
                text = text.substr(0, p);
        }
        text = trim(text);
        std::size_t sp = text.find_first_of(" \t");
        std::string head =
            sp == std::string::npos ? text : text.substr(0, sp);
        rest = sp == std::string::npos ? "" : trim(text.substr(sp));
        return toLower(head);
    }

    void
    expand(const std::vector<RawLine> &in, std::vector<RawLine> &out,
           unsigned depth)
    {
        if (depth > 16)
            fatal("asm: macro expansion nested deeper than 16 levels");
        for (std::size_t i = 0; i < in.size(); ++i) {
            std::string rest;
            std::string head = firstToken(in[i].text, rest);

            if (head == ".macro") {
                // ".macro NAME [p1, p2, ...]": the name is the first
                // whitespace token, parameters follow comma-separated.
                std::size_t sp = rest.find_first_of(" \t");
                std::string name = toLower(
                    trim(sp == std::string::npos ? rest
                                                 : rest.substr(0, sp)));
                std::string params_text =
                    sp == std::string::npos ? "" : trim(rest.substr(sp));
                if (name.empty())
                    fatal("asm line %u: .macro needs a name",
                          in[i].number);
                Macro m;
                for (const std::string &param :
                     splitOperands(params_text)) {
                    if (!param.empty())
                        m.params.push_back(toLower(param));
                }
                std::size_t j = i + 1;
                for (; j < in.size(); ++j) {
                    std::string r2;
                    if (firstToken(in[j].text, r2) == ".endm")
                        break;
                    m.body.push_back(in[j]);
                }
                if (j == in.size())
                    fatal("asm line %u: .macro without .endm",
                          in[i].number);
                macros_[name] = std::move(m);
                i = j;
                continue;
            }
            if (head == ".rept") {
                long count = 0;
                try {
                    count = std::stol(rest, nullptr, 0);
                } catch (...) {
                    fatal("asm line %u: bad .rept count '%s'",
                          in[i].number, rest.c_str());
                }
                if (count < 0 || count > 65536)
                    fatal("asm line %u: .rept count out of range",
                          in[i].number);
                std::vector<RawLine> body;
                std::size_t j = i + 1;
                unsigned nest = 1;
                for (; j < in.size(); ++j) {
                    std::string r2;
                    std::string h2 = firstToken(in[j].text, r2);
                    if (h2 == ".rept")
                        ++nest;
                    if (h2 == ".endr" && --nest == 0)
                        break;
                    body.push_back(in[j]);
                }
                if (j == in.size())
                    fatal("asm line %u: .rept without .endr",
                          in[i].number);
                for (long k = 0; k < count; ++k)
                    expand(body, out, depth + 1);
                i = j;
                continue;
            }

            auto it = macros_.find(head);
            if (it != macros_.end()) {
                auto args = splitOperands(rest);
                if (args.size() == 1 && args[0].empty())
                    args.clear();
                const Macro &m = it->second;
                if (args.size() != m.params.size()) {
                    fatal("asm line %u: macro '%s' expects %zu "
                          "argument(s), got %zu",
                          in[i].number, head.c_str(), m.params.size(),
                          args.size());
                }
                unsigned uniq = ++expansions_;
                std::vector<RawLine> body;
                for (const RawLine &b : m.body) {
                    std::string text = b.text;
                    for (std::size_t p = 0; p < m.params.size(); ++p) {
                        substitute(text, "\\" + m.params[p], args[p]);
                    }
                    substitute(text, "\\@", strprintf("%u", uniq));
                    body.push_back({std::move(text), in[i].number});
                }
                expand(body, out, depth + 1);
                continue;
            }

            out.push_back(in[i]);
        }
    }

    /** Replace every occurrence of @p from in @p text. */
    static void
    substitute(std::string &text, const std::string &from,
               const std::string &to)
    {
        std::size_t pos = 0;
        while ((pos = text.find(from, pos)) != std::string::npos) {
            // Do not chop a longer parameter name: the next character
            // must not continue the identifier.
            std::size_t end = pos + from.size();
            if (from != "\\@" && end < text.size() &&
                isIdentChar(text[end])) {
                pos = end;
                continue;
            }
            text.replace(pos, from.size(), to);
            pos += to.size();
        }
    }
};

/** Assembler working state shared by both passes. */
class Assembler
{
  public:
    explicit Assembler(const std::string &source)
    {
        for (const RawLine &raw : Preprocessor().run(source)) {
            if (auto line = tokenize(raw.text, raw.number))
                lines_.push_back(std::move(*line));
        }
    }

    Program
    run()
    {
        pass(/*emit=*/false);
        pass(/*emit=*/true);
        return std::move(prog_);
    }

  private:
    std::vector<Line> lines_;
    Program prog_;
    PAddr pc_ = 0;
    bool emitting_ = false;
    unsigned curLine_ = 0;

    [[noreturn]] void
    err(const std::string &what) const
    {
        fatal("asm line %u: %s", curLine_, what.c_str());
    }

    long
    parseNumber(const std::string &tok) const
    {
        std::string t = trim(tok);
        if (t.empty())
            err("empty expression");
        bool neg = false;
        if (t[0] == '-' || t[0] == '+') {
            neg = t[0] == '-';
            t = t.substr(1);
        }
        long value = 0;
        try {
            std::size_t used = 0;
            if (t.size() > 2 && t[0] == '0' &&
                (t[1] == 'x' || t[1] == 'X')) {
                value = std::stol(t.substr(2), &used, 16);
                used += 2;
            } else if (t.size() > 2 && t[0] == '0' &&
                       (t[1] == 'b' || t[1] == 'B')) {
                value = std::stol(t.substr(2), &used, 2);
                used += 2;
            } else if (std::isdigit(static_cast<unsigned char>(t[0]))) {
                value = std::stol(t, &used, 10);
            } else {
                err(strprintf("expected number, got '%s'", t.c_str()));
            }
            if (used != t.size())
                err(strprintf("trailing junk in number '%s'", t.c_str()));
        } catch (const FatalError &) {
            throw;
        } catch (...) {
            err(strprintf("bad number '%s'", t.c_str()));
        }
        return neg ? -value : value;
    }

    /** Evaluate NUMBER | SYMBOL | SYMBOL+NUM | SYMBOL-NUM. */
    long
    evalExpr(const std::string &tok) const
    {
        std::string t = trim(tok);
        if (t.empty())
            err("empty expression");
        if (!isIdentStart(t[0]) || parseReg(t))
            return parseNumber(t);

        std::size_t split = t.find_first_of("+-", 1);
        std::string sym = trim(split == std::string::npos
                                   ? t
                                   : t.substr(0, split));
        auto it = prog_.symbols.find(sym);
        long base;
        if (it == prog_.symbols.end()) {
            if (emitting_)
                err(strprintf("undefined symbol '%s'", sym.c_str()));
            base = 0; // pass 1: forward reference, placeholder
        } else {
            base = static_cast<long>(it->second);
        }
        if (split == std::string::npos)
            return base;
        long offset = parseNumber(t.substr(split + 1));
        return t[split] == '+' ? base + offset : base - offset;
    }

    unsigned
    needReg(const std::string &tok) const
    {
        auto r = parseReg(tok);
        if (!r)
            err(strprintf("expected register, got '%s'", tok.c_str()));
        return *r;
    }

    long
    needRange(long v, long lo, long hi, const char *what) const
    {
        if (v < lo || v > hi) {
            err(strprintf("%s %ld out of range [%ld, %ld]", what, v, lo,
                          hi));
        }
        return v;
    }

    /** Parse "[ra]", "[ra+imm]", "[ra-imm]" or (direct) "[imm]". */
    void
    parseMemOperand(const std::string &tok, std::optional<unsigned> &base,
                    long &offset) const
    {
        std::string t = trim(tok);
        if (t.size() < 2 || t.front() != '[' || t.back() != ']')
            err(strprintf("expected memory operand, got '%s'", t.c_str()));
        std::string inner = trim(t.substr(1, t.size() - 2));
        if (inner.empty())
            err("empty memory operand");
        // Try "reg", "reg+expr", "reg-expr".
        std::size_t split = inner.find_first_of("+-");
        std::string first =
            trim(split == std::string::npos ? inner : inner.substr(0, split));
        if (auto r = parseReg(first)) {
            base = *r;
            offset = 0;
            if (split != std::string::npos) {
                long v = evalExpr(inner.substr(split + 1));
                offset = inner[split] == '+' ? v : -v;
            }
            return;
        }
        base = std::nullopt;
        offset = evalExpr(inner);
    }

    void
    emit(const Instruction &inst)
    {
        if (emitting_) {
            if (prog_.code.size() <= pc_)
                prog_.code.resize(pc_ + 1, encode(makeOp(Opcode::NOP)));
            prog_.code[pc_] = encode(inst);
        }
        ++pc_;
    }

    void
    directive(const Line &line)
    {
        const auto &ops = line.operands;
        if (line.mnemonic == ".org") {
            if (ops.size() != 1)
                err(".org takes one operand");
            long a = evalExpr(ops[0]);
            needRange(a, 0, 0xffff, ".org address");
            pc_ = static_cast<PAddr>(a);
        } else if (line.mnemonic == ".equ") {
            if (ops.size() != 2)
                err(".equ takes NAME, VALUE");
            long v = evalExpr(ops[1]);
            if (!emitting_)
                prog_.symbols[ops[0]] = static_cast<std::uint32_t>(v);
        } else if (line.mnemonic == ".dmem") {
            if (ops.size() != 2)
                err(".dmem takes ADDR, VALUE");
            long a = evalExpr(ops[0]);
            long v = evalExpr(ops[1]);
            needRange(a, 0, kInternalMemWords - 1, ".dmem address");
            needRange(v, -32768, 65535, ".dmem value");
            if (emitting_) {
                prog_.dataInit.emplace_back(static_cast<Addr>(a),
                                            static_cast<Word>(v));
            }
        } else {
            err(strprintf("unknown directive '%s'", line.mnemonic.c_str()));
        }
    }

    std::optional<Cond>
    branchCond(const std::string &mnem) const
    {
        for (unsigned c = 0; c < 8; ++c) {
            if (mnem == condMnemonic(static_cast<Cond>(c)))
                return static_cast<Cond>(c);
        }
        return std::nullopt;
    }

    std::optional<Opcode>
    findOpcode(const std::string &mnem) const
    {
        for (unsigned i = 0; i < kNumOpcodes; ++i) {
            auto op = static_cast<Opcode>(i);
            if (mnem == opInfo(op).mnemonic)
                return op;
        }
        return std::nullopt;
    }

    void
    instruction(const Line &line)
    {
        const auto &ops = line.operands;
        auto nops = ops.size() == 1 && ops[0].empty() ? 0 : ops.size();

        auto needOps = [&](std::size_t n) {
            if (nops != n) {
                err(strprintf("'%s' expects %zu operand(s), got %zu",
                              line.mnemonic.c_str(), n, nops));
            }
        };

        // Branch mnemonics map onto BR with a condition field.
        if (auto cond = branchCond(line.mnemonic)) {
            needOps(1);
            long target = evalExpr(ops[0]);
            long offset = target - static_cast<long>(pc_);
            if (emitting_)
                needRange(offset, -2048, 2047, "branch offset");
            Instruction inst = makeBranch(*cond, static_cast<int>(offset));
            inst.wctl = line.wctl;
            emit(inst);
            return;
        }

        auto op = findOpcode(line.mnemonic);
        if (!op)
            err(strprintf("unknown mnemonic '%s'", line.mnemonic.c_str()));
        Instruction inst;
        inst.op = *op;
        inst.wctl = line.wctl;

        switch (inst.info().format) {
          case Format::None:
            needOps(0);
            break;
          case Format::R3:
            needOps(3);
            inst.rd = needReg(ops[0]);
            inst.ra = needReg(ops[1]);
            inst.rb = needReg(ops[2]);
            break;
          case Format::R2:
            needOps(2);
            inst.rd = needReg(ops[0]);
            if (inst.op == Opcode::TAS) {
                std::optional<unsigned> base;
                long off = 0;
                parseMemOperand(ops[1], base, off);
                if (!base || off != 0)
                    err("tas needs a register-indirect operand [ra]");
                inst.ra = *base;
            } else {
                inst.ra = needReg(ops[1]);
            }
            break;
          case Format::R1D:
            needOps(1);
            inst.rd = needReg(ops[0]);
            break;
          case Format::R1A:
            needOps(1);
            inst.ra = needReg(ops[0]);
            break;
          case Format::RR:
            needOps(2);
            inst.ra = needReg(ops[0]);
            inst.rb = needReg(ops[1]);
            break;
          case Format::RI: {
            const OpInfo &oi = inst.info();
            if (oi.isExternal || oi.isInternalMem) {
                needOps(2);
                inst.rd = needReg(ops[0]);
                std::optional<unsigned> base;
                long off = 0;
                parseMemOperand(ops[1], base, off);
                if (!base)
                    err("this addressing mode needs a base register");
                inst.ra = *base;
                inst.imm = static_cast<int>(
                    needRange(off, -128, 127, "offset"));
            } else {
                needOps(3);
                inst.rd = needReg(ops[0]);
                inst.ra = needReg(ops[1]);
                inst.imm = static_cast<int>(needRange(
                    evalExpr(ops[2]), -128, 127, "immediate"));
            }
            break;
          }
          case Format::RIA:
            needOps(2);
            inst.ra = needReg(ops[0]);
            inst.imm = static_cast<int>(
                needRange(evalExpr(ops[1]), -128, 127, "immediate"));
            break;
          case Format::DI:
            needOps(2);
            inst.rd = needReg(ops[0]);
            inst.imm = static_cast<int>(needRange(
                evalExpr(ops[1]), -2048, 2047, "ldi immediate"));
            break;
          case Format::IH:
            needOps(2);
            inst.rd = needReg(ops[0]);
            inst.imm = static_cast<int>(
                needRange(evalExpr(ops[1]), 0, 255, "ldih immediate"));
            break;
          case Format::MD: {
            needOps(2);
            inst.rd = needReg(ops[0]);
            std::optional<unsigned> base;
            long off = 0;
            parseMemOperand(ops[1], base, off);
            if (base)
                err("direct form takes '[addr]' with no register");
            inst.imm = static_cast<int>(
                needRange(off, 0, 511, "direct address"));
            break;
          }
          case Format::J:
            needOps(1);
            inst.imm = static_cast<int>(needRange(
                evalExpr(ops[0]), 0, 0xffff, "jump target"));
            break;
          case Format::B:
            // Raw "br" is not exposed; branches use beq/bne/... forms.
            err("use a condition mnemonic (beq/bne/...), not 'br'");
          case Format::Ret:
            if (nops == 0) {
                inst.imm = 0;
            } else {
                needOps(1);
                inst.imm = static_cast<int>(needRange(
                    evalExpr(ops[0]), 0, 15, "ret pop count"));
            }
            break;
          case Format::Swi:
            needOps(2);
            inst.stream = static_cast<std::uint8_t>(needRange(
                evalExpr(ops[0]), 0, kNumStreams - 1, "stream"));
            inst.bit = static_cast<std::uint8_t>(
                needRange(evalExpr(ops[1]), 0, 7, "interrupt bit"));
            break;
          case Format::Clr:
            needOps(1);
            inst.bit = static_cast<std::uint8_t>(
                needRange(evalExpr(ops[0]), 0, 7, "interrupt bit"));
            break;
          case Format::Fork:
            needOps(2);
            inst.stream = static_cast<std::uint8_t>(needRange(
                evalExpr(ops[0]), 0, kNumStreams - 1, "stream"));
            inst.imm = static_cast<int>(needRange(
                evalExpr(ops[1]), 0, 0xfff, "fork target"));
            break;
          case Format::ForkR:
            needOps(2);
            inst.stream = static_cast<std::uint8_t>(needRange(
                evalExpr(ops[0]), 0, kNumStreams - 1, "stream"));
            inst.ra = needReg(ops[1]);
            break;
          case Format::Sched:
            needOps(2);
            inst.slot = static_cast<std::uint8_t>(needRange(
                evalExpr(ops[0]), 0, kScheduleSlots - 1, "slot"));
            inst.stream = static_cast<std::uint8_t>(needRange(
                evalExpr(ops[1]), 0, kNumStreams - 1, "stream"));
            break;
        }
        emit(inst);
    }

    void
    pass(bool emit_pass)
    {
        emitting_ = emit_pass;
        pc_ = 0;
        if (emit_pass)
            prog_.dataInit.clear();
        for (const auto &line : lines_) {
            curLine_ = line.number;
            if (!line.label.empty()) {
                if (!emitting_) {
                    if (prog_.symbols.count(line.label)) {
                        err(strprintf("duplicate label '%s'",
                                      line.label.c_str()));
                    }
                    prog_.symbols[line.label] = pc_;
                }
            }
            if (line.mnemonic.empty())
                continue;
            if (line.isDirective)
                directive(line);
            else
                instruction(line);
        }
    }
};

} // namespace

Program
assemble(const std::string &source)
{
    return Assembler(source).run();
}

std::string
disassemble(const Program &prog)
{
    std::string out;
    for (std::size_t a = 0; a < prog.code.size(); ++a) {
        Instruction inst = decode(prog.code[a]);
        out += strprintf("%04zx: %06x  %s\n", a,
                         static_cast<unsigned>(prog.code[a]),
                         inst.toString().c_str());
    }
    return out;
}

} // namespace disc
