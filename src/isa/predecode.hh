/**
 * @file
 * Load-time instruction predecoding.
 *
 * DISC's program memory is a fixed Harvard store of 24-bit words, so
 * the decoded form, the legality check and the dependency masks of
 * every instruction are pure functions of the program word. The
 * cycle-accurate machine used to re-derive all three for every
 * candidate stream on every cycle; instead we derive them once at
 * Machine::load() / Interp::load() into a per-address table and the
 * per-cycle loop only indexes it.
 *
 * The dependency masks name the 16 architected registers in bits
 * 0..15 plus three pseudo-resources (flags, AWP, MULH latch) the
 * interlock must also order: see kDepFlags/kDepAwp/kDepMulHigh.
 */

#ifndef DISC_ISA_PREDECODE_HH
#define DISC_ISA_PREDECODE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"
#include "isa/uops.hh"

namespace disc
{

/** Dependency-mask pseudo-resource bits beyond the 16 register names. */
constexpr std::uint32_t kDepFlags = 1u << 16;   ///< ZNCV flags
constexpr std::uint32_t kDepAwp = 1u << 17;     ///< active window pointer
constexpr std::uint32_t kDepMulHigh = 1u << 18; ///< MUL high-half latch

/** Dependency bit(s) contributed by naming register @p r. */
std::uint32_t depRegBit(unsigned r);

/**
 * Read/write dependency masks of a decoded instruction, as consumed
 * by the machine's issue interlock.
 */
void depMasks(const Instruction &inst, std::uint32_t &reads,
              std::uint32_t &writes);

/** Everything the issue path needs to know about one program word. */
struct PredecodedInst
{
    Instruction inst;              ///< decoded form (NOP when !legal)
    std::uint32_t readsMask = 0;   ///< source dependency mask
    std::uint32_t writesMask = 0;  ///< destination dependency mask
    Uop uop = Uop::NOP;            ///< pre-resolved handler index
    bool legal = false;            ///< isLegal(word)
};

/** Predecode one instruction word (decode + legality + dep masks). */
PredecodedInst predecode(InstWord word);

/**
 * Per-address predecode table over a program image. Out-of-image
 * addresses yield the predecoded NOP, mirroring ProgramMemory::fetch.
 */
class PredecodeTable
{
  public:
    /** Build the table for a program (replaces the current contents). */
    void load(const Program &prog);

    /** Predecoded entry at an address; NOP beyond the image. */
    const PredecodedInst &at(PAddr addr) const
    {
        return addr < table_.size() ? table_[addr] : nop_;
    }

    /** Number of predecoded words. */
    std::size_t size() const { return table_.size(); }

  private:
    std::vector<PredecodedInst> table_;
    PredecodedInst nop_ = predecode(0);
};

} // namespace disc

#endif // DISC_ISA_PREDECODE_HH
