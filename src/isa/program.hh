/**
 * @file
 * Assembled-program container: program-memory image, internal-memory
 * initialisation records and the symbol table.
 */

#ifndef DISC_ISA_PROGRAM_HH
#define DISC_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace disc
{

/**
 * An assembled DISC1 program. Program memory holds one 24-bit
 * instruction word per address; unreachable gaps are NOPs.
 */
struct Program
{
    /** Program-memory image, indexed by instruction address. */
    std::vector<InstWord> code;

    /** Internal data-memory preloads: (word address, value). */
    std::vector<std::pair<Addr, Word>> dataInit;

    /** Label/equ symbol table (name -> value). */
    std::map<std::string, std::uint32_t> symbols;

    /** Address of a symbol; fatal() if undefined. */
    PAddr symbol(const std::string &name) const;

    /** True if the symbol exists. */
    bool hasSymbol(const std::string &name) const;

    /** Number of program words. */
    std::size_t size() const { return code.size(); }
};

} // namespace disc

#endif // DISC_ISA_PROGRAM_HH
