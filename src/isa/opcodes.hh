/**
 * @file
 * DISC1 opcode set and per-opcode metadata.
 *
 * The paper specifies a load/store RISC with: single-cycle instructions,
 * a 24-bit program word, 16-bit data, a 16x16 hardware multiplier,
 * window-pointer auto increment/decrement folded into ordinary
 * instructions, internal-memory addressing via register indirect,
 * register+offset and 9-bit immediate, and stream/interrupt control
 * instructions. It does not give encodings; this file defines ours.
 *
 * Instruction word layout (24 bits):
 *
 *   [23:18] opcode      (6 bits)
 *   [17:16] wctl        window control: 0 none, 1 AWP++, 2 AWP-- (after)
 *   [15:0]  operands, by format (see Format)
 */

#ifndef DISC_ISA_OPCODES_HH
#define DISC_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace disc
{

/** Operand encodings within the low 16 bits of the instruction word. */
enum class Format : std::uint8_t
{
    None,   ///< no operands (NOP, RETI, HALT, WINC, WDEC)
    R3,     ///< rd[15:12] ra[11:8] rb[7:4]
    R2,     ///< rd[15:12] ra[11:8]            (MOV, NOT, NEG, TAS)
    R1D,    ///< rd[15:12]                     (MULH)
    R1A,    ///< ra[11:8]                      (JR, CALLR)
    RR,     ///< ra[11:8] rb[7:4]              (CMP, TST)
    RI,     ///< rd[15:12] ra[11:8] imm8[7:0]  (ALU immediates, LD/ST/LDM/STM)
    RIA,    ///< ra[11:8] imm8[7:0]            (CMPI)
    DI,     ///< rd[15:12] imm12[11:0]         (LDI, sign-extended)
    IH,     ///< rd[15:12] imm8[7:0]           (LDIH, into high byte)
    MD,     ///< rd[15:12] addr9[8:0]          (LDMD/STMD direct internal)
    J,      ///< target16[15:0]                (JMP, CALL)
    B,      ///< cond[15:12] off12[11:0]       (BR, PC-relative signed)
    Ret,    ///< n4[3:0]                       (RET n)
    Swi,    ///< s2[13:12] bit3[2:0]           (SWI stream, bit)
    Clr,    ///< bit3[2:0]                     (CLRI bit)
    Fork,   ///< s2[13:12] addr12[11:0]        (FORK stream, target)
    ForkR,  ///< s2[13:12] ra[11:8]            (FORKR stream, ra)
    Sched,  ///< slot4[15:12] s2[1:0]          (SCHED slot, stream)
};

/** The DISC1 opcode set. Values are the 6-bit encodings. */
enum class Opcode : std::uint8_t
{
    NOP = 0,
    // ALU, three register operands. All set ZNCV.
    ADD, ADC, SUB, SBC, AND, OR, XOR, SHL, SHR, ASR,
    // 16x16 multiply: MUL writes the low half to rd and latches the
    // high half per stream; MULH reads the latch.
    MUL, MULH,
    // Two-operand register moves/unaries (set ZN).
    MOV, NOT, NEG,
    // Compare / test (flags only).
    CMP, TST,
    // ALU immediates (imm8 sign-extended; logical ops zero-extended).
    ADDI, SUBI, ANDI, ORI, XORI, CMPI,
    // Constant loads: LDI sign-extends imm12; LDIH replaces high byte.
    LDI, LDIH,
    // External (asynchronous bus) load/store: rd, [ra + simm8].
    LD, ST,
    // Internal memory load/store: rd, [ra + simm8]; direct 9-bit forms.
    LDM, STM, LDMD, STMD,
    // Atomic test-and-set on internal memory: rd <- mem[ra]; mem[ra] <- ~0.
    TAS,
    // Control transfer.
    JMP, JR, CALL, CALLR, RET, BR,
    // Stream / interrupt control.
    SWI, CLRI, RETI, HALT, FORK, FORKR, SCHED,
    // Explicit window motion (also available as wctl on any instruction).
    WINC, WDEC,

    NumOpcodes
};

/** Branch condition codes for the BR cond field. */
enum class Cond : std::uint8_t
{
    EQ = 0,  ///< Z
    NE,      ///< !Z
    LT,      ///< N ^ V      (signed less-than after CMP)
    GE,      ///< !(N ^ V)
    ULT,     ///< C          (borrow convention: C set on unsigned <)
    UGE,     ///< !C
    MI,      ///< N
    PL,      ///< !N
};

/** Window-control field values. */
enum class WCtl : std::uint8_t
{
    None = 0,
    Inc = 1,   ///< AWP += 1 after the instruction completes
    Dec = 2,   ///< AWP -= 1 after the instruction completes
};

/** Static properties of one opcode. */
struct OpInfo
{
    std::string_view mnemonic;
    Format format;
    bool writesRd;      ///< architected write to the rd field register
    bool readsRd;       ///< rd field is a *source* (stores)
    bool readsRa;
    bool readsRb;
    bool setsFlags;
    bool isJumpType;    ///< may redirect the stream's PC (paper "aljmp")
    bool isExternal;    ///< goes through the asynchronous bus interface
    bool isInternalMem; ///< touches on-chip memory
    bool movesWindow;   ///< intrinsically changes AWP (CALL/RET/WINC/...)
};

/** Look up metadata for an opcode. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic for an opcode ("add", "jmp", ...). */
std::string_view opMnemonic(Opcode op);

/** Mnemonic for a branch condition ("beq", "bne", ...). */
std::string_view condMnemonic(Cond c);

/** Number of defined opcodes. */
constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::NumOpcodes);

} // namespace disc

#endif // DISC_ISA_OPCODES_HH
