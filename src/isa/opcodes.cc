#include "isa/opcodes.hh"

#include <array>

#include "common/logging.hh"

namespace disc
{

namespace
{

// One row per opcode, indexed by the enum value.
//                 mnemonic  format        wrRd   rdRd   rdRa   rdRb   flags  jmp    ext    imem   window
constexpr std::array<OpInfo, kNumOpcodes> opTable = {{
    {"nop",   Format::None,  false, false, false, false, false, false, false, false, false},
    {"add",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"adc",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"sub",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"sbc",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"and",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"or",    Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"xor",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"shl",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"shr",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"asr",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"mul",   Format::R3,    true, false,  true,  true,  true,  false, false, false, false},
    {"mulh",  Format::R1D,   true, false,  false, false, false, false, false, false, false},
    {"mov",   Format::R2,    true, false,  true,  false, true,  false, false, false, false},
    {"not",   Format::R2,    true, false,  true,  false, true,  false, false, false, false},
    {"neg",   Format::R2,    true, false,  true,  false, true,  false, false, false, false},
    {"cmp",   Format::RR,    false, false, true,  true,  true,  false, false, false, false},
    {"tst",   Format::RR,    false, false, true,  true,  true,  false, false, false, false},
    {"addi",  Format::RI,    true, false,  true,  false, true,  false, false, false, false},
    {"subi",  Format::RI,    true, false,  true,  false, true,  false, false, false, false},
    {"andi",  Format::RI,    true, false,  true,  false, true,  false, false, false, false},
    {"ori",   Format::RI,    true, false,  true,  false, true,  false, false, false, false},
    {"xori",  Format::RI,    true, false,  true,  false, true,  false, false, false, false},
    {"cmpi",  Format::RIA,   false, false, true,  false, true,  false, false, false, false},
    {"ldi",   Format::DI,    true, false,  false, false, false, false, false, false, false},
    {"ldih",  Format::IH,    true, false,  false, false, false, false, false, false, false},
    {"ld",    Format::RI,    true, false,  true,  false, false, false, true,  false, false},
    {"st",    Format::RI,    false, true,  true,  false,  false, false, true,  false, false},
    {"ldm",   Format::RI,    true, false,  true,  false, false, false, false, true,  false},
    {"stm",   Format::RI,    false, true,  true,  false,  false, false, false, true,  false},
    {"ldmd",  Format::MD,    true, false,  false, false, false, false, false, true,  false},
    {"stmd",  Format::MD,    false, true,  false, false,  false, false, false, true,  false},
    {"tas",   Format::R2,    true, false,  true,  false, true,  false, false, true,  false},
    {"jmp",   Format::J,     false, false, false, false, false, true,  false, false, false},
    {"jr",    Format::R1A,   false, false, true,  false, false, true,  false, false, false},
    {"call",  Format::J,     false, false, false, false, false, true,  false, false, true},
    {"callr", Format::R1A,   false, false, true,  false, false, true,  false, false, true},
    {"ret",   Format::Ret,   false, false, false, false, false, true,  false, false, true},
    {"br",    Format::B,     false, false, false, false, false, true,  false, false, false},
    {"swi",   Format::Swi,   false, false, false, false, false, false, false, false, false},
    {"clri",  Format::Clr,   false, false, false, false, false, false, false, false, false},
    {"reti",  Format::None,  false, false, false, false, false, true,  false, false, true},
    {"halt",  Format::None,  false, false, false, false, false, false, false, false, false},
    {"fork",  Format::Fork,  false, false, false, false, false, false, false, false, false},
    {"forkr", Format::ForkR, false, false, true,  false, false, false, false, false, false},
    {"sched", Format::Sched, false, false, false, false, false, false, false, false, false},
    {"winc",  Format::None,  false, false, false, false, false, false, false, false, true},
    {"wdec",  Format::None,  false, false, false, false, false, false, false, false, true},
}};

constexpr std::array<std::string_view, 8> condTable = {
    "beq", "bne", "blt", "bge", "bult", "buge", "bmi", "bpl",
};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    if (idx >= kNumOpcodes)
        panic("opInfo: bad opcode %u", idx);
    return opTable[idx];
}

std::string_view
opMnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

std::string_view
condMnemonic(Cond c)
{
    auto idx = static_cast<unsigned>(c);
    if (idx >= condTable.size())
        panic("condMnemonic: bad condition %u", idx);
    return condTable[idx];
}

} // namespace disc
