/**
 * @file
 * Micro-op dispatch layer: a pre-resolved handler index per program
 * word, computed once at predecode time.
 *
 * The execute stage and the golden-model interpreter used to walk a
 * ~50-way `switch` on Opcode for every retired instruction (plus a
 * second nested switch on Cond for branches). A Uop names the exact
 * semantic routine directly — BR is split into one micro-op per
 * condition — so the per-cycle dispatch is a single indexed load from
 * a function-pointer table instead of two unpredictable switches.
 *
 * The mapping Opcode (x Cond) -> Uop is a pure constexpr function and
 * its completeness is enforced at compile time: adding an Opcode
 * without extending uopFor() fails the build here, and each dispatch
 * table (sim/stage_execute.cc, sim/interp.cc) static_asserts that it
 * installs a handler for every Uop. The legacy switches remain as the
 * reference path, selected by MachineConfig/Interp toggles or the
 * DISC_NO_UOP=1 environment variable; equivalence between the two is
 * part of the tier-1 test suite.
 */

#ifndef DISC_ISA_UOPS_HH
#define DISC_ISA_UOPS_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "isa/opcodes.hh"

namespace disc
{

/**
 * Handler index for one predecoded instruction. One value per opcode,
 * except BR which gets one per branch condition so the taken test is
 * resolved at predecode time.
 */
enum class Uop : std::uint8_t
{
    NOP = 0,
    ADD, ADC, SUB, SBC, AND, OR, XOR, SHL, SHR, ASR,
    MUL, MULH,
    MOV, NOT, NEG,
    CMP, TST,
    ADDI, SUBI, ANDI, ORI, XORI, CMPI,
    LDI, LDIH,
    LD, ST,
    LDM, STM, LDMD, STMD,
    TAS,
    JMP, JR, CALL, CALLR, RET,
    BR_EQ, BR_NE, BR_LT, BR_GE, BR_ULT, BR_UGE, BR_MI, BR_PL,
    SWI, CLRI, RETI, HALT, FORK, FORKR, SCHED,
    WINC, WDEC,

    NumUops,

    /** uopFor() sentinel for an unmapped opcode (never stored). */
    Invalid = 0xff,
};

/** Number of defined micro-ops. */
constexpr unsigned kNumUops = static_cast<unsigned>(Uop::NumUops);

/**
 * Map an opcode (and, for BR, its condition) to its micro-op.
 * Returns Uop::Invalid for an unmapped opcode; the static_assert
 * below guarantees that can never happen for a real Opcode.
 */
constexpr Uop
uopFor(Opcode op, Cond cond)
{
    switch (op) {
      case Opcode::NOP: return Uop::NOP;
      case Opcode::ADD: return Uop::ADD;
      case Opcode::ADC: return Uop::ADC;
      case Opcode::SUB: return Uop::SUB;
      case Opcode::SBC: return Uop::SBC;
      case Opcode::AND: return Uop::AND;
      case Opcode::OR: return Uop::OR;
      case Opcode::XOR: return Uop::XOR;
      case Opcode::SHL: return Uop::SHL;
      case Opcode::SHR: return Uop::SHR;
      case Opcode::ASR: return Uop::ASR;
      case Opcode::MUL: return Uop::MUL;
      case Opcode::MULH: return Uop::MULH;
      case Opcode::MOV: return Uop::MOV;
      case Opcode::NOT: return Uop::NOT;
      case Opcode::NEG: return Uop::NEG;
      case Opcode::CMP: return Uop::CMP;
      case Opcode::TST: return Uop::TST;
      case Opcode::ADDI: return Uop::ADDI;
      case Opcode::SUBI: return Uop::SUBI;
      case Opcode::ANDI: return Uop::ANDI;
      case Opcode::ORI: return Uop::ORI;
      case Opcode::XORI: return Uop::XORI;
      case Opcode::CMPI: return Uop::CMPI;
      case Opcode::LDI: return Uop::LDI;
      case Opcode::LDIH: return Uop::LDIH;
      case Opcode::LD: return Uop::LD;
      case Opcode::ST: return Uop::ST;
      case Opcode::LDM: return Uop::LDM;
      case Opcode::STM: return Uop::STM;
      case Opcode::LDMD: return Uop::LDMD;
      case Opcode::STMD: return Uop::STMD;
      case Opcode::TAS: return Uop::TAS;
      case Opcode::JMP: return Uop::JMP;
      case Opcode::JR: return Uop::JR;
      case Opcode::CALL: return Uop::CALL;
      case Opcode::CALLR: return Uop::CALLR;
      case Opcode::RET: return Uop::RET;
      case Opcode::BR:
        switch (cond) {
          case Cond::EQ: return Uop::BR_EQ;
          case Cond::NE: return Uop::BR_NE;
          case Cond::LT: return Uop::BR_LT;
          case Cond::GE: return Uop::BR_GE;
          case Cond::ULT: return Uop::BR_ULT;
          case Cond::UGE: return Uop::BR_UGE;
          case Cond::MI: return Uop::BR_MI;
          case Cond::PL: return Uop::BR_PL;
        }
        return Uop::Invalid;
      case Opcode::SWI: return Uop::SWI;
      case Opcode::CLRI: return Uop::CLRI;
      case Opcode::RETI: return Uop::RETI;
      case Opcode::HALT: return Uop::HALT;
      case Opcode::FORK: return Uop::FORK;
      case Opcode::FORKR: return Uop::FORKR;
      case Opcode::SCHED: return Uop::SCHED;
      case Opcode::WINC: return Uop::WINC;
      case Opcode::WDEC: return Uop::WDEC;
      case Opcode::NumOpcodes: break;
    }
    return Uop::Invalid;
}

/** Opcode a micro-op belongs to (BR_* collapse back to BR). */
Opcode uopOpcode(Uop u);

/** Printable micro-op name ("add", "br.eq", ...). */
std::string_view uopName(Uop u);

namespace detail
{

/** Every opcode (every condition for BR) must map to a micro-op. */
constexpr bool
uopMapComplete()
{
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
        Opcode op = static_cast<Opcode>(i);
        if (op == Opcode::BR) {
            for (unsigned c = 0; c < 8; ++c) {
                if (uopFor(op, static_cast<Cond>(c)) == Uop::Invalid)
                    return false;
            }
        } else if (uopFor(op, Cond::EQ) == Uop::Invalid) {
            return false;
        }
    }
    return true;
}

} // namespace detail

static_assert(detail::uopMapComplete(),
              "every Opcode (and BR condition) needs a Uop mapping");

/**
 * A Uop-indexed handler table. Built as a constexpr object so each
 * dispatch site can `static_assert(table.complete())`: an Opcode added
 * without a handler breaks the build of that translation unit rather
 * than surfacing as a null call at fuzz time.
 */
template <typename Handler>
class UopTable
{
  public:
    constexpr void set(Uop u, Handler h)
    {
        fn_[static_cast<std::size_t>(u)] = h;
    }

    constexpr Handler operator[](Uop u) const
    {
        return fn_[static_cast<std::size_t>(u)];
    }

    /** True when every micro-op has a non-null handler. */
    constexpr bool complete() const
    {
        for (Handler h : fn_) {
            if (h == nullptr)
                return false;
        }
        return true;
    }

  private:
    std::array<Handler, kNumUops> fn_{};
};

} // namespace disc

#endif // DISC_ISA_UOPS_HH
