#include "isa/instruction.hh"

#include "common/logging.hh"

namespace disc
{

namespace reg
{

std::string
name(unsigned r)
{
    if (isWindow(r))
        return strprintf("r%u", r);
    if (isGlobal(r))
        return strprintf("g%u", r - G0);
    switch (r) {
      case SR: return "sr";
      case IRR: return "irr";
      case IMR: return "imr";
      case AWP: return "awp";
      default: return strprintf("?%u", r);
    }
}

} // namespace reg

namespace
{

constexpr std::uint32_t kWordMask = 0xffffffu;

int
signExtend(std::uint32_t value, unsigned bits)
{
    std::uint32_t sign = 1u << (bits - 1);
    std::uint32_t mask = (1u << bits) - 1;
    value &= mask;
    return static_cast<int>((value ^ sign)) - static_cast<int>(sign);
}

std::uint32_t
bits(std::uint32_t word, unsigned hi, unsigned lo)
{
    return (word >> lo) & ((1u << (hi - lo + 1)) - 1);
}

} // namespace

Instruction
decode(InstWord word)
{
    word &= kWordMask;
    Instruction inst;
    unsigned op_field = bits(word, 23, 18);
    if (op_field >= kNumOpcodes) {
        // Illegal opcode; machine layer raises the interrupt via
        // isLegal(), we conservatively decode to NOP.
        inst.op = Opcode::NOP;
        return inst;
    }
    inst.op = static_cast<Opcode>(op_field);
    unsigned wctl = bits(word, 17, 16);
    inst.wctl = wctl <= 2 ? static_cast<WCtl>(wctl) : WCtl::None;

    switch (inst.info().format) {
      case Format::None:
        break;
      case Format::R3:
        inst.rd = bits(word, 15, 12);
        inst.ra = bits(word, 11, 8);
        inst.rb = bits(word, 7, 4);
        break;
      case Format::R2:
        inst.rd = bits(word, 15, 12);
        inst.ra = bits(word, 11, 8);
        break;
      case Format::R1D:
        inst.rd = bits(word, 15, 12);
        break;
      case Format::R1A:
        inst.ra = bits(word, 11, 8);
        break;
      case Format::RR:
        inst.ra = bits(word, 11, 8);
        inst.rb = bits(word, 7, 4);
        break;
      case Format::RI:
        inst.rd = bits(word, 15, 12);
        inst.ra = bits(word, 11, 8);
        inst.imm = signExtend(bits(word, 7, 0), 8);
        break;
      case Format::RIA:
        inst.ra = bits(word, 11, 8);
        inst.imm = signExtend(bits(word, 7, 0), 8);
        break;
      case Format::DI:
        inst.rd = bits(word, 15, 12);
        inst.imm = signExtend(bits(word, 11, 0), 12);
        break;
      case Format::IH:
        inst.rd = bits(word, 15, 12);
        inst.imm = static_cast<int>(bits(word, 7, 0));
        break;
      case Format::MD:
        inst.rd = bits(word, 15, 12);
        inst.imm = static_cast<int>(bits(word, 8, 0));
        break;
      case Format::J:
        inst.imm = static_cast<int>(bits(word, 15, 0));
        break;
      case Format::B:
        inst.cond = static_cast<Cond>(bits(word, 15, 12) & 0x7);
        inst.imm = signExtend(bits(word, 11, 0), 12);
        break;
      case Format::Ret:
        inst.imm = static_cast<int>(bits(word, 3, 0));
        break;
      case Format::Swi:
        inst.stream = bits(word, 13, 12);
        inst.bit = bits(word, 2, 0);
        break;
      case Format::Clr:
        inst.bit = bits(word, 2, 0);
        break;
      case Format::Fork:
        inst.stream = bits(word, 13, 12);
        inst.imm = static_cast<int>(bits(word, 11, 0));
        break;
      case Format::ForkR:
        inst.stream = bits(word, 13, 12);
        inst.ra = bits(word, 11, 8);
        break;
      case Format::Sched:
        inst.slot = bits(word, 15, 12);
        inst.stream = bits(word, 1, 0);
        break;
    }
    return inst;
}

bool
isLegal(InstWord word)
{
    word &= kWordMask;
    unsigned op_field = bits(word, 23, 18);
    if (op_field >= kNumOpcodes)
        return false;
    if (bits(word, 17, 16) == 3)
        return false;
    return true;
}

InstWord
encode(const Instruction &inst)
{
    std::uint32_t word = static_cast<std::uint32_t>(inst.op) << 18;
    word |= static_cast<std::uint32_t>(inst.wctl) << 16;

    auto field = [](std::uint32_t v, unsigned hi, unsigned lo) {
        std::uint32_t mask = (1u << (hi - lo + 1)) - 1;
        return (v & mask) << lo;
    };

    switch (inst.info().format) {
      case Format::None:
        break;
      case Format::R3:
        word |= field(inst.rd, 15, 12) | field(inst.ra, 11, 8) |
                field(inst.rb, 7, 4);
        break;
      case Format::R2:
        word |= field(inst.rd, 15, 12) | field(inst.ra, 11, 8);
        break;
      case Format::R1D:
        word |= field(inst.rd, 15, 12);
        break;
      case Format::R1A:
        word |= field(inst.ra, 11, 8);
        break;
      case Format::RR:
        word |= field(inst.ra, 11, 8) | field(inst.rb, 7, 4);
        break;
      case Format::RI:
        word |= field(inst.rd, 15, 12) | field(inst.ra, 11, 8) |
                field(static_cast<std::uint32_t>(inst.imm), 7, 0);
        break;
      case Format::RIA:
        word |= field(inst.ra, 11, 8) |
                field(static_cast<std::uint32_t>(inst.imm), 7, 0);
        break;
      case Format::DI:
        word |= field(inst.rd, 15, 12) |
                field(static_cast<std::uint32_t>(inst.imm), 11, 0);
        break;
      case Format::IH:
        word |= field(inst.rd, 15, 12) |
                field(static_cast<std::uint32_t>(inst.imm), 7, 0);
        break;
      case Format::MD:
        word |= field(inst.rd, 15, 12) |
                field(static_cast<std::uint32_t>(inst.imm), 8, 0);
        break;
      case Format::J:
        word |= field(static_cast<std::uint32_t>(inst.imm), 15, 0);
        break;
      case Format::B:
        word |= field(static_cast<std::uint32_t>(inst.cond), 15, 12) |
                field(static_cast<std::uint32_t>(inst.imm), 11, 0);
        break;
      case Format::Ret:
        word |= field(static_cast<std::uint32_t>(inst.imm), 3, 0);
        break;
      case Format::Swi:
        word |= field(inst.stream, 13, 12) | field(inst.bit, 2, 0);
        break;
      case Format::Clr:
        word |= field(inst.bit, 2, 0);
        break;
      case Format::Fork:
        word |= field(inst.stream, 13, 12) |
                field(static_cast<std::uint32_t>(inst.imm), 11, 0);
        break;
      case Format::ForkR:
        word |= field(inst.stream, 13, 12) | field(inst.ra, 11, 8);
        break;
      case Format::Sched:
        word |= field(inst.slot, 15, 12) | field(inst.stream, 1, 0);
        break;
    }
    return word & kWordMask;
}

std::string
Instruction::toString() const
{
    const OpInfo &oi = info();
    std::string out;
    if (op == Opcode::BR)
        out = std::string(condMnemonic(cond));
    else
        out = std::string(oi.mnemonic);
    if (wctl == WCtl::Inc)
        out += "+";
    else if (wctl == WCtl::Dec)
        out += "-";

    switch (oi.format) {
      case Format::None:
        break;
      case Format::R3:
        out += strprintf(" %s, %s, %s", reg::name(rd).c_str(),
                         reg::name(ra).c_str(), reg::name(rb).c_str());
        break;
      case Format::R2:
        if (op == Opcode::TAS)
            out += strprintf(" %s, [%s]", reg::name(rd).c_str(),
                             reg::name(ra).c_str());
        else
            out += strprintf(" %s, %s", reg::name(rd).c_str(),
                             reg::name(ra).c_str());
        break;
      case Format::R1D:
        out += strprintf(" %s", reg::name(rd).c_str());
        break;
      case Format::R1A:
        out += strprintf(" %s", reg::name(ra).c_str());
        break;
      case Format::RR:
        out += strprintf(" %s, %s", reg::name(ra).c_str(),
                         reg::name(rb).c_str());
        break;
      case Format::RI:
        if (oi.isExternal || oi.isInternalMem) {
            out += strprintf(" %s, [%s%+d]", reg::name(rd).c_str(),
                             reg::name(ra).c_str(), imm);
        } else {
            out += strprintf(" %s, %s, %d", reg::name(rd).c_str(),
                             reg::name(ra).c_str(), imm);
        }
        break;
      case Format::RIA:
        out += strprintf(" %s, %d", reg::name(ra).c_str(), imm);
        break;
      case Format::DI:
      case Format::IH:
        out += strprintf(" %s, %d", reg::name(rd).c_str(), imm);
        break;
      case Format::MD:
        out += strprintf(" %s, [%d]", reg::name(rd).c_str(), imm);
        break;
      case Format::J:
        out += strprintf(" 0x%04x", static_cast<unsigned>(imm));
        break;
      case Format::B:
        out += strprintf(" %+d", imm);
        break;
      case Format::Ret:
        out += strprintf(" %d", imm);
        break;
      case Format::Swi:
        out += strprintf(" %u, %u", stream, bit);
        break;
      case Format::Clr:
        out += strprintf(" %u", bit);
        break;
      case Format::Fork:
        out += strprintf(" %u, 0x%03x", stream,
                         static_cast<unsigned>(imm));
        break;
      case Format::ForkR:
        out += strprintf(" %u, %s", stream, reg::name(ra).c_str());
        break;
      case Format::Sched:
        out += strprintf(" %u, %u", slot, stream);
        break;
    }
    return out;
}

bool
Instruction::operator==(const Instruction &other) const
{
    return encode(*this) == encode(other);
}

Instruction
makeR3(Opcode op, unsigned rd, unsigned ra, unsigned rb, WCtl w)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.ra = ra;
    i.rb = rb;
    i.wctl = w;
    return i;
}

Instruction
makeR2(Opcode op, unsigned rd, unsigned ra, WCtl w)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.ra = ra;
    i.wctl = w;
    return i;
}

Instruction
makeRI(Opcode op, unsigned rd, unsigned ra, int imm, WCtl w)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.ra = ra;
    i.imm = imm;
    i.wctl = w;
    return i;
}

Instruction
makeLdi(unsigned rd, int imm)
{
    Instruction i;
    i.op = Opcode::LDI;
    i.rd = rd;
    i.imm = imm;
    return i;
}

Instruction
makeLdih(unsigned rd, unsigned imm)
{
    Instruction i;
    i.op = Opcode::LDIH;
    i.rd = rd;
    i.imm = static_cast<int>(imm & 0xff);
    return i;
}

Instruction
makeJump(Opcode op, PAddr target)
{
    Instruction i;
    i.op = op;
    i.imm = target;
    return i;
}

Instruction
makeBranch(Cond cond, int offset)
{
    Instruction i;
    i.op = Opcode::BR;
    i.cond = cond;
    i.imm = offset;
    return i;
}

Instruction
makeRet(unsigned pops)
{
    Instruction i;
    i.op = Opcode::RET;
    i.imm = static_cast<int>(pops);
    return i;
}

Instruction
makeSwi(unsigned stream, unsigned bit)
{
    Instruction i;
    i.op = Opcode::SWI;
    i.stream = stream;
    i.bit = bit;
    return i;
}

Instruction
makeClri(unsigned bit)
{
    Instruction i;
    i.op = Opcode::CLRI;
    i.bit = bit;
    return i;
}

Instruction
makeFork(unsigned stream, PAddr target)
{
    Instruction i;
    i.op = Opcode::FORK;
    i.stream = stream;
    i.imm = target;
    return i;
}

Instruction
makeSched(unsigned slot, unsigned stream)
{
    Instruction i;
    i.op = Opcode::SCHED;
    i.slot = slot;
    i.stream = stream;
    return i;
}

Instruction
makeOp(Opcode op, WCtl w)
{
    Instruction i;
    i.op = op;
    i.wctl = w;
    return i;
}

} // namespace disc
