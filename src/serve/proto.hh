/**
 * @file
 * disc-serve wire protocol: versioned, length-prefixed binary frames.
 *
 * Every frame is a 32-bit little-endian payload length followed by
 * the payload, built with the checkpoint serializer (fixed layout,
 * explicit sizes, checked reads — a malformed frame produces
 * fatal(), never UB). Every payload starts with the protocol
 * version, the message type and a client-chosen sequence number the
 * server echoes, so clients may pipeline arbitrarily many requests
 * per connection and match replies out of band.
 *
 * Requests carry the tenant id (share accounting), a session id and
 * an optional deadline in milliseconds (0 = never shed). Refusals are
 * explicit: BusyResp names whether the tenant queue was full, the
 * deadline passed while queued, or the server is draining — the
 * client's signal to back off rather than retry hot.
 */

#ifndef DISC_SERVE_PROTO_HH
#define DISC_SERVE_PROTO_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/session.hh"

namespace disc::serve
{

/** Protocol version in every payload (3: OpenReq board spec text). */
constexpr std::uint16_t kProtoVersion = 3;

/** Upper bound on one frame (guards a hostile length prefix). */
constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

/** MigrateReq target meaning "server picks another shard". */
constexpr std::uint32_t kAnyShard = 0xffffffffu;

/** Message types. Requests are < 64, responses >= 64. */
enum class MsgType : std::uint8_t
{
    OpenReq = 1,     ///< create a session from a workload spec
    RunReq = 2,      ///< run up to N cycles (optionally stop on idle)
    StepReq = 3,     ///< step exactly N cycles
    QueryReq = 4,    ///< digest + stats snapshot
    CloseReq = 5,    ///< destroy the session and its park file
    StatsReq = 6,    ///< server metrics (no session)
    ShutdownReq = 7, ///< ask the server to drain and exit
    MigrateReq = 8,  ///< move the session to another shard

    OpenResp = 64,
    RunResp = 65,
    StepResp = 66,
    QueryResp = 67,
    CloseResp = 68,
    StatsResp = 69,
    ShutdownResp = 70,
    MigrateResp = 71,
    ErrorResp = 96, ///< request failed (message in `error`)
    BusyResp = 97,  ///< backpressure: request refused or shed
};

/** Why a BusyResp was sent. */
enum class BusyReason : std::uint8_t
{
    QueueFull = 1, ///< tenant queue at its bound
    Deadline = 2,  ///< shed: waited past its deadline
    Draining = 3,  ///< server is shutting down
};

/** One decoded request. */
struct Request
{
    std::uint16_t version = kProtoVersion;
    MsgType type = MsgType::QueryReq;
    std::uint64_t seq = 0;       ///< echoed in the response
    TenantId tenant = 0;         ///< share-table owner
    std::uint32_t deadlineMs = 0; ///< 0 = never shed
    std::string session;         ///< empty for Stats/Shutdown

    // OpenReq body (spec.id/tenant are taken from the fields above).
    std::string source;
    std::string entry = "main";
    std::vector<StreamStart> streams;
    std::vector<ExtMemSpec> extmems;
    std::string board; ///< board spec text (may be empty)

    // RunReq body.
    Cycle maxCycles = 0;
    bool stopWhenIdle = true;

    // StepReq body.
    std::uint32_t stepCycles = 0;

    // MigrateReq body (kAnyShard = server picks the target).
    std::uint32_t targetShard = kAnyShard;
};

/** One decoded response. */
struct Response
{
    MsgType type = MsgType::ErrorResp;
    std::uint64_t seq = 0;

    // Run/Step/Query body.
    Cycle ran = 0;            ///< cycles simulated by this request
    Cycle totalCycles = 0;    ///< machine's cumulative cycle count
    std::uint64_t retired = 0; ///< cumulative retired instructions
    bool idle = false;
    std::uint64_t digest = 0; ///< Query/MigrateResp: run digest
    std::uint32_t shard = 0;  ///< MigrateResp: shard now hosting it

    // StatsResp body: ordered (name, value) counters.
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    // ErrorResp / BusyResp body.
    std::string error;
    BusyReason busy = BusyReason::QueueFull;
};

/** Encode a request payload (no frame prefix). */
std::vector<std::uint8_t> encodeRequest(const Request &req);

/** Decode a request payload; fatal() on malformed input. */
Request decodeRequest(const std::vector<std::uint8_t> &payload);

/** Encode a response payload (no frame prefix). */
std::vector<std::uint8_t> encodeResponse(const Response &resp);

/** Decode a response payload; fatal() on malformed input. */
Response decodeResponse(const std::vector<std::uint8_t> &payload);

/**
 * Incremental frame decoder for nonblocking sockets. Bytes arrive in
 * arbitrary slices (a length prefix may be split across reads, a
 * payload may trickle in one byte at a time); feed() buffers them and
 * next() yields complete payloads. A hostile length prefix makes the
 * stream unrecoverable: next() returns Error once and the reader
 * stays in the error state (the connection should be dropped — there
 * is no way to resynchronise a length-prefixed stream).
 */
class FrameReader
{
  public:
    enum class Status : std::uint8_t
    {
        NeedMore, ///< no complete frame buffered yet
        Frame,    ///< @p payload holds the next frame
        Error,    ///< stream corrupt (see error()); unrecoverable
    };

    explicit FrameReader(std::uint32_t max_frame = kMaxFrameBytes)
        : maxFrame_(max_frame)
    {}

    /** Append raw bytes received from the socket. */
    void feed(const std::uint8_t *data, std::size_t size);

    /** Extract the next complete frame, if any. */
    Status next(std::vector<std::uint8_t> &payload);

    /** Why the stream is unrecoverable (valid after Error). */
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet consumed (partial frame). */
    std::size_t buffered() const { return buf_.size() - off_; }

  private:
    std::uint32_t maxFrame_;
    std::vector<std::uint8_t> buf_;
    std::size_t off_ = 0; ///< consumed prefix of buf_
    bool broken_ = false;
    std::string error_;
};

/**
 * Read one length-prefixed frame from @p fd.
 * @return false on clean EOF before any byte of a frame; fatal() on
 *         truncation mid-frame or an oversized length prefix.
 */
bool readFrame(int fd, std::vector<std::uint8_t> &payload);

/** Write one length-prefixed frame to @p fd; fatal() on error. */
void writeFrame(int fd, const std::vector<std::uint8_t> &payload);

} // namespace disc::serve

#endif // DISC_SERVE_PROTO_HH
