#include "serve/proto.hh"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace disc::serve
{

namespace
{

bool
isRequestType(MsgType t)
{
    switch (t) {
      case MsgType::OpenReq:
      case MsgType::RunReq:
      case MsgType::StepReq:
      case MsgType::QueryReq:
      case MsgType::CloseReq:
      case MsgType::StatsReq:
      case MsgType::ShutdownReq:
      case MsgType::MigrateReq:
        return true;
      default:
        return false;
    }
}

bool
isResponseType(MsgType t)
{
    switch (t) {
      case MsgType::OpenResp:
      case MsgType::RunResp:
      case MsgType::StepResp:
      case MsgType::QueryResp:
      case MsgType::CloseResp:
      case MsgType::StatsResp:
      case MsgType::ShutdownResp:
      case MsgType::MigrateResp:
      case MsgType::ErrorResp:
      case MsgType::BusyResp:
        return true;
      default:
        return false;
    }
}

} // namespace

std::vector<std::uint8_t>
encodeRequest(const Request &req)
{
    Serializer out;
    out.put<std::uint16_t>(req.version);
    out.put<MsgType>(req.type);
    out.put<std::uint64_t>(req.seq);
    out.put<TenantId>(req.tenant);
    out.put<std::uint32_t>(req.deadlineMs);
    out.putString(req.session);
    switch (req.type) {
      case MsgType::OpenReq:
        out.putString(req.source);
        out.putString(req.entry);
        out.put<std::uint32_t>(
            static_cast<std::uint32_t>(req.streams.size()));
        for (const StreamStart &st : req.streams) {
            out.put<StreamId>(st.stream);
            out.putString(st.label);
        }
        out.put<std::uint32_t>(
            static_cast<std::uint32_t>(req.extmems.size()));
        for (const ExtMemSpec &e : req.extmems) {
            out.put<Addr>(e.base);
            out.put<Addr>(e.size);
            out.put<std::uint16_t>(e.latency);
        }
        out.putString(req.board);
        break;
      case MsgType::RunReq:
        out.put<Cycle>(req.maxCycles);
        out.putBool(req.stopWhenIdle);
        break;
      case MsgType::StepReq:
        out.put<std::uint32_t>(req.stepCycles);
        break;
      case MsgType::MigrateReq:
        out.put<std::uint32_t>(req.targetShard);
        break;
      default:
        break; // Query/Close/Stats/Shutdown carry no body
    }
    return out.take();
}

Request
decodeRequest(const std::vector<std::uint8_t> &payload)
{
    Deserializer in(payload);
    Request req;
    req.version = in.get<std::uint16_t>();
    if (req.version != kProtoVersion)
        fatal("protocol version %u, expected %u", req.version,
              kProtoVersion);
    req.type = in.get<MsgType>();
    if (!isRequestType(req.type))
        fatal("unknown request type %u",
              static_cast<unsigned>(req.type));
    req.seq = in.get<std::uint64_t>();
    req.tenant = in.get<TenantId>();
    req.deadlineMs = in.get<std::uint32_t>();
    req.session = in.getString();
    switch (req.type) {
      case MsgType::OpenReq: {
        req.source = in.getString();
        req.entry = in.getString();
        auto n_streams = in.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < n_streams; ++i) {
            StreamStart st;
            st.stream = in.get<StreamId>();
            st.label = in.getString();
            req.streams.push_back(st);
        }
        auto n_ext = in.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < n_ext; ++i) {
            ExtMemSpec e;
            e.base = in.get<Addr>();
            e.size = in.get<Addr>();
            e.latency = in.get<std::uint16_t>();
            req.extmems.push_back(e);
        }
        req.board = in.getString();
        break;
      }
      case MsgType::RunReq:
        req.maxCycles = in.get<Cycle>();
        req.stopWhenIdle = in.getBool();
        break;
      case MsgType::StepReq:
        req.stepCycles = in.get<std::uint32_t>();
        break;
      case MsgType::MigrateReq:
        req.targetShard = in.get<std::uint32_t>();
        break;
      default:
        break;
    }
    if (!in.exhausted())
        fatal("request frame has trailing bytes");
    return req;
}

std::vector<std::uint8_t>
encodeResponse(const Response &resp)
{
    Serializer out;
    out.put<std::uint16_t>(kProtoVersion);
    out.put<MsgType>(resp.type);
    out.put<std::uint64_t>(resp.seq);
    switch (resp.type) {
      case MsgType::RunResp:
      case MsgType::StepResp:
        out.put<Cycle>(resp.ran);
        out.put<Cycle>(resp.totalCycles);
        out.put<std::uint64_t>(resp.retired);
        out.putBool(resp.idle);
        break;
      case MsgType::QueryResp:
        out.put<std::uint64_t>(resp.digest);
        out.put<Cycle>(resp.totalCycles);
        out.put<std::uint64_t>(resp.retired);
        out.putBool(resp.idle);
        break;
      case MsgType::MigrateResp:
        out.put<std::uint64_t>(resp.digest);
        out.put<std::uint32_t>(resp.shard);
        break;
      case MsgType::StatsResp:
        out.put<std::uint32_t>(
            static_cast<std::uint32_t>(resp.counters.size()));
        for (const auto &[name, value] : resp.counters) {
            out.putString(name);
            out.put<std::uint64_t>(value);
        }
        break;
      case MsgType::ErrorResp:
        out.putString(resp.error);
        break;
      case MsgType::BusyResp:
        out.put<BusyReason>(resp.busy);
        out.putString(resp.error);
        break;
      default:
        break; // Open/Close/Shutdown acks carry no body
    }
    return out.take();
}

Response
decodeResponse(const std::vector<std::uint8_t> &payload)
{
    Deserializer in(payload);
    Response resp;
    if (in.get<std::uint16_t>() != kProtoVersion)
        fatal("protocol version mismatch in response");
    resp.type = in.get<MsgType>();
    if (!isResponseType(resp.type))
        fatal("unknown response type %u",
              static_cast<unsigned>(resp.type));
    resp.seq = in.get<std::uint64_t>();
    switch (resp.type) {
      case MsgType::RunResp:
      case MsgType::StepResp:
        resp.ran = in.get<Cycle>();
        resp.totalCycles = in.get<Cycle>();
        resp.retired = in.get<std::uint64_t>();
        resp.idle = in.getBool();
        break;
      case MsgType::QueryResp:
        resp.digest = in.get<std::uint64_t>();
        resp.totalCycles = in.get<Cycle>();
        resp.retired = in.get<std::uint64_t>();
        resp.idle = in.getBool();
        break;
      case MsgType::MigrateResp:
        resp.digest = in.get<std::uint64_t>();
        resp.shard = in.get<std::uint32_t>();
        break;
      case MsgType::StatsResp: {
        auto n = in.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < n; ++i) {
            std::string name = in.getString();
            auto value = in.get<std::uint64_t>();
            resp.counters.emplace_back(std::move(name), value);
        }
        break;
      }
      case MsgType::ErrorResp:
        resp.error = in.getString();
        break;
      case MsgType::BusyResp:
        resp.busy = in.get<BusyReason>();
        resp.error = in.getString();
        break;
      default:
        break;
    }
    if (!in.exhausted())
        fatal("response frame has trailing bytes");
    return resp;
}

void
FrameReader::feed(const std::uint8_t *data, std::size_t size)
{
    if (broken_ || size == 0)
        return;
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not grow its buffer without bound.
    if (off_ > 4096 && off_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(off_));
        off_ = 0;
    }
    buf_.insert(buf_.end(), data, data + size);
}

FrameReader::Status
FrameReader::next(std::vector<std::uint8_t> &payload)
{
    if (broken_)
        return Status::Error;
    if (buf_.size() - off_ < 4)
        return Status::NeedMore;
    std::uint32_t len = static_cast<std::uint32_t>(buf_[off_]) |
                        static_cast<std::uint32_t>(buf_[off_ + 1]) << 8 |
                        static_cast<std::uint32_t>(buf_[off_ + 2]) << 16 |
                        static_cast<std::uint32_t>(buf_[off_ + 3]) << 24;
    if (len > maxFrame_) {
        broken_ = true;
        error_ = strprintf("frame of %u bytes exceeds the %u-byte bound",
                           len, maxFrame_);
        return Status::Error;
    }
    if (buf_.size() - off_ - 4 < len)
        return Status::NeedMore;
    payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(off_ + 4),
                   buf_.begin() +
                       static_cast<std::ptrdiff_t>(off_ + 4 + len));
    off_ += 4 + len;
    if (off_ == buf_.size()) {
        buf_.clear();
        off_ = 0;
    }
    return Status::Frame;
}

bool
readFrame(int fd, std::vector<std::uint8_t> &payload)
{
    std::uint8_t len_bytes[4];
    std::size_t got = 0;
    while (got < sizeof(len_bytes)) {
        ssize_t n = ::read(fd, len_bytes + got, sizeof(len_bytes) - got);
        if (n == 0) {
            if (got == 0)
                return false; // clean EOF between frames
            fatal("connection closed mid-frame");
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (got == 0 && (errno == ECONNRESET || errno == EPIPE))
                return false; // peer went away between frames
            fatal("read error: %s", std::strerror(errno));
        }
        got += static_cast<std::size_t>(n);
    }
    std::uint32_t len = static_cast<std::uint32_t>(len_bytes[0]) |
                        static_cast<std::uint32_t>(len_bytes[1]) << 8 |
                        static_cast<std::uint32_t>(len_bytes[2]) << 16 |
                        static_cast<std::uint32_t>(len_bytes[3]) << 24;
    if (len > kMaxFrameBytes)
        fatal("frame of %u bytes exceeds the %u-byte bound", len,
              kMaxFrameBytes);
    payload.resize(len);
    got = 0;
    while (got < len) {
        ssize_t n = ::read(fd, payload.data() + got, len - got);
        if (n == 0)
            fatal("connection closed mid-frame");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("read error: %s", std::strerror(errno));
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

void
writeFrame(int fd, const std::vector<std::uint8_t> &payload)
{
    if (payload.size() > kMaxFrameBytes)
        fatal("frame of %zu bytes exceeds the %u-byte bound",
              payload.size(), kMaxFrameBytes);
    std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    std::uint8_t buf[4] = {
        static_cast<std::uint8_t>(len),
        static_cast<std::uint8_t>(len >> 8),
        static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 24),
    };
    auto write_all = [fd](const std::uint8_t *data, std::size_t size) {
        std::size_t sent = 0;
        while (sent < size) {
            ssize_t n = ::write(fd, data + sent, size - sent);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("write error: %s", std::strerror(errno));
            }
            sent += static_cast<std::size_t>(n);
        }
    };
    // One coalesced write per frame. Splitting the header and payload
    // into two write() calls lets Nagle hold the payload until the
    // header is ACKed, which under pipelined load parks every request
    // until the connection's next send — a full arrival interval of
    // spurious latency per request.
    std::vector<std::uint8_t> frame;
    frame.reserve(sizeof(buf) + payload.size());
    frame.insert(frame.end(), buf, buf + sizeof(buf));
    frame.insert(frame.end(), payload.begin(), payload.end());
    write_all(frame.data(), frame.size());
}

} // namespace disc::serve
