#include "serve/event_loop.hh"

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace disc::serve
{

namespace
{

void
setNonblocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("fcntl O_NONBLOCK: %s", std::strerror(errno));
}

} // namespace

// --- EventConn --------------------------------------------------------

void
EventConn::sendFrame(const std::vector<std::uint8_t> &payload)
{
    if (closed_.load())
        return; // peer is gone; dropping the reply is safe
    bool first = false;
    {
        std::lock_guard<std::mutex> g(omu_);
        std::uint32_t len = static_cast<std::uint32_t>(payload.size());
        first = out_.size() == outOff_;
        out_.reserve(out_.size() + 4 + payload.size());
        out_.push_back(static_cast<std::uint8_t>(len));
        out_.push_back(static_cast<std::uint8_t>(len >> 8));
        out_.push_back(static_cast<std::uint8_t>(len >> 16));
        out_.push_back(static_cast<std::uint8_t>(len >> 24));
        out_.insert(out_.end(), payload.begin(), payload.end());
        // The hard cap can only be hit by replies to requests that
        // were already read and accepted; a connection this far
        // behind is not worth the memory.
        if (out_.size() - outOff_ > loop_->cfg_.outBufHard)
            killRequested_ = true;
    }
    framesOut_.fetch_add(1);
    if (first || killRequested_) {
        auto self = shared_from_this();
        loop_->post([self] { self->loop_->flushConn(self); });
    }
}

void
EventConn::closeAfterFlush()
{
    if (closed_.load())
        return;
    auto self = shared_from_this();
    loop_->post([self] {
        self->closeAfterFlush_ = true;
        self->readStopped_ = true;
        self->loop_->updateInterest(*self);
        self->loop_->flushConn(self);
    });
}

std::size_t
EventConn::pendingOut() const
{
    std::lock_guard<std::mutex> g(omu_);
    return out_.size() - outOff_;
}

// --- EventLoop --------------------------------------------------------

EventLoop::EventLoop(EventLoopConfig cfg)
    : cfg_(cfg)
{
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0)
        fatal("epoll_create1: %s", std::strerror(errno));
    wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakeFd_ < 0)
        fatal("eventfd: %s", std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakeFd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) < 0)
        fatal("epoll_ctl wakefd: %s", std::strerror(errno));
}

EventLoop::~EventLoop()
{
    if (running_.load())
        stop();
    if (wakeFd_ >= 0)
        ::close(wakeFd_);
    if (epollFd_ >= 0)
        ::close(epollFd_);
}

void
EventLoop::start(const std::string &tag)
{
    if (running_.exchange(true))
        return;
    stopRequested_.store(false);
    thread_ = std::thread([this, tag] { loopMain(tag); });
}

void
EventLoop::stop()
{
    if (!running_.load())
        return;
    stopRequested_.store(true);
    wake();
    if (thread_.joinable())
        thread_.join();
    running_.store(false);
}

void
EventLoop::wake()
{
    if (wakePending_.exchange(true))
        return;
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeFd_, &one, sizeof(one));
}

void
EventLoop::post(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> g(postMu_);
        posted_.push_back(std::move(fn));
    }
    wake();
}

void
EventLoop::runSync(const std::function<void()> &fn)
{
    if (std::this_thread::get_id() == thread_.get_id()) {
        fn();
        return;
    }
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    post([&] {
        fn();
        std::lock_guard<std::mutex> g(m);
        done = true;
        cv.notify_one();
    });
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done; });
}

void
EventLoop::addListener(int listen_fd, AcceptFn on_accept)
{
    setNonblocking(listen_fd);
    runSync([this, listen_fd, on_accept = std::move(on_accept)] {
        listenFd_ = listen_fd;
        onAccept_ = on_accept;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = listen_fd;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listen_fd, &ev) < 0)
            fatal("epoll_ctl listener: %s", std::strerror(errno));
    });
}

void
EventLoop::removeListener()
{
    runSync([this] {
        if (listenFd_ < 0)
            return;
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
        listenFd_ = -1;
        onAccept_ = {};
    });
}

std::shared_ptr<EventConn>
EventLoop::addConnection(int fd, FrameFn on_frame, ClosedFn on_closed,
                         StreamErrFn on_err)
{
    setNonblocking(fd);
    std::shared_ptr<EventConn> conn;
    {
        std::lock_guard<std::mutex> g(connMu_);
        conn = std::shared_ptr<EventConn>(
            new EventConn(this, fd, nextConnId_++));
        conn->reader_ = FrameReader(cfg_.maxFrame);
    }
    runSync([this, fd, conn, on_frame = std::move(on_frame),
             on_closed = std::move(on_closed),
             on_err = std::move(on_err)]() mutable {
        {
            std::lock_guard<std::mutex> g(connMu_);
            conns_[fd] = ConnState{conn, std::move(on_frame),
                                   std::move(on_closed),
                                   std::move(on_err)};
        }
        connCount_.fetch_add(1);
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
            warn("epoll_ctl conn: %s", std::strerror(errno));
            closeConn(conn);
        }
    });
    return conn;
}

void
EventLoop::stopReading()
{
    runSync([this] {
        std::vector<std::shared_ptr<EventConn>> all;
        {
            std::lock_guard<std::mutex> g(connMu_);
            for (auto &[fd, cs] : conns_)
                all.push_back(cs.conn);
        }
        for (const auto &conn : all) {
            conn->readStopped_ = true;
            updateInterest(*conn);
        }
    });
}

std::size_t
EventLoop::pendingOutTotal() const
{
    std::lock_guard<std::mutex> g(connMu_);
    std::size_t total = 0;
    for (const auto &[fd, cs] : conns_)
        total += cs.conn->pendingOut();
    return total;
}

bool
EventLoop::owesReplies(const EventConn &conn)
{
    return conn.framesIn_.load() > conn.framesOut_.load();
}

bool
EventLoop::flushed() const
{
    std::lock_guard<std::mutex> g(connMu_);
    for (const auto &[fd, cs] : conns_)
        if (cs.conn->pendingOut() != 0 || owesReplies(*cs.conn))
            return false;
    return true;
}

void
EventLoop::updateInterest(EventConn &conn)
{
    if (conn.closed_.load())
        return;
    epoll_event ev{};
    ev.data.fd = conn.fd_;
    ev.events = EPOLLRDHUP;
    if (!conn.readPaused_ && !conn.readStopped_ && !conn.readClosed_)
        ev.events |= EPOLLIN;
    if (conn.wantWrite_)
        ev.events |= EPOLLOUT;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd_, &ev) < 0)
        warn("epoll_ctl mod: %s", std::strerror(errno));
}

void
EventLoop::maybeFinish(const std::shared_ptr<EventConn> &conn)
{
    if (conn->closed_.load())
        return;
    bool drained;
    {
        std::lock_guard<std::mutex> g(conn->omu_);
        drained = conn->out_.size() == conn->outOff_;
    }
    if (!drained)
        return;
    if (conn->closeAfterFlush_ ||
        (conn->readClosed_ && !owesReplies(*conn)))
        closeConn(conn);
}

void
EventLoop::flushConn(const std::shared_ptr<EventConn> &conn)
{
    if (conn->closed_.load())
        return;
    bool drained = false;
    bool fail = false;
    {
        std::lock_guard<std::mutex> g(conn->omu_);
        if (conn->killRequested_)
            fail = true;
        while (!fail && conn->outOff_ < conn->out_.size()) {
            ssize_t n = ::write(conn->fd_,
                                conn->out_.data() + conn->outOff_,
                                conn->out_.size() - conn->outOff_);
            if (n > 0) {
                conn->outOff_ += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            fail = true; // EPIPE/ECONNRESET: peer is gone
        }
        if (conn->outOff_ == conn->out_.size()) {
            conn->out_.clear();
            conn->outOff_ = 0;
            drained = true;
        }
    }
    if (fail) {
        closeConn(conn);
        return;
    }
    bool want_write = !drained;
    if (want_write != conn->wantWrite_) {
        conn->wantWrite_ = want_write;
        updateInterest(*conn);
    }
    if (drained && conn->readPaused_ && !conn->readStopped_ &&
        !conn->readClosed_) {
        conn->readPaused_ = false;
        updateInterest(*conn);
    }
    maybeFinish(conn);
}

void
EventLoop::handleReadable(ConnState &cs)
{
    const std::shared_ptr<EventConn> &conn = cs.conn;
    std::uint8_t buf[65536];
    bool eof = false;
    bool fail = false;
    for (;;) {
        ssize_t n = ::read(conn->fd_, buf, sizeof(buf));
        if (n > 0) {
            conn->reader_.feed(buf, static_cast<std::size_t>(n));
            // Keep one read's worth bounded: parse what we have
            // before pulling more off the socket.
            if (static_cast<std::size_t>(n) < sizeof(buf))
                break;
            continue;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        fail = true;
        break;
    }
    if (fail) {
        closeConn(conn);
        return;
    }

    std::vector<std::uint8_t> payload;
    for (;;) {
        FrameReader::Status st = conn->reader_.next(payload);
        if (st == FrameReader::Status::NeedMore)
            break;
        if (st == FrameReader::Status::Error) {
            // Unrecoverable framing: give the protocol one chance to
            // say why, then drop the connection.
            warn("conn%llu: %s",
                 static_cast<unsigned long long>(conn->id_),
                 conn->reader_.error().c_str());
            if (cs.onErr)
                cs.onErr(conn, conn->reader_.error());
            conn->closeAfterFlush_ = true;
            conn->readStopped_ = true;
            updateInterest(*conn);
            flushConn(conn);
            return;
        }
        conn->framesIn_.fetch_add(1);
        if (cs.onFrame)
            cs.onFrame(conn, payload);
        if (conn->closed_.load())
            return;
    }

    // Backpressure: a connection flooding requests without draining
    // replies stops being read until its output drains.
    if (!conn->readPaused_ &&
        conn->pendingOut() > cfg_.outBufSoft) {
        conn->readPaused_ = true;
        updateInterest(*conn);
    }

    if (eof && !conn->readClosed_) {
        conn->readClosed_ = true;
        updateInterest(*conn);
        maybeFinish(conn);
    }
}

void
EventLoop::closeConn(const std::shared_ptr<EventConn> &conn)
{
    if (conn->closed_.exchange(true))
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn->fd_, nullptr);
    ::close(conn->fd_);
    ClosedFn on_closed;
    {
        std::lock_guard<std::mutex> g(connMu_);
        auto it = conns_.find(conn->fd_);
        if (it != conns_.end() && it->second.conn == conn) {
            on_closed = std::move(it->second.onClosed);
            conns_.erase(it);
        }
    }
    connCount_.fetch_sub(1);
    if (on_closed)
        on_closed(conn);
}

void
EventLoop::loopMain(std::string tag)
{
    setLogTag(tag);
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    while (!stopRequested_.load()) {
        int n = ::epoll_wait(epollFd_, events, kMaxEvents, 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("epoll_wait: %s", std::strerror(errno));
            break;
        }
        for (int i = 0; i < n && !stopRequested_.load(); ++i) {
            int fd = events[i].data.fd;
            std::uint32_t ev = events[i].events;
            if (fd == wakeFd_) {
                std::uint64_t junk;
                while (::read(wakeFd_, &junk, sizeof(junk)) > 0) {
                }
                wakePending_.store(false);
                std::vector<std::function<void()>> tasks;
                {
                    std::lock_guard<std::mutex> g(postMu_);
                    tasks.swap(posted_);
                }
                for (auto &t : tasks)
                    t();
                continue;
            }
            if (fd == listenFd_) {
                for (;;) {
                    int cfd = ::accept4(listenFd_, nullptr, nullptr,
                                        SOCK_NONBLOCK | SOCK_CLOEXEC);
                    if (cfd < 0)
                        break;
                    if (onAccept_)
                        onAccept_(cfd);
                    else
                        ::close(cfd);
                }
                continue;
            }
            // conns_ is only mutated on this thread; copy the state
            // because callbacks below may erase the entry.
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue; // closed earlier in this batch
            ConnState cs = it->second;
            if (ev & (EPOLLERR | EPOLLHUP)) {
                closeConn(cs.conn);
                continue;
            }
            if (ev & EPOLLOUT)
                flushConn(cs.conn);
            if (cs.conn->closed_.load())
                continue;
            if (ev & (EPOLLIN | EPOLLRDHUP))
                handleReadable(cs);
        }
        // Posted tasks may have arrived while dispatching.
        if (!posted_.empty()) {
            std::vector<std::function<void()>> tasks;
            {
                std::lock_guard<std::mutex> g(postMu_);
                tasks.swap(posted_);
            }
            for (auto &t : tasks)
                t();
        }
    }
    // Tear down every connection on the way out.
    std::vector<std::shared_ptr<EventConn>> all;
    {
        std::lock_guard<std::mutex> g(connMu_);
        for (auto &[fd, cs] : conns_)
            all.push_back(cs.conn);
    }
    for (const auto &conn : all)
        closeConn(conn);
}

} // namespace disc::serve
