#include "serve/session.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "isa/assembler.hh"
#include "sim/digest.hh"

namespace disc::serve
{

namespace
{

constexpr std::uint32_t kParkMagic = 0x4453534e; // "DSSN"
// v2 appends the board spec text to the session spec; v1 files (no
// board) are still read everywhere a version is checked.
constexpr std::uint16_t kParkVersion = 2;
constexpr const char *kParkExt = ".dsess";

bool
parkVersionOk(std::uint16_t version)
{
    return version == 1 || version == kParkVersion;
}

/** Session ids double as file stems; keep them filesystem-safe. */
void
validateId(const std::string &id)
{
    if (id.empty() || id.size() > 64 || id[0] == '.')
        fatal("invalid session id '%s'", id.c_str());
    for (char c : id) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-' && c != '.')
            fatal("invalid session id '%s'", id.c_str());
    }
}

void
putSpec(Serializer &out, const SessionSpec &spec)
{
    out.putString(spec.id);
    out.put<TenantId>(spec.tenant);
    out.putString(spec.source);
    out.putString(spec.entry);
    out.put<std::uint32_t>(static_cast<std::uint32_t>(spec.streams.size()));
    for (const StreamStart &st : spec.streams) {
        out.put<StreamId>(st.stream);
        out.putString(st.label);
    }
    out.put<std::uint32_t>(static_cast<std::uint32_t>(spec.extmems.size()));
    for (const ExtMemSpec &e : spec.extmems) {
        out.put<Addr>(e.base);
        out.put<Addr>(e.size);
        out.put<std::uint16_t>(e.latency);
    }
    out.putString(spec.board);
}

SessionSpec
getSpec(Deserializer &in, std::uint16_t version)
{
    SessionSpec spec;
    spec.id = in.getString();
    spec.tenant = in.get<TenantId>();
    spec.source = in.getString();
    spec.entry = in.getString();
    auto n_streams = in.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < n_streams; ++i) {
        StreamStart st;
        st.stream = in.get<StreamId>();
        st.label = in.getString();
        spec.streams.push_back(st);
    }
    auto n_ext = in.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < n_ext; ++i) {
        ExtMemSpec e;
        e.base = in.get<Addr>();
        e.size = in.get<Addr>();
        e.latency = in.get<std::uint16_t>();
        spec.extmems.push_back(e);
    }
    if (version >= 2)
        spec.board = in.getString();
    return spec;
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open session file '%s'", path.c_str());
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return bytes;
}

void
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot write session file '%s'", tmp.c_str());
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            fatal("short write to session file '%s'", tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        fatal("cannot rename '%s' to '%s': %s", tmp.c_str(),
              path.c_str(), ec.message().c_str());
}

} // namespace

// --- SessionLease -----------------------------------------------------

SessionLease::SessionLease(SessionLease &&other) noexcept
    : registry_(other.registry_), session_(other.session_)
{
    other.registry_ = nullptr;
    other.session_ = nullptr;
}

SessionLease::~SessionLease()
{
    if (!session_)
        return;
    session_->m_.unlock();
    registry_->release(*session_);
}

// --- SessionRegistry --------------------------------------------------

SessionRegistry::SessionRegistry(std::string state_dir,
                                 unsigned max_resident)
    : dir_(std::move(state_dir)), maxResident_(max_resident)
{
    if (maxResident_ == 0)
        fatal("session registry needs max_resident >= 1");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create state dir '%s': %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
SessionRegistry::filePath(const std::string &id) const
{
    return dir_ + "/" + id + kParkExt;
}

void
SessionRegistry::build(Session &s, bool start_streams)
{
    Program prog = assemble(s.spec_.source);
    s.machine_ = std::make_unique<Machine>();
    // One construction path with disc-run: board text plus the legacy
    // --extmem sugar lines feed the same parser/registry, so served
    // state is bit-identical to an offline run of the same spec.
    std::string board_text = s.spec_.board;
    for (std::size_t i = 0; i < s.spec_.extmems.size(); ++i) {
        const ExtMemSpec &e = s.spec_.extmems[i];
        board_text += extmemSugarLine(static_cast<unsigned>(i), e.base,
                                      e.size, e.latency);
    }
    s.board_ = buildBoard(
        parseBoardSpec(board_text, "session:" + s.spec_.id));
    s.board_.attachTo(*s.machine_);
    s.machine_->load(prog);
    s.machine_->setExecTrace(&s.trace_);
    if (start_streams) {
        PAddr entry = !s.spec_.entry.empty() &&
                              prog.hasSymbol(s.spec_.entry)
                          ? prog.symbol(s.spec_.entry)
                          : 0;
        s.machine_->startStream(0, entry);
        s.board_.startStreams(*s.machine_, prog);
        for (const StreamStart &st : s.spec_.streams)
            s.machine_->startStream(st.stream, prog.symbol(st.label));
    }
}

void
SessionRegistry::park(Session &s)
{
    if (unsigned delay = parkDelayMs_.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    Serializer out;
    out.put(kParkMagic);
    out.put(kParkVersion);
    putSpec(out, s.spec_);
    out.putBlob(s.machine_->saveState());
    s.trace_.save(out);
    writeFileAtomic(filePath(s.spec_.id), out.bytes());
    // The file is durable; only now is it safe to drop the machine.
    s.machine_.reset();
    s.board_ = Board();
    s.resident_.store(false);
    resident_.fetch_sub(1);
    evicted_.fetch_add(1);
}

void
SessionRegistry::unpark(Session &s)
{
    std::vector<std::uint8_t> bytes = readFileBytes(filePath(s.spec_.id));
    Deserializer in(bytes);
    if (in.get<std::uint32_t>() != kParkMagic)
        fatal("'%s' is not a session file",
              filePath(s.spec_.id).c_str());
    std::uint16_t version = in.get<std::uint16_t>();
    if (!parkVersionOk(version))
        fatal("session file version mismatch for '%s'",
              s.spec_.id.c_str());
    SessionSpec spec = getSpec(in, version);
    if (spec.id != s.spec_.id)
        fatal("session file '%s' holds session '%s'",
              filePath(s.spec_.id).c_str(), spec.id.c_str());
    std::vector<std::uint8_t> state = in.getBlob();
    build(s, false);
    s.machine_->restoreState(state);
    s.trace_.restore(in);
    if (!in.exhausted())
        fatal("session file '%s' has trailing bytes",
              filePath(s.spec_.id).c_str());
    s.resident_.store(true);
    resident_.fetch_add(1);
    restored_.fetch_add(1);
}

void
SessionRegistry::open(const SessionSpec &spec)
{
    validateId(spec.id);
    Session *p = nullptr;
    {
        std::lock_guard<std::mutex> g(mu_);
        auto [it, inserted] = sessions_.emplace(
            spec.id,
            std::unique_ptr<Session>(new Session(spec)));
        if (!inserted)
            fatal("session '%s' already exists", spec.id.c_str());
        p = it->second.get();
        p->pins_.fetch_add(1); // keep the evictor away while building
        p->lastUsed_.store(clock_.fetch_add(1) + 1);
    }
    try {
        std::lock_guard<std::mutex> g(p->m_);
        build(*p, true);
        p->resident_.store(true);
        resident_.fetch_add(1);
    } catch (...) {
        std::lock_guard<std::mutex> g(mu_);
        sessions_.erase(spec.id);
        throw;
    }
    p->pins_.fetch_sub(1);
    enforceResidency();
}

SessionLease
SessionRegistry::acquire(const std::string &id)
{
    Session *p = nullptr;
    {
        std::lock_guard<std::mutex> g(mu_);
        auto it = sessions_.find(id);
        if (it == sessions_.end())
            fatal("unknown session '%s'", id.c_str());
        p = it->second.get();
        p->pins_.fetch_add(1);
        p->lastUsed_.store(clock_.fetch_add(1) + 1);
    }
    p->m_.lock();
    if (!p->resident_.load()) {
        try {
            unpark(*p);
        } catch (...) {
            p->m_.unlock();
            p->pins_.fetch_sub(1);
            throw;
        }
    }
    return SessionLease(this, p);
}

void
SessionRegistry::release(Session &s)
{
    s.pins_.fetch_sub(1);
    try {
        enforceResidency();
    } catch (const FatalError &e) {
        // A failed park leaves the session resident and intact; the
        // bound is re-attempted on the next release.
        warn("session eviction failed: %s", e.what());
    }
}

void
SessionRegistry::enforceResidency()
{
    for (;;) {
        Session *victim = nullptr;
        {
            std::lock_guard<std::mutex> g(mu_);
            if (resident_.load() <= maxResident_)
                return;
            std::uint64_t best =
                std::numeric_limits<std::uint64_t>::max();
            for (auto &[id, s] : sessions_) {
                if (s->resident_.load() && s->pins_.load() == 0 &&
                    s->lastUsed_.load() < best) {
                    best = s->lastUsed_.load();
                    victim = s.get();
                }
            }
            if (!victim)
                return; // everything over the bound is pinned
            victim->pins_.fetch_add(1);
        }
        {
            std::lock_guard<std::mutex> g(victim->m_);
            // A racing acquire() may have pinned (and will re-restore
            // after us) — or already be using it; only park when this
            // evictor holds the sole pin.
            if (victim->pins_.load() == 1 && victim->resident_.load())
                park(*victim);
        }
        victim->pins_.fetch_sub(1);
    }
}

bool
SessionRegistry::evict(const std::string &id)
{
    Session *p = nullptr;
    {
        std::lock_guard<std::mutex> g(mu_);
        auto it = sessions_.find(id);
        if (it == sessions_.end())
            return false;
        p = it->second.get();
        if (!p->resident_.load() || p->pins_.load() != 0)
            return false;
        p->pins_.fetch_add(1);
    }
    bool parked = false;
    {
        std::lock_guard<std::mutex> g(p->m_);
        if (p->pins_.load() == 1 && p->resident_.load()) {
            park(*p);
            parked = true;
        }
    }
    p->pins_.fetch_sub(1);
    return parked;
}

void
SessionRegistry::close(const std::string &id)
{
    {
        std::lock_guard<std::mutex> g(mu_);
        auto it = sessions_.find(id);
        if (it == sessions_.end())
            fatal("unknown session '%s'", id.c_str());
        Session *p = it->second.get();
        if (p->pins_.load() != 0)
            fatal("session '%s' is busy", id.c_str());
        if (p->resident_.load())
            resident_.fetch_sub(1);
        sessions_.erase(it);
    }
    std::error_code ec;
    std::filesystem::remove(filePath(id), ec); // fine if absent
}

void
SessionRegistry::parkAll()
{
    std::vector<Session *> all;
    {
        std::lock_guard<std::mutex> g(mu_);
        for (auto &[id, s] : sessions_)
            all.push_back(s.get());
    }
    for (Session *s : all) {
        std::lock_guard<std::mutex> g(s->m_);
        if (!s->resident_.load())
            continue;
        if (s->pins_.load() != 0) {
            warn("session '%s' still leased at shutdown; not parked",
                 s->spec_.id.c_str());
            continue;
        }
        park(*s);
    }
}

std::string
SessionRegistry::parkPath(const std::string &id) const
{
    return filePath(id);
}

std::string
SessionRegistry::detach(const std::string &id)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return "";
    Session *p = it->second.get();
    // Holding mu_ means no new pin can start; an existing pin or a
    // resident machine means someone may be (about to be) using it.
    if (p->resident_.load() || p->pins_.load() != 0)
        return "";
    sessions_.erase(it);
    return filePath(id);
}

std::string
SessionRegistry::adoptFile(const std::string &path)
{
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    Deserializer in(bytes);
    if (in.get<std::uint32_t>() != kParkMagic)
        fatal("'%s' is not a session file", path.c_str());
    std::uint16_t version = in.get<std::uint16_t>();
    if (!parkVersionOk(version))
        fatal("session file version mismatch for '%s'", path.c_str());
    SessionSpec spec = getSpec(in, version);
    if (path != filePath(spec.id))
        fatal("session file '%s' is not at its home path '%s'",
              path.c_str(), filePath(spec.id).c_str());
    // Copy the key out before moving the spec: emplace argument
    // evaluation order is unspecified.
    std::string id = spec.id;
    std::lock_guard<std::mutex> g(mu_);
    auto [it, inserted] = sessions_.emplace(
        id, std::unique_ptr<Session>(new Session(std::move(spec))));
    if (!inserted)
        fatal("session '%s' already exists", id.c_str());
    it->second->lastUsed_.store(clock_.fetch_add(1) + 1);
    return it->first;
}

std::vector<std::string>
SessionRegistry::coldestIdle(std::size_t max) const
{
    std::vector<std::pair<std::uint64_t, std::string>> cand;
    {
        std::lock_guard<std::mutex> g(mu_);
        for (const auto &[id, s] : sessions_)
            if (s->pins_.load() == 0)
                cand.emplace_back(s->lastUsed_.load(), id);
    }
    std::sort(cand.begin(), cand.end());
    if (cand.size() > max)
        cand.resize(max);
    std::vector<std::string> out;
    out.reserve(cand.size());
    for (auto &[stamp, id] : cand)
        out.push_back(std::move(id));
    return out;
}

std::size_t
SessionRegistry::restoreDir()
{
    std::size_t count = 0;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".tmp") {
            // A crash between write and rename leaves the temp file
            // behind; it was never the durable copy, so drop it.
            warn("removing stale temp file '%s'",
                 entry.path().c_str());
            std::error_code rm_ec;
            std::filesystem::remove(entry.path(), rm_ec);
            continue;
        }
        if (!entry.is_regular_file() ||
            entry.path().extension() != kParkExt)
            continue;
        std::vector<std::uint8_t> bytes =
            readFileBytes(entry.path().string());
        Deserializer in(bytes);
        std::uint32_t magic = in.get<std::uint32_t>();
        std::uint16_t version = in.get<std::uint16_t>();
        if (magic != kParkMagic || !parkVersionOk(version)) {
            warn("skipping unrecognized session file '%s'",
                 entry.path().c_str());
            continue;
        }
        SessionSpec spec = getSpec(in, version);
        std::lock_guard<std::mutex> g(mu_);
        auto [it, inserted] = sessions_.emplace(
            spec.id, std::unique_ptr<Session>(new Session(spec)));
        if (!inserted) {
            warn("session '%s' already registered; keeping the live one",
                 spec.id.c_str());
            continue;
        }
        ++count;
    }
    if (ec)
        fatal("cannot scan state dir '%s': %s", dir_.c_str(),
              ec.message().c_str());
    return count;
}

bool
SessionRegistry::has(const std::string &id) const
{
    std::lock_guard<std::mutex> g(mu_);
    return sessions_.count(id) != 0;
}

std::vector<std::string>
SessionRegistry::ids() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::vector<std::string> out;
    for (const auto &[id, s] : sessions_)
        out.push_back(id);
    return out;
}

std::size_t
SessionRegistry::size() const
{
    std::lock_guard<std::mutex> g(mu_);
    return sessions_.size();
}

std::uint64_t
sessionDigest(Session &s)
{
    return runDigest(s.machine(), s.trace());
}

std::uint64_t
parkFileDigest(const std::string &path)
{
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    Deserializer in(bytes);
    if (in.get<std::uint32_t>() != kParkMagic)
        fatal("'%s' is not a session file", path.c_str());
    std::uint16_t version = in.get<std::uint16_t>();
    if (!parkVersionOk(version))
        fatal("session file version mismatch for '%s'", path.c_str());
    (void)getSpec(in, version);
    std::vector<std::uint8_t> state = in.getBlob();
    ExecTrace trace(kSessionTraceEntries);
    trace.restore(in);
    if (!in.exhausted())
        fatal("session file '%s' has trailing bytes", path.c_str());
    // Mirrors runDigest(): restoreState(state) then saveState() is
    // byte-identical to `state`, so folding the blob directly gives
    // the digest the restored session will report.
    return fnv1a64(trace.render(), fnv1a64(state));
}

MigrationResult
migrateSession(SessionRegistry &src, SessionRegistry &dst,
               const std::string &id)
{
    MigrationResult res;
    if (&src == &dst) {
        res.error = "source and target shard are the same";
        return res;
    }

    src.evict(id); // park it if resident; racing users surface below
    std::string from = src.detach(id);
    if (from.empty()) {
        res.error = strprintf("session '%s' is busy or unknown",
                              id.c_str());
        return res;
    }

    try {
        res.digest = parkFileDigest(from);
    } catch (const FatalError &e) {
        src.adoptFile(from); // put it back; the file never moved
        res.error = e.what();
        return res;
    }

    std::string to = dst.parkPath(id);
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) {
        src.adoptFile(from);
        res.error = strprintf("cannot move '%s' to '%s': %s",
                              from.c_str(), to.c_str(),
                              ec.message().c_str());
        return res;
    }

    // The rename was atomic: from here the session's durable home is
    // dst — a crash now is recovered by dst.restoreDir().
    try {
        dst.adoptFile(to);
    } catch (const FatalError &e) {
        res.error = e.what();
        return res;
    }

    // Land it: restore on the target and check the digest survived
    // the hop (release may park it again under dst's LRU policy).
    std::uint64_t landed;
    {
        SessionLease lease = dst.acquire(id);
        landed = sessionDigest(*lease);
    }
    if (landed != res.digest) {
        res.error = strprintf(
            "session '%s' digest mismatch after migration: "
            "%016llx pre-move vs %016llx restored",
            id.c_str(), static_cast<unsigned long long>(res.digest),
            static_cast<unsigned long long>(landed));
        return res;
    }
    res.ok = true;
    return res;
}

} // namespace disc::serve
