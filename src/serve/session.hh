/**
 * @file
 * Sessions and the SessionRegistry: bounded-memory hosting of many
 * concurrent simulations.
 *
 * A session is one client's Machine: a workload spec (assembly
 * source, entry points, external-memory devices), the machine built
 * from it, and the session's execution trace. The registry keys
 * sessions by id and keeps at most `max_resident` machines in memory;
 * colder sessions are *parked* — serialized as a self-contained file
 * (spec + machine checkpoint + trace snapshot) in the state
 * directory — and transparently rebuilt on the next acquire(). A
 * parked file is self-describing, so a freshly started server can
 * re-register every session a previous process left behind
 * (restoreDir()) and continue each one bit-identically.
 *
 * Concurrency contract: map surgery and LRU bookkeeping take the
 * registry mutex; machine (re)construction, checkpoint serialization
 * and file I/O run under the per-session mutex only, so disjoint
 * sessions park and restore in parallel. A Lease pins its session
 * (pinned sessions are never evicted) and holds the session mutex,
 * making machine access exclusive for the lease's lifetime. The
 * resident bound is enforced after each release — a batch may
 * transiently pin more sessions than the bound, which then drains
 * back under it.
 */

#ifndef DISC_SERVE_SESSION_HH
#define DISC_SERVE_SESSION_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/devices.hh"
#include "board/board.hh"
#include "serve/share_table.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace disc::serve
{

/** Sessions trace with disc-run's capacity so digests line up. */
constexpr std::size_t kSessionTraceEntries = 65536;

/** One additional stream start (beyond stream 0 at the entry label). */
struct StreamStart
{
    StreamId stream = 0;
    std::string label;
};

/** One external memory device on the session's bus. */
struct ExtMemSpec
{
    Addr base = 0;
    Addr size = 0;
    std::uint16_t latency = 0;
};

/** Everything needed to (re)build a session's machine from scratch. */
struct SessionSpec
{
    std::string id;          ///< [A-Za-z0-9_.-]+, also the file stem
    TenantId tenant = 0;     ///< owner for share accounting
    std::string source;      ///< DISC1 assembly text
    std::string entry = "main"; ///< stream 0 entry label ("" = addr 0)
    std::vector<StreamStart> streams; ///< extra stream starts
    std::vector<ExtMemSpec> extmems;  ///< external memory devices
    std::string board;                ///< board spec text (may be "")
};

class SessionRegistry;

/** One hosted simulation (access it through a Lease). */
class Session
{
  public:
    const SessionSpec &spec() const { return spec_; }

    /** The machine; only valid while leased (always resident then). */
    Machine &machine() { return *machine_; }

    /** The session's retired-instruction trace. */
    ExecTrace &trace() { return trace_; }

    /** True when the machine is in memory (unsynchronized peek). */
    bool resident() const { return resident_.load(); }

  private:
    friend class SessionRegistry;
    friend class SessionLease;

    explicit Session(SessionSpec spec)
        : spec_(std::move(spec))
    {}

    SessionSpec spec_;
    std::unique_ptr<Machine> machine_;
    Board board_; ///< devices built from spec_.board + extmem sugar
    ExecTrace trace_{kSessionTraceEntries};

    std::mutex m_;                      ///< machine + park-file access
    std::atomic<int> pins_{0};          ///< leases + evictor probes
    std::atomic<bool> resident_{false}; ///< machine in memory
    std::atomic<std::uint64_t> lastUsed_{0}; ///< LRU clock stamp
};

/**
 * Exclusive, pinned access to one session. Move-only; releasing the
 * lease re-enforces the residency bound (possibly parking LRU
 * sessions, including this one).
 */
class SessionLease
{
  public:
    SessionLease(SessionLease &&other) noexcept;
    SessionLease &operator=(SessionLease &&) = delete;
    ~SessionLease();

    Session *operator->() { return session_; }
    Session &operator*() { return *session_; }

  private:
    friend class SessionRegistry;

    SessionLease(SessionRegistry *reg, Session *s)
        : registry_(reg), session_(s)
    {}

    SessionRegistry *registry_ = nullptr;
    Session *session_ = nullptr;
};

/** The session table; see the file comment for the design. */
class SessionRegistry
{
  public:
    /**
     * @param state_dir    directory for park files (created on demand).
     * @param max_resident residency bound (>= 1).
     */
    SessionRegistry(std::string state_dir, unsigned max_resident);
    ~SessionRegistry() = default;

    SessionRegistry(const SessionRegistry &) = delete;
    SessionRegistry &operator=(const SessionRegistry &) = delete;

    /**
     * Create a session: assemble the source, build the machine,
     * start its streams. fatal() on a duplicate or invalid id, or on
     * assembly errors.
     */
    void open(const SessionSpec &spec);

    /**
     * Pin @p id and return exclusive access, restoring the machine
     * from its park file first when necessary. fatal() on unknown id.
     */
    SessionLease acquire(const std::string &id);

    /**
     * Park @p id now if it is resident and unpinned.
     * @return true when the session was parked by this call.
     */
    bool evict(const std::string &id);

    /** Remove a session and its park file. fatal() if leased. */
    void close(const std::string &id);

    /** Park every resident session (graceful shutdown). */
    void parkAll();

    /**
     * Register every park file found in the state directory (a
     * previous server's sessions). Sessions stay parked until first
     * acquire. @return number of sessions registered.
     */
    std::size_t restoreDir();

    /** Park file path for @p id inside this registry's state dir. */
    std::string parkPath(const std::string &id) const;

    /**
     * Remove a parked, unpinned session from the registry, leaving
     * its park file on disk — the migration departure step.
     * @return the park file path, or "" when the session is unknown,
     *         resident, or pinned (the caller should abort the move).
     */
    std::string detach(const std::string &id);

    /**
     * Register a park file already renamed into this registry's state
     * dir — the migration landing step. The session stays parked
     * until first acquire. fatal() on a malformed file, a duplicate
     * id, or a file not at its home path. @return the session id.
     */
    std::string adoptFile(const std::string &path);

    /**
     * Ids of unpinned sessions, coldest LRU stamp first, at most
     * @p max — the rebalancer's migration candidates. Unsynchronized
     * snapshot: a candidate may be pinned again by the time the
     * caller acts, which makes the move abort gracefully.
     */
    std::vector<std::string> coldestIdle(std::size_t max) const;

    /** Test hook: stall every park() this long (models slow disks). */
    void setParkDelayForTest(unsigned ms) { parkDelayMs_.store(ms); }

    /** True when the session exists (resident or parked). */
    bool has(const std::string &id) const;

    /** All session ids, sorted. */
    std::vector<std::string> ids() const;

    /** Sessions currently in memory. */
    unsigned residentCount() const { return resident_.load(); }

    /** Sessions known to the registry. */
    std::size_t size() const;

    /** Total sessions parked to disk so far. */
    std::uint64_t evictedTotal() const { return evicted_.load(); }

    /** Total sessions restored from disk so far. */
    std::uint64_t restoredTotal() const { return restored_.load(); }

    /** The state directory. */
    const std::string &stateDir() const { return dir_; }

  private:
    friend class SessionLease;

    /** Park file path for a session id. */
    std::string filePath(const std::string &id) const;

    /** Build machine+devices from the spec; optionally start streams. */
    void build(Session &s, bool start_streams);

    /** Serialize and write the park file; drops the machine. Caller
     *  holds s.m_. */
    void park(Session &s);

    /** Rebuild the machine from the park file. Caller holds s.m_. */
    void unpark(Session &s);

    /** Park LRU sessions until the residency bound holds. */
    void enforceResidency();

    /** Called by ~SessionLease: unpin and re-enforce the bound. */
    void release(Session &s);

    std::string dir_;
    unsigned maxResident_;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Session>> sessions_;
    std::atomic<std::uint64_t> clock_{0};
    std::atomic<unsigned> resident_{0};
    std::atomic<std::uint64_t> evicted_{0};
    std::atomic<std::uint64_t> restored_{0};
    std::atomic<unsigned> parkDelayMs_{0};
};

/**
 * The session's result fingerprint: machine checkpoint bytes + trace
 * text (sim/digest.hh). Call with the session leased.
 */
std::uint64_t sessionDigest(Session &s);

/**
 * Digest a park file without building a machine: the checkpoint blob
 * folded with the restored trace render — by construction equal to
 * sessionDigest() of the session once restored. fatal() on a
 * malformed file.
 */
std::uint64_t parkFileDigest(const std::string &path);

/** What migrateSession() reports. */
struct MigrationResult
{
    bool ok = false;
    std::uint64_t digest = 0; ///< pre-move park-file digest
    std::string error;        ///< why the move aborted (ok == false)
};

/**
 * Move session @p id from @p src to @p dst: park → detach → digest
 * the park file → rename into dst's state dir (atomic; a crash after
 * the rename leaves the file where dst's restoreDir() finds it) →
 * adopt → restore and digest-check against the pre-move digest.
 * A busy session (leased, or re-acquired mid-move) aborts the move
 * gracefully and stays where it was; a post-restore digest mismatch
 * reports ok == false with the session hosted by @p dst.
 */
MigrationResult migrateSession(SessionRegistry &src, SessionRegistry &dst,
                               const std::string &id);

} // namespace disc::serve

#endif // DISC_SERVE_SESSION_HH
