/**
 * @file
 * EventLoop: one epoll-driven I/O thread multiplexing many
 * nonblocking framed-protocol connections.
 *
 * The per-connection blocking-reader-thread model tops out at a few
 * dozen clients; this loop serves thousands. One thread owns an epoll
 * set; connections are nonblocking; reads feed a FrameReader so a
 * frame may arrive in any number of slices (length prefix split
 * across writes, byte-at-a-time senders, stalls mid-frame — none of
 * them can block the loop or each other). Completed frames are handed
 * to the connection's frame callback on the loop thread; replies may
 * be sent from any thread (sendFrame() appends to the connection's
 * output buffer and wakes the loop via an eventfd).
 *
 * Write backpressure is bounded and explicit: output is buffered per
 * connection and flushed as EPOLLOUT allows; a connection whose
 * buffered output exceeds `outBufSoft` stops being *read* (so a
 * client that floods requests without consuming replies throttles
 * itself against TCP, not against server memory), and one that
 * exceeds `outBufHard` — only possible through replies to requests
 * already accepted — is dropped. Half-close is honoured: after read
 * EOF the connection stays open until every reply owed to frames it
 * delivered has been flushed.
 *
 * The loop never parses payloads and never simulates; everything
 * slow runs elsewhere and posts back. post() is the only way other
 * threads touch loop-owned state.
 */

#ifndef DISC_SERVE_EVENT_LOOP_HH
#define DISC_SERVE_EVENT_LOOP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/proto.hh"

namespace disc::serve
{

class EventLoop;

/** Buffer bounds and framing limits for a loop's connections. */
struct EventLoopConfig
{
    /** Stop reading a connection once this much output is buffered. */
    std::size_t outBufSoft = 1u << 20;

    /** Drop a connection once this much output is buffered. */
    std::size_t outBufHard = 8u << 20;

    /** Frame payload bound handed to each FrameReader. */
    std::uint32_t maxFrame = kMaxFrameBytes;
};

/**
 * One nonblocking connection owned by an EventLoop. Created via
 * EventLoop::addConnection(); shared_ptr-managed so replies produced
 * after the peer vanished land in a safe object instead of a freed
 * one.
 */
class EventConn : public std::enable_shared_from_this<EventConn>
{
  public:
    /**
     * Queue one length-prefixed frame for writing and wake the loop.
     * Thread-safe; silently drops the frame once the connection is
     * closed (the peer is gone — its session state is unaffected).
     */
    void sendFrame(const std::vector<std::uint8_t> &payload);

    /** Stop reading, flush buffered output, then close. Thread-safe. */
    void closeAfterFlush();

    /** Loop-assigned connection id (stable, for log tags). */
    std::uint64_t id() const { return id_; }

    /** Bytes buffered for write but not yet flushed. */
    std::size_t pendingOut() const;

    /** True once the connection has been torn down. */
    bool closed() const { return closed_.load(); }

    /** Frames delivered to the frame callback so far. */
    std::uint64_t framesIn() const { return framesIn_.load(); }

    /** Frames queued for write so far. */
    std::uint64_t framesOut() const { return framesOut_.load(); }

  private:
    friend class EventLoop;

    EventConn(EventLoop *loop, int fd, std::uint64_t id)
        : loop_(loop), fd_(fd), id_(id)
    {}

    EventLoop *loop_;
    int fd_;
    std::uint64_t id_;

    // Output buffer: shared between sendFrame() callers and the loop
    // thread's flush; guarded by omu_. out_[outOff_..] is unflushed.
    mutable std::mutex omu_;
    std::vector<std::uint8_t> out_;
    std::size_t outOff_ = 0;
    bool killRequested_ = false; ///< hard-cap overflow: drop it

    // Loop-thread-only state.
    FrameReader reader_{kMaxFrameBytes};
    bool readPaused_ = false;  ///< backpressure: EPOLLIN dropped
    bool readStopped_ = false; ///< drain mode: never read again
    bool readClosed_ = false;  ///< peer half-closed (EOF seen)
    bool wantWrite_ = false;   ///< EPOLLOUT armed
    bool closeAfterFlush_ = false;

    std::atomic<std::uint64_t> framesIn_{0};
    std::atomic<std::uint64_t> framesOut_{0};
    std::atomic<bool> closed_{false};
};

/** The epoll loop; see the file comment. */
class EventLoop
{
  public:
    /**
     * Called on the loop thread for every complete frame. The
     * payload buffer is reused; copy what must outlive the call.
     */
    using FrameFn = std::function<void(const std::shared_ptr<EventConn> &,
                                       std::vector<std::uint8_t> &)>;

    /** Called on the loop thread when the connection is torn down. */
    using ClosedFn = std::function<void(const std::shared_ptr<EventConn> &)>;

    /**
     * Called on the loop thread when the inbound byte stream turns
     * unrecoverable (hostile length prefix). The callee may send one
     * last frame; the connection is then flushed and closed. When
     * unset the connection is just dropped.
     */
    using StreamErrFn = std::function<void(
        const std::shared_ptr<EventConn> &, const std::string &)>;

    /**
     * Called on the loop thread with each accepted fd (already
     * nonblocking); the callee decides which loop adopts it.
     */
    using AcceptFn = std::function<void(int fd)>;

    explicit EventLoop(EventLoopConfig cfg = {});
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** Start the loop thread; @p tag names it in the logs. */
    void start(const std::string &tag);

    /** Ask the loop to exit, join it, close every connection. */
    void stop();

    /** Run @p fn on the loop thread; thread-safe, FIFO. */
    void post(std::function<void()> fn);

    /** post() and wait for @p fn to finish (never from the loop). */
    void runSync(const std::function<void()> &fn);

    /**
     * Watch a listening socket; readable events invoke @p on_accept
     * once per accepted connection. One listener per loop.
     */
    void addListener(int listen_fd, AcceptFn on_accept);

    /** Stop watching (and forget) the listener added above. */
    void removeListener();

    /**
     * Adopt @p fd (made nonblocking here) as a framed connection.
     * Thread-safe: registration happens on the loop thread.
     */
    std::shared_ptr<EventConn> addConnection(int fd, FrameFn on_frame,
                                             ClosedFn on_closed = {},
                                             StreamErrFn on_err = {});

    /**
     * Drain mode: stop reading every current connection (buffered
     * partial frames are abandoned), so no new frames are delivered.
     * Thread-safe.
     */
    void stopReading();

    /** Connections currently registered. */
    std::size_t connCount() const { return connCount_.load(); }

    /** Sum of pending output over live connections. Thread-safe. */
    std::size_t pendingOutTotal() const;

    /** True when every live connection owes no replies and has no
     *  buffered output (quiesced after a drain). Thread-safe. */
    bool flushed() const;

  private:
    friend class EventConn;

    struct ConnState
    {
        std::shared_ptr<EventConn> conn;
        FrameFn onFrame;
        ClosedFn onClosed;
        StreamErrFn onErr;
    };

    void loopMain(std::string tag);
    void wake();
    void handleReadable(ConnState &cs);
    void flushConn(const std::shared_ptr<EventConn> &conn);
    void closeConn(const std::shared_ptr<EventConn> &conn);
    void updateInterest(EventConn &conn);
    void maybeFinish(const std::shared_ptr<EventConn> &conn);
    /** Replies owed: frames delivered minus frames sent. */
    static bool owesReplies(const EventConn &conn);

    EventLoopConfig cfg_;
    int epollFd_ = -1;
    int wakeFd_ = -1;
    int listenFd_ = -1;
    AcceptFn onAccept_;

    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};

    std::mutex postMu_;
    std::vector<std::function<void()>> posted_;
    std::atomic<bool> wakePending_{false};

    // Loop-thread-owned connection table (fd -> state). The mutex
    // only guards cross-thread reads for the aggregate accessors.
    mutable std::mutex connMu_;
    std::unordered_map<int, ConnState> conns_;
    std::atomic<std::size_t> connCount_{0};
    std::uint64_t nextConnId_ = 0;
};

} // namespace disc::serve

#endif // DISC_SERVE_EVENT_LOOP_HH
