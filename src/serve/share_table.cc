#include "serve/share_table.hh"

#include <numeric>

#include "common/logging.hh"

namespace disc::serve
{

namespace
{

/** Reverse the low four bits (slot index permutation). */
constexpr unsigned
bitrev4(unsigned v)
{
    return ((v & 1) << 3) | ((v & 2) << 1) | ((v & 4) >> 1) |
           ((v & 8) >> 3);
}

} // namespace

ShareTable::ShareTable()
{
    slots_.fill(kNoTenant);
}

void
ShareTable::setEven(unsigned n)
{
    if (n == 0 || n > kMaxTenants)
        fatal("share table: even split over %u tenants", n);
    std::vector<unsigned> shares(n, kScheduleSlots / n);
    for (unsigned t = 0; t < kScheduleSlots % n; ++t)
        ++shares[t];
    setShares(shares);
}

void
ShareTable::setShares(const std::vector<unsigned> &shares)
{
    if (shares.size() > kMaxTenants)
        fatal("share table: %zu tenants, at most %u", shares.size(),
              kMaxTenants);
    unsigned total = std::accumulate(shares.begin(), shares.end(), 0u);
    if (total > kScheduleSlots)
        fatal("share table: shares sum to %u, at most %u", total,
              kScheduleSlots);
    // Dense list tenant-by-tenant (unowned tail), spread by the 4-bit
    // bit-reversal permutation so shares interleave across the frame.
    std::array<TenantId, kScheduleSlots> dense;
    dense.fill(kNoTenant);
    unsigned pos = 0;
    for (TenantId t = 0; t < shares.size(); ++t)
        for (unsigned k = 0; k < shares[t]; ++k)
            dense[pos++] = t;
    for (unsigned i = 0; i < kScheduleSlots; ++i)
        slots_[bitrev4(i)] = dense[i];
    cursor_ = 0;
}

TenantId
ShareTable::referencePick(unsigned cursor,
                          std::uint32_t backlog_mask) const
{
    for (unsigned k = 0; k < kScheduleSlots; ++k) {
        TenantId t = slots_[(cursor + k) % kScheduleSlots];
        if (t != kNoTenant && (backlog_mask & (1u << t)))
            return t;
    }
    // No backlogged owner anywhere in the table: donate the slot to
    // any backlogged tenant (covers unowned slots and tenants whose
    // shares sum below 16).
    for (TenantId t = 0; t < kMaxTenants; ++t)
        if (backlog_mask & (1u << t))
            return t;
    return kNoTenant;
}

std::string
ShareTable::describe() const
{
    std::string out;
    for (TenantId t : slots_)
        out += t == kNoTenant ? '.'
                              : static_cast<char>(t < 10 ? '0' + t
                                                         : 'a' + t - 10);
    return out;
}

} // namespace disc::serve
