/**
 * @file
 * Tenant share table: the paper's slot scheduler lifted one level up.
 *
 * The hardware scheduler (arch/scheduler.hh) partitions the machine's
 * issue bandwidth with a 16-slot table and dynamically reallocates the
 * slots of streams that cannot issue. disc-serve applies the same
 * policy to *service* bandwidth: each tenant is granted a static share
 * in 1/16 increments, the dispatcher consumes one slot per dispatched
 * request, and a slot whose owner has no backlog is donated to the
 * next backlogged tenant in circular slot order. A tenant therefore
 * gets at least its share under saturation and any unused capacity
 * flows to whoever is backlogged — never to nobody while somebody
 * waits.
 *
 * referencePick() is the plain circular scan, kept (as in the
 * hardware scheduler) as the oracle the unit tests audit pick()
 * against.
 */

#ifndef DISC_SERVE_SHARE_TABLE_HH
#define DISC_SERVE_SHARE_TABLE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace disc::serve
{

/** Tenant identifier (dense, < kMaxTenants). */
using TenantId = std::uint16_t;

/** Sentinel: no tenant (free slot / empty pick). */
constexpr TenantId kNoTenant = 0xffff;

/** Share granularity is 1/16, so at most 16 tenants hold shares. */
constexpr unsigned kMaxTenants = kScheduleSlots;

/** 16-slot tenant share table with dynamic slot reallocation. */
class ShareTable
{
  public:
    /** All slots start unowned (pure free-for-all). */
    ShareTable();

    /** Grant an even split of all 16 slots over @p n tenants. */
    void setEven(unsigned n);

    /**
     * Grant shares[t] sixteenths to tenant t. The shares must sum to
     * at most kScheduleSlots; leftover slots stay unowned and are
     * always reallocated. Slots are spread with the same 4-bit
     * bit-reversal interleave the hardware scheduler uses, so a
     * tenant's slots are distributed across the frame.
     */
    void setShares(const std::vector<unsigned> &shares);

    /** Owner of slot @p i (kNoTenant when unowned). */
    TenantId slot(unsigned i) const { return slots_[i % kScheduleSlots]; }

    /** Static owner of the slot the next pick() consumes. */
    TenantId nextOwner() const { return slots_[cursor_]; }

    /** Slot cursor position. */
    unsigned cursor() const { return cursor_; }

    /**
     * Consume one slot and pick the tenant to serve: the slot's owner
     * if backlogged, else the first backlogged owner in circular slot
     * order (dynamic reallocation), else kNoTenant.
     * @param backlog_mask bit t set when tenant t has queued work.
     */
    TenantId
    pick(std::uint32_t backlog_mask)
    {
        TenantId t = referencePick(cursor_, backlog_mask);
        cursor_ = (cursor_ + 1) % kScheduleSlots;
        return t;
    }

    /**
     * What a pick() at @p cursor with @p backlog_mask would choose;
     * does not advance the cursor. The unit-test oracle.
     */
    TenantId referencePick(unsigned cursor,
                           std::uint32_t backlog_mask) const;

    /** Rewind the cursor (does not change the slot grants). */
    void resetCursor() { cursor_ = 0; }

    /** Printable slot table, e.g. "0123012301230123" ('.' unowned). */
    std::string describe() const;

  private:
    std::array<TenantId, kScheduleSlots> slots_;
    unsigned cursor_ = 0;
};

} // namespace disc::serve

#endif // DISC_SERVE_SHARE_TABLE_HH
