#include "serve/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace disc::serve
{

ShareTable
makeShareTable(const ServerConfig &cfg)
{
    ShareTable table;
    if (!cfg.shares.empty())
        table.setShares(cfg.shares);
    else
        table.setEven(cfg.tenants);
    return table;
}

// --- Conn -------------------------------------------------------------

void
ServeServer::Conn::send(const std::vector<std::uint8_t> &payload)
{
    std::lock_guard<std::mutex> g(wmu);
    try {
        writeFrame(fd, payload);
    } catch (const FatalError &e) {
        // The client went away; its session state is unaffected.
        warn("dropping reply: %s", e.what());
    }
}

void
ServeServer::Conn::addOutstanding()
{
    std::lock_guard<std::mutex> g(omu);
    ++outstanding;
}

void
ServeServer::Conn::doneOutstanding()
{
    {
        std::lock_guard<std::mutex> g(omu);
        --outstanding;
    }
    ocv.notify_all();
}

void
ServeServer::Conn::waitIdle()
{
    std::unique_lock<std::mutex> lk(omu);
    ocv.wait(lk, [this] { return outstanding == 0; });
}

// --- ServeServer ------------------------------------------------------

ServeServer::ServeServer(const ServerConfig &cfg)
    : cfg_(cfg), registry_(cfg.stateDir, cfg.maxResident),
      sched_(makeShareTable(cfg), cfg.queueCap, cfg.batchMax)
{
    if (cfg_.tenants == 0 || cfg_.tenants > kMaxTenants)
        fatal("tenant count %u out of range 1..%u", cfg_.tenants,
              kMaxTenants);
}

ServeServer::~ServeServer()
{
    if (started_.load())
        requestStop();
}

void
ServeServer::start()
{
    std::size_t resumed = registry_.restoreDir();
    if (resumed > 0)
        inform("resumed %zu parked session(s) from %s", resumed,
               registry_.stateDir().c_str());

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("socket: %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("bind port %u: %s", cfg_.port, std::strerror(errno));
    if (::listen(listenFd_, 64) < 0)
        fatal("listen: %s", std::strerror(errno));
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0)
        fatal("getsockname: %s", std::strerror(errno));
    port_ = ntohs(addr.sin_port);

    sched_.start();
    started_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
ServeServer::acceptLoop()
{
    setLogTag("accept");
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (stopping_.load())
                return;
            warn("accept: %s", std::strerror(errno));
            return;
        }
        if (stopping_.load()) {
            ::close(fd);
            return;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        unsigned idx =
            static_cast<unsigned>(connections_.fetch_add(1));
        std::lock_guard<std::mutex> g(connMu_);
        conns_.push_back(conn);
        connThreads_.emplace_back(
            [this, conn, idx] { connLoop(conn, idx); });
    }
}

void
ServeServer::connLoop(std::shared_ptr<Conn> conn, unsigned idx)
{
    setLogTag(strprintf("conn%u", idx));
    std::vector<std::uint8_t> payload;
    for (;;) {
        bool got = false;
        try {
            got = readFrame(conn->fd, payload);
        } catch (const FatalError &) {
            break; // connection cut mid-frame
        }
        if (!got)
            break; // clean EOF
        Request req;
        try {
            req = decodeRequest(payload);
        } catch (const FatalError &e) {
            Response resp;
            resp.type = MsgType::ErrorResp;
            resp.error = e.what();
            conn->send(encodeResponse(resp));
            continue;
        }
        handle(conn, req);
    }
    // Replies for everything this connection submitted must be
    // written before the socket goes away.
    conn->waitIdle();
    ::close(conn->fd);
    conn->fd = -1;
}

void
ServeServer::handle(const std::shared_ptr<Conn> &conn,
                    const Request &req)
{
    if (req.type == MsgType::StatsReq) {
        Response resp;
        resp.type = MsgType::StatsResp;
        resp.seq = req.seq;
        resp.counters = metricsCounters();
        conn->send(encodeResponse(resp));
        return;
    }
    if (req.type == MsgType::ShutdownReq) {
        shutdownReq_.store(true);
        Response resp;
        resp.type = MsgType::ShutdownResp;
        resp.seq = req.seq;
        conn->send(encodeResponse(resp));
        return;
    }
    if (req.tenant >= cfg_.tenants) {
        Response resp;
        resp.type = MsgType::ErrorResp;
        resp.seq = req.seq;
        resp.error = strprintf("tenant %u out of range 0..%u",
                               req.tenant, cfg_.tenants - 1);
        conn->send(encodeResponse(resp));
        return;
    }

    conn->addOutstanding();
    ServeJob job;
    job.tenant = req.tenant;
    job.session = req.session;
    job.deadlineMs = req.deadlineMs;
    job.run = [this, conn, req] {
        setLogTag("sess " + req.session);
        conn->send(encodeResponse(execute(req)));
        conn->doneOutstanding();
    };
    job.dropped = [conn, seq = req.seq](Drop d) {
        Response resp;
        resp.type = MsgType::BusyResp;
        resp.seq = seq;
        resp.busy = d == Drop::Deadline ? BusyReason::Deadline
                                        : BusyReason::Draining;
        resp.error = d == Drop::Deadline ? "shed: deadline exceeded"
                                         : "server draining";
        conn->send(encodeResponse(resp));
        conn->doneOutstanding();
    };

    switch (sched_.submit(std::move(job))) {
      case RequestScheduler::Submit::Accepted:
        return;
      case RequestScheduler::Submit::QueueFull: {
        Response resp;
        resp.type = MsgType::BusyResp;
        resp.seq = req.seq;
        resp.busy = BusyReason::QueueFull;
        resp.error = strprintf("tenant %u queue full (cap %u)",
                               req.tenant, cfg_.queueCap);
        conn->send(encodeResponse(resp));
        conn->doneOutstanding();
        return;
      }
      case RequestScheduler::Submit::Draining: {
        Response resp;
        resp.type = MsgType::BusyResp;
        resp.seq = req.seq;
        resp.busy = BusyReason::Draining;
        resp.error = "server draining";
        conn->send(encodeResponse(resp));
        conn->doneOutstanding();
        return;
      }
    }
}

Response
ServeServer::execute(const Request &req)
{
    Response resp;
    resp.seq = req.seq;
    try {
        switch (req.type) {
          case MsgType::OpenReq: {
            SessionSpec spec;
            spec.id = req.session;
            spec.tenant = req.tenant;
            spec.source = req.source;
            spec.entry = req.entry;
            spec.streams = req.streams;
            spec.extmems = req.extmems;
            registry_.open(spec);
            resp.type = MsgType::OpenResp;
            break;
          }
          case MsgType::RunReq: {
            SessionLease lease = registry_.acquire(req.session);
            resp.ran = lease->machine().run(req.maxCycles,
                                            req.stopWhenIdle);
            resp.totalCycles = lease->machine().stats().cycles;
            resp.retired = lease->machine().stats().totalRetired;
            resp.idle = lease->machine().idle();
            resp.type = MsgType::RunResp;
            break;
          }
          case MsgType::StepReq: {
            SessionLease lease = registry_.acquire(req.session);
            for (std::uint32_t i = 0; i < req.stepCycles; ++i)
                lease->machine().step();
            resp.ran = req.stepCycles;
            resp.totalCycles = lease->machine().stats().cycles;
            resp.retired = lease->machine().stats().totalRetired;
            resp.idle = lease->machine().idle();
            resp.type = MsgType::StepResp;
            break;
          }
          case MsgType::QueryReq: {
            SessionLease lease = registry_.acquire(req.session);
            resp.digest = sessionDigest(*lease);
            resp.totalCycles = lease->machine().stats().cycles;
            resp.retired = lease->machine().stats().totalRetired;
            resp.idle = lease->machine().idle();
            resp.type = MsgType::QueryResp;
            break;
          }
          case MsgType::CloseReq:
            registry_.close(req.session);
            resp.type = MsgType::CloseResp;
            break;
          default:
            resp.type = MsgType::ErrorResp;
            resp.error = "request type not servable";
            break;
        }
    } catch (const std::exception &e) {
        // FatalError (bad program, unknown session) and PanicError
        // both surface to the client; the server stays up.
        resp.type = MsgType::ErrorResp;
        resp.error = e.what();
    }
    return resp;
}

void
ServeServer::requestStop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true))
        return;
    if (!started_.load())
        return;

    // 1. Stop accepting.
    ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    ::close(listenFd_);
    listenFd_ = -1;

    // 2. Half-close every connection: readers see EOF and stop
    //    submitting; reply frames still flow out.
    {
        std::lock_guard<std::mutex> g(connMu_);
        for (const auto &conn : conns_)
            if (conn->fd >= 0)
                ::shutdown(conn->fd, SHUT_RD);
    }

    // 3. Drain: every accepted request executes, every reply is
    //    written.
    sched_.drainAndStop();

    // 4. Connection threads exit once their outstanding count hits
    //    zero.
    {
        std::lock_guard<std::mutex> g(connMu_);
        for (std::thread &t : connThreads_)
            if (t.joinable())
                t.join();
        connThreads_.clear();
        conns_.clear();
    }

    // 5. Park every live session so a restarted server can continue
    //    bit-identically.
    registry_.parkAll();
    started_.store(false);
}

std::vector<std::pair<std::string, std::uint64_t>>
ServeServer::metricsCounters() const
{
    const SchedulerMetrics &m = sched_.metrics();
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.emplace_back("connections", connections_.load());
    out.emplace_back("accepted", m.accepted.load());
    out.emplace_back("completed", m.completed.load());
    out.emplace_back("shed_deadline", m.shedDeadline.load());
    out.emplace_back("rejected_queue_full", m.rejectedQueueFull.load());
    out.emplace_back("rejected_draining", m.rejectedDraining.load());
    out.emplace_back("queued", sched_.queuedTotal());
    out.emplace_back("max_queue_depth", m.maxQueueDepth.load());
    out.emplace_back("batches", m.batches.load());
    out.emplace_back("batched_jobs", m.batchedJobs.load());
    out.emplace_back("max_batch", m.maxBatch.load());
    out.emplace_back("sessions", registry_.size());
    out.emplace_back("resident", registry_.residentCount());
    out.emplace_back("evicted", registry_.evictedTotal());
    out.emplace_back("restored", registry_.restoredTotal());
    return out;
}

std::string
ServeServer::metricsText() const
{
    std::string out;
    for (const auto &[name, value] : metricsCounters())
        out += strprintf("serve: %s=%llu\n", name.c_str(),
                         static_cast<unsigned long long>(value));
    return out;
}

} // namespace disc::serve
