#include "serve/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <limits>
#include <optional>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/hash.hh"
#include "common/logging.hh"

namespace disc::serve
{

ShareTable
makeShareTable(const ServerConfig &cfg)
{
    ShareTable table;
    if (!cfg.shares.empty())
        table.setShares(cfg.shares);
    else
        table.setEven(cfg.tenants);
    return table;
}

// --- ServeServer ------------------------------------------------------

ServeServer::ServeServer(const ServerConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.tenants == 0 || cfg_.tenants > kMaxTenants)
        fatal("tenant count %u out of range 1..%u", cfg_.tenants,
              kMaxTenants);
    if (cfg_.workers == 0)
        fatal("need at least one worker shard");
    for (unsigned i = 0; i < cfg_.workers; ++i) {
        auto sh = std::make_unique<Shard>();
        sh->registry = std::make_unique<SessionRegistry>(
            cfg_.stateDir + "/shard" + std::to_string(i),
            cfg_.maxResident);
        sh->sched = std::make_unique<RequestScheduler>(
            makeShareTable(cfg_), cfg_.queueCap, cfg_.batchMax);
        EventLoopConfig lc;
        lc.outBufSoft = cfg_.outBufSoft;
        lc.outBufHard = cfg_.outBufHard;
        sh->loop = std::make_unique<EventLoop>(lc);
        shards_.push_back(std::move(sh));
    }
}

ServeServer::~ServeServer()
{
    if (started_.load())
        requestStop();
}

unsigned
ServeServer::homeShard(const std::string &session) const
{
    return static_cast<unsigned>(fnv1a64(session) % cfg_.workers);
}

unsigned
ServeServer::shardOf(const std::string &session) const
{
    std::lock_guard<std::mutex> g(routeMu_);
    auto it = routes_.find(session);
    return it != routes_.end() ? it->second : homeShard(session);
}

void
ServeServer::rehomeFlatLayout()
{
    // A PR-5 server parked straight into stateDir; move those files
    // into their home shard's subdirectory so restoreDir() finds
    // them. Stale temp files from a crashed park are dropped.
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(cfg_.stateDir, ec)) {
        if (!entry.is_regular_file())
            continue;
        if (entry.path().extension() == ".tmp") {
            std::error_code rm_ec;
            std::filesystem::remove(entry.path(), rm_ec);
            continue;
        }
        if (entry.path().extension() != ".dsess")
            continue;
        std::string id = entry.path().stem().string();
        std::string target = shards_[homeShard(id)]->registry->parkPath(id);
        std::error_code mv_ec;
        std::filesystem::rename(entry.path(), target, mv_ec);
        if (mv_ec)
            warn("cannot rehome '%s': %s", entry.path().c_str(),
                 mv_ec.message().c_str());
    }
}

void
ServeServer::start()
{
    // Thousands of connections need thousands of fds.
    rlimit rl{};
    if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 &&
        rl.rlim_cur < rl.rlim_max) {
        rl.rlim_cur = rl.rlim_max;
        ::setrlimit(RLIMIT_NOFILE, &rl);
    }

    rehomeFlatLayout();
    std::size_t resumed = 0;
    for (unsigned i = 0; i < cfg_.workers; ++i) {
        resumed += shards_[i]->registry->restoreDir();
        std::lock_guard<std::mutex> g(routeMu_);
        for (const std::string &id : shards_[i]->registry->ids())
            routes_[id] = i;
    }
    if (resumed > 0)
        inform("resumed %zu parked session(s) from %s", resumed,
               cfg_.stateDir.c_str());

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("socket: %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("bind port %u: %s", cfg_.port, std::strerror(errno));
    if (::listen(listenFd_, 1024) < 0)
        fatal("listen: %s", std::strerror(errno));
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0)
        fatal("getsockname: %s", std::strerror(errno));
    port_ = ntohs(addr.sin_port);

    for (unsigned i = 0; i < cfg_.workers; ++i) {
        shards_[i]->sched->start();
        shards_[i]->loop->start(strprintf("loop%u", i));
    }
    shards_[0]->loop->addListener(listenFd_,
                                  [this](int fd) { adoptConnection(fd); });

    if (cfg_.rebalanceMs > 0) {
        rebalanceStop_.store(false);
        rebalanceThread_ = std::thread([this] { rebalancerLoop(); });
    }
    started_.store(true);
}

void
ServeServer::adoptConnection(int fd)
{
    if (stopping_.load()) {
        ::close(fd);
        return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1);
    unsigned idx = nextLoop_.fetch_add(1) % cfg_.workers;
    shards_[idx]->loop->addConnection(
        fd,
        [this](const std::shared_ptr<EventConn> &conn,
               std::vector<std::uint8_t> &payload) {
            handle(conn, payload);
        },
        {},
        [this](const std::shared_ptr<EventConn> &conn,
               const std::string &err) {
            streamErrors_.fetch_add(1);
            Response resp;
            resp.type = MsgType::ErrorResp;
            resp.error = err;
            conn->sendFrame(encodeResponse(resp));
        });
}

void
ServeServer::handle(const std::shared_ptr<EventConn> &conn,
                    std::vector<std::uint8_t> &payload)
{
    Request req;
    try {
        req = decodeRequest(payload);
    } catch (const FatalError &e) {
        Response resp;
        resp.type = MsgType::ErrorResp;
        resp.error = e.what();
        conn->sendFrame(encodeResponse(resp));
        return;
    }

    if (req.type == MsgType::StatsReq) {
        Response resp;
        resp.type = MsgType::StatsResp;
        resp.seq = req.seq;
        resp.counters = metricsCounters();
        conn->sendFrame(encodeResponse(resp));
        return;
    }
    if (req.type == MsgType::ShutdownReq) {
        shutdownReq_.store(true);
        Response resp;
        resp.type = MsgType::ShutdownResp;
        resp.seq = req.seq;
        conn->sendFrame(encodeResponse(resp));
        return;
    }
    if (req.tenant >= cfg_.tenants) {
        Response resp;
        resp.type = MsgType::ErrorResp;
        resp.seq = req.seq;
        resp.error = strprintf("tenant %u out of range 0..%u",
                               req.tenant, cfg_.tenants - 1);
        conn->sendFrame(encodeResponse(resp));
        return;
    }

    ServeJob job;
    job.tenant = req.tenant;
    job.session = req.session;
    job.deadlineMs = req.deadlineMs;
    job.run = [this, conn, req] {
        setLogTag("sess " + req.session);
        conn->sendFrame(encodeResponse(execute(req)));
    };
    job.dropped = [conn, seq = req.seq](Drop d) {
        Response resp;
        resp.type = MsgType::BusyResp;
        resp.seq = seq;
        resp.busy = d == Drop::Deadline ? BusyReason::Deadline
                                        : BusyReason::Draining;
        resp.error = d == Drop::Deadline ? "shed: deadline exceeded"
                                         : "server draining";
        conn->sendFrame(encodeResponse(resp));
    };

    if (req.type == MsgType::RunReq || req.type == MsgType::StepReq) {
        // Lockstep coalescing (request_scheduler.hh): expose the
        // session's machine so same-advance jobs of one gathered
        // batch advance through a single MachineBatch dispatch.
        // job.run stays the complete scalar path for singletons.
        struct AdvanceCtx
        {
            std::optional<SessionLease> lease;
            Cycle before = 0;
        };
        auto ctx = std::make_shared<AdvanceCtx>();
        job.batchKind = req.type == MsgType::RunReq ? BatchKind::Run
                                                    : BatchKind::Step;
        job.batchCycles = req.type == MsgType::RunReq ? req.maxCycles
                                                      : req.stepCycles;
        job.batchStopWhenIdle = req.stopWhenIdle;
        job.prepare = [this, conn, req, ctx]() -> Machine * {
            setLogTag("sess " + req.session);
            for (int attempt = 0;; ++attempt)
            try {
                // Same late resolution + one retry as execute().
                awaitMigration(req.session);
                SessionRegistry &reg =
                    *shards_[shardOf(req.session)]->registry;
                ctx->lease.emplace(reg.acquire(req.session));
                Machine &m = (*ctx->lease)->machine();
                ctx->before = m.stats().cycles;
                return &m;
            } catch (const std::exception &e) {
                if (attempt == 0) {
                    awaitMigration(req.session);
                    if (shards_[shardOf(req.session)]->registry->has(
                            req.session))
                        continue;
                }
                Response resp;
                resp.seq = req.seq;
                resp.type = MsgType::ErrorResp;
                resp.error = e.what();
                conn->sendFrame(encodeResponse(resp));
                return nullptr;
            }
        };
        job.finish = [conn, req, ctx] {
            Machine &m = (*ctx->lease)->machine();
            Response resp;
            resp.seq = req.seq;
            resp.ran = req.type == MsgType::RunReq
                           ? m.stats().cycles - ctx->before
                           : req.stepCycles;
            resp.totalCycles = m.stats().cycles;
            resp.retired = m.stats().totalRetired;
            resp.idle = m.idle();
            resp.type = req.type == MsgType::RunReq ? MsgType::RunResp
                                                    : MsgType::StepResp;
            ctx->lease.reset(); // unpin before the reply hits the wire
            conn->sendFrame(encodeResponse(resp));
        };
    }

    RequestScheduler &sched = *shards_[shardOf(req.session)]->sched;
    switch (sched.submit(std::move(job))) {
      case RequestScheduler::Submit::Accepted:
        return;
      case RequestScheduler::Submit::QueueFull: {
        Response resp;
        resp.type = MsgType::BusyResp;
        resp.seq = req.seq;
        resp.busy = BusyReason::QueueFull;
        resp.error = strprintf("tenant %u queue full (cap %u)",
                               req.tenant, cfg_.queueCap);
        conn->sendFrame(encodeResponse(resp));
        return;
      }
      case RequestScheduler::Submit::Draining: {
        Response resp;
        resp.type = MsgType::BusyResp;
        resp.seq = req.seq;
        resp.busy = BusyReason::Draining;
        resp.error = "server draining";
        conn->sendFrame(encodeResponse(resp));
        return;
      }
    }
}

void
ServeServer::beginMigration(const std::string &session)
{
    std::unique_lock<std::mutex> lk(routeMu_);
    routeCv_.wait(lk,
                  [&] { return migrating_.count(session) == 0; });
    migrating_.insert(session);
}

void
ServeServer::endMigration(const std::string &session)
{
    {
        std::lock_guard<std::mutex> g(routeMu_);
        migrating_.erase(session);
    }
    routeCv_.notify_all();
}

void
ServeServer::awaitMigration(const std::string &session)
{
    std::unique_lock<std::mutex> lk(routeMu_);
    if (migrating_.count(session) == 0)
        return;
    // Bounded: a wedged move must not wedge its requests forever —
    // after the timeout the request proceeds and reports whatever it
    // finds.
    routeCv_.wait_for(lk, std::chrono::seconds(5), [&] {
        return migrating_.count(session) == 0;
    });
}

Response
ServeServer::executeMigrate(const Request &req)
{
    beginMigration(req.session);
    Response resp;
    try {
        resp = doMigrate(req);
    } catch (...) {
        endMigration(req.session);
        throw;
    }
    endMigration(req.session);
    return resp;
}

Response
ServeServer::doMigrate(const Request &req)
{
    Response resp;
    resp.seq = req.seq;
    unsigned from = shardOf(req.session);
    unsigned to = req.targetShard;
    if (to == kAnyShard) {
        // Pick the least-queued other shard.
        std::size_t best = std::numeric_limits<std::size_t>::max();
        to = (from + 1) % cfg_.workers;
        for (unsigned i = 0; i < cfg_.workers; ++i) {
            if (i == from)
                continue;
            std::size_t q = shards_[i]->sched->queuedTotal();
            if (q < best) {
                best = q;
                to = i;
            }
        }
    }
    if (to >= cfg_.workers) {
        resp.type = MsgType::ErrorResp;
        resp.error = strprintf("shard %u out of range 0..%u", to,
                               cfg_.workers - 1);
        return resp;
    }
    if (to == from) {
        // Single-shard server or explicit no-op: report the digest.
        SessionLease lease = shards_[from]->registry->acquire(req.session);
        resp.type = MsgType::MigrateResp;
        resp.digest = sessionDigest(*lease);
        resp.shard = from;
        return resp;
    }
    MigrationResult r = migrateSession(*shards_[from]->registry,
                                       *shards_[to]->registry,
                                       req.session);
    if (!r.ok) {
        migrationsFailed_.fetch_add(1);
        resp.type = MsgType::ErrorResp;
        resp.error = r.error;
        return resp;
    }
    {
        std::lock_guard<std::mutex> g(routeMu_);
        routes_[req.session] = to;
    }
    migrationsOk_.fetch_add(1);
    resp.type = MsgType::MigrateResp;
    resp.digest = r.digest;
    resp.shard = to;
    return resp;
}

Response
ServeServer::execute(const Request &req)
{
    Response resp;
    resp.seq = req.seq;
    for (int attempt = 0;; ++attempt)
    try {
        // Resolve the registry when the job runs, not when it was
        // queued: a migration may have moved the session since — and
        // may be moving it right now, in which case it is registered
        // nowhere until the move lands. Wait that window out.
        awaitMigration(req.session);
        SessionRegistry &reg = *shards_[shardOf(req.session)]->registry;
        switch (req.type) {
          case MsgType::OpenReq: {
            SessionSpec spec;
            spec.id = req.session;
            spec.tenant = req.tenant;
            spec.source = req.source;
            spec.entry = req.entry;
            spec.streams = req.streams;
            spec.extmems = req.extmems;
            spec.board = req.board;
            {
                // A fresh open always lands on the home shard; drop
                // any stale route from a closed predecessor.
                std::lock_guard<std::mutex> g(routeMu_);
                routes_.erase(spec.id);
            }
            shards_[homeShard(spec.id)]->registry->open(spec);
            resp.type = MsgType::OpenResp;
            break;
          }
          case MsgType::RunReq: {
            SessionLease lease = reg.acquire(req.session);
            resp.ran = lease->machine().run(req.maxCycles,
                                            req.stopWhenIdle);
            resp.totalCycles = lease->machine().stats().cycles;
            resp.retired = lease->machine().stats().totalRetired;
            resp.idle = lease->machine().idle();
            resp.type = MsgType::RunResp;
            break;
          }
          case MsgType::StepReq: {
            SessionLease lease = reg.acquire(req.session);
            for (std::uint32_t i = 0; i < req.stepCycles; ++i)
                lease->machine().step();
            resp.ran = req.stepCycles;
            resp.totalCycles = lease->machine().stats().cycles;
            resp.retired = lease->machine().stats().totalRetired;
            resp.idle = lease->machine().idle();
            resp.type = MsgType::StepResp;
            break;
          }
          case MsgType::QueryReq: {
            SessionLease lease = reg.acquire(req.session);
            resp.digest = sessionDigest(*lease);
            resp.totalCycles = lease->machine().stats().cycles;
            resp.retired = lease->machine().stats().totalRetired;
            resp.idle = lease->machine().idle();
            resp.type = MsgType::QueryResp;
            break;
          }
          case MsgType::CloseReq:
            reg.close(req.session);
            {
                std::lock_guard<std::mutex> g(routeMu_);
                routes_.erase(req.session);
            }
            resp.type = MsgType::CloseResp;
            break;
          case MsgType::MigrateReq:
            resp = executeMigrate(req);
            break;
          default:
            resp.type = MsgType::ErrorResp;
            resp.error = "request type not servable";
            break;
        }
        return resp;
    } catch (const std::exception &e) {
        // A request can slip past awaitMigration() just before the
        // move detaches its session; if the session is registered
        // again once the dust settles, run it where it landed.
        if (attempt == 0 && req.type != MsgType::OpenReq &&
            req.type != MsgType::MigrateReq && !req.session.empty()) {
            awaitMigration(req.session);
            if (shards_[shardOf(req.session)]->registry->has(
                    req.session))
                continue;
        }
        // FatalError (bad program, unknown session) and PanicError
        // both surface to the client; the server stays up.
        resp.type = MsgType::ErrorResp;
        resp.error = e.what();
        return resp;
    }
}

bool
ServeServer::rebalanceOnce()
{
    if (cfg_.workers < 2)
        return false;
    unsigned hot = 0, cold = 0;
    std::size_t hot_q = 0;
    std::size_t cold_q = std::numeric_limits<std::size_t>::max();
    for (unsigned i = 0; i < cfg_.workers; ++i) {
        std::size_t q = shards_[i]->sched->queuedTotal();
        if (q > hot_q) {
            hot_q = q;
            hot = i;
        }
        if (q < cold_q) {
            cold_q = q;
            cold = i;
        }
    }
    if (hot == cold || hot_q <= cold_q + 1)
        return false; // nothing meaningfully hotter
    for (const std::string &id :
         shards_[hot]->registry->coldestIdle(4)) {
        beginMigration(id);
        MigrationResult r = migrateSession(*shards_[hot]->registry,
                                           *shards_[cold]->registry, id);
        if (!r.ok) {
            endMigration(id);
            migrationsFailed_.fetch_add(1);
            continue; // busy candidate; try the next-coldest
        }
        {
            std::lock_guard<std::mutex> g(routeMu_);
            routes_[id] = cold;
        }
        endMigration(id);
        migrationsOk_.fetch_add(1);
        rebalanced_.fetch_add(1);
        return true;
    }
    return false;
}

void
ServeServer::rebalancerLoop()
{
    setLogTag("rebalance");
    while (!rebalanceStop_.load()) {
        // Sleep in short slices so requestStop() is prompt.
        for (unsigned slept = 0;
             slept < cfg_.rebalanceMs && !rebalanceStop_.load();
             slept += 10)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        if (rebalanceStop_.load())
            return;
        try {
            rebalanceOnce();
        } catch (const std::exception &e) {
            warn("rebalance pass failed: %s", e.what());
        }
    }
}

void
ServeServer::requestStop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true))
        return;
    if (!started_.load())
        return;

    // 1. Stop the rebalancer: no new migrations.
    rebalanceStop_.store(true);
    if (rebalanceThread_.joinable())
        rebalanceThread_.join();

    // 2. Stop accepting.
    shards_[0]->loop->removeListener();
    ::close(listenFd_);
    listenFd_ = -1;

    // 3. Stop reading every connection: no new frames are delivered,
    //    so no new jobs are submitted; reply frames still flow out.
    for (auto &sh : shards_)
        sh->loop->stopReading();

    // 4. Drain: every accepted request executes, every reply is
    //    queued on its connection.
    for (auto &sh : shards_)
        sh->sched->drainAndStop();

    // 5. Wait for the queued replies to reach the sockets (bounded;
    //    a peer that never reads forfeits its replies).
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(5);
    for (;;) {
        bool all = true;
        for (auto &sh : shards_)
            if (!sh->loop->flushed())
                all = false;
        if (all || std::chrono::steady_clock::now() > deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    // 6. Tear the loops (and their connections) down.
    for (auto &sh : shards_)
        sh->loop->stop();

    // 7. Park every live session so a restarted server can continue
    //    bit-identically.
    for (auto &sh : shards_)
        sh->registry->parkAll();
    started_.store(false);
}

std::vector<std::pair<std::string, std::uint64_t>>
ServeServer::metricsCounters() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    std::uint64_t accepted = 0, completed = 0, shed = 0, qfull = 0,
                  draining = 0, queued = 0, maxdepth = 0, batches = 0,
                  batched = 0, maxbatch = 0, sessions = 0,
                  resident = 0, evicted = 0, restored = 0,
                  bdisp = 0, bmach = 0, bmax = 0;
    for (const auto &sh : shards_) {
        const SchedulerMetrics &m = sh->sched->metrics();
        bdisp += m.batchDispatches.load();
        bmach += m.batchedMachines.load();
        bmax = std::max(bmax, m.maxBatchMachines.load());
        accepted += m.accepted.load();
        completed += m.completed.load();
        shed += m.shedDeadline.load();
        qfull += m.rejectedQueueFull.load();
        draining += m.rejectedDraining.load();
        queued += sh->sched->queuedTotal();
        maxdepth = std::max(maxdepth, m.maxQueueDepth.load());
        batches += m.batches.load();
        batched += m.batchedJobs.load();
        maxbatch = std::max(maxbatch, m.maxBatch.load());
        sessions += sh->registry->size();
        resident += sh->registry->residentCount();
        evicted += sh->registry->evictedTotal();
        restored += sh->registry->restoredTotal();
    }
    out.emplace_back("connections", connections_.load());
    out.emplace_back("accepted", accepted);
    out.emplace_back("completed", completed);
    out.emplace_back("shed_deadline", shed);
    out.emplace_back("rejected_queue_full", qfull);
    out.emplace_back("rejected_draining", draining);
    out.emplace_back("queued", queued);
    out.emplace_back("max_queue_depth", maxdepth);
    out.emplace_back("batches", batches);
    out.emplace_back("batched_jobs", batched);
    out.emplace_back("max_batch", maxbatch);
    out.emplace_back("batch_dispatches", bdisp);
    out.emplace_back("batched_machines", bmach);
    out.emplace_back("max_batch_machines", bmax);
    out.emplace_back("sessions", sessions);
    out.emplace_back("resident", resident);
    out.emplace_back("evicted", evicted);
    out.emplace_back("restored", restored);
    out.emplace_back("workers", cfg_.workers);
    out.emplace_back("stream_errors", streamErrors_.load());
    out.emplace_back("migrations_ok", migrationsOk_.load());
    out.emplace_back("migrations_failed", migrationsFailed_.load());
    out.emplace_back("rebalanced", rebalanced_.load());
    for (unsigned i = 0; i < cfg_.workers; ++i) {
        out.emplace_back(strprintf("shard%u_queued", i),
                         shards_[i]->sched->queuedTotal());
        out.emplace_back(strprintf("shard%u_sessions", i),
                         shards_[i]->registry->size());
        out.emplace_back(strprintf("shard%u_resident", i),
                         shards_[i]->registry->residentCount());
        out.emplace_back(strprintf("shard%u_conns", i),
                         shards_[i]->loop->connCount());
    }
    return out;
}

std::string
ServeServer::metricsText() const
{
    std::string out;
    for (const auto &[name, value] : metricsCounters())
        out += strprintf("serve: %s=%llu\n", name.c_str(),
                         static_cast<unsigned long long>(value));
    return out;
}

} // namespace disc::serve
