/**
 * @file
 * ServeServer: the disc-serve front end — a loopback TCP listener
 * wiring the wire protocol to N worker shards.
 *
 * A *shard* is one EventLoop (nonblocking epoll I/O), one
 * SessionRegistry (its own state subdirectory, `stateDir/shardK`) and
 * one RequestScheduler (the full 16-slot ShareTable policy applies
 * per shard). Sessions hash to a *home* shard (fnv1a64(id) mod
 * workers); a route table tracks where each session currently lives,
 * since migration moves sessions off their home shard. Accepted
 * connections are spread round-robin across the loops; any connection
 * can address any session — requests are submitted to the session's
 * current shard's scheduler, and the registry is re-resolved when the
 * job actually executes, so a request queued across a migration still
 * lands on the right machine.
 *
 * Cross-shard migration (MigrateReq, or the periodic rebalancer) is
 * park → detach → digest → rename into the target shard's dir →
 * adopt → restore, digest-checked against the pre-move park-file
 * digest (serve/session.hh migrateSession()). The rename is the
 * commit point: a crash after it is recovered by the target shard's
 * restoreDir() at next startup.
 *
 * Threading: N loop threads (frame I/O only — never simulate), N
 * dispatcher threads, the shared ThreadPool executing batches, and an
 * optional rebalancer thread. Replies are queued from pool threads
 * via EventConn::sendFrame(), so clients may pipeline arbitrarily.
 *
 * Graceful shutdown (requestStop(), driven by SIGTERM in the
 * disc-serve tool or by a Shutdown request): stop the rebalancer,
 * stop accepting, stop reading every connection, drain every shard's
 * scheduler — every accepted request executes and its reply is
 * flushed — then park every live session. A restarted server pointed
 * at the same directory re-registers the parked sessions (wherever
 * their shard dirs hold them) and continues each one bit-identically.
 */

#ifndef DISC_SERVE_SERVER_HH
#define DISC_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serve/event_loop.hh"
#include "serve/proto.hh"
#include "serve/request_scheduler.hh"
#include "serve/session.hh"

namespace disc::serve
{

/** Server construction parameters. */
struct ServerConfig
{
    /** TCP port on 127.0.0.1 (0 = pick an ephemeral port). */
    std::uint16_t port = 0;

    /** Directory for parked-session files (shard subdirs inside). */
    std::string stateDir = "disc-serve-state";

    /** Residency bound for each shard's session registry. */
    unsigned maxResident = 8;

    /** Per-tenant request queue bound (per shard). */
    unsigned queueCap = 64;

    /** Number of tenants (1..16) when `shares` is empty (even split). */
    unsigned tenants = 4;

    /** Explicit per-tenant shares in sixteenths (sum <= 16). */
    std::vector<unsigned> shares;

    /** Batch size cap; 0 = worker pool size. */
    unsigned batchMax = 0;

    /** Worker shards: event loops + registries + schedulers. */
    unsigned workers = 1;

    /** Rebalancer period in ms; 0 disables it. */
    unsigned rebalanceMs = 0;

    /** Per-connection output bound before reads pause. */
    std::size_t outBufSoft = 1u << 20;

    /** Per-connection output bound before the connection drops. */
    std::size_t outBufHard = 8u << 20;
};

/** The serving front end; see the file comment. */
class ServeServer
{
  public:
    explicit ServeServer(const ServerConfig &cfg);

    /** Stops the server if still running. */
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Re-register parked sessions (legacy flat-layout files are
     * rehomed into shard subdirs first), bind the listener and start
     * the loop, dispatcher and rebalancer threads. fatal() when the
     * port is taken.
     */
    void start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Number of tenants the server accepts. */
    unsigned tenants() const { return cfg_.tenants; }

    /** Number of worker shards. */
    unsigned workers() const { return cfg_.workers; }

    /** Drain, park and stop; idempotent. Safe from any non-handler
     *  thread. */
    void requestStop();

    /** True once a Shutdown request arrived (poll from the tool's
     *  main loop, then call requestStop()). */
    bool shutdownRequested() const { return shutdownReq_.load(); }

    /** A shard's session table. */
    SessionRegistry &registry(unsigned shard = 0)
    {
        return *shards_[shard]->registry;
    }

    /** A shard's request scheduler. */
    RequestScheduler &scheduler(unsigned shard = 0)
    {
        return *shards_[shard]->sched;
    }

    /** The shard currently hosting @p session (its home shard when
     *  never migrated). */
    unsigned shardOf(const std::string &session) const;

    /** Ordered service counters (the StatsResp body). */
    std::vector<std::pair<std::string, std::uint64_t>>
    metricsCounters() const;

    /** The counters as printable "serve: name=value" lines. */
    std::string metricsText() const;

  private:
    /** One worker: loop + registry + scheduler. */
    struct Shard
    {
        std::unique_ptr<SessionRegistry> registry;
        std::unique_ptr<RequestScheduler> sched;
        std::unique_ptr<EventLoop> loop;
    };

    /** fnv1a64(id) mod workers: where a session starts out. */
    unsigned homeShard(const std::string &session) const;

    /** Move legacy flat-layout park files into shard subdirs. */
    void rehomeFlatLayout();

    /** Adopt an accepted fd onto the next loop, round-robin. */
    void adoptConnection(int fd);

    /** Frame handler (loop thread): decode, dispatch, reply. */
    void handle(const std::shared_ptr<EventConn> &conn,
                std::vector<std::uint8_t> &payload);

    /** Perform one session request (called on a pool thread). */
    Response execute(const Request &req);

    /** Execute a MigrateReq: move the session and update the route. */
    Response executeMigrate(const Request &req);

    /** The move itself; caller brackets it with begin/endMigration. */
    Response doMigrate(const Request &req);

    /**
     * Claim @p session for one migration (waits out a concurrent
     * move of the same session first).
     */
    void beginMigration(const std::string &session);

    /** Release the claim and wake requests parked on it. */
    void endMigration(const std::string &session);

    /**
     * Mid-migration a session is registered on *no* shard for a
     * moment; a request executing in that window would see "unknown
     * session". Wait (bounded) until the move lands, then resolve.
     */
    void awaitMigration(const std::string &session);

    /** One rebalancer pass: move a cold session off the hottest
     *  shard. @return true when a session moved. */
    bool rebalanceOnce();

    void rebalancerLoop();

    ServerConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;

    // Session routing: current shard per session. Sessions not in the
    // table live on their home shard. `migrating_` holds sessions
    // whose park file is in flight between shard dirs; routeCv_ wakes
    // requests waiting for such a move to land.
    mutable std::mutex routeMu_;
    std::unordered_map<std::string, unsigned> routes_;
    std::unordered_set<std::string> migrating_;
    std::condition_variable routeCv_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<unsigned> nextLoop_{0};

    std::thread rebalanceThread_;
    std::atomic<bool> rebalanceStop_{false};

    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdownReq_{false};
    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> streamErrors_{0};
    std::atomic<std::uint64_t> migrationsOk_{0};
    std::atomic<std::uint64_t> migrationsFailed_{0};
    std::atomic<std::uint64_t> rebalanced_{0};
};

/** The share table a config describes (even split or explicit). */
ShareTable makeShareTable(const ServerConfig &cfg);

} // namespace disc::serve

#endif // DISC_SERVE_SERVER_HH
