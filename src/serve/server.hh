/**
 * @file
 * ServeServer: the disc-serve front end — a loopback TCP listener
 * wiring the wire protocol to the SessionRegistry and the
 * RequestScheduler.
 *
 * Threading: one acceptor thread, one blocking reader thread per
 * connection, the scheduler's dispatcher thread, and the shared
 * ThreadPool executing batches. A connection thread only decodes
 * frames and submits jobs; replies are written by whichever thread
 * completes the job, under a per-connection write mutex, so clients
 * may pipeline any number of requests per connection.
 *
 * Graceful shutdown (requestStop(), driven by SIGTERM in the
 * disc-serve tool or by a Shutdown request): stop accepting, half-
 * close every connection so readers stop submitting, drain the
 * scheduler — every accepted request executes and its reply is
 * written — then park every live session to the state directory. A
 * restarted server pointed at the same directory re-registers the
 * parked sessions (SessionRegistry::restoreDir()) and continues each
 * one bit-identically.
 */

#ifndef DISC_SERVE_SERVER_HH
#define DISC_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/proto.hh"
#include "serve/request_scheduler.hh"
#include "serve/session.hh"

namespace disc::serve
{

/** Server construction parameters. */
struct ServerConfig
{
    /** TCP port on 127.0.0.1 (0 = pick an ephemeral port). */
    std::uint16_t port = 0;

    /** Directory for parked-session files. */
    std::string stateDir = "disc-serve-state";

    /** Residency bound for the session registry. */
    unsigned maxResident = 8;

    /** Per-tenant request queue bound. */
    unsigned queueCap = 64;

    /** Number of tenants (1..16) when `shares` is empty (even split). */
    unsigned tenants = 4;

    /** Explicit per-tenant shares in sixteenths (sum <= 16). */
    std::vector<unsigned> shares;

    /** Batch size cap; 0 = worker pool size. */
    unsigned batchMax = 0;
};

/** The serving front end; see the file comment. */
class ServeServer
{
  public:
    explicit ServeServer(const ServerConfig &cfg);

    /** Stops the server if still running. */
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Re-register parked sessions, bind the listener and start the
     * acceptor and dispatcher threads. fatal() when the port is
     * taken.
     */
    void start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Number of tenants the server accepts. */
    unsigned tenants() const { return cfg_.tenants; }

    /** Drain, park and stop; idempotent. Safe from any non-handler
     *  thread. */
    void requestStop();

    /** True once a Shutdown request arrived (poll from the tool's
     *  main loop, then call requestStop()). */
    bool shutdownRequested() const { return shutdownReq_.load(); }

    /** The session table. */
    SessionRegistry &registry() { return registry_; }

    /** The request scheduler. */
    RequestScheduler &scheduler() { return sched_; }

    /** Ordered service counters (the StatsResp body). */
    std::vector<std::pair<std::string, std::uint64_t>>
    metricsCounters() const;

    /** The counters as printable "serve: name=value" lines. */
    std::string metricsText() const;

  private:
    /** One client connection. */
    struct Conn
    {
        int fd = -1;
        std::mutex wmu; ///< serialises reply frames

        std::mutex omu;
        std::condition_variable ocv;
        unsigned outstanding = 0; ///< submitted, reply not yet sent

        /** Write one reply frame; warns instead of throwing. */
        void send(const std::vector<std::uint8_t> &payload);

        void addOutstanding();
        void doneOutstanding();
        void waitIdle();
    };

    void acceptLoop();
    void connLoop(std::shared_ptr<Conn> conn, unsigned idx);
    void handle(const std::shared_ptr<Conn> &conn, const Request &req);

    /** Perform one session request (called on a pool thread). */
    Response execute(const Request &req);

    ServerConfig cfg_;
    SessionRegistry registry_;
    RequestScheduler sched_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptThread_;

    std::mutex connMu_;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<std::thread> connThreads_;

    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdownReq_{false};
    std::atomic<std::uint64_t> connections_{0};
};

/** The share table a config describes (even split or explicit). */
ShareTable makeShareTable(const ServerConfig &cfg);

} // namespace disc::serve

#endif // DISC_SERVE_SERVER_HH
