#include "serve/request_scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "sim/batch.hh"

namespace disc::serve
{

RequestScheduler::RequestScheduler(const ShareTable &table,
                                   unsigned queue_cap,
                                   unsigned batch_max)
    : table_(table), queueCap_(queue_cap),
      batchMax_(batch_max ? batch_max : ThreadPool::global().size())
{
    if (queueCap_ == 0)
        fatal("request scheduler needs queue_cap >= 1");
    if (batchMax_ == 0)
        batchMax_ = 1;
}

RequestScheduler::~RequestScheduler()
{
    drainAndStop();
}

RequestScheduler::Submit
RequestScheduler::submit(ServeJob job)
{
    if (job.tenant >= kMaxTenants)
        fatal("tenant %u out of range", job.tenant);
    if (job.enqueued == std::chrono::steady_clock::time_point{})
        job.enqueued = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> g(mu_);
        if (draining_) {
            metrics_.rejectedDraining.fetch_add(1);
            return Submit::Draining;
        }
        std::deque<ServeJob> &q = queues_[job.tenant];
        if (q.size() >= queueCap_) {
            metrics_.rejectedQueueFull.fetch_add(1);
            return Submit::QueueFull;
        }
        q.push_back(std::move(job));
        metrics_.accepted.fetch_add(1);
        std::uint64_t depth = q.size();
        if (depth > metrics_.maxQueueDepth.load())
            metrics_.maxQueueDepth.store(depth);
    }
    cv_.notify_one();
    return Submit::Accepted;
}

void
RequestScheduler::shedExpiredLocked(std::vector<ServeJob> &shed)
{
    // Only queue heads are examined: within a tenant the queue is
    // FIFO, so reordering around an unexpired head is never allowed.
    // While draining, accepted work always executes — no shedding.
    if (draining_)
        return;
    auto now = std::chrono::steady_clock::now();
    for (std::deque<ServeJob> &q : queues_) {
        while (!q.empty()) {
            const ServeJob &head = q.front();
            if (head.deadlineMs == 0 ||
                now - head.enqueued <
                    std::chrono::milliseconds(head.deadlineMs))
                break;
            shed.push_back(std::move(q.front()));
            q.pop_front();
        }
    }
}

std::vector<ServeJob>
RequestScheduler::gatherLocked()
{
    std::vector<ServeJob> batch;
    std::vector<std::string> used; // sessions already in the batch
    while (batch.size() < batchMax_) {
        std::uint32_t mask = 0;
        for (unsigned t = 0; t < kMaxTenants; ++t) {
            if (queues_[t].empty())
                continue;
            const std::string &sess = queues_[t].front().session;
            if (std::find(used.begin(), used.end(), sess) == used.end())
                mask |= 1u << t;
        }
        if (!mask)
            break;
        TenantId t = table_.pick(mask);
        if (t == kNoTenant)
            break;
        ServeJob job = std::move(queues_[t].front());
        queues_[t].pop_front();
        used.push_back(job.session);
        batch.push_back(std::move(job));
    }
    return batch;
}

void
RequestScheduler::execute(std::vector<ServeJob> &batch)
{
    if (batch.empty())
        return;

    // Coalesce same-advance Run/Step jobs into lockstep units: jobs
    // sharing (kind, cycles, stopWhenIdle) advance their machines in
    // one MachineBatch dispatch. Everything else — opaque jobs and
    // singleton groups — stays a plain run() call. One unit is one
    // pool task, so the dispatch fan-out matches the unit count.
    struct Unit
    {
        std::vector<std::size_t> jobs;
    };
    std::vector<Unit> units;
    std::vector<bool> placed(batch.size(), false);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (placed[i])
            continue;
        Unit u;
        u.jobs.push_back(i);
        placed[i] = true;
        const ServeJob &a = batch[i];
        if (a.batchKind != BatchKind::None && a.prepare && a.finish) {
            for (std::size_t j = i + 1; j < batch.size(); ++j) {
                const ServeJob &b = batch[j];
                if (!placed[j] && b.batchKind == a.batchKind &&
                    b.prepare && b.finish &&
                    b.batchCycles == a.batchCycles &&
                    b.batchStopWhenIdle == a.batchStopWhenIdle)
                {
                    u.jobs.push_back(j);
                    placed[j] = true;
                }
            }
        }
        units.push_back(std::move(u));
    }

    auto runUnit = [&](Unit &u) {
        if (u.jobs.size() == 1) {
            batch[u.jobs[0]].run();
            return;
        }
        // A coalesced group: pin every session, advance the pinned
        // machines in lockstep, then reply and unpin. A prepare()
        // that returns nullptr has already replied (unknown session,
        // mid-migration, ...) and simply drops out of the lanes.
        std::vector<Machine *> lanes(u.jobs.size(), nullptr);
        for (std::size_t k = 0; k < u.jobs.size(); ++k)
            lanes[k] = batch[u.jobs[k]].prepare();
        MachineBatch mb(u.jobs.size());
        for (Machine *m : lanes) {
            if (m)
                mb.add(m);
        }
        if (mb.size() != 0) {
            const ServeJob &a = batch[u.jobs[0]];
            if (a.batchKind == BatchKind::Run)
                mb.run(a.batchCycles, a.batchStopWhenIdle);
            else
                mb.step(a.batchCycles);
            metrics_.batchDispatches.fetch_add(1);
            metrics_.batchedMachines.fetch_add(mb.size());
            std::uint64_t lanes_n = mb.size();
            if (lanes_n > metrics_.maxBatchMachines.load())
                metrics_.maxBatchMachines.store(lanes_n);
        }
        for (std::size_t k = 0; k < u.jobs.size(); ++k) {
            if (lanes[k])
                batch[u.jobs[k]].finish();
        }
    };

    if (units.size() == 1) {
        runUnit(units[0]);
    } else {
        ThreadPool::global().parallelFor(
            units.size(), [&](std::size_t i) { runUnit(units[i]); });
    }
    metrics_.batches.fetch_add(1);
    metrics_.batchedJobs.fetch_add(batch.size());
    std::uint64_t n = batch.size();
    if (n > metrics_.maxBatch.load())
        metrics_.maxBatch.store(n);
    metrics_.completed.fetch_add(n);
}

std::size_t
RequestScheduler::runBatchOnce()
{
    std::vector<ServeJob> shed;
    std::vector<ServeJob> batch;
    {
        std::lock_guard<std::mutex> g(mu_);
        shedExpiredLocked(shed);
        batch = gatherLocked();
    }
    for (ServeJob &s : shed) {
        metrics_.shedDeadline.fetch_add(1);
        if (s.dropped)
            s.dropped(Drop::Deadline);
    }
    execute(batch);
    return batch.size();
}

void
RequestScheduler::start()
{
    std::lock_guard<std::mutex> g(mu_);
    if (running_)
        return;
    running_ = true;
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

void
RequestScheduler::dispatcherLoop()
{
    setLogTag("dispatch");
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_.wait(lk, [this] {
            if (draining_)
                return true;
            for (const std::deque<ServeJob> &q : queues_)
                if (!q.empty())
                    return true;
            return false;
        });
        std::vector<ServeJob> shed;
        shedExpiredLocked(shed);
        std::vector<ServeJob> batch = gatherLocked();
        bool empty = std::all_of(
            queues_.begin(), queues_.end(),
            [](const std::deque<ServeJob> &q) { return q.empty(); });
        if (draining_ && batch.empty() && shed.empty() && empty)
            return;
        lk.unlock();
        for (ServeJob &s : shed) {
            metrics_.shedDeadline.fetch_add(1);
            if (s.dropped)
                s.dropped(Drop::Deadline);
        }
        execute(batch);
        lk.lock();
    }
}

void
RequestScheduler::drainAndStop()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        draining_ = true;
    }
    cv_.notify_all();
    if (dispatcher_.joinable()) {
        dispatcher_.join();
        std::lock_guard<std::mutex> g(mu_);
        running_ = false;
    } else {
        // Never start()ed (unit tests): drain synchronously.
        while (runBatchOnce() > 0)
            ;
    }
}

bool
RequestScheduler::idle() const
{
    std::lock_guard<std::mutex> g(mu_);
    return std::all_of(
        queues_.begin(), queues_.end(),
        [](const std::deque<ServeJob> &q) { return q.empty(); });
}

std::size_t
RequestScheduler::queuedTotal() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::size_t n = 0;
    for (const std::deque<ServeJob> &q : queues_)
        n += q.size();
    return n;
}

std::vector<std::size_t>
RequestScheduler::queueDepths() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::vector<std::size_t> out(kMaxTenants);
    for (std::size_t i = 0; i < kMaxTenants; ++i)
        out[i] = queues_[i].size();
    return out;
}

} // namespace disc::serve
