/**
 * @file
 * RequestScheduler: guaranteed-share batching of session requests
 * onto the worker pool.
 *
 * Admission and dispatch follow the paper's partition-with-
 * reallocation policy one level above the hardware: every tenant owns
 * a bounded FIFO queue and a static share of dispatch slots in 1/16
 * increments (serve/share_table.hh). The dispatcher gathers a batch —
 * at most one request per *session*, since a session's machine is
 * serial — by consuming share slots: each slot serves its owner's
 * queue head if backlogged, else is donated to the next backlogged
 * tenant. The batch then executes concurrently on the shared
 * lock-free ThreadPool (sessions are independent machines, so this is
 * race-free by construction).
 *
 * Robustness:
 *  - bounded queues: submit() refuses when the tenant's queue is full
 *    (the caller replies with explicit backpressure, the client backs
 *    off);
 *  - deadline shedding: a request that waited past its deadline is
 *    dropped at gather time, before any simulation work is spent on
 *    it — shedding can only ever happen to *queued* work, so an idle
 *    server never sheds;
 *  - draining: drainAndStop() refuses new work, runs every accepted
 *    request to completion, then stops the dispatcher — the graceful-
 *    shutdown half of the serving contract.
 */

#ifndef DISC_SERVE_REQUEST_SCHEDULER_HH
#define DISC_SERVE_REQUEST_SCHEDULER_HH

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "serve/share_table.hh"

namespace disc
{
class Machine;
}

namespace disc::serve
{

/** Why a request was dropped without executing. */
enum class Drop : std::uint8_t
{
    Deadline = 1, ///< waited past its deadline (load shedding)
    Draining = 2, ///< server is shutting down
};

/**
 * How a job's simulation work may coalesce into a lockstep
 * MachineBatch (sim/batch.hh) with other same-advance jobs of the
 * same gathered batch.
 */
enum class BatchKind : std::uint8_t
{
    None, ///< opaque job: always executes via run()
    Run,  ///< Machine::run(batchCycles, batchStopWhenIdle)
    Step, ///< batchCycles bare Machine::step() calls
};

/** One queued unit of work. */
struct ServeJob
{
    TenantId tenant = 0;
    std::string session; ///< batch key: one in flight per session
    std::uint32_t deadlineMs = 0; ///< 0 = never shed
    std::chrono::steady_clock::time_point enqueued{};
    std::function<void()> run;          ///< pool thread; must not throw
    std::function<void(Drop)> dropped;  ///< shed/drain notice

    /**
     * Lockstep coalescing. Jobs of a gathered batch that share
     * (batchKind != None, batchCycles, batchStopWhenIdle) advance
     * their machines through one MachineBatch dispatch instead of
     * independent run() calls — bit-identical per machine, so the
     * grouping is purely a throughput choice. prepare() pins the
     * session and returns its machine (nullptr = not advanceable
     * right now — the job must have replied already); finish() builds
     * and sends the reply, then releases the pin. Singleton groups
     * and None jobs execute via run(), which must remain the complete
     * scalar equivalent.
     */
    BatchKind batchKind = BatchKind::None;
    Cycle batchCycles = 0;
    bool batchStopWhenIdle = false;
    std::function<Machine *()> prepare; ///< must not throw
    std::function<void()> finish;       ///< must not throw
};

/** Dispatch counters (relaxed atomics; exact under quiescence). */
struct SchedulerMetrics
{
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejectedQueueFull{0};
    std::atomic<std::uint64_t> rejectedDraining{0};
    std::atomic<std::uint64_t> shedDeadline{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batchedJobs{0};
    std::atomic<std::uint64_t> maxBatch{0};
    std::atomic<std::uint64_t> maxQueueDepth{0};
    /// Lockstep occupancy: MachineBatch dispatches, machines summed
    /// over them, and the largest single dispatch (mean occupancy =
    /// batchedMachines / batchDispatches).
    std::atomic<std::uint64_t> batchDispatches{0};
    std::atomic<std::uint64_t> batchedMachines{0};
    std::atomic<std::uint64_t> maxBatchMachines{0};
};

/** Share-policy batcher; see the file comment. */
class RequestScheduler
{
  public:
    /**
     * @param table     tenant share grants (copied).
     * @param queue_cap per-tenant queue bound (>= 1).
     * @param batch_max batch size cap; 0 = ThreadPool::global().size().
     */
    RequestScheduler(const ShareTable &table, unsigned queue_cap,
                     unsigned batch_max = 0);
    ~RequestScheduler();

    RequestScheduler(const RequestScheduler &) = delete;
    RequestScheduler &operator=(const RequestScheduler &) = delete;

    /** submit() outcome. */
    enum class Submit : std::uint8_t
    {
        Accepted,
        QueueFull, ///< tenant queue at its bound — back off
        Draining,  ///< shutting down — no new work
    };

    /**
     * Enqueue a job on its tenant's queue. On refusal job.dropped is
     * NOT called: the caller owns the backpressure reply.
     */
    Submit submit(ServeJob job);

    /** Start the dispatcher thread. */
    void start();

    /**
     * Refuse new work, execute everything already queued, then stop
     * the dispatcher. Jobs whose deadline passes while draining are
     * still executed — accepted work is never thrown away. Idempotent.
     */
    void drainAndStop();

    /**
     * Synchronously shed expired heads, gather one batch by the share
     * policy and execute it on the pool. Test hook (do not mix with a
     * start()ed dispatcher).
     * @return jobs executed in this batch.
     */
    std::size_t runBatchOnce();

    /** True when every queue is empty. */
    bool idle() const;

    /** Sum of queued jobs over all tenants. */
    std::size_t queuedTotal() const;

    /** Per-tenant queued-job depths (index = tenant id). */
    std::vector<std::size_t> queueDepths() const;

    /** Counters. */
    const SchedulerMetrics &metrics() const { return metrics_; }

    /** The share table (cursor advances as batches are gathered). */
    const ShareTable &table() const { return table_; }

  private:
    /** Pop expired queue heads; call their dropped() outside mu_. */
    void shedExpiredLocked(std::vector<ServeJob> &shed);

    /** Gather at most batchMax_ jobs, one per session. Caller holds
     *  mu_. */
    std::vector<ServeJob> gatherLocked();

    /** Execute a gathered batch on the pool and count it. */
    void execute(std::vector<ServeJob> &batch);

    void dispatcherLoop();

    ShareTable table_;
    unsigned queueCap_;
    unsigned batchMax_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::array<std::deque<ServeJob>, kMaxTenants> queues_;
    bool draining_ = false;
    bool running_ = false;
    std::thread dispatcher_;

    SchedulerMetrics metrics_;
};

} // namespace disc::serve

#endif // DISC_SERVE_REQUEST_SCHEDULER_HH
