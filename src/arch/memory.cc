#include "arch/memory.hh"

#include "common/logging.hh"

namespace disc
{

InternalMemory::InternalMemory()
    : mem_(kInternalMemWords, 0)
{}

Addr
InternalMemory::index(Addr addr) const
{
    return static_cast<Addr>(addr % mem_.size());
}

Word
InternalMemory::read(Addr addr) const
{
    return mem_[index(addr)];
}

void
InternalMemory::write(Addr addr, Word value)
{
    mem_[index(addr)] = value;
}

Word
InternalMemory::testAndSet(Addr addr)
{
    Addr i = index(addr);
    Word old = mem_[i];
    mem_[i] = 0xffff;
    return old;
}

void
InternalMemory::reset()
{
    std::fill(mem_.begin(), mem_.end(), 0);
}

void
InternalMemory::load(const Program &prog)
{
    for (const auto &[addr, value] : prog.dataInit)
        write(addr, value);
}

void
InternalMemory::save(Serializer &out) const
{
    out.putVector(mem_);
}

void
InternalMemory::restore(Deserializer &in)
{
    auto words = in.getVector<Word>();
    if (words.size() != mem_.size())
        fatal("checkpoint internal-memory size mismatch");
    mem_ = std::move(words);
}

void
ProgramMemory::load(const Program &prog)
{
    code_ = prog.code;
}

InstWord
ProgramMemory::fetch(PAddr addr) const
{
    if (addr >= code_.size())
        return 0; // NOP encoding
    return code_[addr];
}

} // namespace disc
