#include "arch/window_models.hh"

#include "common/logging.hh"

namespace disc
{

FixedWindowModel::FixedWindowModel(unsigned windows,
                                   unsigned regs_per_window)
    : windows_(windows), regsPerWindow_(regs_per_window)
{
    if (windows == 0 || regs_per_window == 0)
        fatal("fixed-window model needs positive W and K");
}

void
FixedWindowModel::call()
{
    ++traffic_.calls;
    ++depth_;
    if (depth_ - resident_ > windows_) {
        // The oldest resident window must be spilled to make room.
        ++resident_;
        traffic_.spillWords += regsPerWindow_;
        ++traffic_.overflowTraps;
    }
}

void
FixedWindowModel::ret()
{
    if (depth_ == 0)
        panic("fixed-window model: return below depth 0");
    ++traffic_.returns;
    --depth_;
    if (depth_ > 0 && depth_ <= resident_) {
        // The caller's window was spilled earlier; fill it back.
        --resident_;
        traffic_.fillWords += regsPerWindow_;
    }
}

StackWindowModel::StackWindowModel(unsigned region_words,
                                   unsigned trap_cost_words)
    : regionWords_(region_words), trapCostWords_(trap_cost_words)
{
    if (region_words == 0)
        fatal("stack-window model needs a positive region");
}

void
StackWindowModel::call(unsigned frame_words)
{
    ++traffic_.calls;
    if (depthWords_ + frame_words > regionWords_) {
        // Overflow trap: the recovery handler drains the region.
        ++traffic_.overflowTraps;
        traffic_.spillWords += trapCostWords_;
        traffic_.fillWords += trapCostWords_;
        depthWords_ = 0;
        frameSizes_.clear();
    }
    depthWords_ += frame_words;
    frameSizes_.push_back(frame_words);
}

void
StackWindowModel::ret()
{
    ++traffic_.returns;
    if (frameSizes_.empty())
        return; // unwound past a trap recovery; nothing to release
    depthWords_ -= frameSizes_.back();
    frameSizes_.pop_back();
}

} // namespace disc
