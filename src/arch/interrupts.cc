#include "arch/interrupts.hh"

#include "common/logging.hh"

namespace disc
{

InterruptUnit::InterruptUnit()
{
    reset();
}

const InterruptUnit::StreamState &
InterruptUnit::state(StreamId s) const
{
    if (s >= kNumStreams)
        panic("interrupt unit: bad stream %u", s);
    return streams_[s];
}

InterruptUnit::StreamState &
InterruptUnit::state(StreamId s)
{
    if (s >= kNumStreams)
        panic("interrupt unit: bad stream %u", s);
    return streams_[s];
}

void
InterruptUnit::raise(StreamId s, unsigned bit)
{
    if (bit >= kNumIntLevels)
        panic("interrupt bit %u out of range", bit);
    state(s).ir |= static_cast<std::uint8_t>(1u << bit);
}

void
InterruptUnit::clear(StreamId s, unsigned bit)
{
    if (bit >= kNumIntLevels)
        panic("interrupt bit %u out of range", bit);
    state(s).ir &= static_cast<std::uint8_t>(~(1u << bit));
}

Word
InterruptUnit::ir(StreamId s) const
{
    return state(s).ir;
}

Word
InterruptUnit::mr(StreamId s) const
{
    return state(s).mr;
}

void
InterruptUnit::setMr(StreamId s, Word value)
{
    state(s).mr = static_cast<std::uint8_t>(value & 0xff);
}

std::optional<unsigned>
InterruptUnit::pendingVectorSlow(StreamId s, unsigned pending) const
{
    unsigned running = runningLevel(s);
    if (defectLowPriority_) {
        // Injected bug: scan upward, vectoring the lowest eligible
        // level — exactly the priority inversion the oracle must flag.
        for (unsigned lvl = 1; lvl < kNumIntLevels; ++lvl) {
            if ((pending & (1u << lvl)) && lvl > running)
                return lvl;
        }
        return std::nullopt;
    }
    for (unsigned lvl = kNumIntLevels - 1; lvl >= 1; --lvl) {
        if (pending & (1u << lvl)) {
            if (lvl > running)
                return lvl;
            return std::nullopt; // highest pending not above running
        }
    }
    return std::nullopt;
}

void
InterruptUnit::enterService(StreamId s, unsigned level)
{
    if (level == 0 || level >= kNumIntLevels)
        panic("cannot enter service for level %u", level);
    state(s).service.push_back(static_cast<std::uint8_t>(level));
}

bool
InterruptUnit::exitService(StreamId s)
{
    StreamState &st = state(s);
    if (st.service.empty())
        return false;
    st.service.pop_back();
    return true;
}

unsigned
InterruptUnit::runningLevel(StreamId s) const
{
    const StreamState &st = state(s);
    return st.service.empty() ? 0 : st.service.back();
}

unsigned
InterruptUnit::serviceDepth(StreamId s) const
{
    return static_cast<unsigned>(state(s).service.size());
}

void
InterruptUnit::save(Serializer &out) const
{
    for (const StreamState &st : streams_) {
        out.put(st.ir);
        out.put(st.mr);
        out.putVector(st.service);
    }
}

void
InterruptUnit::restore(Deserializer &in)
{
    for (StreamState &st : streams_) {
        st.ir = in.get<std::uint8_t>();
        st.mr = in.get<std::uint8_t>();
        st.service = in.getVector<std::uint8_t>();
    }
}

void
InterruptUnit::reset()
{
    for (auto &st : streams_) {
        st.ir = 0;
        st.mr = 0xff;
        st.service.clear();
    }
}

} // namespace disc
